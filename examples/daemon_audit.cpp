// Auditing network daemons: the Table 6 network/process rows in action.
//
// Runs the perturbation campaign against the vulnerable and hardened
// logind, the netcpd file server, and the IPC-fed cronhelpd, printing
// what each fault class found.
#include <cstdio>
#include <map>

#include "apps/daemons.hpp"
#include "core/report.hpp"
#include "util/table.hpp"

using namespace ep;

namespace {

void audit(core::Scenario scenario) {
  std::string name = scenario.name;
  std::printf("--- %s ---\n", name.c_str());
  core::Campaign campaign(std::move(scenario));
  auto r = campaign.execute();
  std::printf("%s\n", core::render_summary_line(r).c_str());
  std::map<std::string, int> by_fault;
  for (const auto& i : r.injections)
    if (i.violated) ++by_fault[i.fault_name];
  if (by_fault.empty()) {
    std::printf("  tolerated every perturbation (%s)\n\n",
                std::string(to_string(r.region())).c_str());
    return;
  }
  for (const auto& [fault, n] : by_fault)
    std::printf("  violated under: %-26s x%d\n", fault.c_str(), n);
  std::printf("  adequacy: %s\n\n",
              std::string(to_string(r.region())).c_str());
}

}  // namespace

int main() {
  std::printf("############ Daemon audits: network & process faults "
              "############\n\n");
  std::printf(
      "The environment of a daemon is its peers: message authenticity,\n"
      "protocol order, socket exclusivity, and the availability and\n"
      "trustability of the services it consults (Table 6).\n\n");

  audit(apps::logind_scenario());
  audit(apps::logind_hardened_scenario());
  audit(apps::netcpd_scenario());
  audit(apps::cronhelpd_scenario());

  std::printf(
      "Reading the results:\n"
      "  * the vulnerable logind grants logins on spoofed messages,\n"
      "    out-of-order protocols, shared sockets, and a dead auth\n"
      "    service - every sin in the catalog;\n"
      "  * the hardened logind refuses all of it (point-4 adequacy);\n"
      "  * netcpd shows indirect network-input faults: an oversized\n"
      "    request or DNS reply smashes its fixed parse buffers;\n"
      "  * cronhelpd shows the process-entity faults on local IPC.\n");
  return 0;
}
