// The Section 4.2 audit: scan the NT registry for unprotected keys,
// cross-reference consuming modules, perturb each module, and demonstrate
// one full attack chain.
#include <cstdio>

#include "apps/registry_modules.hpp"
#include "core/report.hpp"
#include "util/strings.hpp"

using namespace ep;

int main() {
  std::printf("############ Auditing NT registry modules ############\n\n");

  // Phase 1: static analysis — find keys anyone may write.
  auto world = apps::nt_registry_world();
  auto unprotected = world->registry.unprotected_keys();
  std::printf("static scan: %zu registry keys, %zu writable by everyone\n",
              world->registry.size(), unprotected.size());
  for (const auto& key : unprotected) {
    std::printf("  %-38s %s\n", key.path.c_str(),
                key.used_by_module.empty()
                    ? "(module unknown - cannot perturb yet)"
                    : ("read by " + key.used_by_module).c_str());
  }
  std::printf("\n");

  // Phase 2: perturbation campaigns over each understood module.
  std::printf("############ Module campaigns ############\n\n");
  for (const auto& m : apps::nt_modules()) {
    core::Campaign campaign(apps::nt_module_scenario(m.module));
    auto r = campaign.execute();
    std::printf("%-14s %s -> %s\n", m.module.c_str(),
                core::render_summary_line(r).c_str(),
                r.exploitable().empty() ? "not exploitable" : "EXPLOITABLE");
  }
  std::printf("\n");

  // Phase 3: one full chain, end to end, as mallory would run it.
  std::printf("############ Attack chain: the font-file module ############\n\n");
  auto s = apps::nt_module_scenario("fontcleanup");
  auto w = s.build();
  std::printf("1. %s exists: %s\n", apps::kNtCritical,
              w->kernel.peek(apps::kNtCritical).ok() ? "yes" : "no");
  std::printf("2. mallory (any user) points the key at it: %s\n",
              w->registry.attacker_set_value(666,
                                             "HKLM/Software/FontCleanupList",
                                             apps::kNtCritical)
                  ? "done (ACL allows everyone)"
                  : "refused");
  std::printf("3. the administrator runs the cleanup module...\n");
  (void)s.run(*w);
  std::printf("4. %s exists: %s\n", apps::kNtCritical,
              w->kernel.peek(apps::kNtCritical).ok()
                  ? "yes"
                  : "NO - deleted by a SYSTEM service on mallory's behalf");
  return 0;
}
