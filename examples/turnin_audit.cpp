// The Section 4.1 audit as a user of the library would run it:
// full campaign over turnin, the assumption analysis, the two exploit
// replays, and the before/after comparison with the hardened build.
#include <cstdio>

#include "apps/turnin.hpp"
#include "core/compare.hpp"
#include "core/report.hpp"
#include "os/world.hpp"
#include "util/strings.hpp"

using namespace ep;

int main() {
  std::printf("############ Auditing turnin with environment perturbation "
              "############\n\n");

  // Phase 1: the campaign.
  core::Campaign campaign(apps::turnin_scenario());
  auto result = campaign.execute();
  std::printf("%s\n", core::render_report(result).c_str());

  // Phase 2: for each candidate vulnerability the analysis flagged,
  // demonstrate the attack an actual adversary would run.
  std::printf("############ Exploit demonstrations ############\n\n");

  {
    std::printf("[1] A TA reads any file through 'turnin -l':\n");
    auto s = apps::turnin_scenario();
    auto w = s.build();
    const os::Site attack{"ta.sh", 1, "attack"};
    os::Pid ta = w->kernel.make_process(200, 200, "/home/ta/submit");
    (void)w->kernel.unlink(attack, ta, "Projlist");
    (void)w->kernel.symlink(attack, ta, "/etc/shadow", "Projlist");
    (void)w->kernel.spawn("/usr/bin/turnin", {"turnin", "-c", "cs390", "-l"},
                          200, 200, {}, "/home/ta");
    for (const auto& line : ep::split(w->kernel.console(), '\n'))
      if (!line.empty()) std::printf("    | %s\n", line.c_str());
    std::printf("\n");
  }

  {
    std::printf("[2] A student overwrites the TA's .login:\n");
    auto s = apps::turnin_scenario();
    auto w = s.build();
    os::world::put_file(w->kernel, "/home/alice/.login",
                        "echo 'you have been had' # evil\n", 1000, 1000,
                        0644);
    (void)w->kernel.spawn(
        "/usr/bin/turnin",
        {"turnin", "-c", "cs390", "-p", "proj1", "../.login"}, 1000, 1000,
        {}, "/home/alice");
    std::printf("    TA's .login now reads: %s\n",
                ep::trim(w->kernel.peek("/home/ta/.login").value()).c_str());
    std::printf("\n");
  }

  // Phase 3: the repaired program, same campaign, diffed.
  std::printf("############ After hardening ############\n\n");
  core::Campaign hardened(apps::turnin_hardened_scenario());
  auto hr = hardened.execute();
  std::printf("%s\n", core::render_comparison(core::compare(result, hr)).c_str());
  std::printf("candidate vulnerabilities: %zu -> %zu\n",
              result.exploitable().size(), hr.exploitable().size());
  return 0;
}
