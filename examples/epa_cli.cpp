// epa — the prototype security-testing tool the paper's future work
// promises ("we hope to be able to develop a prototype tool for security
// testing based on this methodology").
//
// Drives any packaged scenario through the full methodology from the
// command line:
//
//   epa_cli list                         # what can be audited
//   epa_cli run turnin                   # full campaign + report
//   epa_cli run turnin --sites fopen-projlist,arg-filename
//   epa_cli run logind --coverage 0.5 --seed 7
//   epa_cli run lpr --merge              # equivalence-reduced campaign
//   epa_cli run turnin --jobs 4          # parallel injection engine
//   epa_cli sweep --jobs 8               # every scenario, one shared pool
//   epa_cli trace mailer                 # interaction points only
//   epa_cli compare turnin turnin-hardened   # did the repair work?
//   epa_cli db [category]                # browse the vulnerability DB
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "apps/scenarios.hpp"
#include "core/compare.hpp"
#include "core/equivalence.hpp"
#include "core/report.hpp"
#include "core/scheduler.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "vulndb/classifier.hpp"

using namespace ep;

namespace {

int usage() {
  std::printf(
      "epa - environment perturbation analysis (prototype tool)\n\n"
      "usage:\n"
      "  epa_cli list\n"
      "  epa_cli trace <scenario>\n"
      "  epa_cli run <scenario> [--sites a,b,...] [--coverage F]\n"
      "                         [--seed N] [--merge] [--json] [--jobs N]\n"
      "                         [--no-world-cache]\n"
      "  epa_cli sweep [--jobs N] [--seed N] [--merge] [--json]\n"
      "                [--no-world-cache]\n"
      "  epa_cli compare <before-scenario> <after-scenario>\n"
      "  epa_cli db [indirect|direct|other|excluded]\n");
  return 2;
}

core::Scenario find_scenario(const std::string& name, bool& found) {
  for (auto& s : apps::all_scenarios()) {
    if (s.name == name) {
      found = true;
      return s;
    }
  }
  found = false;
  return {};
}

int cmd_list() {
  TextTable t({"scenario", "description"});
  for (const auto& s : apps::all_scenarios())
    t.add_row({s.name, s.description});
  std::printf("%s", t.render().c_str());
  return 0;
}

int cmd_trace(const std::string& name) {
  bool found = false;
  core::Scenario scenario = find_scenario(name, found);
  if (!found) {
    std::fprintf(stderr, "epa: unknown scenario '%s' (try: epa_cli list)\n",
                 name.c_str());
    return 1;
  }
  core::Campaign campaign(std::move(scenario));
  core::CampaignOptions opts;
  opts.only_sites = {"--none--"};  // discovery only
  auto r = campaign.execute(opts);

  std::printf("interaction points of %s:\n\n", name.c_str());
  TextTable t({"site", "call", "object", "kind", "input"});
  for (const auto& p : r.points)
    t.add_row({p.site.tag, p.call, p.object,
               std::string(to_string(p.kind)), p.has_input ? "yes" : "no"});
  std::printf("%s\n", t.render().c_str());
  std::printf("equivalence partition:\n%s",
              core::render_equivalence(
                  core::find_equivalence_classes(r.points))
                  .c_str());
  return 0;
}

int cmd_run(const std::string& name, const core::CampaignOptions& opts,
            bool as_json) {
  bool found = false;
  core::Scenario scenario = find_scenario(name, found);
  if (!found) {
    std::fprintf(stderr, "epa: unknown scenario '%s' (try: epa_cli list)\n",
                 name.c_str());
    return 1;
  }
  core::Campaign campaign(std::move(scenario));
  auto r = campaign.execute(opts);
  std::printf("%s", (as_json ? core::render_json(r)
                             : core::render_report(r))
                        .c_str());
  return r.exploitable().empty() ? 0 : 3;  // 3 = candidate vulnerabilities
}

int cmd_compare(const std::string& before_name,
                const std::string& after_name) {
  bool found_b = false, found_a = false;
  core::Scenario before_s = find_scenario(before_name, found_b);
  core::Scenario after_s = find_scenario(after_name, found_a);
  if (!found_b || !found_a) {
    std::fprintf(stderr, "epa: unknown scenario (try: epa_cli list)\n");
    return 1;
  }
  auto before = core::Campaign(std::move(before_s)).execute();
  auto after = core::Campaign(std::move(after_s)).execute();
  auto c = core::compare(before, after);
  std::printf("%s", core::render_comparison(c).c_str());
  return c.safe() ? 0 : 3;
}

int cmd_sweep(const core::SweepOptions& opts, bool as_json) {
  core::MultiCampaign suite;
  for (auto& s : apps::all_scenarios()) suite.add(std::move(s));
  auto sweep = suite.run(opts);

  if (as_json) {
    std::printf("{\n\"scenarios\": [\n");
    for (std::size_t i = 0; i < sweep.results.size(); ++i)
      std::printf("%s%s", core::render_json(sweep.results[i]).c_str(),
                  i + 1 < sweep.results.size() ? ",\n" : "\n");
    std::printf(
        "],\n\"totals\": {\"points\": %d, \"injections\": %d, "
        "\"violations\": %d, \"exploitable\": %d, "
        "\"mean_vulnerability_score\": %.6f}\n}\n",
        sweep.total_points(), sweep.total_injections(),
        sweep.total_violations(), sweep.total_exploitable(),
        sweep.mean_vulnerability_score());
  } else {
    TextTable t({"scenario", "points", "injections", "violations", "rho",
                 "region", "exploitable"});
    for (const auto& r : sweep.results) {
      char rho[16];
      std::snprintf(rho, sizeof rho, "%.3f", r.vulnerability_score());
      t.add_row({r.scenario_name, std::to_string(r.points.size()),
                 std::to_string(r.n()), std::to_string(r.violation_count()),
                 rho, std::string(to_string(r.region())),
                 std::to_string(r.exploitable().size())});
    }
    std::printf("%s\n%d scenarios, %d injection runs, %d violations, "
                "%d exploitable (mean rho %.3f)\n",
                t.render().c_str(), static_cast<int>(sweep.results.size()),
                sweep.total_injections(), sweep.total_violations(),
                sweep.total_exploitable(), sweep.mean_vulnerability_score());
  }
  return sweep.total_exploitable() == 0 ? 0 : 3;
}

int cmd_db(const std::string& filter) {
  const auto& db = vulndb::database();
  TextTable t({"id", "name", "os", "EAI class", "description"});
  int shown = 0;
  for (const auto& r : db) {
    auto cls = vulndb::classify_record(r);
    std::string cls_name;
    switch (cls) {
      case vulndb::EaiClass::indirect:
        cls_name = "indirect/" + std::string(to_string(*r.input_origin));
        break;
      case vulndb::EaiClass::direct:
        cls_name = "direct/" + std::string(to_string(*r.entity));
        break;
      case vulndb::EaiClass::other: cls_name = "other"; break;
      default: cls_name = "excluded/" + std::string(to_string(r.cause));
    }
    bool matches = filter.empty() ||
                   (filter == "indirect" &&
                    cls == vulndb::EaiClass::indirect) ||
                   (filter == "direct" && cls == vulndb::EaiClass::direct) ||
                   (filter == "other" && cls == vulndb::EaiClass::other) ||
                   (filter == "excluded" &&
                    cls != vulndb::EaiClass::indirect &&
                    cls != vulndb::EaiClass::direct &&
                    cls != vulndb::EaiClass::other);
    if (!matches) continue;
    ++shown;
    std::string desc = r.description.size() > 60
                           ? r.description.substr(0, 57) + "..."
                           : r.description;
    t.add_row({std::to_string(r.id), r.name, r.os, cls_name, desc});
  }
  std::printf("%s%d of %zu records\n", t.render().c_str(), shown, db.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  std::string cmd = argv[1];
  if (cmd == "list") return cmd_list();
  if (cmd == "db") return cmd_db(argc >= 3 ? argv[2] : "");
  if (cmd == "sweep") {
    core::SweepOptions opts;
    bool as_json = false;
    for (int i = 2; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--json") {
        as_json = true;
      } else if (arg == "--merge") {
        opts.campaign.merge_equivalent_sites = true;
      } else if (arg == "--jobs" && i + 1 < argc) {
        opts.jobs = std::atoi(argv[++i]);
      } else if (arg == "--seed" && i + 1 < argc) {
        opts.campaign.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
      } else if (arg == "--no-world-cache") {
        opts.campaign.use_world_cache = false;
      } else {
        std::fprintf(stderr, "epa: unknown option '%s'\n", arg.c_str());
        return usage();
      }
    }
    return cmd_sweep(opts, as_json);
  }
  if (argc < 3) return usage();
  std::string scenario = argv[2];
  if (cmd == "trace") return cmd_trace(scenario);
  if (cmd == "compare") {
    if (argc < 4) return usage();
    return cmd_compare(scenario, argv[3]);
  }
  if (cmd != "run") return usage();

  core::CampaignOptions opts;
  bool as_json = false;
  for (int i = 3; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--merge") {
      opts.merge_equivalent_sites = true;
    } else if (arg == "--json") {
      as_json = true;
    } else if (arg == "--sites" && i + 1 < argc) {
      opts.only_sites = split(std::string(argv[++i]), ',');
    } else if (arg == "--coverage" && i + 1 < argc) {
      opts.target_interaction_coverage = std::atof(argv[++i]);
    } else if (arg == "--seed" && i + 1 < argc) {
      opts.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--jobs" && i + 1 < argc) {
      opts.jobs = std::atoi(argv[++i]);
    } else if (arg == "--no-world-cache") {
      opts.use_world_cache = false;
    } else {
      std::fprintf(stderr, "epa: unknown option '%s'\n", arg.c_str());
      return usage();
    }
  }
  return cmd_run(scenario, opts, as_json);
}
