// epa — the prototype security-testing tool the paper's future work
// promises ("we hope to be able to develop a prototype tool for security
// testing based on this methodology").
//
// Drives any packaged scenario through the full methodology from the
// command line:
//
//   epa_cli list                         # what can be audited
//   epa_cli run turnin                   # full campaign + report
//   epa_cli run turnin --sites fopen-projlist,arg-filename
//   epa_cli run logind --coverage 0.5 --seed 7
//   epa_cli run lpr --merge              # equivalence-reduced campaign
//   epa_cli run turnin --jobs 4          # parallel injection engine
//   epa_cli sweep --jobs 8               # every scenario, one shared pool
//   epa_cli trace mailer                 # interaction points only
//   epa_cli compare turnin turnin-hardened   # did the repair work?
//   epa_cli db [category]                # browse the vulnerability DB
//
// Sharded execution (docs/WIRE_FORMAT.md, scripts/shard_local.sh):
//
//   epa_cli plan turnin --out turnin.plan.json
//   epa_cli run-shard turnin.plan.json --shard 1/3 --out shard1.json  # x3
//   epa_cli merge turnin.plan.json shard1.json shard2.json shard3.json
//
// merge output is bit-identical to `epa_cli run turnin` for any shard
// count: work items carry stable ids and outcomes land by id.
//
// Orchestrated execution (docs/ARCHITECTURE.md, core/orchestrator.hpp):
//
//   epa_cli orchestrate turnin --workers 3    # dynamic leases, persistent
//   epa_cli orchestrate --all --workers 4     # workers, auto re-lease on
//                                             # preemption (exit 4)
//   epa_cli orchestrate turnin --data-plane tcp --listen 7070  # remote
//   epa_cli worker --connect host:7070        # workers dial in from
//                                             # any machine
//
// Coverage-guided search (docs/SEARCH.md, core/search.hpp):
//
//   epa_cli search turnin --budget 40 --seed 7      # novelty-driven, local
//   epa_cli search --family fam-relay --budget 120  # cumulative family search
//   epa_cli search turnin --budget 40 --workers 3   # orchestrated fleet
//   epa_cli search turnin --budget 40 --state s.json --resume
//
// `epa_cli worker` is the orchestrator's worker half: it parses the plan
// and re-freezes the COW prototype once, then serves LEASE commands over
// its control channel (stdin/stdout lines; tcp frames with --connect)
// until EXIT/EOF — the per-process costs are paid per worker, not per
// work slice. Every data plane speaks worker protocol v3
// (core/protocol.hpp): HELLO handshake, PING heartbeats at checkpoints,
// STEAL/YIELD work stealing, FEEDBACK item appends for search.
// Orchestrated output is bit-identical to `run`.
#include <poll.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <climits>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "apps/families.hpp"
#include "apps/redzone_demo.hpp"
#include "apps/scenarios.hpp"
#include "apps/spec_env.hpp"
#include "core/arena.hpp"
#include "core/compare.hpp"
#include "core/equivalence.hpp"
#include "core/orchestrator.hpp"
#include "core/planner.hpp"
#include "core/protocol.hpp"
#include "core/report.hpp"
#include "core/scheduler.hpp"
#include "core/scenario_spec.hpp"
#include "core/search.hpp"
#include "core/transport.hpp"
#include "core/wire.hpp"
#include "net/transport_tcp.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "vulndb/classifier.hpp"
#include "vulndb/coverage.hpp"

using namespace ep;

namespace {

int usage() {
  std::printf(
      "epa - environment perturbation analysis (prototype tool)\n\n"
      "usage:\n"
      "  epa_cli list\n"
      "  epa_cli scenarios [--family F] [--spec NAME] [--json]\n"
      "                (inventory; --family expands one family, --spec\n"
      "                emits a scenario's declarative spec JSON)\n"
      "  epa_cli trace <scenario>\n"
      "  epa_cli run <scenario>|--scenario-file FILE\n"
      "                         [--sites a,b,...] [--coverage F]\n"
      "                         [--seed N] [--merge] [--json] [--jobs N]\n"
      "                         [--no-world-cache] [--no-redzone]\n"
      "  epa_cli sweep [--family F|--scenario-file FILE] [--jobs N]\n"
      "                [--seed N] [--merge] [--json]\n"
      "                [--no-world-cache] [--no-redzone]\n"
      "  epa_cli plan <scenario>|--scenario-file FILE\n"
      "                [--out FILE] [--binary] [--sites a,b,...]\n"
      "                [--coverage F] [--seed N] [--merge]\n"
      "  epa_cli plan --all [--out-dir DIR] [--seed N] [--merge] [--jobs N]\n"
      "  epa_cli run-shard <plan-file> --shard K/N [--out FILE] [--jobs N]\n"
      "                [--no-world-cache] [--no-redzone] [--checkpoint K]\n"
      "                [--preempt-after N] [--scenario-file FILE]\n"
      "  epa_cli run-shard <plan-file> --resume <shard-file> [--out FILE]\n"
      "                [--jobs N] [--no-world-cache] [--no-redzone]\n"
      "                [--checkpoint K]\n"
      "  epa_cli merge <plan-file> <shard-file>... [--json]\n"
      "  epa_cli orchestrate <scenario>|--scenario-file FILE\n"
      "                [--workers N] [--lease auto|K]\n"
      "                [--data-plane pipe|shm|tcp] [--deadman-ms MS]\n"
      "                [--jobs N] [--preempt-after N] [--checkpoint K]\n"
      "                [--drain-delay-ms MS] [--dir DIR]\n"
      "                [--listen PORT] [--port-file FILE]   (tcp)\n"
      "                [--json] [--no-world-cache] [--no-redzone]\n"
      "  epa_cli orchestrate --all [same flags; pipe/shm only]\n"
      "  epa_cli search <scenario>|--family F|--scenario-file FILE\n"
      "                --budget N [--seed S] [--batch K] [--jobs N]\n"
      "                [--workers N] [--lease auto|K]\n"
      "                [--data-plane pipe|shm|tcp] [--listen PORT]\n"
      "                [--port-file FILE] [--state FILE] [--resume]\n"
      "                [--stop-after W] [--json] [--no-world-cache]\n"
      "                [--no-redzone]\n"
      "                (coverage-guided novelty search; docs/SEARCH.md)\n"
      "  epa_cli worker <plan-file>|--arena FILE|--connect HOST:PORT\n"
      "                [--jobs N] [--no-world-cache] [--no-redzone]\n"
      "                [--preempt-after N] [--scenario-file FILE]\n"
      "                [--checkpoint K] [--drain-delay-ms MS]\n"
      "                (worker protocol v3 on stdin/stdout, or framed\n"
      "                over tcp with --connect; spawned by orchestrate)\n"
      "  epa_cli compare <before-scenario> <after-scenario>\n"
      "  epa_cli db [indirect|direct|other|excluded]\n");
  return 2;
}

// --- sharded execution (docs/WIRE_FORMAT.md) --------------------------------

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f)
    throw std::runtime_error("cannot read '" + path +
                             "': " + std::strerror(errno));
  std::string out;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad)
    throw std::runtime_error("error while reading '" + path + "'");
  return out;
}

void write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f)
    throw std::runtime_error("cannot write '" + path +
                             "': " + std::strerror(errno));
  bool bad = std::fwrite(content.data(), 1, content.size(), f) !=
             content.size();
  bad |= std::fclose(f) != 0;
  if (bad) throw std::runtime_error("error while writing '" + path + "'");
}

/// Write-temp-then-rename, so a reader (or a resume after a kill) never
/// sees a torn file: the path holds either the previous checkpoint or the
/// new one, never half of each. The temp name is pid-unique — two
/// processes pointed at the same --out must never share one (a fixed
/// ".tmp" let them interleave writes and rename each other's half-written
/// bytes into place) — and is unlinked when the write or rename fails,
/// never left behind.
void write_file_atomic(const std::string& path, const std::string& content) {
  std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long long>(::getpid()));
  try {
    write_file(tmp, content);
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
      throw std::runtime_error("cannot rename '" + tmp + "' to '" + path +
                               "': " + std::strerror(errno));
  } catch (...) {
    (void)std::remove(tmp.c_str());
    throw;
  }
}

// --- numeric flag parsing ---------------------------------------------------
// Every numeric option goes through strtoll/strtod with full validation
// (the parse_shard_spec style): `--jobs garbage` or a flag with no value
// must exit 1 with an epa: diagnostic, never silently become 0 (atoi) or
// fall through to "unknown option".

[[noreturn]] void flag_fail(const std::string& flag, const std::string& why) {
  std::fprintf(stderr, "epa: %s %s\n", flag.c_str(), why.c_str());
  std::exit(1);
}

/// The value argv slot of `flag`, advancing *i past it.
const char* flag_value(const std::string& flag, int argc, char** argv,
                       int* i) {
  if (*i + 1 >= argc) flag_fail(flag, "requires a value");
  return argv[++*i];
}

long long int_flag(const std::string& flag, int argc, char** argv, int* i,
                   long long min, long long max) {
  const char* text = flag_value(flag, argc, argv, i);
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0')
    flag_fail(flag, "value '" + std::string(text) +
                        "' is not an integer");
  if (errno == ERANGE || v < min || v > max)
    flag_fail(flag, "value " + std::string(text) + " out of range [" +
                        std::to_string(min) + ", " + std::to_string(max) +
                        "]");
  return v;
}

std::uint64_t uint64_flag(const std::string& flag, int argc, char** argv,
                          int* i) {
  const char* text = flag_value(flag, argc, argv, i);
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(text, &end, 10);
  if (errno == ERANGE || end == text || *end != '\0' || text[0] == '-')
    flag_fail(flag, "value '" + std::string(text) +
                        "' is not an unsigned integer");
  return static_cast<std::uint64_t>(v);
}

double unit_interval_flag(const std::string& flag, int argc, char** argv,
                          int* i) {
  const char* text = flag_value(flag, argc, argv, i);
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(text, &end);
  if (errno == ERANGE || end == text || *end != '\0')
    flag_fail(flag, "value '" + std::string(text) + "' is not a number");
  if (!(v >= 0.0 && v <= 1.0))
    flag_fail(flag, "value " + std::string(text) +
                        " out of range [0, 1]");
  return v;
}

/// "K/N" with 1 <= K <= N (1-based on the command line, 0-based inside).
void parse_shard_spec(const std::string& spec, std::size_t* index,
                      std::size_t* count) {
  auto bad = [&]() -> std::runtime_error {
    return std::runtime_error("invalid --shard '" + spec +
                              "' (expected K/N with 1 <= K <= N)");
  };
  // strtoll, not sscanf: overflow must be a rejected spec, not UB.
  errno = 0;
  char* slash = nullptr;
  long long k = std::strtoll(spec.c_str(), &slash, 10);
  if (errno == ERANGE || slash == spec.c_str() || *slash != '/') throw bad();
  char* end = nullptr;
  long long n = std::strtoll(slash + 1, &end, 10);
  if (errno == ERANGE || end == slash + 1 || *end != '\0') throw bad();
  if (k < 1 || n < 1 || k > n) throw bad();
  *index = static_cast<std::size_t>(k - 1);
  *count = static_cast<std::size_t>(n);
}

/// Load + validate a plan file, naming the file in any failure. The
/// encoding is sniffed from the magic, so every plan-consuming command
/// (run-shard, merge, worker) accepts `plan --binary` output unchanged.
core::InjectionPlan load_plan(const std::string& path) {
  try {
    std::string text = read_file(path);
    return core::looks_like_binary_wire(text) ? core::plan_from_binary(text)
                                              : core::plan_from_json(text);
  } catch (const core::WireError& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

core::ShardReport load_shard_report(const std::string& path) {
  try {
    return core::shard_report_from_json(read_file(path));
  } catch (const core::WireError& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

/// Name resolution covers the packaged suite, the unlisted redzone-demo,
/// and every generated family member (apps::resolve_scenario).
core::Scenario find_scenario(const std::string& name, bool& found) {
  auto s = apps::resolve_scenario(name);
  found = s.has_value();
  return found ? std::move(*s) : core::Scenario{};
}

/// The unknown-scenario exit path: name what was asked for, then the
/// full inventory — packaged names, redzone-demo, family patterns — so
/// a typo'd generated name is diagnosable without a second command.
int unknown_scenario(const std::string& name) {
  std::fprintf(stderr, "epa: unknown scenario '%s'\nepa: %s\n", name.c_str(),
               apps::scenario_names_hint().c_str());
  return 1;
}

/// Compile a declarative spec file (docs/SCENARIO_AUTHORING.md) against
/// the standard image/handler environment. Parse and validation failures
/// name the file; the spec reader adds line/column for syntax errors.
core::Scenario scenario_from_file(const std::string& path) {
  try {
    core::ScenarioSpec spec = core::spec_from_json(read_file(path));
    return core::compile_spec(spec, apps::spec_environment());
  } catch (const core::WireError& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

/// The scenario a plan drains against (run-shard, worker): the spec file
/// when given — its name must match the plan's, or the report ids would
/// silently describe a different world — otherwise the plan's scenario
/// name through the name registry.
core::Scenario plan_scenario(const core::InjectionPlan& plan,
                             const std::string& plan_src,
                             const std::string& scenario_file) {
  if (!scenario_file.empty()) {
    core::Scenario s = scenario_from_file(scenario_file);
    if (s.name != plan.scenario_name)
      throw std::runtime_error(scenario_file + ": spec names scenario '" +
                               s.name + "' but " + plan_src +
                               " was planned for '" + plan.scenario_name +
                               "'");
    return s;
  }
  bool found = false;
  core::Scenario s = find_scenario(plan.scenario_name, found);
  if (!found)
    throw std::runtime_error(
        plan_src + ": plan names unknown scenario '" + plan.scenario_name +
        "' (written by a different scenario set? pass its spec with "
        "--scenario-file); " +
        apps::scenario_names_hint());
  return s;
}

int cmd_list() {
  TextTable t({"scenario", "description"});
  for (const auto& s : apps::all_scenarios())
    t.add_row({s.name, s.description});
  std::printf("%s", t.render().c_str());
  return 0;
}

/// The full name inventory: packaged scenarios, the name-reachable but
/// unlisted redzone-demo, and the generated families. With --family F the
/// listing expands to F's members — every name `run`, `plan`, `sweep`,
/// and `orchestrate` will accept.
int cmd_scenarios(const std::string& family_name,
                  const std::string& spec_name, bool as_json) {
  if (!spec_name.empty()) {
    // Canonical serializer output — exactly what --scenario-file parses
    // back, so this doubles as the authoring template.
    auto spec = apps::resolve_spec(spec_name);
    if (!spec) return unknown_scenario(spec_name);
    std::string json = core::spec_to_json(*spec);
    std::fwrite(json.data(), 1, json.size(), stdout);
    return 0;
  }
  if (!family_name.empty()) {
    const core::ScenarioFamily* fam = apps::find_family(family_name);
    if (!fam) {
      std::fprintf(stderr, "epa: unknown family '%s'\nepa: %s\n",
                   family_name.c_str(),
                   apps::scenario_names_hint().c_str());
      return 1;
    }
    auto specs = core::expand_family(*fam);
    if (as_json) {
      std::printf("{\n\"family\": %s,\n\"members\": [\n",
                  json_quote(fam->name).c_str());
      for (std::size_t i = 0; i < specs.size(); ++i)
        std::printf("%s%s\n", json_quote(specs[i].name).c_str(),
                    i + 1 < specs.size() ? "," : "");
      std::printf("]\n}\n");
    } else {
      for (const auto& spec : specs) std::printf("%s\n", spec.name.c_str());
      std::printf("%zu members of family %s\n", specs.size(),
                  fam->name.c_str());
    }
    return 0;
  }

  const std::string demo_note =
      "name-reachable but unlisted: resolves on every command, excluded "
      "from the packaged sweep (pinned negative control)";
  if (as_json) {
    std::printf("{\n\"scenarios\": [\n");
    for (const auto& s : apps::all_scenarios())
      std::printf("{\"name\": %s, \"kind\": \"packaged\", "
                  "\"description\": %s},\n",
                  json_quote(s.name).c_str(),
                  json_quote(s.description).c_str());
    std::printf("{\"name\": \"redzone-demo\", \"kind\": \"unlisted\", "
                "\"description\": %s}\n",
                json_quote(demo_note).c_str());
    std::printf("],\n\"families\": [\n");
    const auto& fams = apps::scenario_families();
    for (std::size_t i = 0; i < fams.size(); ++i) {
      std::printf("{\"name\": %s, \"members\": %zu, \"axes\": [",
                  json_quote(fams[i].name).c_str(),
                  core::family_size(fams[i]));
      for (std::size_t j = 0; j < fams[i].axes.size(); ++j)
        std::printf("%s%s", json_quote(fams[i].axes[j].name).c_str(),
                    j + 1 < fams[i].axes.size() ? ", " : "");
      std::printf("], \"description\": %s}%s\n",
                  json_quote(fams[i].description).c_str(),
                  i + 1 < fams.size() ? "," : "");
    }
    // The EAI coverage universe (vulndb/coverage.hpp): external tooling
    // computes adequacy against these class names without re-implementing
    // the fault-to-class mapping.
    auto universe = vulndb::coverage_universe();
    std::printf("],\n\"coverage_universe\": [\n");
    for (std::size_t i = 0; i < universe.size(); ++i)
      std::printf("%s%s\n", json_quote(universe[i]).c_str(),
                  i + 1 < universe.size() ? "," : "");
    std::printf("]\n}\n");
    return 0;
  }

  TextTable t({"scenario", "kind", "description"});
  for (const auto& s : apps::all_scenarios())
    t.add_row({s.name, "packaged", s.description});
  t.add_row({"redzone-demo", "unlisted", demo_note});
  std::printf("%s\n", t.render().c_str());
  TextTable ft({"family", "members", "axes", "description"});
  for (const auto& f : apps::scenario_families()) {
    std::string axes;
    for (const auto& a : f.axes) {
      if (!axes.empty()) axes += " x ";
      axes += a.name + "(" + std::to_string(a.values.size()) + ")";
    }
    ft.add_row({f.name, std::to_string(core::family_size(f)), axes,
                f.description});
  }
  std::printf("%s", ft.render().c_str());
  std::printf("expand a family with: epa_cli scenarios --family <name>\n");
  return 0;
}

int cmd_trace(const std::string& name) {
  bool found = false;
  core::Scenario scenario = find_scenario(name, found);
  if (!found) return unknown_scenario(name);
  core::Campaign campaign(std::move(scenario));
  core::CampaignOptions opts;
  opts.only_sites = {"--none--"};  // discovery only
  auto r = campaign.execute(opts);

  std::printf("interaction points of %s:\n\n", name.c_str());
  TextTable t({"site", "call", "object", "kind", "input"});
  for (const auto& p : r.points)
    t.add_row({p.site.tag, p.call, p.object,
               std::string(to_string(p.kind)), p.has_input ? "yes" : "no"});
  std::printf("%s\n", t.render().c_str());
  std::printf("equivalence partition:\n%s",
              core::render_equivalence(
                  core::find_equivalence_classes(r.points))
                  .c_str());
  return 0;
}

int cmd_run(const std::string& name, const std::string& scenario_file,
            const core::CampaignOptions& opts, bool as_json) {
  core::Scenario scenario;
  if (!scenario_file.empty()) {
    scenario = scenario_from_file(scenario_file);
  } else {
    bool found = false;
    scenario = find_scenario(name, found);
    if (!found) return unknown_scenario(name);
  }
  core::Campaign campaign(std::move(scenario));
  auto r = campaign.execute(opts);
  std::printf("%s", (as_json ? core::render_json(r)
                             : core::render_report(r))
                        .c_str());
  return r.exploitable().empty() ? 0 : 3;  // 3 = candidate vulnerabilities
}

int cmd_compare(const std::string& before_name,
                const std::string& after_name) {
  bool found_b = false, found_a = false;
  core::Scenario before_s = find_scenario(before_name, found_b);
  core::Scenario after_s = find_scenario(after_name, found_a);
  if (!found_b || !found_a)
    return unknown_scenario(found_b ? after_name : before_name);
  auto before = core::Campaign(std::move(before_s)).execute();
  auto after = core::Campaign(std::move(after_s)).execute();
  auto c = core::compare(before, after);
  std::printf("%s", core::render_comparison(c).c_str());
  return c.safe() ? 0 : 3;
}

/// Render a whole-suite result (sweep or orchestrate --all) and return
/// the run/sweep exit contract: 0 clean, 3 candidate vulnerabilities.
/// `with_coverage` appends the vulnerability-coverage adequacy figures
/// (vulndb/coverage.hpp) to the totals — generated-suite sweeps only,
/// so the packaged sweep's bytes stay the pinned control.
int print_sweep(const core::SweepResult& sweep, bool as_json,
                bool with_coverage = false) {
  if (as_json) {
    std::printf("{\n\"scenarios\": [\n");
    for (std::size_t i = 0; i < sweep.results.size(); ++i)
      std::printf("%s%s", core::render_json(sweep.results[i]).c_str(),
                  i + 1 < sweep.results.size() ? ",\n" : "\n");
    std::printf(
        "],\n\"totals\": {\"points\": %d, \"injections\": %d, "
        "\"violations\": %d, \"exploitable\": %d, "
        "\"mean_vulnerability_score\": %.6f",
        sweep.total_points(), sweep.total_injections(),
        sweep.total_violations(), sweep.total_exploitable(),
        sweep.mean_vulnerability_score());
    if (with_coverage) {
      vulndb::VulnCoverage cov = vulndb::vulnerability_coverage(sweep.results);
      std::printf(", \"vuln_classes_fired\": %zu, "
                  "\"vuln_classes_total\": %d, \"vuln_coverage_pct\": %.1f",
                  cov.fired.size(), cov.total(), 100.0 * cov.fraction());
    }
    std::printf("}\n}\n");
  } else {
    TextTable t({"scenario", "points", "injections", "violations", "rho",
                 "region", "exploitable"});
    for (const auto& r : sweep.results) {
      char rho[16];
      std::snprintf(rho, sizeof rho, "%.3f", r.vulnerability_score());
      t.add_row({r.scenario_name, std::to_string(r.points.size()),
                 std::to_string(r.n()), std::to_string(r.violation_count()),
                 rho, std::string(to_string(r.region())),
                 std::to_string(r.exploitable().size())});
    }
    std::printf("%s\n%d scenarios, %d injection runs, %d violations, "
                "%d exploitable (mean rho %.3f)\n",
                t.render().c_str(), static_cast<int>(sweep.results.size()),
                sweep.total_injections(), sweep.total_violations(),
                sweep.total_exploitable(), sweep.mean_vulnerability_score());
    if (with_coverage) {
      vulndb::VulnCoverage cov = vulndb::vulnerability_coverage(sweep.results);
      std::printf("vulnerability coverage: %zu of %d EAI classes fired "
                  "(%.1f%%)\n",
                  cov.fired.size(), cov.total(), 100.0 * cov.fraction());
      for (const auto& c : cov.silent)
        std::printf("  silent %s\n", c.c_str());
    }
  }
  return sweep.total_exploitable() == 0 ? 0 : 3;
}

int cmd_sweep(const core::SweepOptions& opts, bool as_json,
              const std::string& family_name,
              const std::string& scenario_file) {
  core::MultiCampaign suite;
  bool generated = false;
  if (!family_name.empty()) {
    const core::ScenarioFamily* fam = apps::find_family(family_name);
    if (!fam) {
      std::fprintf(stderr, "epa: unknown family '%s'\nepa: %s\n",
                   family_name.c_str(),
                   apps::scenario_names_hint().c_str());
      return 1;
    }
    for (auto& s : apps::family_scenarios(*fam)) suite.add(std::move(s));
    generated = true;
  } else if (!scenario_file.empty()) {
    suite.add(scenario_from_file(scenario_file));
    generated = true;
  } else {
    for (auto& s : apps::all_scenarios()) suite.add(std::move(s));
  }
  // Generated suites carry the adequacy report; the packaged sweep's
  // output is a byte-pinned regression control and stays untouched.
  return print_sweep(suite.run(opts), as_json, generated);
}

int cmd_db(const std::string& filter) {
  const auto& db = vulndb::database();
  TextTable t({"id", "name", "os", "EAI class", "description"});
  int shown = 0;
  for (const auto& r : db) {
    auto cls = vulndb::classify_record(r);
    std::string cls_name;
    switch (cls) {
      case vulndb::EaiClass::indirect:
        cls_name = "indirect/" + std::string(to_string(*r.input_origin));
        break;
      case vulndb::EaiClass::direct:
        cls_name = "direct/" + std::string(to_string(*r.entity));
        break;
      case vulndb::EaiClass::other: cls_name = "other"; break;
      default: cls_name = "excluded/" + std::string(to_string(r.cause));
    }
    bool matches = filter.empty() ||
                   (filter == "indirect" &&
                    cls == vulndb::EaiClass::indirect) ||
                   (filter == "direct" && cls == vulndb::EaiClass::direct) ||
                   (filter == "other" && cls == vulndb::EaiClass::other) ||
                   (filter == "excluded" &&
                    cls != vulndb::EaiClass::indirect &&
                    cls != vulndb::EaiClass::direct &&
                    cls != vulndb::EaiClass::other);
    if (!matches) continue;
    ++shown;
    std::string desc = r.description.size() > 60
                           ? r.description.substr(0, 57) + "..."
                           : r.description;
    t.add_row({std::to_string(r.id), r.name, r.os, cls_name, desc});
  }
  std::printf("%s%d of %zu records\n", t.render().c_str(), shown, db.size());
  return 0;
}

int cmd_plan(const std::string& name, const std::string& scenario_file,
             core::CampaignOptions opts, const std::string& out_path,
             bool binary) {
  core::Scenario scenario;
  if (!scenario_file.empty()) {
    scenario = scenario_from_file(scenario_file);
  } else {
    bool found = false;
    scenario = find_scenario(name, found);
    if (!found) return unknown_scenario(name);
  }
  // The plan file never carries the world snapshot; don't build one.
  opts.use_world_cache = false;
  core::InjectionPlan plan = core::Planner(scenario).plan(opts);
  std::string wire = binary ? core::plan_to_binary(plan) : plan.to_json();
  if (out_path.empty()) {
    // fwrite, not printf: the binary encoding contains NUL bytes.
    std::fwrite(wire.data(), 1, wire.size(), stdout);
    return 0;
  }
  write_file(out_path, wire);
  std::printf("%s: %zu interaction points, %zu work items -> %s\n",
              scenario.name.c_str(), plan.points.size(), plan.items.size(),
              out_path.c_str());
  return 0;
}

int cmd_plan_all(const core::SweepOptions& opts, const std::string& out_dir) {
  // Create the output directory up front: planning every scenario only
  // to fail on the first write would discard all of that work.
  if (::mkdir(out_dir.c_str(), 0777) != 0 && errno != EEXIST)
    throw std::runtime_error("cannot create '" + out_dir +
                             "': " + std::strerror(errno));
  core::MultiCampaign suite;
  for (auto& s : apps::all_scenarios()) suite.add(std::move(s));
  core::SweepOptions plan_opts = opts;
  plan_opts.campaign.use_world_cache = false;  // plan files carry no snapshot
  auto plans = suite.plan_all(plan_opts);
  for (const auto& plan : plans) {
    std::string path = out_dir + "/" + plan.scenario_name + ".plan.json";
    write_file(path, plan.to_json());
    std::printf("%s: %zu interaction points, %zu work items -> %s\n",
                plan.scenario_name.c_str(), plan.points.size(),
                plan.items.size(), path.c_str());
  }
  return 0;
}

/// Set by the SIGTERM handler; run-shard's drain polls it between
/// checkpoint chunks, flushes the partial report, and exits 4 — a
/// preempted worker loses at most one chunk, never the shard.
volatile std::sig_atomic_t g_preempted = 0;

extern "C" void on_sigterm(int) { g_preempted = 1; }

struct RunShardArgs {
  std::string plan_path;
  std::string shard_spec;     // --shard K/N
  std::string resume_path;    // --resume FILE
  std::string out_path;       // --out FILE
  std::string scenario_file;  // --scenario-file: spec instead of the name
  int jobs = 1;
  bool use_world_cache = true;
  bool use_redzone = true;        // --no-redzone: disable the memory oracle
  std::size_t checkpoint = 0;     // --checkpoint K: flush every K outcomes
  long long preempt_after = 0;    // --preempt-after N: self-SIGTERM (CI)
};

int cmd_run_shard(RunShardArgs a) {
  core::InjectionPlan plan = load_plan(a.plan_path);

  std::size_t shard_index = 0, shard_count = 0;
  core::ShardReport partial;
  const bool resuming = !a.resume_path.empty();
  if (resuming) {
    partial = load_shard_report(a.resume_path);
    shard_index = partial.shard_index;
    shard_count = partial.shard_count;
    if (!a.shard_spec.empty()) {
      std::size_t want_index = 0, want_count = 0;
      parse_shard_spec(a.shard_spec, &want_index, &want_count);
      if (want_index != shard_index || want_count != shard_count)
        throw std::runtime_error(
            a.resume_path + ": holds shard " +
            std::to_string(shard_index + 1) + "/" +
            std::to_string(shard_count) + " but --shard asked for " +
            a.shard_spec);
    }
    // Completing in place is the natural resume: the partial file becomes
    // the finished report unless --out redirects it.
    if (a.out_path.empty()) a.out_path = a.resume_path;
  } else {
    parse_shard_spec(a.shard_spec, &shard_index, &shard_count);
  }

  core::Scenario scenario =
      plan_scenario(plan, a.plan_path, a.scenario_file);
  // The wire never carries the snapshot; re-freeze a local prototype so
  // the shard drains through the same COW clone path as a local run.
  if (a.use_world_cache) core::refreeze_snapshot(plan, scenario);

  core::Executor executor(scenario);
  core::ExecutorOptions opts;
  opts.jobs = a.jobs;
  opts.use_world_cache = a.use_world_cache;
  opts.use_redzone = a.use_redzone;

  long long flushes = 0;
  core::ShardDrainHooks hooks;
  if (a.checkpoint > 0) {
    // Catch SIGTERM only when the drain can actually act on it (the stop
    // flag is polled between checkpoint chunks). Without --checkpoint
    // the drain is one uninterruptible chunk and the default disposition
    // — terminate — is the right behavior, not a swallowed signal.
    std::signal(SIGTERM, on_sigterm);
    hooks.checkpoint_every = a.checkpoint;
    hooks.interrupted = [] { return g_preempted != 0; };
    hooks.on_checkpoint = [&](const core::ShardReport& r) {
      write_file_atomic(a.out_path, r.to_json());
      // The CI determinism hook: deliver the preemption signal to
      // ourselves after N flushes, through the real handler.
      if (a.preempt_after > 0 && ++flushes >= a.preempt_after)
        (void)std::raise(SIGTERM);
    };
  }

  core::ShardReport report =
      resuming ? core::resume_shard(executor, plan, partial, opts, hooks)
               : core::run_shard(executor, plan, shard_index, shard_count,
                                 opts, hooks);
  std::string json = report.to_json();
  if (a.out_path.empty()) {
    std::printf("%s", json.c_str());
    return report.complete ? 0 : 4;
  }
  write_file_atomic(a.out_path, json);
  std::printf("%s -> %s\n", core::render_shard_summary(report).c_str(),
              a.out_path.c_str());
  if (!report.complete) {
    std::fprintf(stderr,
                 "epa: preempted; partial report flushed to %s "
                 "(complete it with run-shard --resume)\n",
                 a.out_path.c_str());
    return 4;  // 4 = preempted, valid partial report on disk
  }
  return 0;
}

int cmd_merge(const std::string& plan_path,
              const std::vector<std::string>& shard_paths, bool as_json) {
  core::InjectionPlan plan = load_plan(plan_path);
  std::vector<core::ShardReport> shards;
  shards.reserve(shard_paths.size());
  // load_shard_report prefixes per-file failures with the path; the
  // paths double as labels so cross-shard validation failures (duplicate
  // shard, partial file, foreign plan) also name the offending file.
  for (const auto& path : shard_paths)
    shards.push_back(load_shard_report(path));
  core::CampaignResult r = core::merge_shard_reports(plan, shards,
                                                     shard_paths);
  std::printf("%s", (as_json ? core::render_json(r)
                             : core::render_report(r))
                        .c_str());
  return r.exploitable().empty() ? 0 : 3;  // same contract as `run`
}

// --- orchestrated execution (core/orchestrator.hpp) -------------------------

/// One control channel to the coordinator: protocol lines out, commands
/// in. The pipe flavor speaks newline-delimited lines on fds 0/1; the
/// tcp flavor carries the same line bytes as length-prefixed frames.
/// Raw fds rather than stdio — the STEAL poll between checkpoint chunks
/// needs a non-blocking read that does not fight a buffered FILE*.
class WorkerChannel {
 public:
  virtual ~WorkerChannel() = default;
  /// Send one protocol line (no trailing newline). False on a dead peer;
  /// the read side tells the death story.
  virtual bool send_line(const std::string& line) = 0;
  /// Block for the next command. False on EOF (coordinator gone).
  virtual bool recv_line(std::string* line) = 0;
  /// Pull one already-arrived command without blocking — how a draining
  /// worker notices STEAL between chunks.
  virtual bool poll_line(std::string* line) = 0;
  /// Ship a completed lease report. The tcp flavor sends it as the
  /// binary frame right after DONE; the pipe/shm planes already landed
  /// the report via the lease target, so the base is a no-op.
  virtual bool send_report(const std::string& wire) {
    (void)wire;
    return true;
  }
};

/// stdin/stdout, one protocol line per '\n' — what orchestrate's
/// fork/exec transports (pipe and shm data planes) speak.
class PipeChannel : public WorkerChannel {
 public:
  bool send_line(const std::string& line) override {
    std::string out = line;
    out.push_back('\n');
    std::size_t off = 0;
    while (off < out.size()) {
      ssize_t n = ::write(1, out.data() + off, out.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      off += static_cast<std::size_t>(n);
    }
    return true;
  }
  bool recv_line(std::string* line) override {
    while (!take(line)) {
      if (eof_) return false;
      fill(-1);
    }
    return true;
  }
  bool poll_line(std::string* line) override {
    if (take(line)) return true;
    if (!eof_) fill(0);
    return take(line);
  }

 private:
  /// Read whatever poll() reports ready within timeout_ms (-1 blocks).
  void fill(int timeout_ms) {
    pollfd p{0, POLLIN, 0};
    if (::poll(&p, 1, timeout_ms) <= 0) return;  // timeout/EINTR: no data
    char buf[4096];
    ssize_t n = ::read(0, buf, sizeof buf);
    if (n > 0)
      buf_.append(buf, static_cast<std::size_t>(n));
    else if (n == 0)
      eof_ = true;
  }
  bool take(std::string* line) {
    auto nl = buf_.find('\n');
    if (nl == std::string::npos) {
      // A command this long is a broken coordinator, not a command.
      if (buf_.size() > 65536)
        throw std::runtime_error("worker: command line exceeds 65536 bytes");
      return false;
    }
    line->assign(buf_, 0, nl);
    while (!line->empty() && line->back() == '\r') line->pop_back();
    buf_.erase(0, nl + 1);
    return true;
  }
  std::string buf_;
  bool eof_ = false;
};

/// A dialed-in tcp worker: the identical protocol lines, framed
/// (net/transport_tcp.hpp), plus the report frame after each DONE.
class TcpChannel : public WorkerChannel {
 public:
  explicit TcpChannel(int fd) : fd_(fd) {}
  ~TcpChannel() override {
    if (fd_ >= 0) ::close(fd_);
  }
  bool send_line(const std::string& line) override {
    return net::send_frame(fd_, line);
  }
  bool recv_line(std::string* line) override {
    if (eof_) return false;
    if (!net::recv_frame(fd_, &frames_, line, -1)) eof_ = true;
    return !eof_;
  }
  bool poll_line(std::string* line) override {
    if (frames_.pop(line)) return true;
    if (!eof_) eof_ = !net::pump_nonblocking(fd_, &frames_);
    return frames_.pop(line);
  }
  bool send_report(const std::string& wire) override {
    return net::send_frame(fd_, wire);
  }

 private:
  int fd_;
  net::FrameBuffer frames_;
  bool eof_ = false;
};

struct WorkerArgs {
  std::string plan_path;
  std::string arena_path;        // --arena: shm data plane (binary plan +
                                 // per-lease report segments)
  std::string connect_host;      // --connect: tcp data plane
  std::string scenario_file;     // --scenario-file: spec instead of the
                                 // plan's scenario name
  int connect_port = 0;
  int jobs = 1;
  bool use_world_cache = true;
  bool use_redzone = true;       // --no-redzone: disable the memory oracle
  long long preempt_after = 0;   // self-preempt after N leases, or — with
                                 // --checkpoint — after N flushes (CI hook)
  std::size_t checkpoint = 0;    // flush partials every K outcomes
  long long drain_delay_ms = 0;  // sleep before each chunk (straggler hook)
};

/// The worker's protocol version for HELLO. EPA_WORKER_PROTOCOL overrides
/// it — the test hook that manufactures an old fleet so the handshake
/// rejection path is exercised on every data plane.
long long worker_protocol_version() {
  const char* env = std::getenv("EPA_WORKER_PROTOCOL");
  if (!env || !*env) return core::kWorkerProtocolVersion;
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(env, &end, 10);
  if (errno == ERANGE || end == env || *end != '\0')
    return core::kWorkerProtocolVersion;
  return v;
}

/// The persistent worker half of the orchestrator: parse the plan and
/// re-freeze the COW prototype exactly once, then serve LEASE commands
/// until EXIT/EOF. The first line out is always `HELLO <version>` — a
/// coordinator speaking a different protocol rejects the worker before
/// any lease is granted. Protocol lines only on the control channel;
/// everything human-facing goes to stderr. SIGTERM is graceful
/// preemption: with --checkpoint the in-flight lease stops at the next
/// chunk boundary (partial flushed, no DONE, exit 4); without it the
/// in-flight lease finishes and the *next* one is refused with exit 4.
/// Either way the orchestrator re-leases the unfinished range.
///
/// With --checkpoint the worker also sends a PING heartbeat after every
/// chunk (feeding the coordinator's deadman) and polls for STEAL between
/// chunks: a stolen lease is answered with `YIELD <mid> <end>` — the
/// worker keeps the drained prefix [begin, mid) and the coordinator
/// re-leases the tail to an idle worker.
///
/// With --arena the data plane is the mmap'd arena (core/arena.hpp): the
/// plan comes out of the arena's binary plan region, a lease's target is
/// the token `@<seq>` naming its arena segment, reports are encoded with
/// shard_report_to_binary straight into that segment, and DONE carries
/// the (offset, length) handoff instead of a file path.
///
/// With --connect the whole exchange rides one tcp socket: HELLO up,
/// the binary plan down as the first frame, then the same protocol
/// lines framed, with each DONE followed by the lease's binary report
/// frame. The worker announces its exit with `BYE <status>` so the
/// coordinator can tell a clean exit from a lost host.
int cmd_worker(const WorkerArgs& a) {
  const bool use_arena = !a.arena_path.empty();
  const bool use_tcp = !a.connect_host.empty();
  std::optional<core::ShmArena> arena;
  core::InjectionPlan plan;
  std::unique_ptr<WorkerChannel> chan;
  std::string plan_src;
  if (use_tcp) {
    chan = std::make_unique<TcpChannel>(
        net::tcp_connect(a.connect_host, a.connect_port));
    // HELLO before anything else — the coordinator checks the version
    // before it ships the plan.
    chan->send_line(core::format_hello(worker_protocol_version()));
    plan_src = a.connect_host + ":" + std::to_string(a.connect_port);
    std::string frame;
    if (!chan->recv_line(&frame))
      throw std::runtime_error(
          plan_src + ": coordinator closed the connection before sending "
                     "a plan (handshake rejected?)");
    try {
      plan = core::plan_from_binary(frame);
    } catch (const core::WireError& e) {
      throw std::runtime_error(plan_src + ": " + e.what());
    }
  } else if (use_arena) {
    chan = std::make_unique<PipeChannel>();
    chan->send_line(core::format_hello(worker_protocol_version()));
    arena.emplace(core::ShmArena::open(a.arena_path));
    try {
      plan = core::plan_from_binary(arena->plan_data(), arena->plan_size());
    } catch (const core::WireError& e) {
      throw std::runtime_error(a.arena_path + ": " + e.what());
    }
    plan_src = a.arena_path;
  } else {
    chan = std::make_unique<PipeChannel>();
    chan->send_line(core::format_hello(worker_protocol_version()));
    plan = load_plan(a.plan_path);
    plan_src = a.plan_path;
  }
  core::Scenario scenario = plan_scenario(plan, plan_src, a.scenario_file);
  if (a.use_world_cache) core::refreeze_snapshot(plan, scenario);
  core::Executor executor(scenario);
  core::ExecutorOptions opts;
  opts.jobs = a.jobs;
  opts.use_world_cache = a.use_world_cache;
  opts.use_redzone = a.use_redzone;
  std::signal(SIGTERM, on_sigterm);
  // One line per process by design: the ctest worker-protocol check
  // counts these to pin "parse + re-freeze happen once, not per lease".
  std::fprintf(stderr,
               "epa worker: parsed %s (%zu items), prototype %s; serving\n",
               plan_src.c_str(), plan.items.size(),
               plan.snapshot ? "frozen" : "uncached");

  long long done = 0;
  long long flushes = 0;  // cumulative across leases, like `done`
  auto serve = [&]() -> int {
    std::string cmd;
    while (chan->recv_line(&cmd)) {
      core::ProtocolMsg msg;
      if (!core::parse_protocol_line(cmd, &msg)) {
        std::fprintf(stderr, "epa: worker: malformed command '%s'\n",
                     cmd.c_str());
        return 1;
      }
      if (msg.type == core::ProtocolMsg::Type::exit_cmd) break;
      if (msg.type == core::ProtocolMsg::Type::steal) continue;  // the
      // benign race: the lease it wanted stolen finished before the
      // STEAL arrived; there is nothing left to yield.
      if (msg.type == core::ProtocolMsg::Type::feedback) {
        // The search plane's item append (protocol v3): the coordinator
        // generated items past the range this worker's plan copy carries.
        // The append must be gap-free — begin names exactly the current
        // item count, or a lost FEEDBACK would silently shift every later
        // id — and the spec's length must match the announced range.
        if (msg.begin != plan.items.size()) {
          std::fprintf(stderr,
                       "epa: worker: FEEDBACK begins at %zu but the plan "
                       "holds %zu items (lost feedback?)\n",
                       msg.begin, plan.items.size());
          return 1;
        }
        std::vector<core::WorkItem> appended;
        try {
          appended =
              core::parse_feedback_spec(msg.target, plan.points.size());
        } catch (const core::WireError& e) {
          std::fprintf(stderr, "epa: worker: %s\n", e.what());
          return 1;
        }
        if (msg.end != msg.begin + appended.size()) {
          std::fprintf(stderr,
                       "epa: worker: FEEDBACK range [%zu, %zu) but the "
                       "spec carries %zu item(s)\n",
                       msg.begin, msg.end, appended.size());
          return 1;
        }
        for (auto& item : appended) plan.items.push_back(std::move(item));
        // A search plan can start empty (every item arrives as
        // feedback); the prototype freeze was a no-op then, so pay it on
        // the first append instead.
        if (a.use_world_cache) core::refreeze_snapshot(plan, scenario);
        continue;
      }
      if (msg.type != core::ProtocolMsg::Type::lease) {
        std::fprintf(stderr, "epa: worker: unexpected command '%s'\n",
                     cmd.c_str());
        return 1;
      }
      std::size_t begin = msg.begin, end = msg.end;
      std::string target = msg.target;
      std::size_t seq = 0;
      if (use_arena) {
        errno = 0;
        char* tok_end = nullptr;
        unsigned long long v =
            !target.empty() && target[0] == '@'
                ? std::strtoull(target.c_str() + 1, &tok_end, 10)
                : 0;
        if (target.empty() || target[0] != '@' || errno == ERANGE ||
            tok_end == target.c_str() + 1 || *tok_end != '\0') {
          std::fprintf(stderr,
                       "epa: worker: arena lease target must be @<seq>, "
                       "got '%s'\n",
                       target.c_str());
          return 1;
        }
        seq = static_cast<std::size_t>(v);
      }
      if (g_preempted) {
        std::fprintf(stderr,
                     "epa: worker preempted; lease [%zu, %zu) not drained\n",
                     begin, end);
        return 4;  // the orchestrator re-leases [begin, end)
      }

      // Where (partial and final) reports land for this lease. The tcp
      // plane ships the report as a frame after DONE instead, so its
      // flush is a no-op. The arena flush bounds-checks before touching
      // the segment: a report that outgrows its segment is a clean
      // worker failure, never a neighboring lease's bytes overwritten.
      std::size_t flushed_bytes = 0;
      auto flush = [&](const core::ShardReport& r) {
        if (use_tcp) return;
        if (!use_arena) {
          write_file_atomic(target, r.to_json());
          return;
        }
        std::string bin = core::shard_report_to_binary(r);
        if (bin.size() > arena->segment_bytes())
          throw std::runtime_error(
              "worker: lease " + std::to_string(seq) + " report (" +
              std::to_string(bin.size()) +
              " bytes) exceeds the arena segment capacity (" +
              std::to_string(arena->segment_bytes()) + " bytes)");
        std::memcpy(arena->segment(seq), bin.data(), bin.size());
        flushed_bytes = bin.size();
      };

      bool steal_requested = false;
      std::size_t chunks = 0;
      core::ShardDrainHooks hooks;
      if (a.checkpoint > 0) {
        hooks.checkpoint_every = a.checkpoint;
        hooks.interrupted = [&] {
          // The straggler hook: slow every chunk down so CI can force a
          // lease split deterministically.
          if (a.drain_delay_ms > 0)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(a.drain_delay_ms));
          if (g_preempted) return true;
          std::string in;
          while (chan->poll_line(&in)) {
            core::ProtocolMsg m;
            if (core::parse_protocol_line(in, &m) &&
                m.type == core::ProtocolMsg::Type::steal)
              steal_requested = true;
          }
          // Honor a STEAL only once a chunk has landed — the yielded
          // split point must sit strictly inside the lease.
          return steal_requested && chunks > 0;
        };
        hooks.on_checkpoint = [&](const core::ShardReport& r) {
          ++chunks;
          flush(r);
          // Heartbeat at every checkpoint: the coordinator's deadman
          // only trusts a worker it has heard from recently.
          chan->send_line(core::format_ping());
          // CI determinism hook (--checkpoint mode): preempt mid-lease
          // at the Nth flush, counted across the worker's whole lifetime
          // so replacements make progress before being preempted too.
          if (a.preempt_after > 0 && ++flushes >= a.preempt_after)
            (void)std::raise(SIGTERM);
        };
      }
      core::ShardReport report =
          core::run_lease(executor, plan, begin, end, opts, hooks);
      if (!report.complete && g_preempted) {
        // Preempted mid-lease: flush the partial (for post-mortems; the
        // orchestrator re-drains the whole range) and exit *without*
        // DONE — a DONE line must always name a complete report.
        flush(report);
        std::fprintf(stderr,
                     "epa: worker preempted mid-lease; partial for "
                     "[%zu, %zu) flushed, range will be re-leased\n",
                     begin, end);
        return 4;
      }
      if (!report.complete) {
        // Stopped for a STEAL: keep the drained prefix [begin, mid) and
        // surrender [mid, end). Shrinking assigned_ids to exactly the
        // drained ids makes the prefix a *complete* report for the kept
        // half — the DONE below names the shrunk lease.
        std::size_t mid = begin + report.item_ids.size();
        report.assigned_ids = report.item_ids;
        report.complete = true;
        chan->send_line(core::format_yield(mid, end));
        std::fprintf(stderr,
                     "epa worker: yielded [%zu, %zu) of lease [%zu, %zu)\n",
                     mid, end, begin, end);
        end = mid;
      }
      // Flush *before* DONE: a DONE line always names a readable,
      // complete report, even if this worker dies right after.
      flush(report);
      if (use_arena)
        chan->send_line(core::format_done(begin, end,
                                          arena->segment_offset(seq),
                                          flushed_bytes));
      else
        chan->send_line(core::format_done(begin, end));
      if (use_tcp) chan->send_report(core::shard_report_to_binary(report));
      ++done;
      // CI determinism hook (lease mode): deliver the preemption signal
      // to ourselves after N served leases, through the real handler.
      if (a.checkpoint == 0 && a.preempt_after > 0 && done >= a.preempt_after)
        (void)std::raise(SIGTERM);
    }
    return 0;
  };

  int rc = 0;
  try {
    rc = serve();
  } catch (...) {
    // A tcp coordinator cannot see an exit status — announce the death
    // so it is classified `died`, not a lost host to re-lease around.
    if (use_tcp) chan->send_line(core::format_bye(1));
    throw;
  }
  if (use_tcp) chan->send_line(core::format_bye(rc));
  std::fprintf(stderr, "epa worker: served %lld lease(s), exiting\n", done);
  return rc;
}

enum class DataPlane { pipe, shm, tcp };

/// `--lease auto` (the default): size leases from the measured per-item
/// cost. Planning runs the scenario once (the trace run), so the
/// planning wall time is a live sample of roughly one build plus one
/// run on this machine. Targeting ~250ms of drain per lease gives
/// build-heavy scenarios smaller initial leases — rebalancing around
/// stragglers and preemptions happens at lease grain, so an expensive
/// lease is a long time to be stuck — while the classic
/// items/(workers*4) grain stays the ceiling, so cheap scenarios keep
/// marginal per-lease costs. Lease sizing never changes merged output
/// (outcomes land by stable id); only scheduling granularity moves.
std::size_t auto_lease_items(std::size_t plan_items, int workers,
                             double plan_ms) {
  const std::size_t grain = std::max<std::size_t>(
      1, plan_items / (static_cast<std::size_t>(workers) * 4));
  const double per_item_ms = plan_ms / 2.0;  // trace ~ build + one run
  if (per_item_ms <= 0.0) return grain;
  const double by_cost = 250.0 / per_item_ms;
  if (by_cost >= static_cast<double>(grain)) return grain;
  return std::max<std::size_t>(1, static_cast<std::size_t>(by_cost));
}

/// Parse a `--lease` value: `auto` (measured sizing) or an explicit
/// item count — the same strict validation every numeric flag gets.
void parse_lease_flag(const std::string& flag, int argc, char** argv,
                      int* i, long long* lease, bool* lease_auto) {
  std::string v = flag_value(flag, argc, argv, i);
  if (v == "auto") {
    *lease_auto = true;
    return;
  }
  errno = 0;
  char* end = nullptr;
  long long k = std::strtoll(v.c_str(), &end, 10);
  if (errno == ERANGE || end == v.c_str() || *end != '\0')
    flag_fail(flag, "value '" + v + "' is not an integer or 'auto'");
  if (k < 1 || k > (1LL << 30))
    flag_fail(flag, "value " + v + " out of range [1, " +
                        std::to_string(1LL << 30) + "]");
  *lease = k;
  *lease_auto = false;
}

struct OrchestrateArgs {
  std::string scenario;
  std::string scenario_file;  // --scenario-file: spec instead of a name
  bool all = false;
  int workers = 2;
  long long lease = 0;          // items per lease (explicit --lease K)
  bool lease_auto = true;       // --lease auto: measured sizing (default)
  int jobs = 1;                 // per-worker --jobs
  long long preempt_after = 0;  // forwarded to workers (CI hook)
  long long checkpoint = 0;     // forwarded to workers: mid-lease partials
  long long drain_delay_ms = 0;  // forwarded: straggler hook (CI)
  DataPlane plane = DataPlane::pipe;
  long long deadman_ms = 0;     // silence budget; 0 = no deadman
  int listen_port = 0;          // tcp: port to bind (0 = ephemeral)
  std::string port_file;        // tcp: where to publish the bound port
  bool as_json = false;
  bool use_world_cache = true;
  bool use_redzone = true;  // --no-redzone forwarded to workers
  std::string dir;  // plan + lease/arena files; empty = fresh temp dir
};

int cmd_orchestrate(const OrchestrateArgs& a, const char* argv0) {
  const bool tcp = a.plane == DataPlane::tcp;
  std::string dir = a.dir;
  if (!tcp) {  // the tcp plane moves no files; nothing to create
    if (dir.empty()) {
      const char* tmp = std::getenv("TMPDIR");
      std::string tmpl = std::string(tmp && *tmp ? tmp : "/tmp") +
                         "/epa-orch.XXXXXX";
      if (!::mkdtemp(tmpl.data()))
        throw std::runtime_error(std::string("cannot create temp dir: ") +
                                 std::strerror(errno));
      dir = tmpl;
    } else if (::mkdir(dir.c_str(), 0777) != 0 && errno != EEXIST) {
      throw std::runtime_error("cannot create '" + dir +
                               "': " + std::strerror(errno));
    }
  }

  std::vector<core::Scenario> scenarios;
  if (a.all) {
    scenarios = apps::all_scenarios();
  } else if (!a.scenario_file.empty()) {
    scenarios.push_back(scenario_from_file(a.scenario_file));
  } else {
    bool found = false;
    core::Scenario s = find_scenario(a.scenario, found);
    if (!found) return unknown_scenario(a.scenario);
    scenarios.push_back(std::move(s));
  }

  core::SweepResult sweep;
  for (const core::Scenario& scenario : scenarios) {
    // The coordinator plans in-process and keeps the plan in memory for
    // the merge; only workers pay a plan parse (once per process).
    core::CampaignOptions popts;
    popts.use_world_cache = false;  // the plan file carries no snapshot
    popts.use_redzone = a.use_redzone;
    const auto plan_t0 = std::chrono::steady_clock::now();
    core::InjectionPlan plan = core::Planner(scenario).plan(popts);
    const double plan_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - plan_t0)
            .count();

    core::OrchestratorOptions oopts;
    oopts.workers = a.workers;
    oopts.lease_items =
        a.lease_auto
            ? auto_lease_items(plan.items.size(), a.workers, plan_ms)
            : static_cast<std::size_t>(a.lease);
    if (a.lease_auto)
      std::fprintf(stderr,
                   "epa orchestrate: %s: auto lease grain %zu item(s) "
                   "(planning took %.0f ms)\n",
                   scenario.name.c_str(), oopts.lease_items, plan_ms);
    oopts.deadman_ms = a.deadman_ms;

    std::unique_ptr<core::Transport> transport;
    if (tcp) {
      net::TcpTransportConfig tcfg;
      tcfg.listen_port = a.listen_port;
      tcfg.port_file = a.port_file;
      tcfg.workers = a.workers;
      auto t = std::make_unique<net::TcpTransport>(tcfg, plan);
      std::fprintf(stderr,
                   "epa orchestrate: listening on port %d; waiting for "
                   "%d worker(s) (epa_cli worker --connect HOST:%d)\n",
                   t->port(), a.workers, t->port());
      transport = std::move(t);
    } else {
      core::LocalProcessConfig cfg;
      cfg.epa_cli = core::LocalProcessTransport::self_exe(argv0);
      cfg.out_dir = dir;
      cfg.file_prefix = scenario.name;
      // A spec file is forwarded so workers compile the same spec the
      // coordinator planned, even when its name is not in the registry.
      cfg.scenario_file = a.scenario_file;
      cfg.jobs = a.jobs;
      cfg.use_world_cache = a.use_world_cache;
      cfg.use_redzone = a.use_redzone;
      cfg.preempt_after = a.preempt_after;
      cfg.checkpoint = a.checkpoint;
      cfg.drain_delay_ms = a.drain_delay_ms;
      if (a.plane == DataPlane::shm) {
        // The shm data plane writes no plan JSON at all: the binary plan
        // is frozen into the arena, sized against the exact lease
        // partition orchestrate() will schedule (plus the reserve for
        // stolen-tail leases).
        transport = std::make_unique<core::ShmLocalTransport>(
            cfg, plan, core::lease_partition(plan.items.size(), oopts));
      } else {
        std::string plan_path = dir + "/" + scenario.name + ".plan.json";
        write_file(plan_path, plan.to_json());
        cfg.plan_path = plan_path;
        transport = std::make_unique<core::LocalProcessTransport>(cfg);
      }
    }

    core::OrchestratorStats stats;
    sweep.results.push_back(
        core::orchestrate(plan, *transport, oopts, &stats));
    std::fprintf(stderr,
                 "epa orchestrate: %s: %zu leases across %zu worker(s) "
                 "(%zu re-leased, %zu preempted, %zu spawned, %zu split, "
                 "%zu deadman)\n",
                 scenario.name.c_str(), stats.leases_total,
                 static_cast<std::size_t>(a.workers), stats.leases_released,
                 stats.workers_preempted, stats.workers_spawned,
                 stats.leases_split, stats.deadman_expiries);
  }
  if (!tcp)
    std::fprintf(stderr, "epa orchestrate: plan and %s files in %s\n",
                 a.plane == DataPlane::shm ? "arena" : "lease", dir.c_str());
  // The adequacy summary rides stderr: stdout stays byte-identical to a
  // single-process run/sweep on every data plane.
  vulndb::VulnCoverage cov = vulndb::vulnerability_coverage(sweep.results);
  std::fprintf(stderr,
               "epa orchestrate: vulnerability coverage %zu/%d EAI "
               "classes (%.1f%%)\n",
               cov.fired.size(), cov.total(), 100.0 * cov.fraction());
  // One line per fired class: the search smoke leg diffs these against a
  // coverage-guided search's to prove the search lost no class.
  for (const auto& c : cov.fired)
    std::fprintf(stderr, "epa orchestrate: fired %s\n", c.c_str());

  if (a.all) return print_sweep(sweep, a.as_json);
  const core::CampaignResult& r = sweep.results.front();
  std::printf("%s", (a.as_json ? core::render_json(r)
                               : core::render_report(r))
                        .c_str());
  return r.exploitable().empty() ? 0 : 3;  // same contract as `run`
}

// --- coverage-guided search (core/search.hpp, docs/SEARCH.md) ---------------

struct SearchArgs {
  std::string scenario;
  std::string scenario_file;  // --scenario-file: spec instead of a name
  std::string family;         // --family F: cumulative sequential search
  std::uint64_t seed = 1;
  long long budget = 0;       // required: total injection runs
  long long batch = 16;       // wave size cap
  int jobs = 1;
  int workers = 0;            // 0 = in-process drain; > 0 = orchestrated
  DataPlane plane = DataPlane::pipe;
  long long lease = 0;
  bool lease_auto = true;
  int listen_port = 0;        // tcp
  std::string port_file;      // tcp
  std::string state_path;     // --state FILE: checkpoint at wave barriers
  bool resume = false;        // --resume: replay --state when it exists
  long long stop_after = 0;   // stop after W wave barriers, exit 4
  bool as_json = false;
  bool use_world_cache = true;
  bool use_redzone = true;
  std::string dir;
};

/// The search drive: one SearchWorkSource per scenario, drained either
/// in-process (run_search) or across a worker fleet (orchestrate_source
/// — the workers learn generated items via protocol FEEDBACK). A family
/// search runs its members sequentially through ONE shared NoveltyScorer
/// with the budget split evenly (remainder to the first member), so a
/// class fired by member one stops paying rent in member two. Exit
/// contract: 0/3 like `run`, 4 when --stop-after ended the search early
/// (checkpoint flushed; finish with --resume).
int cmd_search(const SearchArgs& a, const char* argv0) {
  std::vector<core::Scenario> scenarios;
  if (!a.family.empty()) {
    const core::ScenarioFamily* fam = apps::find_family(a.family);
    if (!fam) {
      std::fprintf(stderr, "epa: unknown family '%s'\nepa: %s\n",
                   a.family.c_str(), apps::scenario_names_hint().c_str());
      return 1;
    }
    scenarios = apps::family_scenarios(*fam);
  } else if (!a.scenario_file.empty()) {
    scenarios.push_back(scenario_from_file(a.scenario_file));
  } else {
    bool found = false;
    core::Scenario s = find_scenario(a.scenario, found);
    if (!found) return unknown_scenario(a.scenario);
    scenarios.push_back(std::move(s));
  }

  const bool orchestrated = a.workers > 0;
  const bool tcp = a.plane == DataPlane::tcp;
  std::string dir = a.dir;
  if (orchestrated && !tcp) {
    if (dir.empty()) {
      const char* tmp = std::getenv("TMPDIR");
      std::string tmpl = std::string(tmp && *tmp ? tmp : "/tmp") +
                         "/epa-search.XXXXXX";
      if (!::mkdtemp(tmpl.data()))
        throw std::runtime_error(std::string("cannot create temp dir: ") +
                                 std::strerror(errno));
      dir = tmpl;
    } else if (::mkdir(dir.c_str(), 0777) != 0 && errno != EEXIST) {
      throw std::runtime_error("cannot create '" + dir +
                               "': " + std::strerror(errno));
    }
  }

  core::NoveltyScorer scorer;  // shared across family members
  core::SweepResult sweep;
  std::size_t exhaustive_items = 0;
  std::size_t generated_items = 0;
  for (std::size_t m = 0; m < scenarios.size(); ++m) {
    const core::Scenario& scenario = scenarios[m];
    const std::size_t budget = static_cast<std::size_t>(a.budget);
    const std::size_t member_budget =
        budget / scenarios.size() +
        (m == 0 ? budget % scenarios.size() : 0);

    // The exhaustive plan is the candidate frontier; its planning wall
    // time doubles as the per-item cost sample for --lease auto.
    core::CampaignOptions popts;
    popts.use_world_cache = orchestrated ? false : a.use_world_cache;
    popts.use_redzone = a.use_redzone;
    const auto plan_t0 = std::chrono::steady_clock::now();
    core::InjectionPlan base = core::Planner(scenario).plan(popts);
    const double plan_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - plan_t0)
            .count();
    exhaustive_items += base.items.size();

    core::SearchOptions sopts;
    sopts.seed = a.seed;
    sopts.budget = member_budget;
    sopts.batch = static_cast<std::size_t>(a.batch);
    sopts.classify = [](core::FaultKind kind, const std::string& name) {
      return vulndb::coverage_class(kind, name);
    };
    core::SearchWorkSource source(std::move(base), sopts, &scorer);

    // Resume replays the checkpointed waves *before* the checkpoint hook
    // is installed, so replay never re-writes the state file. A missing
    // state file is a fresh start — a search killed before its first
    // wave barrier left nothing behind, by design.
    if (a.resume) {
      struct stat st{};
      if (::stat(a.state_path.c_str(), &st) == 0)
        source.resume(core::search_state_from_json(read_file(a.state_path)));
    }
    if (!a.state_path.empty())
      source.set_checkpoint([&](const core::SearchState& s) {
        write_file_atomic(a.state_path, core::search_state_to_json(s));
      });

    core::CampaignResult result;
    if (!orchestrated) {
      core::Executor executor(scenario);
      core::ExecutorOptions eopts;
      eopts.jobs = a.jobs;
      eopts.use_world_cache = a.use_world_cache;
      eopts.use_redzone = a.use_redzone;
      core::SearchRunResult run = core::run_search(
          executor, source, eopts, static_cast<std::size_t>(a.stop_after));
      if (run.stopped) {
        std::fprintf(stderr,
                     "epa search: stopped after %zu wave(s); state "
                     "checkpointed to %s (finish with --resume)\n",
                     run.waves, a.state_path.c_str());
        return 4;
      }
      result = std::move(run.result);
    } else {
      core::OrchestratorOptions oopts;
      oopts.workers = a.workers;
      // Waves are at most `batch` items, so the auto grain sizes leases
      // against the wave, not the (unbounded) generated stream.
      oopts.lease_items =
          a.lease_auto
              ? auto_lease_items(sopts.batch, a.workers, plan_ms)
              : static_cast<std::size_t>(a.lease);

      const std::size_t known = source.plan().items.size();
      std::unique_ptr<core::Transport> transport;
      if (tcp) {
        net::TcpTransportConfig tcfg;
        tcfg.listen_port = a.listen_port;
        tcfg.port_file = a.port_file;
        tcfg.workers = a.workers;
        auto t = std::make_unique<net::TcpTransport>(tcfg, source.plan());
        std::fprintf(stderr,
                     "epa search: listening on port %d; waiting for "
                     "%d worker(s) (epa_cli worker --connect HOST:%d)\n",
                     t->port(), a.workers, t->port());
        transport = std::move(t);
      } else {
        core::LocalProcessConfig cfg;
        cfg.epa_cli = core::LocalProcessTransport::self_exe(argv0);
        cfg.out_dir = dir;
        cfg.file_prefix = scenario.name;
        cfg.scenario_file = a.scenario_file;
        cfg.jobs = a.jobs;
        cfg.use_world_cache = a.use_world_cache;
        cfg.use_redzone = a.use_redzone;
        if (a.plane == DataPlane::shm) {
          // The arena needs a segment per lease seq up front, but search
          // leases are cut per wave as items are generated. Bound the seq
          // space instead of enumerating it: every lease covers at least
          // one item and the stream is capped at the budget, so budget
          // leases (the ctor adds the stolen-tail reserve) of the grain's
          // span each cover the worst case.
          const std::size_t max_lease = std::max<std::size_t>(
              1, std::min(oopts.lease_items,
                          std::min(sopts.batch,
                                   std::max<std::size_t>(member_budget, 1))));
          std::vector<core::Lease> synth;
          for (std::size_t s = 0; s < std::max<std::size_t>(member_budget, 1);
               ++s)
            synth.push_back({s, 0, max_lease});
          transport = std::make_unique<core::ShmLocalTransport>(
              cfg, source.plan(), synth);
        } else {
          std::string plan_path = dir + "/" + scenario.name + ".plan.json";
          write_file(plan_path, source.plan().to_json());
          cfg.plan_path = plan_path;
          transport = std::make_unique<core::LocalProcessTransport>(cfg);
        }
      }

      core::OrchestratorStats stats;
      result = core::orchestrate_source(source, *transport, oopts, &stats,
                                        known);
      std::fprintf(stderr,
                   "epa search: %s: %zu leases across %zu worker(s) "
                   "(%zu re-leased, %zu preempted, %zu spawned, %zu split)\n",
                   scenario.name.c_str(), stats.leases_total,
                   static_cast<std::size_t>(a.workers),
                   stats.leases_released, stats.workers_preempted,
                   stats.workers_spawned, stats.leases_split);
    }
    generated_items += source.plan().items.size();
    std::fprintf(stderr,
                 "epa search: %s: %zu item(s) in %zu wave(s), budget %zu\n",
                 scenario.name.c_str(), source.plan().items.size(),
                 source.waves_generated(), member_budget);
    sweep.results.push_back(std::move(result));
  }

  // The adequacy lines ride stderr (stdout is the report, byte-compared
  // across planes and worker counts by the determinism tests). The fired
  // classes are listed one per line so adequacy tooling — and the CI
  // superset check against an exhaustive drain — can consume them
  // without parsing the report.
  vulndb::VulnCoverage cov = vulndb::vulnerability_coverage(sweep.results);
  std::fprintf(stderr,
               "epa search: %zu of %zu exhaustive item(s) spent (%.1f%%), "
               "vulnerability coverage %zu/%d EAI classes (%.1f%%)\n",
               generated_items, exhaustive_items,
               exhaustive_items == 0
                   ? 0.0
                   : 100.0 * static_cast<double>(generated_items) /
                         static_cast<double>(exhaustive_items),
               cov.fired.size(), cov.total(), 100.0 * cov.fraction());
  for (const auto& c : cov.fired)
    std::fprintf(stderr, "epa search: fired %s\n", c.c_str());

  if (scenarios.size() > 1) return print_sweep(sweep, a.as_json, true);
  const core::CampaignResult& r = sweep.results.front();
  std::printf("%s", (a.as_json ? core::render_json(r)
                               : core::render_report(r))
                        .c_str());
  return r.exploitable().empty() ? 0 : 3;  // same contract as `run`
}

/// Malformed or partial wire files must exit non-zero with a clear
/// message, never let an exception escape main.
template <typename Fn>
int guarded(Fn&& fn) {
  try {
    return fn();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "epa: %s\n", e.what());
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  std::string cmd = argv[1];
  if (cmd == "list") return cmd_list();
  if (cmd == "scenarios") {
    std::string family, spec_name;
    bool as_json = false;
    for (int i = 2; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--json") {
        as_json = true;
      } else if (arg == "--family") {
        family = flag_value(arg, argc, argv, &i);
      } else if (arg == "--spec") {
        spec_name = flag_value(arg, argc, argv, &i);
      } else {
        std::fprintf(stderr, "epa: unknown option '%s'\n", arg.c_str());
        return usage();
      }
    }
    if (!family.empty() && !spec_name.empty()) {
      std::fprintf(stderr, "epa: --family and --spec are exclusive\n");
      return 1;
    }
    return guarded([&] { return cmd_scenarios(family, spec_name, as_json); });
  }
  if (cmd == "db") return cmd_db(argc >= 3 ? argv[2] : "");
  if (cmd == "sweep") {
    core::SweepOptions opts;
    bool as_json = false;
    std::string family, scenario_file;
    for (int i = 2; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--json") {
        as_json = true;
      } else if (arg == "--merge") {
        opts.campaign.merge_equivalent_sites = true;
      } else if (arg == "--jobs") {
        opts.jobs = static_cast<int>(int_flag(arg, argc, argv, &i, 1, 4096));
      } else if (arg == "--seed") {
        opts.campaign.seed = uint64_flag(arg, argc, argv, &i);
      } else if (arg == "--family") {
        family = flag_value(arg, argc, argv, &i);
      } else if (arg == "--scenario-file") {
        scenario_file = flag_value(arg, argc, argv, &i);
      } else if (arg == "--no-world-cache") {
        opts.campaign.use_world_cache = false;
      } else if (arg == "--no-redzone") {
        opts.campaign.use_redzone = false;
      } else {
        std::fprintf(stderr, "epa: unknown option '%s'\n", arg.c_str());
        return usage();
      }
    }
    if (!family.empty() && !scenario_file.empty()) {
      std::fprintf(stderr,
                   "epa: --family and --scenario-file are exclusive\n");
      return 1;
    }
    return guarded([&] {
      return cmd_sweep(opts, as_json, family, scenario_file);
    });
  }
  if (cmd == "plan") {
    core::CampaignOptions opts;
    core::SweepOptions sweep_opts;
    bool all = false, saw_out_dir = false, saw_jobs = false;
    bool saw_sites = false, saw_coverage = false, binary = false;
    std::string scenario_name, scenario_file, out_path, out_dir = ".";
    for (int i = 2; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--all") {
        all = true;
      } else if (arg == "--binary") {
        binary = true;
      } else if (arg == "--merge") {
        opts.merge_equivalent_sites = true;
      } else if (arg == "--sites" && i + 1 < argc) {
        opts.only_sites = split(std::string(argv[++i]), ',');
        saw_sites = true;
      } else if (arg == "--coverage") {
        opts.target_interaction_coverage =
            unit_interval_flag(arg, argc, argv, &i);
        saw_coverage = true;
      } else if (arg == "--seed") {
        opts.seed = uint64_flag(arg, argc, argv, &i);
      } else if (arg == "--jobs") {
        sweep_opts.jobs =
            static_cast<int>(int_flag(arg, argc, argv, &i, 1, 4096));
        saw_jobs = true;
      } else if (arg == "--out" && i + 1 < argc) {
        out_path = argv[++i];
      } else if (arg == "--out-dir" && i + 1 < argc) {
        out_dir = argv[++i];
        saw_out_dir = true;
      } else if (arg == "--scenario-file") {
        scenario_file = flag_value(arg, argc, argv, &i);
      } else if (!starts_with(arg, "--") && scenario_name.empty()) {
        scenario_name = arg;
      } else {
        std::fprintf(stderr, "epa: unknown option '%s'\n", arg.c_str());
        return usage();
      }
    }
    // Exactly one of --all / <scenario> / --scenario-file must be given,
    // and flags must match the mode — a silently ignored flag hides a
    // typo'd command.
    if ((all ? 1 : 0) + (scenario_name.empty() ? 0 : 1) +
            (scenario_file.empty() ? 0 : 1) !=
        1)
      return usage();
    if (all && !out_path.empty()) {
      std::fprintf(stderr,
                   "epa: --out applies to single-scenario plan only "
                   "(use --out-dir with --all)\n");
      return usage();
    }
    if (all && binary) {
      std::fprintf(stderr,
                   "epa: --binary applies to single-scenario plan only\n");
      return usage();
    }
    if (all && (saw_sites || saw_coverage)) {
      // Site tags are per-scenario: a typo'd --sites under --all would
      // silently plan zero work items for every scenario.
      std::fprintf(stderr,
                   "epa: %s applies to single-scenario plan only\n",
                   saw_sites ? "--sites" : "--coverage");
      return usage();
    }
    if (!all && (saw_out_dir || saw_jobs)) {
      std::fprintf(stderr,
                   "epa: %s applies to plan --all only\n",
                   saw_out_dir ? "--out-dir" : "--jobs");
      return usage();
    }
    sweep_opts.campaign = opts;
    return guarded([&] {
      return all ? cmd_plan_all(sweep_opts, out_dir)
                 : cmd_plan(scenario_name, scenario_file, opts, out_path,
                            binary);
    });
  }
  if (cmd == "run-shard") {
    RunShardArgs a;
    for (int i = 2; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--shard" && i + 1 < argc) {
        a.shard_spec = argv[++i];
      } else if (arg == "--resume" && i + 1 < argc) {
        a.resume_path = argv[++i];
      } else if (arg == "--out" && i + 1 < argc) {
        a.out_path = argv[++i];
      } else if (arg == "--scenario-file") {
        a.scenario_file = flag_value(arg, argc, argv, &i);
      } else if (arg == "--jobs") {
        a.jobs = static_cast<int>(int_flag(arg, argc, argv, &i, 1, 4096));
      } else if (arg == "--checkpoint") {
        a.checkpoint = static_cast<std::size_t>(
            int_flag(arg, argc, argv, &i, 1, 1LL << 30));
      } else if (arg == "--preempt-after") {
        a.preempt_after = int_flag(arg, argc, argv, &i, 1, 1LL << 30);
      } else if (arg == "--no-world-cache") {
        a.use_world_cache = false;
      } else if (arg == "--no-redzone") {
        a.use_redzone = false;
      } else if (!starts_with(arg, "--") && a.plan_path.empty()) {
        a.plan_path = arg;
      } else {
        std::fprintf(stderr, "epa: unknown option '%s'\n", arg.c_str());
        return usage();
      }
    }
    if (a.plan_path.empty()) return usage();
    if (a.shard_spec.empty() && a.resume_path.empty()) return usage();
    if (a.checkpoint > 0 && a.out_path.empty() && a.resume_path.empty()) {
      std::fprintf(stderr,
                   "epa: --checkpoint needs --out (checkpoints are flushed "
                   "to the report file)\n");
      return 1;
    }
    if (a.preempt_after > 0 && a.checkpoint == 0) {
      std::fprintf(stderr,
                   "epa: --preempt-after needs --checkpoint (preemption is "
                   "delivered at a checkpoint flush)\n");
      return 1;
    }
    return guarded([&] { return cmd_run_shard(std::move(a)); });
  }
  if (cmd == "worker") {
    WorkerArgs a;
    for (int i = 2; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--jobs") {
        a.jobs = static_cast<int>(int_flag(arg, argc, argv, &i, 1, 4096));
      } else if (arg == "--preempt-after") {
        a.preempt_after = int_flag(arg, argc, argv, &i, 1, 1LL << 30);
      } else if (arg == "--checkpoint") {
        a.checkpoint = static_cast<std::size_t>(
            int_flag(arg, argc, argv, &i, 1, 1LL << 30));
      } else if (arg == "--drain-delay-ms") {
        a.drain_delay_ms = int_flag(arg, argc, argv, &i, 1, 1LL << 20);
      } else if (arg == "--arena") {
        a.arena_path = flag_value(arg, argc, argv, &i);
      } else if (arg == "--scenario-file") {
        a.scenario_file = flag_value(arg, argc, argv, &i);
      } else if (arg == "--connect") {
        // HOST:PORT, split on the *last* colon; the port goes through
        // the same strict strtoll validation as every numeric flag.
        std::string v = flag_value(arg, argc, argv, &i);
        auto colon = v.rfind(':');
        if (colon == std::string::npos || colon == 0 ||
            colon + 1 == v.size())
          flag_fail(arg, "value '" + v + "' is not HOST:PORT");
        errno = 0;
        char* end = nullptr;
        long long port = std::strtoll(v.c_str() + colon + 1, &end, 10);
        if (errno == ERANGE || end == v.c_str() + colon + 1 ||
            *end != '\0' || port < 1 || port > 65535)
          flag_fail(arg, "port '" + v.substr(colon + 1) +
                             "' is not in [1, 65535]");
        a.connect_host = v.substr(0, colon);
        a.connect_port = static_cast<int>(port);
      } else if (arg == "--no-world-cache") {
        a.use_world_cache = false;
      } else if (arg == "--no-redzone") {
        a.use_redzone = false;
      } else if (!starts_with(arg, "--") && a.plan_path.empty()) {
        a.plan_path = arg;
      } else {
        std::fprintf(stderr, "epa: unknown option '%s'\n", arg.c_str());
        return usage();
      }
    }
    // Exactly one data plane: a plan file (pipe), --arena (shm), or
    // --connect (tcp).
    int planes = (!a.plan_path.empty() ? 1 : 0) +
                 (!a.arena_path.empty() ? 1 : 0) +
                 (!a.connect_host.empty() ? 1 : 0);
    if (planes > 1) {
      std::fprintf(stderr,
                   "epa: worker takes exactly one of a plan file, --arena, "
                   "or --connect\n");
      return 1;
    }
    if (planes == 0) return usage();
    if (a.drain_delay_ms > 0 && a.checkpoint == 0) {
      std::fprintf(stderr,
                   "epa: --drain-delay-ms needs --checkpoint (the delay is "
                   "applied per checkpoint chunk)\n");
      return 1;
    }
    return guarded([&] { return cmd_worker(a); });
  }
  if (cmd == "orchestrate") {
    OrchestrateArgs a;
    bool saw_jobs = false, saw_preempt = false, saw_checkpoint = false;
    bool saw_drain = false, saw_no_cache = false, saw_dir = false;
    bool saw_listen = false, saw_port_file = false, saw_no_redzone = false;
    for (int i = 2; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--all") {
        a.all = true;
      } else if (arg == "--workers") {
        a.workers = static_cast<int>(int_flag(arg, argc, argv, &i, 1, 1024));
      } else if (arg == "--lease") {
        parse_lease_flag(arg, argc, argv, &i, &a.lease, &a.lease_auto);
      } else if (arg == "--jobs") {
        a.jobs = static_cast<int>(int_flag(arg, argc, argv, &i, 1, 4096));
        saw_jobs = true;
      } else if (arg == "--preempt-after") {
        a.preempt_after = int_flag(arg, argc, argv, &i, 1, 1LL << 30);
        saw_preempt = true;
      } else if (arg == "--checkpoint") {
        a.checkpoint = int_flag(arg, argc, argv, &i, 1, 1LL << 30);
        saw_checkpoint = true;
      } else if (arg == "--drain-delay-ms") {
        a.drain_delay_ms = int_flag(arg, argc, argv, &i, 1, 1LL << 20);
        saw_drain = true;
      } else if (arg == "--deadman-ms") {
        a.deadman_ms = int_flag(arg, argc, argv, &i, 1, 1LL << 30);
      } else if (arg == "--listen") {
        a.listen_port =
            static_cast<int>(int_flag(arg, argc, argv, &i, 0, 65535));
        saw_listen = true;
      } else if (arg == "--port-file") {
        a.port_file = flag_value(arg, argc, argv, &i);
        saw_port_file = true;
      } else if (arg == "--data-plane") {
        // `json` is the documented alias of `pipe` — the data plane was
        // named after its encoding before tcp made that ambiguous.
        std::string v = flag_value(arg, argc, argv, &i);
        if (v == "pipe" || v == "json")
          a.plane = DataPlane::pipe;
        else if (v == "shm")
          a.plane = DataPlane::shm;
        else if (v == "tcp")
          a.plane = DataPlane::tcp;
        else
          flag_fail(arg,
                    "value '" + v + "' is not 'pipe', 'shm', or 'tcp'");
      } else if (arg == "--json") {
        a.as_json = true;
      } else if (arg == "--no-world-cache") {
        a.use_world_cache = false;
        saw_no_cache = true;
      } else if (arg == "--no-redzone") {
        a.use_redzone = false;
        saw_no_redzone = true;
      } else if (arg == "--dir") {
        a.dir = flag_value(arg, argc, argv, &i);
        saw_dir = true;
      } else if (arg == "--scenario-file") {
        a.scenario_file = flag_value(arg, argc, argv, &i);
      } else if (!starts_with(arg, "--") && a.scenario.empty()) {
        a.scenario = arg;
      } else {
        std::fprintf(stderr, "epa: unknown option '%s'\n", arg.c_str());
        return usage();
      }
    }
    // Exactly one of --all / <scenario> / --scenario-file, like `plan`.
    if ((a.all ? 1 : 0) + (a.scenario.empty() ? 0 : 1) +
            (a.scenario_file.empty() ? 0 : 1) !=
        1)
      return usage();
    if (a.plane == DataPlane::tcp) {
      // tcp workers are started by the operator, not forked by
      // orchestrate — worker-side flags have nowhere to be forwarded.
      if (a.all) {
        std::fprintf(stderr,
                     "epa: --all needs the pipe or shm data plane (a tcp "
                     "fleet parses one plan at connect time)\n");
        return 1;
      }
      const char* worker_flag =
          saw_jobs ? "--jobs"
          : saw_preempt ? "--preempt-after"
          : saw_checkpoint ? "--checkpoint"
          : saw_drain ? "--drain-delay-ms"
          : saw_no_cache ? "--no-world-cache"
          : saw_no_redzone ? "--no-redzone"
          : saw_dir ? "--dir"
                    : nullptr;
      if (worker_flag) {
        std::fprintf(stderr,
                     "epa: %s is worker-side; pass it to `epa_cli worker "
                     "--connect` (tcp workers are not spawned by "
                     "orchestrate)\n",
                     worker_flag);
        return 1;
      }
    } else {
      if (saw_listen || saw_port_file) {
        std::fprintf(stderr, "epa: %s needs --data-plane tcp\n",
                     saw_listen ? "--listen" : "--port-file");
        return 1;
      }
      if (a.deadman_ms > 0 && a.checkpoint == 0) {
        std::fprintf(stderr,
                     "epa: --deadman-ms needs --checkpoint on the pipe/shm "
                     "data planes (heartbeats are sent at checkpoint "
                     "flushes)\n");
        return 1;
      }
      if (a.drain_delay_ms > 0 && a.checkpoint == 0) {
        std::fprintf(stderr,
                     "epa: --drain-delay-ms needs --checkpoint (the delay "
                     "is applied per checkpoint chunk)\n");
        return 1;
      }
    }
    return guarded([&] { return cmd_orchestrate(a, argv[0]); });
  }
  if (cmd == "search") {
    SearchArgs a;
    bool saw_budget = false, saw_listen = false, saw_port_file = false;
    for (int i = 2; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--budget") {
        a.budget = int_flag(arg, argc, argv, &i, 1, 1LL << 30);
        saw_budget = true;
      } else if (arg == "--seed") {
        a.seed = uint64_flag(arg, argc, argv, &i);
      } else if (arg == "--batch") {
        a.batch = int_flag(arg, argc, argv, &i, 1, 1LL << 20);
      } else if (arg == "--jobs") {
        a.jobs = static_cast<int>(int_flag(arg, argc, argv, &i, 1, 4096));
      } else if (arg == "--workers") {
        a.workers = static_cast<int>(int_flag(arg, argc, argv, &i, 1, 1024));
      } else if (arg == "--lease") {
        parse_lease_flag(arg, argc, argv, &i, &a.lease, &a.lease_auto);
      } else if (arg == "--data-plane") {
        std::string v = flag_value(arg, argc, argv, &i);
        if (v == "pipe" || v == "json")
          a.plane = DataPlane::pipe;
        else if (v == "shm")
          a.plane = DataPlane::shm;
        else if (v == "tcp")
          a.plane = DataPlane::tcp;
        else
          flag_fail(arg,
                    "value '" + v + "' is not 'pipe', 'shm', or 'tcp'");
      } else if (arg == "--listen") {
        a.listen_port =
            static_cast<int>(int_flag(arg, argc, argv, &i, 0, 65535));
        saw_listen = true;
      } else if (arg == "--port-file") {
        a.port_file = flag_value(arg, argc, argv, &i);
        saw_port_file = true;
      } else if (arg == "--state") {
        a.state_path = flag_value(arg, argc, argv, &i);
      } else if (arg == "--resume") {
        a.resume = true;
      } else if (arg == "--stop-after") {
        a.stop_after = int_flag(arg, argc, argv, &i, 1, 1LL << 30);
      } else if (arg == "--family") {
        a.family = flag_value(arg, argc, argv, &i);
      } else if (arg == "--scenario-file") {
        a.scenario_file = flag_value(arg, argc, argv, &i);
      } else if (arg == "--json") {
        a.as_json = true;
      } else if (arg == "--no-world-cache") {
        a.use_world_cache = false;
      } else if (arg == "--no-redzone") {
        a.use_redzone = false;
      } else if (arg == "--dir") {
        a.dir = flag_value(arg, argc, argv, &i);
      } else if (!starts_with(arg, "--") && a.scenario.empty()) {
        a.scenario = arg;
      } else {
        std::fprintf(stderr, "epa: unknown option '%s'\n", arg.c_str());
        return usage();
      }
    }
    // Exactly one of <scenario> / --scenario-file / --family.
    if ((a.scenario.empty() ? 0 : 1) + (a.scenario_file.empty() ? 0 : 1) +
            (a.family.empty() ? 0 : 1) !=
        1)
      return usage();
    if (!saw_budget) {
      std::fprintf(stderr,
                   "epa: search needs --budget N (the total number of "
                   "injection runs to spend)\n");
      return 1;
    }
    if (a.resume && a.state_path.empty()) {
      std::fprintf(stderr, "epa: --resume needs --state FILE\n");
      return 1;
    }
    if (!a.family.empty() && (!a.state_path.empty() || a.stop_after > 0)) {
      // A family search interleaves members through one scorer; a
      // checkpoint of member N alone could not reproduce that state.
      std::fprintf(stderr,
                   "epa: %s works on a single scenario, not --family\n",
                   a.state_path.empty() ? "--stop-after" : "--state");
      return 1;
    }
    if (a.stop_after > 0 && a.workers > 0) {
      std::fprintf(stderr,
                   "epa: --stop-after drives the in-process drain; drop "
                   "--workers (orchestrated searches checkpoint at every "
                   "wave barrier anyway)\n");
      return 1;
    }
    if (a.stop_after > 0 && a.state_path.empty()) {
      std::fprintf(stderr,
                   "epa: --stop-after needs --state FILE (stopping without "
                   "a checkpoint would just discard the waves)\n");
      return 1;
    }
    if (a.plane == DataPlane::tcp) {
      if (a.workers == 0) {
        std::fprintf(stderr, "epa: --data-plane tcp needs --workers N\n");
        return 1;
      }
      if (!a.family.empty()) {
        std::fprintf(stderr,
                     "epa: --family needs the pipe or shm data plane (a tcp "
                     "fleet parses one plan at connect time)\n");
        return 1;
      }
    } else if (saw_listen || saw_port_file) {
      std::fprintf(stderr, "epa: %s needs --data-plane tcp\n",
                   saw_listen ? "--listen" : "--port-file");
      return 1;
    }
    return guarded([&] { return cmd_search(a, argv[0]); });
  }
  if (cmd == "merge") {
    std::string plan_path;
    std::vector<std::string> shard_paths;
    bool as_json = false;
    for (int i = 2; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--json") {
        as_json = true;
      } else if (!starts_with(arg, "--")) {
        if (plan_path.empty())
          plan_path = arg;
        else
          shard_paths.push_back(arg);
      } else {
        std::fprintf(stderr, "epa: unknown option '%s'\n", arg.c_str());
        return usage();
      }
    }
    if (plan_path.empty() || shard_paths.empty()) return usage();
    return guarded([&] { return cmd_merge(plan_path, shard_paths, as_json); });
  }
  if (cmd == "trace") {
    if (argc < 3) return usage();
    return cmd_trace(argv[2]);
  }
  if (cmd == "compare") {
    if (argc < 4) return usage();
    return cmd_compare(argv[2], argv[3]);
  }
  if (cmd != "run") return usage();

  core::CampaignOptions opts;
  bool as_json = false;
  std::string scenario, scenario_file;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--merge") {
      opts.merge_equivalent_sites = true;
    } else if (arg == "--json") {
      as_json = true;
    } else if (arg == "--sites" && i + 1 < argc) {
      opts.only_sites = split(std::string(argv[++i]), ',');
    } else if (arg == "--coverage") {
      opts.target_interaction_coverage =
          unit_interval_flag(arg, argc, argv, &i);
    } else if (arg == "--seed") {
      opts.seed = uint64_flag(arg, argc, argv, &i);
    } else if (arg == "--jobs") {
      opts.jobs = static_cast<int>(int_flag(arg, argc, argv, &i, 1, 4096));
    } else if (arg == "--scenario-file") {
      scenario_file = flag_value(arg, argc, argv, &i);
    } else if (arg == "--no-world-cache") {
      opts.use_world_cache = false;
    } else if (arg == "--no-redzone") {
      opts.use_redzone = false;
    } else if (!starts_with(arg, "--") && scenario.empty()) {
      scenario = arg;
    } else {
      std::fprintf(stderr, "epa: unknown option '%s'\n", arg.c_str());
      return usage();
    }
  }
  // Exactly one of <scenario> / --scenario-file.
  if (scenario.empty() == scenario_file.empty()) return usage();
  return guarded([&] { return cmd_run(scenario, scenario_file, opts,
                                      as_json); });
}
