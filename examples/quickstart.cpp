// Quickstart: testing your own program for environment-fault tolerance.
//
// The walk-through builds a tiny set-uid "backup" utility, wires it into
// a simulated world, and runs a full perturbation campaign against it:
//
//   1. write the program against the simulated kernel's syscall API,
//      giving every environment interaction a stable Site;
//   2. describe the benign world (files, users, the program binary);
//   3. state the security policy (where may it write? what is secret?);
//   4. Campaign::execute() does the rest: trace, fault planning per
//      Table 5/6, one rebuilt world per injection, oracle, metrics.
#include <cstdio>

#include "core/campaign.hpp"
#include "core/report.hpp"
#include "os/world.hpp"

using namespace ep;

// --- 1. the program under test ----------------------------------------------
// `backup` copies a user-named file into /var/backups. It runs set-uid
// root so it can write the backup directory. (It has the classic flaws —
// the campaign will find them.)

namespace sites {
const os::Site arg_file{"backup.c", 12, "arg-filename"};
const os::Site open_src{"backup.c", 20, "open-source"};
const os::Site create_dst{"backup.c", 30, "create-backup"};
const os::Site status{"backup.c", 40, "status"};
}  // namespace sites

int backup_main(os::Kernel& k, os::Pid pid) {
  // User input arrives through the interaction layer (perturbable).
  std::string name = k.arg(sites::arg_file, pid, 1);
  if (name.empty()) {
    k.output(sites::status, pid, "backup: usage: backup <file>");
    return 1;
  }

  auto src = k.open(sites::open_src, pid, name, os::OpenFlag::rd);
  if (!src.ok()) {
    k.output(sites::status, pid, "backup: cannot read " + name);
    return 2;
  }
  auto content = k.read(sites::open_src, pid, src.value());
  (void)k.close(pid, src.value());

  // Flaw: the destination is derived from the raw user string, and the
  // file is created without O_EXCL.
  auto dst = k.open(sites::create_dst, pid, "/var/backups/" + name,
                    os::OpenFlag::wr | os::OpenFlag::creat, 0600);
  if (!dst.ok()) {
    k.output(sites::status, pid, "backup: cannot store " + name);
    return 3;
  }
  (void)k.write(sites::create_dst, pid, dst.value(), content.value());
  (void)k.close(pid, dst.value());
  k.output(sites::status, pid, "backup: stored " + name);
  return 0;
}

int main() {
  core::Scenario scenario;
  scenario.name = "backup-quickstart";
  scenario.trace_unit_filter = "backup.c";

  // --- 2. the benign world --------------------------------------------------
  scenario.build = [] {
    auto w = std::make_unique<core::TargetWorld>();
    os::Kernel& k = w->kernel;
    os::world::standard_unix(k);
    k.add_user(1000, "alice", 1000);
    k.add_user(666, "mallory", 666);
    os::world::mkdirs(k, "/tmp/attacker", 666, 666, 0755);
    // Sloppy install: the backup directory is world-writable "so every
    // user's cron job can drop backups". The campaign will show why that
    // matters.
    os::world::mkdirs(k, "/var/backups", os::kRootUid, os::kRootGid, 0777);
    os::world::mkdirs(k, "/home/alice", 1000, 1000, 0755);
    os::world::put_file(k, "/home/alice/notes.txt", "my notes\n", 1000, 1000,
                        0644);
    k.register_image("backup", backup_main);
    os::world::put_program(k, "/usr/bin/backup", "backup", os::kRootUid,
                           os::kRootGid, 0755 | os::kSetUidBit);
    return w;
  };

  // The test case: alice backs up one of her files.
  scenario.run = [](core::TargetWorld& w) {
    auto r = w.kernel.spawn("/usr/bin/backup", {"backup", "notes.txt"}, 1000,
                            1000, {}, "/home/alice");
    return r.ok() ? r.value() : 255;
  };

  // --- 3. the security policy ------------------------------------------------
  scenario.policy.write_sanction_roots = {"/var/backups"};
  scenario.policy.secret_files = {"/etc/shadow"};
  scenario.hints.attacker_uid = 666;
  scenario.hints.attacker_gid = 666;

  // --- 4. run the campaign ----------------------------------------------------
  core::Campaign campaign(std::move(scenario));
  auto result = campaign.execute();

  std::printf("%s\n", core::render_report(result).c_str());
  std::printf("Things to try next:\n"
              "  * open the destination with OpenFlag::excl | nofollow and\n"
              "    watch the existence/symlink violations disappear;\n"
              "  * chmod /var/backups back to 0755 and watch the same\n"
              "    violations turn into 'assumption reasonable' findings;\n"
              "  * tighten the policy and see what else surfaces.\n");
  return 0;
}
