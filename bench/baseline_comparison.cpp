// Related-work comparison (Section 5) — Fuzz and AVA against the EAI
// methodology on the same targets.
//
// The shapes the paper argues:
//   * Fuzz (Miller et al.): random input crashes 25-40% of utilities with
//     unchecked parsers, but its oracle is "crash", it never reaches
//     direct (attribute) faults, and bounded parsers blank it entirely.
//   * AVA (Ghosh et al.): internal-state perturbation suffers a semantic
//     gap (random corruption rarely matches attack patterns) and cannot
//     represent faults that never touch internal state.
//   * EAI: catalog-guided environment perturbation finds both fault kinds
//     deterministically.
#include <cstdio>

#include "apps/lpr.hpp"
#include "apps/mailer.hpp"
#include "apps/turnin.hpp"
#include "baseline/ava.hpp"
#include "baseline/fuzz.hpp"
#include "core/report.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

struct Row {
  std::string target;
  int eai_runs, eai_violations;
  int fuzz_runs, fuzz_crashes;
  int ava_runs, ava_detections;
};

Row measure(ep::core::Scenario scenario,
            const ep::core::CampaignOptions& opts, int trials) {
  Row row;
  row.target = scenario.name;
  {
    ep::core::Campaign c(scenario);
    auto r = c.execute(opts);
    row.eai_runs = r.n();
    row.eai_violations = r.violation_count();
  }
  {
    ep::baseline::FuzzOptions fo;
    fo.trials = trials;
    fo.seed = 1;
    auto f = run_fuzz(scenario, fo);
    row.fuzz_runs = f.trials;
    row.fuzz_crashes = f.crashes;
  }
  {
    ep::baseline::AvaOptions ao;
    ao.trials = trials;
    ao.seed = 1;
    auto a = run_ava(scenario, ao);
    row.ava_runs = a.trials;
    row.ava_detections = a.violations + a.crashes;
  }
  return row;
}

}  // namespace

int main() {
  using namespace ep;
  constexpr int kTrials = 60;

  std::printf("=== Baseline comparison: EAI vs Fuzz vs AVA ===\n\n");

  std::vector<Row> rows;
  rows.push_back(measure(apps::mailer_scenario(), {}, kTrials));
  rows.push_back(measure(apps::turnin_scenario(), {}, kTrials));
  {
    core::CampaignOptions lpr_opts;
    lpr_opts.only_sites = {apps::kLprCreateTag};
    rows.push_back(measure(apps::lpr_scenario(), lpr_opts, kTrials));
  }

  TextTable t({"target", "EAI: violations/injections",
               "Fuzz: crashes/trials", "AVA: detections/trials"});
  for (const auto& r : rows) {
    t.add_row({r.target,
               std::to_string(r.eai_violations) + "/" +
                   std::to_string(r.eai_runs) + " (" +
                   percent(r.eai_violations, r.eai_runs) + ")",
               std::to_string(r.fuzz_crashes) + "/" +
                   std::to_string(r.fuzz_runs) + " (" +
                   percent(r.fuzz_crashes, r.fuzz_runs) + ")",
               std::to_string(r.ava_detections) + "/" +
                   std::to_string(r.ava_runs) + " (" +
                   percent(r.ava_detections, r.ava_runs) + ")"});
  }
  std::printf("%s\n", t.render().c_str());

  const Row& mailer = rows[0];
  const Row& turnin = rows[1];
  const Row& lpr = rows[2];

  std::printf("shape checks against the paper's arguments:\n");
  bool s1 = mailer.fuzz_crashes >= mailer.fuzz_runs / 4;
  std::printf("  1. Fuzz crashes unchecked parsers at Miller-like rates "
              "(mailer: %s) -> %s\n",
              percent(mailer.fuzz_crashes, mailer.fuzz_runs).c_str(),
              s1 ? "HOLDS" : "FAILS");
  bool s2 = turnin.fuzz_crashes == 0 && turnin.eai_violations == 9;
  std::printf("  2. bounded parsers blank Fuzz while EAI still finds 9 "
              "violations (turnin) -> %s\n",
              s2 ? "HOLDS" : "FAILS");
  bool s3 = lpr.ava_detections == 0 && lpr.eai_violations == 4;
  std::printf("  3. internal-state perturbation is blind to direct faults "
              "(lpr: AVA 0, EAI 4) -> %s\n",
              s3 ? "HOLDS" : "FAILS");
  double eai_yield =
      static_cast<double>(turnin.eai_violations) / turnin.eai_runs;
  double ava_yield =
      static_cast<double>(turnin.ava_detections) / turnin.ava_runs;
  bool s4 = eai_yield > ava_yield;
  std::printf("  4. semantic fault patterns out-yield random corruption "
              "(turnin: EAI %.1f%% vs AVA %.1f%% per run) -> %s\n",
              100 * eai_yield, 100 * ava_yield, s4 ? "HOLDS" : "FAILS");

  bool all = s1 && s2 && s3 && s4;
  std::printf("\nreproduction: %s\n", all ? "ALL SHAPES HOLD" : "MISMATCH");
  return all ? 0 : 1;
}
