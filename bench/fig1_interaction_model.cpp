// Figure 1 — the Environment-Application Interaction model.
//
// The figure distinguishes the two ways environment faults reach a
// program: (a) indirectly, as input inherited by an internal entity, and
// (b) directly, as an environment-entity attribute the program acts on.
// This bench instruments campaigns over every target application and
// tallies detected violations by propagation medium, then holds the split
// against the vulnerability database's (Table 1) proportions.
#include <cstdio>
#include <map>

#include "apps/scenarios.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "vulndb/classifier.hpp"

int main() {
  using namespace ep;

  std::printf("=== Figure 1: interaction model, measured ===\n\n");
  std::printf(
      "(a) indirect: environment -> input -> internal entity -> violation\n"
      "(b) direct:   environment entity attribute -> violation\n\n");

  TextTable t({"target", "interaction points", "injections",
               "indirect violations", "direct violations"});
  int total_indirect = 0;
  int total_direct = 0;
  for (auto& scenario : apps::all_scenarios()) {
    std::string name = scenario.name;
    core::Campaign campaign(std::move(scenario));
    auto r = campaign.execute();
    int ind = 0, dir = 0;
    for (const auto& i : r.injections) {
      if (!i.violated) continue;
      (i.kind == core::FaultKind::indirect ? ind : dir)++;
    }
    total_indirect += ind;
    total_direct += dir;
    t.add_row({name, std::to_string(r.points.size()),
               std::to_string(r.n()), std::to_string(ind),
               std::to_string(dir)});
  }
  std::printf("%s\n", t.render().c_str());

  int total = total_indirect + total_direct;
  std::printf("violations via internal entities (indirect): %d (%s)\n",
              total_indirect, percent(total_indirect, total).c_str());
  std::printf("violations via environment entities (direct): %d (%s)\n",
              total_direct, percent(total_direct, total).c_str());

  auto c = vulndb::classify_all(vulndb::database());
  int db_env = c.indirect + c.direct;
  std::printf(
      "\nvulnerability-database split for comparison (Table 1): "
      "indirect %s, direct %s of environment faults\n",
      percent(c.indirect, db_env).c_str(), percent(c.direct, db_env).c_str());
  std::printf(
      "shape check: both media produce violations in both the field data "
      "and the injected campaigns -> %s\n",
      (total_indirect > 0 && total_direct > 0) ? "HOLDS" : "FAILS");
  return (total_indirect > 0 && total_direct > 0) ? 0 : 1;
}
