// Section 4.2 — the Windows NT registry case study.
//
// Paper: static analysis over NT 4.0 SP3 finds unprotected (everyone-
// write) registry keys; the 9 whose consuming modules were understood
// were all exploited; 20 more unprotected keys could not be perturbed
// "due to the lack of knowledge of how those modules work".
#include <cstdio>

#include "apps/registry_modules.hpp"
#include "core/report.hpp"
#include "util/table.hpp"

int main() {
  using namespace ep;
  std::printf("=== Section 4.2: Windows NT registry case study ===\n\n");

  // Step 1: the static scan.
  auto world = apps::nt_registry_world();
  auto unprotected = world->registry.unprotected_keys();
  auto with_module = world->registry.unprotected_with_module();
  auto without_module = world->registry.unprotected_without_module();
  std::printf("registry scan: %zu keys total, %zu unprotected "
              "(everyone may write), %zu protected\n",
              world->registry.size(), unprotected.size(),
              world->registry.size() - unprotected.size());
  std::printf("cross-reference: %zu unprotected keys with known modules, "
              "%zu with unknown modules (not perturbable)\n\n",
              with_module.size(), without_module.size());

  // Step 2: perturbation campaigns over the 9 known modules.
  TextTable t({"module", "key", "injections", "violations", "exploited",
               "privileged effect"});
  int exploited = 0;
  for (const auto& m : apps::nt_modules()) {
    core::Campaign campaign(apps::nt_module_scenario(m.module));
    auto r = campaign.execute();
    bool module_exploited = !r.exploitable().empty();
    if (module_exploited) ++exploited;
    t.add_row({m.module, m.key, std::to_string(r.n()),
               std::to_string(r.violation_count()),
               module_exploited ? "YES" : "no", m.what});
  }
  std::printf("%s\n", t.render().c_str());

  std::printf("paper:    29 unprotected keys; all 9 with known modules "
              "exploited; 20 untestable\n");
  std::printf("measured: %zu unprotected keys; %d of %zu modules "
              "exploited; %zu untestable\n",
              unprotected.size(), exploited, with_module.size(),
              without_module.size());

  bool match = unprotected.size() == 29 && exploited == 9 &&
               without_module.size() == 20;
  std::printf("reproduction: %s\n", match ? "EXACT" : "MISMATCH");
  return match ? 0 : 1;
}
