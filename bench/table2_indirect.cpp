// Table 2 — indirect environment faults that cause security violations.
//
// Paper: of 81 indirect faults — 51 user input (63%), 17 environment
// variable (21%), 5 file system input (6.2%), 8 network input (9.9%),
// 0 process input.
#include <cstdio>

#include "util/strings.hpp"
#include "util/table.hpp"
#include "vulndb/classifier.hpp"

int main() {
  using namespace ep;
  using IC = core::IndirectCategory;
  auto c = vulndb::classify_all(vulndb::database());

  std::printf(
      "=== Table 2: indirect environment faults (total %d) ===\n\n",
      c.indirect);

  TextTable t({"Categories", "User Input", "Environment Variable",
               "File System Input", "Network Input", "Process Input"});
  auto n = [&](IC cat) { return c.indirect_by_category[cat]; };
  t.add_row({"number", std::to_string(n(IC::user_input)),
             std::to_string(n(IC::environment_variable)),
             std::to_string(n(IC::file_system_input)),
             std::to_string(n(IC::network_input)),
             std::to_string(n(IC::process_input))});
  t.add_row({"percent", percent(n(IC::user_input), c.indirect),
             percent(n(IC::environment_variable), c.indirect),
             percent(n(IC::file_system_input), c.indirect),
             percent(n(IC::network_input), c.indirect),
             percent(n(IC::process_input), c.indirect)});
  t.add_row({"paper", "51 (63.0%)", "17 (21.0%)", "5 (6.2%)", "8 (9.9%)",
             "0 (0%)"});
  std::printf("%s\n", t.render().c_str());

  bool match = n(IC::user_input) == 51 && n(IC::environment_variable) == 17 &&
               n(IC::file_system_input) == 5 && n(IC::network_input) == 8 &&
               n(IC::process_input) == 0;
  std::printf("reproduction: %s\n", match ? "EXACT" : "MISMATCH");
  return match ? 0 : 1;
}
