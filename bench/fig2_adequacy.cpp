// Figure 2 — the two-dimensional test adequacy metric.
//
// Reproduces the four sample points: campaigns over the vulnerable and
// hardened turnin at partial and full interaction coverage, plotted on
// the interaction-coverage x fault-coverage plane.
#include <cstdio>

#include "apps/turnin.hpp"
#include "core/report.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

struct Sample {
  const char* label;
  const char* paper_meaning;
  ep::core::CampaignResult result;
};

}  // namespace

int main() {
  using namespace ep;
  using core::Campaign;
  using core::CampaignOptions;

  const std::vector<std::string> partial = {apps::kTurninOpenProjlist,
                                            apps::kTurninCreateDest};

  CampaignOptions partial_opts;
  partial_opts.only_sites = partial;

  std::vector<Sample> samples;
  {
    Campaign c(apps::turnin_scenario());
    samples.push_back({"point 1: vulnerable turnin, 2/8 sites",
                       "low interaction and fault coverage: inadequate",
                       c.execute(partial_opts)});
  }
  {
    Campaign c(apps::turnin_hardened_scenario());
    samples.push_back({"point 2: hardened turnin, 2/8 sites",
                       "high fault coverage, low interaction coverage: "
                       "inadequate (unknown behaviour elsewhere)",
                       c.execute(partial_opts)});
  }
  {
    Campaign c(apps::turnin_scenario());
    samples.push_back({"point 3: vulnerable turnin, all sites",
                       "fault coverage too low: insecure",
                       c.execute()});
  }
  {
    Campaign c(apps::turnin_hardened_scenario());
    samples.push_back({"point 4: hardened turnin, all sites",
                       "high interaction and fault coverage: safest",
                       c.execute()});
  }

  std::printf("=== Figure 2: test adequacy metric (measured points) ===\n\n");
  TextTable t({"sample", "interaction coverage", "fault coverage",
               "region", "paper's reading"});
  for (const auto& s : samples) {
    auto p = s.result.adequacy();
    t.add_row({s.label, percent(p.interaction_coverage, 1.0),
               percent(p.fault_coverage, 1.0),
               std::string(to_string(s.result.region())), s.paper_meaning});
  }
  std::printf("%s\n", t.render().c_str());

  // ASCII plot of the plane.
  std::printf("fault\ncoverage\n");
  const int H = 10, W = 40;
  for (int row = H; row >= 0; --row) {
    double fc_lo = static_cast<double>(row) / (H + 1);
    double fc_hi = static_cast<double>(row + 1) / (H + 1);
    std::string line(W + 1, ' ');
    for (std::size_t i = 0; i < samples.size(); ++i) {
      auto p = samples[i].result.adequacy();
      if (p.fault_coverage >= fc_lo && p.fault_coverage < fc_hi) {
        int col = static_cast<int>(p.interaction_coverage * W);
        line[col] = static_cast<char>('1' + i);
      }
    }
    std::printf("  %4.1f |%s\n", fc_hi, line.c_str());
  }
  std::printf("       +%s\n        0%*s1.0  interaction coverage\n\n",
              std::string(W + 1, '-').c_str(), W - 3, "");

  bool ok =
      samples[0].result.region() == core::AdequacyRegion::point1_inadequate &&
      samples[1].result.region() == core::AdequacyRegion::point2_unexplored &&
      samples[2].result.region() == core::AdequacyRegion::point3_insecure &&
      samples[3].result.region() ==
          core::AdequacyRegion::point4_adequate_secure;
  std::printf("reproduction: four campaigns land in the four regions -> %s\n",
              ok ? "HOLDS" : "FAILS");
  return ok ? 0 : 1;
}
