// Microbenchmarks (google-benchmark): cost of the substrate and of the
// interposition machinery. Supports the paper's automation claim — a
// full per-fault rebuild-and-rerun cycle is cheap enough to sweep entire
// catalogs.
//
// Besides the google-benchmark micro benches, main() times the full
// scenario suite through the MultiCampaign scheduler serially and in
// parallel and writes BENCH_perf_injection.json, so the runs/sec
// trajectory (and the serial-vs-parallel speedup) is tracked across PRs.
#include <benchmark/benchmark.h>

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string_view>
#include <thread>
#include <vector>

#include "apps/families.hpp"
#include "apps/lpr.hpp"
#include "apps/scenarios.hpp"
#include "apps/turnin.hpp"
#include "core/arena.hpp"
#include "core/executor.hpp"
#include "core/injector.hpp"
#include "core/planner.hpp"
#include "core/protocol.hpp"
#include "core/report.hpp"
#include "core/scheduler.hpp"
#include "core/search.hpp"
#include "core/snapshot.hpp"
#include "core/transport.hpp"
#include "core/wire.hpp"
#include "net/transport_tcp.hpp"
#include "os/world.hpp"
#include "vulndb/coverage.hpp"

namespace {

using namespace ep;

const os::Site kS{"perf.c", 1, "probe"};

void BM_VfsResolveDeepPath(benchmark::State& state) {
  os::Kernel k;
  os::world::mkdirs(k, "/a/b/c/d/e/f/g");
  os::world::put_file(k, "/a/b/c/d/e/f/g/leaf", "x");
  for (auto _ : state) {
    auto r = k.vfs().resolve("/a/b/c/d/e/f/g/leaf", "/", os::kRootUid, 0);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_VfsResolveDeepPath);

void BM_VfsSymlinkChainResolve(benchmark::State& state) {
  os::Kernel k;
  os::world::put_file(k, "/end", "x");
  std::string prev = "/end";
  for (int i = 0; i < 6; ++i) {
    std::string name = "/l" + std::to_string(i);
    os::world::put_symlink(k, name, prev);
    prev = name;
  }
  for (auto _ : state) {
    auto r = k.vfs().resolve(prev, "/", os::kRootUid, 0);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_VfsSymlinkChainResolve);

void BM_OpenReadClose(benchmark::State& state) {
  os::Kernel k;
  os::world::standard_unix(k);
  os::world::put_file(k, "/data/f", std::string(1024, 'x'), os::kRootUid, 0,
                      0644);
  os::Pid pid = k.make_process(os::kRootUid, 0, "/");
  for (auto _ : state) {
    auto fd = k.open(kS, pid, "/data/f", os::OpenFlag::rd);
    auto data = k.read(kS, pid, fd.value());
    benchmark::DoNotOptimize(data);
    (void)k.close(pid, fd.value());
  }
}
BENCHMARK(BM_OpenReadClose);

void BM_SyscallNoHooks(benchmark::State& state) {
  os::Kernel k;
  os::world::put_file(k, "/f", "x");
  os::Pid pid = k.make_process(os::kRootUid, 0, "/");
  for (auto _ : state) {
    auto r = k.stat(kS, pid, "/f");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SyscallNoHooks);

void BM_SyscallWithHookChain(benchmark::State& state) {
  os::Kernel k;
  os::world::put_file(k, "/f", "x");
  os::Pid pid = k.make_process(os::kRootUid, 0, "/");
  struct Nop : os::Interposer {};
  for (int i = 0; i < state.range(0); ++i)
    k.add_interposer(std::make_shared<Nop>());
  for (auto _ : state) {
    auto r = k.stat(kS, pid, "/f");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SyscallWithHookChain)->Arg(1)->Arg(4)->Arg(16);

void BM_WorldBuildLpr(benchmark::State& state) {
  auto scenario = apps::lpr_scenario();
  for (auto _ : state) {
    auto w = scenario.build();
    benchmark::DoNotOptimize(w);
  }
}
BENCHMARK(BM_WorldBuildLpr);

void BM_WorldBuildTurnin(benchmark::State& state) {
  auto scenario = apps::turnin_scenario();
  for (auto _ : state) {
    auto w = scenario.build();
    benchmark::DoNotOptimize(w);
  }
}
BENCHMARK(BM_WorldBuildTurnin);

void BM_WorldCloneLpr(benchmark::State& state) {
  // The number the snapshot layer lives on: clone() vs BM_WorldBuildLpr.
  auto snap = core::WorldSnapshot::freeze(apps::lpr_scenario().build());
  for (auto _ : state) {
    auto w = snap->instantiate();
    benchmark::DoNotOptimize(w);
  }
}
BENCHMARK(BM_WorldCloneLpr);

void BM_WorldCloneTurnin(benchmark::State& state) {
  auto snap = core::WorldSnapshot::freeze(apps::turnin_scenario().build());
  for (auto _ : state) {
    auto w = snap->instantiate();
    benchmark::DoNotOptimize(w);
  }
}
BENCHMARK(BM_WorldCloneTurnin);

void BM_WorldCloneThenPerturb(benchmark::State& state) {
  // Clone plus a representative perturbation (unshares the touched node):
  // the realistic per-run cost of the cached path.
  auto snap = core::WorldSnapshot::freeze(apps::lpr_scenario().build());
  for (auto _ : state) {
    auto w = snap->instantiate();
    auto r = w->kernel.vfs().resolve("/etc/passwd", "/", os::kRootUid, 0);
    w->kernel.vfs().mutate(r.value()).mode = 0666;
    benchmark::DoNotOptimize(w);
  }
}
BENCHMARK(BM_WorldCloneThenPerturb);

void BM_SingleInjectionRun(benchmark::State& state) {
  // One complete procedure step 4-8 cycle: fresh world, armed injector,
  // oracle, target execution.
  auto scenario = apps::lpr_scenario();
  core::FaultRef fault;
  fault.kind = core::FaultKind::direct;
  fault.direct = core::FaultCatalog::standard().find_direct("symbolic-link");
  for (auto _ : state) {
    auto w = scenario.build();
    auto injector = std::make_shared<core::Injector>(
        *w, os::Site{"lpr.c", 42, apps::kLprCreateTag}, fault,
        scenario.hints);
    auto oracle = std::make_shared<core::SecurityOracle>(scenario.policy);
    w->kernel.add_interposer(injector);
    w->kernel.add_interposer(oracle);
    int rc = scenario.run(*w);
    benchmark::DoNotOptimize(rc);
  }
}
BENCHMARK(BM_SingleInjectionRun);

void BM_FullTurninCampaign(benchmark::State& state) {
  // All 41 injections + trace run: the complete Section 4.1 experiment.
  for (auto _ : state) {
    core::Campaign c(apps::turnin_scenario());
    auto r = c.execute();
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_FullTurninCampaign)->Unit(benchmark::kMillisecond);

void BM_ExecutorDrainTurnin(benchmark::State& state) {
  // Steps 4-8 only (plan prepared once): the parallel engine's hot loop.
  auto scenario = apps::turnin_scenario();
  auto plan = core::Planner(scenario).plan();
  core::Executor executor(scenario);
  core::ExecutorOptions opts;
  opts.jobs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto r = executor.execute(plan, opts);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(plan.items.size()));
}
BENCHMARK(BM_ExecutorDrainTurnin)
    ->Arg(1)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// --- serial vs parallel, cached vs uncached: the tracked perf numbers -------

double sweep_seconds(const core::MultiCampaign& suite, int jobs,
                     bool use_world_cache, int* out_runs) {
  core::SweepOptions opts;
  opts.jobs = jobs;
  opts.campaign.use_world_cache = use_world_cache;
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    auto r = suite.run(opts);
    auto t1 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(r);
    *out_runs = r.total_injections();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

/// Executor-drain rate for one scenario (plan prepared once): isolates
/// the per-run world cost, which is what the snapshot layer amortizes.
double drain_rps(const core::Scenario& scenario, bool use_world_cache,
                 bool pool_worlds = true) {
  core::CampaignOptions popts;
  popts.use_world_cache = use_world_cache;
  auto plan = core::Planner(scenario).plan(popts);
  core::Executor executor(scenario);
  core::ExecutorOptions opts;
  opts.use_world_cache = use_world_cache;
  opts.pool_worlds = pool_worlds;
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    auto r = executor.execute(plan, opts);
    auto t1 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(r);
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return static_cast<double>(plan.items.size()) / best;
}

/// The sharded dimension: the whole suite drained as `shard_count`
/// sequential shard pipelines. Each simulated shard process pays what a
/// real one pays — plan parsed from JSON, prototype re-frozen (a full
/// scenario.build()), its item subset drained, report serialized — and
/// the merge coordinator pays its own plan parse, report parses, and
/// merge. Serial, so the delta against the cached serial sweep is the
/// full distribution tax of an N-process campaign on one machine.
double sharded_sweep_seconds(int shard_count, int* out_runs,
                             std::size_t* out_wire_bytes) {
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    auto scenarios = apps::all_scenarios();
    int runs = 0;
    std::size_t wire_bytes = 0;
    auto t0 = std::chrono::steady_clock::now();
    for (auto& scenario : scenarios) {
      core::CampaignOptions popts;
      popts.use_world_cache = false;  // the plan file carries no snapshot
      std::string plan_json = core::Planner(scenario).plan(popts).to_json();
      core::Executor executor(scenario);
      std::vector<std::string> shard_jsons;
      for (int k = 0; k < shard_count; ++k) {
        core::InjectionPlan plan = core::plan_from_json(plan_json);
        core::refreeze_snapshot(plan, scenario);
        shard_jsons.push_back(
            core::run_shard(executor, plan, static_cast<std::size_t>(k),
                            static_cast<std::size_t>(shard_count))
                .to_json());
        wire_bytes += shard_jsons.back().size();
      }
      core::InjectionPlan merge_plan = core::plan_from_json(plan_json);
      std::vector<core::ShardReport> shards;
      for (const auto& json : shard_jsons)
        shards.push_back(core::shard_report_from_json(json));
      auto merged = core::merge_shard_reports(merge_plan, shards);
      runs += merged.n();
      benchmark::DoNotOptimize(merged);
    }
    auto t1 = std::chrono::steady_clock::now();
    *out_runs = runs;
    *out_wire_bytes = wire_bytes;
    best = std::min(best,
                    std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

struct OrchestratedStats {
  int runs = 0;
  std::size_t wire_bytes = 0;
  int leases = 0;
};

enum class DataPlane { json, shm, tcp };

/// One scenario's campaign through the orchestrated shape: `workers`
/// simulated *persistent* worker processes serving fine-grained dynamic
/// leases (core/orchestrator.hpp). Each worker pays the per-process tax
/// exactly once — plan decoded, prototype re-frozen — then drains many
/// leases, every lease report crossing the wire; the coordinator merges
/// against the plan it already holds in memory (it planned it), so
/// there is no merge-side plan re-parse. Three data planes:
/// DataPlane::json is the pipe transport's payload — plan and lease
/// reports as JSON strings. DataPlane::shm is the arena
/// (core/arena.hpp): the plan one binary frame workers decode from
/// their own mapping of the arena file, every lease report a binary
/// frame written into the lease's own segment and decoded from the
/// coordinator's mapping — zero copies, no per-lease files.
/// DataPlane::tcp is the socket plane's framing (net/transport_tcp.hpp)
/// over a socketpair — the same syscalls and copies a loopback
/// connection pays: the plan pushed to each worker as one
/// length-prefixed binary frame, each lease answered by a DONE control
/// frame plus the binary report frame, reassembled through FrameBuffer
/// on the receiving side.
double orchestrated_scenario_seconds(const core::Scenario& scenario,
                                     int workers, int leases_per_worker,
                                     DataPlane plane,
                                     const std::string& arena_path,
                                     OrchestratedStats* acc) {
  const bool shm = plane == DataPlane::shm;
  const bool tcp = plane == DataPlane::tcp;
  auto t0 = std::chrono::steady_clock::now();
  core::CampaignOptions popts;
  popts.use_world_cache = false;  // the wire plan carries no snapshot
  core::InjectionPlan plan = core::Planner(scenario).plan(popts);
  core::Executor executor(scenario);
  const std::size_t n = plan.items.size();
  const std::size_t lease_items = std::max<std::size_t>(
      1, n / static_cast<std::size_t>(workers * leases_per_worker));
  const std::size_t lease_count = (n + lease_items - 1) / lease_items;

  std::string plan_json;
  std::optional<core::ShmArena> coord, worker_side;
  int sp[2] = {-1, -1};  // [0] coordinator end, [1] worker end
  net::FrameBuffer coord_fb, worker_fb;
  if (shm) {
    coord.emplace(core::ShmArena::create(
        arena_path, core::plan_to_binary(plan), lease_count,
        core::arena_segment_bytes(lease_items)));
    // The worker side maps the file itself, like a real worker process.
    worker_side.emplace(core::ShmArena::open(arena_path));
  } else if (tcp) {
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sp) != 0) return 0.0;
  } else {
    plan_json = plan.to_json();
  }
  // One plan decode + one re-freeze per persistent worker, not per
  // lease.
  std::string plan_wire = tcp ? core::plan_to_binary(plan) : std::string();
  std::vector<core::InjectionPlan> worker_plans;
  for (int w = 0; w < workers; ++w) {
    if (shm) {
      worker_plans.push_back(core::plan_from_binary(
          worker_side->plan_data(), worker_side->plan_size()));
    } else if (tcp) {
      // The per-worker plan push: one frame down the socket, reassembled
      // and decoded on the worker end.
      net::send_frame(sp[0], plan_wire);
      std::string payload;
      net::recv_frame(sp[1], &worker_fb, &payload, 5000);
      worker_plans.push_back(core::plan_from_binary(payload));
    } else {
      worker_plans.push_back(core::plan_from_json(plan_json));
    }
    core::refreeze_snapshot(worker_plans.back(), scenario);
  }
  std::vector<core::ShardReport> leases;
  std::size_t lease_seq = 0;
  for (std::size_t begin = 0; begin < n;
       begin += lease_items, ++lease_seq) {
    int w = static_cast<int>(lease_seq) % workers;
    core::ShardReport report =
        core::run_lease(executor, worker_plans[w], begin,
                        std::min(begin + lease_items, n));
    if (shm) {
      std::string frame = core::shard_report_to_binary(report);
      std::memcpy(worker_side->segment(lease_seq), frame.data(),
                  frame.size());
      acc->wire_bytes += frame.size();
      // Coordinator side: decode from its own mapping — zero copies.
      leases.push_back(core::shard_report_from_binary(
          coord->segment(lease_seq), frame.size()));
    } else if (tcp) {
      // Worker end: DONE control frame, then the binary report frame —
      // the tcp plane's per-lease handoff, end to end.
      std::string frame = core::shard_report_to_binary(report);
      net::send_frame(
          sp[1], core::format_done(begin, std::min(begin + lease_items, n)));
      net::send_frame(sp[1], frame);
      std::string line, body;
      net::recv_frame(sp[0], &coord_fb, &line, 5000);
      core::ProtocolMsg msg;
      if (!core::parse_protocol_line(line, &msg)) std::abort();
      net::recv_frame(sp[0], &coord_fb, &body, 5000);
      acc->wire_bytes += line.size() + body.size();
      leases.push_back(core::shard_report_from_binary(body));
    } else {
      std::string json = report.to_json();
      acc->wire_bytes += json.size();
      leases.push_back(core::shard_report_from_json(json));
    }
  }
  acc->leases += static_cast<int>(lease_seq);
  auto merged = core::merge_shard_reports(plan, leases);
  acc->runs += merged.n();
  benchmark::DoNotOptimize(merged);
  if (tcp) {
    ::close(sp[0]);
    ::close(sp[1]);
  }
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Both orchestrated data planes plus their in-process baseline (one
/// plain cached campaign per scenario), interleaved at *scenario*
/// granularity — baseline, json, shm for one scenario, then the next —
/// with best-of-reps kept per (scenario, leg) and each leg summed at
/// the end. The overhead ratios are the tracked numbers; millisecond
/// legs interleaved this tightly see the same machine conditions, so a
/// cgroup throttle window or a noisy neighbour hits all three legs
/// alike instead of landing on whichever ran last (best-of then drops
/// the stall entirely).
void measure_orchestrated(int workers, int leases_per_worker,
                          double* baseline_s, double* json_s,
                          OrchestratedStats* json_stats, double* shm_s,
                          OrchestratedStats* shm_stats, double* tcp_s,
                          OrchestratedStats* tcp_stats) {
  // The arena lives on tmpfs when the host has one — a disk-backed
  // arena measures writeback, not the data plane (real deployments put
  // the orchestrator's --dir on tmpfs for the same reason).
  const char* tmp = std::getenv("TMPDIR");
  std::string dir = ::access("/dev/shm", W_OK) == 0
                        ? "/dev/shm"
                        : std::string(tmp && *tmp ? tmp : "/tmp");
  std::string arena_path =
      dir + "/epa_bench_" + std::to_string(::getpid()) + ".arena";
  auto scenarios = apps::all_scenarios();
  const std::size_t k = scenarios.size();
  std::vector<double> base_best(k, 1e300);
  std::vector<double> json_best(k, 1e300);
  std::vector<double> shm_best(k, 1e300);
  std::vector<double> tcp_best(k, 1e300);
  core::CampaignOptions base_opts;
  base_opts.use_world_cache = true;
  for (int rep = 0; rep < 3; ++rep) {
    // Stats are deterministic per pass; re-count each rep rather than
    // triple-accumulate.
    *json_stats = OrchestratedStats{};
    *shm_stats = OrchestratedStats{};
    *tcp_stats = OrchestratedStats{};
    for (std::size_t i = 0; i < k; ++i) {
      core::Campaign campaign(scenarios[i]);  // copy outside the clock
      auto t0 = std::chrono::steady_clock::now();
      auto r = campaign.execute(base_opts);
      auto t1 = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(r);
      base_best[i] = std::min(
          base_best[i], std::chrono::duration<double>(t1 - t0).count());
      json_best[i] = std::min(
          json_best[i], orchestrated_scenario_seconds(
                            scenarios[i], workers, leases_per_worker,
                            DataPlane::json, "", json_stats));
      shm_best[i] = std::min(
          shm_best[i], orchestrated_scenario_seconds(
                           scenarios[i], workers, leases_per_worker,
                           DataPlane::shm, arena_path, shm_stats));
      tcp_best[i] = std::min(
          tcp_best[i], orchestrated_scenario_seconds(
                           scenarios[i], workers, leases_per_worker,
                           DataPlane::tcp, "", tcp_stats));
    }
  }
  *baseline_s = 0;
  *json_s = 0;
  *shm_s = 0;
  *tcp_s = 0;
  for (std::size_t i = 0; i < k; ++i) {
    *baseline_s += base_best[i];
    *json_s += json_best[i];
    *shm_s += shm_best[i];
    *tcp_s += tcp_best[i];
  }
  std::remove(arena_path.c_str());
}

/// Pure codec throughput, no execution: every scenario's full report
/// encoded to the binary frame and decoded back. The rate is outcomes
/// per second through one encode+decode round trip.
double codec_encode_decode_rps() {
  std::vector<core::ShardReport> reports;
  std::size_t outcomes = 0;
  for (auto& scenario : apps::all_scenarios()) {
    core::CampaignOptions popts;
    popts.use_world_cache = false;
    core::InjectionPlan plan = core::Planner(scenario).plan(popts);
    core::refreeze_snapshot(plan, scenario);
    core::Executor executor(scenario);
    reports.push_back(
        core::run_lease(executor, plan, 0, plan.items.size()));
    outcomes += plan.items.size();
  }
  constexpr int kIters = 50;
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kIters; ++i) {
      for (const core::ShardReport& r : reports) {
        std::string frame = core::shard_report_to_binary(r);
        core::ShardReport back = core::shard_report_from_binary(frame);
        benchmark::DoNotOptimize(back);
      }
    }
    auto t1 = std::chrono::steady_clock::now();
    best = std::min(best,
                    std::chrono::duration<double>(t1 - t0).count());
  }
  return static_cast<double>(outcomes) * kIters / best;
}

void write_sweep_json(const char* path) {
  core::MultiCampaign suite;
  for (auto& s : apps::all_scenarios()) suite.add(std::move(s));

  constexpr int kJobs = 4;
  int runs = 0;
  // "serial"/"parallel" keep their historical meaning — the uncached
  // rebuild-per-run engine — so the runs/sec trajectory stays comparable
  // across PRs; the cached_* fields are the world-cache dimension.
  double serial_s = sweep_seconds(suite, 1, false, &runs);
  double parallel_s = sweep_seconds(suite, kJobs, false, &runs);
  double cached_serial_s = sweep_seconds(suite, 1, true, &runs);
  double cached_parallel_s = sweep_seconds(suite, kJobs, true, &runs);
  double serial_rps = runs / serial_s;
  double parallel_rps = runs / parallel_s;
  double cached_serial_rps = runs / cached_serial_s;
  double cached_parallel_rps = runs / cached_parallel_s;

  // The build-heaviest scenario in the suite (the NT registry world:
  // dozens of keys, programs, and profile files per build) — where the
  // clone-vs-build gap is widest. Measured serially so the number means
  // the same thing on any runner.
  core::Scenario heavy = apps::nt_module_scenarios().front();
  double heavy_uncached_rps = drain_rps(heavy, false);
  double heavy_cached_rps = drain_rps(heavy, true);
  // Same cached drain with the per-worker TargetWorld arena disabled —
  // the pre-pool engine, so the pair isolates the allocation-reuse win.
  double heavy_pool_off_rps = drain_rps(heavy, true, false);

  // The distribution tax: same suite, drained as 3 serial shard
  // pipelines with every byte passing through the wire format.
  constexpr int kShards = 3;
  int sharded_runs = 0;
  std::size_t shard_wire_bytes = 0;
  double sharded_s =
      sharded_sweep_seconds(kShards, &sharded_runs, &shard_wire_bytes);
  double sharded_rps = sharded_runs / sharded_s;
  double shard_overhead_pct =
      (cached_serial_s > 0 ? sharded_s / cached_serial_s - 1.0 : 0.0) * 100.0;

  // The orchestrated dimension: same process count as the sharded
  // number, but persistent workers amortize the plan parse + re-freeze
  // across ~4 leases each, and the coordinator never re-parses the plan.
  // Measured over both data planes, interleaved: JSON strings (the pipe
  // transport's payload) and the zero-copy shm arena — binary frames in
  // a mmap'd file instead of JSON report files. binary_wire_bytes /
  // orchestrated_wire_bytes is the codec's size win; the overhead delta
  // is the whole data plane's win.
  constexpr int kOrchLeasesPerWorker = 4;
  OrchestratedStats orch, shm, tcp;
  double orch_base_s = 0, orch_s = 0, shm_s = 0, tcp_s = 0;
  measure_orchestrated(kShards, kOrchLeasesPerWorker, &orch_base_s,
                       &orch_s, &orch, &shm_s, &shm, &tcp_s, &tcp);
  double orch_rps = orch.runs / orch_s;
  double orch_overhead_pct =
      (orch_base_s > 0 ? orch_s / orch_base_s - 1.0 : 0.0) * 100.0;
  double shm_rps = shm.runs / shm_s;
  double shm_overhead_pct =
      (orch_base_s > 0 ? shm_s / orch_base_s - 1.0 : 0.0) * 100.0;
  double tcp_rps = tcp.runs / tcp_s;
  double tcp_overhead_pct =
      (orch_base_s > 0 ? tcp_s / orch_base_s - 1.0 : 0.0) * 100.0;
  double codec_rps = codec_encode_decode_rps();

  // The declarative layer at scale: every packaged family expanded
  // (spec compiled per member, cached worlds) and drained serially, plus
  // the adequacy of what the generated suite actually fired — the
  // fraction of the 20 EAI cause/attribute classes with >= 1 violation.
  core::MultiCampaign family_suite;
  for (const auto& fam : apps::scenario_families())
    for (auto& s : apps::family_scenarios(fam)) family_suite.add(std::move(s));
  std::size_t family_count = family_suite.size();
  core::SweepOptions family_opts;
  family_opts.campaign.use_world_cache = true;
  double family_best = 1e300;
  int family_runs = 0;
  vulndb::VulnCoverage family_cov;
  for (int rep = 0; rep < 3; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    core::SweepResult r = family_suite.run(family_opts);
    auto t1 = std::chrono::steady_clock::now();
    family_runs = r.total_injections();
    family_cov = vulndb::vulnerability_coverage(r.results);
    family_best =
        std::min(family_best, std::chrono::duration<double>(t1 - t0).count());
  }
  double family_rps = family_runs / family_best;
  double vuln_coverage_pct = 100.0 * family_cov.fraction();

  // Search adequacy on one family (fam-relay): the coverage-guided
  // scheduler gets a quarter of the exhaustive run count and must still
  // fire >= 90% of the EAI classes the exhaustive drain fires. One
  // scorer is shared across the members (the CLI's --family path), so
  // later members spend their slices on what the family has not shown.
  const core::ScenarioFamily* relay = apps::find_family("fam-relay");
  std::vector<core::Scenario> relay_members = apps::family_scenarios(*relay);
  std::size_t exhaustive_items = 0;
  std::vector<core::CampaignResult> exhaustive_results;
  for (const auto& member : relay_members) {
    core::CampaignOptions popts;
    popts.use_world_cache = true;
    core::InjectionPlan plan = core::Planner(member).plan(popts);
    exhaustive_items += plan.items.size();
    core::Executor executor(member);
    exhaustive_results.push_back(executor.execute(plan, {}));
  }
  vulndb::VulnCoverage exhaustive_cov =
      vulndb::vulnerability_coverage(exhaustive_results);
  std::size_t search_budget = exhaustive_items / 4;
  core::NoveltyScorer search_scorer;
  std::size_t member_budget = search_budget / relay_members.size();
  std::size_t budget_rem = search_budget % relay_members.size();
  for (std::size_t i = 0; i < relay_members.size(); ++i) {
    core::CampaignOptions popts;
    popts.use_world_cache = true;
    core::InjectionPlan plan = core::Planner(relay_members[i]).plan(popts);
    core::SearchOptions sopts;
    sopts.seed = 7;
    sopts.budget = member_budget + (i == 0 ? budget_rem : 0);
    sopts.batch = 16;
    sopts.classify = [](core::FaultKind kind, const std::string& name) {
      return vulndb::coverage_class(kind, name);
    };
    core::SearchWorkSource source(std::move(plan), sopts, &search_scorer);
    core::Executor executor(relay_members[i]);
    auto rr = core::run_search(executor, source);
    benchmark::DoNotOptimize(rr);
  }
  std::size_t refired = 0;
  for (const std::string& c : exhaustive_cov.fired)
    if (search_scorer.fired_classes().count(c)) ++refired;
  double search_budget_pct =
      exhaustive_items == 0
          ? 0.0
          : 100.0 * static_cast<double>(search_budget) / exhaustive_items;
  double search_coverage_ratio =
      exhaustive_cov.fired.empty()
          ? 1.0
          : static_cast<double>(refired) / exhaustive_cov.fired.size();

  // On a machine with fewer cores than kJobs the parallel sweep is pure
  // thread overhead; flag the artifact so a sub-kJobs speedup reads as a
  // hardware limit, not an engine regression.
  unsigned hw = std::thread::hardware_concurrency();
  bool core_starved = hw < static_cast<unsigned>(kJobs);

  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "perf_injection: cannot write %s\n", path);
    return;
  }
  std::fprintf(f,
               "{\n"
               "  \"scenarios\": %zu,\n"
               "  \"injection_runs\": %d,\n"
               "  \"hardware_threads\": %u,\n"
               "  \"core_starved\": %s,\n"
               "  \"jobs\": %d,\n"
               "  \"serial_seconds\": %.6f,\n"
               "  \"parallel_seconds\": %.6f,\n"
               "  \"serial_runs_per_sec\": %.1f,\n"
               "  \"parallel_runs_per_sec\": %.1f,\n"
               "  \"speedup\": %.2f,\n"
               "  \"cached_serial_runs_per_sec\": %.1f,\n"
               "  \"cached_parallel_runs_per_sec\": %.1f,\n"
               "  \"cache_speedup_serial\": %.2f,\n"
               "  \"cache_speedup_parallel\": %.2f,\n"
               "  \"build_heavy_scenario\": \"%s\",\n"
               "  \"build_heavy_uncached_runs_per_sec\": %.1f,\n"
               "  \"build_heavy_cached_runs_per_sec\": %.1f,\n"
               "  \"build_heavy_cache_speedup\": %.2f,\n"
               "  \"build_heavy_pool_off_runs_per_sec\": %.1f,\n"
               "  \"build_heavy_pool_speedup\": %.2f,\n"
               "  \"shards\": %d,\n"
               "  \"sharded_serial_runs_per_sec\": %.1f,\n"
               "  \"shard_wire_overhead_pct\": %.1f,\n"
               "  \"shard_wire_bytes\": %zu,\n"
               "  \"orchestrated_workers\": %d,\n"
               "  \"orchestrated_leases\": %d,\n"
               "  \"orchestrated_serial_runs_per_sec\": %.1f,\n"
               "  \"orchestrated_overhead_pct\": %.1f,\n"
               "  \"orchestrated_wire_bytes\": %zu,\n"
               "  \"shm_orchestrated_serial_runs_per_sec\": %.1f,\n"
               "  \"shm_orchestrated_overhead_pct\": %.1f,\n"
               "  \"binary_wire_bytes\": %zu,\n"
               "  \"tcp_orchestrated_serial_runs_per_sec\": %.1f,\n"
               "  \"tcp_orchestrated_overhead_pct\": %.1f,\n"
               "  \"tcp_wire_bytes\": %zu,\n"
               "  \"codec_encode_decode_runs_per_sec\": %.1f,\n"
               "  \"family_generated_count\": %zu,\n"
               "  \"family_generated_serial_runs_per_sec\": %.1f,\n"
               "  \"vuln_coverage_pct\": %.1f,\n"
               "  \"search_family\": \"%s\",\n"
               "  \"search_exhaustive_items\": %zu,\n"
               "  \"search_budget\": %zu,\n"
               "  \"search_budget_pct\": %.1f,\n"
               "  \"search_coverage_ratio\": %.3f\n"
               "}\n",
               suite.size(), runs, hw, core_starved ? "true" : "false",
               kJobs, serial_s, parallel_s, serial_rps, parallel_rps,
               parallel_rps / serial_rps, cached_serial_rps,
               cached_parallel_rps, cached_serial_rps / serial_rps,
               cached_parallel_rps / parallel_rps, heavy.name.c_str(),
               heavy_uncached_rps, heavy_cached_rps,
               heavy_cached_rps / heavy_uncached_rps, heavy_pool_off_rps,
               heavy_cached_rps / heavy_pool_off_rps, kShards, sharded_rps,
               shard_overhead_pct, shard_wire_bytes, kShards, orch.leases,
               orch_rps, orch_overhead_pct, orch.wire_bytes, shm_rps,
               shm_overhead_pct, shm.wire_bytes, tcp_rps, tcp_overhead_pct,
               tcp.wire_bytes, codec_rps, family_count, family_rps,
               vuln_coverage_pct, relay->name.c_str(), exhaustive_items,
               search_budget, search_budget_pct, search_coverage_ratio);
  std::fclose(f);
  std::printf(
      "\nsweep: %d injection runs across %zu scenarios\n"
      "  serial            : %8.1f runs/sec\n"
      "  jobs=%d            : %8.1f runs/sec  (%.2fx)\n"
      "  cached serial     : %8.1f runs/sec  (%.2fx vs serial)\n"
      "  cached jobs=%d     : %8.1f runs/sec  (%.2fx vs jobs=%d)\n"
      "  build-heavy %-6s: %8.1f -> %8.1f runs/sec  (%.2fx cached)\n"
      "  world pool off    : %8.1f runs/sec  (pool is %.2fx on the cached "
      "drain)\n"
      "  sharded %dx serial : %8.1f runs/sec  (wire+merge overhead "
      "%+.1f%% vs cached serial; %zu report bytes)\n"
      "  orchestrated %dx%-2d : %8.1f runs/sec  (overhead %+.1f%% vs "
      "cached serial; %d leases, %zu report bytes; persistent workers "
      "parse+refreeze once)\n"
      "  shm orchestrated  : %8.1f runs/sec  (overhead %+.1f%% vs cached "
      "serial; %d leases, %zu binary report bytes in the arena)\n"
      "  tcp orchestrated  : %8.1f runs/sec  (overhead %+.1f%% vs cached "
      "serial; %d leases, %zu framed bytes through the socketpair)\n"
      "  binary codec      : %8.1f outcomes/sec through encode+decode\n"
      "  family generated  : %8.1f runs/sec over %zu spec-compiled "
      "scenarios (%d runs; %.1f%% of the 20 EAI classes fired)\n"
      "  search %-10s : %zu of %zu exhaustive runs (%.1f%% budget) "
      "re-fired %.0f%% of the exhaustive EAI classes\n",
      runs, suite.size(), serial_rps, kJobs, parallel_rps,
      parallel_rps / serial_rps, cached_serial_rps,
      cached_serial_rps / serial_rps, kJobs, cached_parallel_rps,
      cached_parallel_rps / parallel_rps, kJobs, heavy.name.c_str(),
      heavy_uncached_rps, heavy_cached_rps,
      heavy_cached_rps / heavy_uncached_rps, heavy_pool_off_rps,
      heavy_cached_rps / heavy_pool_off_rps, kShards, sharded_rps,
      shard_overhead_pct, shard_wire_bytes, kShards, kOrchLeasesPerWorker,
      orch_rps, orch_overhead_pct, orch.leases, orch.wire_bytes, shm_rps,
      shm_overhead_pct, shm.leases, shm.wire_bytes, tcp_rps,
      tcp_overhead_pct, tcp.leases, tcp.wire_bytes, codec_rps, family_rps,
      family_count, family_runs, vuln_coverage_pct, relay->name.c_str(),
      search_budget, exhaustive_items, search_budget_pct,
      100.0 * search_coverage_ratio);
  if (core_starved)
    std::printf(
        "  !! core-starved (%u hardware thread%s < %d jobs): the parallel "
        "speedup is not meaningful here; judge regressions on the serial "
        "and cached-serial rates only\n",
        hw, hw == 1 ? "" : "s", kJobs);
  std::printf("  -> %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  // The sweep is expensive (6 full suite runs), so it runs on a plain
  // invocation — the tracked-artifact path — or when asked for with
  // --sweep-json; a filtered/listing micro-bench run skips it.
  bool sweep = argc == 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--sweep-json") {
      sweep = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (sweep) write_sweep_json("BENCH_perf_injection.json");
  return 0;
}
