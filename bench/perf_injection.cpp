// Microbenchmarks (google-benchmark): cost of the substrate and of the
// interposition machinery. Supports the paper's automation claim — a
// full per-fault rebuild-and-rerun cycle is cheap enough to sweep entire
// catalogs.
#include <benchmark/benchmark.h>

#include "apps/lpr.hpp"
#include "apps/turnin.hpp"
#include "core/injector.hpp"
#include "core/report.hpp"
#include "os/world.hpp"

namespace {

using namespace ep;

const os::Site kS{"perf.c", 1, "probe"};

void BM_VfsResolveDeepPath(benchmark::State& state) {
  os::Kernel k;
  os::world::mkdirs(k, "/a/b/c/d/e/f/g");
  os::world::put_file(k, "/a/b/c/d/e/f/g/leaf", "x");
  for (auto _ : state) {
    auto r = k.vfs().resolve("/a/b/c/d/e/f/g/leaf", "/", os::kRootUid, 0);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_VfsResolveDeepPath);

void BM_VfsSymlinkChainResolve(benchmark::State& state) {
  os::Kernel k;
  os::world::put_file(k, "/end", "x");
  std::string prev = "/end";
  for (int i = 0; i < 6; ++i) {
    std::string name = "/l" + std::to_string(i);
    os::world::put_symlink(k, name, prev);
    prev = name;
  }
  for (auto _ : state) {
    auto r = k.vfs().resolve(prev, "/", os::kRootUid, 0);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_VfsSymlinkChainResolve);

void BM_OpenReadClose(benchmark::State& state) {
  os::Kernel k;
  os::world::standard_unix(k);
  os::world::put_file(k, "/data/f", std::string(1024, 'x'), os::kRootUid, 0,
                      0644);
  os::Pid pid = k.make_process(os::kRootUid, 0, "/");
  for (auto _ : state) {
    auto fd = k.open(kS, pid, "/data/f", os::OpenFlag::rd);
    auto data = k.read(kS, pid, fd.value());
    benchmark::DoNotOptimize(data);
    (void)k.close(pid, fd.value());
  }
}
BENCHMARK(BM_OpenReadClose);

void BM_SyscallNoHooks(benchmark::State& state) {
  os::Kernel k;
  os::world::put_file(k, "/f", "x");
  os::Pid pid = k.make_process(os::kRootUid, 0, "/");
  for (auto _ : state) {
    auto r = k.stat(kS, pid, "/f");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SyscallNoHooks);

void BM_SyscallWithHookChain(benchmark::State& state) {
  os::Kernel k;
  os::world::put_file(k, "/f", "x");
  os::Pid pid = k.make_process(os::kRootUid, 0, "/");
  struct Nop : os::Interposer {};
  for (int i = 0; i < state.range(0); ++i)
    k.add_interposer(std::make_shared<Nop>());
  for (auto _ : state) {
    auto r = k.stat(kS, pid, "/f");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SyscallWithHookChain)->Arg(1)->Arg(4)->Arg(16);

void BM_WorldBuildLpr(benchmark::State& state) {
  auto scenario = apps::lpr_scenario();
  for (auto _ : state) {
    auto w = scenario.build();
    benchmark::DoNotOptimize(w);
  }
}
BENCHMARK(BM_WorldBuildLpr);

void BM_WorldBuildTurnin(benchmark::State& state) {
  auto scenario = apps::turnin_scenario();
  for (auto _ : state) {
    auto w = scenario.build();
    benchmark::DoNotOptimize(w);
  }
}
BENCHMARK(BM_WorldBuildTurnin);

void BM_SingleInjectionRun(benchmark::State& state) {
  // One complete procedure step 4-8 cycle: fresh world, armed injector,
  // oracle, target execution.
  auto scenario = apps::lpr_scenario();
  core::FaultRef fault;
  fault.kind = core::FaultKind::direct;
  fault.direct = core::FaultCatalog::standard().find_direct("symbolic-link");
  for (auto _ : state) {
    auto w = scenario.build();
    auto injector = std::make_shared<core::Injector>(
        *w, os::Site{"lpr.c", 42, apps::kLprCreateTag}, fault,
        scenario.hints);
    auto oracle = std::make_shared<core::SecurityOracle>(scenario.policy);
    w->kernel.add_interposer(injector);
    w->kernel.add_interposer(oracle);
    int rc = scenario.run(*w);
    benchmark::DoNotOptimize(rc);
  }
}
BENCHMARK(BM_SingleInjectionRun);

void BM_FullTurninCampaign(benchmark::State& state) {
  // All 41 injections + trace run: the complete Section 4.1 experiment.
  for (auto _ : state) {
    core::Campaign c(apps::turnin_scenario());
    auto r = c.execute();
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_FullTurninCampaign)->Unit(benchmark::kMillisecond);

}  // namespace
