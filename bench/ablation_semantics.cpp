// Ablation — do the *semantic* fault patterns matter? (Section 3.1: "by
// an examination of rare cases and by concentrating instead on fault
// patterns already observed, we reduce the testing space considerably".)
//
// Re-runs every indirect injection of a campaign with the catalog's
// pattern replaced by a random string (five seeds deep per site, so the
// random side gets 5x the catalog's budget), and compares what each side
// *discovers*: the distinct flaws, counted as (site, policy) pairs.
//
// Raw per-run yield would mislead here — any long random string re-finds
// the same unchecked-buffer overflow over and over. The question the
// catalog answers is coverage of failure modes: "../" names, untrusted
// path entries, victim-pointing absolute paths are patterns a random
// string essentially never hits.
#include <cstdio>
#include <memory>
#include <set>
#include <string>

#include "apps/mailer.hpp"
#include "apps/registry_modules.hpp"
#include "apps/turnin.hpp"
#include "core/injector.hpp"
#include "core/report.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace ep;

class RandomPayloadInjector : public os::Interposer {
 public:
  RandomPayloadInjector(os::Site site, Rng& rng)
      : site_(std::move(site)), rng_(rng) {}
  void after(os::Kernel&, os::SyscallCtx& ctx, Err) override {
    if (fired_ || !(ctx.site == site_)) return;
    if (!ctx.has_input || ctx.input == nullptr) return;
    std::size_t len = rng_.between(1, 6000);
    *ctx.input = rng_.chance(0.5) ? rng_.printable(len) : rng_.bytes(len);
    fired_ = true;
  }

 private:
  os::Site site_;
  Rng& rng_;
  bool fired_ = false;
};

using FlawSet = std::set<std::string>;  // "site|policy"

struct Discovery {
  FlawSet catalog;
  FlawSet random;
  int catalog_runs = 0;
  int random_runs = 0;
};

Discovery measure(const core::Scenario& scenario, int random_rounds) {
  Discovery d;
  core::Campaign campaign(scenario);
  auto r = campaign.execute();
  std::vector<os::Site> indirect_sites;
  for (const auto& i : r.injections) {
    if (i.kind != core::FaultKind::indirect) continue;
    ++d.catalog_runs;
    indirect_sites.push_back(i.site);
    for (const auto& v : i.violations)
      d.catalog.insert(i.site.tag + "|" + std::string(to_string(v.policy)));
  }
  Rng rng(99);
  for (int round = 0; round < random_rounds; ++round) {
    for (const auto& site : indirect_sites) {
      auto world = scenario.build();
      auto inj = std::make_shared<RandomPayloadInjector>(site, rng);
      auto oracle = std::make_shared<core::SecurityOracle>(scenario.policy);
      world->kernel.add_interposer(inj);
      world->kernel.add_interposer(oracle);
      (void)scenario.run(*world);
      ++d.random_runs;
      for (const auto& v : oracle->violations())
        d.random.insert(site.tag + "|" + std::string(to_string(v.policy)));
    }
  }
  return d;
}

std::string show(const FlawSet& flaws) {
  if (flaws.empty()) return "-";
  std::vector<std::string> v(flaws.begin(), flaws.end());
  return ep::join(v, ", ");
}

}  // namespace

int main() {
  std::printf("=== Ablation: semantic fault patterns vs random payloads "
              "===\n\n");

  struct Case {
    const char* name;
    core::Scenario scenario;
  };
  std::vector<Case> cases;
  cases.push_back({"turnin", apps::turnin_scenario()});
  cases.push_back({"mailer", apps::mailer_scenario()});
  cases.push_back({"nt-helpviewer", apps::nt_module_scenario("helpviewer")});

  TextTable t({"target", "budget (catalog vs random)",
               "distinct flaws: catalog", "distinct flaws: random",
               "found only by catalog"});
  int catalog_only_total = 0;
  int random_only_total = 0;
  for (auto& c : cases) {
    Discovery d = measure(c.scenario, /*random_rounds=*/5);
    FlawSet catalog_only;
    for (const auto& f : d.catalog)
      if (!d.random.count(f)) catalog_only.insert(f);
    for (const auto& f : d.random)
      if (!d.catalog.count(f)) ++random_only_total;
    catalog_only_total += static_cast<int>(catalog_only.size());
    t.add_row({c.name,
               std::to_string(d.catalog_runs) + " vs " +
                   std::to_string(d.random_runs) + " runs",
               std::to_string(d.catalog.size()) + "  (" + show(d.catalog) +
                   ")",
               std::to_string(d.random.size()) + "  (" + show(d.random) +
                   ")",
               show(catalog_only)});
  }
  std::printf("%s\n", t.render().c_str());

  std::printf(
      "random payloads re-find length overflows (any long string smashes\n"
      "an unchecked buffer) but, even on 5x the budget, miss the\n"
      "structured patterns: \"../\" traversal, untrusted $PATH entries,\n"
      "victim-pointing absolute paths.\n\n");
  bool holds = catalog_only_total > 0 && random_only_total == 0;
  std::printf("reproduction: catalog discovers flaw classes randomness "
              "misses (and nothing vice versa) -> %s\n",
              holds ? "HOLDS" : "FAILS");
  return holds ? 0 : 1;
}
