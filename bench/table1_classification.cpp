// Table 1 — high-level classification of the vulnerability database.
//
// Paper (Section 2.4): of 195 records, 26 lack information, 22 are design
// errors, 5 configuration errors; the remaining 142 classify as
// 81 indirect (57%), 48 direct (34%), 13 others (9%).
#include <cstdio>

#include "util/strings.hpp"
#include "util/table.hpp"
#include "vulndb/classifier.hpp"

int main() {
  using namespace ep;
  const auto& db = vulndb::database();
  auto c = vulndb::classify_all(db);

  std::printf("=== Table 1: high-level classification (total %d) ===\n\n",
              c.classified);

  std::printf("database: %d records; excluded: %d insufficient info, "
              "%d design, %d configuration\n\n",
              c.total, c.insufficient, c.design, c.configuration);

  TextTable t({"Categories", "Indirect Environment Fault",
               "Direct Environment Fault", "Others"});
  t.add_row({"number", std::to_string(c.indirect), std::to_string(c.direct),
             std::to_string(c.other)});
  t.add_row({"percent", percent(c.indirect, c.classified),
             percent(c.direct, c.classified),
             percent(c.other, c.classified)});
  t.add_row({"paper", "81 (57.0%)", "48 (33.8%)", "13 (9.2%)"});
  std::printf("%s\n", t.render().c_str());

  bool match = c.classified == 142 && c.indirect == 81 && c.direct == 48 &&
               c.other == 13;
  std::printf("reproduction: %s\n",
              match ? "EXACT (142 = 81 + 48 + 13)" : "MISMATCH");
  return match ? 0 : 1;
}
