// Table 6 — the executable catalog of direct environment faults.
//
// Prints the entity/attribute/perturbation rows, then applies every
// perturber against a fresh world and verifies the file system's
// structural invariants survive each one (the perturbation must damage
// the *security* of the world, never its consistency).
#include <chrono>
#include <cstdio>

#include "core/catalog.hpp"
#include "os/world.hpp"
#include "util/table.hpp"

namespace {

std::unique_ptr<ep::core::TargetWorld> fresh_world() {
  auto w = std::make_unique<ep::core::TargetWorld>();
  ep::os::world::standard_unix(w->kernel);
  w->kernel.add_user(666, "mallory", 666);
  ep::os::world::mkdirs(w->kernel, "/tmp/attacker", 666, 666, 0755);
  ep::os::world::put_file(w->kernel, "/app/target", "content",
                          ep::os::kRootUid, 0, 0644);
  ep::net::ServiceDef svc;
  svc.name = "authsvc";
  svc.handler = [](const ep::net::Message&) { return ep::net::Message{}; };
  w->network.define_service(svc);
  ep::reg::Key key;
  key.path = "HKLM/Key";
  key.value = "/app/target";
  key.acl.everyone_write = true;
  w->registry.define_key(key);
  return w;
}

}  // namespace

int main() {
  using namespace ep;
  const auto& cat = core::FaultCatalog::standard();

  std::printf(
      "=== Table 6: direct environment faults and perturbations ===\n\n");

  TextTable t({"Environment Entity", "Attribute", "Fault Injection"});
  for (const auto& f : cat.direct()) {
    if (f.extension) continue;  // registry rows are our extension
    t.add_row({std::string(to_string(f.entity)),
               std::string(to_string(f.attribute)), f.description});
  }
  std::printf("%s\n", t.render().c_str());

  std::printf("extension rows (Section 4.2 method on registry keys):\n");
  TextTable ext({"Entity", "Fault", "Perturbation"});
  for (const auto& f : cat.direct())
    if (f.extension) ext.add_row({"registry key", f.name, f.description});
  std::printf("%s\n", ext.render().c_str());

  // Apply every perturber to a fresh world; check invariants.
  int applied = 0;
  auto start = std::chrono::steady_clock::now();
  for (const auto& f : cat.direct()) {
    auto w = fresh_world();
    os::Pid pid = w->kernel.make_process(1000, 1000, "/");
    os::SyscallCtx ctx;
    ctx.site = os::Site{"bench.c", 1, "probe"};
    ctx.pid = pid;
    ctx.call = f.extension ? "regread" : "open";
    ctx.path = f.extension ? "HKLM/Key" : "/app/target";
    ctx.aux = "r";
    core::ScenarioHints hints;
    hints.attacker_uid = 666;
    hints.attacker_gid = 666;
    f.perturb(*w, ctx, hints);
    std::string broken = w->kernel.vfs().check_invariants();
    if (!broken.empty()) {
      std::printf("INVARIANT BROKEN by %s: %s\n", f.name.c_str(),
                  broken.c_str());
      return 1;
    }
    ++applied;
  }
  auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - start)
                .count();
  std::printf("applied %d perturbers against fresh worlds in %lld us "
              "(world build + perturb + invariant check each); "
              "all invariants hold\n",
              applied, static_cast<long long>(us));
  return 0;
}
