// Section 3.4 — the lpr fault-injection walkthrough.
//
// Paper: at the create() interaction point, attributes 5 (content
// invariance) and 6 (name invariance) are not applicable — this is the
// first encounter of the file — and perturbing existence, ownership,
// permission, and symbolic link each makes lpr "write to a file even when
// the user who runs it does not have the appropriate ownership and file
// permissions"; linked to the password file, lpr rewrites it.
#include <cstdio>

#include "apps/lpr.hpp"
#include "core/report.hpp"

int main() {
  using namespace ep;
  auto scenario = apps::lpr_scenario();

  std::printf("=== Section 3.4: lpr example ===\n\n");
  std::printf("program: set-uid lpr; interaction point: create(\"%s\")\n\n",
              apps::kLprSpoolFile);

  const auto& spec = scenario.sites.at(apps::kLprCreateTag);
  std::printf("fault list after applicability analysis:\n");
  for (const auto& f : spec.faults) std::printf("  - %s\n", f.c_str());
  std::printf("not applicable:\n");
  for (const auto& [fault, why] : spec.not_applicable)
    std::printf("  - %s (%s)\n", fault.c_str(), why.c_str());
  std::printf("\n");

  core::Campaign campaign(std::move(scenario));
  core::CampaignOptions opts;
  opts.only_sites = {apps::kLprCreateTag};
  auto r = campaign.execute(opts);

  std::printf("%s\n", core::render_report(r).c_str());
  std::printf("paper:    4 attribute perturbations, violations at all 4\n");
  std::printf("measured: %d perturbations, %d violations\n", r.n(),
              r.violation_count());

  bool match = r.n() == 4 && r.violation_count() == 4;
  std::printf("reproduction: %s\n", match ? "EXACT" : "MISMATCH");
  return match ? 0 : 1;
}
