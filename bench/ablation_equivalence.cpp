// Ablation — interaction-point equivalence reduction (future work,
// Sections 1 and 6): injecting only at one representative per
// injection-equivalence class must cost fewer runs and find the same
// violations.
#include <cstdio>

#include "apps/scenarios.hpp"
#include "core/equivalence.hpp"
#include "util/table.hpp"

int main() {
  using namespace ep;
  std::printf("=== Ablation: equivalence-based injection reduction ===\n\n");

  TextTable t({"target", "points", "classes", "injections full",
               "injections merged", "violations full", "violations merged",
               "saved"});
  int total_full = 0;
  int total_merged = 0;
  bool violations_preserved = true;
  for (auto& scenario : apps::all_scenarios()) {
    std::string name = scenario.name;

    core::Campaign full_campaign(scenario);
    auto full = full_campaign.execute();

    core::Campaign merged_campaign(std::move(scenario));
    core::CampaignOptions opts;
    opts.merge_equivalent_sites = true;
    auto merged = merged_campaign.execute(opts);

    auto classes = core::find_equivalence_classes(full.points);
    total_full += full.n();
    total_merged += merged.n();
    if (merged.violation_count() != full.violation_count())
      violations_preserved = false;

    t.add_row({name, std::to_string(full.points.size()),
               std::to_string(classes.size()), std::to_string(full.n()),
               std::to_string(merged.n()),
               std::to_string(full.violation_count()),
               std::to_string(merged.violation_count()),
               std::to_string(full.n() - merged.n())});
  }
  std::printf("%s\n", t.render().c_str());

  std::printf("totals: %d -> %d injections (%.1f%% saved); violations "
              "preserved in every campaign: %s\n",
              total_full, total_merged,
              100.0 * (total_full - total_merged) / total_full,
              violations_preserved ? "YES" : "NO");
  std::printf("\nexample partition (lpr):\n");
  {
    core::Campaign c(apps::lpr_scenario());
    auto r = c.execute(core::CampaignOptions{});
    std::printf("%s",
                core::render_equivalence(
                    core::find_equivalence_classes(r.points))
                    .c_str());
  }
  return violations_preserved ? 0 : 1;
}
