// Table 5 — the executable catalog of indirect environment faults.
//
// Prints every catalog row (internal entity / semantic attribute / fault
// injections) in the paper's layout, exercises each generator against a
// representative input, and measures generator throughput.
#include <chrono>
#include <cstdio>
#include <map>

#include "core/catalog.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace ep;
  using core::FaultCatalog;
  using core::IndirectCategory;
  using core::InputSemantic;
  const auto& cat = FaultCatalog::standard();

  std::printf(
      "=== Table 5: indirect environment faults and perturbations ===\n\n");

  TextTable t({"Internal Entity", "Semantic Attribute", "Fault Injection",
               "example: original -> injected"});
  core::ScenarioHints hints;
  hints.long_length = 64;  // keep examples printable

  std::map<InputSemantic, std::string> sample = {
      {InputSemantic::file_name, "hw1.c"},
      {InputSemantic::command, "tar"},
      {InputSemantic::path_list, "/bin:/usr/bin"},
      {InputSemantic::permission_mask, "022"},
      {InputSemantic::file_extension, "report.txt"},
      {InputSemantic::ip_address, "10.0.0.1"},
      {InputSemantic::packet, "REQ data"},
      {InputSemantic::host_name, "fileserver.corp"},
      {InputSemantic::dns_reply, "10.0.0.7"},
      {InputSemantic::ipc_message, "job=cleanup"},
  };

  auto clip = [](std::string s) {
    for (char& c : s)
      if (static_cast<unsigned char>(c) < 0x20 ||
          static_cast<unsigned char>(c) > 0x7e)
        c = '.';
    if (s.size() > 36) s = s.substr(0, 33) + "...";
    return s;
  };

  for (const auto& f : cat.indirect()) {
    std::string in = sample[f.semantic];
    std::string out = f.mutate(in, hints);
    t.add_row({std::string(to_string(f.category)),
               std::string(to_string(f.semantic)), f.description,
               clip(in) + " -> " + clip(out)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("catalog size: %zu indirect fault injections (paper Table 5 "
              "rows expanded per listed injection)\n\n",
              cat.indirect().size());

  // Generator throughput: how cheap is computing a perturbed input?
  hints.long_length = 4096;
  constexpr int kIters = 20000;
  auto start = std::chrono::steady_clock::now();
  std::size_t sink = 0;
  for (int i = 0; i < kIters; ++i) {
    const auto& f = cat.indirect()[i % cat.indirect().size()];
    sink += f.mutate(sample[f.semantic], hints).size();
  }
  auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - start)
                .count();
  std::printf("generator throughput: %d mutations in %lld us (%.2f us each,"
              " checksum %zu)\n",
              kIters, static_cast<long long>(us),
              static_cast<double>(us) / kIters, sink);
  return 0;
}
