// Table 4 — file-system environment faults by perturbed attribute.
//
// Paper: of 42 file-system direct faults — 20 file existence (47.6%),
// 6 symbolic link (14.3%), 6 permission (14.3%), 3 ownership (7.1%),
// 6 file invariance (14.3%), 1 working directory (2.4%).
#include <cstdio>

#include "util/strings.hpp"
#include "util/table.hpp"
#include "vulndb/classifier.hpp"

int main() {
  using namespace ep;
  using FA = vulndb::FsAttribute;
  auto c = vulndb::classify_all(vulndb::database());
  int total = c.direct_by_entity[core::DirectEntity::file_system];

  std::printf(
      "=== Table 4: file system environment faults (total %d) ===\n\n",
      total);

  TextTable t({"Categories", "file existence", "symbolic link", "permission",
               "ownership", "file invariance", "working directory"});
  auto n = [&](FA a) { return c.fs_by_attribute[a]; };
  t.add_row({"number", std::to_string(n(FA::existence)),
             std::to_string(n(FA::symbolic_link)),
             std::to_string(n(FA::permission)),
             std::to_string(n(FA::ownership)),
             std::to_string(n(FA::invariance)),
             std::to_string(n(FA::working_directory))});
  t.add_row({"percent", percent(n(FA::existence), total),
             percent(n(FA::symbolic_link), total),
             percent(n(FA::permission), total),
             percent(n(FA::ownership), total),
             percent(n(FA::invariance), total),
             percent(n(FA::working_directory), total)});
  t.add_row({"paper", "20 (47.6%)", "6 (14.3%)", "6 (14.3%)", "3 (7.1%)",
             "6 (14.3%)", "1 (2.4%)"});
  std::printf("%s\n", t.render().c_str());

  bool match = n(FA::existence) == 20 && n(FA::symbolic_link) == 6 &&
               n(FA::permission) == 6 && n(FA::ownership) == 3 &&
               n(FA::invariance) == 6 && n(FA::working_directory) == 1;
  std::printf("reproduction: %s\n", match ? "EXACT" : "MISMATCH");
  return match ? 0 : 1;
}
