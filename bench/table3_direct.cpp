// Table 3 — direct environment faults that cause security violations.
//
// Paper: of 48 direct faults — 42 file system (87.5%), 5 network (10.4%),
// 1 process (2.1%). "A significant number of software vulnerabilities are
// caused by the interaction with the file system environment."
#include <cstdio>

#include "util/strings.hpp"
#include "util/table.hpp"
#include "vulndb/classifier.hpp"

int main() {
  using namespace ep;
  using DE = core::DirectEntity;
  auto c = vulndb::classify_all(vulndb::database());

  std::printf("=== Table 3: direct environment faults (total %d) ===\n\n",
              c.direct);

  TextTable t({"Categories", "File System", "Network", "Process"});
  auto n = [&](DE e) { return c.direct_by_entity[e]; };
  t.add_row({"number", std::to_string(n(DE::file_system)),
             std::to_string(n(DE::network)), std::to_string(n(DE::process))});
  t.add_row({"percent", percent(n(DE::file_system), c.direct),
             percent(n(DE::network), c.direct),
             percent(n(DE::process), c.direct)});
  t.add_row({"paper", "42 (87.5%)", "5 (10.4%)", "1 (2.1%)"});
  std::printf("%s\n", t.render().c_str());

  bool match = n(DE::file_system) == 42 && n(DE::network) == 5 &&
               n(DE::process) == 1;
  std::printf("reproduction: %s\n", match ? "EXACT" : "MISMATCH");
  return match ? 0 : 1;
}
