// Section 4.1 — the turnin case study.
//
// Paper: "we have identified 8 interaction places ... We make 41
// environment perturbation ... Among those perturbations, 9 perturbation
// lead to security violation", with two assumptions judged unreasonable
// and exploited: the Projlist read (turnin -l prints any file the TA
// points it at) and the "../" file-name traversal (a student's .login
// overwrites the TA's).
#include <cstdio>

#include "apps/turnin.hpp"
#include "core/report.hpp"
#include "os/world.hpp"
#include "util/strings.hpp"

namespace {

const ep::os::Site kAttack{"attacker.sh", 1, "attack"};

void replay_exploits() {
  using namespace ep;
  std::printf("--- exploit replay 1: Projlist -> /etc/shadow ---\n");
  {
    auto s = apps::turnin_scenario();
    auto w = s.build();
    os::Pid ta = w->kernel.make_process(200, 200, "/home/ta/submit");
    (void)w->kernel.unlink(kAttack, ta, "Projlist");
    (void)w->kernel.symlink(kAttack, ta, "/etc/shadow", "Projlist");
    (void)w->kernel.spawn("/usr/bin/turnin", {"turnin", "-c", "cs390", "-l"},
                          200, 200, {}, "/home/ta");
    bool leaked = ep::contains(w->kernel.console(), "SECRET-SHADOW-HASH");
    std::printf("  TA links Projlist to /etc/shadow, runs turnin -l\n");
    std::printf("  shadow content printed: %s\n", leaked ? "YES" : "no");
  }
  std::printf("--- exploit replay 2: ../.login overwrite ---\n");
  {
    auto s = apps::turnin_scenario();
    auto w = s.build();
    os::world::put_file(w->kernel, "/home/alice/.login",
                        "# malicious student login\n", 1000, 1000, 0644);
    (void)w->kernel.spawn(
        "/usr/bin/turnin",
        {"turnin", "-c", "cs390", "-p", "proj1", "../.login"}, 1000, 1000,
        {}, "/home/alice");
    bool clobbered = ep::contains(w->kernel.peek("/home/ta/.login").value(),
                                  "malicious");
    std::printf("  student submits \"../.login\"\n");
    std::printf("  TA's .login overwritten: %s\n\n",
                clobbered ? "YES" : "no");
  }
}

}  // namespace

int main() {
  using namespace ep;
  std::printf("=== Section 4.1: turnin case study ===\n\n");

  core::Campaign campaign(apps::turnin_scenario());
  auto r = campaign.execute();
  std::printf("%s\n", core::render_report(r).c_str());

  replay_exploits();

  std::printf("paper:    8 interaction points, 41 perturbations, "
              "9 violations, 2 exploited flaws\n");
  std::printf("measured: %zu interaction points, %d perturbations, "
              "%d violations\n",
              r.points.size(), r.n(), r.violation_count());

  // Hardened comparison (the "assumptions repaired" program).
  core::Campaign hardened(apps::turnin_hardened_scenario());
  auto hr = hardened.execute();
  std::printf("hardened: %d perturbations, %d violation(s) "
              "(root-only config tamper remains)\n",
              hr.n(), hr.violation_count());

  bool match = r.points.size() == 8 && r.n() == 41 &&
               r.violation_count() == 9 && hr.violation_count() == 1;
  std::printf("reproduction: %s\n", match ? "EXACT" : "MISMATCH");
  return match ? 0 : 1;
}
