// Docs-freshness guard: the JSON examples in docs/WIRE_FORMAT.md are
// real serializer output and must stay that way. Each marked example is
// parsed with the real reader and re-serialized; the bytes must match the
// document verbatim, so any wire-format change that forgets to update the
// spec fails CI here.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "core/planner.hpp"
#include "core/protocol.hpp"
#include "core/wire.hpp"
#include "util/strings.hpp"

namespace ep::core {
namespace {

std::string read_doc() {
  std::ifstream in(std::string(EP_SOURCE_DIR) + "/docs/WIRE_FORMAT.md");
  EXPECT_TRUE(in.good()) << "docs/WIRE_FORMAT.md is missing";
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// The fenced block following `<!-- wire-format-example: NAME -->`.
std::string example_block(const std::string& doc, const std::string& name,
                          const std::string& fence = "json") {
  std::string marker = "<!-- wire-format-example: " + name + " -->";
  std::size_t at = doc.find(marker);
  EXPECT_NE(at, std::string::npos) << "marker not found: " << marker;
  if (at == std::string::npos) return {};
  std::string open_fence = "```" + fence + "\n";
  std::size_t open = doc.find(open_fence, at);
  EXPECT_NE(open, std::string::npos)
      << "no ```" << fence << " fence after " << marker;
  if (open == std::string::npos) return {};
  open += open_fence.size();
  std::size_t close = doc.find("```", open);
  EXPECT_NE(close, std::string::npos) << "unterminated fence after "
                                      << marker;
  if (close == std::string::npos) return {};
  return doc.substr(open, close - open);
}

/// Lowercase hex of `bytes`, no separators — the shape `xxd -p` prints.
std::string hex_of(const std::string& bytes) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    out.push_back(kDigits[c >> 4]);
    out.push_back(kDigits[c & 0xF]);
  }
  return out;
}

/// A hex block back to raw bytes, ignoring the newlines `xxd -p` wraps at.
std::string bytes_of_hex(const std::string& block) {
  std::string hex;
  for (char c : block)
    if (c != '\n' && c != '\r') hex.push_back(c);
  EXPECT_EQ(hex.size() % 2, 0u) << "odd hex digit count in the example";
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  std::string bytes;
  for (std::size_t i = 0; i + 1 < hex.size(); i += 2) {
    int hi = nibble(hex[i]), lo = nibble(hex[i + 1]);
    EXPECT_GE(hi, 0) << "non-hex character in the example";
    EXPECT_GE(lo, 0) << "non-hex character in the example";
    bytes.push_back(static_cast<char>((hi << 4) | lo));
  }
  return bytes;
}

TEST(WireFormatDoc, PlanExampleRoundTripsVerbatim) {
  std::string example = example_block(read_doc(), "plan");
  ASSERT_FALSE(example.empty());
  InjectionPlan plan = plan_from_json(example);
  EXPECT_EQ(plan.to_json(), example)
      << "docs/WIRE_FORMAT.md plan example is no longer canonical "
         "serializer output — regenerate it (see the doc's 'Regenerating "
         "the examples' section)";
}

TEST(WireFormatDoc, ShardReportExampleRoundTripsVerbatim) {
  std::string example = example_block(read_doc(), "shard-report");
  ASSERT_FALSE(example.empty());
  ShardReport report = shard_report_from_json(example);
  EXPECT_TRUE(report.complete);
  EXPECT_EQ(report.to_json(), example)
      << "docs/WIRE_FORMAT.md shard-report example is no longer canonical "
         "serializer output — regenerate it (see the doc's 'Regenerating "
         "the examples' section)";
}

TEST(WireFormatDoc, LeaseReportExampleRoundTripsVerbatim) {
  std::string example = example_block(read_doc(), "shard-report-lease");
  ASSERT_FALSE(example.empty());
  ShardReport report = shard_report_from_json(example);
  EXPECT_TRUE(report.leased);
  EXPECT_TRUE(report.complete);
  EXPECT_EQ(report.assigned_ids, report.item_ids);
  EXPECT_EQ(report.to_json(), example)
      << "docs/WIRE_FORMAT.md lease-report example is no longer canonical "
         "serializer output — regenerate it (see the doc's 'Regenerating "
         "the examples' section)";
}

TEST(WireFormatDoc, RedzoneReportExampleRoundTripsVerbatim) {
  // The documented redzone-corruption report is real serializer output,
  // and its one outcome carries the new policy — the doc cannot drift
  // from what the redzone memory oracle actually emits.
  std::string example = example_block(read_doc(), "shard-report-redzone");
  ASSERT_FALSE(example.empty());
  ShardReport report = shard_report_from_json(example);
  EXPECT_TRUE(report.complete);
  ASSERT_EQ(report.outcomes.size(), 1u);
  ASSERT_FALSE(report.outcomes[0].violations.empty());
  EXPECT_EQ(
      std::string(to_string(report.outcomes[0].violations[0].policy)),
      "redzone-corruption");
  EXPECT_EQ(report.to_json(), example)
      << "docs/WIRE_FORMAT.md redzone example is no longer canonical "
         "serializer output — regenerate it (see the doc's 'Regenerating "
         "the examples' section)";
}

TEST(WireFormatDoc, LegacyShardReportExampleReadsAsTheV2Example) {
  // The documented version-1 file must stay parseable, and its canonical
  // re-serialization must be exactly the documented version-2 example —
  // the two blocks describe the same drain in both encodings.
  std::string doc = read_doc();
  std::string v1 = example_block(doc, "shard-report-v1");
  std::string v2 = example_block(doc, "shard-report");
  ASSERT_FALSE(v1.empty());
  ASSERT_FALSE(v2.empty());
  ShardReport report = shard_report_from_json(v1);
  EXPECT_EQ(report.schema_version, 1);
  EXPECT_EQ(report.to_json(), v2)
      << "docs/WIRE_FORMAT.md v1 legacy example no longer re-serializes "
         "into the v2 example";
}

TEST(WireFormatDoc, BinaryPlanExampleIsVerbatimEncoderOutput) {
  // The hex block must be exactly what the binary encoder emits for the
  // documented JSON plan — the two examples describe the same plan in
  // both encodings, like the v1/v2 shard-report pair.
  std::string doc = read_doc();
  std::string json = example_block(doc, "plan");
  std::string hex = example_block(doc, "plan-binary", "text");
  ASSERT_FALSE(json.empty());
  ASSERT_FALSE(hex.empty());
  std::string wire = plan_to_binary(plan_from_json(json));
  std::string doc_bytes = bytes_of_hex(hex);
  EXPECT_EQ(hex_of(doc_bytes), hex_of(wire))
      << "docs/WIRE_FORMAT.md binary plan example is no longer verbatim "
         "encoder output — regenerate it (see the doc's 'Regenerating the "
         "examples' section)";
}

TEST(WireFormatDoc, BinaryPlanExampleDecodesToTheJsonExample) {
  std::string doc = read_doc();
  std::string json = example_block(doc, "plan");
  std::string bytes = bytes_of_hex(example_block(doc, "plan-binary", "text"));
  ASSERT_FALSE(json.empty());
  ASSERT_FALSE(bytes.empty());
  EXPECT_TRUE(looks_like_binary_wire(bytes));
  InjectionPlan plan = plan_from_binary(bytes);
  EXPECT_EQ(plan.to_json(), json)
      << "the documented binary plan no longer decodes into the documented "
         "JSON plan";
}

TEST(WireFormatDoc, WorkerProtocolTranscriptIsCanonical) {
  // Every transcript line must be a real protocol production: it parses
  // with the one shared parser and re-formats to the documented bytes,
  // and the opening HELLO must advertise this build's protocol version.
  std::string block = example_block(read_doc(), "worker-protocol", "text");
  ASSERT_FALSE(block.empty());
  std::size_t lines = 0;
  bool saw_hello = false;
  std::istringstream in(block);
  for (std::string line; std::getline(in, line);) {
    if (line.empty()) continue;
    ASSERT_GE(line.size(), 3u) << "transcript line too short: " << line;
    std::string dir = line.substr(0, 3);
    ASSERT_TRUE(dir == "W: " || dir == "C: ")
        << "transcript line must open with 'W: ' or 'C: ': " << line;
    std::string wire_line = line.substr(3);
    ProtocolMsg msg;
    EXPECT_TRUE(parse_protocol_line(wire_line, &msg))
        << "documented transcript line does not parse: " << wire_line;
    EXPECT_EQ(format_protocol_msg(msg), wire_line)
        << "documented transcript line is not canonical formatter output";
    bool from_worker = msg.type == ProtocolMsg::Type::hello ||
                       msg.type == ProtocolMsg::Type::ping ||
                       msg.type == ProtocolMsg::Type::yield ||
                       msg.type == ProtocolMsg::Type::done ||
                       msg.type == ProtocolMsg::Type::bye;
    EXPECT_EQ(dir, from_worker ? "W: " : "C: ")
        << "transcript line attributed to the wrong side: " << line;
    if (lines == 0) {
      EXPECT_EQ(msg.type, ProtocolMsg::Type::hello)
          << "the transcript must open with the HELLO handshake";
    }
    if (msg.type == ProtocolMsg::Type::hello) {
      saw_hello = true;
      EXPECT_EQ(msg.version, kWorkerProtocolVersion)
          << "the documented HELLO does not carry kWorkerProtocolVersion";
    }
    ++lines;
  }
  EXPECT_TRUE(saw_hello);
  EXPECT_GE(lines, 10u) << "the transcript lost productions";
}

TEST(WireFormatDoc, DocumentsTheCurrentSchemaVersions) {
  std::string doc = read_doc();
  // The prose must pin the versions the code actually writes: plans and
  // shard reports are versioned independently.
  EXPECT_TRUE(contains(doc, "currently `" +
                                std::to_string(kPlanSchemaVersion) +
                                "` (`core::kPlanSchemaVersion`)"))
      << "docs/WIRE_FORMAT.md does not document plan schema_version "
      << kPlanSchemaVersion;
  EXPECT_TRUE(contains(doc, "`" + std::to_string(kShardSchemaVersion) +
                                "` (`core::kShardSchemaVersion`)"))
      << "docs/WIRE_FORMAT.md does not document shard schema_version "
      << kShardSchemaVersion;
  EXPECT_TRUE(contains(doc, "`core::kBinaryWireVersion`, currently `" +
                                std::to_string(kBinaryWireVersion) + "`"))
      << "docs/WIRE_FORMAT.md does not document binary wire version "
      << kBinaryWireVersion;
  EXPECT_TRUE(contains(doc, "`core::kWorkerProtocolVersion`, currently `" +
                                std::to_string(kWorkerProtocolVersion) + "`"))
      << "docs/WIRE_FORMAT.md does not document worker protocol version "
      << kWorkerProtocolVersion;
}

}  // namespace
}  // namespace ep::core
