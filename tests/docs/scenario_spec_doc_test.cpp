// Docs-freshness guard for the scenario-spec format: the complete
// example in docs/SCENARIO_AUTHORING.md is real serializer output for a
// real packaged family member, and both docs pin the schema version the
// code actually writes. Any spec-format change that forgets the docs
// fails CI here, exactly like wire_format_doc_test.cpp for plans.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "apps/scenarios.hpp"
#include "apps/spec_env.hpp"
#include "core/scenario_spec.hpp"
#include "core/wire.hpp"
#include "util/strings.hpp"

namespace ep::core {
namespace {

std::string read_doc(const std::string& rel) {
  std::ifstream in(std::string(EP_SOURCE_DIR) + "/" + rel);
  EXPECT_TRUE(in.good()) << rel << " is missing";
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// The fenced json block following `<!-- scenario-spec-example: NAME -->`.
std::string example_block(const std::string& doc, const std::string& name) {
  std::string marker = "<!-- scenario-spec-example: " + name + " -->";
  std::size_t at = doc.find(marker);
  EXPECT_NE(at, std::string::npos) << "marker not found: " << marker;
  if (at == std::string::npos) return {};
  std::size_t open = doc.find("```json\n", at);
  EXPECT_NE(open, std::string::npos) << "no ```json fence after " << marker;
  if (open == std::string::npos) return {};
  open += std::string("```json\n").size();
  std::size_t close = doc.find("```", open);
  EXPECT_NE(close, std::string::npos) << "unterminated fence after "
                                      << marker;
  if (close == std::string::npos) return {};
  return doc.substr(open, close - open);
}

TEST(ScenarioSpecDoc, ExampleRoundTripsVerbatim) {
  std::string example =
      example_block(read_doc("docs/SCENARIO_AUTHORING.md"), "family-member");
  ASSERT_FALSE(example.empty());
  ScenarioSpec spec = spec_from_json(example);
  EXPECT_EQ(spec_to_json(spec), example)
      << "docs/SCENARIO_AUTHORING.md spec example is no longer canonical "
         "serializer output — regenerate it with `epa_cli scenarios --spec "
      << spec.name << "`";
}

TEST(ScenarioSpecDoc, ExampleIsTheRealFamilyMember) {
  std::string example =
      example_block(read_doc("docs/SCENARIO_AUTHORING.md"), "family-member");
  ASSERT_FALSE(example.empty());
  ScenarioSpec spec = spec_from_json(example);
  auto packaged = apps::resolve_spec(spec.name);
  ASSERT_TRUE(packaged.has_value())
      << "the documented spec's name no longer resolves: " << spec.name;
  EXPECT_EQ(spec_to_json(*packaged), example)
      << "the documented spec drifted from the generated family member";
}

TEST(ScenarioSpecDoc, ExampleCompilesSnapshotSafe) {
  std::string example =
      example_block(read_doc("docs/SCENARIO_AUTHORING.md"), "family-member");
  ASSERT_FALSE(example.empty());
  Scenario scenario =
      compile_spec(spec_from_json(example), apps::spec_environment());
  EXPECT_TRUE(scenario.snapshot_safe);
  EXPECT_FALSE(scenario.name.empty());
}

TEST(ScenarioSpecDoc, DocumentsTheCurrentSchemaVersion) {
  std::string pin = "currently `" + std::to_string(kSpecSchemaVersion) +
                    "` (`core::kSpecSchemaVersion`)";
  EXPECT_TRUE(contains(read_doc("docs/SCENARIO_AUTHORING.md"), pin))
      << "docs/SCENARIO_AUTHORING.md does not document spec schema_version "
      << kSpecSchemaVersion;
  EXPECT_TRUE(contains(read_doc("docs/WIRE_FORMAT.md"), pin))
      << "docs/WIRE_FORMAT.md does not document spec schema_version "
      << kSpecSchemaVersion;
}

}  // namespace
}  // namespace ep::core
