// Docs-freshness guard for docs/SEARCH.md, the same contract
// wire_format_doc_test.cpp holds over WIRE_FORMAT.md: the search-state
// example is real serializer output — parsed with the real reader and
// re-serialized, the bytes must match the document verbatim — and the
// prose version/scoring constants are pinned against the code.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "core/search.hpp"

namespace ep::core {
namespace {

std::string read_doc() {
  std::ifstream in(std::string(EP_SOURCE_DIR) + "/docs/SEARCH.md");
  EXPECT_TRUE(in.good()) << "docs/SEARCH.md is missing";
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// The fenced block following `<!-- search-example: NAME -->`.
std::string example_block(const std::string& doc, const std::string& name) {
  std::string marker = "<!-- search-example: " + name + " -->";
  std::size_t at = doc.find(marker);
  EXPECT_NE(at, std::string::npos) << "marker not found: " << marker;
  if (at == std::string::npos) return {};
  std::string open_fence = "```json\n";
  std::size_t open = doc.find(open_fence, at);
  EXPECT_NE(open, std::string::npos) << "no ```json fence after " << marker;
  if (open == std::string::npos) return {};
  open += open_fence.size();
  std::size_t close = doc.find("```", open);
  EXPECT_NE(close, std::string::npos) << "unterminated fence after "
                                      << marker;
  if (close == std::string::npos) return {};
  return doc.substr(open, close - open);
}

TEST(SearchDoc, SearchStateExampleIsVerbatimSerializerOutput) {
  const std::string example = example_block(read_doc(), "search-state");
  ASSERT_FALSE(example.empty());
  SearchState state = search_state_from_json(example);
  EXPECT_EQ(state.scenario_name, "lpr");
  EXPECT_EQ(state.items.size(), 3u);
  EXPECT_EQ(search_state_to_json(state), example);
}

TEST(SearchDoc, DocumentsTheCurrentSchemaAndScoring) {
  const std::string doc = read_doc();
  // The schema pin: bumping kSearchStateSchemaVersion (or the literal in
  // the serializer) must be a documented act.
  EXPECT_NE(doc.find("`schema_version` (currently `1`)"), std::string::npos);
  // The scoring table rides the doc; hold the terms to the scorer.
  NoveltyScorer scorer;
  EXPECT_EQ(scorer.score("c", "s", "f", 0), 12) << "scoring terms changed "
      "— update the table in docs/SEARCH.md";
  EXPECT_NE(doc.find("| +8   |"), std::string::npos);
  EXPECT_NE(doc.find("| +2   |"), std::string::npos);
}

}  // namespace
}  // namespace ep::core
