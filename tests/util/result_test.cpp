#include "util/result.hpp"

#include <gtest/gtest.h>

namespace ep {
namespace {

TEST(SysResult, HoldsValue) {
  SysResult<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.error(), Err::ok);
}

TEST(SysResult, HoldsError) {
  SysResult<int> r(Err::acces);
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(static_cast<bool>(r));
  EXPECT_EQ(r.error(), Err::acces);
}

TEST(SysResult, ValueOnErrorThrows) {
  SysResult<int> r(Err::noent);
  EXPECT_THROW((void)r.value(), BadResultAccess);
}

TEST(SysResult, ValueOr) {
  SysResult<int> ok(7);
  SysResult<int> bad(Err::io);
  EXPECT_EQ(ok.value_or(9), 7);
  EXPECT_EQ(bad.value_or(9), 9);
}

TEST(SysResult, MoveOutValue) {
  SysResult<std::string> r(std::string(1000, 'x'));
  std::string s = std::move(r).value();
  EXPECT_EQ(s.size(), 1000u);
}

TEST(SysResult, StatusHelpers) {
  SysStatus ok = ok_status();
  EXPECT_TRUE(ok.ok());
  SysStatus bad = Err::perm;
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error(), Err::perm);
}

TEST(ErrNames, CoverAllCodes) {
  // Every code must have a distinct errno-style name and a message.
  for (int i = 0; i <= static_cast<int>(Err::notempty); ++i) {
    auto e = static_cast<Err>(i);
    EXPECT_FALSE(err_name(e).empty());
    EXPECT_NE(err_name(e), "E?");
    EXPECT_FALSE(err_message(e).empty());
  }
}

TEST(ErrNames, Spot) {
  EXPECT_EQ(err_name(Err::acces), "EACCES");
  EXPECT_EQ(err_name(Err::noent), "ENOENT");
  EXPECT_EQ(err_message(Err::loop), "too many levels of symbolic links");
}

}  // namespace
}  // namespace ep
