#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace ep {
namespace {

TEST(Split, KeepsEmptyFields) {
  auto v = split("a::b", ':');
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], "a");
  EXPECT_EQ(v[1], "");
  EXPECT_EQ(v[2], "b");
}

TEST(Split, EmptyStringYieldsOneEmptyField) {
  auto v = split("", ':');
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], "");
}

TEST(Split, TrailingSeparator) {
  auto v = split("a:b:", ':');
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[2], "");
}

TEST(SplitNonempty, DropsEmpties) {
  auto v = split_nonempty("/a//b/", '/');
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], "a");
  EXPECT_EQ(v[1], "b");
}

TEST(SplitNonempty, AllSeparators) {
  EXPECT_TRUE(split_nonempty("///", '/').empty());
}

TEST(Join, RoundTripsWithSplit) {
  std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(join(parts, ":"), "x:y:z");
  EXPECT_EQ(split("x:y:z", ':'), parts);
}

TEST(Join, EmptyVector) { EXPECT_EQ(join({}, ":"), ""); }

TEST(StartsEndsWith, Basics) {
  EXPECT_TRUE(starts_with("../x", "../"));
  EXPECT_FALSE(starts_with("..", "../"));
  EXPECT_TRUE(ends_with("file.exe", ".exe"));
  EXPECT_FALSE(ends_with("exe", ".exe"));
}

TEST(Contains, Basics) {
  EXPECT_TRUE(contains("a;b", ";"));
  EXPECT_FALSE(contains("ab", ";"));
  EXPECT_TRUE(contains("abc", ""));
}

TEST(ToLower, MixedCase) { EXPECT_EQ(to_lower("AbC-01"), "abc-01"); }

TEST(ReplaceAll, Multiple) {
  EXPECT_EQ(replace_all("a..b..c", "..", "/"), "a/b/c");
}

TEST(ReplaceAll, EmptyNeedleIsIdentity) {
  EXPECT_EQ(replace_all("abc", "", "x"), "abc");
}

TEST(ReplaceAll, ReplacementContainsNeedle) {
  // Must not loop forever or re-replace.
  EXPECT_EQ(replace_all("aa", "a", "aa"), "aaaa");
}

TEST(Trim, WhitespaceBothEnds) {
  EXPECT_EQ(trim("  x y\t\n"), "x y");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Percent, Formatting) {
  EXPECT_EQ(percent(81, 142), "57.0%");
  EXPECT_EQ(percent(1, 3, 0), "33%");
  EXPECT_EQ(percent(1, 0), "n/a");
}

TEST(Repeat, Basics) {
  EXPECT_EQ(repeat("ab", 3), "ababab");
  EXPECT_EQ(repeat("ab", 0), "");
}

}  // namespace
}  // namespace ep
