// The wire-format parser: strictness and error positions are part of the
// contract (docs/WIRE_FORMAT.md) — a malformed shard file must fail with
// a message naming what broke, never parse into something half-valid.
#include "util/json.hpp"

#include <gtest/gtest.h>

#include "util/strings.hpp"

namespace ep {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(json_parse("null").is_null());
  EXPECT_TRUE(json_parse("true").as_bool());
  EXPECT_FALSE(json_parse("false").as_bool());
  EXPECT_DOUBLE_EQ(json_parse("42").as_number(), 42.0);
  EXPECT_EQ(json_parse("42").as_int(), 42);
  EXPECT_EQ(json_parse("-7").as_int(), -7);
  EXPECT_DOUBLE_EQ(json_parse("2.5e2").as_number(), 250.0);
  EXPECT_EQ(json_parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesContainersInDocumentOrder) {
  JsonValue v = json_parse(R"({"b": [1, 2, {"x": true}], "a": null})");
  ASSERT_TRUE(v.is_object());
  ASSERT_EQ(v.members().size(), 2u);
  EXPECT_EQ(v.members()[0].first, "b");  // document order, not sorted
  EXPECT_EQ(v.members()[1].first, "a");
  const auto& arr = v.at("b").items();
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_EQ(arr[1].as_int(), 2);
  EXPECT_TRUE(arr[2].at("x").as_bool());
  EXPECT_TRUE(v.at("a").is_null());
  EXPECT_EQ(v.find("zzz"), nullptr);
}

TEST(Json, UnescapesStrings) {
  EXPECT_EQ(json_parse(R"("a\"b\\c\/d")").as_string(), "a\"b\\c/d");
  EXPECT_EQ(json_parse(R"("\n\t\r\b\f")").as_string(), "\n\t\r\b\f");
  EXPECT_EQ(json_parse(R"("\u0041")").as_string(), "A");
  EXPECT_EQ(json_parse(R"("\u00e9")").as_string(), "\xc3\xa9");       // é
  EXPECT_EQ(json_parse(R"("\u20ac")").as_string(), "\xe2\x82\xac");   // €
  EXPECT_EQ(json_parse(R"("\ud83d\ude00")").as_string(),
            "\xf0\x9f\x98\x80");  // surrogate pair (emoji)
}

TEST(Json, RoundTripsJsonQuoteOutput) {
  // The serializers emit through json_quote; whatever it produces, the
  // parser must read back verbatim.
  std::string nasty = "path \"x\"\\with\nnewline\ttab\x01zero";
  EXPECT_EQ(json_parse(json_quote(nasty)).as_string(), nasty);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(json_parse(""), JsonError);
  EXPECT_THROW(json_parse("{"), JsonError);
  EXPECT_THROW(json_parse("[1, 2"), JsonError);
  EXPECT_THROW(json_parse("{\"a\": }"), JsonError);
  EXPECT_THROW(json_parse("\"unterminated"), JsonError);
  EXPECT_THROW(json_parse("\"bad \\x escape\""), JsonError);
  EXPECT_THROW(json_parse("tru"), JsonError);
  EXPECT_THROW(json_parse("01"), JsonError);  // leading zero -> garbage
  EXPECT_THROW(json_parse("1 2"), JsonError);
  EXPECT_THROW(json_parse("{\"a\": 1} extra"), JsonError);
  EXPECT_THROW(json_parse(R"("\ud800 unpaired")"), JsonError);
}

TEST(Json, RejectsBrokenSurrogatePairs) {
  // The three half-pair shapes, each with its own diagnostic and a
  // line/column position (the ISSUE's surrogate-decoding audit).
  auto error_of = [](const char* text) -> JsonError {
    try {
      json_parse(text);
    } catch (const JsonError& e) {
      return e;
    }
    ADD_FAILURE() << "expected JsonError for " << text;
    return JsonError("none");
  };

  // 1. An unpaired high surrogate at end-of-string.
  JsonError e = error_of(R"("\uD834")");
  EXPECT_TRUE(contains(e.what(), "unpaired high surrogate"));
  EXPECT_EQ(e.line(), 1u);
  EXPECT_EQ(e.column(), 8u);  // just past the six escape characters

  // ... including one truncated at end of input.
  EXPECT_TRUE(contains(error_of("\"\\uD834").what(),
                       "unpaired high surrogate"));

  // 2. A high surrogate followed by a non-\u escape or by literal text.
  EXPECT_TRUE(contains(error_of(R"("\uD834\n")").what(),
                       "unpaired high surrogate"));
  EXPECT_TRUE(contains(error_of(R"("\uD834abc")").what(),
                       "unpaired high surrogate"));
  // An escaped backslash is NOT the \u of a low half, even though the
  // bytes start with a backslash and a 'u' follows.
  EXPECT_TRUE(contains(error_of(R"("\uD834\\u0041")").what(),
                       "unpaired high surrogate"));

  // 3. A lone low surrogate.
  e = error_of("{\n  \"k\": \"\\uDC00\"\n}");
  EXPECT_TRUE(contains(e.what(), "lone low surrogate"));
  EXPECT_EQ(e.line(), 2u);

  // A high surrogate paired with another high one is still wrong.
  EXPECT_TRUE(contains(error_of(R"("\uD834\uD834")").what(),
                       "invalid low surrogate"));

  // Boundary sanity: the planes around the surrogate range stay legal.
  EXPECT_EQ(json_parse(R"("\uD7FF")").as_string(), "\xed\x9f\xbf");
  EXPECT_EQ(json_parse(R"("\uE000")").as_string(), "\xee\x80\x80");
}

TEST(Json, RejectsDuplicateKeys) {
  try {
    json_parse(R"({"id": 1, "id": 2})");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_TRUE(contains(e.what(), "duplicate object key 'id'"));
  }
}

TEST(Json, ErrorsCarryLineAndColumn) {
  try {
    json_parse("{\n  \"a\": 1,\n  \"b\": oops\n}");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_EQ(e.line(), 3u);
    EXPECT_TRUE(contains(e.what(), "line 3"));
  }
}

TEST(Json, RejectsDeepNesting) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_THROW(json_parse(deep), JsonError);
}

TEST(Json, TypedAccessorsNameTheMismatch) {
  try {
    (void)json_parse("[1]").at("key");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_TRUE(contains(e.what(), "key"));
    EXPECT_TRUE(contains(e.what(), "array"));
  }
  try {
    (void)json_parse("{\"n\": 1.5}").at("n").as_int();
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_TRUE(contains(e.what(), "integer"));
  }
}

TEST(Json, AsIntRejectsValuesBeyondLongLong) {
  // The double -> long long cast would be UB out of range; wire files
  // are untrusted, so this must be a clean error.
  EXPECT_THROW((void)json_parse("1e19").as_int(), JsonError);
  EXPECT_THROW((void)json_parse("-1e19").as_int(), JsonError);
  EXPECT_EQ(json_parse("9007199254740992").as_int(), 9007199254740992LL);
}

}  // namespace
}  // namespace ep
