#include "util/table.hpp"

#include <gtest/gtest.h>

#include "util/strings.hpp"

namespace ep {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t({"name", "count"});
  t.add_row({"alpha", "1"});
  t.add_row({"bb", "22"});
  std::string out = t.render();
  EXPECT_TRUE(contains(out, "name"));
  EXPECT_TRUE(contains(out, "alpha"));
  EXPECT_TRUE(contains(out, "22"));
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, PadsShortRows) {
  TextTable t({"a", "b", "c"});
  t.add_row({"only"});
  std::string out = t.render();
  // Renders without crashing and keeps column rules aligned.
  auto lines = split_nonempty(out, '\n');
  ASSERT_GE(lines.size(), 4u);
  for (const auto& l : lines) EXPECT_EQ(l.size(), lines[0].size());
}

TEST(TextTable, ColumnWidthTracksWidestCell) {
  TextTable t({"x"});
  t.add_row({"wiiiiiiide"});
  std::string out = t.render();
  EXPECT_TRUE(contains(out, "wiiiiiiide"));
}

TEST(TextTable, EmptyTableStillRenders) {
  TextTable t({"h1", "h2"});
  std::string out = t.render();
  EXPECT_TRUE(contains(out, "h1"));
  EXPECT_EQ(t.rows(), 0u);
}

}  // namespace
}  // namespace ep
