#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace ep {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowRespectsBound) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(13), 13u);
}

TEST(Rng, BetweenInclusive) {
  Rng r(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) {
    auto v = r.between(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);  // all three values reached
}

TEST(Rng, UnitInHalfOpenInterval) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    double u = r.unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng r(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, BytesLengthAndNonZero) {
  Rng r(13);
  auto s = r.bytes(256);
  EXPECT_EQ(s.size(), 256u);
  for (char c : s) EXPECT_NE(c, '\0');  // bytes() avoids NUL by contract
}

TEST(Rng, PrintableIsPrintable) {
  Rng r(17);
  for (char c : r.printable(512)) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20);
    EXPECT_LE(static_cast<unsigned char>(c), 0x7e);
  }
}

TEST(Rng, ForkIsDeterministicAndIndependent) {
  Rng a(42), b(42);
  Rng fa = a.fork(), fb = b.fork();
  // Same parent seed -> same child stream.
  for (int i = 0; i < 100; ++i) EXPECT_EQ(fa.next_u64(), fb.next_u64());
  // Child diverges from the parent's continuation.
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == fa.next_u64()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, ForkAdvancesParent) {
  Rng forked(42), plain(42);
  (void)forked.fork();
  // Forking consumes one draw, so the parent stream moves on — two
  // sub-tasks forked in sequence get distinct streams.
  EXPECT_NE(forked.next_u64(), plain.next_u64());
}

TEST(Rng, PickCoversVector) {
  Rng r(19);
  std::vector<int> v{1, 2, 3};
  std::set<int> seen;
  for (int i = 0; i < 200; ++i) seen.insert(r.pick(v));
  EXPECT_EQ(seen.size(), 3u);
}

}  // namespace
}  // namespace ep
