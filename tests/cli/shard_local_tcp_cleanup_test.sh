#!/bin/sh
# The -D tcp flavor of the orphaned-worker regression: socket-holding
# workers are background children like the pipe workers, so a coordinator
# that dies mid-campaign must not leave them running, and the published
# port file is per-run scratch that must be unlinked on any exit that is
# not a campaign result.
#
# Driven with a fake epa_cli: `orchestrate` publishes a port file, lingers
# long enough for the workers to be started, then fails; `worker` records
# its pid, sleeps far longer than the test, and drops a sentinel file if
# it is ever allowed to finish.
#
# Usage: shard_local_tcp_cleanup_test.sh /path/to/shard_local.sh
set -eu

shard_local=$1
[ -x "$shard_local" ] || [ -r "$shard_local" ] || {
  echo "no shard_local.sh at '$shard_local'" >&2
  exit 2
}

tmp=$(mktemp -d "${TMPDIR:-/tmp}/epa-tcp-cleanup-test.XXXXXX")
trap 'rm -rf "$tmp"' EXIT

fake="$tmp/fake_epa_cli"
cat > "$fake" <<'EOF'
#!/bin/sh
case "$1" in
  orchestrate)
    portfile=
    prev=
    for a in "$@"; do
      [ "$prev" = --port-file ] && portfile=$a
      prev=$a
    done
    echo 12345 > "$portfile"
    sleep 1
    exit 1 ;;  # the coordinator dies mid-campaign
  worker)
    echo $$ > "$FAKE_DIR/worker.$$.pid"
    sleep 120
    echo late > "$FAKE_DIR/worker.$$.late"  # only if nobody killed us
    exit 0 ;;
esac
exit 0
EOF
chmod +x "$fake"

rc=0
FAKE_DIR="$tmp/out" bash "$shard_local" -n 2 -b "$fake" -o "$tmp/out" \
  -D tcp toy >/dev/null 2>&1 || rc=$?
[ "$rc" -eq 1 ] || { echo "expected exit 1 from the dead coordinator, got $rc"; exit 1; }

# The EXIT trap must have killed and reaped the socket workers: their
# recorded pids are gone and the sentinel never appears.
for f in "$tmp/out"/worker.*.pid; do
  [ -e "$f" ] || continue
  pid=$(cat "$f")
  if kill -0 "$pid" 2>/dev/null; then
    echo "orphaned tcp worker $pid still running after shard_local failed"
    exit 1
  fi
done
if ls "$tmp/out"/worker.*.late >/dev/null 2>&1; then
  echo "an orphaned tcp worker ran to completion after shard_local failed"
  exit 1
fi
if ls "$tmp/out"/*.port >/dev/null 2>&1; then
  echo "the port file survived a failed run"
  exit 1
fi
echo TCP_CLEANUP_OK
