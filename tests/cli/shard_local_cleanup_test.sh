#!/bin/sh
# Regression for the orphaned-worker bug: shard_local.sh used to exit 1 on
# the first failed worker without killing or reaping the remaining
# background run-shard pids, which kept writing into the output directory
# after the script had already reported failure. The EXIT trap must kill
# and reap them.
#
# Driven with a fake epa_cli: `plan` succeeds instantly, shard 1 fails at
# once, every other shard records its pid, sleeps far longer than the
# test, and drops a sentinel file if it is ever allowed to finish.
#
# Usage: shard_local_cleanup_test.sh /path/to/shard_local.sh
set -eu

shard_local=$1
[ -x "$shard_local" ] || [ -r "$shard_local" ] || {
  echo "no shard_local.sh at '$shard_local'" >&2
  exit 2
}

tmp=$(mktemp -d "${TMPDIR:-/tmp}/epa-cleanup-test.XXXXXX")
trap 'rm -rf "$tmp"' EXIT

fake="$tmp/fake_epa_cli"
cat > "$fake" <<'EOF'
#!/bin/sh
case "$1" in
  plan)
    # plan SCENARIO --out FILE
    : > "$4"
    exit 0 ;;
  run-shard)
    shard=
    out=
    prev=
    for a in "$@"; do
      case "$prev" in
        --shard) shard=$a ;;
        --out) out=$a ;;
      esac
      prev=$a
    done
    case "$shard" in
      1/*) exit 1 ;;  # the failing worker
    esac
    echo $$ > "$out.pid"
    sleep 120
    echo late > "$out.late"  # only reachable if nobody killed us
    exit 0 ;;
esac
exit 0
EOF
chmod +x "$fake"

rc=0
bash "$shard_local" -n 3 -b "$fake" -o "$tmp/out" toy >/dev/null 2>&1 || rc=$?
[ "$rc" -eq 1 ] || { echo "expected exit 1 from the failed worker, got $rc"; exit 1; }

# The trap must have killed and reaped the surviving workers: their
# recorded pids are gone and the sentinel never appears.
for f in "$tmp/out"/*.pid; do
  [ -e "$f" ] || continue
  pid=$(cat "$f")
  if kill -0 "$pid" 2>/dev/null; then
    echo "orphaned worker $pid still running after shard_local failed"
    exit 1
  fi
done
if ls "$tmp/out"/*.late >/dev/null 2>&1; then
  echo "an orphaned worker ran to completion after shard_local failed"
  exit 1
fi
echo CLEANUP_OK
