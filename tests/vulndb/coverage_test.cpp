// Vulnerability-coverage adequacy (vulndb/coverage.hpp): the 20-class
// universe is closed and sorted, fault names map through the standard
// catalog to their cause/attribute class, and the report over campaign
// results counts only violated outcomes.
#include "vulndb/coverage.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "apps/scenarios.hpp"
#include "core/campaign.hpp"
#include "core/scheduler.hpp"

namespace ep::vulndb {
namespace {

TEST(VulnCoverage, UniverseIsTwentySortedUniqueClasses) {
  std::vector<std::string> u = coverage_universe();
  EXPECT_EQ(u.size(), 20u);
  EXPECT_TRUE(std::is_sorted(u.begin(), u.end()));
  EXPECT_EQ(std::set<std::string>(u.begin(), u.end()).size(), u.size());
  // Both halves of the EAI taxonomy are represented.
  int causes = 0, attributes = 0;
  for (const std::string& label : u) {
    if (label.rfind("cause: ", 0) == 0) ++causes;
    if (label.rfind("attribute: ", 0) == 0) ++attributes;
  }
  EXPECT_EQ(causes, 5);
  EXPECT_EQ(attributes, 15);
}

TEST(VulnCoverage, ClassLookupGoesThroughTheStandardCatalog) {
  EXPECT_EQ(coverage_class(core::FaultKind::indirect, "cmd-insert-newline"),
            "cause: user input");
  EXPECT_EQ(coverage_class(core::FaultKind::direct, "file-existence"),
            "attribute: file existence");
  // Unknown names map to nothing rather than inventing a class.
  EXPECT_EQ(coverage_class(core::FaultKind::indirect, "no-such-fault"), "");
  EXPECT_EQ(coverage_class(core::FaultKind::direct, "no-such-fault"), "");
  // Kind matters: a direct name looked up as indirect misses.
  EXPECT_EQ(coverage_class(core::FaultKind::indirect, "file-existence"), "");
}

TEST(VulnCoverage, OnlyViolatedOutcomesFireClasses) {
  core::CampaignResult r;
  core::InjectionOutcome fired_but_tolerated;
  fired_but_tolerated.kind = core::FaultKind::direct;
  fired_but_tolerated.fault_name = "file-existence";
  fired_but_tolerated.fired = true;
  fired_but_tolerated.violated = false;
  r.injections.push_back(fired_but_tolerated);

  core::InjectionOutcome violated = fired_but_tolerated;
  violated.fault_name = "file-ownership";
  violated.violated = true;
  r.injections.push_back(violated);

  VulnCoverage cov = vulnerability_coverage({r});
  ASSERT_EQ(cov.fired.size(), 1u);
  EXPECT_EQ(cov.fired[0], "attribute: file ownership");
  EXPECT_EQ(cov.total(), 20);
  EXPECT_DOUBLE_EQ(cov.fraction(), 1.0 / 20.0);
  EXPECT_EQ(cov.silent.size(), 19u);
  EXPECT_TRUE(std::is_sorted(cov.silent.begin(), cov.silent.end()));
}

TEST(VulnCoverage, EmptyResultsFireNothing) {
  VulnCoverage cov = vulnerability_coverage({});
  EXPECT_TRUE(cov.fired.empty());
  EXPECT_EQ(cov.silent.size(), 20u);
  EXPECT_DOUBLE_EQ(cov.fraction(), 0.0);
}

TEST(VulnCoverage, PackagedSweepFiresARealSubset) {
  core::MultiCampaign suite;
  for (auto& s : apps::all_scenarios()) suite.add(std::move(s));
  core::SweepOptions opts;
  opts.campaign.seed = 7;
  core::SweepResult sweep = suite.run(opts);
  VulnCoverage cov = vulnerability_coverage(sweep.results);
  // The packaged suite is known-vulnerable by construction: at least a
  // handful of classes fire, and never more than the universe.
  EXPECT_GE(cov.fired.size(), 3u);
  EXPECT_LE(cov.fired.size(), 20u);
  for (const std::string& label : cov.fired)
    EXPECT_TRUE(label.rfind("cause: ", 0) == 0 ||
                label.rfind("attribute: ", 0) == 0)
        << label;
}

}  // namespace
}  // namespace ep::vulndb
