#include "vulndb/classifier.hpp"

#include <gtest/gtest.h>

namespace ep::vulndb {
namespace {

Record code_record() {
  Record r;
  r.cause = CauseKind::code;
  return r;
}

TEST(ClassifyRecord, ExclusionsFirst) {
  Record r;
  r.cause = CauseKind::insufficient_info;
  EXPECT_EQ(classify_record(r), EaiClass::excluded_insufficient);
  r.cause = CauseKind::design;
  EXPECT_EQ(classify_record(r), EaiClass::excluded_design);
  r.cause = CauseKind::configuration;
  EXPECT_EQ(classify_record(r), EaiClass::excluded_configuration);
}

TEST(ClassifyRecord, InputOriginMeansIndirect) {
  Record r = code_record();
  r.input_origin = core::IndirectCategory::user_input;
  EXPECT_EQ(classify_record(r), EaiClass::indirect);
}

TEST(ClassifyRecord, EntityMeansDirect) {
  Record r = code_record();
  r.entity = core::DirectEntity::network;
  EXPECT_EQ(classify_record(r), EaiClass::direct);
}

TEST(ClassifyRecord, NeitherMeansOther) {
  EXPECT_EQ(classify_record(code_record()), EaiClass::other);
}

TEST(ClassifyAll, PartitionIsComplete) {
  auto c = classify_all(database());
  EXPECT_EQ(c.total, 195);
  EXPECT_EQ(c.insufficient + c.design + c.configuration + c.classified,
            c.total);
  EXPECT_EQ(c.indirect + c.direct + c.other, c.classified);
}

TEST(ClassifyAll, Table2SumsToIndirectTotal) {
  auto c = classify_all(database());
  int sum = 0;
  for (const auto& [cat, n] : c.indirect_by_category) sum += n;
  EXPECT_EQ(sum, c.indirect);
}

TEST(ClassifyAll, Table3SumsToDirectTotal) {
  auto c = classify_all(database());
  int sum = 0;
  for (const auto& [e, n] : c.direct_by_entity) sum += n;
  EXPECT_EQ(sum, c.direct);
}

TEST(ClassifyAll, Table4SumsToFileSystemCount) {
  auto c = classify_all(database());
  int sum = 0;
  for (const auto& [a, n] : c.fs_by_attribute) sum += n;
  EXPECT_EQ(sum, c.direct_by_entity[core::DirectEntity::file_system]);
}

TEST(ClassifyAll, PaperPercentagesHold) {
  // Table 1 percentages as printed: 57% / 34% / 9%.
  auto c = classify_all(database());
  EXPECT_NEAR(100.0 * c.indirect / c.classified, 57.0, 0.5);
  EXPECT_NEAR(100.0 * c.direct / c.classified, 33.8, 0.5);
  EXPECT_NEAR(100.0 * c.other / c.classified, 9.2, 0.5);
  // Table 3: file system dominates direct faults (87.5%).
  EXPECT_NEAR(100.0 * c.direct_by_entity[core::DirectEntity::file_system] /
                  c.direct,
              87.5, 0.1);
}

TEST(ClassifyAll, EmptyDatabase) {
  auto c = classify_all({});
  EXPECT_EQ(c.total, 0);
  EXPECT_EQ(c.classified, 0);
}

}  // namespace
}  // namespace ep::vulndb
