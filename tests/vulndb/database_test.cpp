// Database integrity checks: 195 records, unique ids/names, well-formed
// feature combinations.
#include <gtest/gtest.h>

#include <set>

#include "vulndb/record.hpp"

namespace ep::vulndb {
namespace {

TEST(Database, Has195Records) { EXPECT_EQ(database().size(), 195u); }

TEST(Database, IdsAreUniqueAndDense) {
  std::set<int> ids;
  for (const auto& r : database()) EXPECT_TRUE(ids.insert(r.id).second);
  EXPECT_EQ(*ids.begin(), 1);
  EXPECT_EQ(*ids.rbegin(), 195);
}

TEST(Database, NamesAreUniqueNonEmpty) {
  std::set<std::string> names;
  for (const auto& r : database()) {
    EXPECT_FALSE(r.name.empty());
    EXPECT_TRUE(names.insert(r.name).second) << "duplicate " << r.name;
  }
}

TEST(Database, EveryRecordHasDescriptionAndOs) {
  for (const auto& r : database()) {
    EXPECT_FALSE(r.description.empty()) << r.name;
    EXPECT_FALSE(r.os.empty()) << r.name;
  }
}

TEST(Database, FeatureCombinationsWellFormed) {
  for (const auto& r : database()) {
    // A record is at most one of: indirect (input_origin), direct (entity).
    EXPECT_FALSE(r.input_origin && r.entity) << r.name;
    // fs_attribute only meaningful for file-system entities.
    if (r.fs_attribute) {
      ASSERT_TRUE(r.entity.has_value()) << r.name;
      EXPECT_EQ(*r.entity, core::DirectEntity::file_system) << r.name;
    }
    // Every file-system direct record carries its Table 4 attribute.
    if (r.entity && *r.entity == core::DirectEntity::file_system) {
      EXPECT_TRUE(r.fs_attribute.has_value()) << r.name;
    }
    // Excluded causes carry no EAI features.
    if (r.cause != CauseKind::code) {
      EXPECT_FALSE(r.input_origin) << r.name;
      EXPECT_FALSE(r.entity) << r.name;
    }
  }
}

TEST(Database, ContainsThePapersOwnCaseStudies) {
  bool turnin = false, lpr = false;
  for (const auto& r : database()) {
    if (r.name == "turnin-dotdot-filename") turnin = true;
    if (r.name == "lpr-spool-preexisting") lpr = true;
  }
  EXPECT_TRUE(turnin);
  EXPECT_TRUE(lpr);
}

TEST(Database, EnumPrinters) {
  EXPECT_EQ(to_string(CauseKind::design), "design");
  EXPECT_EQ(to_string(FsAttribute::symbolic_link), "symbolic link");
  EXPECT_EQ(to_string(FsAttribute::working_directory), "working directory");
}

}  // namespace
}  // namespace ep::vulndb
