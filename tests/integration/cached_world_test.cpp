// The ISSUE's determinism criterion for the world cache: for every
// packaged scenario, a campaign drained from cloned prototype worlds must
// reproduce the rebuild-per-run campaign exactly — same injections, same
// order, same rho — at any worker count. World caching is an
// amortization, never a semantic.
#include <gtest/gtest.h>

#include "apps/scenarios.hpp"
#include "core/campaign_fixtures.hpp"
#include "core/scheduler.hpp"

namespace ep {
namespace {

using core::Campaign;
using core::CampaignOptions;
using core::CampaignResult;
using core::expect_identical;

std::vector<std::string> scenario_names() {
  std::vector<std::string> names;
  for (const auto& s : apps::all_scenarios()) names.push_back(s.name);
  return names;
}

core::Scenario scenario_by_name(const std::string& name) {
  for (auto& s : apps::all_scenarios())
    if (s.name == name) return s;
  throw std::logic_error("no scenario " + name);
}

class EveryScenarioCached : public ::testing::TestWithParam<std::string> {};

TEST_P(EveryScenarioCached, ClonedRunsReproduceFreshBuildsAtAnyJobCount) {
  core::Scenario probe = scenario_by_name(GetParam());
  ASSERT_TRUE(probe.snapshot_safe)
      << "every packaged scenario is expected to opt into world caching";

  CampaignOptions uncached;
  uncached.seed = 7;
  uncached.use_world_cache = false;
  CampaignResult reference =
      Campaign(scenario_by_name(GetParam())).execute(uncached);

  for (int jobs : {1, 4}) {
    CampaignOptions cached;
    cached.seed = 7;
    cached.jobs = jobs;
    cached.use_world_cache = true;
    CampaignResult r = Campaign(scenario_by_name(GetParam())).execute(cached);
    expect_identical(reference, r);
  }
}

INSTANTIATE_TEST_SUITE_P(Suite, EveryScenarioCached,
                         ::testing::ValuesIn(scenario_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

TEST(CachedSweep, SchedulerHonorsTheEscapeHatch) {
  core::MultiCampaign cached_suite;
  core::MultiCampaign uncached_suite;
  for (auto& s : apps::all_scenarios()) cached_suite.add(std::move(s));
  for (auto& s : apps::all_scenarios()) uncached_suite.add(std::move(s));

  core::SweepOptions cached;
  cached.jobs = 4;
  core::SweepOptions uncached;
  uncached.jobs = 4;
  uncached.campaign.use_world_cache = false;

  auto a = cached_suite.run(cached);
  auto b = uncached_suite.run(uncached);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t i = 0; i < a.results.size(); ++i)
    expect_identical(a.results[i], b.results[i]);
}

TEST(CachedPlan, SnapshotFollowsScenarioDeclarationAndOptions) {
  core::Scenario s = core::toy_scenario();
  core::CampaignOptions opts;
  EXPECT_NE(core::Planner(s).plan(opts).snapshot, nullptr);

  opts.use_world_cache = false;
  EXPECT_EQ(core::Planner(s).plan(opts).snapshot, nullptr);

  opts.use_world_cache = true;
  s.snapshot_safe = false;  // scenario never opted in: no snapshot planned
  EXPECT_EQ(core::Planner(s).plan(opts).snapshot, nullptr);
}

}  // namespace
}  // namespace ep
