// The generated-family acceptance criteria: every family member is
// snapshot-safe (cloned prototype runs reproduce rebuild-per-run runs at
// any job count), and a whole generated family drained through the wire
// as plan -> run-shard -> merge is byte-identical to the single-process
// parallel run. Families must earn the same determinism contract the
// packaged 21 already hold.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apps/families.hpp"
#include "apps/scenarios.hpp"
#include "core/campaign_fixtures.hpp"
#include "core/report.hpp"
#include "core/scheduler.hpp"
#include "core/wire.hpp"

namespace ep::core {
namespace {

TEST(FamilyDeterminism, EveryMemberCachedRunsReproduceFreshBuilds) {
  for (const auto& family : apps::scenario_families()) {
    for (auto& scenario : apps::family_scenarios(family)) {
      SCOPED_TRACE(scenario.name);
      ASSERT_TRUE(scenario.snapshot_safe)
          << "every compiled spec must opt into world caching";

      CampaignOptions uncached;
      uncached.seed = 7;
      uncached.use_world_cache = false;
      CampaignResult reference =
          Campaign(*apps::resolve_scenario(scenario.name)).execute(uncached);

      for (int jobs : {1, 4}) {
        CampaignOptions cached;
        cached.seed = 7;
        cached.jobs = jobs;
        cached.use_world_cache = true;
        CampaignResult r =
            Campaign(*apps::resolve_scenario(scenario.name)).execute(cached);
        expect_identical(reference, r);
      }
    }
  }
}

TEST(FamilyDeterminism, ShardedFamilyMatchesSingleProcess) {
  const ScenarioFamily* family = apps::find_family("fam-relay");
  ASSERT_NE(family, nullptr);
  for (auto& scenario : apps::family_scenarios(*family)) {
    SCOPED_TRACE(scenario.name);
    Planner planner(scenario);
    InjectionPlan plan = planner.plan();
    Executor ex(scenario);
    ExecutorOptions opts;
    opts.jobs = 4;
    CampaignResult single = ex.execute(plan, opts);
    std::string single_report = render_report(single);
    std::string single_json = render_json(single);

    InjectionPlan wire_plan = plan_from_json(plan.to_json());
    refreeze_snapshot(wire_plan, scenario);

    for (std::size_t n : {2u, 5u}) {
      SCOPED_TRACE("shards=" + std::to_string(n));
      std::vector<ShardReport> shards;
      for (std::size_t k = 0; k < n; ++k) {
        ExecutorOptions shard_opts;
        shard_opts.jobs = 2;
        shards.push_back(shard_report_from_json(
            run_shard(ex, wire_plan, k, n, shard_opts).to_json()));
      }
      CampaignResult merged = merge_shard_reports(wire_plan, shards);
      expect_identical(single, merged);
      EXPECT_EQ(single_report, render_report(merged));
      EXPECT_EQ(single_json, render_json(merged));
    }
  }
}

TEST(FamilyDeterminism, FamilySweepIsStableAcrossJobCounts) {
  SweepResult serial, parallel;
  for (int jobs : {1, 4}) {
    MultiCampaign suite;
    const ScenarioFamily* family = apps::find_family("fam-spool");
    ASSERT_NE(family, nullptr);
    for (auto& s : apps::family_scenarios(*family)) suite.add(std::move(s));
    SweepOptions opts;
    opts.jobs = jobs;
    opts.campaign.seed = 7;
    (jobs == 1 ? serial : parallel) = suite.run(opts);
  }
  ASSERT_EQ(serial.results.size(), parallel.results.size());
  for (std::size_t i = 0; i < serial.results.size(); ++i)
    expect_identical(serial.results[i], parallel.results[i]);
}

}  // namespace
}  // namespace ep::core
