// End-to-end reproduction of the paper's headline numbers:
//   Section 3.4  — lpr: 4 attribute perturbations, 4 violations
//   Section 4.1  — turnin: 8 interaction points, 41 perturbations,
//                  9 violations, 2 distinct confirmed vulnerabilities
//   Section 4.2  — registry: 29 unprotected keys, 9 with known modules,
//                  all 9 exploited
//   Section 2.4  — vulnerability database Tables 1-4, exact counts
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "apps/scenarios.hpp"
#include "core/report.hpp"
#include "vulndb/classifier.hpp"

namespace ep {
namespace {

using core::Campaign;
using core::CampaignResult;

TEST(PaperNumbers, LprSection34) {
  Campaign campaign(apps::lpr_scenario());
  core::CampaignOptions opts;
  opts.only_sites = {apps::kLprCreateTag};
  CampaignResult r = campaign.execute(opts);

  EXPECT_TRUE(r.benign_violations.empty())
      << core::render_report(r);
  // Four attribute perturbations at the create interaction point...
  EXPECT_EQ(r.n(), 4) << core::render_report(r);
  // ... and every one of them violates the security policy.
  EXPECT_EQ(r.violation_count(), 4) << core::render_report(r);
}

TEST(PaperNumbers, TurninSection41) {
  Campaign campaign(apps::turnin_scenario());
  CampaignResult r = campaign.execute();

  EXPECT_TRUE(r.benign_violations.empty()) << core::render_report(r);
  EXPECT_EQ(r.points.size(), 8u) << core::render_report(r);
  EXPECT_EQ(r.n(), 41) << core::render_report(r);
  EXPECT_EQ(r.violation_count(), 9) << core::render_report(r);

  // The two distinct flaws the paper confirmed by exploit:
  // Projlist disclosure (fopen-projlist) and ../ traversal (arg-filename).
  std::set<std::string> violating_sites;
  for (const auto& i : r.injections)
    if (i.violated) violating_sites.insert(i.site.tag);
  EXPECT_TRUE(violating_sites.count(apps::kTurninOpenProjlist));
  EXPECT_TRUE(violating_sites.count(apps::kTurninArgFile));
}

TEST(PaperNumbers, TurninViolationBreakdown) {
  Campaign campaign(apps::turnin_scenario());
  CampaignResult r = campaign.execute();
  std::map<std::string, int> by_site;
  for (const auto& i : r.injections)
    if (i.violated) ++by_site[i.site.tag];
  EXPECT_EQ(by_site[apps::kTurninOpenConfig], 2) << core::render_report(r);
  EXPECT_EQ(by_site[apps::kTurninOpenProjlist], 2) << core::render_report(r);
  EXPECT_EQ(by_site[apps::kTurninArgFile], 1) << core::render_report(r);
  EXPECT_EQ(by_site[apps::kTurninCreateDest], 4) << core::render_report(r);
}

TEST(PaperNumbers, RegistrySection42) {
  auto world = apps::nt_registry_world();
  EXPECT_EQ(world->registry.unprotected_keys().size(), 29u);
  EXPECT_EQ(world->registry.unprotected_with_module().size(), 9u);
  EXPECT_EQ(world->registry.unprotected_without_module().size(), 20u);

  int exploited = 0;
  for (const auto& m : apps::nt_modules()) {
    Campaign campaign(apps::nt_module_scenario(m.module));
    CampaignResult r = campaign.execute();
    EXPECT_TRUE(r.benign_violations.empty())
        << m.module << "\n" << core::render_report(r);
    if (!r.exploitable().empty()) ++exploited;
  }
  EXPECT_EQ(exploited, 9);
}

TEST(PaperNumbers, VulnDbTables1Through4) {
  const auto& db = vulndb::database();
  ASSERT_EQ(db.size(), 195u);
  auto c = vulndb::classify_all(db);

  // Section 2.4 exclusions.
  EXPECT_EQ(c.insufficient, 26);
  EXPECT_EQ(c.design, 22);
  EXPECT_EQ(c.configuration, 5);
  EXPECT_EQ(c.classified, 142);

  // Table 1.
  EXPECT_EQ(c.indirect, 81);
  EXPECT_EQ(c.direct, 48);
  EXPECT_EQ(c.other, 13);

  // Table 2.
  using IC = core::IndirectCategory;
  EXPECT_EQ(c.indirect_by_category[IC::user_input], 51);
  EXPECT_EQ(c.indirect_by_category[IC::environment_variable], 17);
  EXPECT_EQ(c.indirect_by_category[IC::file_system_input], 5);
  EXPECT_EQ(c.indirect_by_category[IC::network_input], 8);
  EXPECT_EQ(c.indirect_by_category[IC::process_input], 0);

  // Table 3.
  using DE = core::DirectEntity;
  EXPECT_EQ(c.direct_by_entity[DE::file_system], 42);
  EXPECT_EQ(c.direct_by_entity[DE::network], 5);
  EXPECT_EQ(c.direct_by_entity[DE::process], 1);

  // Table 4.
  using FA = vulndb::FsAttribute;
  EXPECT_EQ(c.fs_by_attribute[FA::existence], 20);
  EXPECT_EQ(c.fs_by_attribute[FA::symbolic_link], 6);
  EXPECT_EQ(c.fs_by_attribute[FA::permission], 6);
  EXPECT_EQ(c.fs_by_attribute[FA::ownership], 3);
  EXPECT_EQ(c.fs_by_attribute[FA::invariance], 6);
  EXPECT_EQ(c.fs_by_attribute[FA::working_directory], 1);
}

TEST(PaperNumbers, HardenedTurninTolerates40Of41) {
  Campaign campaign(apps::turnin_hardened_scenario());
  CampaignResult r = campaign.execute();
  EXPECT_TRUE(r.benign_violations.empty()) << core::render_report(r);
  EXPECT_EQ(r.n(), 41) << core::render_report(r);
  // Only the root-only config-content tamper still wins.
  EXPECT_EQ(r.violation_count(), 1) << core::render_report(r);
}

}  // namespace
}  // namespace ep
