// The Figure 2 experiment: four campaigns landing in the four regions.
#include <gtest/gtest.h>

#include "apps/turnin.hpp"
#include "core/report.hpp"

namespace ep {
namespace {

using core::AdequacyRegion;
using core::Campaign;
using core::CampaignOptions;

// Two partially-covered sites with known violations/tolerations chosen so
// the sample point falls in the intended quadrant.
const std::vector<std::string> kPartialSites = {
    apps::kTurninOpenProjlist, apps::kTurninCreateDest};

TEST(Figure2, Point1_LowCoverageVulnerableProgram) {
  Campaign c(apps::turnin_scenario());
  CampaignOptions opts;
  opts.only_sites = kPartialSites;
  auto r = c.execute(opts);
  EXPECT_LT(r.interaction_coverage(), 0.5);
  EXPECT_LT(r.fault_coverage(), 0.8);
  EXPECT_EQ(r.region(), AdequacyRegion::point1_inadequate);
}

TEST(Figure2, Point2_LowCoverageHardenedProgram) {
  Campaign c(apps::turnin_hardened_scenario());
  CampaignOptions opts;
  opts.only_sites = kPartialSites;
  auto r = c.execute(opts);
  EXPECT_LT(r.interaction_coverage(), 0.5);
  EXPECT_GE(r.fault_coverage(), 0.8);
  EXPECT_EQ(r.region(), AdequacyRegion::point2_unexplored);
}

TEST(Figure2, Point3_FullCoverageVulnerableProgram) {
  Campaign c(apps::turnin_scenario());
  auto r = c.execute();
  EXPECT_DOUBLE_EQ(r.interaction_coverage(), 1.0);
  // 9 violations out of 41: fault coverage ~0.78, under the 0.8 bar.
  EXPECT_LT(r.fault_coverage(), 0.8);
  EXPECT_EQ(r.region(), AdequacyRegion::point3_insecure);
}

TEST(Figure2, Point4_FullCoverageHardenedProgram) {
  Campaign c(apps::turnin_hardened_scenario());
  auto r = c.execute();
  EXPECT_DOUBLE_EQ(r.interaction_coverage(), 1.0);
  EXPECT_GE(r.fault_coverage(), 0.8);
  EXPECT_EQ(r.region(), AdequacyRegion::point4_adequate_secure);
}

TEST(Figure2, CoverageTargetSweepIsMonotoneInSites) {
  // Raising the target coverage perturbs at least as many sites.
  std::size_t prev = 0;
  for (double target : {0.25, 0.5, 0.75, 1.0}) {
    Campaign c(apps::turnin_scenario());
    CampaignOptions opts;
    opts.target_interaction_coverage = target;
    opts.seed = 11;
    auto r = c.execute(opts);
    EXPECT_GE(r.perturbed_site_tags.size(), prev) << target;
    prev = r.perturbed_site_tags.size();
  }
}

}  // namespace
}  // namespace ep
