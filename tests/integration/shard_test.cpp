// The ISSUE's acceptance criterion for distribution: for every packaged
// scenario, a plan serialized to JSON, drained by N independent shards
// (each through the wire: plan parsed from bytes, shard report serialized
// and re-parsed), and merged back is byte-identical to the single-process
// parallel run — including shard counts that do not divide the work-item
// count evenly.
#include <gtest/gtest.h>

#include <vector>

#include "apps/scenarios.hpp"
#include "core/campaign_fixtures.hpp"
#include "core/report.hpp"
#include "core/wire.hpp"

namespace ep::core {
namespace {

TEST(ShardDeterminism, MergedShardsMatchSingleProcessForEveryScenario) {
  for (auto& scenario : apps::all_scenarios()) {
    SCOPED_TRACE(scenario.name);
    Planner planner(scenario);
    InjectionPlan plan = planner.plan();
    Executor ex(scenario);
    ExecutorOptions opts;
    opts.jobs = 4;
    CampaignResult single = ex.execute(plan, opts);
    std::string single_report = render_report(single);
    std::string single_json = render_json(single);

    // What a shard process actually sees: the plan rebuilt from bytes,
    // with a locally re-frozen COW prototype.
    InjectionPlan wire_plan = plan_from_json(plan.to_json());
    refreeze_snapshot(wire_plan, scenario);

    for (std::size_t n : {2u, 3u, 7u}) {
      SCOPED_TRACE("shards=" + std::to_string(n));
      std::vector<ShardReport> shards;
      for (std::size_t k = 0; k < n; ++k) {
        ExecutorOptions shard_opts;
        shard_opts.jobs = 2;
        shards.push_back(shard_report_from_json(
            run_shard(ex, wire_plan, k, n, shard_opts).to_json()));
      }
      CampaignResult merged = merge_shard_reports(wire_plan, shards);
      expect_identical(single, merged);
      EXPECT_EQ(single_report, render_report(merged));
      EXPECT_EQ(single_json, render_json(merged));
    }
  }
}

}  // namespace
}  // namespace ep::core
