// The ISSUE's preemption criterion: a shard drained partially
// (checkpoint interval 1), killed, and resumed must end up byte-identical
// to the uninterrupted run — and merging any mix of resumed and fresh
// shards must reproduce the single-process campaign bit for bit, for
// N ∈ {2, 3}. Preemption is simulated through the same hook the CLI's
// SIGTERM handler drives (ShardDrainHooks::interrupted), and every
// partial report makes a round trip through the wire before resuming,
// exactly like a worker that died and was restarted.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/campaign_fixtures.hpp"
#include "core/report.hpp"
#include "core/wire.hpp"

namespace ep::core {
namespace {

TEST(KillAndResume, MergedResultIsByteIdenticalToSingleProcess) {
  Scenario scenario = toy_scenario();
  Planner planner(scenario);
  InjectionPlan plan = planner.plan();
  Executor ex(scenario);
  CampaignResult single = ex.execute(plan);
  std::string single_report = render_report(single);
  std::string single_json = render_json(single);

  for (std::size_t n : {2u, 3u}) {
    SCOPED_TRACE("shards=" + std::to_string(n));
    // What a real worker sees: the plan rebuilt from bytes with a locally
    // re-frozen prototype.
    InjectionPlan wire_plan = plan_from_json(plan.to_json());
    refreeze_snapshot(wire_plan, scenario);

    std::vector<ShardReport> shards;
    for (std::size_t k = 0; k < n; ++k) {
      SCOPED_TRACE("shard=" + std::to_string(k + 1));
      std::string uninterrupted =
          run_shard(ex, wire_plan, k, n).to_json();
      std::size_t owned = shard_item_ids(wire_plan.items.size(), k, n).size();
      ASSERT_GE(owned, 2u);

      // Kill the drain after `cut` items, at checkpoint interval 1 —
      // early and late cuts both resume to the same bytes.
      for (std::size_t cut : {std::size_t{1}, owned - 1}) {
        std::string last_flush;
        ShardDrainHooks hooks;
        hooks.checkpoint_every = 1;
        hooks.on_checkpoint = [&](const ShardReport& r) {
          last_flush = r.to_json();
        };
        std::size_t polls = 0;
        hooks.interrupted = [&] { return ++polls > cut; };
        ShardReport preempted =
            run_shard(ex, wire_plan, k, n, {}, hooks);
        ASSERT_FALSE(preempted.complete);
        ASSERT_EQ(preempted.item_ids.size(), cut);
        ASSERT_FALSE(last_flush.empty());

        // The kill loses everything after the last flush: resume from
        // the flushed file, not the in-memory report.
        ShardReport from_disk = shard_report_from_json(last_flush);
        ASSERT_FALSE(from_disk.complete);
        ShardReport resumed = resume_shard(ex, wire_plan, from_disk);
        ASSERT_TRUE(resumed.complete);
        EXPECT_EQ(resumed.to_json(), uninterrupted);
        if (cut == 1)
          shards.push_back(shard_report_from_json(resumed.to_json()));
      }
    }

    CampaignResult merged = merge_shard_reports(wire_plan, shards);
    expect_identical(single, merged);
    EXPECT_EQ(single_report, render_report(merged));
    EXPECT_EQ(single_json, render_json(merged));
  }
}

}  // namespace
}  // namespace ep::core
