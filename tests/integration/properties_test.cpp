// Cross-cutting properties swept over every packaged scenario:
// accounting identities, run isolation, VFS integrity, determinism.
#include <gtest/gtest.h>

#include "apps/scenarios.hpp"
#include "core/oracle.hpp"
#include "core/report.hpp"

namespace ep {
namespace {

using core::Campaign;
using core::CampaignResult;

std::vector<std::string> scenario_names() {
  std::vector<std::string> names;
  for (const auto& s : apps::all_scenarios()) names.push_back(s.name);
  return names;
}

core::Scenario scenario_by_name(const std::string& name) {
  for (auto& s : apps::all_scenarios())
    if (s.name == name) return s;
  throw std::logic_error("no scenario " + name);
}

class EveryScenario : public ::testing::TestWithParam<std::string> {};

TEST_P(EveryScenario, BenignRunViolatesNothing) {
  Campaign c(scenario_by_name(GetParam()));
  core::CampaignOptions opts;
  opts.only_sites = {"no-such-site"};  // discovery only, no injections
  auto r = c.execute(opts);
  EXPECT_TRUE(r.benign_violations.empty()) << core::render_report(r);
}

TEST_P(EveryScenario, AccountingIdentitiesHold) {
  Campaign c(scenario_by_name(GetParam()));
  auto r = c.execute();
  EXPECT_EQ(r.tolerated_count() + r.violation_count(), r.n());
  EXPECT_GE(r.fault_coverage(), 0.0);
  EXPECT_LE(r.fault_coverage(), 1.0);
  EXPECT_GE(r.interaction_coverage(), 0.0);
  EXPECT_LE(r.interaction_coverage(), 1.0);
  EXPECT_DOUBLE_EQ(r.fault_coverage(), 1.0 - r.vulnerability_score());
  EXPECT_LE(r.perturbed_site_tags.size(), r.points.size());
}

TEST_P(EveryScenario, EveryInjectionOutcomeWellFormed) {
  Campaign c(scenario_by_name(GetParam()));
  auto r = c.execute();
  for (const auto& i : r.injections) {
    EXPECT_FALSE(i.fault_name.empty());
    EXPECT_FALSE(i.fault_description.empty());
    EXPECT_EQ(i.violated, !i.violations.empty());
    if (i.violated) {
      EXPECT_FALSE(i.exploit.actor.empty());
    }
  }
}

TEST_P(EveryScenario, DeterministicAcrossRuns) {
  auto r1 = Campaign(scenario_by_name(GetParam())).execute();
  auto r2 = Campaign(scenario_by_name(GetParam())).execute();
  ASSERT_EQ(r1.n(), r2.n());
  EXPECT_EQ(r1.violation_count(), r2.violation_count());
  for (int i = 0; i < r1.n(); ++i) {
    EXPECT_EQ(r1.injections[i].fault_name, r2.injections[i].fault_name);
    EXPECT_EQ(r1.injections[i].violated, r2.injections[i].violated);
    EXPECT_EQ(r1.injections[i].exit_code, r2.injections[i].exit_code);
  }
}

TEST_P(EveryScenario, ViolatingFaultsActuallyFired) {
  // A violation can only be caused by a fault that was injected.
  Campaign c(scenario_by_name(GetParam()));
  auto r = c.execute();
  for (const auto& i : r.injections) {
    if (i.violated) {
      EXPECT_TRUE(i.fired) << i.site.tag << "/" << i.fault_name;
    }
  }
}

TEST_P(EveryScenario, ReportRendersWithoutSurprises) {
  Campaign c(scenario_by_name(GetParam()));
  auto r = c.execute();
  std::string text = core::render_report(r);
  EXPECT_FALSE(text.empty());
  EXPECT_NE(text.find(GetParam()), std::string::npos);
}

TEST_P(EveryScenario, JsonStaysBalancedAndClean) {
  Campaign c(scenario_by_name(GetParam()));
  auto r = c.execute();
  std::string json = core::render_json(r);
  int braces = 0, brackets = 0;
  bool in_string = false, escaped = false;
  for (char ch : json) {
    // No raw control bytes may survive escaping.
    EXPECT_TRUE(static_cast<unsigned char>(ch) >= 0x20 || ch == '\n');
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string && ch == '\\') {
      escaped = true;
      continue;
    }
    if (ch == '"') {
      in_string = !in_string;
      continue;
    }
    if (in_string) continue;
    if (ch == '{') ++braces;
    if (ch == '}') --braces;
    if (ch == '[') ++brackets;
    if (ch == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);
}

TEST_P(EveryScenario, MergedCampaignNeverLosesViolations) {
  // The equivalence reduction's soundness, swept over the whole suite.
  auto full = Campaign(scenario_by_name(GetParam())).execute();
  core::CampaignOptions opts;
  opts.merge_equivalent_sites = true;
  auto merged = Campaign(scenario_by_name(GetParam())).execute(opts);
  EXPECT_LE(merged.n(), full.n());
  EXPECT_EQ(merged.violation_count(), full.violation_count());
  EXPECT_DOUBLE_EQ(merged.interaction_coverage(),
                   full.interaction_coverage());
}

TEST_P(EveryScenario, RedzoneOracleRaisesNoFalsePositives) {
  // Negative control for the memory oracle: none of the packaged
  // scenarios corrupts a guard region, neither benignly nor under any
  // injected fault, so the redzone policy must never appear.
  Campaign c(scenario_by_name(GetParam()));
  auto r = c.execute();  // use_redzone defaults to true
  for (const auto& v : r.benign_violations)
    EXPECT_NE(v.policy, core::Policy::redzone_corruption) << v.detail;
  for (const auto& i : r.injections)
    for (const auto& v : i.violations)
      EXPECT_NE(v.policy, core::Policy::redzone_corruption)
          << i.site.tag << "/" << i.fault_name << ": " << v.detail;
}

TEST_P(EveryScenario, RedzoneAuditIsByteInvisibleWhenNothingFires) {
  // The oracle must be a pure observer: with no corruption, turning the
  // audit off (and changing the worker count) leaves the rendered report
  // byte-identical. This is the determinism contract --no-redzone rides
  // on — reports differ only when a guard actually breaks.
  core::CampaignOptions audit_on;
  audit_on.jobs = 1;
  core::CampaignOptions audit_off;
  audit_off.use_redzone = false;
  audit_off.jobs = 4;
  auto r_on = Campaign(scenario_by_name(GetParam())).execute(audit_on);
  auto r_off = Campaign(scenario_by_name(GetParam())).execute(audit_off);
  EXPECT_EQ(core::render_json(r_on), core::render_json(r_off));
  EXPECT_EQ(core::render_report(r_on), core::render_report(r_off));
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, EveryScenario,
                         ::testing::ValuesIn(scenario_names()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

TEST(Properties, ScenarioNamesUnique) {
  auto names = scenario_names();
  std::set<std::string> set(names.begin(), names.end());
  EXPECT_EQ(set.size(), names.size());
  EXPECT_EQ(names.size(), 21u);  // 12 UNIX-side + 9 NT modules
}

}  // namespace
}  // namespace ep
