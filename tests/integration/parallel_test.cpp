// The ISSUE's determinism criterion over the real scenario suite: for
// every packaged scenario, --jobs 4 must reproduce the --jobs 1 campaign
// exactly — same injections, same order, same rho — and the MultiCampaign
// sweep must agree with standalone campaigns.
#include <gtest/gtest.h>

#include "apps/scenarios.hpp"
#include "core/campaign_fixtures.hpp"
#include "core/scheduler.hpp"

namespace ep {
namespace {

using core::Campaign;
using core::CampaignOptions;
using core::CampaignResult;
using core::expect_identical;

std::vector<std::string> scenario_names() {
  std::vector<std::string> names;
  for (const auto& s : apps::all_scenarios()) names.push_back(s.name);
  return names;
}

core::Scenario scenario_by_name(const std::string& name) {
  for (auto& s : apps::all_scenarios())
    if (s.name == name) return s;
  throw std::logic_error("no scenario " + name);
}

class EveryScenarioParallel : public ::testing::TestWithParam<std::string> {};

TEST_P(EveryScenarioParallel, Jobs4ReproducesJobs1Exactly) {
  CampaignOptions serial;
  serial.seed = 7;
  CampaignOptions parallel = serial;
  parallel.jobs = 4;

  CampaignResult a = Campaign(scenario_by_name(GetParam())).execute(serial);
  CampaignResult b = Campaign(scenario_by_name(GetParam())).execute(parallel);
  expect_identical(a, b);
}

INSTANTIATE_TEST_SUITE_P(Suite, EveryScenarioParallel,
                         ::testing::ValuesIn(scenario_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

TEST(Sweep, MultiCampaignAgreesWithStandaloneCampaigns) {
  core::MultiCampaign suite;
  for (auto& s : apps::all_scenarios()) suite.add(std::move(s));
  core::SweepOptions opts;
  opts.jobs = 4;
  auto sweep = suite.run(opts);

  auto standalone = apps::all_scenarios();
  ASSERT_EQ(sweep.results.size(), standalone.size());
  for (std::size_t i = 0; i < standalone.size(); ++i) {
    CampaignResult r = Campaign(std::move(standalone[i])).execute();
    expect_identical(sweep.results[i], r);
  }
}

}  // namespace
}  // namespace ep
