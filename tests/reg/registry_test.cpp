#include "reg/registry.hpp"

#include <gtest/gtest.h>

namespace ep::reg {
namespace {

const os::Site kS{"reg_test.c", 1, "reg-site"};

class RegistryTest : public ::testing::Test {
 protected:
  RegistryTest() {
    admin = k.make_process(500, 500);
    user = k.make_process(1000, 1000);
    systemp = k.make_process(os::kRootUid, os::kRootGid);

    Key open_key;
    open_key.path = "HKLM/Open";
    open_key.value = "v1";
    open_key.acl.owner = 500;
    open_key.acl.everyone_write = true;
    open_key.used_by_module = "modA";
    r.define_key(open_key);

    Key locked;
    locked.path = "HKLM/Locked";
    locked.value = "v2";
    locked.acl.owner = 500;
    locked.acl.everyone_write = false;
    r.define_key(locked);
  }
  os::Kernel k;
  Registry r;
  os::Pid admin = -1, user = -1, systemp = -1;
};

TEST_F(RegistryTest, ReadValue) {
  EXPECT_EQ(r.read_value(k, kS, admin, "HKLM/Open").value(), "v1");
  EXPECT_EQ(r.read_value(k, kS, admin, "HKLM/Missing").error(), Err::noent);
}

TEST_F(RegistryTest, EveryoneWriteAllowsAnyUser) {
  ASSERT_TRUE(r.write_value(k, kS, user, "HKLM/Open", "evil").ok());
  EXPECT_EQ(r.find("HKLM/Open")->value, "evil");
}

TEST_F(RegistryTest, ProtectedKeyRefusesNonOwner) {
  EXPECT_EQ(r.write_value(k, kS, user, "HKLM/Locked", "evil").error(),
            Err::acces);
  EXPECT_EQ(r.find("HKLM/Locked")->value, "v2");
}

TEST_F(RegistryTest, OwnerAndSystemMayWriteProtectedKey) {
  EXPECT_TRUE(r.write_value(k, kS, admin, "HKLM/Locked", "a").ok());
  EXPECT_TRUE(r.write_value(k, kS, systemp, "HKLM/Locked", "b").ok());
  EXPECT_EQ(r.find("HKLM/Locked")->value, "b");
}

TEST_F(RegistryTest, AttackerSetValueRespectsAcl) {
  EXPECT_TRUE(r.attacker_set_value(1000, "HKLM/Open", "pwn"));
  EXPECT_FALSE(r.attacker_set_value(1000, "HKLM/Locked", "pwn"));
  EXPECT_EQ(r.find("HKLM/Locked")->value, "v2");
}

TEST_F(RegistryTest, ScannerFindsUnprotectedKeys) {
  auto open_keys = r.unprotected_keys();
  ASSERT_EQ(open_keys.size(), 1u);
  EXPECT_EQ(open_keys[0].path, "HKLM/Open");
  EXPECT_EQ(r.unprotected_with_module().size(), 1u);
  EXPECT_TRUE(r.unprotected_without_module().empty());
}

TEST_F(RegistryTest, ScannerSeparatesUnknownModules) {
  Key orphan;
  orphan.path = "HKLM/Orphan";
  orphan.acl.everyone_write = true;
  r.define_key(orphan);
  EXPECT_EQ(r.unprotected_keys().size(), 2u);
  EXPECT_EQ(r.unprotected_with_module().size(), 1u);
  EXPECT_EQ(r.unprotected_without_module().size(), 1u);
}

TEST_F(RegistryTest, PerturbationSurface) {
  r.set_value("HKLM/Open", "tampered");
  EXPECT_EQ(r.find("HKLM/Open")->value, "tampered");
  r.set_everyone_write("HKLM/Locked", true);
  EXPECT_TRUE(r.find("HKLM/Locked")->acl.everyone_write);
  r.set_trusted("HKLM/Open", false);
  EXPECT_FALSE(r.find("HKLM/Open")->trusted);
  r.remove_key("HKLM/Open");
  EXPECT_EQ(r.find("HKLM/Open"), nullptr);
}

TEST_F(RegistryTest, ReadRoutesThroughHooks) {
  struct SeeRead : os::Interposer {
    std::string path;
    bool untrusted = false;
    void after(os::Kernel&, os::SyscallCtx& ctx, Err) override {
      if (ctx.call == "regread") {
        path = ctx.path;
        untrusted = ctx.object_untrusted;
      }
    }
  };
  auto hook = std::make_shared<SeeRead>();
  k.add_interposer(hook);
  r.set_trusted("HKLM/Open", false);
  ASSERT_TRUE(r.read_value(k, kS, admin, "HKLM/Open").ok());
  EXPECT_EQ(hook->path, "HKLM/Open");
  EXPECT_TRUE(hook->untrusted);
}

TEST_F(RegistryTest, IndirectFaultRewritesValueDelivery) {
  struct Rewriter : os::Interposer {
    void after(os::Kernel&, os::SyscallCtx& ctx, Err) override {
      if (ctx.call == "regread" && ctx.input) *ctx.input = "INJECTED";
    }
  };
  k.add_interposer(std::make_shared<Rewriter>());
  EXPECT_EQ(r.read_value(k, kS, admin, "HKLM/Open").value(), "INJECTED");
  // The stored value is untouched.
  EXPECT_EQ(r.find("HKLM/Open")->value, "v1");
}

}  // namespace
}  // namespace ep::reg
