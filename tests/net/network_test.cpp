#include "net/network.hpp"

#include <gtest/gtest.h>

namespace ep::net {
namespace {

const os::Site kS{"net_test.c", 1, "net-site"};

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() { pid = k.make_process(os::kRootUid, os::kRootGid); }

  void add_auth_service(bool available = true, bool trusted = true) {
    ServiceDef svc;
    svc.name = "authsvc";
    svc.available = available;
    svc.trusted = trusted;
    svc.handler = [](const Message& m) {
      Message r;
      r.type = m.payload == "good" ? "AUTH_OK" : "AUTH_FAIL";
      return r;
    };
    net.define_service(svc);
  }

  void add_script() {
    PeerScript s;
    s.peer = "client";
    s.expected_protocol = {"HELLO", "AUTH", "BYE"};
    s.inbound = {{"client", "HELLO", "hi", true},
                 {"client", "AUTH", "good", true},
                 {"client", "BYE", "", true}};
    net.set_client_script(s);
  }

  os::Kernel k;
  Network net;
  os::Pid pid = -1;
};

TEST_F(NetworkTest, AcceptWithoutScriptRefused) {
  EXPECT_EQ(net.accept(k, kS, pid).error(), Err::conn);
}

TEST_F(NetworkTest, RecvDeliversScriptInOrder) {
  add_script();
  auto s = net.accept(k, kS, pid);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(net.recv(k, kS, pid, s.value()).value().type, "HELLO");
  EXPECT_EQ(net.recv(k, kS, pid, s.value()).value().type, "AUTH");
  EXPECT_EQ(net.recv(k, kS, pid, s.value()).value().type, "BYE");
  EXPECT_EQ(net.recv(k, kS, pid, s.value()).error(), Err::conn);  // drained
}

TEST_F(NetworkTest, SpoofMarksNextMessageUnauthentic) {
  add_script();
  net.spoof_next_inbound("evil-host");
  auto s = net.accept(k, kS, pid);
  auto m1 = net.recv(k, kS, pid, s.value());
  ASSERT_TRUE(m1.ok());
  EXPECT_FALSE(m1.value().authentic);
  EXPECT_EQ(m1.value().from, "evil-host");
  auto m2 = net.recv(k, kS, pid, s.value());
  EXPECT_TRUE(m2.value().authentic);  // only the next one
}

TEST_F(NetworkTest, ProtocolOmitDropsMiddleStep) {
  add_script();
  net.perturb_protocol(ProtocolFault::omit_step);
  auto s = net.accept(k, kS, pid);
  EXPECT_EQ(net.recv(k, kS, pid, s.value()).value().type, "HELLO");
  EXPECT_EQ(net.recv(k, kS, pid, s.value()).value().type, "BYE");
}

TEST_F(NetworkTest, ProtocolExtraInsertsStep) {
  add_script();
  net.perturb_protocol(ProtocolFault::extra_step);
  auto s = net.accept(k, kS, pid);
  EXPECT_EQ(net.recv(k, kS, pid, s.value()).value().type, "HELLO");
  EXPECT_EQ(net.recv(k, kS, pid, s.value()).value().type, "EXTRA");
}

TEST_F(NetworkTest, ProtocolViolationFlagReachesHooks) {
  add_script();
  net.perturb_protocol(ProtocolFault::reorder_steps);
  struct SeeFlags : os::Interposer {
    int violations = 0;
    void after(os::Kernel&, os::SyscallCtx& ctx, Err) override {
      if (ctx.call == "recv" && ctx.net_protocol_violation) ++violations;
    }
  };
  auto hook = std::make_shared<SeeFlags>();
  k.add_interposer(hook);
  auto s = net.accept(k, kS, pid);
  while (net.recv(k, kS, pid, s.value()).ok()) {
  }
  EXPECT_GT(hook->violations, 0);
}

TEST_F(NetworkTest, InOrderScriptHasNoProtocolViolation) {
  add_script();
  struct SeeFlags : os::Interposer {
    int violations = 0;
    void after(os::Kernel&, os::SyscallCtx& ctx, Err) override {
      if (ctx.net_protocol_violation) ++violations;
    }
  };
  auto hook = std::make_shared<SeeFlags>();
  k.add_interposer(hook);
  auto s = net.accept(k, kS, pid);
  while (net.recv(k, kS, pid, s.value()).ok()) {
  }
  EXPECT_EQ(hook->violations, 0);
}

TEST_F(NetworkTest, SocketShareFlagsChannel) {
  add_script();
  net.share_inbound_socket();
  auto s = net.accept(k, kS, pid);
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(net.socket_shared(s.value()));
}

TEST_F(NetworkTest, ShareAppliesToAlreadyAcceptedChannel) {
  add_script();
  auto s = net.accept(k, kS, pid);
  EXPECT_FALSE(net.socket_shared(s.value()));
  net.share_inbound_socket();
  EXPECT_TRUE(net.socket_shared(s.value()));
}

TEST_F(NetworkTest, DistrustInboundFlagsPeer) {
  add_script();
  auto s = net.accept(k, kS, pid);
  EXPECT_TRUE(net.peer_trusted(s.value()));
  net.distrust_inbound();
  EXPECT_FALSE(net.peer_trusted(s.value()));
}

TEST_F(NetworkTest, ConnectToService) {
  add_auth_service();
  auto s = net.connect(k, kS, pid, "authsvc");
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(net.peer_trusted(s.value()));
}

TEST_F(NetworkTest, ConnectRefusedWhenUnavailable) {
  add_auth_service(/*available=*/false);
  EXPECT_EQ(net.connect(k, kS, pid, "authsvc").error(), Err::conn);
}

TEST_F(NetworkTest, ConnectToUnknownServiceRefused) {
  EXPECT_EQ(net.connect(k, kS, pid, "ghost").error(), Err::conn);
}

TEST_F(NetworkTest, QueryRunsHandler) {
  add_auth_service();
  auto s = net.connect(k, kS, pid, "authsvc");
  Message q;
  q.type = "AUTH";
  q.payload = "good";
  auto r = net.query(k, kS, pid, s.value(), q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().type, "AUTH_OK");
  EXPECT_EQ(r.value().from, "authsvc");
}

TEST_F(NetworkTest, AuthConfirmationOnlyFromTrustedService) {
  struct SeeConf : os::Interposer {
    bool confirmed = false;
    void after(os::Kernel&, os::SyscallCtx& ctx, Err) override {
      confirmed = confirmed || ctx.net_auth_confirmation;
    }
  };
  {
    add_auth_service(true, /*trusted=*/true);
    auto hook = std::make_shared<SeeConf>();
    k.add_interposer(hook);
    auto s = net.connect(k, kS, pid, "authsvc");
    Message q;
    q.payload = "good";
    ASSERT_TRUE(net.query(k, kS, pid, s.value(), q).ok());
    EXPECT_TRUE(hook->confirmed);
  }
  {
    // Untrusted service: AUTH_OK no longer counts.
    os::Kernel k2;
    os::Pid p2 = k2.make_process(os::kRootUid, os::kRootGid);
    Network net2;
    ServiceDef svc;
    svc.name = "authsvc";
    svc.trusted = false;
    svc.handler = [](const Message&) {
      Message r;
      r.type = "AUTH_OK";
      return r;
    };
    net2.define_service(svc);
    auto hook = std::make_shared<SeeConf>();
    k2.add_interposer(hook);
    auto s = net2.connect(k2, kS, p2, "authsvc");
    ASSERT_TRUE(s.ok());
    ASSERT_TRUE(net2.query(k2, kS, p2, s.value(), Message{}).ok());
    EXPECT_FALSE(hook->confirmed);
  }
}

TEST_F(NetworkTest, QueryFailsWhenServiceGoesDown) {
  add_auth_service();
  auto s = net.connect(k, kS, pid, "authsvc");
  net.set_service_available("authsvc", false);
  EXPECT_EQ(net.query(k, kS, pid, s.value(), Message{}).error(), Err::conn);
}

TEST_F(NetworkTest, DnsResolvesAndOverrides) {
  net.add_host("db.corp", "10.0.0.9");
  EXPECT_EQ(net.resolve_host(k, kS, pid, "db.corp").value(), "10.0.0.9");
  net.set_dns_reply("db.corp", "6.6.6.6");
  EXPECT_EQ(net.resolve_host(k, kS, pid, "db.corp").value(), "6.6.6.6");
  EXPECT_EQ(net.resolve_host(k, kS, pid, "ghost.corp").error(), Err::noent);
}

TEST_F(NetworkTest, IndirectFaultRewritesRecvPayload) {
  add_script();
  struct Rewriter : os::Interposer {
    void after(os::Kernel&, os::SyscallCtx& ctx, Err) override {
      if (ctx.call == "recv" && ctx.input) *ctx.input = "MUTATED";
    }
  };
  k.add_interposer(std::make_shared<Rewriter>());
  auto s = net.accept(k, kS, pid);
  auto m = net.recv(k, kS, pid, s.value());
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m.value().payload, "MUTATED");
}

TEST_F(NetworkTest, ChannelKindPropagatesToCtx) {
  ServiceDef helper;
  helper.name = "keymaster";
  helper.kind = ChannelKind::ipc;
  helper.handler = [](const Message&) { return Message{}; };
  net.define_service(helper);
  struct SeeKind : os::Interposer {
    std::string kind;
    void before(os::Kernel&, os::SyscallCtx& ctx) override {
      if (ctx.call == "connect") kind = ctx.channel_kind;
    }
  };
  auto hook = std::make_shared<SeeKind>();
  k.add_interposer(hook);
  ASSERT_TRUE(net.connect(k, kS, pid, "keymaster").ok());
  EXPECT_EQ(hook->kind, "ipc");
}

TEST_F(NetworkTest, BadSocketIsBadf) {
  EXPECT_EQ(net.recv(k, kS, pid, 99).error(), Err::badf);
  EXPECT_EQ(net.send(k, kS, pid, 99, Message{}).error(), Err::badf);
  EXPECT_EQ(net.query(k, kS, pid, 99, Message{}).error(), Err::badf);
}

}  // namespace
}  // namespace ep::net
