// TcpTransport (net/transport_tcp.hpp): framing, socket plumbing, and
// the coordinator's side of the worker protocol, driven from a scripted
// in-test "worker" on the other end of a loopback socket. Everything is
// single-threaded: the client pre-writes whatever the transport will
// want next, so no call here ever blocks on the other side of the test.
// The real worker binary is exercised by the CLI tcp pipeline tests.
#include "net/transport_tcp.hpp"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <vector>

#include "core/campaign_fixtures.hpp"
#include "core/protocol.hpp"
#include "core/report.hpp"
#include "core/wire.hpp"
#include "util/strings.hpp"

namespace ep::net {
namespace {

TEST(FrameBuffer, ReassemblesFramesFromArbitraryDribbles) {
  // One frame: length prefix 5, payload "hello", delivered a byte at a
  // time — pop() must stay false until the last byte lands.
  std::string wire = {5, 0, 0, 0};
  wire += "hello";
  FrameBuffer fb;
  std::string payload;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    EXPECT_FALSE(fb.pop(&payload)) << "frame complete after " << i;
    fb.feed(wire.data() + i, 1);
  }
  ASSERT_TRUE(fb.pop(&payload));
  EXPECT_EQ(payload, "hello");
  EXPECT_FALSE(fb.mid_frame());
}

TEST(FrameBuffer, PopsBackToBackFramesFromOneFeed) {
  std::string wire = {2, 0, 0, 0};
  wire += "ab";
  wire += std::string{0, 0, 0, 0};  // an empty frame is legal
  wire += std::string{1, 0, 0, 0};
  wire += "c";
  FrameBuffer fb;
  fb.feed(wire.data(), wire.size());
  std::string payload;
  ASSERT_TRUE(fb.pop(&payload));
  EXPECT_EQ(payload, "ab");
  ASSERT_TRUE(fb.pop(&payload));
  EXPECT_EQ(payload, "");
  ASSERT_TRUE(fb.pop(&payload));
  EXPECT_EQ(payload, "c");
  EXPECT_FALSE(fb.pop(&payload));
}

TEST(FrameBuffer, MidFrameReportsBufferedIncompleteBytes) {
  std::string wire = {9, 0, 0, 0};
  wire += "inco";  // 4 of 9 payload bytes
  FrameBuffer fb;
  EXPECT_FALSE(fb.mid_frame());
  fb.feed(wire.data(), wire.size());
  std::string payload;
  EXPECT_FALSE(fb.pop(&payload));
  EXPECT_TRUE(fb.mid_frame());
}

TEST(FrameBuffer, OversizedLengthPrefixIsCorruptionNotAFrame) {
  // 0xFFFFFFFF bytes is no real plan or report; waiting for it to
  // "complete" would hang forever, so the buffer throws immediately.
  std::string wire = {'\xFF', '\xFF', '\xFF', '\xFF'};
  FrameBuffer fb;
  fb.feed(wire.data(), wire.size());
  std::string payload;
  EXPECT_THROW((void)fb.pop(&payload), core::OrchestratorError);
}

TEST(Frames, SendRecvRoundTripsOverASocketpair) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  const std::string big(100000, 'x');  // bigger than one read() chunk
  ASSERT_TRUE(send_frame(sv[0], "LEASE 0 4 -"));
  ASSERT_TRUE(send_frame(sv[0], big));
  FrameBuffer fb;
  std::string payload;
  ASSERT_TRUE(recv_frame(sv[1], &fb, &payload, 1000));
  EXPECT_EQ(payload, "LEASE 0 4 -");
  ASSERT_TRUE(recv_frame(sv[1], &fb, &payload, 1000));
  EXPECT_EQ(payload, big);
  // Clean EOF at a frame boundary: false, not an error.
  ::close(sv[0]);
  EXPECT_FALSE(recv_frame(sv[1], &fb, &payload, 1000));
  ::close(sv[1]);
}

TEST(Frames, EofMidFrameThrowsWhereEofAtABoundaryDoesNot) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  const char partial[] = {9, 0, 0, 0, 'x'};  // promises 9, delivers 1
  ASSERT_EQ(::write(sv[0], partial, sizeof partial),
            static_cast<ssize_t>(sizeof partial));
  ::close(sv[0]);
  FrameBuffer fb;
  std::string payload;
  EXPECT_THROW((void)recv_frame(sv[1], &fb, &payload, 1000),
               core::OrchestratorError);
  ::close(sv[1]);
}

TEST(Frames, RecvTimesOutWhenThePeerSaysNothing) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  FrameBuffer fb;
  std::string payload;
  EXPECT_THROW((void)recv_frame(sv[1], &fb, &payload, 20),
               core::OrchestratorError);
  ::close(sv[0]);
  ::close(sv[1]);
}

TEST(Frames, PumpNonblockingNeverWaitsAndSpotsTheClose) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  FrameBuffer fb;
  EXPECT_TRUE(pump_nonblocking(sv[1], &fb));  // nothing there: no wait
  ASSERT_TRUE(send_frame(sv[0], "STEAL"));
  EXPECT_TRUE(pump_nonblocking(sv[1], &fb));
  std::string payload;
  ASSERT_TRUE(fb.pop(&payload));
  EXPECT_EQ(payload, "STEAL");
  ::close(sv[0]);
  EXPECT_FALSE(pump_nonblocking(sv[1], &fb));  // peer gone
  ::close(sv[1]);
}

/// The coordinator under test plus one scripted loopback "worker". The
/// client connects (and usually says HELLO) before spawn() runs, so the
/// accept + handshake + plan shipment all complete without another
/// thread; socket buffers hold the small frames both directions.
struct ScriptedWorker {
  int fd = -1;
  FrameBuffer fb;

  explicit ScriptedWorker(int port) : fd(tcp_connect("127.0.0.1", port)) {}
  ~ScriptedWorker() {
    if (fd >= 0) ::close(fd);
  }

  void say(const std::string& line) { ASSERT_TRUE(send_frame(fd, line)); }
  std::string hear() {
    std::string payload;
    EXPECT_TRUE(recv_frame(fd, &fb, &payload, 2000));
    return payload;
  }
  void hang_up() {
    ::close(fd);
    fd = -1;
  }
};

core::InjectionPlan planned_toy(core::Scenario* out_scenario) {
  *out_scenario = core::toy_scenario();
  core::CampaignOptions opts;
  opts.use_world_cache = true;
  return core::Planner(*out_scenario).plan(opts);
}

TcpTransportConfig loopback_config(int workers) {
  TcpTransportConfig cfg;
  cfg.listen_port = 0;
  cfg.workers = workers;
  cfg.accept_timeout_ms = 2000;
  cfg.handshake_timeout_ms = 2000;
  return cfg;
}

TEST(TcpTransport, HandshakePlanLeaseAndReportAllCrossTheWire) {
  core::Scenario s;
  core::InjectionPlan plan = planned_toy(&s);
  TcpTransport transport(loopback_config(1), plan);
  ASSERT_GT(transport.port(), 0);

  ScriptedWorker worker(transport.port());
  worker.say(core::format_hello(core::kWorkerProtocolVersion));
  std::optional<std::size_t> w = transport.spawn();
  ASSERT_TRUE(w.has_value());

  // The plan arrives as one binary EPAB frame, decodable to the same
  // plan the coordinator holds.
  core::InjectionPlan shipped = core::plan_from_binary(worker.hear());
  ASSERT_EQ(shipped.items.size(), plan.items.size());

  // LEASE goes out with `-` as the target: the report returns in-band.
  core::Lease lease{0, 0, 2};
  transport.submit(*w, lease);
  EXPECT_EQ(worker.hear(), "LEASE 0 2 -");

  // The scripted worker drains the lease for real and answers with the
  // DONE control frame plus the binary report frame.
  core::Executor ex(s);
  core::ShardReport report = core::run_lease(ex, plan, 0, 2, {});
  worker.say(core::format_done(0, 2));
  worker.say(core::shard_report_to_binary(report));
  std::optional<core::WorkerEvent> ev = transport.wait_any(2000);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->kind, core::WorkerEvent::Kind::lease_done);
  EXPECT_EQ(ev->worker, *w);
  EXPECT_EQ(ev->lease.seq, lease.seq);
  EXPECT_EQ(ev->report.to_json(), report.to_json());

  // PING is a heartbeat event; YIELD answers a STEAL with a split.
  worker.say(core::format_ping());
  ev = transport.wait_any(2000);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->kind, core::WorkerEvent::Kind::heartbeat);

  core::Lease second{1, 2, 6};
  transport.submit(*w, second);
  EXPECT_EQ(worker.hear(), "LEASE 2 6 -");
  transport.steal(*w);
  EXPECT_EQ(worker.hear(), "STEAL");
  worker.say(core::format_yield(4, 6));
  ev = transport.wait_any(2000);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->kind, core::WorkerEvent::Kind::lease_yielded);
  EXPECT_EQ(ev->yield_mid, 4u);
  EXPECT_EQ(ev->lease.end, 6u);  // the event names the original range

  // The worker now owes [2, 4); finish it so shutdown finds it idle.
  core::ShardReport head = core::run_lease(ex, plan, 2, 4, {});
  worker.say(core::format_done(2, 4));
  worker.say(core::shard_report_to_binary(head));
  ev = transport.wait_any(2000);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->kind, core::WorkerEvent::Kind::lease_done);

  // Clean exit: EXIT out, BYE 0 + close back, exited event.
  transport.shutdown(*w);
  EXPECT_EQ(worker.hear(), "EXIT");
  worker.say(core::format_bye(0));
  worker.hang_up();
  ev = transport.wait_any(2000);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->kind, core::WorkerEvent::Kind::exited);
  EXPECT_EQ(ev->status, 0);
}

TEST(TcpTransport, HandshakeVersionMismatchNamesBothVersions) {
  core::Scenario s;
  core::InjectionPlan plan = planned_toy(&s);
  TcpTransport transport(loopback_config(1), plan);
  ScriptedWorker worker(transport.port());
  worker.say("HELLO 1");
  try {
    (void)transport.spawn();
    FAIL() << "expected OrchestratorError";
  } catch (const core::OrchestratorError& e) {
    EXPECT_TRUE(contains(e.what(), "version 1"));
    EXPECT_TRUE(contains(
        e.what(),
        "version " + std::to_string(core::kWorkerProtocolVersion)));
  }
}

TEST(TcpTransport, OpeningWithAnythingButHelloIsRejected) {
  core::Scenario s;
  core::InjectionPlan plan = planned_toy(&s);
  TcpTransport transport(loopback_config(1), plan);
  ScriptedWorker worker(transport.port());
  worker.say("PING");
  try {
    (void)transport.spawn();
    FAIL() << "expected OrchestratorError";
  } catch (const core::OrchestratorError& e) {
    EXPECT_TRUE(contains(e.what(), "instead of HELLO"));
  }
}

TEST(TcpTransport, ConnectionDroppedWithoutByeIsPreemption) {
  // kill -9, a powered-off host, a split network: no BYE, just EOF. The
  // worker's lease must come back as preempted (status -1), the signal
  // the orchestrator re-leases on.
  core::Scenario s;
  core::InjectionPlan plan = planned_toy(&s);
  TcpTransport transport(loopback_config(1), plan);
  ScriptedWorker worker(transport.port());
  worker.say(core::format_hello(core::kWorkerProtocolVersion));
  std::optional<std::size_t> w = transport.spawn();
  ASSERT_TRUE(w.has_value());
  (void)worker.hear();  // take the plan
  transport.submit(*w, {0, 0, 2});
  worker.hang_up();
  std::optional<core::WorkerEvent> ev = transport.wait_any(2000);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->kind, core::WorkerEvent::Kind::preempted);
  EXPECT_EQ(ev->status, -1);
}

TEST(TcpTransport, ByeWithFailureStatusIsDeathNotPreemption) {
  core::Scenario s;
  core::InjectionPlan plan = planned_toy(&s);
  TcpTransport transport(loopback_config(1), plan);
  ScriptedWorker worker(transport.port());
  worker.say(core::format_hello(core::kWorkerProtocolVersion));
  std::optional<std::size_t> w = transport.spawn();
  ASSERT_TRUE(w.has_value());
  (void)worker.hear();
  worker.say(core::format_bye(9));
  worker.hang_up();
  std::optional<core::WorkerEvent> ev = transport.wait_any(2000);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->kind, core::WorkerEvent::Kind::died);
  EXPECT_EQ(ev->status, 9);
}

TEST(TcpTransport, KillClosesTheSocketSoTheWorkerSeesEof) {
  core::Scenario s;
  core::InjectionPlan plan = planned_toy(&s);
  TcpTransport transport(loopback_config(1), plan);
  ScriptedWorker worker(transport.port());
  worker.say(core::format_hello(core::kWorkerProtocolVersion));
  std::optional<std::size_t> w = transport.spawn();
  ASSERT_TRUE(w.has_value());
  (void)worker.hear();
  transport.kill(*w);
  std::string payload;
  EXPECT_FALSE(recv_frame(worker.fd, &worker.fb, &payload, 2000));
}

TEST(TcpTransport, RespawnOnlyPollsAndAdoptsAPreStartedSpare) {
  core::Scenario s;
  core::InjectionPlan plan = planned_toy(&s);
  TcpTransport transport(loopback_config(1), plan);

  ScriptedWorker first(transport.port());
  first.say(core::format_hello(core::kWorkerProtocolVersion));
  ASSERT_TRUE(transport.spawn().has_value());
  (void)first.hear();

  // Past the initial fleet: an empty accept queue is nullopt (after a
  // short poll), not a multi-second stall and not an error.
  EXPECT_FALSE(transport.spawn().has_value());

  // A spare that already dialed in is adopted instantly.
  ScriptedWorker spare(transport.port());
  spare.say(core::format_hello(core::kWorkerProtocolVersion));
  std::optional<std::size_t> w = transport.spawn();
  ASSERT_TRUE(w.has_value());
  core::InjectionPlan shipped = core::plan_from_binary(spare.hear());
  EXPECT_EQ(shipped.items.size(), plan.items.size());
}

}  // namespace
}  // namespace ep::net
