// The NT registry world and the nine module scenarios.
#include "apps/registry_modules.hpp"

#include <gtest/gtest.h>

#include "core/report.hpp"
#include "util/strings.hpp"

namespace ep::apps {
namespace {

using core::Campaign;
using core::CampaignOptions;

TEST(NtWorld, ScanCounts) {
  auto w = nt_registry_world();
  EXPECT_EQ(w->registry.unprotected_keys().size(), 29u);
  EXPECT_EQ(w->registry.unprotected_with_module().size(), 9u);
  EXPECT_EQ(w->registry.unprotected_without_module().size(), 20u);
  EXPECT_EQ(w->registry.size(), 44u);  // + 15 protected
}

TEST(NtWorld, SamIsProtected) {
  auto w = nt_registry_world();
  EXPECT_FALSE(w->kernel.uid_can(500, 500, kNtSam, os::Perm::read));
  EXPECT_FALSE(w->kernel.uid_can(500, 500, kNtCritical, os::Perm::write));
}

TEST(NtWorld, AnyUserMayRewriteUnprotectedKeys) {
  auto w = nt_registry_world();
  for (const auto& key : w->registry.unprotected_keys())
    EXPECT_TRUE(w->registry.attacker_set_value(666, key.path, "pwn"))
        << key.path;
  for (int i = 1; i <= 15; ++i) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "HKLM/Secure/Protected%02d", i);
    EXPECT_FALSE(w->registry.attacker_set_value(666, buf, "pwn")) << buf;
  }
}

TEST(NtModules, NineModulesCrossReferenced) {
  auto mods = nt_modules();
  ASSERT_EQ(mods.size(), 9u);
  auto w = nt_registry_world();
  for (const auto& m : mods) {
    const reg::Key* key = w->registry.find(m.key);
    ASSERT_NE(key, nullptr) << m.key;
    EXPECT_EQ(key->used_by_module, m.module);
    EXPECT_TRUE(key->acl.everyone_write);
  }
}

class NtModuleCase : public ::testing::TestWithParam<std::string> {};

TEST_P(NtModuleCase, BenignRunIsClean) {
  Campaign c(nt_module_scenario(GetParam()));
  auto r = c.execute();
  EXPECT_TRUE(r.benign_violations.empty())
      << GetParam() << "\n" << core::render_report(r);
}

TEST_P(NtModuleCase, ValueTamperExploitsTheModule) {
  // The paper's attack shape: any user rewrites the key; the privileged
  // module then acts on the attacker-chosen value.
  auto s = nt_module_scenario(GetParam());
  Campaign c(std::move(s));
  auto r = c.execute();
  bool tamper_or_indirect_violation = false;
  for (const auto& i : r.injections) {
    if (!i.violated) continue;
    if (i.fault_name == "regkey-value-tamper" ||
        i.kind == core::FaultKind::indirect)
      tamper_or_indirect_violation = true;
  }
  EXPECT_TRUE(tamper_or_indirect_violation) << core::render_report(r);
}

TEST_P(NtModuleCase, ExploitableByAnyLocalUser) {
  Campaign c(nt_module_scenario(GetParam()));
  auto r = c.execute();
  ASSERT_FALSE(r.exploitable().empty()) << core::render_report(r);
}

INSTANTIATE_TEST_SUITE_P(AllNine, NtModuleCase,
                         ::testing::Values("fontcleanup", "logonprofile",
                                           "screensaver", "helpviewer",
                                           "wallpaper", "updater", "spooler",
                                           "aedebug", "tempclean"));

TEST(NtModules, FontCleanupDeletesCriticalFileUnderTamper) {
  auto s = nt_module_scenario("fontcleanup");
  auto w = s.build();
  // The attack, replayed concretely (not via the injector): mallory
  // rewrites the key, the admin-run module then deletes critical.ini.
  ASSERT_TRUE(w->registry.attacker_set_value(
      666, "HKLM/Software/FontCleanupList", kNtCritical));
  EXPECT_EQ(s.run(*w), 0);
  EXPECT_EQ(w->kernel.peek(kNtCritical).error(), Err::noent);
}

TEST(NtModules, LogonProfileRunsAttackerScriptUnderTamper) {
  auto s = nt_module_scenario("logonprofile");
  auto w = s.build();
  ASSERT_TRUE(w->registry.attacker_set_value(
      666, "HKLM/Software/LogonProfileDir", "/tmp/attacker/profile"));
  EXPECT_EQ(s.run(*w), 0);
  EXPECT_TRUE(ep::contains(w->kernel.console(), "evil: payload running"));
}

TEST(NtModules, HelpViewerDisclosesSamUnderTamper) {
  auto s = nt_module_scenario("helpviewer");
  auto w = s.build();
  ASSERT_TRUE(w->registry.attacker_set_value(
      666, "HKLM/Software/HelpViewerFile", kNtSam));
  EXPECT_EQ(s.run(*w), 0);
  EXPECT_TRUE(ep::contains(w->kernel.console(), "SECRET-NT-PASSWORD-HASHES"));
}

TEST(NtModules, TempcleanWipesSystem32UnderTamper) {
  auto s = nt_module_scenario("tempclean");
  auto w = s.build();
  ASSERT_TRUE(w->registry.attacker_set_value(
      666, "HKLM/Software/TempCleanupDir", "/winnt/system32"));
  EXPECT_EQ(s.run(*w), 0);
  EXPECT_EQ(w->kernel.peek(kNtCritical).error(), Err::noent);
}

TEST(NtModules, WallpaperOverflowsOnLongKeyValue) {
  // The value is a path copied into a fixed buffer unchecked; the
  // change-length indirect fault smashes it.
  auto s = nt_module_scenario("wallpaper");
  Campaign c(std::move(s));
  auto r = c.execute();
  bool overflow = false;
  for (const auto& i : r.injections)
    for (const auto& v : i.violations)
      if (v.policy == core::Policy::memory_safety) overflow = true;
  EXPECT_TRUE(overflow) << core::render_report(r);
}

TEST(NtModules, AeDebugRunsAttackerDebuggerUnderTamper) {
  auto s = nt_module_scenario("aedebug");
  auto w = s.build();
  ASSERT_TRUE(w->registry.attacker_set_value(666, "HKLM/Software/AeDebugCommand",
                                             "/tmp/attacker/evil"));
  EXPECT_EQ(s.run(*w), 0);
  EXPECT_TRUE(ep::contains(w->kernel.console(), "evil: payload running"));
}

TEST(NtModules, UpdaterKeyTrustPerturbationFlagged) {
  auto s = nt_module_scenario("updater");
  core::SiteSpec one;
  one.faults = {"regkey-trustability"};
  s.sites["regread-logpath"] = one;
  Campaign c(std::move(s));
  CampaignOptions opts;
  opts.only_sites = {"regread-logpath"};
  auto r = c.execute(opts);
  ASSERT_EQ(r.n(), 1);
  ASSERT_TRUE(r.injections[0].violated);
  EXPECT_EQ(r.injections[0].violations[0].policy, core::Policy::trust);
}

TEST(NtModules, RemovedKeyFailsClosedEverywhere) {
  // regkey-existence: every module must refuse, not act on garbage.
  for (const auto& m : nt_modules()) {
    auto s = nt_module_scenario(m.module);
    std::string read_site;
    {
      // Discover the module's regread site tag from a trace.
      Campaign probe(s);
      core::CampaignOptions discovery;
      discovery.only_sites = {"--none--"};
      auto tr = probe.execute(discovery);
      for (const auto& p : tr.points)
        if (p.call == "regread") read_site = p.site.tag;
    }
    ASSERT_FALSE(read_site.empty()) << m.module;
    core::SiteSpec one;
    one.faults = {"regkey-existence"};
    s.sites[read_site] = one;
    Campaign c(std::move(s));
    CampaignOptions opts;
    opts.only_sites = {read_site};
    auto r = c.execute(opts);
    ASSERT_EQ(r.n(), 1) << m.module;
    EXPECT_FALSE(r.injections[0].violated) << m.module;
  }
}

TEST(NtModules, ProtectingTheAclIsBenign) {
  // regkey-acl flips everyone-write off: the module still reads the
  // benign value — tolerated (the fix, not an attack).
  auto s = nt_module_scenario("fontcleanup");
  core::SiteSpec one;
  one.faults = {"regkey-acl"};
  s.sites["regread-fontlist"] = one;
  Campaign c(std::move(s));
  CampaignOptions opts;
  opts.only_sites = {"regread-fontlist"};
  auto r = c.execute(opts);
  ASSERT_EQ(r.n(), 1);
  EXPECT_FALSE(r.injections[0].violated);
}

TEST(NtModules, UnknownKeysAreNotPerturbable) {
  // "we have not been able to perturb the modules that used the other 20
  // keys" — they have no cross-referenced module, hence no scenario.
  auto w = nt_registry_world();
  for (const auto& key : w->registry.unprotected_without_module())
    EXPECT_TRUE(key.used_by_module.empty());
}

}  // namespace
}  // namespace ep::apps
