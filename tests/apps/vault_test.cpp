// The TOCTTOU demonstration: injecting the dangerous condition between
// check and use (the dynamic answer to Bishop-Dilger's static analysis).
#include "apps/vault.hpp"

#include <gtest/gtest.h>

#include "core/injector.hpp"
#include "core/report.hpp"
#include "os/world.hpp"
#include "util/strings.hpp"

namespace ep::apps {
namespace {

using core::Campaign;
using core::CampaignOptions;

TEST(Vault, BenignAppendWorks) {
  auto s = vault_scenario();
  auto w = s.build();
  EXPECT_EQ(s.run(*w), 0);
  EXPECT_TRUE(ep::contains(w->kernel.peek("/tmp/ledger").value(),
                           "note from alice"));
}

TEST(Vault, BenignRunOfBothVariantsClean) {
  for (auto scenario : {vault_scenario(), vault_fixed_scenario()}) {
    Campaign c(std::move(scenario));
    CampaignOptions opts;
    opts.only_sites = {"definitely-no-such-site"};
    auto r = c.execute(opts);
    EXPECT_TRUE(r.benign_violations.empty()) << core::render_report(r);
  }
}

TEST(Vault, ChecksStopAttacksAtCheckTime) {
  // Perturbation at the CHECK site: access() sees the perturbed state and
  // refuses — even the vulnerable build tolerates these.
  Campaign c(vault_scenario());
  CampaignOptions opts;
  opts.only_sites = {kVaultCheck};
  auto r = c.execute(opts);
  for (const auto& i : r.injections) {
    if (i.fault_name == "symbolic-link" ||
        i.fault_name == "file-permission") {
      EXPECT_FALSE(i.violated) << i.fault_name;
    }
  }
}

TEST(Vault, RaceWindowExploitableAtUseSite) {
  // Perturbation at the USE site fires *after* the access() check passed:
  // the injected symlink sends the privileged append into /etc/passwd.
  auto s = vault_scenario();
  core::SiteSpec one;
  one.faults = {"symbolic-link"};
  s.sites[kVaultUse] = one;
  Campaign c(std::move(s));
  CampaignOptions opts;
  opts.only_sites = {kVaultUse};
  auto r = c.execute(opts);
  ASSERT_EQ(r.n(), 1);
  EXPECT_TRUE(r.injections[0].violated) << core::render_report(r);
  EXPECT_EQ(r.injections[0].violations[0].policy, core::Policy::integrity);
  // And the race is feasible for any local user: /tmp is world-writable.
  EXPECT_TRUE(r.injections[0].exploit.nonroot_feasible);
}

TEST(Vault, FixedBuildClosesTheWindow) {
  auto s = vault_fixed_scenario();
  core::SiteSpec one;
  one.faults = {"symbolic-link"};
  s.sites[kVaultUse] = one;
  Campaign c(std::move(s));
  CampaignOptions opts;
  opts.only_sites = {kVaultUse};
  auto r = c.execute(opts);
  ASSERT_EQ(r.n(), 1);
  EXPECT_FALSE(r.injections[0].violated) << core::render_report(r);
}

TEST(Vault, FullCampaignComparison) {
  Campaign vulnerable(vault_scenario());
  Campaign fixed(vault_fixed_scenario());
  auto rv = vulnerable.execute();
  auto rf = fixed.execute();
  EXPECT_GT(rv.violation_count(), 0);
  EXPECT_LT(rf.violation_count(), rv.violation_count());
  EXPECT_EQ(rf.violation_count(), 0) << core::render_report(rf);
}

TEST(Vault, ManualRaceReplay) {
  // The attack as mallory would run it, without the injector: swap the
  // ledger for a link in the window between vault's check and use. Here
  // we pre-plant the link and point access() at a decoy the check passes:
  // simplest faithful equivalent in a single-threaded simulation is the
  // injector itself, so this replay just confirms the end state of the
  // campaign's winning run.
  auto s = vault_scenario();
  auto w = s.build();
  core::FaultRef fault;
  fault.kind = core::FaultKind::direct;
  fault.direct = core::FaultCatalog::standard().find_direct("symbolic-link");
  auto injector = std::make_shared<core::Injector>(
      *w, os::Site{"vault.c", 30, kVaultUse}, fault, s.hints);
  w->kernel.add_interposer(injector);
  std::string before = w->kernel.peek("/etc/passwd").value();
  (void)s.run(*w);
  EXPECT_NE(w->kernel.peek("/etc/passwd").value(), before);
  EXPECT_TRUE(ep::contains(w->kernel.peek("/etc/passwd").value(),
                           "note from alice"));
}

}  // namespace
}  // namespace ep::apps
