// Daemon scenarios: Table 6 network and process rows end to end.
#include "apps/daemons.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/report.hpp"
#include "util/strings.hpp"

namespace ep::apps {
namespace {

using core::Campaign;
using core::CampaignOptions;

std::set<std::string> violated_faults(const core::CampaignResult& r) {
  std::set<std::string> out;
  for (const auto& i : r.injections)
    if (i.violated) out.insert(i.site.tag + "/" + i.fault_name);
  return out;
}

TEST(Logind, BenignLoginGranted) {
  auto s = logind_scenario();
  auto w = s.build();
  EXPECT_EQ(s.run(*w), 0);
  EXPECT_TRUE(ep::contains(w->kernel.console(), "login granted"));
}

TEST(Logind, BenignRunHasNoViolations) {
  Campaign c(logind_scenario());
  auto r = c.execute();
  EXPECT_TRUE(r.benign_violations.empty()) << core::render_report(r);
}

TEST(Logind, DiscoversFourInteractionPoints) {
  Campaign c(logind_scenario());
  auto r = c.execute();
  EXPECT_EQ(r.points.size(), 4u) << core::render_report(r);
}

TEST(Logind, VulnerableBuildFailsTheCatalog) {
  Campaign c(logind_scenario());
  auto r = c.execute();
  auto v = violated_faults(r);
  // Spoofed message accepted.
  EXPECT_TRUE(v.count("logind-recv/message-authenticity"));
  // Out-of-order protocol accepted (reorder and extra step).
  EXPECT_TRUE(v.count("logind-recv/protocol-reorder"));
  EXPECT_TRUE(v.count("logind-recv/protocol-extra-step"));
  // Shared socket ignored.
  EXPECT_TRUE(v.count("logind-accept/socket-share"));
  // Fail-open when the auth service is down; untrusted authority trusted.
  EXPECT_TRUE(v.count("logind-query-authsvc/service-availability"));
  EXPECT_TRUE(v.count("logind-query-authsvc/entity-trustability"));
  // Oversized packet smashes the parse buffer.
  EXPECT_TRUE(v.count("logind-recv/packet-change-size"));
}

TEST(Logind, OmittedAuthStepToleratedByAccident) {
  // Dropping the AUTH step removes the credentials; even the vulnerable
  // build has nothing to grant on.
  auto s = logind_scenario();
  core::SiteSpec one;
  one.faults = {"protocol-omit-step"};
  s.sites[kLogindRecv] = one;
  Campaign c(std::move(s));
  CampaignOptions opts;
  opts.only_sites = {kLogindRecv};
  auto r = c.execute(opts);
  ASSERT_EQ(r.n(), 1);
  EXPECT_FALSE(r.injections[0].violated);
}

TEST(Logind, HardenedBuildToleratesEverything) {
  Campaign c(logind_hardened_scenario());
  auto r = c.execute();
  EXPECT_TRUE(r.benign_violations.empty()) << core::render_report(r);
  EXPECT_EQ(r.violation_count(), 0) << core::render_report(r);
  EXPECT_DOUBLE_EQ(r.fault_coverage(), 1.0);
  EXPECT_EQ(r.region(), core::AdequacyRegion::point4_adequate_secure);
}

TEST(Logind, VulnerableLandsInInsecureRegion) {
  Campaign c(logind_scenario());
  auto r = c.execute();
  EXPECT_EQ(r.region(), core::AdequacyRegion::point3_insecure)
      << "fault coverage " << r.fault_coverage();
}

TEST(Netcpd, BenignServesPublicFile) {
  auto s = netcpd_scenario();
  auto w = s.build();
  EXPECT_EQ(s.run(*w), 0);
  EXPECT_TRUE(ep::contains(w->kernel.console(), "served readme.txt"));
}

TEST(Netcpd, CampaignFindings) {
  Campaign c(netcpd_scenario());
  auto r = c.execute();
  EXPECT_TRUE(r.benign_violations.empty()) << core::render_report(r);
  auto v = violated_faults(r);
  // Request parser smash; DNS reply smash; spoofed/shared/untrusted peers.
  EXPECT_TRUE(v.count("netcpd-recv-request/packet-change-size"));
  EXPECT_TRUE(v.count("netcpd-resolve-host/dns-change-length"));
  EXPECT_TRUE(v.count("netcpd-recv-request/message-authenticity"));
  EXPECT_TRUE(v.count("netcpd-recv-request/socket-share"));
  // Symlinked public file discloses the secret over the network.
  EXPECT_TRUE(v.count("netcpd-open-file/symbolic-link"));
}

TEST(Netcpd, MalformedDnsReplyFailsClosed) {
  auto s = netcpd_scenario();
  Campaign c(std::move(s));
  CampaignOptions opts;
  opts.only_sites = {kNetcpdDns};
  auto r = c.execute(opts);
  ASSERT_EQ(r.n(), 2);
  for (const auto& i : r.injections) {
    if (i.fault_name == "dns-bad-format") {
      EXPECT_FALSE(i.violated);
    }
  }
}

TEST(Cronhelpd, BenignAppliesSchedule) {
  auto s = cronhelpd_scenario();
  auto w = s.build();
  EXPECT_EQ(s.run(*w), 0);
  EXPECT_TRUE(ep::contains(w->kernel.console(), "schedule applied"));
}

TEST(Cronhelpd, ProcessEntityFaultsDetected) {
  Campaign c(cronhelpd_scenario());
  auto r = c.execute();
  EXPECT_TRUE(r.benign_violations.empty()) << core::render_report(r);
  auto v = violated_faults(r);
  // Spoofed IPC job accepted; fail-open on missing keymaster; untrusted
  // keymaster trusted; oversized job smashes the buffer.
  EXPECT_TRUE(v.count("cron-recv-job/proc-message-authenticity"));
  EXPECT_TRUE(v.count("cron-query-keymaster/proc-availability"));
  EXPECT_TRUE(v.count("cron-query-keymaster/proc-trustability"));
  EXPECT_TRUE(v.count("cron-recv-job/msg-change-length"));
}

TEST(Cronhelpd, IpcChannelKindDrivesProcessFaults) {
  Campaign c(cronhelpd_scenario());
  auto r = c.execute();
  for (const auto& p : r.points) {
    EXPECT_EQ(p.channel_kind, "ipc") << p.site.tag;
  }
  // Process-entity faults (not network ones) were planned.
  bool saw_proc_fault = false;
  for (const auto& i : r.injections)
    if (ep::starts_with(i.fault_name, "proc-")) saw_proc_fault = true;
  EXPECT_TRUE(saw_proc_fault);
}

}  // namespace
}  // namespace ep::apps
