// lpr behaviour: benign run, and the Section 3.4 walkthrough fault by
// fault.
#include "apps/lpr.hpp"

#include <gtest/gtest.h>

#include "core/injector.hpp"
#include "core/report.hpp"
#include "util/strings.hpp"

namespace ep::apps {
namespace {

using core::Campaign;
using core::CampaignOptions;

TEST(Lpr, BenignRunQueuesJob) {
  auto s = lpr_scenario();
  auto w = s.build();
  int rc = s.run(*w);
  EXPECT_EQ(rc, 0);
  EXPECT_TRUE(ep::contains(w->kernel.console(), "lpr: job queued"));
  EXPECT_TRUE(w->kernel.peek(kLprSpoolFile).ok());
}

TEST(Lpr, BenignSpoolFileContainsJob) {
  auto s = lpr_scenario();
  auto w = s.build();
  (void)s.run(*w);
  EXPECT_TRUE(ep::contains(w->kernel.peek(kLprSpoolFile).value(),
                           "job(alice): report.txt"));
}

TEST(Lpr, ScenarioDocumentsInapplicableFaults) {
  auto s = lpr_scenario();
  const auto& spec = s.sites.at(kLprCreateTag);
  EXPECT_EQ(spec.faults.size(), 4u);
  EXPECT_EQ(spec.not_applicable.size(), 3u);
  EXPECT_TRUE(spec.not_applicable.count("content-invariance"));
}

class LprFaults : public ::testing::TestWithParam<const char*> {};

TEST_P(LprFaults, EachAttributePerturbationViolates) {
  auto s = lpr_scenario();
  core::SiteSpec one;
  one.faults = {GetParam()};
  s.sites[kLprCreateTag] = one;
  Campaign c(std::move(s));
  CampaignOptions opts;
  opts.only_sites = {kLprCreateTag};
  auto r = c.execute(opts);
  ASSERT_EQ(r.n(), 1);
  EXPECT_TRUE(r.injections[0].violated)
      << GetParam() << "\n" << core::render_report(r);
  EXPECT_EQ(r.injections[0].violations[0].policy, core::Policy::integrity);
}

INSTANTIATE_TEST_SUITE_P(Section34, LprFaults,
                         ::testing::Values("file-existence", "file-ownership",
                                           "file-permission",
                                           "symbolic-link"));

TEST(Lpr, SymlinkPerturbationClobbersPasswd) {
  // One manual injection run so the world can be inspected afterwards.
  auto s = lpr_scenario();
  auto w = s.build();
  core::FaultRef fault;
  fault.kind = core::FaultKind::direct;
  fault.direct = core::FaultCatalog::standard().find_direct("symbolic-link");
  ASSERT_NE(fault.direct, nullptr);
  os::Site site{"lpr.c", 42, kLprCreateTag};
  auto injector =
      std::make_shared<core::Injector>(*w, site, fault, s.hints);
  auto oracle = std::make_shared<core::SecurityOracle>(s.policy);
  w->kernel.add_interposer(injector);
  w->kernel.add_interposer(oracle);
  (void)s.run(*w);
  ASSERT_TRUE(injector->fired());
  ASSERT_TRUE(oracle->violated());
  // lpr wrote its job into /etc/passwd through the planted link.
  EXPECT_TRUE(
      ep::contains(w->kernel.peek("/etc/passwd").value(), "job(alice)"));
}

TEST(Lpr, WriteSitePerturbationsTolerated) {
  // The write goes through the already-open descriptor; perturbing the
  // path at the write site cannot redirect it.
  Campaign c(lpr_scenario());
  CampaignOptions opts;
  opts.only_sites = {kLprWriteTag};
  auto r = c.execute(opts);
  EXPECT_GT(r.n(), 0);
  EXPECT_EQ(r.violation_count(), 0) << core::render_report(r);
}

TEST(Lpr, FullCampaignMetrics) {
  Campaign c(lpr_scenario());
  CampaignOptions opts;
  opts.only_sites = {kLprCreateTag};
  auto r = c.execute(opts);
  EXPECT_DOUBLE_EQ(r.fault_coverage(), 0.0);       // 0 of 4 tolerated
  EXPECT_DOUBLE_EQ(r.vulnerability_score(), 1.0);  // rho = 4/4
  EXPECT_EQ(r.region(), core::AdequacyRegion::point3_insecure);
}

}  // namespace
}  // namespace ep::apps
