// journald: the permission-mask fault (Table 5, environment variable).
#include "apps/journald.hpp"

#include <gtest/gtest.h>

#include "core/report.hpp"
#include "util/strings.hpp"

namespace ep::apps {
namespace {

using core::Campaign;
using core::CampaignOptions;

TEST(Journald, BenignJournalIsGroupOtherReadOnly) {
  auto s = journald_scenario();
  auto w = s.build();
  EXPECT_EQ(s.run(*w), 0);
  auto r = w->kernel.vfs().resolve(kJournaldPath, "/", os::kRootUid, 0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(w->kernel.vfs().inode(r.value()).mode & 0777, 0644u);
}

TEST(Journald, BenignRunHasNoViolations) {
  Campaign c(journald_scenario());
  auto r = c.execute();
  EXPECT_TRUE(r.benign_violations.empty()) << core::render_report(r);
}

TEST(Journald, MaskSemanticInferredFromVariableName) {
  Campaign c(journald_scenario());
  auto r = c.execute();
  bool found = false;
  for (const auto& p : r.points)
    if (p.site.tag == kJournaldGetMask) {
      found = true;
      EXPECT_EQ(p.semantic, core::InputSemantic::permission_mask);
    }
  EXPECT_TRUE(found);
}

TEST(Journald, MaskZeroFaultYieldsWorldWritableJournal) {
  Campaign c(journald_scenario());
  CampaignOptions opts;
  opts.only_sites = {kJournaldGetMask};
  auto r = c.execute(opts);
  ASSERT_EQ(r.n(), 1);  // the mask row has exactly one injection
  EXPECT_EQ(r.injections[0].fault_name, "mask-zero");
  ASSERT_TRUE(r.injections[0].violated) << core::render_report(r);
  EXPECT_EQ(r.injections[0].violations[0].policy, core::Policy::integrity);
  EXPECT_TRUE(ep::contains(r.injections[0].violations[0].detail,
                           "world-writable"));
}

TEST(Journald, MaskFaultIsInvokerFeasible) {
  Campaign c(journald_scenario());
  CampaignOptions opts;
  opts.only_sites = {kJournaldGetMask};
  auto r = c.execute(opts);
  ASSERT_TRUE(r.injections[0].violated);
  EXPECT_TRUE(r.injections[0].exploit.nonroot_feasible);
  EXPECT_EQ(r.injections[0].exploit.actor, "invoking user");
}

TEST(Journald, ManualMaskZeroReplay) {
  auto s = journald_scenario();
  auto w = s.build();
  auto r = w->kernel.spawn("/usr/sbin/journald", {"journald"}, 1000, 1000,
                           {{"UMASK", "0"}}, "/home");
  ASSERT_TRUE(r.ok());
  auto ino = w->kernel.vfs().resolve(kJournaldPath, "/", os::kRootUid, 0);
  ASSERT_TRUE(ino.ok());
  // Mask 0 left the journal writable by everyone: mallory can now forge
  // audit entries.
  EXPECT_TRUE(w->kernel.uid_can(666, 666, kJournaldPath, os::Perm::write));
}

TEST(Journald, GarbageMaskFallsBack) {
  auto s = journald_scenario();
  auto w = s.build();
  auto r = w->kernel.spawn("/usr/sbin/journald", {"journald"}, 1000, 1000,
                           {{"UMASK", "not-octal"}}, "/home");
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(w->kernel.uid_can(666, 666, kJournaldPath, os::Perm::write));
}

}  // namespace
}  // namespace ep::apps
