// turnin behaviour: benign flows, validation logic, and per-fault
// outcomes at each of the 8 interaction points.
#include "apps/turnin.hpp"

#include <gtest/gtest.h>

#include "core/report.hpp"
#include "os/world.hpp"
#include "util/strings.hpp"

namespace ep::apps {
namespace {

using core::Campaign;
using core::CampaignOptions;

int run_turnin(core::TargetWorld& w, std::vector<std::string> args,
               os::Uid uid = 1000) {
  auto r = w.kernel.spawn("/usr/bin/turnin", std::move(args), uid, uid, {},
                          "/home/alice");
  return r.ok() ? r.value() : 255;
}

TEST(Turnin, ListModePrintsProjects) {
  auto s = turnin_scenario();
  auto w = s.build();
  EXPECT_EQ(run_turnin(*w, {"turnin", "-c", "cs390", "-l"}), 0);
  EXPECT_TRUE(ep::contains(w->kernel.console(), "proj1"));
  EXPECT_TRUE(ep::contains(w->kernel.console(), "proj3"));
}

TEST(Turnin, SubmitCopiesFileIntoSubmitDir) {
  auto s = turnin_scenario();
  auto w = s.build();
  EXPECT_EQ(
      run_turnin(*w, {"turnin", "-c", "cs390", "-p", "proj1", "hw1.c"}), 0);
  auto stored = w->kernel.peek("/home/ta/submit/hw1.c");
  ASSERT_TRUE(stored.ok());
  EXPECT_EQ(stored.value(), "int main() { return 42; }\n");
  EXPECT_TRUE(ep::contains(w->kernel.console(), "submitted 1 file(s)"));
}

TEST(Turnin, UnknownCourseRejected) {
  auto s = turnin_scenario();
  auto w = s.build();
  EXPECT_EQ(run_turnin(*w, {"turnin", "-c", "nosuch", "-l"}), 3);
}

TEST(Turnin, IllegalCourseNameRejected) {
  auto s = turnin_scenario();
  auto w = s.build();
  EXPECT_EQ(run_turnin(*w, {"turnin", "-c", "../cs390", "-l"}), 2);
}

TEST(Turnin, UnknownProjectRejected) {
  auto s = turnin_scenario();
  auto w = s.build();
  EXPECT_EQ(
      run_turnin(*w, {"turnin", "-c", "cs390", "-p", "ghost", "hw1.c"}), 4);
}

TEST(Turnin, AbsoluteFileNameRejected) {
  auto s = turnin_scenario();
  auto w = s.build();
  EXPECT_EQ(run_turnin(*w, {"turnin", "-c", "cs390", "-p", "proj1",
                            "/etc/shadow"}),
            6);
}

TEST(Turnin, EmbeddedSlashRejected) {
  auto s = turnin_scenario();
  auto w = s.build();
  EXPECT_EQ(run_turnin(*w, {"turnin", "-c", "cs390", "-p", "proj1",
                            "sub/hw1.c"}),
            6);
}

TEST(Turnin, UnreadableSourceRejected) {
  auto s = turnin_scenario();
  auto w = s.build();
  os::world::put_file(w->kernel, "/home/alice/secret.c", "x", 200, 200, 0600);
  EXPECT_EQ(run_turnin(*w, {"turnin", "-c", "cs390", "-p", "proj1",
                            "secret.c"}),
            7);
}

TEST(Turnin, MissingArgsPrintUsage) {
  auto s = turnin_scenario();
  auto w = s.build();
  EXPECT_EQ(run_turnin(*w, {"turnin"}), 1);
  EXPECT_TRUE(ep::contains(w->kernel.console(), "usage:"));
}

// --- THE BUG (vulnerable build): validate stripped, use original ---------

TEST(Turnin, DotDotNameEscapesSubmitDir) {
  auto s = turnin_scenario();
  auto w = s.build();
  EXPECT_EQ(run_turnin(*w, {"turnin", "-c", "cs390", "-p", "proj1",
                            "../hw1.c"}),
            0);
  // The copy landed one level above the submit dir.
  EXPECT_TRUE(w->kernel.peek("/home/ta/hw1.c").ok());
  EXPECT_FALSE(w->kernel.peek("/home/ta/submit/../hw1.c.orig").ok());
}

TEST(Turnin, HardenedRejectsDotDotName) {
  auto s = turnin_hardened_scenario();
  auto w = s.build();
  EXPECT_EQ(run_turnin(*w, {"turnin", "-c", "cs390", "-p", "proj1",
                            "../hw1.c"}),
            6);
  EXPECT_FALSE(w->kernel.peek("/home/ta/hw1.c").ok());
}

// --- campaign outcomes per interaction point ------------------------------

struct SiteExpectation {
  const char* tag;
  int injections;
  int violations;
};

class TurninSites : public ::testing::TestWithParam<SiteExpectation> {};

TEST_P(TurninSites, PerSiteInjectionAndViolationCounts) {
  const auto& e = GetParam();
  Campaign c(turnin_scenario());
  CampaignOptions opts;
  opts.only_sites = {e.tag};
  auto r = c.execute(opts);
  EXPECT_EQ(r.n(), e.injections) << core::render_report(r);
  EXPECT_EQ(r.violation_count(), e.violations) << core::render_report(r);
}

INSTANTIATE_TEST_SUITE_P(
    Section41, TurninSites,
    ::testing::Values(SiteExpectation{kTurninOpenConfig, 5, 2},
                      SiteExpectation{kTurninOpenProjlist, 6, 2},
                      SiteExpectation{kTurninGetenvPath, 5, 0},
                      SiteExpectation{kTurninArgCourse, 5, 0},
                      SiteExpectation{kTurninArgFile, 5, 1},
                      SiteExpectation{kTurninOpenSource, 5, 0},
                      SiteExpectation{kTurninCreateDest, 5, 4},
                      SiteExpectation{kTurninExecTar, 5, 0}),
    [](const auto& info) {
      std::string name = info.param.tag;
      for (char& ch : name)
        if (ch == '-') ch = '_';
      return name;
    });

TEST(TurninCampaign, ProjlistPermissionViolationIsConfidentiality) {
  auto s = turnin_scenario();
  core::SiteSpec one;
  one.faults = {"file-permission"};
  s.sites[kTurninOpenProjlist] = one;
  Campaign c(std::move(s));
  CampaignOptions opts;
  opts.only_sites = {kTurninOpenProjlist};
  auto r = c.execute(opts);
  ASSERT_EQ(r.violation_count(), 1);
  EXPECT_EQ(r.injections[0].violations[0].policy,
            core::Policy::confidentiality);
}

TEST(TurninCampaign, ProjlistViolationsAreTaFeasible) {
  Campaign c(turnin_scenario());
  CampaignOptions opts;
  opts.only_sites = {kTurninOpenProjlist};
  auto r = c.execute(opts);
  for (const auto& i : r.injections) {
    if (!i.violated) continue;
    EXPECT_TRUE(i.exploit.nonroot_feasible) << i.fault_name;
    EXPECT_TRUE(ep::contains(i.exploit.actor, "ta")) << i.exploit.actor;
  }
}

TEST(TurninCampaign, ConfigViolationsAreRootOnly) {
  // turnin.cf lives in root-owned space: the assumption is reasonable.
  Campaign c(turnin_scenario());
  CampaignOptions opts;
  opts.only_sites = {kTurninOpenConfig};
  auto r = c.execute(opts);
  int violated = 0;
  for (const auto& i : r.injections) {
    if (!i.violated) continue;
    ++violated;
    EXPECT_FALSE(i.exploit.nonroot_feasible) << i.fault_name;
  }
  EXPECT_EQ(violated, 2);
}

TEST(TurninCampaign, ExecTarToleratedViaDescriptorPinning) {
  Campaign c(turnin_scenario());
  CampaignOptions opts;
  opts.only_sites = {kTurninExecTar};
  auto r = c.execute(opts);
  for (const auto& i : r.injections)
    EXPECT_FALSE(i.violated) << i.fault_name << "\n"
                             << core::render_report(r);
}

TEST(TurninCampaign, HardenedStopsProjlistAndDestFaults) {
  Campaign c(turnin_hardened_scenario());
  CampaignOptions opts;
  opts.only_sites = {kTurninOpenProjlist, kTurninCreateDest, kTurninArgFile};
  auto r = c.execute(opts);
  EXPECT_EQ(r.violation_count(), 0) << core::render_report(r);
}

}  // namespace
}  // namespace ep::apps
