// mailer behaviour: benign delivery plus the three indirect failure modes
// (overflow, traversal, PATH hijack) and the spool-attribute faults.
#include "apps/mailer.hpp"

#include <gtest/gtest.h>

#include "core/report.hpp"
#include "util/strings.hpp"

namespace ep::apps {
namespace {

using core::Campaign;
using core::CampaignOptions;

TEST(Mailer, BenignDeliveryCreatesMailbox) {
  auto s = mailer_scenario();
  auto w = s.build();
  int rc = s.run(*w);
  EXPECT_EQ(rc, 0);
  EXPECT_TRUE(ep::contains(w->kernel.peek("/var/spool/mail/bob").value(),
                           "From alice"));
  EXPECT_TRUE(ep::contains(w->kernel.console(), "sendmail: delivered"));
}

TEST(Mailer, BenignRunHasNoViolations) {
  Campaign c(mailer_scenario());
  auto r = c.execute();
  EXPECT_TRUE(r.benign_violations.empty()) << core::render_report(r);
}

TEST(Mailer, LongRecipientOverflowsUncheckedBuffer) {
  auto s = mailer_scenario();
  auto w = s.build();
  std::string huge(4096, 'A');
  auto r = w->kernel.spawn("/usr/bin/mailer", {"mailer", huge}, 1000, 1000,
                           {}, "/home");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 139);  // crashed
}

TEST(Mailer, DotDotRecipientEscapesSpool) {
  auto s = mailer_scenario();
  auto w = s.build();
  auto r = w->kernel.spawn("/usr/bin/mailer", {"mailer", "../cron.d"}, 1000,
                           1000, {}, "/home");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(w->kernel.peek("/var/spool/cron.d").ok());
}

TEST(Mailer, PathHijackRunsAttackerSendmail) {
  auto s = mailer_scenario();
  auto w = s.build();
  auto r = w->kernel.spawn("/usr/bin/mailer", {"mailer", "bob"}, 1000, 1000,
                           {{"PATH", "/tmp/attacker:/bin"}}, "/home");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(ep::contains(w->kernel.console(), "evil: payload running"));
  // The payload ran with mailer's root privilege and hit /etc/passwd.
  EXPECT_TRUE(
      ep::contains(w->kernel.peek("/etc/passwd").value(), "mallory::0:0"));
}

TEST(Mailer, CampaignFindsAllThreeIndirectFlaws) {
  Campaign c(mailer_scenario());
  auto r = c.execute();
  std::set<std::string> violated;
  for (const auto& i : r.injections)
    if (i.violated) violated.insert(i.fault_name);
  EXPECT_TRUE(violated.count("change-length"));         // overflow
  EXPECT_TRUE(violated.count("insert-dotdot"));         // traversal
  EXPECT_TRUE(violated.count("path-insert-untrusted")); // PATH hijack
}

TEST(Mailer, CampaignFindsSpoolAttributeFlaws) {
  Campaign c(mailer_scenario());
  CampaignOptions opts;
  opts.only_sites = {kMailerCreateSpool};
  auto r = c.execute(opts);
  EXPECT_EQ(r.n(), 4);
  EXPECT_EQ(r.violation_count(), 4) << core::render_report(r);
}

TEST(Mailer, ExecSitePartiallyDefended) {
  Campaign c(mailer_scenario());
  CampaignOptions opts;
  opts.only_sites = {kMailerExec};
  auto r = c.execute(opts);
  std::set<std::string> violated;
  for (const auto& i : r.injections)
    if (i.violated) violated.insert(i.fault_name);
  // Ownership and symlink swaps go unnoticed (mailer never checks)...
  EXPECT_TRUE(violated.count("file-ownership"));
  EXPECT_TRUE(violated.count("symbolic-link"));
  // ...while existence and permission faults fail closed in the kernel.
  EXPECT_FALSE(violated.count("file-existence"));
  EXPECT_FALSE(violated.count("file-permission"));
}

TEST(Mailer, OverflowViolationIsMemorySafety) {
  auto s = mailer_scenario();
  core::SiteSpec one;
  one.faults = {"change-length"};
  s.sites[kMailerArgRecipient] = one;
  Campaign c(std::move(s));
  CampaignOptions opts;
  opts.only_sites = {kMailerArgRecipient};
  auto r = c.execute(opts);
  ASSERT_EQ(r.violation_count(), 1);
  EXPECT_EQ(r.injections[0].violations[0].policy,
            core::Policy::memory_safety);
  EXPECT_TRUE(r.injections[0].crashed);
}

}  // namespace
}  // namespace ep::apps
