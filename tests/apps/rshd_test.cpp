// rshd: the host-name / command / IP-address semantics of Table 5.
#include <gtest/gtest.h>

#include <set>

#include "apps/daemons.hpp"
#include "core/report.hpp"
#include "util/strings.hpp"

namespace ep::apps {
namespace {

using core::Campaign;
using core::CampaignOptions;

std::set<std::string> violated_faults(const core::CampaignResult& r) {
  std::set<std::string> out;
  for (const auto& i : r.injections)
    if (i.violated) out.insert(i.site.tag + "/" + i.fault_name);
  return out;
}

TEST(Rshd, BenignCommandRuns) {
  auto s = rshd_scenario();
  auto w = s.build();
  EXPECT_EQ(s.run(*w), 0);
  EXPECT_TRUE(ep::contains(w->kernel.console(), "rshd: done for"));
}

TEST(Rshd, BenignRunHasNoViolations) {
  Campaign c(rshd_scenario());
  auto r = c.execute();
  EXPECT_TRUE(r.benign_violations.empty()) << core::render_report(r);
}

TEST(Rshd, DeclaredSemanticsDrivePlanning) {
  Campaign c(rshd_scenario());
  auto r = c.execute();
  std::set<std::string> fault_names;
  for (const auto& i : r.injections) fault_names.insert(i.fault_name);
  // The three Table 5 rows nothing else exercises:
  EXPECT_TRUE(fault_names.count("host-change-length"));
  EXPECT_TRUE(fault_names.count("cmd-insert-shell-meta"));
  EXPECT_TRUE(fault_names.count("ip-change-length"));
}

TEST(Rshd, OversizedHostnameSmashesBuffer) {
  auto s = rshd_scenario();
  core::SiteSpec one;
  one.faults = {"host-change-length"};
  s.sites[kRshdRecvHost] = one;
  Campaign c(std::move(s));
  CampaignOptions opts;
  opts.only_sites = {kRshdRecvHost};
  auto r = c.execute(opts);
  ASSERT_EQ(r.n(), 1);
  ASSERT_TRUE(r.injections[0].violated);
  EXPECT_EQ(r.injections[0].violations[0].policy,
            core::Policy::memory_safety);
}

TEST(Rshd, ShellMetaInCommandRunsAttackerProgram) {
  // "ls;/tmp/attacker/evil" — the first token passes the allowlist, and
  // the validate-first-execute-all dispatch runs the payload too.
  Campaign c(rshd_scenario());
  auto r = c.execute();
  auto v = violated_faults(r);
  EXPECT_TRUE(v.count(std::string(kRshdRecvCmd) + "/cmd-insert-shell-meta"))
      << core::render_report(r);
  EXPECT_TRUE(v.count(std::string(kRshdRecvCmd) + "/cmd-insert-newline"));
}

TEST(Rshd, AbsoluteAndRelativeCommandsRejected) {
  Campaign c(rshd_scenario());
  CampaignOptions opts;
  opts.only_sites = {kRshdRecvCmd};
  auto r = c.execute(opts);
  for (const auto& i : r.injections) {
    if (i.fault_name == "cmd-use-absolute-path" ||
        i.fault_name == "cmd-use-relative-path" ||
        i.fault_name == "cmd-change-length") {
      EXPECT_FALSE(i.violated) << i.fault_name;
    }
  }
}

TEST(Rshd, OversizedResolverAnswerSmashesBuffer) {
  Campaign c(rshd_scenario());
  CampaignOptions opts;
  opts.only_sites = {kRshdDns};
  auto r = c.execute(opts);
  ASSERT_EQ(r.n(), 2);
  auto v = violated_faults(r);
  EXPECT_TRUE(v.count(std::string(kRshdDns) + "/ip-change-length"));
  EXPECT_FALSE(v.count(std::string(kRshdDns) + "/ip-bad-format"));
}

TEST(Rshd, HostsEquivPerturbationsFailClosed) {
  // Every equiv-file fault makes the host lookup miss: rshd refuses.
  Campaign c(rshd_scenario());
  CampaignOptions opts;
  opts.only_sites = {kRshdEquiv};
  auto r = c.execute(opts);
  EXPECT_GT(r.n(), 0);
  EXPECT_EQ(r.violation_count(), 0) << core::render_report(r);
}

TEST(Rshd, ExecSiteOwnershipAndSymlinkExploitable) {
  Campaign c(rshd_scenario());
  CampaignOptions opts;
  opts.only_sites = {kRshdExec};
  auto r = c.execute(opts);
  auto v = violated_faults(r);
  EXPECT_TRUE(v.count(std::string(kRshdExec) + "/file-ownership"));
  EXPECT_TRUE(v.count(std::string(kRshdExec) + "/symbolic-link"));
  EXPECT_FALSE(v.count(std::string(kRshdExec) + "/file-existence"));
}

TEST(Rshd, SpoofedHostMessagePoisonsAuthorization) {
  auto s = rshd_scenario();
  core::SiteSpec one;
  one.faults = {"message-authenticity"};
  s.sites[kRshdRecvHost] = one;
  Campaign c(std::move(s));
  CampaignOptions opts;
  opts.only_sites = {kRshdRecvHost};
  auto r = c.execute(opts);
  ASSERT_EQ(r.n(), 1);
  ASSERT_TRUE(r.injections[0].violated);
  EXPECT_EQ(r.injections[0].violations[0].policy,
            core::Policy::authorization);
}

}  // namespace
}  // namespace ep::apps
