#include "apps/payloads.hpp"

#include <gtest/gtest.h>

#include "os/world.hpp"
#include "util/strings.hpp"

namespace ep::apps {
namespace {

class PayloadTest : public ::testing::Test {
 protected:
  PayloadTest() {
    os::world::standard_unix(k);
    k.add_user(1000, "alice", 1000);
    register_payload_images(k);
    os::world::put_program(k, "/bin/tar", "tar");
    os::world::put_program(k, "/bin/sendmail", "sendmail");
    os::world::put_program(k, "/tmp/evil", "evil", 666, 666, 0755);
  }
  os::Kernel k;
};

TEST_F(PayloadTest, ImagesRegistered) {
  EXPECT_TRUE(k.has_image("tar"));
  EXPECT_TRUE(k.has_image("sendmail"));
  EXPECT_TRUE(k.has_image("evil"));
}

TEST_F(PayloadTest, TarReportsArgCount) {
  auto r = k.spawn("/bin/tar", {"tar", "cf", "x.tar"}, 1000, 1000);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 0);
  EXPECT_TRUE(ep::contains(k.console(), "tar: archived 3 arguments"));
}

TEST_F(PayloadTest, SendmailNamesRecipient) {
  auto r = k.spawn("/bin/sendmail", {"sendmail", "bob"}, 1000, 1000);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(ep::contains(k.console(), "delivered to bob"));
}

TEST_F(PayloadTest, SendmailDefaultsToPostmaster) {
  auto r = k.spawn("/bin/sendmail", {"sendmail"}, 1000, 1000);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(ep::contains(k.console(), "delivered to postmaster"));
}

TEST_F(PayloadTest, EvilWithRootPrivilegeDefacesPasswd) {
  std::string before = k.peek("/etc/passwd").value();
  auto r = k.spawn("/tmp/evil", {"evil"}, os::kRootUid, os::kRootGid);
  ASSERT_TRUE(r.ok());
  EXPECT_NE(k.peek("/etc/passwd").value(), before);
  EXPECT_TRUE(ep::contains(k.console(), "payload running as euid 0"));
}

TEST_F(PayloadTest, EvilWithoutPrivilegeFailsQuietly) {
  std::string before = k.peek("/etc/passwd").value();
  auto r = k.spawn("/tmp/evil", {"evil"}, 1000, 1000);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 0);  // runs, but the passwd write bounced
  EXPECT_EQ(k.peek("/etc/passwd").value(), before);
  EXPECT_TRUE(ep::contains(k.console(), "payload running as euid 1000"));
}

}  // namespace
}  // namespace ep::apps
