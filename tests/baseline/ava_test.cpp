#include "baseline/ava.hpp"

#include <gtest/gtest.h>

#include "apps/lpr.hpp"
#include "apps/mailer.hpp"
#include "apps/turnin.hpp"
#include "core/campaign.hpp"
#include "os/world.hpp"

namespace ep::baseline {
namespace {

TEST(Ava, DeterministicForSeed) {
  AvaOptions opts;
  opts.trials = 20;
  opts.seed = 9;
  auto r1 = run_ava(apps::mailer_scenario(), opts);
  auto r2 = run_ava(apps::mailer_scenario(), opts);
  EXPECT_EQ(r1.violations, r2.violations);
  EXPECT_EQ(r1.crashes, r2.crashes);
}

TEST(Ava, RandomInternalCorruptionFindsSomethingOnMailer) {
  // The duplicate mutation doubles the recipient length and the
  // random-replace can exceed the buffer — internal-state perturbation
  // does reach the overflow.
  AvaOptions opts;
  opts.trials = 60;
  opts.seed = 4;
  auto r = run_ava(apps::mailer_scenario(), opts);
  EXPECT_GT(r.violations + r.crashes, 0);
}

TEST(Ava, BlindToDirectFaults) {
  // lpr's flaw is a file-attribute fault: no internal entity carries it.
  // AVA-style perturbation cannot surface it, exactly the limitation the
  // paper argues.
  AvaOptions opts;
  opts.trials = 80;
  opts.seed = 6;
  auto r = run_ava(apps::lpr_scenario(), opts);
  EXPECT_EQ(r.violations, 0);
  // Meanwhile the EAI campaign on the same program finds 4/4.
  core::Campaign c(apps::lpr_scenario());
  core::CampaignOptions copts;
  copts.only_sites = {apps::kLprCreateTag};
  EXPECT_EQ(c.execute(copts).violation_count(), 4);
}

TEST(Ava, SemanticGapLowersPerTrialYield) {
  // Against turnin, random internal corruption finds violations far less
  // often than the catalog's 9-of-41 (22%) semantic hit rate.
  AvaOptions opts;
  opts.trials = 50;
  opts.seed = 12;
  auto r = run_ava(apps::turnin_scenario(), opts);
  EXPECT_LT(r.violation_rate(), 0.22);
}

TEST(Ava, NoInputSitesMeansNoTrials) {
  core::Scenario s;
  s.name = "inputless";
  s.build = [] {
    auto w = std::make_unique<core::TargetWorld>();
    os::world::standard_unix(w->kernel);
    w->kernel.register_image("noop", [](os::Kernel&, os::Pid) { return 0; });
    os::world::put_program(w->kernel, "/bin/noop", "noop");
    return w;
  };
  s.run = [](core::TargetWorld& w) {
    auto r = w.kernel.spawn("/bin/noop", {"noop"}, 0, 0);
    return r.ok() ? r.value() : 255;
  };
  AvaOptions opts;
  opts.trials = 10;
  auto r = run_ava(s, opts);
  EXPECT_EQ(r.violations, 0);
  EXPECT_EQ(r.crashes, 0);
}

}  // namespace
}  // namespace ep::baseline
