#include "baseline/fuzz.hpp"

#include <gtest/gtest.h>

#include "apps/mailer.hpp"
#include "apps/turnin.hpp"

namespace ep::baseline {
namespace {

TEST(Fuzz, DeterministicForSeed) {
  FuzzOptions opts;
  opts.trials = 20;
  opts.seed = 5;
  auto r1 = run_fuzz(apps::mailer_scenario(), opts);
  auto r2 = run_fuzz(apps::mailer_scenario(), opts);
  EXPECT_EQ(r1.crashes, r2.crashes);
  EXPECT_EQ(r1.violations, r2.violations);
}

TEST(Fuzz, FindsTheMailerOverflow) {
  // mailer copies argv[1] into a 128-byte buffer unchecked; random
  // oversized inputs crash it readily — the Fuzz result shape.
  FuzzOptions opts;
  opts.trials = 40;
  opts.seed = 1;
  auto r = run_fuzz(apps::mailer_scenario(), opts);
  EXPECT_GT(r.crashes, 0);
  EXPECT_GT(r.crash_rate(), 0.25);  // Miller et al.: 25-40%+
  EXPECT_GE(r.distinct_crash_sites, 1);
}

TEST(Fuzz, BoundedInputsDontCrashTurnin) {
  // turnin length-checks its argv copies; random input is rejected, not
  // crashed on. Fuzz sees nothing even where EAI finds 9 violations.
  FuzzOptions opts;
  opts.trials = 30;
  opts.seed = 2;
  auto r = run_fuzz(apps::turnin_scenario(), opts);
  EXPECT_EQ(r.crashes, 0);
}

TEST(Fuzz, TrialCountHonored) {
  FuzzOptions opts;
  opts.trials = 7;
  auto r = run_fuzz(apps::mailer_scenario(), opts);
  EXPECT_EQ(r.trials, 7);
}

TEST(Fuzz, AllInputsModeReachesMoreSurface) {
  FuzzOptions argv_only;
  argv_only.trials = 30;
  argv_only.seed = 3;
  FuzzOptions all;
  all.trials = 30;
  all.seed = 3;
  all.all_inputs = true;
  auto r_argv = run_fuzz(apps::turnin_scenario(), argv_only);
  auto r_all = run_fuzz(apps::turnin_scenario(), all);
  // Randomizing file/env inputs perturbs strictly more channels.
  EXPECT_GE(r_all.crashes + r_all.violations,
            r_argv.crashes + r_argv.violations);
}

TEST(Fuzz, ZeroTrials) {
  FuzzOptions opts;
  opts.trials = 0;
  auto r = run_fuzz(apps::mailer_scenario(), opts);
  EXPECT_EQ(r.trials, 0);
  EXPECT_DOUBLE_EQ(r.crash_rate(), 0.0);
}

}  // namespace
}  // namespace ep::baseline
