// Security-oracle policy tests: each policy must fire on its violating
// pattern and stay silent on the matching benign pattern.
#include "core/oracle.hpp"

#include <gtest/gtest.h>

#include "net/network.hpp"
#include "os/redzone.hpp"
#include "os/world.hpp"

namespace ep::core {
namespace {

const os::Site kS{"oracle_test.c", 1, "site"};

class OracleTest : public ::testing::Test {
 protected:
  OracleTest() {
    os::world::standard_unix(k);
    k.add_user(1000, "alice", 1000);
    k.add_user(666, "mallory", 666);
    os::world::mkdirs(k, "/var/spool/lpd");
    // Set-uid-style process: root effective, alice real.
    suid = k.make_process(1000, 1000, "/");
    k.proc(suid).euid = os::kRootUid;
    plain = k.make_process(1000, 1000, "/");
  }

  std::shared_ptr<SecurityOracle> attach(PolicySpec spec = {}) {
    if (spec.write_sanction_roots.empty())
      spec.write_sanction_roots = {"/var/spool/lpd"};
    if (spec.secret_files.empty()) spec.secret_files = {"/etc/shadow"};
    auto oracle = std::make_shared<SecurityOracle>(std::move(spec));
    k.add_interposer(oracle);
    return oracle;
  }

  os::Kernel k;
  os::Pid suid = -1;
  os::Pid plain = -1;
};

TEST_F(OracleTest, SanctionedFreshCreationIsClean) {
  auto oracle = attach();
  auto fd = k.open(kS, suid, "/var/spool/lpd/job1",
                   os::OpenFlag::wr | os::OpenFlag::creat, 0600);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(k.write(kS, suid, fd.value(), "data").ok());
  EXPECT_FALSE(oracle->violated());
}

TEST_F(OracleTest, PreexistingUnwritableOpenForWriteViolates) {
  os::world::put_file(k, "/var/spool/lpd/job1", "theirs", os::kRootUid, 0,
                      0600);
  auto oracle = attach();
  auto fd = k.open(kS, suid, "/var/spool/lpd/job1",
                   os::OpenFlag::wr | os::OpenFlag::creat, 0600);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(oracle->violated());
  EXPECT_EQ(oracle->violations()[0].policy, Policy::integrity);
}

TEST_F(OracleTest, PreexistingButRuidWritableIsClean) {
  os::world::put_file(k, "/var/spool/lpd/job1", "mine", 1000, 1000, 0644);
  auto oracle = attach();
  auto fd = k.open(kS, suid, "/var/spool/lpd/job1", os::OpenFlag::wr);
  ASSERT_TRUE(fd.ok());
  EXPECT_FALSE(oracle->violated());
}

TEST_F(OracleTest, CreationOutsideSanctionInProtectedDirViolates) {
  auto oracle = attach();
  auto fd = k.open(kS, suid, "/etc/dropped",
                   os::OpenFlag::wr | os::OpenFlag::creat, 0600);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(oracle->violated());
  EXPECT_EQ(oracle->violations()[0].policy, Policy::integrity);
}

TEST_F(OracleTest, CreationInRuidWritableDirIsClean) {
  auto oracle = attach();
  // /tmp is world-writable: alice could have done this herself.
  auto fd = k.open(kS, suid, "/tmp/scratch",
                   os::OpenFlag::wr | os::OpenFlag::creat, 0600);
  ASSERT_TRUE(fd.ok());
  EXPECT_FALSE(oracle->violated());
}

TEST_F(OracleTest, OwnCreationMayBeWrittenFreely) {
  auto oracle = attach();
  auto fd = k.open(kS, suid, "/var/spool/lpd/own",
                   os::OpenFlag::wr | os::OpenFlag::creat, 0600);
  ASSERT_TRUE(fd.ok());
  // The created file is root-owned 0600 (alice can't write it), but this
  // run created it, so writing it is not a violation.
  ASSERT_TRUE(k.write(kS, suid, fd.value(), "x").ok());
  EXPECT_FALSE(oracle->violated());
}

TEST_F(OracleTest, UnlinkOfUnwritableObjectViolates) {
  os::world::put_file(k, "/etc/critical", "x", os::kRootUid, 0, 0600);
  auto oracle = attach();
  ASSERT_TRUE(k.unlink(kS, suid, "/etc/critical").ok());
  ASSERT_TRUE(oracle->violated());
  EXPECT_EQ(oracle->violations()[0].policy, Policy::integrity);
}

TEST_F(OracleTest, ChmodChownOfUnwritableObjectViolates) {
  os::world::put_file(k, "/etc/critical", "x", os::kRootUid, 0, 0600);
  auto oracle = attach();
  ASSERT_TRUE(k.chmod(kS, suid, "/etc/critical", 0666).ok());
  EXPECT_TRUE(oracle->violated());
}

TEST_F(OracleTest, SecretReadThenOutputViolatesConfidentiality) {
  auto oracle = attach();
  auto fd = k.open(kS, suid, "/etc/shadow", os::OpenFlag::rd);
  ASSERT_TRUE(fd.ok());
  auto data = k.read(kS, suid, fd.value());
  ASSERT_TRUE(data.ok());
  k.output(kS, suid, "listing: " + data.value());
  ASSERT_TRUE(oracle->violated());
  EXPECT_EQ(oracle->violations()[0].policy, Policy::confidentiality);
}

TEST_F(OracleTest, SecretReadWithoutOutputIsSilent) {
  auto oracle = attach();
  auto fd = k.open(kS, suid, "/etc/shadow", os::OpenFlag::rd);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(k.read(kS, suid, fd.value()).ok());
  k.output(kS, suid, "done");  // output unrelated to the secret
  EXPECT_FALSE(oracle->violated());
}

TEST_F(OracleTest, RuidUnreadableFileCountsAsSecretToo) {
  os::world::put_file(k, "/etc/applist", "private-data-here", os::kRootUid,
                      0, 0600);
  auto oracle = attach();
  auto fd = k.open(kS, suid, "/etc/applist", os::OpenFlag::rd);
  ASSERT_TRUE(fd.ok());
  auto data = k.read(kS, suid, fd.value());
  k.output(kS, suid, data.value());
  EXPECT_TRUE(oracle->violated());
}

TEST_F(OracleTest, WorldReadableContentMayBeEchoed) {
  os::world::put_file(k, "/etc/motd", "welcome all", os::kRootUid, 0, 0644);
  auto oracle = attach();
  auto fd = k.open(kS, suid, "/etc/motd", os::OpenFlag::rd);
  auto data = k.read(kS, suid, fd.value());
  k.output(kS, suid, data.value());
  EXPECT_FALSE(oracle->violated());
}

TEST_F(OracleTest, ExecOfThirdPartyBinaryViolates) {
  k.register_image("x", [](os::Kernel&, os::Pid) { return 0; });
  os::world::put_program(k, "/tmp/tool", "x", 666, 666, 0755);
  auto oracle = attach();
  ASSERT_TRUE(k.exec(kS, suid, "/tmp/tool", {"tool"}).ok());
  ASSERT_TRUE(oracle->violated());
  EXPECT_EQ(oracle->violations()[0].policy, Policy::untrusted_exec);
}

TEST_F(OracleTest, ExecOfWorldWritableBinaryViolates) {
  k.register_image("x", [](os::Kernel&, os::Pid) { return 0; });
  os::world::put_program(k, "/bin/tool", "x", os::kRootUid, 0, 0757);
  auto oracle = attach();
  ASSERT_TRUE(k.exec(kS, suid, "/bin/tool", {"tool"}).ok());
  EXPECT_TRUE(oracle->violated());
}

TEST_F(OracleTest, ExecOfRootOwnedProtectedBinaryIsClean) {
  k.register_image("x", [](os::Kernel&, os::Pid) { return 0; });
  os::world::put_program(k, "/bin/tool", "x", os::kRootUid, 0, 0755);
  auto oracle = attach();
  ASSERT_TRUE(k.exec(kS, suid, "/bin/tool", {"tool"}).ok());
  EXPECT_FALSE(oracle->violated());
}

TEST_F(OracleTest, BufferOverflowInPrivilegedProcessViolates) {
  auto oracle = attach();
  k.app_fault(kS, suid, os::AppFault::buffer_overflow, "256 into 64");
  ASSERT_TRUE(oracle->violated());
  EXPECT_EQ(oracle->violations()[0].policy, Policy::memory_safety);
  EXPECT_EQ(oracle->overflow_count(), 1);
}

TEST_F(OracleTest, OverflowInUnprivilegedProcessIsNotAViolation) {
  auto oracle = attach();
  k.app_fault(kS, plain, os::AppFault::buffer_overflow, "x");
  EXPECT_FALSE(oracle->violated());
  EXPECT_EQ(oracle->overflow_count(), 1);  // still counted for Fuzz
}

TEST_F(OracleTest, CrashCountedButNotAViolation) {
  auto oracle = attach();
  k.app_fault(kS, suid, os::AppFault::crash, "segv");
  EXPECT_FALSE(oracle->violated());
  EXPECT_EQ(oracle->crash_count(), 1);
}

TEST_F(OracleTest, UntrustedReadViolatesTrust) {
  os::world::put_file(k, "/data/profile", "x", os::kRootUid, 0, 0644);
  auto r = k.vfs().resolve("/data", "/", os::kRootUid, 0);
  k.vfs().mutate(r.value()).trusted = false;
  auto oracle = attach();
  auto fd = k.open(kS, suid, "/data/profile", os::OpenFlag::rd);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(k.read(kS, suid, fd.value()).ok());
  ASSERT_TRUE(oracle->violated());
  EXPECT_EQ(oracle->violations()[0].policy, Policy::trust);
}

TEST_F(OracleTest, UnprivilegedProcessIgnoredWithoutWatchAll) {
  os::world::put_file(k, "/tmp/f", "x", os::kRootUid, 0, 0600);
  auto oracle = attach();
  // plain process has euid == ruid: not watched.
  auto fd = k.open(kS, plain, "/tmp/f", os::OpenFlag::rd);
  EXPECT_EQ(fd.error(), Err::acces);  // and it couldn't anyway
  EXPECT_FALSE(oracle->violated());
}

TEST_F(OracleTest, WatchAllWatchesEveryProcess) {
  PolicySpec spec;
  spec.watch_all = true;
  spec.write_sanction_roots = {"/var/spool/lpd"};
  spec.secret_files = {"/etc/shadow"};
  auto oracle = attach(spec);
  os::Pid rootp = k.make_process(os::kRootUid, os::kRootGid, "/");
  auto fd = k.open(kS, rootp, "/etc/shadow", os::OpenFlag::rd);
  auto data = k.read(kS, rootp, fd.value());
  k.output(kS, rootp, data.value());
  EXPECT_TRUE(oracle->violated());
}

TEST_F(OracleTest, AuthorizationNeedsConfirmationWhenRequired) {
  PolicySpec spec;
  spec.watch_all = true;
  spec.require_auth_confirmation = true;
  auto oracle = attach(spec);
  k.privileged_action(kS, plain, "grant-login", true);
  ASSERT_TRUE(oracle->violated());
  EXPECT_EQ(oracle->violations()[0].policy, Policy::authorization);
}

TEST_F(OracleTest, AuthorizationSatisfiedByGenuineConfirmation) {
  PolicySpec spec;
  spec.watch_all = true;
  spec.require_auth_confirmation = true;
  auto oracle = attach(spec);
  net::Network net;
  net::ServiceDef svc;
  svc.name = "authsvc";
  svc.handler = [](const net::Message&) {
    net::Message r;
    r.type = "AUTH_OK";
    return r;
  };
  net.define_service(svc);
  auto s = net.connect(k, kS, plain, "authsvc");
  ASSERT_TRUE(net.query(k, kS, plain, s.value(), net::Message{}).ok());
  k.privileged_action(kS, plain, "grant-login", true);
  EXPECT_FALSE(oracle->violated());
}

TEST_F(OracleTest, AuthorizationPoisonedByUnauthenticMessage) {
  PolicySpec spec;
  spec.watch_all = true;
  auto oracle = attach(spec);
  net::Network net;
  net::PeerScript script;
  script.peer = "client";
  script.inbound = {{"client", "CMD", "do-it", true}};
  net.set_client_script(script);
  net.spoof_next_inbound();
  auto s = net.accept(k, kS, plain);
  ASSERT_TRUE(net.recv(k, kS, plain, s.value()).ok());
  k.privileged_action(kS, plain, "apply", true);
  ASSERT_TRUE(oracle->violated());
  EXPECT_EQ(oracle->violations()[0].policy, Policy::authorization);
}

TEST_F(OracleTest, KnowinglyUnauthorizedActionViolates) {
  PolicySpec spec;
  spec.watch_all = true;
  auto oracle = attach(spec);
  k.privileged_action(kS, plain, "apply", false);
  EXPECT_TRUE(oracle->violated());
}

TEST_F(OracleTest, ViolationsDeduplicated) {
  os::world::put_file(k, "/etc/critical", "x", os::kRootUid, 0, 0600);
  auto oracle = attach();
  auto fd = k.open(kS, suid, "/etc/critical", os::OpenFlag::wr);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(k.write(kS, suid, fd.value(), "a").ok());
  ASSERT_TRUE(k.write(kS, suid, fd.value(), "b").ok());
  // open + two writes on the same object: one integrity report per
  // (policy, call, object) pair, so at most 2 (open, write), not 3.
  EXPECT_LE(oracle->violations().size(), 2u);
}

TEST_F(OracleTest, SendDisclosureCounts) {
  auto oracle = attach();
  auto fd = k.open(kS, suid, "/etc/shadow", os::OpenFlag::rd);
  auto data = k.read(kS, suid, fd.value());
  net::Network net;
  net::PeerScript script;
  script.peer = "peer";
  script.inbound = {{"peer", "REQ", "r", true}};
  net.set_client_script(script);
  auto s = net.accept(k, kS, suid);
  net::Message reply;
  reply.type = "DATA";
  reply.payload = data.value();
  ASSERT_TRUE(net.send(k, kS, suid, s.value(), reply).ok());
  ASSERT_TRUE(oracle->violated());
  EXPECT_EQ(oracle->violations()[0].policy, Policy::confidentiality);
}

TEST_F(OracleTest, PolicyNamesPrintable) {
  EXPECT_EQ(to_string(Policy::integrity), "integrity");
  EXPECT_EQ(to_string(Policy::authorization), "authorization");
  EXPECT_EQ(to_string(Policy::redzone_corruption), "redzone-corruption");
}

TEST_F(OracleTest, RedzoneReportFiresForUnprivilegedProcess) {
  // Memory corruption is a violation regardless of privilege — the
  // redzone branch runs before the watched()/pid gates.
  auto oracle = attach();
  std::string zone = os::redzone::poison();
  zone[0] = '!';
  k.report_redzone_corruption(kS, plain, "buffer at " + kS.str(), zone);
  ASSERT_TRUE(oracle->violated());
  EXPECT_EQ(oracle->violations()[0].policy, Policy::redzone_corruption);
  EXPECT_EQ(oracle->redzone_count(), 1);
}

TEST_F(OracleTest, RedzoneTeardownReportAcceptsNoProcess) {
  // The end-of-run sweep reports with pid -1 (no live process); the
  // oracle must not drop it on the has_proc guard.
  auto oracle = attach();
  std::string zone = os::redzone::poison();
  zone[0] = '!';
  k.report_redzone_corruption({"kernel", 0, "redzone-teardown"}, -1,
                              "/etc/passwd", zone);
  ASSERT_TRUE(oracle->violated());
  EXPECT_EQ(oracle->violations()[0].policy, Policy::redzone_corruption);
  EXPECT_EQ(oracle->violations()[0].object, "/etc/passwd");
}

TEST_F(OracleTest, RedzoneReportsDeduplicatePerObject) {
  auto oracle = attach();
  std::string zone = os::redzone::poison();
  zone[0] = '!';
  k.report_redzone_corruption(kS, plain, "same-object", zone);
  k.report_redzone_corruption(kS, plain, "same-object", zone);
  k.report_redzone_corruption(kS, plain, "other-object", zone);
  EXPECT_EQ(oracle->redzone_count(), 2);
  ASSERT_EQ(oracle->violations().size(), 2u);
  EXPECT_EQ(oracle->violations()[0].object, "same-object");
  EXPECT_EQ(oracle->violations()[1].object, "other-object");
}

}  // namespace
}  // namespace ep::core
