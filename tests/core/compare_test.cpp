#include "core/compare.hpp"

#include <gtest/gtest.h>

#include "apps/daemons.hpp"
#include "apps/turnin.hpp"
#include "apps/vault.hpp"
#include "util/strings.hpp"

namespace ep::core {
namespace {

TEST(Compare, TurninHardeningIsSafeAndRepairs8) {
  auto before = Campaign(apps::turnin_scenario()).execute();
  auto after = Campaign(apps::turnin_hardened_scenario()).execute();
  auto c = compare(before, after);
  EXPECT_EQ(c.improved_count(), 8);    // 9 violations -> 1
  EXPECT_EQ(c.regressed_count(), 0);
  EXPECT_EQ(c.still_open_count(), 1);  // root-only config tamper
  EXPECT_TRUE(c.safe());
  EXPECT_TRUE(c.only_before.empty());
  EXPECT_TRUE(c.only_after.empty());
}

TEST(Compare, LogindHardeningRepairsEverything) {
  auto before = Campaign(apps::logind_scenario()).execute();
  auto after = Campaign(apps::logind_hardened_scenario()).execute();
  auto c = compare(before, after);
  EXPECT_GT(c.improved_count(), 0);
  EXPECT_EQ(c.still_open_count(), 0);
  EXPECT_TRUE(c.safe());
  EXPECT_EQ(classify(c.after), AdequacyRegion::point4_adequate_secure);
}

TEST(Compare, VaultFixClosesTocttou) {
  auto before = Campaign(apps::vault_scenario()).execute();
  auto after = Campaign(apps::vault_fixed_scenario()).execute();
  auto c = compare(before, after);
  EXPECT_GT(c.improved_count(), 0);
  EXPECT_TRUE(c.safe());
}

TEST(Compare, IdenticalCampaignsShowNoMovement) {
  auto r1 = Campaign(apps::turnin_scenario()).execute();
  auto r2 = Campaign(apps::turnin_scenario()).execute();
  auto c = compare(r1, r2);
  EXPECT_EQ(c.improved_count(), 0);
  EXPECT_EQ(c.regressed_count(), 0);
  EXPECT_EQ(c.still_open_count(), r1.violation_count());
}

TEST(Compare, DetectsRegression) {
  // Swap before/after: the "repair" direction reverses and every turnin
  // fix shows up as a regression.
  auto vulnerable = Campaign(apps::turnin_scenario()).execute();
  auto hardened = Campaign(apps::turnin_hardened_scenario()).execute();
  auto c = compare(hardened, vulnerable);
  EXPECT_EQ(c.regressed_count(), 8);
  EXPECT_FALSE(c.safe());
}

TEST(Compare, RenderMentionsVerdictAndDeltas) {
  auto before = Campaign(apps::turnin_scenario()).execute();
  auto after = Campaign(apps::turnin_hardened_scenario()).execute();
  std::string text = render_comparison(compare(before, after));
  EXPECT_TRUE(ep::contains(text, "repaired: 8"));
  EXPECT_TRUE(ep::contains(text, "still open"));
  EXPECT_TRUE(ep::contains(text, "repair is safe"));
  EXPECT_TRUE(ep::contains(text, "point-3"));
  EXPECT_TRUE(ep::contains(text, "point-4"));
}

}  // namespace
}  // namespace ep::core
