// Equivalence analysis (the paper's future-work reduction).
#include "core/equivalence.hpp"

#include <gtest/gtest.h>

#include "apps/lpr.hpp"
#include "apps/vault.hpp"
#include "apps/turnin.hpp"
#include "core/report.hpp"
#include "util/strings.hpp"

namespace ep::core {
namespace {

InteractionPoint make_point(const char* tag, const char* object,
                            ObjectKind kind, const char* call,
                            bool has_input = false) {
  InteractionPoint p;
  p.site = os::Site{"x.c", 1, tag};
  p.object = object;
  p.kind = kind;
  p.call = call;
  p.has_input = has_input;
  return p;
}

TEST(Equivalence, DescriptorBoundContinuationMerges) {
  std::vector<InteractionPoint> pts = {
      make_point("a", "/spool/tf", ObjectKind::file, "open"),
      make_point("b", "/spool/tf", ObjectKind::file, "write"),
      make_point("c", "/etc/conf", ObjectKind::file, "open"),
  };
  auto classes = find_equivalence_classes(pts);
  ASSERT_EQ(classes.size(), 2u);
  EXPECT_EQ(classes[0].members.size(), 2u);
  EXPECT_EQ(classes[0].representative().site.tag, "a");
  EXPECT_EQ(classes[1].members.size(), 1u);
}

TEST(Equivalence, CheckUsePairsNeverMerge) {
  // The vault lesson: access() and open() on the same object are NOT
  // injection-equivalent — the use re-resolves the path, and merging
  // would erase the TOCTTOU window.
  std::vector<InteractionPoint> pts = {
      make_point("check", "/tmp/ledger", ObjectKind::file, "access"),
      make_point("use", "/tmp/ledger", ObjectKind::file, "open"),
  };
  EXPECT_EQ(find_equivalence_classes(pts).size(), 2u);
}

TEST(Equivalence, DifferentKindsStaySeparate) {
  std::vector<InteractionPoint> pts = {
      make_point("a", "/bin/tar", ObjectKind::file, "open"),
      make_point("b", "/bin/tar", ObjectKind::exec_binary, "write"),
  };
  EXPECT_EQ(find_equivalence_classes(pts).size(), 2u);
}

TEST(Equivalence, InputBearingPointsSeparateFromInputless) {
  std::vector<InteractionPoint> pts = {
      make_point("a", "/etc/conf", ObjectKind::file, "open", false),
      make_point("b", "/etc/conf", ObjectKind::file, "read", true),
  };
  EXPECT_EQ(find_equivalence_classes(pts).size(), 2u);
}

TEST(Equivalence, SemanticSplitsInputPoints) {
  auto p1 = make_point("a", "/f", ObjectKind::file, "read", true);
  p1.semantic = InputSemantic::file_name;
  auto p2 = make_point("b", "/f", ObjectKind::file, "read", true);
  p2.semantic = InputSemantic::packet;
  EXPECT_EQ(find_equivalence_classes({p1, p2}).size(), 2u);
}

TEST(Equivalence, RenderSummarizes) {
  std::vector<InteractionPoint> pts = {
      make_point("a", "/f", ObjectKind::file, "open"),
      make_point("b", "/f", ObjectKind::file, "write"),
  };
  auto classes = find_equivalence_classes(pts);
  std::string text = render_equivalence(classes);
  EXPECT_TRUE(ep::contains(text, "2 interaction points -> 1 equivalence"));
  EXPECT_TRUE(ep::contains(text, "(representative)"));
}

TEST(Equivalence, VaultSitesNeverMerge) {
  core::Campaign full_c(apps::vault_scenario());
  auto full = full_c.execute();

  core::Campaign merged_c(apps::vault_scenario());
  core::CampaignOptions opts;
  opts.merge_equivalent_sites = true;
  auto merged = merged_c.execute(opts);

  // The reduction must not erase the TOCTTOU findings.
  EXPECT_EQ(merged.violation_count(), full.violation_count());
}

TEST(Equivalence, LprCreateAndWriteMerge) {
  // lpr's create and write sites touch the same spool file: one class.
  core::Campaign c(apps::lpr_scenario());
  auto full = c.execute();
  ASSERT_EQ(full.points.size(), 2u);
  auto classes = find_equivalence_classes(full.points);
  ASSERT_EQ(classes.size(), 1u);
  EXPECT_EQ(classes[0].representative().site.tag, apps::kLprCreateTag);
}

TEST(Equivalence, MergedLprCampaignKeepsAllViolations) {
  core::Campaign full_c(apps::lpr_scenario());
  auto full = full_c.execute();

  core::Campaign merged_c(apps::lpr_scenario());
  core::CampaignOptions opts;
  opts.merge_equivalent_sites = true;
  auto merged = merged_c.execute(opts);

  // Fewer injections (the write site's 7 faults are skipped)...
  EXPECT_LT(merged.n(), full.n());
  // ...same violations found...
  EXPECT_EQ(merged.violation_count(), full.violation_count());
  // ...and the write site still counts as covered.
  EXPECT_DOUBLE_EQ(merged.interaction_coverage(), 1.0);
}

TEST(Equivalence, TurninHasNoMergeableSites) {
  // Every turnin interaction point touches a distinct object: the
  // reduction must be a no-op, not an over-merge.
  core::Campaign c(apps::turnin_scenario());
  auto full = c.execute();
  auto classes = find_equivalence_classes(full.points);
  EXPECT_EQ(classes.size(), full.points.size());

  core::Campaign merged_c(apps::turnin_scenario());
  core::CampaignOptions opts;
  opts.merge_equivalent_sites = true;
  auto merged = merged_c.execute(opts);
  EXPECT_EQ(merged.n(), full.n());
  EXPECT_EQ(merged.violation_count(), full.violation_count());
}

}  // namespace
}  // namespace ep::core
