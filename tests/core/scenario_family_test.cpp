// Scenario families (core/scenario_family.hpp): grid expansion order,
// stable member naming, malformed-family rejection, and the packaged
// families' contract — 3 families, 100+ members, every one resolvable
// by name and compilable against the standard environment.
#include "core/scenario_family.hpp"

#include <gtest/gtest.h>

#include <set>

#include "apps/families.hpp"
#include "apps/scenarios.hpp"
#include "core/wire.hpp"

namespace ep::core {
namespace {

ScenarioFamily toy_family() {
  ScenarioFamily f;
  f.name = "toy";
  f.description = "two axes";
  f.axes = {{"size", {"s", "l"}}, {"mode", {"a", "b", "c"}}};
  f.materialize = [](const FamilyPoint& p) {
    ScenarioSpec spec;
    spec.description = p.at("size") + "/" + p.at("mode");
    spec.run.push_back({"/bin/x", {"x"}, 0, 0, {}, "/"});
    return spec;
  };
  return f;
}

TEST(ScenarioFamilyTest, SizeIsTheAxisProduct) {
  EXPECT_EQ(family_size(toy_family()), 6u);
  ScenarioFamily empty = toy_family();
  empty.axes[1].values.clear();
  EXPECT_EQ(family_size(empty), 0u);
}

TEST(ScenarioFamilyTest, GridIsOdometerOrdered) {
  auto grid = family_grid(toy_family());
  ASSERT_EQ(grid.size(), 6u);
  // Last axis varies fastest.
  EXPECT_EQ(grid[0].at("size"), "s");
  EXPECT_EQ(grid[0].at("mode"), "a");
  EXPECT_EQ(grid[1].at("mode"), "b");
  EXPECT_EQ(grid[2].at("mode"), "c");
  EXPECT_EQ(grid[3].at("size"), "l");
  EXPECT_EQ(grid[3].at("mode"), "a");
}

TEST(ScenarioFamilyTest, MemberNamesAreStableAndStamped) {
  ScenarioFamily f = toy_family();
  auto specs = expand_family(f);
  ASSERT_EQ(specs.size(), 6u);
  EXPECT_EQ(specs[0].name, "toy-s-a");
  EXPECT_EQ(specs[5].name, "toy-l-c");
  // The materialized description proves the right point reached the
  // template.
  EXPECT_EQ(specs[5].description, "l/c");
}

TEST(ScenarioFamilyTest, RejectsDuplicateAxisNames) {
  ScenarioFamily f = toy_family();
  f.axes.push_back({"size", {"x"}});
  EXPECT_THROW((void)family_grid(f), WireError);
}

TEST(ScenarioFamilyTest, RejectsEmptyAxisName) {
  ScenarioFamily f = toy_family();
  f.axes.push_back({"", {"x"}});
  EXPECT_THROW((void)family_grid(f), WireError);
}

TEST(ScenarioFamilyTest, RejectsNameUnsafeAxisValues) {
  ScenarioFamily f = toy_family();
  f.axes[0].values = {"UPPER"};
  EXPECT_THROW((void)family_grid(f), WireError);
  f.axes[0].values = {"has space"};
  EXPECT_THROW((void)family_grid(f), WireError);
  f.axes[0].values = {""};
  EXPECT_THROW((void)family_grid(f), WireError);
}

// ---- the packaged families -----------------------------------------------

TEST(ScenarioFamilyTest, PackagedFamiliesExpandToAtLeastOneHundred) {
  std::size_t total = 0;
  std::set<std::string> names;
  for (const auto& f : apps::scenario_families()) {
    std::size_t n = family_size(f);
    EXPECT_GE(n, 16u) << f.name;
    total += n;
    for (const auto& spec : expand_family(f)) {
      EXPECT_TRUE(names.insert(spec.name).second)
          << "duplicate generated name " << spec.name;
      EXPECT_EQ(spec.name.rfind(f.name + "-", 0), 0u) << spec.name;
    }
  }
  EXPECT_GE(apps::scenario_families().size(), 3u);
  EXPECT_GE(total, 100u);
  EXPECT_EQ(names.size(), total);
}

TEST(ScenarioFamilyTest, EveryGeneratedNameResolvesAndCompiles) {
  for (const auto& f : apps::scenario_families()) {
    for (const auto& scenario : apps::family_scenarios(f)) {
      EXPECT_TRUE(scenario.snapshot_safe) << scenario.name;
      auto by_name = apps::resolve_scenario(scenario.name);
      ASSERT_TRUE(by_name.has_value()) << scenario.name;
      EXPECT_EQ(by_name->name, scenario.name);
    }
  }
}

TEST(ScenarioFamilyTest, GeneratedNamesDoNotShadowPackagedOnes) {
  std::set<std::string> packaged;
  for (const auto& s : apps::all_scenarios()) packaged.insert(s.name);
  packaged.insert("redzone-demo");
  for (const auto& f : apps::scenario_families())
    for (const auto& spec : expand_family(f))
      EXPECT_EQ(packaged.count(spec.name), 0u) << spec.name;
}

TEST(ScenarioFamilyTest, UnknownGeneratedNameResolvesToNothing) {
  EXPECT_FALSE(apps::find_generated_scenario("fam-spool-d9-nope").has_value());
  EXPECT_FALSE(apps::resolve_scenario("fam-spool-d9-nope").has_value());
  EXPECT_FALSE(apps::resolve_spec("fam-spool-d9-nope").has_value());
}

}  // namespace
}  // namespace ep::core
