// Work stealing (core/orchestrator.hpp): when the only remaining work is
// a straggler's in-flight lease, the orchestrator sends STEAL, the
// worker answers YIELD with a split point, and the surrendered tail is
// granted to an idle worker as a fresh lease. The partition stays a
// disjoint cover, so the merge reproduces the single-process bytes no
// matter how many times a lease was carved up.
#include "core/orchestrator.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/campaign_fixtures.hpp"
#include "core/report.hpp"
#include "util/strings.hpp"

namespace ep::core {
namespace {

/// Every worker is a straggler that cooperates with theft: a granted
/// lease sits in flight until either a STEAL arrives — answered by
/// yielding everything past the first item, as a worker at its first
/// checkpoint boundary would — or wait_any finds no theft to arbitrate
/// and lets the oldest busy worker finish via run_lease.
class StragglerFleet : public Transport {
 public:
  StragglerFleet(const Scenario& scenario, const InjectionPlan& plan)
      : plan_(plan), executor_(scenario) {}

  std::size_t steals_sent = 0;
  bool honor_steals = true;  // false: workers just finish (steal is moot)

  std::optional<std::size_t> spawn() override {
    workers_.push_back({});
    return workers_.size() - 1;
  }

  void submit(std::size_t worker, const Lease& lease) override {
    workers_[worker].lease = lease;
    workers_[worker].busy = true;
    grant_order_.push_back(worker);
  }

  void steal(std::size_t worker) override {
    ++steals_sent;
    if (honor_steals) workers_[worker].yield_asked = true;
  }

  void shutdown(std::size_t worker) override {
    workers_[worker].exit_asked = true;
  }

  void kill(std::size_t worker) override { workers_[worker].busy = false; }

  std::optional<WorkerEvent> wait_any(long timeout_ms) override {
    (void)timeout_ms;
    // YIELDs drain before DONEs: the steal answer arrives at the first
    // checkpoint boundary, well before the straggler's lease completes.
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      Worker& wk = workers_[w];
      if (!wk.busy || !wk.yield_asked) continue;
      wk.yield_asked = false;
      WorkerEvent ev;
      ev.kind = WorkerEvent::Kind::lease_yielded;
      ev.worker = w;
      ev.lease = wk.lease;
      ev.yield_mid = wk.lease.begin + 1;  // first checkpoint boundary
      wk.lease.end = ev.yield_mid;        // the worker keeps the head
      return ev;
    }
    // Oldest grant finishes first, like a fleet of equal-speed workers.
    for (auto it = grant_order_.begin(); it != grant_order_.end(); ++it) {
      Worker& wk = workers_[*it];
      if (!wk.busy) continue;
      std::size_t w = *it;
      grant_order_.erase(it);
      wk.busy = false;
      WorkerEvent ev;
      ev.kind = WorkerEvent::Kind::lease_done;
      ev.worker = w;
      ev.lease = wk.lease;
      ShardReport report = run_lease(executor_, plan_, wk.lease.begin,
                                     wk.lease.end, {});
      ev.report = shard_report_from_json(report.to_json());
      ev.label = "lease" + std::to_string(wk.lease.seq) + ".json";
      return ev;
    }
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      if (!workers_[w].exit_asked) continue;
      workers_[w].exit_asked = false;
      WorkerEvent ev;
      ev.kind = WorkerEvent::Kind::exited;
      ev.worker = w;
      ev.status = 0;
      return ev;
    }
    throw std::logic_error("wait_any with nothing outstanding");
  }

 private:
  struct Worker {
    Lease lease;
    bool busy = false;
    bool yield_asked = false;
    bool exit_asked = false;
  };

  const InjectionPlan& plan_;
  Executor executor_;
  std::vector<Worker> workers_;
  std::vector<std::size_t> grant_order_;
};

InjectionPlan planned_toy() {
  Scenario s = toy_scenario();
  CampaignOptions opts;
  opts.use_world_cache = true;
  return Planner(s).plan(opts);
}

TEST(LeaseSplit, StolenTailsMergeByteIdentically) {
  // One lease covering the whole plan, two workers: the idle worker can
  // only ever be fed by theft. The yielded partitions — head kept by the
  // straggler, tail re-granted — must merge to the single-process bytes.
  Scenario s = toy_scenario();
  InjectionPlan plan = planned_toy();
  ASSERT_GE(plan.items.size(), 4u);
  Executor ex(s);
  CampaignResult single = ex.execute(plan);

  StragglerFleet fleet(s, plan);
  OrchestratorOptions opts;
  opts.workers = 2;
  opts.lease_items = plan.items.size();
  OrchestratorStats stats;
  CampaignResult merged = orchestrate(plan, fleet, opts, &stats);

  expect_identical(single, merged);
  EXPECT_EQ(render_json(single), render_json(merged));
  EXPECT_EQ(stats.leases_total, 1u);
  EXPECT_GE(stats.leases_split, 2u);  // the tail got re-stolen in turn
  EXPECT_LE(stats.leases_split, kMaxLeaseSplits);
  EXPECT_EQ(stats.leases_granted, stats.leases_total + stats.leases_split);
  EXPECT_EQ(stats.workers_preempted, 0u);
}

TEST(LeaseSplit, SplitCountIsCappedAtKMaxLeaseSplits) {
  // Transports pre-allocate per-lease resources (the shm arena reserves
  // exactly kMaxLeaseSplits spare segments), so the orchestrator must
  // never split more often than that even when every steal would stick.
  Scenario s = toy_scenario();
  InjectionPlan plan = planned_toy();
  if (plan.items.size() < kMaxLeaseSplits + 2)
    GTEST_SKIP() << "toy plan too small to exhaust the split budget";
  Executor ex(s);
  CampaignResult single = ex.execute(plan);

  StragglerFleet fleet(s, plan);
  OrchestratorOptions opts;
  opts.workers = 2;
  opts.lease_items = plan.items.size();
  OrchestratorStats stats;
  CampaignResult merged = orchestrate(plan, fleet, opts, &stats);

  expect_identical(single, merged);
  EXPECT_EQ(stats.leases_split, kMaxLeaseSplits);
}

TEST(LeaseSplit, AWorkerThatFinishesFirstMakesTheStealMoot) {
  // STEAL is best-effort: a worker whose DONE races past the steal just
  // completes the whole lease, and no split is recorded.
  Scenario s = toy_scenario();
  InjectionPlan plan = planned_toy();
  Executor ex(s);
  CampaignResult single = ex.execute(plan);

  StragglerFleet fleet(s, plan);
  fleet.honor_steals = false;
  OrchestratorOptions opts;
  opts.workers = 2;
  opts.lease_items = plan.items.size();
  OrchestratorStats stats;
  CampaignResult merged = orchestrate(plan, fleet, opts, &stats);

  expect_identical(single, merged);
  EXPECT_GE(fleet.steals_sent, 1u);  // the orchestrator did ask...
  EXPECT_EQ(stats.leases_split, 0u);  // ...and took no for an answer
}

TEST(LeaseSplit, SingleItemLeasesAreNeverStolenFrom) {
  // There is no point splitting a lease the worker is one checkpoint
  // from finishing; [b, b+1) leases are skipped by steal issuance.
  Scenario s = toy_scenario();
  InjectionPlan plan = planned_toy();
  StragglerFleet fleet(s, plan);
  OrchestratorOptions opts;
  opts.workers = 4;
  opts.lease_items = 1;
  OrchestratorStats stats;
  (void)orchestrate(plan, fleet, opts, &stats);
  EXPECT_EQ(fleet.steals_sent, 0u);
  EXPECT_EQ(stats.leases_split, 0u);
}

TEST(LeaseSplit, UnsolicitedYieldIsAProtocolViolation) {
  // A YIELD the orchestrator never asked for means a confused worker;
  // re-leasing around it could double-drain ids, so it must abort.
  Scenario s = toy_scenario();
  InjectionPlan plan = planned_toy();

  class RogueFleet : public StragglerFleet {
   public:
    using StragglerFleet::StragglerFleet;
    void submit(std::size_t worker, const Lease& lease) override {
      StragglerFleet::submit(worker, lease);
      // Claim a steal was asked even though none ever will be.
      steal(worker);
    }
  };

  RogueFleet fleet(s, plan);
  OrchestratorOptions opts;
  opts.workers = 1;  // one worker, ample pending: no legitimate steal
  opts.lease_items = plan.items.size();
  try {
    (void)orchestrate(plan, fleet, opts);
    FAIL() << "expected OrchestratorError";
  } catch (const OrchestratorError& e) {
    EXPECT_TRUE(contains(e.what(), "not asked to steal"));
  }
}

}  // namespace
}  // namespace ep::core
