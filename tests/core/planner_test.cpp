// Planner layer tests: the trace-discovery + fault-planning half of the
// engine, and the serializable InjectionPlan it emits.
#include "core/planner.hpp"

#include <gtest/gtest.h>

#include "core/campaign_fixtures.hpp"
#include "core/executor.hpp"
#include "util/strings.hpp"

namespace ep::core {
namespace {

TEST(Planner, DiscoversPointsAndPlansItems) {
  Scenario s = toy_scenario();
  Planner planner(s);
  InjectionPlan plan = planner.plan();

  ASSERT_EQ(plan.points.size(), 3u);
  EXPECT_EQ(plan.scenario_name, "toy");
  EXPECT_TRUE(plan.benign_violations.empty());
  EXPECT_FALSE(plan.items.empty());
  for (const auto& w : plan.items) {
    ASSERT_LT(w.point_index, plan.points.size());
    EXPECT_FALSE(w.fault.name().empty());
  }
  // All three sites draw at least one fault, so all count as perturbed.
  EXPECT_EQ(plan.perturbed_site_tags.size(), 3u);
}

TEST(Planner, ItemsFollowStep3Rules) {
  // Input-bearing sites get both kinds; input-less sites direct only.
  Scenario s = toy_scenario();
  InjectionPlan plan = Planner(s).plan();
  int cfg_indirect = 0, write_indirect = 0;
  for (const auto& w : plan.items) {
    const InteractionPoint& p = plan.point_of(w);
    if (p.site.tag == "toy-read-config" && w.fault.kind == FaultKind::indirect)
      ++cfg_indirect;
    if (p.site.tag == "toy-write-out" && w.fault.kind == FaultKind::indirect)
      ++write_indirect;
  }
  EXPECT_GT(cfg_indirect, 0);
  EXPECT_EQ(write_indirect, 0);
}

TEST(Planner, OnlySitesRestrictsThePlan) {
  Scenario s = toy_scenario();
  CampaignOptions opts;
  opts.only_sites = {"toy-arg"};
  InjectionPlan plan = Planner(s).plan(opts);
  ASSERT_FALSE(plan.items.empty());
  for (const auto& w : plan.items)
    EXPECT_EQ(plan.point_of(w).site.tag, "toy-arg");
  EXPECT_EQ(plan.perturbed_site_tags,
            std::set<std::string>{"toy-arg"});
  // Discovery still records every point (coverage denominator).
  EXPECT_EQ(plan.points.size(), 3u);
}

TEST(Planner, CoverageSamplingIsSeedStable) {
  Scenario s = toy_scenario();
  CampaignOptions opts;
  opts.target_interaction_coverage = 0.5;
  opts.seed = 42;
  InjectionPlan a = Planner(s).plan(opts);
  InjectionPlan b = Planner(s).plan(opts);
  ASSERT_EQ(a.items.size(), b.items.size());
  for (std::size_t i = 0; i < a.items.size(); ++i) {
    EXPECT_EQ(a.items[i].point_index, b.items[i].point_index);
    EXPECT_EQ(a.items[i].fault.name(), b.items[i].fault.name());
  }
  EXPECT_EQ(a.perturbed_site_tags, b.perturbed_site_tags);
  EXPECT_LT(a.perturbed_site_tags.size(), 3u);
}

TEST(Planner, SkippedSitesPlanNothing) {
  Scenario s = toy_scenario();
  s.sites["toy-read-config"].skip = true;
  InjectionPlan plan = Planner(s).plan();
  for (const auto& w : plan.items)
    EXPECT_NE(plan.point_of(w).site.tag, "toy-read-config");
  EXPECT_EQ(plan.perturbed_site_tags.count("toy-read-config"), 0u);
}

TEST(Planner, PlanSerializesToJson) {
  Scenario s = toy_scenario();
  InjectionPlan plan = Planner(s).plan();
  std::string json = plan.to_json();
  EXPECT_TRUE(contains(json, "\"scenario\": \"toy\""));
  EXPECT_TRUE(contains(json, "\"site\": \"toy-read-config\""));
  EXPECT_TRUE(contains(json, "\"items\": ["));
  EXPECT_TRUE(contains(json, "\"fault\": "));
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json[json.size() - 2], '}');  // trailing newline after '}'
}

TEST(Planner, PlanThenExecuteMatchesCampaignFacade) {
  Scenario s = toy_scenario();
  InjectionPlan plan = Planner(s).plan();
  CampaignResult via_layers = Executor(s).execute(plan);
  CampaignResult via_facade = Campaign(toy_scenario()).execute();

  ASSERT_EQ(via_layers.injections.size(), via_facade.injections.size());
  for (std::size_t i = 0; i < via_layers.injections.size(); ++i) {
    EXPECT_EQ(via_layers.injections[i].site.tag,
              via_facade.injections[i].site.tag);
    EXPECT_EQ(via_layers.injections[i].fault_name,
              via_facade.injections[i].fault_name);
    EXPECT_EQ(via_layers.injections[i].violated,
              via_facade.injections[i].violated);
  }
  EXPECT_DOUBLE_EQ(via_layers.vulnerability_score(),
                   via_facade.vulnerability_score());
}

}  // namespace
}  // namespace ep::core
