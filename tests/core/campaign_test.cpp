// Campaign engine tests against a small synthetic scenario.
#include "core/campaign.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/report.hpp"
#include "os/world.hpp"

namespace ep::core {
namespace {

const os::Site kReadCfg{"toy.c", 10, "toy-read-config"};
const os::Site kArg{"toy.c", 20, "toy-arg"};
const os::Site kWriteOut{"toy.c", 30, "toy-write-out"};

/// A toy set-uid program with three interaction points: reads a config,
/// takes a file-name argument, writes an output file derived from it.
int toy_main(os::Kernel& k, os::Pid pid) {
  auto fd = k.open(kReadCfg, pid, "/toy/config", os::OpenFlag::rd);
  if (!fd.ok()) return 1;
  auto cfg = k.read(kReadCfg, pid, fd.value());
  (void)k.close(pid, fd.value());
  if (!cfg.ok()) return 1;

  std::string name = k.arg(kArg, pid, 1);
  if (name.empty() || name.size() > 64) return 2;

  auto out = k.open(kWriteOut, pid, "/toy/out/" + name,
                    os::OpenFlag::wr | os::OpenFlag::creat, 0600);
  if (!out.ok()) return 3;
  (void)k.write(kWriteOut, pid, out.value(), cfg.value());
  (void)k.close(pid, out.value());
  return 0;
}

Scenario toy_scenario() {
  Scenario s;
  s.name = "toy";
  s.trace_unit_filter = "toy.c";
  s.build = [] {
    auto w = std::make_unique<TargetWorld>();
    os::world::standard_unix(w->kernel);
    w->kernel.add_user(1000, "alice", 1000);
    w->kernel.add_user(666, "mallory", 666);
    os::world::mkdirs(w->kernel, "/tmp/attacker", 666, 666, 0755);
    os::world::put_file(w->kernel, "/toy/config", "setting=1\n",
                        os::kRootUid, 0, 0644);
    os::world::mkdirs(w->kernel, "/toy/out", os::kRootUid, 0, 0755);
    w->kernel.register_image("toy", toy_main);
    os::world::put_program(w->kernel, "/usr/bin/toy", "toy", os::kRootUid, 0,
                           0755 | os::kSetUidBit);
    return w;
  };
  s.run = [](TargetWorld& w) {
    auto r = w.kernel.spawn("/usr/bin/toy", {"toy", "result.txt"}, 1000,
                            1000, {}, "/");
    return r.ok() ? r.value() : 255;
  };
  s.policy.write_sanction_roots = {"/toy/out"};
  s.policy.secret_files = {"/etc/shadow"};
  s.hints.attacker_uid = 666;
  s.hints.attacker_gid = 666;
  return s;
}

TEST(Campaign, DiscoversAllInteractionPoints) {
  Campaign c(toy_scenario());
  auto r = c.execute();
  ASSERT_EQ(r.points.size(), 3u);
  EXPECT_EQ(r.points[0].site.tag, "toy-read-config");
  EXPECT_EQ(r.points[1].site.tag, "toy-arg");
  EXPECT_EQ(r.points[2].site.tag, "toy-write-out");
  EXPECT_TRUE(r.benign_violations.empty());
}

TEST(Campaign, DefaultPlansFollowStep3) {
  // Input-bearing sites get both kinds; input-less sites direct only.
  Campaign c(toy_scenario());
  auto r = c.execute();
  int cfg_direct = 0, cfg_indirect = 0, write_indirect = 0, arg_direct = 0;
  for (const auto& i : r.injections) {
    if (i.site.tag == "toy-read-config") {
      (i.kind == FaultKind::direct ? cfg_direct : cfg_indirect)++;
    }
    if (i.site.tag == "toy-write-out" && i.kind == FaultKind::indirect)
      ++write_indirect;
    if (i.site.tag == "toy-arg" && i.kind == FaultKind::direct) ++arg_direct;
  }
  EXPECT_EQ(cfg_direct, 7);    // full file-system attribute list
  EXPECT_GT(cfg_indirect, 0);  // reads deliver input
  EXPECT_EQ(write_indirect, 0);  // writes deliver none
  EXPECT_EQ(arg_direct, 0);      // argv has no environment entity
}

TEST(Campaign, CountsAreConsistent) {
  Campaign c(toy_scenario());
  auto r = c.execute();
  EXPECT_EQ(r.n(), static_cast<int>(r.injections.size()));
  EXPECT_EQ(r.tolerated_count() + r.violation_count(), r.n());
  EXPECT_DOUBLE_EQ(r.fault_coverage() + r.vulnerability_score(), 1.0);
  EXPECT_DOUBLE_EQ(r.interaction_coverage(), 1.0);
}

TEST(Campaign, FindsTheToyProgramsFlaws) {
  Campaign c(toy_scenario());
  auto r = c.execute();
  // The toy program writes config content to a fresh file in a sanctioned
  // dir, but never validates ../ in the name and blindly creats: the
  // symlink and dotdot faults must be among the violations.
  std::set<std::string> violated;
  for (const auto& i : r.injections)
    if (i.violated) violated.insert(i.site.tag + "/" + i.fault_name);
  EXPECT_TRUE(violated.count("toy-write-out/symbolic-link"));
  EXPECT_TRUE(violated.count("toy-arg/insert-dotdot"));
}

TEST(Campaign, OnlySitesRestrictsPerturbation) {
  Campaign c(toy_scenario());
  CampaignOptions opts;
  opts.only_sites = {"toy-arg"};
  auto r = c.execute(opts);
  EXPECT_EQ(r.points.size(), 3u);  // discovery unaffected
  EXPECT_EQ(r.perturbed_site_tags.size(), 1u);
  EXPECT_NEAR(r.interaction_coverage(), 1.0 / 3.0, 1e-9);
  for (const auto& i : r.injections) EXPECT_EQ(i.site.tag, "toy-arg");
}

TEST(Campaign, TargetCoverageSamplesSites) {
  Campaign c(toy_scenario());
  CampaignOptions opts;
  opts.target_interaction_coverage = 0.34;
  opts.seed = 7;
  auto r = c.execute(opts);
  EXPECT_EQ(r.perturbed_site_tags.size(), 1u);
}

TEST(Campaign, SamplingIsDeterministicPerSeed) {
  CampaignOptions opts;
  opts.target_interaction_coverage = 0.67;
  opts.seed = 3;
  auto r1 = Campaign(toy_scenario()).execute(opts);
  auto r2 = Campaign(toy_scenario()).execute(opts);
  EXPECT_EQ(r1.perturbed_site_tags, r2.perturbed_site_tags);
  EXPECT_EQ(r1.n(), r2.n());
  EXPECT_EQ(r1.violation_count(), r2.violation_count());
}

TEST(Campaign, FullRunIsDeterministic) {
  auto r1 = Campaign(toy_scenario()).execute();
  auto r2 = Campaign(toy_scenario()).execute();
  ASSERT_EQ(r1.n(), r2.n());
  for (int i = 0; i < r1.n(); ++i) {
    EXPECT_EQ(r1.injections[i].fault_name, r2.injections[i].fault_name);
    EXPECT_EQ(r1.injections[i].violated, r2.injections[i].violated);
  }
}

TEST(Campaign, ExplicitFaultListOverridesDefaults) {
  Scenario s = toy_scenario();
  SiteSpec spec;
  spec.faults = {"file-existence", "symbolic-link"};
  s.sites["toy-read-config"] = spec;
  Campaign c(std::move(s));
  CampaignOptions opts;
  opts.only_sites = {"toy-read-config"};
  auto r = c.execute(opts);
  EXPECT_EQ(r.n(), 2);
}

TEST(Campaign, UnknownFaultNameThrows) {
  Scenario s = toy_scenario();
  SiteSpec spec;
  spec.faults = {"not-a-fault"};
  s.sites["toy-read-config"] = spec;
  Campaign c(std::move(s));
  EXPECT_THROW(c.execute(), std::logic_error);
}

TEST(Campaign, SkippedSiteNotPerturbedButCounted) {
  Scenario s = toy_scenario();
  SiteSpec spec;
  spec.skip = true;
  s.sites["toy-read-config"] = spec;
  Campaign c(std::move(s));
  auto r = c.execute();
  EXPECT_EQ(r.points.size(), 3u);
  EXPECT_EQ(r.perturbed_site_tags.count("toy-read-config"), 0u);
  EXPECT_NEAR(r.interaction_coverage(), 2.0 / 3.0, 1e-9);
}

TEST(Campaign, MissingBuildOrRunRejected) {
  Scenario s;
  s.name = "broken";
  EXPECT_THROW(Campaign{std::move(s)}, std::logic_error);
}

TEST(Campaign, ExploitabilityFilledOnlyForViolations) {
  Campaign c(toy_scenario());
  auto r = c.execute();
  for (const auto& i : r.injections) {
    if (i.violated) {
      EXPECT_FALSE(i.exploit.actor.empty())
          << i.site.tag << "/" << i.fault_name;
    }
  }
}

TEST(Campaign, ExploitabilityJudgesActors) {
  Campaign c(toy_scenario());
  auto r = c.execute();
  for (const auto& i : r.injections) {
    if (!i.violated) continue;
    if (i.fault_name == "insert-dotdot") {
      // argv is the invoker's to control.
      EXPECT_TRUE(i.exploit.nonroot_feasible);
      EXPECT_EQ(i.exploit.actor, "invoking user");
    }
    if (i.fault_name == "symbolic-link" && i.site.tag == "toy-read-config") {
      // /toy is root 0755: nobody unprivileged can plant a link there.
      EXPECT_FALSE(i.exploit.nonroot_feasible);
    }
  }
}

}  // namespace
}  // namespace ep::core
