// Coverage-guided search tests: the novelty scorer's term arithmetic,
// the determinism contract (same seed + budget => identical generated
// stream and merged report for any job count), the search-state wire
// document, and checkpoint/resume equivalence — the property the kill -9
// integration tests lean on.
#include "core/search.hpp"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "core/campaign_fixtures.hpp"
#include "core/executor.hpp"
#include "core/wire.hpp"

namespace ep::core {
namespace {

InjectionOutcome outcome_stub(bool fired, bool violated, int exit_code) {
  InjectionOutcome o;
  o.fired = fired;
  o.violated = violated;
  o.exit_code = exit_code;
  return o;
}

TEST(SearchScorer, TermsAddUpLargestFirst) {
  NoveltyScorer scorer;
  // A fresh scorer has seen nothing: class (+8), site (+2), fault (+1),
  // stock hints (+1).
  EXPECT_EQ(scorer.score("file", "toy-read", "d:missing", 0), 12);
  // A mutated param forfeits only the stock-hints point.
  EXPECT_EQ(scorer.score("file", "toy-read", "d:missing", 77), 11);
  // An empty class label mutes the class term entirely.
  EXPECT_EQ(scorer.score("", "toy-read", "d:missing", 0), 4);
}

TEST(SearchScorer, AttemptsAndOutcomesRetireTheirTerms) {
  NoveltyScorer scorer;
  scorer.note_attempt("d:missing");
  EXPECT_EQ(scorer.score("file", "toy-read", "d:missing", 0), 11);

  // A fired + violated outcome retires the class and site terms too.
  scorer.note_outcome("file", "toy-read", "d:missing",
                      outcome_stub(true, true, 1));
  EXPECT_EQ(scorer.score("file", "toy-read", "d:missing", 0), 1);
  // Other classes and sites keep their novelty.
  EXPECT_EQ(scorer.score("dns", "toy-read", "d:missing", 0), 9);
  EXPECT_EQ(scorer.score("file", "toy-arg", "d:missing", 0), 3);
}

TEST(SearchScorer, SilentOutcomesRetireNeitherClassNorSite) {
  NoveltyScorer scorer;
  scorer.note_outcome("file", "toy-read", "d:missing",
                      outcome_stub(false, false, 0));
  EXPECT_EQ(scorer.score("file", "toy-read", "d:missing", 0), 12);
  EXPECT_TRUE(scorer.fired_classes().empty());
}

TEST(SearchScorer, VerdictSignatureNoveltyIsPerShape) {
  NoveltyScorer scorer;
  EXPECT_TRUE(scorer.note_outcome("file", "a", "d:missing",
                                  outcome_stub(true, false, 1)));
  // The same shape again is old news.
  EXPECT_FALSE(scorer.note_outcome("file", "b", "d:missing",
                                   outcome_stub(true, false, 1)));
  // A different exit code is a new shape.
  EXPECT_TRUE(scorer.note_outcome("file", "c", "d:missing",
                                  outcome_stub(true, false, 2)));
}

// --- the source -------------------------------------------------------------

SearchOptions toy_search_options(std::size_t budget, std::size_t batch = 4) {
  SearchOptions o;
  o.seed = 7;
  o.budget = budget;
  o.batch = batch;
  o.classify = [](FaultKind kind, const std::string& name) {
    return std::string(kind == FaultKind::direct ? "d:" : "i:") + name;
  };
  return o;
}

TEST(SearchSource, SpendsExactlyTheBudgetInBatchSizedWaves) {
  Scenario s = toy_scenario();
  InjectionPlan base = Planner(s).plan();
  ASSERT_GT(base.items.size(), 6u);

  SearchWorkSource source(Planner(s).plan(), toy_search_options(6, 4));
  Executor executor(s);
  SearchRunResult run = run_search(executor, source);
  EXPECT_FALSE(run.stopped);
  EXPECT_EQ(source.plan().items.size(), 6u);
  EXPECT_EQ(run.waves, 2u);  // 4 + 2
  EXPECT_EQ(run.result.injections.size(), 6u);
}

TEST(SearchSource, StopsWhenTheFrontierRunsDry) {
  // Silent outcomes earn no mutation children, so the frontier is only
  // ever the base candidates — a budget far past them must end the wave
  // stream at the frontier, not loop. Driven by hand (no executor): the
  // source's contract is wave generation against absorbed feedback.
  Scenario s = toy_scenario();
  InjectionPlan base = Planner(s).plan();
  const std::size_t n = base.items.size();
  ASSERT_GT(n, 0u);
  SearchWorkSource source(std::move(base), toy_search_options(100000, 4));
  std::size_t total = 0;
  for (;;) {
    auto [begin, end] = source.next_wave();
    if (begin == end) break;
    total += end - begin;
    ShardReport r;
    r.scenario_name = source.plan().scenario_name;
    for (std::size_t id = begin; id < end; ++id) {
      r.item_ids.push_back(id);
      r.outcomes.push_back(outcome_stub(false, false, 0));
    }
    source.absorb(r);
  }
  EXPECT_EQ(total, n);
  EXPECT_EQ(source.plan().items.size(), n);
}

TEST(SearchSource, SameSeedIsByteIdenticalAcrossJobCounts) {
  Scenario s = toy_scenario();
  Executor executor(s);

  SearchWorkSource a(Planner(s).plan(), toy_search_options(10));
  SearchRunResult ra = run_search(executor, a, {1});

  for (int jobs : {2, 4}) {
    SearchWorkSource b(Planner(s).plan(), toy_search_options(10));
    ExecutorOptions opts;
    opts.jobs = jobs;
    SearchRunResult rb = run_search(executor, b, opts);
    EXPECT_EQ(a.plan().to_json(), b.plan().to_json()) << jobs << " jobs";
    expect_identical(ra.result, rb.result);
  }
}

TEST(SearchSource, DifferentSeedsDiverge) {
  // The seed feeds parameter mutation, so divergence shows up once the
  // budget reaches past the base frontier into mutation children.
  Scenario s = toy_scenario();
  Executor executor(s);
  const std::size_t n = Planner(s).plan().items.size();
  SearchOptions o1 = toy_search_options(n + 8, 8);
  SearchOptions o2 = toy_search_options(n + 8, 8);
  o2.seed = 8;
  SearchWorkSource a(Planner(s).plan(), o1);
  SearchWorkSource b(Planner(s).plan(), o2);
  run_search(executor, a);
  run_search(executor, b);
  EXPECT_NE(a.plan().to_json(), b.plan().to_json());
}

TEST(SearchSource, SharedScorerMakesALaterSearchSpendElsewhere) {
  // Family semantics: a class fired in the first member is no longer
  // novel in the second, so the second member's stream differs from what
  // it would have generated with a fresh scorer.
  Scenario s = toy_scenario();
  Executor executor(s);

  NoveltyScorer shared;
  SearchWorkSource first(Planner(s).plan(), toy_search_options(8), &shared);
  run_search(executor, first);
  ASSERT_FALSE(shared.fired_classes().empty());

  SearchWorkSource cumulative(Planner(s).plan(), toy_search_options(8),
                              &shared);
  SearchWorkSource fresh(Planner(s).plan(), toy_search_options(8));
  run_search(executor, cumulative);
  run_search(executor, fresh);
  EXPECT_NE(cumulative.plan().to_json(), fresh.plan().to_json());
}

// --- the search-state document ----------------------------------------------

SearchState sample_state(const Scenario& s) {
  Executor executor(s);
  SearchWorkSource source(Planner(s).plan(), toy_search_options(6, 4));
  run_search(executor, source);
  return source.state();
}

TEST(SearchState, JsonRoundTripIsByteIdentical) {
  SearchState st = sample_state(toy_scenario());
  ASSERT_FALSE(st.items.empty());
  ASSERT_FALSE(st.completed_ids.empty());
  const std::string json = search_state_to_json(st);
  EXPECT_EQ(search_state_to_json(search_state_from_json(json)), json);
}

TEST(SearchState, ParseRecoversEveryField) {
  SearchState st = sample_state(toy_scenario());
  SearchState rt = search_state_from_json(search_state_to_json(st));
  EXPECT_EQ(rt.scenario_name, st.scenario_name);
  EXPECT_EQ(rt.seed, st.seed);
  EXPECT_EQ(rt.budget, st.budget);
  EXPECT_EQ(rt.batch, st.batch);
  ASSERT_EQ(rt.items.size(), st.items.size());
  for (std::size_t i = 0; i < st.items.size(); ++i) {
    EXPECT_EQ(rt.items[i].point, st.items[i].point);
    EXPECT_EQ(rt.items[i].site, st.items[i].site);
    EXPECT_EQ(rt.items[i].kind, st.items[i].kind);
    EXPECT_EQ(rt.items[i].fault, st.items[i].fault);
    EXPECT_EQ(rt.items[i].param, st.items[i].param);
  }
  EXPECT_EQ(rt.wave_ends, st.wave_ends);
  EXPECT_EQ(rt.completed_ids, st.completed_ids);
  ASSERT_EQ(rt.outcomes.size(), st.outcomes.size());
  for (std::size_t i = 0; i < st.outcomes.size(); ++i) {
    EXPECT_EQ(rt.outcomes[i].fired, st.outcomes[i].fired);
    EXPECT_EQ(rt.outcomes[i].violated, st.outcomes[i].violated);
    EXPECT_EQ(rt.outcomes[i].exit_code, st.outcomes[i].exit_code);
  }
}

TEST(SearchState, RejectsForeignAndMalformedDocuments) {
  SearchState st = sample_state(toy_scenario());
  const std::string good = search_state_to_json(st);

  auto corrupt = [&](const std::string& from, const std::string& to) {
    std::string bad = good;
    const auto pos = bad.find(from);
    ASSERT_NE(pos, std::string::npos) << from;
    bad.replace(pos, from.size(), to);
    EXPECT_THROW(search_state_from_json(bad), WireError) << from;
  };
  corrupt("\"kind\": \"search-state\"", "\"kind\": \"campaign-report\"");
  corrupt("\"schema_version\": 1", "\"schema_version\": 99");
  EXPECT_THROW(search_state_from_json("not json"), WireError);
  EXPECT_THROW(search_state_from_json("{}"), WireError);

  // Wave boundaries must be ascending and end at the item count.
  SearchState bad_waves = st;
  ASSERT_FALSE(bad_waves.wave_ends.empty());
  bad_waves.wave_ends.back() += 1;
  EXPECT_THROW(
      search_state_from_json(search_state_to_json(bad_waves)), WireError);

  // Completed ids must be ascending and in range.
  SearchState bad_ids = st;
  ASSERT_GE(bad_ids.completed_ids.size(), 2u);
  std::swap(bad_ids.completed_ids.front(), bad_ids.completed_ids.back());
  EXPECT_THROW(
      search_state_from_json(search_state_to_json(bad_ids)), WireError);
}

// --- checkpoint / resume ----------------------------------------------------

TEST(SearchResume, ResumedSearchMatchesTheUninterruptedOne) {
  Scenario s = toy_scenario();
  Executor executor(s);

  // The control: one uninterrupted search, checkpointing every barrier.
  std::vector<SearchState> barriers;
  SearchWorkSource control(Planner(s).plan(), toy_search_options(10, 4));
  control.set_checkpoint(
      [&](const SearchState& st) { barriers.push_back(st); });
  SearchRunResult full = run_search(executor, control);
  ASSERT_GE(barriers.size(), 2u);

  // Resume from every intermediate barrier: each must re-generate the
  // identical stream and merge to the identical report — this is the
  // property that makes a kill -9 at any barrier recoverable.
  for (const SearchState& st : barriers) {
    SearchWorkSource resumed(Planner(s).plan(), toy_search_options(10, 4));
    resumed.resume(st);
    SearchRunResult r = run_search(executor, resumed);
    EXPECT_EQ(resumed.plan().to_json(), control.plan().to_json());
    expect_identical(full.result, r.result);
  }
}

TEST(SearchResume, StopAfterCheckpointsAndReportsStopped) {
  Scenario s = toy_scenario();
  Executor executor(s);
  std::size_t checkpoints = 0;
  SearchWorkSource source(Planner(s).plan(), toy_search_options(10, 4));
  source.set_checkpoint([&](const SearchState&) { ++checkpoints; });
  SearchRunResult run = run_search(executor, source, {}, 1);
  EXPECT_TRUE(run.stopped);
  EXPECT_EQ(run.waves, 1u);
  EXPECT_GE(checkpoints, 1u);  // the clean-stop checkpoint flushed
}

TEST(SearchResume, RejectsACheckpointFromADifferentSearch) {
  Scenario s = toy_scenario();
  SearchState st = sample_state(s);

  {
    SearchOptions other = toy_search_options(6, 4);
    other.seed = 99;
    SearchWorkSource source(Planner(s).plan(), other);
    EXPECT_THROW(source.resume(st), WireError);
  }
  {
    SearchWorkSource source(Planner(s).plan(), toy_search_options(7, 4));
    EXPECT_THROW(source.resume(st), WireError);  // budget mismatch
  }
  {
    SearchState foreign = st;
    foreign.scenario_name = "somebody-else";
    SearchWorkSource source(Planner(s).plan(), toy_search_options(6, 4));
    EXPECT_THROW(source.resume(foreign), WireError);
  }
}

// --- the FEEDBACK spec ------------------------------------------------------

TEST(SearchFeedback, SpecRoundTripsThroughTheParser) {
  Scenario s = toy_scenario();
  InjectionPlan plan = Planner(s).plan();
  ASSERT_GE(plan.items.size(), 3u);
  plan.items[1].param = 771;  // a mutated item must survive the trip

  const std::string spec = feedback_spec(plan, 1, 3);
  std::vector<WorkItem> items = parse_feedback_spec(spec, plan.points.size());
  ASSERT_EQ(items.size(), 2u);
  for (std::size_t i = 0; i < items.size(); ++i) {
    const WorkItem& want = plan.items[1 + i];
    EXPECT_EQ(items[i].point_index, want.point_index);
    EXPECT_EQ(items[i].fault.kind, want.fault.kind);
    EXPECT_EQ(items[i].fault.name(), want.fault.name());
    EXPECT_EQ(items[i].param, want.param);
  }
}

TEST(SearchFeedback, ParserRejectsMalformedSpecs) {
  const std::vector<std::string> bad = {
      "",
      "0:i:close-fails",        // missing param
      "0:x:close-fails:0",      // unknown kind letter
      "9:d:file-existence:0",   // point out of range
      "0:d:no-such-fault:0",    // unresolvable fault
      "0:d:file-existence:x",   // param not a number
      "0:d:file-existence:0,",  // trailing comma
  };
  for (const std::string& spec : bad) {
    SCOPED_TRACE("'" + spec + "'");
    EXPECT_THROW(parse_feedback_spec(spec, 3), WireError);
  }
}

TEST(SearchFeedback, SpecRejectsRangesOutsideThePlan) {
  Scenario s = toy_scenario();
  InjectionPlan plan = Planner(s).plan();
  EXPECT_THROW(feedback_spec(plan, 0, 0), WireError);
  EXPECT_THROW(
      feedback_spec(plan, plan.items.size(), plan.items.size() + 1),
      WireError);
}

}  // namespace
}  // namespace ep::core
