// The declarative scenario spec codec (core/scenario_spec.hpp,
// docs/SCENARIO_AUTHORING.md): canonical round trip — parse(serialize(s))
// re-serializes to the same bytes — plus one test per malformed-spec
// error path. The reader is strict by design: a typo'd key, a wrong
// type, or an unknown enum value must raise a WireError naming the
// offending field (or the line/column for syntax errors), never silently
// mean "default".
#include "core/scenario_spec.hpp"

#include <gtest/gtest.h>

#include "apps/scenarios.hpp"
#include "apps/spec_env.hpp"
#include "core/planner.hpp"
#include "core/wire.hpp"

namespace ep::core {
namespace {

/// The message of the WireError `fn` must throw.
template <typename Fn>
std::string spec_error_of(Fn&& fn) {
  try {
    fn();
  } catch (const WireError& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected WireError";
  return {};
}

std::string parse_error(const std::string& text) {
  return spec_error_of([&] { (void)spec_from_json(text); });
}

TEST(ScenarioSpecTest, CanonicalRoundTripForEveryResolvableSpec) {
  // Every packaged, demo, and generated spec must survive
  // serialize -> parse -> serialize byte-identically: the serializer
  // output is the canonical encoding --scenario-file consumers and the
  // authoring docs rely on.
  std::vector<std::string> names = {"lpr",     "turnin",       "mailer",
                                    "logind",  "netcpd",       "cronhelpd",
                                    "rshd",    "journald",     "vault",
                                    "nt-fontcleanup", "redzone-demo",
                                    "fam-spool-d2-open-setuid-tight",
                                    "fam-relay-m2-closed-checked-b16",
                                    "fam-regchain-c3-exec-open-root"};
  for (const auto& name : names) {
    auto spec = apps::resolve_spec(name);
    ASSERT_TRUE(spec.has_value()) << name;
    std::string once = spec_to_json(*spec);
    ScenarioSpec parsed = spec_from_json(once);
    EXPECT_EQ(once, spec_to_json(parsed)) << name;
    EXPECT_EQ(parsed.name, name);
  }
}

TEST(ScenarioSpecTest, ParsedSpecCompilesToTheSameScenario) {
  // The round-tripped spec compiles into a scenario whose plan equals
  // the original's — the spec file really is the whole scenario.
  auto spec = apps::resolve_spec("rshd");
  ASSERT_TRUE(spec.has_value());
  ScenarioSpec reparsed = spec_from_json(spec_to_json(*spec));
  Scenario a = compile_spec(*spec, apps::spec_environment());
  Scenario b = compile_spec(reparsed, apps::spec_environment());
  CampaignOptions opts;
  opts.use_world_cache = false;
  EXPECT_EQ(Planner(a).plan(opts).to_json(), Planner(b).plan(opts).to_json());
}

TEST(ScenarioSpecTest, SyntaxErrorCarriesLineAndColumn) {
  std::string err = parse_error("{\n  \"kind\": \"scenario-spec\",\n  !\n}");
  EXPECT_NE(err.find("scenario spec"), std::string::npos) << err;
  EXPECT_NE(err.find("line 3"), std::string::npos) << err;
  EXPECT_NE(err.find("column"), std::string::npos) << err;
}

TEST(ScenarioSpecTest, TruncatedDocumentCarriesLineAndColumn) {
  std::string err = parse_error("{\"kind\": \"scenario-spec\",");
  EXPECT_NE(err.find("line 1"), std::string::npos) << err;
}

TEST(ScenarioSpecTest, RejectsNonObjectTopLevel) {
  std::string err = parse_error("[1, 2, 3]\n");
  EXPECT_NE(err.find("top level"), std::string::npos) << err;
  EXPECT_NE(err.find("expected an object"), std::string::npos) << err;
}

TEST(ScenarioSpecTest, RejectsMissingKind) {
  std::string err = parse_error("{\"schema_version\": 1, \"name\": \"x\"}");
  EXPECT_NE(err.find("missing required key \"kind\""), std::string::npos)
      << err;
}

TEST(ScenarioSpecTest, RejectsWrongKind) {
  std::string err = parse_error(
      "{\"kind\": \"injection-plan\", \"schema_version\": 1, "
      "\"name\": \"x\"}");
  EXPECT_NE(err.find("expected \"scenario-spec\""), std::string::npos) << err;
}

TEST(ScenarioSpecTest, RejectsFutureSchemaVersion) {
  std::string err = parse_error(
      "{\"kind\": \"scenario-spec\", \"schema_version\": 999, "
      "\"name\": \"x\"}");
  EXPECT_NE(err.find("unsupported version 999"), std::string::npos) << err;
  EXPECT_NE(err.find("reads up to"), std::string::npos) << err;
}

TEST(ScenarioSpecTest, RejectsEmptyName) {
  std::string err = parse_error(
      "{\"kind\": \"scenario-spec\", \"schema_version\": 1, "
      "\"name\": \"\"}");
  EXPECT_NE(err.find("name"), std::string::npos) << err;
  EXPECT_NE(err.find("must not be empty"), std::string::npos) << err;
}

TEST(ScenarioSpecTest, RejectsUnknownTopLevelKey) {
  std::string err = parse_error(
      "{\"kind\": \"scenario-spec\", \"schema_version\": 1, "
      "\"name\": \"x\", \"wrold\": []}");
  EXPECT_NE(err.find("unknown key \"wrold\""), std::string::npos) << err;
}

TEST(ScenarioSpecTest, RejectsWrongTypeForUsers) {
  std::string err = parse_error(
      "{\"kind\": \"scenario-spec\", \"schema_version\": 1, "
      "\"name\": \"x\", \"users\": \"alice\"}");
  EXPECT_NE(err.find("users"), std::string::npos) << err;
  EXPECT_NE(err.find("expected an array"), std::string::npos) << err;
}

TEST(ScenarioSpecTest, RejectsUserMissingUid) {
  std::string err = parse_error(
      "{\"kind\": \"scenario-spec\", \"schema_version\": 1, "
      "\"name\": \"x\", \"users\": [{\"name\": \"alice\", \"gid\": 7}]}");
  EXPECT_NE(err.find("users[0]"), std::string::npos) << err;
  EXPECT_NE(err.find("missing required key \"uid\""), std::string::npos)
      << err;
}

TEST(ScenarioSpecTest, RejectsUidOutOfRange) {
  std::string err = parse_error(
      "{\"kind\": \"scenario-spec\", \"schema_version\": 1, "
      "\"name\": \"x\", \"users\": "
      "[{\"uid\": -1, \"name\": \"alice\", \"gid\": 7}]}");
  EXPECT_NE(err.find("users[0].uid"), std::string::npos) << err;
  EXPECT_NE(err.find("out of range"), std::string::npos) << err;
}

TEST(ScenarioSpecTest, RejectsUnknownWorldOp) {
  std::string err = parse_error(
      "{\"kind\": \"scenario-spec\", \"schema_version\": 1, "
      "\"name\": \"x\", \"world\": [{\"op\": \"device\", "
      "\"path\": \"/dev/null\", \"uid\": 0, \"gid\": 0, "
      "\"mode\": \"0644\"}]}");
  EXPECT_NE(err.find("world[0].op"), std::string::npos) << err;
  EXPECT_NE(err.find("unknown world op \"device\""), std::string::npos)
      << err;
}

TEST(ScenarioSpecTest, RejectsNonOctalMode) {
  std::string err = parse_error(
      "{\"kind\": \"scenario-spec\", \"schema_version\": 1, "
      "\"name\": \"x\", \"world\": [{\"op\": \"dir\", \"path\": \"/a\", "
      "\"uid\": 0, \"gid\": 0, \"mode\": \"rwxr-xr-x\"}]}");
  EXPECT_NE(err.find("world[0].mode"), std::string::npos) << err;
  EXPECT_NE(err.find("octal"), std::string::npos) << err;
}

TEST(ScenarioSpecTest, RejectsFileOpWithoutContent) {
  std::string err = parse_error(
      "{\"kind\": \"scenario-spec\", \"schema_version\": 1, "
      "\"name\": \"x\", \"world\": [{\"op\": \"file\", \"path\": \"/a\", "
      "\"uid\": 0, \"gid\": 0, \"mode\": \"0644\"}]}");
  EXPECT_NE(err.find("world[0]"), std::string::npos) << err;
  EXPECT_NE(err.find("missing required key \"content\""), std::string::npos)
      << err;
}

TEST(ScenarioSpecTest, RejectsUnknownChannelKind) {
  std::string err = parse_error(
      "{\"kind\": \"scenario-spec\", \"schema_version\": 1, "
      "\"name\": \"x\", \"network\": {\"hosts\": [], \"services\": "
      "[{\"name\": \"s\", \"channel\": \"carrier-pigeon\", "
      "\"available\": true, \"trusted\": true, \"handler\": \"h\"}]}}");
  EXPECT_NE(err.find("unknown channel \"carrier-pigeon\""),
            std::string::npos)
      << err;
}

TEST(ScenarioSpecTest, RejectsUnknownSiteKind) {
  std::string err = parse_error(
      "{\"kind\": \"scenario-spec\", \"schema_version\": 1, "
      "\"name\": \"x\", \"sites\": [{\"tag\": \"t\", "
      "\"kind\": \"quantum\", \"faults\": [], \"not_applicable\": {}, "
      "\"skip\": false}]}");
  EXPECT_NE(err.find("unknown object kind \"quantum\""), std::string::npos)
      << err;
}

TEST(ScenarioSpecTest, RejectsUnknownInputSemantic) {
  std::string err = parse_error(
      "{\"kind\": \"scenario-spec\", \"schema_version\": 1, "
      "\"name\": \"x\", \"sites\": [{\"tag\": \"t\", \"kind\": \"file\", "
      "\"semantic\": \"astrology\", \"faults\": [], "
      "\"not_applicable\": {}, \"skip\": false}]}");
  EXPECT_NE(err.find("unknown input semantic \"astrology\""),
            std::string::npos)
      << err;
}

TEST(ScenarioSpecTest, RejectsDuplicateSiteTag) {
  std::string site =
      "{\"tag\": \"t\", \"kind\": \"file\", \"faults\": [], "
      "\"not_applicable\": {}, \"skip\": false}";
  std::string err = parse_error(
      "{\"kind\": \"scenario-spec\", \"schema_version\": 1, "
      "\"name\": \"x\", \"sites\": [" + site + ", " + site + "]}");
  EXPECT_NE(err.find("duplicate site tag \"t\""), std::string::npos) << err;
}

// ---- compile-time validation (spec -> Scenario) ---------------------------

TEST(ScenarioSpecTest, CompileRejectsEmptyRunRecipe) {
  ScenarioSpec s;
  s.name = "x";
  std::string err = spec_error_of(
      [&] { (void)compile_spec(s, apps::spec_environment()); });
  EXPECT_NE(err.find("run recipe is empty"), std::string::npos) << err;
}

TEST(ScenarioSpecTest, CompileRejectsUnknownImage) {
  ScenarioSpec s;
  s.name = "x";
  s.images = {"no-such-image"};
  s.run.push_back({"/bin/x", {"x"}, 0, 0, {}, "/"});
  std::string err = spec_error_of(
      [&] { (void)compile_spec(s, apps::spec_environment()); });
  EXPECT_NE(err.find("unknown image \"no-such-image\""), std::string::npos)
      << err;
}

TEST(ScenarioSpecTest, CompileRejectsProgramOpWithUnregisteredImage) {
  ScenarioSpec s;
  s.name = "x";
  s.world.push_back(spec_builders::program_op("/bin/x", "lpr"));
  s.run.push_back({"/bin/x", {"x"}, 0, 0, {}, "/"});
  std::string err = spec_error_of(
      [&] { (void)compile_spec(s, apps::spec_environment()); });
  EXPECT_NE(err.find("references image \"lpr\""), std::string::npos) << err;
}

TEST(ScenarioSpecTest, CompileRejectsUnknownHandler) {
  ScenarioSpec s;
  s.name = "x";
  SpecService svc;
  svc.name = "authsvc";
  svc.handler = "no-such-handler";
  s.network.services.push_back(svc);
  s.run.push_back({"/bin/x", {"x"}, 0, 0, {}, "/"});
  std::string err = spec_error_of(
      [&] { (void)compile_spec(s, apps::spec_environment()); });
  EXPECT_NE(err.find("unknown handler \"no-such-handler\""),
            std::string::npos)
      << err;
}

TEST(ScenarioSpecTest, CompileRejectsUnknownFaultName) {
  ScenarioSpec s;
  s.name = "x";
  s.run.push_back({"/bin/x", {"x"}, 0, 0, {}, "/"});
  SiteSpec site;
  site.faults = {"no-such-fault"};
  s.sites.emplace_back("tag", site);
  std::string err = spec_error_of(
      [&] { (void)compile_spec(s, apps::spec_environment()); });
  EXPECT_NE(err.find("unknown fault \"no-such-fault\""), std::string::npos)
      << err;
}

TEST(ScenarioSpecTest, CompiledScenariosAreAlwaysSnapshotSafe) {
  auto spec = apps::resolve_spec("lpr");
  ASSERT_TRUE(spec.has_value());
  Scenario s = compile_spec(*spec, apps::spec_environment());
  EXPECT_TRUE(s.snapshot_safe);
}

}  // namespace
}  // namespace ep::core
