// Catalog shape tests: the executable Tables 5 and 6 must carry exactly
// the paper's rows, and the semantic lookups must partition them.
#include "core/catalog.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace ep::core {
namespace {

const FaultCatalog& cat() { return FaultCatalog::standard(); }

TEST(Catalog, IndirectEntriesPerCategoryMatchTable5) {
  std::map<IndirectCategory, int> by_cat;
  for (const auto& f : cat().indirect()) ++by_cat[f.category];
  EXPECT_EQ(by_cat[IndirectCategory::user_input], 10);  // 5 file-name + 5 cmd
  EXPECT_EQ(by_cat[IndirectCategory::environment_variable], 6);  // 5 path + 1 mask
  EXPECT_EQ(by_cat[IndirectCategory::file_system_input], 6);  // 4 name + 2 ext
  EXPECT_EQ(by_cat[IndirectCategory::network_input], 8);  // ip/packet/host/dns x2
  EXPECT_EQ(by_cat[IndirectCategory::process_input], 2);  // message x2
}

TEST(Catalog, IndirectNamesAreUnique) {
  std::set<std::string> names;
  for (const auto& f : cat().indirect())
    EXPECT_TRUE(names.insert(f.name).second) << "duplicate " << f.name;
}

TEST(Catalog, DirectNamesAreUnique) {
  std::set<std::string> names;
  for (const auto& f : cat().direct())
    EXPECT_TRUE(names.insert(f.name).second) << "duplicate " << f.name;
}

TEST(Catalog, DirectEntriesPerEntityMatchTable6) {
  std::map<DirectEntity, int> by_entity;
  for (const auto& f : cat().direct())
    if (!f.extension) ++by_entity[f.entity];
  EXPECT_EQ(by_entity[DirectEntity::file_system], 7);
  // 5 attribute rows, protocol expanded into its 3 listed violations.
  EXPECT_EQ(by_entity[DirectEntity::network], 7);
  EXPECT_EQ(by_entity[DirectEntity::process], 3);
}

TEST(Catalog, RegistryExtensionMarked) {
  int extensions = 0;
  for (const auto& f : cat().direct())
    if (f.extension) ++extensions;
  EXPECT_EQ(extensions, 4);
}

TEST(Catalog, EveryEntryHasCallableAndDescription) {
  for (const auto& f : cat().indirect()) {
    EXPECT_TRUE(static_cast<bool>(f.mutate)) << f.name;
    EXPECT_FALSE(f.description.empty()) << f.name;
  }
  for (const auto& f : cat().direct()) {
    EXPECT_TRUE(static_cast<bool>(f.perturb)) << f.name;
    EXPECT_FALSE(f.description.empty()) << f.name;
  }
}

TEST(Catalog, IndirectForPartitionsBySemantic) {
  std::size_t total = 0;
  for (InputSemantic s :
       {InputSemantic::file_name, InputSemantic::command,
        InputSemantic::path_list, InputSemantic::permission_mask,
        InputSemantic::file_extension, InputSemantic::ip_address,
        InputSemantic::packet, InputSemantic::host_name,
        InputSemantic::dns_reply, InputSemantic::ipc_message})
    total += cat().indirect_for(s).size();
  EXPECT_EQ(total, cat().indirect().size());
}

TEST(Catalog, DirectForFileKind) {
  auto faults = cat().direct_for(ObjectKind::file);
  EXPECT_EQ(faults.size(), 7u);
  for (const auto* f : faults) {
    EXPECT_EQ(f->entity, DirectEntity::file_system);
    EXPECT_FALSE(f->extension);
  }
}

TEST(Catalog, DirectForNetworkKinds) {
  EXPECT_EQ(cat().direct_for(ObjectKind::net_inbound).size(), 6u);
  EXPECT_EQ(cat().direct_for(ObjectKind::net_service).size(), 2u);
  EXPECT_EQ(cat().direct_for(ObjectKind::ipc_service).size(), 3u);
}

TEST(Catalog, DirectForRegistryUsesExtensions) {
  auto faults = cat().direct_for(ObjectKind::registry_key);
  EXPECT_EQ(faults.size(), 4u);
  for (const auto* f : faults) EXPECT_TRUE(f->extension);
}

TEST(Catalog, InputOnlyKindsHaveNoDirectFaults) {
  EXPECT_TRUE(cat().direct_for(ObjectKind::user_input).empty());
  EXPECT_TRUE(cat().direct_for(ObjectKind::env_var).empty());
  EXPECT_TRUE(cat().direct_for(ObjectKind::none).empty());
}

TEST(Catalog, FindByName) {
  EXPECT_NE(cat().find_indirect("change-length"), nullptr);
  EXPECT_NE(cat().find_direct("symbolic-link"), nullptr);
  EXPECT_EQ(cat().find_indirect("no-such"), nullptr);
  EXPECT_EQ(cat().find_direct("no-such"), nullptr);
}

// --- generator behaviour (parameterized sanity over all of Table 5) --------

class AllGenerators : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AllGenerators, ProducesDifferentValueOnTypicalInput) {
  const IndirectFault& f = cat().indirect()[GetParam()];
  ScenarioHints hints;
  std::string original = "sample.txt";
  if (f.semantic == InputSemantic::path_list) original = "/bin:/usr/bin";
  if (f.semantic == InputSemantic::permission_mask) original = "022";
  if (f.semantic == InputSemantic::ip_address) original = "10.0.0.1";
  std::string mutated = f.mutate(original, hints);
  EXPECT_NE(mutated, original) << f.name;
  EXPECT_FALSE(mutated.empty()) << f.name;
}

TEST_P(AllGenerators, ToleratesEmptyInput) {
  const IndirectFault& f = cat().indirect()[GetParam()];
  ScenarioHints hints;
  // Must not throw on the degenerate input.
  (void)f.mutate("", hints);
}

INSTANTIATE_TEST_SUITE_P(
    Table5, AllGenerators,
    ::testing::Range<std::size_t>(0, FaultCatalog::standard().indirect().size()));

TEST(Generators, ChangeLengthHitsHintLength) {
  ScenarioHints hints;
  hints.long_length = 1000;
  const auto* f = cat().find_indirect("change-length");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->mutate("x", hints).size(), 1000u);
}

TEST(Generators, InsertDotdotPrefixes) {
  ScenarioHints hints;
  const auto* f = cat().find_indirect("insert-dotdot");
  EXPECT_EQ(f->mutate("hw1.c", hints), "../hw1.c");
}

TEST(Generators, PathInsertUntrustedPrepends) {
  ScenarioHints hints;
  hints.attacker_dir = "/tmp/evil";
  const auto* f = cat().find_indirect("path-insert-untrusted");
  EXPECT_EQ(f->mutate("/bin:/usr/bin", hints), "/tmp/evil:/bin:/usr/bin");
}

TEST(Generators, PathRearrangeReverses) {
  ScenarioHints hints;
  const auto* f = cat().find_indirect("path-rearrange-order");
  EXPECT_EQ(f->mutate("/a:/b:/c", hints), "/c:/b:/a");
}

TEST(Generators, MaskZero) {
  ScenarioHints hints;
  const auto* f = cat().find_indirect("mask-zero");
  EXPECT_EQ(f->mutate("022", hints), "0");
}

TEST(Generators, ExtensionChange) {
  ScenarioHints hints;
  const auto* f = cat().find_indirect("ext-change");
  EXPECT_EQ(f->mutate("report.txt", hints), "report.exe");
  EXPECT_EQ(f->mutate("noext", hints), "noext.exe");
}

// --- object kind / semantic inference ---------------------------------------

TEST(Inference, ObjectKindFromCall) {
  os::SyscallCtx ctx;
  ctx.call = "open";
  EXPECT_EQ(infer_object_kind(ctx), ObjectKind::file);
  ctx.call = "exec";
  EXPECT_EQ(infer_object_kind(ctx), ObjectKind::exec_binary);
  ctx.call = "arg";
  EXPECT_EQ(infer_object_kind(ctx), ObjectKind::user_input);
  ctx.call = "getenv";
  EXPECT_EQ(infer_object_kind(ctx), ObjectKind::env_var);
  ctx.call = "regread";
  EXPECT_EQ(infer_object_kind(ctx), ObjectKind::registry_key);
  ctx.call = "recv";
  ctx.channel_kind = "network";
  EXPECT_EQ(infer_object_kind(ctx), ObjectKind::net_inbound);
  ctx.channel_kind = "ipc";
  EXPECT_EQ(infer_object_kind(ctx), ObjectKind::ipc_service);
  ctx.call = "connect";
  ctx.channel_kind = "network";
  EXPECT_EQ(infer_object_kind(ctx), ObjectKind::net_service);
}

TEST(Inference, SemanticFromCall) {
  os::SyscallCtx ctx;
  ctx.call = "getenv";
  ctx.aux = "PATH";
  EXPECT_EQ(infer_semantic(ctx), InputSemantic::path_list);
  ctx.aux = "LD_LIBRARY_PATH";
  EXPECT_EQ(infer_semantic(ctx), InputSemantic::path_list);
  ctx.aux = "UMASK";
  EXPECT_EQ(infer_semantic(ctx), InputSemantic::permission_mask);
  ctx.aux = "HOME";
  EXPECT_EQ(infer_semantic(ctx), InputSemantic::file_name);
  ctx.call = "recv";
  EXPECT_EQ(infer_semantic(ctx), InputSemantic::packet);
  ctx.call = "dns";
  EXPECT_EQ(infer_semantic(ctx), InputSemantic::dns_reply);
  ctx.call = "arg";
  EXPECT_EQ(infer_semantic(ctx), InputSemantic::file_name);
}

TEST(FaultModelNames, AllEnumsPrintable) {
  EXPECT_EQ(to_string(FaultKind::indirect), "indirect");
  EXPECT_EQ(to_string(IndirectCategory::user_input), "user input");
  EXPECT_EQ(to_string(DirectEntity::file_system), "file system");
  EXPECT_EQ(to_string(InputSemantic::path_list),
            "execution path + library path");
  EXPECT_EQ(to_string(EnvAttribute::symbolic_link), "symbolic link");
  EXPECT_EQ(to_string(ObjectKind::registry_key), "registry key");
}

}  // namespace
}  // namespace ep::core
