// The shared-memory data plane (core/arena.hpp, core/transport.hpp's
// ShmLocalTransport): arena create/open round trips, header validation
// against corrupt or foreign files, the (offset, length) DONE handoff
// checks, segment re-lease cleanliness, and the arena-sizing contract
// against the orchestrator's lease partition.
#include "core/arena.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/campaign_fixtures.hpp"
#include "core/transport.hpp"
#include "core/wire.hpp"
#include "util/strings.hpp"

namespace ep::core {
namespace {

InjectionPlan toy_plan() {
  Scenario s = toy_scenario();
  CampaignOptions opts;
  opts.use_world_cache = false;
  return Planner(s).plan(opts);
}

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "epa_arena_test." + name + "." +
         std::to_string(static_cast<long long>(::getpid()));
}

template <typename Fn>
std::string arena_error_of(Fn&& fn) {
  try {
    fn();
  } catch (const ArenaError& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected ArenaError";
  return {};
}

void write_bytes(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  ASSERT_EQ(std::fclose(f), 0);
}

std::string read_bytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::string out;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

TEST(Arena, CreateOpenRoundTrip) {
  std::string path = temp_path("roundtrip");
  std::string plan_bin = plan_to_binary(toy_plan());
  {
    ShmArena a = ShmArena::create(path, plan_bin, 3, 256);
    EXPECT_EQ(a.plan_size(), plan_bin.size());
    EXPECT_EQ(a.segment_count(), 3u);
    EXPECT_EQ(a.segment_bytes(), 256u);
    EXPECT_EQ(0, std::memcmp(a.plan_data(), plan_bin.data(),
                             plan_bin.size()));
  }
  ShmArena b = ShmArena::open(path);
  EXPECT_EQ(b.plan_size(), plan_bin.size());
  EXPECT_EQ(b.segment_count(), 3u);
  EXPECT_EQ(b.segment_bytes(), 256u);
  // The frozen plan decodes out of the mapping directly.
  InjectionPlan decoded = plan_from_binary(b.plan_data(), b.plan_size());
  EXPECT_EQ(decoded.to_json(), toy_plan().to_json());
  // Segments sit contiguously after the plan, exactly covering the file.
  EXPECT_EQ(b.segment_offset(0), 64 + plan_bin.size());
  EXPECT_EQ(b.segment_offset(2), b.segment_offset(0) + 2 * 256);
  EXPECT_EQ(b.size(), b.segment_offset(2) + 256);
  std::remove(path.c_str());
}

TEST(Arena, WritesInOneMappingAreSeenByAnother) {
  // Same-host MAP_SHARED coherence — what the worker/coordinator pair
  // relies on, exercised through two independent mappings of the file.
  std::string path = temp_path("coherent");
  ShmArena writer = ShmArena::create(path, "plan-bytes", 2, 64);
  ShmArena reader = ShmArena::open(path);
  const char msg[] = "report in segment 1";
  std::memcpy(writer.segment(1), msg, sizeof msg);
  EXPECT_EQ(0, std::memcmp(reader.segment(1), msg, sizeof msg));
  std::remove(path.c_str());
}

TEST(Arena, ReLeasedSegmentDecodesCleanlyAfterPartialGarbage) {
  // Re-lease safety by construction: a preempted worker leaves arbitrary
  // half-written bytes; the replacement overwrites from the segment's
  // start and the decoder reads only [offset, offset+length).
  Scenario s = toy_scenario();
  InjectionPlan plan = Planner(s).plan({});
  std::string report_bin =
      shard_report_to_binary(run_lease(Executor(s), plan, 0, 2));
  std::string path = temp_path("release");
  ShmArena a = ShmArena::create(path, plan_to_binary(plan), 1,
                                report_bin.size() + 128);
  std::memset(a.segment(0), 0xAB, a.segment_bytes());  // the dead partial
  std::memcpy(a.segment(0), report_bin.data(), report_bin.size());
  ShardReport decoded = shard_report_from_binary(
      a.data() + a.segment_offset(0), report_bin.size());
  EXPECT_TRUE(decoded.complete);
  EXPECT_EQ(shard_report_to_binary(decoded), report_bin);
  std::remove(path.c_str());
}

TEST(Arena, HandoffChecksOffsetAndLength) {
  std::string path = temp_path("handoff");
  ShmArena a = ShmArena::create(path, "0123456789", 2, 128);
  std::size_t seg1 = a.segment_offset(1);
  a.check_handoff(1, seg1, 128);  // the full segment is fine
  a.check_handoff(1, seg1, 0);    // so is an empty report

  std::string msg =
      arena_error_of([&] { a.check_handoff(1, seg1 + 1, 16); });
  EXPECT_TRUE(contains(msg, "segment starts at " + std::to_string(seg1)));
  msg = arena_error_of([&] { a.check_handoff(0, seg1, 16); });
  EXPECT_TRUE(contains(msg, "lease 0's segment starts at"));
  msg = arena_error_of([&] { a.check_handoff(1, seg1, 129); });
  EXPECT_TRUE(contains(msg, "segments hold at most 128"));
  msg = arena_error_of([&] { a.check_handoff(2, seg1, 16); });
  EXPECT_TRUE(contains(msg, "segment 2 out of range (arena holds 2)"));
  std::remove(path.c_str());
}

TEST(ArenaErrors, MissingFile) {
  std::string msg = arena_error_of(
      [] { (void)ShmArena::open("/no/such/dir/epa.arena"); });
  EXPECT_TRUE(contains(msg, "arena '/no/such/dir/epa.arena': open:"));
}

TEST(ArenaErrors, TruncatedHeader) {
  std::string path = temp_path("short");
  write_bytes(path, "EPARENA1 too short");
  std::string msg = arena_error_of([&] { (void)ShmArena::open(path); });
  EXPECT_TRUE(contains(msg, "truncated header"));
  std::remove(path.c_str());
}

TEST(ArenaErrors, BadMagic) {
  std::string path = temp_path("magic");
  { ShmArena::create(path, "plan", 1, 32); }
  std::string bytes = read_bytes(path);
  bytes[0] = 'X';
  write_bytes(path, bytes);
  std::string msg = arena_error_of([&] { (void)ShmArena::open(path); });
  EXPECT_TRUE(contains(msg, "not an arena file (bad magic)"));
  std::remove(path.c_str());
}

TEST(ArenaErrors, ForeignEndianness) {
  std::string path = temp_path("endian");
  { ShmArena::create(path, "plan", 1, 32); }
  std::string bytes = read_bytes(path);
  std::swap(bytes[8], bytes[11]);  // byte-swap the order tag
  std::swap(bytes[9], bytes[10]);
  write_bytes(path, bytes);
  std::string msg = arena_error_of([&] { (void)ShmArena::open(path); });
  EXPECT_TRUE(contains(msg, "foreign endianness"));
  std::remove(path.c_str());
}

TEST(ArenaErrors, TruncatedFileFailsTheDeclaredTotal) {
  std::string path = temp_path("total");
  { ShmArena::create(path, "plan", 1, 32); }
  std::string bytes = read_bytes(path);
  write_bytes(path, bytes.substr(0, bytes.size() - 1));
  std::string msg = arena_error_of([&] { (void)ShmArena::open(path); });
  EXPECT_TRUE(contains(msg, "truncated?"));
  std::remove(path.c_str());
}

TEST(ArenaErrors, SegmentRegionMustCoverTheFileExactly) {
  std::string path = temp_path("segments");
  { ShmArena::create(path, "plan", 2, 32); }
  std::string bytes = read_bytes(path);
  std::uint64_t three = 3;  // claim 3 segments in a 2-segment file
  std::memcpy(&bytes[40], &three, sizeof three);
  write_bytes(path, bytes);
  std::string msg = arena_error_of([&] { (void)ShmArena::open(path); });
  EXPECT_TRUE(contains(msg, "segment region does not fit the file"));
  std::remove(path.c_str());
}

// --- the transport's arena-sizing contract ----------------------------------
// (The suite name also keys the CI TSan filter: Arena|ShmTransport.)

struct ExposedShm : ShmLocalTransport {
  using ShmLocalTransport::ShmLocalTransport;
  using ShmLocalTransport::lease_token;
  using ShmLocalTransport::worker_args;
};

TEST(ShmTransport, SegmentBytesScaleWithTheLargestLease) {
  EXPECT_GT(arena_segment_bytes(0), 0u);
  EXPECT_GT(arena_segment_bytes(8), arena_segment_bytes(1));
  // The budget is generous by design: a full toy-plan lease report must
  // fit with ample slack (violations and exploit notes included).
  Scenario s = toy_scenario();
  InjectionPlan plan = Planner(s).plan({});
  std::size_t n = plan.items.size();
  std::string bin = shard_report_to_binary(run_lease(Executor(s), plan, 0, n));
  EXPECT_LT(bin.size(), arena_segment_bytes(n) / 2);
}

TEST(ShmTransport, ArenaMatchesTheLeasePartition) {
  InjectionPlan plan = toy_plan();
  OrchestratorOptions oopts;
  oopts.workers = 2;
  oopts.lease_items = 3;
  std::vector<Lease> partition = lease_partition(plan.items.size(), oopts);
  ASSERT_FALSE(partition.empty());

  LocalProcessConfig cfg;
  cfg.epa_cli = "/bin/false";  // never spawned in this test
  cfg.out_dir = ::testing::TempDir();
  cfg.file_prefix = "epa_shm_test";
  ExposedShm t(cfg, plan, partition);
  EXPECT_EQ(t.arena_path(), cfg.out_dir + "/epa_shm_test.arena");

  ShmArena a = ShmArena::open(t.arena_path());
  // One segment per planned lease, plus the reserve for stolen-tail
  // leases (fresh seqs past the partition) minted by work stealing.
  EXPECT_EQ(a.segment_count(), partition.size() + kMaxLeaseSplits);
  EXPECT_EQ(a.segment_bytes(), arena_segment_bytes(3));
  EXPECT_EQ(plan_from_binary(a.plan_data(), a.plan_size()).to_json(),
            plan.to_json());

  // The data plane's protocol tokens: leases are named by segment, the
  // worker argv points at the arena instead of a plan file.
  EXPECT_EQ(t.lease_token(partition[1]), "@1");
  std::vector<std::string> args = t.worker_args();
  ASSERT_GE(args.size(), 3u);
  EXPECT_EQ(args[0], "worker");
  EXPECT_EQ(args[1], "--arena");
  EXPECT_EQ(args[2], t.arena_path());
  std::remove(t.arena_path().c_str());
}

TEST(ShmTransport, LeasePartitionIsContiguousAscending) {
  OrchestratorOptions oopts;
  oopts.workers = 3;
  std::vector<Lease> leases = lease_partition(26, oopts);
  ASSERT_FALSE(leases.empty());
  std::size_t expect_begin = 0;
  for (std::size_t i = 0; i < leases.size(); ++i) {
    EXPECT_EQ(leases[i].seq, i);
    EXPECT_EQ(leases[i].begin, expect_begin);
    EXPECT_GT(leases[i].end, leases[i].begin);
    expect_begin = leases[i].end;
  }
  EXPECT_EQ(expect_begin, 26u);
  // auto grain: roughly four leases per worker.
  EXPECT_EQ(leases.size(), 13u);  // 26 / max(1, 26/(3*4)=2) = 13

  oopts.lease_items = 100;  // one big lease swallows the plan
  EXPECT_EQ(lease_partition(26, oopts).size(), 1u);
  EXPECT_TRUE(lease_partition(0, oopts).empty());
  oopts.workers = 0;
  EXPECT_THROW((void)lease_partition(26, oopts), OrchestratorError);
}

}  // namespace
}  // namespace ep::core
