// Clone semantics of the copy-on-write world snapshot layer: a clone is
// observably identical to its prototype at birth, and no mutation of a
// clone — VFS writes, deletes, permission/ownership perturbations,
// symlink churn, network or registry state — ever leaks into the
// prototype or into sibling clones.
#include "core/snapshot.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/campaign_fixtures.hpp"
#include "core/oracle.hpp"
#include "os/world.hpp"

namespace ep::core {
namespace {

using os::Ino;
using os::Kernel;
using os::OpenFlag;
using os::Site;

const Site kS{"snap.c", 1, "snap-probe"};

std::unique_ptr<TargetWorld> small_world() {
  auto w = std::make_unique<TargetWorld>();
  Kernel& k = w->kernel;
  os::world::standard_unix(k);
  k.add_user(1000, "alice", 1000);
  os::world::put_file(k, "/data/config", "setting=1\n", os::kRootUid, 0,
                      0644);
  os::world::put_file(k, "/data/secret", "classified\n", os::kRootUid, 0,
                      0600);
  os::world::put_symlink(k, "/data/alias", "/data/config");
  os::world::mkdirs(k, "/data/sub", 1000, 1000, 0755);

  net::ServiceDef svc;
  svc.name = "authd";
  svc.handler = [](const net::Message& m) { return m; };
  w->network.define_service(svc);

  reg::Key key;
  key.path = "HKLM/Software/Probe";
  key.value = "benign";
  w->registry.define_key(key);
  return w;
}

/// Root-privileged read used by every leak assertion.
std::string content_of(const TargetWorld& w, const std::string& p) {
  auto r = w.kernel.peek(p);
  return r.ok() ? r.value() : "<" + std::string(err_name(r.error())) + ">";
}

TEST(WorldClone, CloneSeesPrototypeStateAndSharesNodes) {
  auto proto = small_world();
  auto snap = WorldSnapshot::freeze(std::move(proto));
  auto clone = snap->instantiate();

  EXPECT_EQ(clone->kernel.vfs().list_all_paths(),
            snap->prototype().kernel.vfs().list_all_paths());
  EXPECT_EQ(content_of(*clone, "/data/config"), "setting=1\n");
  // Until first write, the clone's nodes are literally the prototype's.
  auto r = clone->kernel.vfs().resolve("/data/config", "/", os::kRootUid, 0);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(clone->kernel.vfs().shares_node(r.value()));
}

TEST(WorldClone, WriteInCloneNeverReachesPrototypeOrSibling) {
  auto snap = WorldSnapshot::freeze(small_world());
  auto a = snap->instantiate();
  auto b = snap->instantiate();

  os::Pid pid = a->kernel.make_process(os::kRootUid, 0, "/");
  auto fd = a->kernel.open(kS, pid, "/data/config", OpenFlag::wr);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(a->kernel.write(kS, pid, fd.value(), "tampered=1\n").ok());

  EXPECT_EQ(content_of(*a, "/data/config"), "tampered=1\n");
  EXPECT_EQ(content_of(*b, "/data/config"), "setting=1\n");
  EXPECT_EQ(content_of(snap->prototype(), "/data/config"), "setting=1\n");
  // The written node is unshared in a; b still shares with the prototype.
  auto ra = a->kernel.vfs().resolve("/data/config", "/", os::kRootUid, 0);
  EXPECT_FALSE(a->kernel.vfs().shares_node(ra.value()));
}

TEST(WorldClone, DeleteInCloneKeepsPathAliveElsewhere) {
  auto snap = WorldSnapshot::freeze(small_world());
  auto a = snap->instantiate();
  auto b = snap->instantiate();

  os::Pid pid = a->kernel.make_process(os::kRootUid, 0, "/");
  ASSERT_TRUE(a->kernel.unlink(kS, pid, "/data/secret").ok());

  EXPECT_EQ(content_of(*a, "/data/secret"), "<ENOENT>");
  EXPECT_EQ(content_of(*b, "/data/secret"), "classified\n");
  EXPECT_EQ(content_of(snap->prototype(), "/data/secret"), "classified\n");
  EXPECT_TRUE(a->kernel.vfs().check_invariants().empty());
  EXPECT_TRUE(b->kernel.vfs().check_invariants().empty());
}

TEST(WorldClone, PermissionAndOwnershipPerturbationsStayPrivate) {
  auto snap = WorldSnapshot::freeze(small_world());
  auto a = snap->instantiate();

  auto r = a->kernel.vfs().resolve("/data/secret", "/", os::kRootUid, 0);
  ASSERT_TRUE(r.ok());
  os::Inode& node = a->kernel.vfs().mutate(r.value());
  node.mode = 0666;  // the file-permission perturbation
  node.uid = 1000;   // the file-ownership perturbation
  node.gid = 1000;

  const auto& pk = snap->prototype().kernel;
  auto pr = pk.vfs().resolve("/data/secret", "/", os::kRootUid, 0);
  ASSERT_TRUE(pr.ok());
  EXPECT_EQ(pk.vfs().inode(pr.value()).mode, 0600u);
  EXPECT_EQ(pk.vfs().inode(pr.value()).uid, os::kRootUid);
  // Still locked down in the prototype, readable by alice in the clone.
  EXPECT_FALSE(pk.uid_can(1000, 1000, "/data/secret", os::Perm::read));
  EXPECT_TRUE(a->kernel.uid_can(1000, 1000, "/data/secret", os::Perm::read));
}

TEST(WorldClone, SymlinkChurnStaysPrivate) {
  auto snap = WorldSnapshot::freeze(small_world());
  auto a = snap->instantiate();
  auto b = snap->instantiate();

  // Retarget the existing link in a; replace a regular file by a link in b
  // (the two halves of the symbolic-link perturbation).
  auto ra = a->kernel.vfs().resolve("/data/alias", "/", os::kRootUid, 0,
                                    /*follow_final=*/false);
  ASSERT_TRUE(ra.ok());
  a->kernel.vfs().mutate(ra.value()).content = "/etc/shadow";

  auto rb = b->kernel.vfs().resolve_parent("/data/config", "/", os::kRootUid,
                                           0);
  ASSERT_TRUE(rb.ok());
  b->kernel.vfs().detach(rb.value().dir_ino, rb.value().leaf);
  ASSERT_TRUE(b->kernel.vfs()
                  .create_symlink(rb.value().dir_ino, rb.value().leaf, 666,
                                  666, "/etc/shadow")
                  .ok());

  // a: alias now leaks the shadow file; b: config does (and so does b's
  // alias, which still points at config). Nobody else sees either change.
  EXPECT_EQ(content_of(*a, "/data/alias"), os::world::kShadowContent);
  EXPECT_EQ(content_of(*a, "/data/config"), "setting=1\n");
  EXPECT_EQ(content_of(*b, "/data/config"), os::world::kShadowContent);
  EXPECT_EQ(content_of(*b, "/data/alias"), os::world::kShadowContent);
  EXPECT_EQ(content_of(snap->prototype(), "/data/alias"), "setting=1\n");
  EXPECT_EQ(content_of(snap->prototype(), "/data/config"), "setting=1\n");
  EXPECT_TRUE(a->kernel.vfs().check_invariants().empty());
  EXPECT_TRUE(b->kernel.vfs().check_invariants().empty());
  EXPECT_TRUE(snap->prototype().kernel.vfs().check_invariants().empty());
}

TEST(WorldClone, NetworkAndRegistryAreValueCopied) {
  auto snap = WorldSnapshot::freeze(small_world());
  auto a = snap->instantiate();

  a->network.set_service_available("authd", false);
  a->registry.set_value("HKLM/Software/Probe", "tampered");
  a->registry.remove_key("HKLM/Software/Probe");

  EXPECT_FALSE(a->network.service_available("authd"));
  EXPECT_TRUE(snap->prototype().network.service_available("authd"));
  EXPECT_EQ(a->registry.find("HKLM/Software/Probe"), nullptr);
  const reg::Key* key = snap->prototype().registry.find("HKLM/Software/Probe");
  ASSERT_NE(key, nullptr);
  EXPECT_EQ(key->value, "benign");
}

TEST(WorldClone, KernelReachesTheSubstratesOfItsOwnWorld) {
  auto snap = WorldSnapshot::freeze(small_world());
  auto a = snap->instantiate();
  EXPECT_EQ(a->kernel.network(), &a->network);
  EXPECT_EQ(a->kernel.registry(), &a->registry);
  EXPECT_NE(a->kernel.network(), &snap->prototype().network);
}

TEST(WorldClone, HookChainIsNeverCloned) {
  auto w = small_world();
  auto oracle = std::make_shared<SecurityOracle>(PolicySpec{});
  w->kernel.add_interposer(oracle);
  EXPECT_EQ(w->kernel.interposer_count(), 1u);
  auto c = w->clone();
  EXPECT_EQ(c->kernel.interposer_count(), 0u);
}

TEST(WorldSnapshotTest, FreezeRejectsHookedOrNullPrototypes) {
  auto w = small_world();
  w->kernel.add_interposer(std::make_shared<SecurityOracle>(PolicySpec{}));
  EXPECT_THROW(WorldSnapshot::freeze(std::move(w)), std::logic_error);
  EXPECT_THROW(WorldSnapshot::freeze(nullptr), std::logic_error);
}

TEST(WorldSnapshotTest, ClonedRunMatchesFreshBuildRun) {
  // The toy scenario end to end: spawning the program in a clone produces
  // the same console and exit code as in a freshly built world.
  Scenario s = toy_scenario();
  auto fresh = s.build();
  int fresh_rc = s.run(*fresh);

  auto snap = WorldSnapshot::freeze(s.build());
  auto cloned = snap->instantiate();
  int cloned_rc = s.run(*cloned);

  EXPECT_EQ(fresh_rc, cloned_rc);
  EXPECT_EQ(fresh->kernel.console(), cloned->kernel.console());
  EXPECT_EQ(fresh->kernel.vfs().list_all_paths(),
            cloned->kernel.vfs().list_all_paths());
  // And the run's writes stayed out of the prototype.
  EXPECT_EQ(content_of(snap->prototype(), "/toy/out/result.txt"), "<ENOENT>");
}

TEST(WorldSnapshotTest, ConcurrentClonesMutateIndependently) {
  // The TSan target: many workers cloning one frozen prototype and
  // hammering their private worlds concurrently.
  auto snap = WorldSnapshot::freeze(small_world());
  constexpr int kWorkers = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> pool;
  pool.reserve(kWorkers);
  for (int t = 0; t < kWorkers; ++t) {
    pool.emplace_back([&snap, &failures, t] {
      auto w = snap->instantiate();
      os::Pid pid = w->kernel.make_process(os::kRootUid, 0, "/");
      std::string mine = "worker-" + std::to_string(t) + "\n";
      for (int i = 0; i < 50; ++i) {
        auto fd = w->kernel.open(kS, pid, "/data/config",
                                 OpenFlag::wr | OpenFlag::trunc);
        if (!fd.ok() || !w->kernel.write(kS, pid, fd.value(), mine).ok()) {
          ++failures;
          return;
        }
        (void)w->kernel.close(pid, fd.value());
        (void)w->kernel.unlink(kS, pid, "/data/secret");
        (void)w->kernel.symlink(kS, pid, "/etc/shadow",
                                "/data/link" + std::to_string(i));
      }
      if (content_of(*w, "/data/config") != mine) ++failures;
      if (!w->kernel.vfs().check_invariants().empty()) ++failures;
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(content_of(snap->prototype(), "/data/config"), "setting=1\n");
  EXPECT_EQ(content_of(snap->prototype(), "/data/secret"), "classified\n");
  EXPECT_TRUE(snap->prototype().kernel.vfs().check_invariants().empty());
}

}  // namespace
}  // namespace ep::core
