// Shared fixtures for the campaign-engine test suites (planner, executor,
// scheduler, integration): one toy setuid scenario exercising all three
// interaction-point kinds, and the field-by-field CampaignResult identity
// check behind the "bit-identical for any worker count" criterion.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/campaign.hpp"
#include "os/world.hpp"

namespace ep::core {

inline const os::Site kToyReadCfg{"toy.c", 10, "toy-read-config"};
inline const os::Site kToyArg{"toy.c", 20, "toy-arg"};
inline const os::Site kToyWriteOut{"toy.c", 30, "toy-write-out"};

/// Read a config file, validate an argument, write an output file: one
/// input-bearing file read, one user input, one input-less file write.
inline int toy_main(os::Kernel& k, os::Pid pid) {
  auto fd = k.open(kToyReadCfg, pid, "/toy/config", os::OpenFlag::rd);
  if (!fd.ok()) return 1;
  auto cfg = k.read(kToyReadCfg, pid, fd.value());
  (void)k.close(pid, fd.value());
  if (!cfg.ok()) return 1;

  std::string name = k.arg(kToyArg, pid, 1);
  if (name.empty() || name.size() > 64) return 2;

  auto out = k.open(kToyWriteOut, pid, "/toy/out/" + name,
                    os::OpenFlag::wr | os::OpenFlag::creat, 0600);
  if (!out.ok()) return 3;
  (void)k.write(kToyWriteOut, pid, out.value(), cfg.value());
  (void)k.close(pid, out.value());
  return 0;
}

/// The toy scenario family: `hardened` locks the attacker out of /toy.
inline Scenario toy_scenario(const std::string& name = "toy",
                             bool hardened = false) {
  Scenario s;
  s.name = name;
  s.trace_unit_filter = "toy.c";
  s.snapshot_safe = true;  // engine tests exercise the cached path too
  s.build = [hardened] {
    auto w = std::make_unique<TargetWorld>();
    os::world::standard_unix(w->kernel);
    w->kernel.add_user(1000, "alice", 1000);
    w->kernel.add_user(666, "mallory", 666);
    os::world::mkdirs(w->kernel, "/tmp/attacker", 666, 666, 0755);
    os::world::put_file(w->kernel, "/toy/config", "setting=1\n",
                        os::kRootUid, 0, hardened ? 0600 : 0644);
    os::world::mkdirs(w->kernel, "/toy/out", os::kRootUid, 0,
                      hardened ? 0700 : 0755);
    w->kernel.register_image("toy", toy_main);
    os::world::put_program(w->kernel, "/usr/bin/toy", "toy", os::kRootUid, 0,
                           0755 | os::kSetUidBit);
    return w;
  };
  s.run = [](TargetWorld& w) {
    auto r = w.kernel.spawn("/usr/bin/toy", {"toy", "result.txt"}, 1000,
                            1000, {}, "/");
    return r.ok() ? r.value() : 255;
  };
  s.policy.write_sanction_roots = {"/toy/out"};
  s.policy.secret_files = {"/etc/shadow"};
  s.hints.attacker_uid = 666;
  s.hints.attacker_gid = 666;
  return s;
}

/// Field-by-field identity of two campaign results (the ISSUE's
/// "bit-identical ordering and scores" criterion).
inline void expect_identical(const CampaignResult& a, const CampaignResult& b) {
  EXPECT_EQ(a.scenario_name, b.scenario_name);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i)
    EXPECT_EQ(a.points[i].site.tag, b.points[i].site.tag);
  EXPECT_EQ(a.perturbed_site_tags, b.perturbed_site_tags);
  EXPECT_EQ(a.benign_violations.size(), b.benign_violations.size());

  ASSERT_EQ(a.injections.size(), b.injections.size());
  for (std::size_t i = 0; i < a.injections.size(); ++i) {
    const InjectionOutcome& x = a.injections[i];
    const InjectionOutcome& y = b.injections[i];
    EXPECT_EQ(x.site.tag, y.site.tag) << "slot " << i;
    EXPECT_EQ(x.call, y.call) << "slot " << i;
    EXPECT_EQ(x.object, y.object) << "slot " << i;
    EXPECT_EQ(x.kind, y.kind) << "slot " << i;
    EXPECT_EQ(x.fault_name, y.fault_name) << "slot " << i;
    EXPECT_EQ(x.fired, y.fired) << "slot " << i;
    EXPECT_EQ(x.violated, y.violated) << "slot " << i;
    EXPECT_EQ(x.crashed, y.crashed) << "slot " << i;
    EXPECT_EQ(x.overflows, y.overflows) << "slot " << i;
    EXPECT_EQ(x.exit_code, y.exit_code) << "slot " << i;
    ASSERT_EQ(x.violations.size(), y.violations.size()) << "slot " << i;
    for (std::size_t v = 0; v < x.violations.size(); ++v) {
      EXPECT_EQ(x.violations[v].object, y.violations[v].object);
      EXPECT_EQ(x.violations[v].detail, y.violations[v].detail);
    }
    EXPECT_EQ(x.exploit.nonroot_feasible, y.exploit.nonroot_feasible);
    EXPECT_EQ(x.exploit.actor, y.exploit.actor);
    EXPECT_EQ(x.exploit.note, y.exploit.note);
  }
  EXPECT_DOUBLE_EQ(a.vulnerability_score(), b.vulnerability_score());
  EXPECT_DOUBLE_EQ(a.fault_coverage(), b.fault_coverage());
  EXPECT_DOUBLE_EQ(a.interaction_coverage(), b.interaction_coverage());
}

}  // namespace ep::core
