// Direct-perturber behaviour: each Table 6 entry applied against a live
// world, plus the invariant sweep (no perturbation may corrupt the VFS).
#include <gtest/gtest.h>

#include "core/catalog.hpp"
#include "os/world.hpp"

namespace ep::core {
namespace {

const os::Site kSite{"app.c", 10, "open-config"};

class PerturberTest : public ::testing::Test {
 protected:
  PerturberTest() {
    os::world::standard_unix(w.kernel);
    w.kernel.add_user(666, "mallory", 666);
    os::world::mkdirs(w.kernel, "/tmp/attacker", 666, 666, 0755);
    os::world::put_file(w.kernel, "/app/config", "key=value\n", os::kRootUid,
                        os::kRootGid, 0644);
    pid = w.kernel.make_process(1000, 1000, "/");
    hints.attacker_uid = 666;
    hints.attacker_gid = 666;
  }

  os::SyscallCtx ctx_for(const std::string& path,
                         const std::string& call = "open",
                         const std::string& aux = "r") {
    os::SyscallCtx ctx;
    ctx.site = kSite;
    ctx.pid = pid;
    ctx.call = call;
    ctx.path = path;
    ctx.aux = aux;
    return ctx;
  }

  void apply(const char* fault, os::SyscallCtx ctx) {
    const DirectFault* f = FaultCatalog::standard().find_direct(fault);
    ASSERT_NE(f, nullptr) << fault;
    f->perturb(w, ctx, hints);
    EXPECT_TRUE(w.kernel.vfs().check_invariants().empty())
        << fault << ": " << w.kernel.vfs().check_invariants();
  }

  TargetWorld w;
  ScenarioHints hints;
  os::Pid pid = -1;
};

TEST_F(PerturberTest, ExistenceDeletesExistingFile) {
  apply("file-existence", ctx_for("/app/config"));
  EXPECT_EQ(w.kernel.peek("/app/config").error(), Err::noent);
}

TEST_F(PerturberTest, ExistenceCreatesMissingFile) {
  apply("file-existence", ctx_for("/app/newfile"));
  auto content = w.kernel.peek("/app/newfile");
  ASSERT_TRUE(content.ok());
  // Planted as a foreign, protected file.
  EXPECT_FALSE(w.kernel.uid_can(1000, 1000, "/app/newfile", os::Perm::write));
}

TEST_F(PerturberTest, OwnershipFlipsToAttacker) {
  apply("file-ownership", ctx_for("/app/config"));
  auto r = w.kernel.vfs().resolve("/app/config", "/", os::kRootUid, 0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(w.kernel.vfs().inode(r.value()).uid, 666);
}

TEST_F(PerturberTest, OwnershipOnAttackerFileFlipsToRoot) {
  os::world::put_file(w.kernel, "/tmp/attacker/f", "x", 666, 666, 0644);
  apply("file-ownership", ctx_for("/tmp/attacker/f"));
  auto r = w.kernel.vfs().resolve("/tmp/attacker/f", "/", os::kRootUid, 0);
  EXPECT_EQ(w.kernel.vfs().inode(r.value()).uid, os::kRootUid);
}

TEST_F(PerturberTest, PermissionRestrictsAccessibleFile) {
  apply("file-permission", ctx_for("/app/config"));  // 0644 -> restricted
  EXPECT_FALSE(w.kernel.uid_can(1000, 1000, "/app/config", os::Perm::read));
}

TEST_F(PerturberTest, PermissionLoosensLockedFile) {
  os::world::put_file(w.kernel, "/app/locked", "x", os::kRootUid, 0, 0600);
  apply("file-permission", ctx_for("/app/locked"));
  EXPECT_TRUE(w.kernel.uid_can(1000, 1000, "/app/locked", os::Perm::write));
}

TEST_F(PerturberTest, PermissionPreservesSetuidBit) {
  os::world::put_file(w.kernel, "/app/suid", "x", os::kRootUid, 0,
                      0755 | os::kSetUidBit);
  apply("file-permission", ctx_for("/app/suid"));
  auto r = w.kernel.vfs().resolve("/app/suid", "/", os::kRootUid, 0);
  EXPECT_TRUE(w.kernel.vfs().inode(r.value()).setuid());
}

TEST_F(PerturberTest, SymlinkTurnsFileIntoLink) {
  apply("symbolic-link", ctx_for("/app/config"));
  auto r = w.kernel.vfs().resolve("/app/config", "/", os::kRootUid, 0,
                                  /*follow_final=*/false);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(w.kernel.vfs().inode(r.value()).is_symlink());
  // Read-only open -> pointed at the disclosure victim.
  EXPECT_EQ(w.kernel.vfs().inode(r.value()).content, hints.secret_victim);
}

TEST_F(PerturberTest, SymlinkForWriteOpenTargetsIntegrityVictim) {
  apply("symbolic-link", ctx_for("/app/out", "open", "wct"));
  auto r = w.kernel.vfs().resolve("/app/out", "/", os::kRootUid, 0,
                                  /*follow_final=*/false);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(w.kernel.vfs().inode(r.value()).content, hints.symlink_victim);
}

TEST_F(PerturberTest, SymlinkForExecTargetsEvilProgram) {
  os::world::put_program(w.kernel, "/bin/tool", "x");
  apply("symbolic-link", ctx_for("/bin/tool", "exec", ""));
  auto r = w.kernel.vfs().resolve("/bin/tool", "/", os::kRootUid, 0,
                                  /*follow_final=*/false);
  EXPECT_EQ(w.kernel.vfs().inode(r.value()).content, hints.evil_program);
}

TEST_F(PerturberTest, SymlinkRetargetsExistingLink) {
  os::world::put_symlink(w.kernel, "/app/link", "/app/config");
  apply("symbolic-link", ctx_for("/app/link"));
  auto r = w.kernel.vfs().resolve("/app/link", "/", os::kRootUid, 0,
                                  /*follow_final=*/false);
  EXPECT_EQ(w.kernel.vfs().inode(r.value()).content, hints.secret_victim);
}

TEST_F(PerturberTest, SymlinkHonorsPerSiteVictim) {
  hints.link_victims[kSite.tag] = "/custom/target";
  apply("symbolic-link", ctx_for("/app/config"));
  auto r = w.kernel.vfs().resolve("/app/config", "/", os::kRootUid, 0,
                                  /*follow_final=*/false);
  EXPECT_EQ(w.kernel.vfs().inode(r.value()).content, "/custom/target");
}

TEST_F(PerturberTest, ContentUsesPerSitePayload) {
  hints.content_payloads[kSite.tag] = "evil-config\n";
  apply("content-invariance", ctx_for("/app/config"));
  EXPECT_EQ(w.kernel.peek("/app/config").value(), "evil-config\n");
}

TEST_F(PerturberTest, ContentDefaultTamper) {
  apply("content-invariance", ctx_for("/app/config"));
  EXPECT_NE(w.kernel.peek("/app/config").value(), "key=value\n");
}

TEST_F(PerturberTest, ContentNoopOnMissingFile) {
  apply("content-invariance", ctx_for("/app/ghost"));
  EXPECT_EQ(w.kernel.peek("/app/ghost").error(), Err::noent);
}

TEST_F(PerturberTest, NameInvarianceRenames) {
  apply("name-invariance", ctx_for("/app/config"));
  EXPECT_EQ(w.kernel.peek("/app/config").error(), Err::noent);
  EXPECT_TRUE(w.kernel.peek("/app/config.moved").ok());
}

TEST_F(PerturberTest, WorkingDirectoryMovesProcess) {
  apply("working-directory", ctx_for("/app/config"));
  EXPECT_EQ(w.kernel.proc(pid).cwd, "/tmp/attacker");
}

TEST_F(PerturberTest, NetworkPerturbersTouchNetworkState) {
  net::ServiceDef svc;
  svc.name = "authsvc";
  svc.handler = [](const net::Message&) { return net::Message{}; };
  w.network.define_service(svc);
  auto ctx = ctx_for("authsvc", "connect", "");
  apply("service-availability", ctx);
  EXPECT_FALSE(w.network.service_available("authsvc"));
  apply("entity-trustability", ctx);
  os::Pid p = w.kernel.make_process(os::kRootUid, os::kRootGid);
  auto s = w.network.connect(w.kernel, kSite, p, "authsvc");
  EXPECT_EQ(s.error(), Err::conn);  // still unavailable from before
}

TEST_F(PerturberTest, RegistryPerturbers) {
  reg::Key key;
  key.path = "HKLM/K";
  key.value = "orig";
  key.acl.everyone_write = true;
  w.registry.define_key(key);
  auto ctx = ctx_for("HKLM/K", "regread", "");

  apply("regkey-value-tamper", ctx);
  EXPECT_EQ(w.registry.find("HKLM/K")->value, hints.symlink_victim);

  apply("regkey-acl", ctx);
  EXPECT_FALSE(w.registry.find("HKLM/K")->acl.everyone_write);

  apply("regkey-trustability", ctx);
  EXPECT_FALSE(w.registry.find("HKLM/K")->trusted);

  apply("regkey-existence", ctx);
  EXPECT_EQ(w.registry.find("HKLM/K"), nullptr);
}

TEST_F(PerturberTest, PerturbersToleratePathlessContext) {
  // A perturber planned against a site that turns out to have no path
  // operand must be a no-op, not a crash.
  for (const char* name :
       {"file-existence", "file-ownership", "file-permission",
        "symbolic-link", "content-invariance", "name-invariance"}) {
    os::SyscallCtx ctx;
    ctx.site = kSite;
    ctx.pid = pid;
    ctx.call = "getenv";
    apply(name, ctx);
  }
}

}  // namespace
}  // namespace ep::core
