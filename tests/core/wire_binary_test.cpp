// The binary wire encoding (core/wire_binary.cpp): canonical plan and
// shard-report round trips that agree with the JSON codec, and one test
// per framing error path — truncation, bad magic, foreign endianness,
// bad version/kind, column length mismatches, overlapping sections —
// mirroring wire_test's JSON error-path suite. Byte surgery is done
// against the documented frame layout (docs/WIRE_FORMAT.md, "Binary
// encoding"): 24-byte header, then 24-byte section-table entries of
// (u32 tag, u32 reserved, u64 offset, u64 length).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "core/campaign_fixtures.hpp"
#include "core/wire.hpp"
#include "util/strings.hpp"

namespace ep::core {
namespace {

InjectionPlan toy_plan(bool with_snapshot = false) {
  Scenario s = toy_scenario();
  CampaignOptions opts;
  opts.use_world_cache = with_snapshot;
  return Planner(s).plan(opts);
}

template <typename Fn>
std::string wire_error_of(Fn&& fn) {
  try {
    fn();
  } catch (const WireError& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected WireError";
  return {};
}

// --- byte surgery against the documented frame layout -----------------------

std::uint32_t rd32(const std::string& b, std::size_t off) {
  std::uint32_t v;
  std::memcpy(&v, b.data() + off, sizeof v);
  return v;
}
std::uint64_t rd64(const std::string& b, std::size_t off) {
  std::uint64_t v;
  std::memcpy(&v, b.data() + off, sizeof v);
  return v;
}
void wr16(std::string* b, std::size_t off, std::uint16_t v) {
  std::memcpy(&(*b)[off], &v, sizeof v);
}
void wr32(std::string* b, std::size_t off, std::uint32_t v) {
  std::memcpy(&(*b)[off], &v, sizeof v);
}
void wr64(std::string* b, std::size_t off, std::uint64_t v) {
  std::memcpy(&(*b)[off], &v, sizeof v);
}

struct TableEntry {
  std::uint32_t tag = 0;
  std::size_t at = 0;  // byte position of this entry in the file
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
};

/// The section-table entry for `tag` (the layout pinned by the docs:
/// table at byte 24, 24-byte entries, offset at +8, length at +16).
TableEntry entry_of(const std::string& b, std::uint32_t tag) {
  std::uint32_t count = rd32(b, 20);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::size_t at = 24 + i * 24;
    if (rd32(b, at) == tag)
      return {tag, at, rd64(b, at + 8), rd64(b, at + 16)};
  }
  ADD_FAILURE() << "no section with tag " << tag;
  return {};
}

// --- round trips ------------------------------------------------------------

TEST(WireBinary, MagicSniffTellsBinaryFromJson) {
  InjectionPlan plan = toy_plan();
  EXPECT_TRUE(looks_like_binary_wire(plan_to_binary(plan)));
  EXPECT_FALSE(looks_like_binary_wire(plan.to_json()));
  EXPECT_FALSE(looks_like_binary_wire(""));
  EXPECT_FALSE(looks_like_binary_wire("EPA"));  // shorter than the magic
}

TEST(WireBinary, PlanRoundTripsThroughBinary) {
  InjectionPlan plan = toy_plan();
  std::string bin = plan_to_binary(plan);
  InjectionPlan parsed = plan_from_binary(bin);
  EXPECT_EQ(parsed.snapshot, nullptr);  // never on the wire
  // The JSON serialization is the reference representation: a binary
  // round trip must land on exactly the same plan the JSON path sees.
  EXPECT_EQ(parsed.to_json(), plan.to_json());
  // Canonical form: decode -> re-encode reproduces the bytes verbatim
  // (what lets docs/WIRE_FORMAT.md pin the hex example literally).
  EXPECT_EQ(plan_to_binary(parsed), bin);
}

TEST(WireBinary, RoundTrippedPlanExecutesIdentically) {
  Scenario s = toy_scenario();
  InjectionPlan plan = toy_plan();
  InjectionPlan parsed = plan_from_binary(plan_to_binary(plan));
  Executor ex(s);
  ExecutorOptions opts;
  opts.use_world_cache = false;
  expect_identical(ex.execute(plan, opts), ex.execute(parsed, opts));
}

TEST(WireBinary, ShardReportRoundTripsThroughBinary) {
  Scenario s = toy_scenario();
  InjectionPlan plan = toy_plan(/*with_snapshot=*/true);
  ShardReport report = run_shard(Executor(s), plan, 1, 3);
  std::string bin = shard_report_to_binary(report);
  ShardReport parsed = shard_report_from_binary(bin);
  EXPECT_EQ(parsed.to_json(), report.to_json());
  EXPECT_EQ(shard_report_to_binary(parsed), bin);
}

TEST(WireBinary, LeasedReportRoundTripsWithAssignedIds) {
  Scenario s = toy_scenario();
  InjectionPlan plan = toy_plan(/*with_snapshot=*/true);
  ShardReport report = run_lease(Executor(s), plan, 1, 4);
  ASSERT_TRUE(report.leased);
  std::string bin = shard_report_to_binary(report);
  ShardReport parsed = shard_report_from_binary(bin);
  EXPECT_TRUE(parsed.leased);
  EXPECT_EQ(parsed.assigned_ids, report.assigned_ids);
  EXPECT_EQ(parsed.to_json(), report.to_json());
  EXPECT_EQ(shard_report_to_binary(parsed), bin);
}

TEST(WireBinary, PartialReportRoundTripsIncomplete) {
  Scenario s = toy_scenario();
  InjectionPlan plan = toy_plan(/*with_snapshot=*/true);
  ShardReport partial = run_lease(Executor(s), plan, 0, 4);
  ASSERT_GE(partial.item_ids.size(), 2u);
  partial.item_ids.pop_back();
  partial.outcomes.pop_back();
  partial.complete = false;
  ShardReport parsed = shard_report_from_binary(shard_report_to_binary(partial));
  EXPECT_FALSE(parsed.complete);
  EXPECT_EQ(parsed.to_json(), partial.to_json());
}

TEST(WireBinary, EmptyShardRoundTrips) {
  Scenario s = toy_scenario();
  InjectionPlan plan = toy_plan(/*with_snapshot=*/true);
  // More shards than items: a trailing shard legitimately drains nothing.
  ShardReport report =
      run_shard(Executor(s), plan, plan.items.size(), plan.items.size() + 1);
  ASSERT_TRUE(report.item_ids.empty());
  ShardReport parsed = shard_report_from_binary(shard_report_to_binary(report));
  EXPECT_EQ(parsed.to_json(), report.to_json());
}

TEST(WireBinary, BinaryAndJsonDecodersAgreeOnSemanticErrors) {
  // The shared-validation promise (core/wire_internal.hpp): corruption
  // past the framing is rejected with the same message by both codecs.
  Scenario s = toy_scenario();
  InjectionPlan plan = toy_plan(/*with_snapshot=*/true);
  ShardReport bad = run_lease(Executor(s), plan, 0, 3);
  bad.item_ids.pop_back();
  bad.outcomes.pop_back();
  // complete still claims full coverage -> both decoders must object.
  std::string bin_msg =
      wire_error_of([&] { (void)shard_report_from_binary(
          shard_report_to_binary(bad)); });
  std::string json_msg =
      wire_error_of([&] { (void)shard_report_from_json(bad.to_json()); });
  EXPECT_EQ(bin_msg, json_msg);
  EXPECT_TRUE(contains(bin_msg, "'complete' is true"));
}

// --- framing error paths ----------------------------------------------------

TEST(WireBinaryErrors, TruncatedHeader) {
  std::string bin = plan_to_binary(toy_plan());
  std::string msg =
      wire_error_of([&] { (void)plan_from_binary(bin.substr(0, 10)); });
  EXPECT_TRUE(contains(msg, "truncated header (got 10 bytes"));
}

TEST(WireBinaryErrors, BadMagic) {
  std::string bin = plan_to_binary(toy_plan());
  bin[0] = 'X';
  std::string msg = wire_error_of([&] { (void)plan_from_binary(bin); });
  EXPECT_TRUE(contains(msg, "not a binary wire file (bad magic)"));
}

TEST(WireBinaryErrors, ForeignEndiannessIsNamedNotGarbled) {
  std::string bin = plan_to_binary(toy_plan());
  // Byte-swap the byte-order tag — what the whole header would look like
  // had a foreign-endian host written it.
  std::swap(bin[4], bin[7]);
  std::swap(bin[5], bin[6]);
  std::string msg = wire_error_of([&] { (void)plan_from_binary(bin); });
  EXPECT_TRUE(contains(msg, "foreign endianness"));
}

TEST(WireBinaryErrors, CorruptByteOrderTag) {
  std::string bin = plan_to_binary(toy_plan());
  wr32(&bin, 4, 0);
  std::string msg = wire_error_of([&] { (void)plan_from_binary(bin); });
  EXPECT_TRUE(contains(msg, "corrupt byte-order tag"));
}

TEST(WireBinaryErrors, UnsupportedVersion) {
  std::string bin = plan_to_binary(toy_plan());
  wr16(&bin, 8, 99);
  std::string msg = wire_error_of([&] { (void)plan_from_binary(bin); });
  EXPECT_TRUE(contains(msg, "unsupported binary wire version 99"));
  EXPECT_TRUE(contains(msg, "this build reads versions 1 through 2"));
}

TEST(WireBinaryErrors, KindIsCheckedBeforePayload) {
  std::string plan_bin = plan_to_binary(toy_plan());
  std::string msg = wire_error_of(
      [&] { (void)shard_report_from_binary(plan_bin); });
  EXPECT_TRUE(contains(
      msg, "kind 'injection-plan' where 'shard-report' was expected"));

  std::string unknown = plan_bin;
  wr16(&unknown, 10, 7);
  msg = wire_error_of([&] { (void)plan_from_binary(unknown); });
  EXPECT_TRUE(contains(msg, "unknown kind code 7"));
}

TEST(WireBinaryErrors, TruncatedPayloadFailsTheDeclaredTotal) {
  std::string bin = plan_to_binary(toy_plan());
  std::string cut = bin.substr(0, bin.size() - 1);
  std::string msg = wire_error_of([&] { (void)plan_from_binary(cut); });
  EXPECT_TRUE(contains(msg, "declares " + std::to_string(bin.size()) +
                                " bytes but " +
                                std::to_string(cut.size()) +
                                " were provided (truncated?)"));
}

TEST(WireBinaryErrors, ImplausibleSectionCount) {
  std::string bin = plan_to_binary(toy_plan());
  wr32(&bin, 20, 4096);
  std::string msg = wire_error_of([&] { (void)plan_from_binary(bin); });
  EXPECT_TRUE(contains(msg, "implausible section count"));
}

TEST(WireBinaryErrors, TruncatedSectionTable) {
  std::string bin = plan_to_binary(toy_plan());
  // Still under the plausibility cap, but the table would run past the
  // end of the buffer.
  wr32(&bin, 20, 1000);
  std::string msg = wire_error_of([&] { (void)plan_from_binary(bin); });
  EXPECT_TRUE(contains(msg, "truncated section table"));
}

TEST(WireBinaryErrors, SectionOffsetOutOfRange) {
  std::string bin = plan_to_binary(toy_plan());
  TableEntry meta = entry_of(bin, 1);
  wr64(&bin, meta.at + 8, bin.size());  // offset == size, length > 0
  std::string msg = wire_error_of([&] { (void)plan_from_binary(bin); });
  EXPECT_TRUE(contains(msg, "section tag 1"));
  EXPECT_TRUE(contains(msg, "out of range"));
}

TEST(WireBinaryErrors, OverlappingSectionsAreRejected) {
  std::string bin = plan_to_binary(toy_plan());
  // Point the points section (tag 2) at the meta section's (tag 1)
  // bytes: both in range, but the ranges collide.
  TableEntry meta = entry_of(bin, 1);
  wr64(&bin, entry_of(bin, 2).at + 8, meta.offset);
  std::string msg = wire_error_of([&] { (void)plan_from_binary(bin); });
  EXPECT_TRUE(contains(msg, "sections overlap"));
}

TEST(WireBinaryErrors, ColumnLengthMustBeAMultipleOfTheElementSize) {
  Scenario s = toy_scenario();
  InjectionPlan plan = toy_plan(/*with_snapshot=*/true);
  std::string bin = shard_report_to_binary(run_shard(Executor(s), plan, 1, 3));
  // overflows (tag 6) is a 4-byte column; shaving one byte off its
  // declared length leaves a ragged column.
  TableEntry overflows = entry_of(bin, 6);
  ASSERT_GT(overflows.length, 0u);
  wr64(&bin, overflows.at + 16, overflows.length - 1);
  std::string msg =
      wire_error_of([&] { (void)shard_report_from_binary(bin); });
  EXPECT_TRUE(contains(msg, "outcomes.overflows"));
  EXPECT_TRUE(contains(msg, "is not a multiple of 4"));
}

TEST(WireBinaryErrors, ColumnEntryCountMustMatchCompletedIds) {
  Scenario s = toy_scenario();
  InjectionPlan plan = toy_plan(/*with_snapshot=*/true);
  std::string bin = shard_report_to_binary(run_shard(Executor(s), plan, 1, 3));
  // fired (tag 4) is a 1-byte column: dropping one entry keeps it
  // well-formed as a column but one short of the completed ids.
  TableEntry fired = entry_of(bin, 4);
  ASSERT_GT(fired.length, 1u);
  wr64(&bin, fired.at + 16, fired.length - 1);
  std::string msg =
      wire_error_of([&] { (void)shard_report_from_binary(bin); });
  EXPECT_TRUE(contains(msg, "outcomes.fired has " +
                                std::to_string(fired.length - 1) +
                                " entries for " +
                                std::to_string(fired.length) +
                                " completed ids"));
}

TEST(WireBinaryErrors, TrailingBytesInASectionAreRejected) {
  std::string bin = plan_to_binary(toy_plan());
  // Grow the meta section into the gap freed by pointing it at a copy
  // appended to the end of the buffer — decoder must insist the section
  // is consumed exactly.
  TableEntry meta = entry_of(bin, 1);
  std::string grown = bin;
  grown.append(reinterpret_cast<const char*>(bin.data()) + meta.offset,
               static_cast<std::size_t>(meta.length));
  grown.append(4, '\0');  // the trailing garbage
  wr64(&grown, 12, grown.size());  // re-declare the total
  wr64(&grown, meta.at + 8, bin.size());
  wr64(&grown, meta.at + 16, meta.length + 4);
  std::string msg = wire_error_of([&] { (void)plan_from_binary(grown); });
  EXPECT_TRUE(contains(msg, "section 'meta'"));
  EXPECT_TRUE(contains(msg, "trailing byte(s)"));
}

TEST(WireBinaryErrors, MissingSectionIsNamed) {
  std::string bin = plan_to_binary(toy_plan());
  TableEntry items = entry_of(bin, 5);
  wr32(&bin, items.at, 99);  // retag: unknown tags are ignored, so the
                             // decoder sees no items section at all
  std::string msg = wire_error_of([&] { (void)plan_from_binary(bin); });
  EXPECT_TRUE(contains(msg, "missing section 'items'"));
}

TEST(WireBinaryErrors, LeasedFlagAndAssignedSectionMustAgree) {
  Scenario s = toy_scenario();
  InjectionPlan plan = toy_plan(/*with_snapshot=*/true);
  std::string leased = shard_report_to_binary(run_lease(Executor(s), plan, 0, 2));
  // Retag assigned_ids (tag 2) away: the flag says leased, the section
  // is gone.
  wr32(&leased, entry_of(leased, 2).at, 98);
  std::string msg =
      wire_error_of([&] { (void)shard_report_from_binary(leased); });
  EXPECT_TRUE(contains(msg, "leased report is missing its 'assigned_ids'"));
}

}  // namespace
}  // namespace ep::core
