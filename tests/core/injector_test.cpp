// Injector mechanics: direct faults fire before the interaction point,
// indirect faults rewrite the delivered input after it, and each plan
// fires exactly once at its target site.
#include "core/injector.hpp"

#include <gtest/gtest.h>

#include "os/world.hpp"

namespace ep::core {
namespace {

const os::Site kTarget{"app.c", 5, "target"};
const os::Site kOther{"app.c", 9, "other"};

class InjectorTest : public ::testing::Test {
 protected:
  InjectorTest() {
    os::world::standard_unix(w.kernel);
    w.kernel.add_user(666, "mallory", 666);
    os::world::mkdirs(w.kernel, "/tmp/attacker", 666, 666, 0755);
    os::world::put_file(w.kernel, "/data/in.txt", "payload", os::kRootUid,
                        os::kRootGid, 0644);
    pid = w.kernel.make_process(1000, 1000, "/");
  }

  FaultRef direct_ref(const char* name) {
    FaultRef r;
    r.kind = FaultKind::direct;
    r.direct = FaultCatalog::standard().find_direct(name);
    EXPECT_NE(r.direct, nullptr);
    return r;
  }
  FaultRef indirect_ref(const char* name) {
    FaultRef r;
    r.kind = FaultKind::indirect;
    r.indirect = FaultCatalog::standard().find_indirect(name);
    EXPECT_NE(r.indirect, nullptr);
    return r;
  }

  TargetWorld w;
  os::Pid pid = -1;
};

TEST_F(InjectorTest, DirectFaultFiresBeforeCall) {
  auto inj = std::make_shared<Injector>(w, kTarget,
                                        direct_ref("file-existence"),
                                        ScenarioHints{});
  w.kernel.add_interposer(inj);
  // The open at the target site meets the already-perturbed environment:
  // the file was deleted before resolution.
  auto fd = w.kernel.open(kTarget, pid, "/data/in.txt", os::OpenFlag::rd);
  EXPECT_EQ(fd.error(), Err::noent);
  EXPECT_TRUE(inj->fired());
}

TEST_F(InjectorTest, DirectFaultIgnoresOtherSites) {
  auto inj = std::make_shared<Injector>(w, kTarget,
                                        direct_ref("file-existence"),
                                        ScenarioHints{});
  w.kernel.add_interposer(inj);
  auto fd = w.kernel.open(kOther, pid, "/data/in.txt", os::OpenFlag::rd);
  EXPECT_TRUE(fd.ok());
  EXPECT_FALSE(inj->fired());
}

TEST_F(InjectorTest, DirectFaultFiresOnlyOnce) {
  auto inj = std::make_shared<Injector>(w, kTarget,
                                        direct_ref("file-existence"),
                                        ScenarioHints{});
  w.kernel.add_interposer(inj);
  EXPECT_EQ(w.kernel.open(kTarget, pid, "/data/in.txt", os::OpenFlag::rd)
                .error(),
            Err::noent);
  // Re-plant the file; a second visit to the site must NOT delete it.
  os::world::put_file(w.kernel, "/data/in.txt", "payload2", os::kRootUid,
                      os::kRootGid, 0644);
  EXPECT_TRUE(
      w.kernel.open(kTarget, pid, "/data/in.txt", os::OpenFlag::rd).ok());
}

TEST_F(InjectorTest, IndirectFaultRewritesInputAfterCall) {
  auto inj = std::make_shared<Injector>(w, kTarget,
                                        indirect_ref("change-length"),
                                        ScenarioHints{});
  w.kernel.add_interposer(inj);
  w.kernel.proc(pid).args = {"prog", "file.txt"};
  std::string got = w.kernel.arg(kTarget, pid, 1);
  EXPECT_EQ(got.size(), ScenarioHints{}.long_length);
  EXPECT_TRUE(inj->fired());
  EXPECT_EQ(inj->original_input(), "file.txt");
  EXPECT_EQ(inj->injected_input(), got);
}

TEST_F(InjectorTest, IndirectFaultFiresOnlyOnFirstVisit) {
  auto inj = std::make_shared<Injector>(w, kTarget,
                                        indirect_ref("insert-dotdot"),
                                        ScenarioHints{});
  w.kernel.add_interposer(inj);
  w.kernel.proc(pid).args = {"prog", "a", "b"};
  EXPECT_EQ(w.kernel.arg(kTarget, pid, 1), "../a");
  EXPECT_EQ(w.kernel.arg(kTarget, pid, 2), "b");  // second visit untouched
}

TEST_F(InjectorTest, IndirectFaultNoopOnInputlessCall) {
  auto inj = std::make_shared<Injector>(w, kTarget,
                                        indirect_ref("change-length"),
                                        ScenarioHints{});
  w.kernel.add_interposer(inj);
  auto fd = w.kernel.open(kTarget, pid, "/data/in.txt", os::OpenFlag::rd);
  EXPECT_TRUE(fd.ok());
  EXPECT_FALSE(inj->fired());  // open delivers no input; read would
}

TEST_F(InjectorTest, IndirectFaultOnFileRead) {
  auto inj = std::make_shared<Injector>(w, kTarget,
                                        indirect_ref("fsin-use-absolute-path"),
                                        ScenarioHints{});
  w.kernel.add_interposer(inj);
  auto fd = w.kernel.open(kOther, pid, "/data/in.txt", os::OpenFlag::rd);
  ASSERT_TRUE(fd.ok());
  auto data = w.kernel.read(kTarget, pid, fd.value());
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), ScenarioHints{}.symlink_victim);
  // The file content itself is unchanged (the fault is in the delivery).
  EXPECT_EQ(w.kernel.peek("/data/in.txt").value(), "payload");
}

TEST_F(InjectorTest, GetenvMaterializationFault) {
  // Injecting into an *unset* variable models the "initialization the
  // programmer never sees" case: the variable suddenly exists.
  auto inj = std::make_shared<Injector>(w, kTarget,
                                        indirect_ref("path-insert-untrusted"),
                                        ScenarioHints{});
  w.kernel.add_interposer(inj);
  auto v = w.kernel.getenv(kTarget, pid, "PATH");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), ScenarioHints{}.attacker_dir);
}

TEST_F(InjectorTest, DirectSymlinkThenOpenFollowsToVictim) {
  ScenarioHints hints;
  auto inj = std::make_shared<Injector>(w, kTarget,
                                        direct_ref("symbolic-link"), hints);
  w.kernel.add_interposer(inj);
  // Read-only open: injector points the object at the secret victim and
  // the open, with root effective uid, lands there.
  os::Pid suid = w.kernel.make_process(1000, 1000, "/");
  w.kernel.proc(suid).euid = os::kRootUid;
  auto fd = w.kernel.open(kTarget, suid, "/data/in.txt", os::OpenFlag::rd);
  ASSERT_TRUE(fd.ok());
  auto data = w.kernel.read(kOther, suid, fd.value());
  EXPECT_EQ(data.value(), os::world::kShadowContent);
}

}  // namespace
}  // namespace ep::core
