// MultiCampaign scheduler tests: many scenarios through one shared pool,
// aggregated in add() order with seed-stable, interleaving-independent
// results.
#include "core/scheduler.hpp"

#include <gtest/gtest.h>

#include "core/campaign_fixtures.hpp"

namespace ep::core {
namespace {

TEST(MultiCampaign, AggregatesInAddOrder) {
  MultiCampaign suite;
  suite.add(toy_scenario("toy-a", false));
  suite.add(toy_scenario("toy-b", true));
  suite.add(toy_scenario("toy-c", false));
  ASSERT_EQ(suite.size(), 3u);

  SweepOptions opts;
  opts.jobs = 4;
  SweepResult sweep = suite.run(opts);
  ASSERT_EQ(sweep.results.size(), 3u);
  EXPECT_EQ(sweep.results[0].scenario_name, "toy-a");
  EXPECT_EQ(sweep.results[1].scenario_name, "toy-b");
  EXPECT_EQ(sweep.results[2].scenario_name, "toy-c");
}

TEST(MultiCampaign, MatchesStandaloneCampaigns) {
  MultiCampaign suite;
  suite.add(toy_scenario("toy-a", false));
  suite.add(toy_scenario("toy-b", true));

  SweepOptions opts;
  opts.jobs = 4;
  SweepResult sweep = suite.run(opts);

  expect_identical(sweep.results[0],
                   Campaign(toy_scenario("toy-a", false)).execute());
  expect_identical(sweep.results[1],
                   Campaign(toy_scenario("toy-b", true)).execute());
}

TEST(MultiCampaign, SharedPoolResultEqualsSerial) {
  for (int jobs : {1, 4, 9}) {
    MultiCampaign suite;
    suite.add(toy_scenario("toy-a", false));
    suite.add(toy_scenario("toy-b", true));
    SweepOptions opts;
    opts.jobs = jobs;
    SweepResult sweep = suite.run(opts);

    MultiCampaign again;
    again.add(toy_scenario("toy-a", false));
    again.add(toy_scenario("toy-b", true));
    SweepResult serial = again.run({});
    ASSERT_EQ(sweep.results.size(), serial.results.size());
    for (std::size_t i = 0; i < sweep.results.size(); ++i)
      expect_identical(sweep.results[i], serial.results[i]);
  }
}

TEST(MultiCampaign, TotalsSumOverScenarios) {
  MultiCampaign suite;
  suite.add(toy_scenario("toy-a", false));
  suite.add(toy_scenario("toy-b", true));
  SweepResult sweep = suite.run({});

  int points = 0, injections = 0, violations = 0, exploitable = 0;
  for (const auto& r : sweep.results) {
    points += static_cast<int>(r.points.size());
    injections += r.n();
    violations += r.violation_count();
    exploitable += static_cast<int>(r.exploitable().size());
  }
  EXPECT_EQ(sweep.total_points(), points);
  EXPECT_EQ(sweep.total_injections(), injections);
  EXPECT_EQ(sweep.total_violations(), violations);
  EXPECT_EQ(sweep.total_exploitable(), exploitable);
  ASSERT_GT(injections, 0);
  EXPECT_DOUBLE_EQ(sweep.mean_vulnerability_score(),
                   static_cast<double>(violations) / injections);
}

TEST(MultiCampaign, HardeningShowsUpInTheAggregate) {
  // The hardened variant locks mallory out of /toy, so its rho must not
  // exceed the open variant's.
  MultiCampaign suite;
  suite.add(toy_scenario("toy-open", false));
  suite.add(toy_scenario("toy-hard", true));
  SweepResult sweep = suite.run({});
  EXPECT_LE(sweep.results[1].vulnerability_score(),
            sweep.results[0].vulnerability_score());
}

TEST(MultiCampaign, EmptySuiteRunsToEmptyResult) {
  MultiCampaign suite;
  SweepResult sweep = suite.run({});
  EXPECT_TRUE(sweep.results.empty());
  EXPECT_EQ(sweep.total_injections(), 0);
  EXPECT_DOUBLE_EQ(sweep.mean_vulnerability_score(), 0.0);
}

}  // namespace
}  // namespace ep::core
