// The worker line protocol (core/protocol.hpp): one grammar, one
// parser, one formatter set, shared by the pipe, shm, and tcp data
// planes. The parser is strict — a protocol line is either exactly one
// production or a rejected worker, never a best-effort guess.
#include "core/protocol.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace ep::core {
namespace {

using Type = ProtocolMsg::Type;

TEST(Protocol, FormattersRoundTripThroughTheParser) {
  // Every formatter's output must parse back to the same message — the
  // formatters define the canonical bytes both directions of every
  // transport put on the wire.
  const std::vector<std::string> lines = {
      format_hello(kWorkerProtocolVersion),
      format_ping(),
      format_yield(3, 9),
      format_done(0, 4),
      format_done(4, 9, 128, 77),
      format_bye(4),
      format_lease(0, 4, "lpr.lease0.json"),
      format_lease(4, 9, "@1"),
      format_lease(9, 11, "-"),
      format_steal(),
      format_exit(),
      format_feedback(9, 11, "0:i:close-fails:0,1:d:short-read:7"),
  };
  for (const std::string& line : lines) {
    SCOPED_TRACE(line);
    ProtocolMsg msg;
    ASSERT_TRUE(parse_protocol_line(line, &msg));
    EXPECT_EQ(format_protocol_msg(msg), line);
  }
}

TEST(Protocol, ParsesEveryFieldOfEveryProduction) {
  ProtocolMsg m;
  ASSERT_TRUE(parse_protocol_line("HELLO 3", &m));
  EXPECT_EQ(m.type, Type::hello);
  EXPECT_EQ(m.version, 3);

  ASSERT_TRUE(parse_protocol_line("PING", &m));
  EXPECT_EQ(m.type, Type::ping);

  ASSERT_TRUE(parse_protocol_line("YIELD 3 9", &m));
  EXPECT_EQ(m.type, Type::yield);
  EXPECT_EQ(m.begin, 3u);  // the split point rides in `begin`
  EXPECT_EQ(m.end, 9u);

  ASSERT_TRUE(parse_protocol_line("DONE 0 4", &m));
  EXPECT_EQ(m.type, Type::done);
  EXPECT_EQ(m.begin, 0u);
  EXPECT_EQ(m.end, 4u);
  EXPECT_FALSE(m.has_handoff);

  ASSERT_TRUE(parse_protocol_line("DONE 4 9 128 77", &m));
  EXPECT_EQ(m.type, Type::done);
  EXPECT_TRUE(m.has_handoff);
  EXPECT_EQ(m.offset, 128u);
  EXPECT_EQ(m.length, 77u);

  ASSERT_TRUE(parse_protocol_line("BYE 4", &m));
  EXPECT_EQ(m.type, Type::bye);
  EXPECT_EQ(m.status, 4);

  ASSERT_TRUE(parse_protocol_line("LEASE 0 4 report.json", &m));
  EXPECT_EQ(m.type, Type::lease);
  EXPECT_EQ(m.begin, 0u);
  EXPECT_EQ(m.end, 4u);
  EXPECT_EQ(m.target, "report.json");

  ASSERT_TRUE(parse_protocol_line("STEAL", &m));
  EXPECT_EQ(m.type, Type::steal);

  ASSERT_TRUE(parse_protocol_line("FEEDBACK 4 6 0:i:close-fails:0,2:d:short-read:7", &m));
  EXPECT_EQ(m.type, Type::feedback);
  EXPECT_EQ(m.begin, 4u);
  EXPECT_EQ(m.end, 6u);
  EXPECT_EQ(m.target, "0:i:close-fails:0,2:d:short-read:7");

  ASSERT_TRUE(parse_protocol_line("EXIT", &m));
  EXPECT_EQ(m.type, Type::exit_cmd);
}

TEST(Protocol, LeaseTargetIsOneToken) {
  // A lease target is a single token — a path with a space would be
  // ambiguous against future operands, so the parser rejects it rather
  // than guessing where the target ends.
  ProtocolMsg m;
  EXPECT_FALSE(parse_protocol_line("LEASE 1 2 /tmp/a dir/x.json", &m));
  ASSERT_TRUE(parse_protocol_line("LEASE 1 2 /tmp/a-dir/x.json", &m));
  EXPECT_EQ(m.target, "/tmp/a-dir/x.json");
}

TEST(Protocol, RejectsMalformedLines) {
  const std::vector<std::string> bad = {
      "",
      "FROB",
      "HELLO",            // missing version
      "HELLO two",
      "HELLO 2 extra",
      "PING 1",            // PING takes no operands
      "YIELD 3",           // missing end
      "YIELD 3 9 12",      // trailing junk
      "DONE",              // missing range
      "DONE 0",
      "DONE 0 4 128",      // a handoff is two fields or none
      "DONE 0 4 128 77 9",
      "BYE",
      "BYE 4 0",
      "BYE 999",           // an exit status fits in a byte
      "LEASE 0 4",         // missing target
      "LEASE x 4 t",
      "STEAL now",
      "EXIT 0",
      "FEEDBACK 4 6",      // missing item spec
      "FEEDBACK 4 6 a:i:f:0 b:i:f:0",  // spec is one token
      "FEEDBACK x 6 0:i:f:0",
      "lease 0 4 t",       // keywords are case-sensitive
      "DONE 0 99999999999999999999",  // overflow is a reject, not UB
  };
  for (const std::string& line : bad) {
    SCOPED_TRACE("'" + line + "'");
    ProtocolMsg m;
    EXPECT_FALSE(parse_protocol_line(line, &m));
  }
}

TEST(Protocol, VersionConstantIsThree) {
  // Bumping the protocol version must be a conscious act: this pins the
  // constant the HELLO handshake (and docs/WIRE_FORMAT.md) advertise.
  // v3 added FEEDBACK (the search plane's item append).
  EXPECT_EQ(kWorkerProtocolVersion, 3);
}

}  // namespace
}  // namespace ep::core
