// The dynamic-lease orchestrator (core/orchestrator.hpp) over an
// in-process fake Transport: scheduling, preemption re-lease, replacement
// spawning, and failure handling are all deterministic here — the real
// process transport is exercised by the CLI pipeline tests and the CI
// orchestrate smoke.
#include "core/orchestrator.hpp"

#include <gtest/gtest.h>

#include <deque>
#include <string>
#include <vector>

#include "apps/scenarios.hpp"
#include "core/campaign_fixtures.hpp"
#include "core/report.hpp"
#include "util/strings.hpp"

namespace ep::core {
namespace {

/// An in-process worker fleet: submit() queues work, wait_any() "runs"
/// the oldest queued submission through run_lease (every report passes
/// through its JSON encoding, like the wire would) — unless the worker's
/// scripted behavior says it dies first.
class FakeTransport : public Transport {
 public:
  /// Per-spawn-order behavior. preempt_after = -1: faithful worker.
  /// preempt_after = k >= 0: serves k leases, then dies preempted when
  /// handed the next. fail_status != 0: hard-fails (that exit status)
  /// when handed its first lease.
  struct Behavior {
    long long preempt_after = -1;
    int fail_status = 0;
  };

  FakeTransport(const Scenario& scenario, const InjectionPlan& plan)
      : plan_(plan), executor_(scenario) {}

  std::vector<Behavior> script;  // indexed by spawn order; default beyond
  int jobs = 1;

  std::optional<std::size_t> spawn() override {
    workers_.push_back({behavior_at(workers_.size()), 0, true});
    return workers_.size() - 1;
  }

  void submit(std::size_t worker, const Lease& lease) override {
    queue_.push_back({worker, lease, false});
  }

  void shutdown(std::size_t worker) override {
    queue_.push_back({worker, {}, true});
  }

  void kill(std::size_t worker) override {
    workers_[worker].alive = false;
    for (auto it = queue_.begin(); it != queue_.end();)
      it = it->worker == worker ? queue_.erase(it) : it + 1;
  }

  std::optional<WorkerEvent> wait_any(long timeout_ms) override {
    (void)timeout_ms;  // everything here is instantaneous
    if (queue_.empty())
      throw std::logic_error("wait_any with nothing outstanding");
    Pending p = queue_.front();
    queue_.pop_front();
    Worker& w = workers_[p.worker];
    WorkerEvent ev;
    ev.worker = p.worker;
    if (p.is_shutdown) {
      w.alive = false;
      ev.kind = WorkerEvent::Kind::exited;
      ev.status = 0;
      return ev;
    }
    if (w.behavior.fail_status != 0) {
      w.alive = false;
      ev.kind = WorkerEvent::Kind::died;
      ev.status = w.behavior.fail_status;
      return ev;
    }
    if (w.behavior.preempt_after >= 0 &&
        w.served >= w.behavior.preempt_after) {
      w.alive = false;
      ev.kind = WorkerEvent::Kind::preempted;
      ev.status = 4;
      return ev;
    }
    ExecutorOptions opts;
    opts.jobs = jobs;
    ShardReport report =
        run_lease(executor_, plan_, p.lease.begin, p.lease.end, opts);
    ev.kind = WorkerEvent::Kind::lease_done;
    ev.lease = p.lease;
    ev.report = shard_report_from_json(report.to_json());
    ev.label = "lease" + std::to_string(p.lease.seq) + ".json";
    ++w.served;
    return ev;
  }

 private:
  struct Worker {
    Behavior behavior;
    long long served = 0;
    bool alive = true;
  };
  struct Pending {
    std::size_t worker = 0;
    Lease lease;
    bool is_shutdown = false;
  };

  Behavior behavior_at(std::size_t i) const {
    return i < script.size() ? script[i] : Behavior{};
  }

  const InjectionPlan& plan_;
  Executor executor_;
  std::deque<Pending> queue_;
  std::vector<Worker> workers_;
};

InjectionPlan planned_toy() {
  Scenario s = toy_scenario();
  CampaignOptions opts;
  opts.use_world_cache = true;
  return Planner(s).plan(opts);
}

TEST(Orchestrator, MatchesSingleProcessForAnyWorkerCountAndLeaseSize) {
  Scenario s = toy_scenario();
  InjectionPlan plan = planned_toy();
  Executor ex(s);
  CampaignResult single = ex.execute(plan);
  std::string single_json = render_json(single);

  for (int workers : {1, 2, 3, 7}) {
    for (std::size_t lease_items : {std::size_t{0}, std::size_t{1},
                                    std::size_t{5}, plan.items.size()}) {
      SCOPED_TRACE("workers=" + std::to_string(workers) +
                   " lease=" + std::to_string(lease_items));
      FakeTransport transport(s, plan);
      OrchestratorOptions opts;
      opts.workers = workers;
      opts.lease_items = lease_items;
      OrchestratorStats stats;
      CampaignResult merged = orchestrate(plan, transport, opts, &stats);
      expect_identical(single, merged);
      EXPECT_EQ(single_json, render_json(merged));
      EXPECT_GE(stats.leases_total, 1u);
      EXPECT_EQ(stats.leases_granted, stats.leases_total);
      EXPECT_EQ(stats.workers_preempted, 0u);
    }
  }
}

TEST(Orchestrator, ParallelWorkersDrainConcurrentLeases) {
  // The worker side drains each lease through the shared executor pool —
  // the TSan matrix runs this to watch the lease drain under threads.
  Scenario s = toy_scenario();
  InjectionPlan plan = planned_toy();
  Executor ex(s);
  CampaignResult single = ex.execute(plan);
  FakeTransport transport(s, plan);
  transport.jobs = 2;
  OrchestratorOptions opts;
  opts.workers = 3;
  expect_identical(single, orchestrate(plan, transport, opts));
}

TEST(Orchestrator, PreemptedWorkerIsReLeasedAndReplaced) {
  Scenario s = toy_scenario();
  InjectionPlan plan = planned_toy();
  Executor ex(s);
  CampaignResult single = ex.execute(plan);

  FakeTransport transport(s, plan);
  // First worker dies after serving one lease; its in-flight lease must
  // be re-leased and a replacement spawned, with no effect on output.
  transport.script = {{1, 0}};
  OrchestratorOptions opts;
  opts.workers = 2;
  opts.lease_items = 1;
  OrchestratorStats stats;
  CampaignResult merged = orchestrate(plan, transport, opts, &stats);
  expect_identical(single, merged);
  EXPECT_EQ(render_json(single), render_json(merged));
  EXPECT_EQ(stats.workers_preempted, 1u);
  EXPECT_EQ(stats.leases_released, 1u);
  EXPECT_EQ(stats.workers_spawned, 3u);  // 2 initial + 1 replacement
  EXPECT_EQ(stats.leases_granted, stats.leases_total + 1);
}

TEST(Orchestrator, SurvivesEveryWorkerBeingPreemptedRepeatedly) {
  // The CI forced-preemption shape: every worker (replacements included)
  // dies after a single lease. Progress is one lease per spawn, so the
  // campaign still finishes and still matches the single process.
  Scenario s = toy_scenario();
  InjectionPlan plan = planned_toy();
  Executor ex(s);
  CampaignResult single = ex.execute(plan);

  FakeTransport transport(s, plan);
  transport.script.assign(64, {1, 0});
  OrchestratorOptions opts;
  opts.workers = 3;
  opts.lease_items = 2;
  OrchestratorStats stats;
  CampaignResult merged = orchestrate(plan, transport, opts, &stats);
  expect_identical(single, merged);
  EXPECT_GT(stats.workers_preempted, 0u);
}

TEST(Orchestrator, EmptyPlanYieldsTheEmptyResultWithoutWorkers) {
  Scenario s = toy_scenario();
  CampaignOptions opts;
  opts.only_sites = {"--none--"};  // discovery only: zero work items
  InjectionPlan plan = Planner(s).plan(opts);
  ASSERT_TRUE(plan.items.empty());
  FakeTransport transport(s, plan);
  OrchestratorStats stats;
  CampaignResult r = orchestrate(plan, transport, {}, &stats);
  EXPECT_EQ(r.n(), 0);
  EXPECT_EQ(stats.workers_spawned, 0u);
}

TEST(OrchestratorErrors, HardWorkerFailureAbortsInsteadOfReLeasing) {
  Scenario s = toy_scenario();
  InjectionPlan plan = planned_toy();
  FakeTransport transport(s, plan);
  transport.script = {{-1, 9}};  // first worker hard-fails (exit 9)
  OrchestratorOptions opts;
  opts.workers = 2;
  try {
    (void)orchestrate(plan, transport, opts);
    FAIL() << "expected OrchestratorError";
  } catch (const OrchestratorError& e) {
    EXPECT_TRUE(contains(e.what(), "exit status 9"));
    EXPECT_TRUE(contains(e.what(), "failed"));
  }
}

TEST(OrchestratorErrors, RespawnBudgetBoundsAPreemptionStorm) {
  // Workers that die before serving anything make no progress; the
  // budget must stop the spawn loop with a diagnostic, not spin.
  Scenario s = toy_scenario();
  InjectionPlan plan = planned_toy();
  FakeTransport transport(s, plan);
  transport.script.assign(64, {0, 0});  // everyone dies on the first lease
  OrchestratorOptions opts;
  opts.workers = 2;
  opts.max_respawns = 3;
  try {
    (void)orchestrate(plan, transport, opts);
    FAIL() << "expected OrchestratorError";
  } catch (const OrchestratorError& e) {
    EXPECT_TRUE(contains(e.what(), "respawn budget"));
  }
}

TEST(OrchestratorErrors, RejectsAWorkerCountBelowOne) {
  Scenario s = toy_scenario();
  InjectionPlan plan = planned_toy();
  FakeTransport transport(s, plan);
  OrchestratorOptions opts;
  opts.workers = 0;
  EXPECT_THROW((void)orchestrate(plan, transport, opts), OrchestratorError);
}

TEST(Orchestrator, EveryScenarioMatchesSingleProcessIncludingPreemption) {
  // The ISSUE's acceptance bar: for every packaged scenario, the
  // orchestrated drain — leases through the wire, one worker preempted
  // mid-campaign and its lease re-granted — reproduces the
  // single-process run byte for byte at worker counts {2, 3, 7}.
  for (auto& scenario : apps::all_scenarios()) {
    SCOPED_TRACE(scenario.name);
    InjectionPlan plan = Planner(scenario).plan();
    Executor ex(scenario);
    CampaignResult single = ex.execute(plan);
    std::string single_json = render_json(single);
    for (int workers : {2, 3, 7}) {
      SCOPED_TRACE("workers=" + std::to_string(workers));
      FakeTransport transport(scenario, plan);
      transport.script = {{1, 0}};  // first worker dies after one lease
      OrchestratorOptions opts;
      opts.workers = workers;
      opts.lease_items = 2;
      CampaignResult merged = orchestrate(plan, transport, opts);
      expect_identical(single, merged);
      EXPECT_EQ(single_json, render_json(merged));
    }
  }
}

}  // namespace
}  // namespace ep::core
