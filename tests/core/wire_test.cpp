// The distribution wire format (core/wire.hpp, docs/WIRE_FORMAT.md):
// canonical plan/shard-report round trips, the shard partition, the
// deterministic merge, and one test per validation error path — a
// malformed or partial file must raise WireError naming what broke.
#include "core/wire.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/campaign_fixtures.hpp"
#include "core/report.hpp"
#include "util/strings.hpp"

namespace ep::core {
namespace {

InjectionPlan toy_plan(bool with_snapshot = false) {
  Scenario s = toy_scenario();
  CampaignOptions opts;
  opts.use_world_cache = with_snapshot;
  return Planner(s).plan(opts);
}

/// The message of the WireError `fn` must throw.
template <typename Fn>
std::string wire_error_of(Fn&& fn) {
  try {
    fn();
  } catch (const WireError& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected WireError";
  return {};
}

void expect_plans_equal(const InjectionPlan& a, const InjectionPlan& b) {
  EXPECT_EQ(a.scenario_name, b.scenario_name);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].site, b.points[i].site) << i;
    EXPECT_EQ(a.points[i].call, b.points[i].call) << i;
    EXPECT_EQ(a.points[i].object, b.points[i].object) << i;
    EXPECT_EQ(a.points[i].kind, b.points[i].kind) << i;
    EXPECT_EQ(a.points[i].semantic, b.points[i].semantic) << i;
    EXPECT_EQ(a.points[i].channel_kind, b.points[i].channel_kind) << i;
    EXPECT_EQ(a.points[i].has_input, b.points[i].has_input) << i;
    EXPECT_EQ(a.points[i].hits, b.points[i].hits) << i;
  }
  ASSERT_EQ(a.benign_violations.size(), b.benign_violations.size());
  EXPECT_EQ(a.perturbed_site_tags, b.perturbed_site_tags);
  ASSERT_EQ(a.items.size(), b.items.size());
  for (std::size_t i = 0; i < a.items.size(); ++i) {
    EXPECT_EQ(a.items[i].point_index, b.items[i].point_index) << i;
    EXPECT_EQ(a.items[i].fault.kind, b.items[i].fault.kind) << i;
    EXPECT_EQ(a.items[i].fault.name(), b.items[i].fault.name()) << i;
  }
}

TEST(Wire, PlanRoundTripsThroughJson) {
  InjectionPlan plan = toy_plan();
  std::string json = plan.to_json();
  EXPECT_TRUE(contains(json, "\"schema_version\": 2"));
  EXPECT_TRUE(contains(json, "\"kind\": \"injection-plan\""));

  InjectionPlan parsed = plan_from_json(json);
  expect_plans_equal(plan, parsed);
  EXPECT_EQ(parsed.snapshot, nullptr);  // never on the wire

  // Canonical form: parse -> re-serialize reproduces the bytes verbatim
  // (what lets docs/WIRE_FORMAT.md pin the example literally).
  EXPECT_EQ(parsed.to_json(), json);
}

TEST(Wire, RoundTrippedPlanExecutesIdentically) {
  Scenario s = toy_scenario();
  InjectionPlan plan = toy_plan();
  InjectionPlan parsed = plan_from_json(plan.to_json());
  Executor ex(s);
  ExecutorOptions opts;
  opts.use_world_cache = false;
  expect_identical(ex.execute(plan, opts), ex.execute(parsed, opts));
}

TEST(Wire, RefreezeRestoresTheCowPath) {
  Scenario s = toy_scenario();
  InjectionPlan parsed = plan_from_json(toy_plan().to_json());
  ASSERT_EQ(parsed.snapshot, nullptr);
  refreeze_snapshot(parsed, s);
  ASSERT_NE(parsed.snapshot, nullptr);
  // Re-freezing is idempotent, and cached == uncached still holds for the
  // rebuilt plan.
  auto snap = parsed.snapshot;
  refreeze_snapshot(parsed, s);
  EXPECT_EQ(parsed.snapshot, snap);
  Executor ex(s);
  ExecutorOptions cached, uncached;
  uncached.use_world_cache = false;
  expect_identical(ex.execute(parsed, cached), ex.execute(parsed, uncached));
}

TEST(Wire, ShardItemIdsPartitionThePlan) {
  EXPECT_EQ(shard_item_ids(10, 0, 3),
            (std::vector<std::size_t>{0, 3, 6, 9}));
  EXPECT_EQ(shard_item_ids(10, 1, 3), (std::vector<std::size_t>{1, 4, 7}));
  EXPECT_EQ(shard_item_ids(10, 2, 3), (std::vector<std::size_t>{2, 5, 8}));
  // More shards than items: trailing shards legitimately drain nothing.
  EXPECT_EQ(shard_item_ids(2, 2, 5), std::vector<std::size_t>{});
  // Every id lands in exactly one shard for any count.
  for (std::size_t n = 1; n <= 8; ++n) {
    std::vector<std::size_t> all;
    for (std::size_t k = 0; k < n; ++k)
      for (std::size_t id : shard_item_ids(41, k, n)) all.push_back(id);
    std::sort(all.begin(), all.end());
    ASSERT_EQ(all.size(), 41u) << n;
    for (std::size_t i = 0; i < all.size(); ++i) EXPECT_EQ(all[i], i);
  }
  EXPECT_THROW((void)shard_item_ids(10, 3, 3), WireError);
  EXPECT_THROW((void)shard_item_ids(10, 0, 0), WireError);
}

TEST(Wire, ShardReportRoundTripsThroughJson) {
  Scenario s = toy_scenario();
  InjectionPlan plan = toy_plan(/*with_snapshot=*/true);
  ShardReport report = run_shard(Executor(s), plan, 1, 3);
  EXPECT_EQ(report.scenario_name, "toy");
  EXPECT_EQ(report.plan_items, plan.items.size());
  EXPECT_EQ(report.item_ids, shard_item_ids(plan.items.size(), 1, 3));
  EXPECT_TRUE(report.complete);

  std::string json = report.to_json();
  EXPECT_TRUE(contains(json, "\"schema_version\": 3"));
  EXPECT_TRUE(contains(json, "\"complete\": true"));
  EXPECT_TRUE(contains(json, "\"completed_ids\": ["));
  // The compact columnar promise: plan-derivable strings stay off the
  // wire entirely (violation objects still carry their own sites — those
  // are run output, not plan echo).
  EXPECT_FALSE(contains(json, "fault_description"));
  EXPECT_FALSE(contains(json, "\"fault\":"));

  ShardReport parsed = shard_report_from_json(json);
  EXPECT_EQ(parsed.scenario_name, report.scenario_name);
  EXPECT_EQ(parsed.shard_index, report.shard_index);
  EXPECT_EQ(parsed.shard_count, report.shard_count);
  EXPECT_EQ(parsed.plan_items, report.plan_items);
  EXPECT_EQ(parsed.item_ids, report.item_ids);
  EXPECT_TRUE(parsed.complete);
  ASSERT_EQ(parsed.outcomes.size(), report.outcomes.size());
  for (std::size_t i = 0; i < parsed.outcomes.size(); ++i) {
    // Run-dependent fields survive the wire; plan-keyed ones are merge's
    // job (merge re-derives them by id).
    EXPECT_EQ(parsed.outcomes[i].fired, report.outcomes[i].fired) << i;
    EXPECT_EQ(parsed.outcomes[i].violated, report.outcomes[i].violated) << i;
    EXPECT_EQ(parsed.outcomes[i].crashed, report.outcomes[i].crashed) << i;
    EXPECT_EQ(parsed.outcomes[i].exit_code, report.outcomes[i].exit_code)
        << i;
    ASSERT_EQ(parsed.outcomes[i].violations.size(),
              report.outcomes[i].violations.size())
        << i;
    EXPECT_EQ(parsed.outcomes[i].exploit.actor,
              report.outcomes[i].exploit.actor)
        << i;
  }
  EXPECT_EQ(parsed.to_json(), json);  // canonical round trip
}

TEST(Wire, PartialShardReportRoundTripsThroughJson) {
  // A preempted drain's flush: a strict subset of the owned ids, marked
  // complete=false, is a valid wire file that parses and round-trips.
  Scenario s = toy_scenario();
  InjectionPlan plan = toy_plan(/*with_snapshot=*/true);
  ShardReport full = run_shard(Executor(s), plan, 0, 2);
  ASSERT_GE(full.item_ids.size(), 2u);

  ShardReport partial = full;
  partial.item_ids.resize(2);
  partial.outcomes.resize(2);
  partial.complete = false;
  std::string json = partial.to_json();
  EXPECT_TRUE(contains(json, "\"complete\": false"));

  ShardReport parsed = shard_report_from_json(json);
  EXPECT_FALSE(parsed.complete);
  EXPECT_EQ(parsed.item_ids, partial.item_ids);
  EXPECT_EQ(parsed.to_json(), json);
}

TEST(Wire, ShardReportReadsVersion1Files) {
  // The row-oriented PR 3 format stays readable: all plan-redundant
  // fields present per outcome, no complete/completed_ids. Completeness
  // is inferred from id coverage.
  std::string v1 =
      "{\"schema_version\": 1, \"kind\": \"shard-report\", "
      "\"scenario\": \"toy\", \"shard_index\": 1, \"shard_count\": 2, "
      "\"plan_items\": 4, \"outcomes\": ["
      "{\"id\": 1, \"site\": {\"unit\": \"toy.c\", \"line\": 10, "
      "\"tag\": \"toy-read-config\"}, \"call\": \"open\", "
      "\"object\": \"/toy/config\", \"kind\": \"direct\", "
      "\"fault\": \"file-existence\", \"fault_description\": \"gone\", "
      "\"fired\": true, \"violated\": false, \"crashed\": false, "
      "\"overflows\": 0, \"exit_code\": 1, \"violations\": [], "
      "\"exploit\": {\"nonroot_feasible\": false, \"actor\": \"\", "
      "\"note\": \"\"}}]}";
  ShardReport r = shard_report_from_json(v1);
  EXPECT_EQ(r.schema_version, 1);
  EXPECT_EQ(r.item_ids, std::vector<std::size_t>{1});
  ASSERT_EQ(r.outcomes.size(), 1u);
  EXPECT_EQ(r.outcomes[0].fault_name, "file-existence");
  EXPECT_EQ(r.outcomes[0].exit_code, 1);
  EXPECT_FALSE(r.complete);  // shard 2/2 of 4 items owns ids 1 and 3

  // Re-serializing a v1 read emits the current canonical encoding.
  std::string v3 = r.to_json();
  EXPECT_TRUE(contains(v3, "\"schema_version\": 3"));
  EXPECT_TRUE(contains(v3, "\"completed_ids\": [1]"));
  EXPECT_EQ(shard_report_from_json(v3).to_json(), v3);
}

TEST(Wire, Version1OutcomesAreSortedById) {
  // v1 never promised an ordering, but the in-memory report (and its v2
  // re-serialization) must ascend — a file-order v1 report sorts on read.
  auto outcome = [](int id, int exit_code) {
    return "{\"id\": " + std::to_string(id) +
           ", \"site\": {\"unit\": \"t.c\", \"line\": 1, \"tag\": \"x\"}, "
           "\"call\": \"open\", \"object\": \"/f\", \"kind\": \"direct\", "
           "\"fault\": \"file-existence\", \"fault_description\": \"d\", "
           "\"fired\": true, \"violated\": false, \"crashed\": false, "
           "\"overflows\": 0, \"exit_code\": " + std::to_string(exit_code) +
           ", \"violations\": [], \"exploit\": {\"nonroot_feasible\": "
           "false, \"actor\": \"\", \"note\": \"\"}}";
  };
  std::string v1 =
      "{\"schema_version\": 1, \"kind\": \"shard-report\", "
      "\"scenario\": \"toy\", \"shard_index\": 1, \"shard_count\": 2, "
      "\"plan_items\": 4, \"outcomes\": [" +
      outcome(3, 33) + ", " + outcome(1, 11) + "]}";
  ShardReport r = shard_report_from_json(v1);
  EXPECT_EQ(r.item_ids, (std::vector<std::size_t>{1, 3}));
  ASSERT_EQ(r.outcomes.size(), 2u);
  EXPECT_EQ(r.outcomes[0].exit_code, 11);  // outcome followed its id
  EXPECT_EQ(r.outcomes[1].exit_code, 33);
  EXPECT_TRUE(r.complete);  // shard 2/2 of 4 items owns exactly {1, 3}
  EXPECT_EQ(shard_report_from_json(r.to_json()).to_json(), r.to_json());
}

TEST(WireErrors, Version1RejectsViolatedFlagContradictingViolations) {
  // The serializer always kept `violated` == "violations non-empty";
  // a disagreeing v1 file could not re-serialize canonically as v2.
  std::string v1 =
      "{\"schema_version\": 1, \"kind\": \"shard-report\", "
      "\"scenario\": \"toy\", \"shard_index\": 0, \"shard_count\": 2, "
      "\"plan_items\": 4, \"outcomes\": ["
      "{\"id\": 0, \"site\": {\"unit\": \"t.c\", \"line\": 1, "
      "\"tag\": \"x\"}, \"call\": \"open\", \"object\": \"/f\", "
      "\"kind\": \"direct\", \"fault\": \"file-existence\", "
      "\"fault_description\": \"d\", \"fired\": true, \"violated\": true, "
      "\"crashed\": false, \"overflows\": 0, \"exit_code\": 0, "
      "\"violations\": [], \"exploit\": {\"nonroot_feasible\": false, "
      "\"actor\": \"\", \"note\": \"\"}}]}";
  std::string msg =
      wire_error_of([&] { (void)shard_report_from_json(v1); });
  EXPECT_TRUE(contains(msg, "'violated' is true but 'violations' is empty"));
}

TEST(Wire, MergeReassemblesThePlanOrderResult) {
  Scenario s = toy_scenario();
  InjectionPlan plan = toy_plan(/*with_snapshot=*/true);
  Executor ex(s);
  CampaignResult single = ex.execute(plan);

  for (std::size_t n : {2u, 3u, 7u}) {
    std::vector<ShardReport> shards;
    for (std::size_t k = 0; k < n; ++k)
      shards.push_back(run_shard(ex, plan, k, n));
    // Arrival order must not matter.
    std::reverse(shards.begin(), shards.end());
    CampaignResult merged = merge_shard_reports(plan, shards);
    expect_identical(single, merged);
    EXPECT_EQ(render_report(single), render_report(merged)) << n;
    EXPECT_EQ(render_json(single), render_json(merged)) << n;
  }
}

TEST(Wire, MergeSurvivesTheWireRoundTrip) {
  // The full cross-process pipeline in miniature: every byte of shard
  // state passes through JSON, and the merged report still matches the
  // in-process drain bit for bit.
  Scenario s = toy_scenario();
  InjectionPlan plan = toy_plan();
  InjectionPlan parsed = plan_from_json(plan.to_json());
  refreeze_snapshot(parsed, s);
  Executor ex(s);
  std::vector<ShardReport> shards;
  for (std::size_t k = 0; k < 3; ++k)
    shards.push_back(shard_report_from_json(
        run_shard(ex, parsed, k, 3).to_json()));
  CampaignResult merged = merge_shard_reports(parsed, shards);
  ExecutorOptions opts;
  opts.jobs = 4;
  expect_identical(ex.execute(plan, opts), merged);
}

// --- lease-based (assigned_ids) reports ---------------------------------------

TEST(WireLease, LeaseReportRoundTripsThroughJson) {
  Scenario s = toy_scenario();
  InjectionPlan plan = toy_plan(/*with_snapshot=*/true);
  ASSERT_GE(plan.items.size(), 5u);
  ShardReport report = run_lease(Executor(s), plan, 1, 4);
  EXPECT_TRUE(report.leased);
  EXPECT_TRUE(report.complete);
  EXPECT_EQ(report.assigned_ids, (std::vector<std::size_t>{1, 2, 3}));
  EXPECT_EQ(report.item_ids, report.assigned_ids);
  EXPECT_EQ(report.shard_index, 0u);
  EXPECT_EQ(report.shard_count, 1u);

  std::string json = report.to_json();
  EXPECT_TRUE(contains(json, "\"assigned_ids\": [1, 2, 3]"));
  ShardReport parsed = shard_report_from_json(json);
  EXPECT_TRUE(parsed.leased);
  EXPECT_TRUE(parsed.complete);
  EXPECT_EQ(parsed.assigned_ids, report.assigned_ids);
  EXPECT_EQ(parsed.item_ids, report.item_ids);
  EXPECT_EQ(parsed.to_json(), json);  // canonical round trip
}

TEST(WireLease, ModuloReportsStayByteIdenticalWithoutALease) {
  // The lease is an *optional* v2 addition: a modulo shard report must
  // not grow an assigned_ids field, or every pre-lease file and doc
  // example would stop round-tripping.
  Scenario s = toy_scenario();
  std::string json = run_shard(Executor(s), toy_plan(), 0, 2).to_json();
  EXPECT_FALSE(contains(json, "assigned_ids"));
  EXPECT_FALSE(shard_report_from_json(json).leased);
}

TEST(WireLease, MergeAcceptsAnyDisjointLeasePartition) {
  // Dynamic leases are arbitrary contiguous ranges — nothing modulo
  // about them. Any disjoint partition covering the plan must merge
  // byte-identically to the single process, in any arrival order.
  Scenario s = toy_scenario();
  InjectionPlan plan = toy_plan(/*with_snapshot=*/true);
  Executor ex(s);
  CampaignResult single = ex.execute(plan);
  const std::size_t n = plan.items.size();
  ASSERT_GE(n, 8u);

  std::vector<ShardReport> leases;
  leases.push_back(shard_report_from_json(
      run_lease(ex, plan, 5, 7).to_json()));  // arrival order != id order
  leases.push_back(shard_report_from_json(
      run_lease(ex, plan, 0, 5).to_json()));
  leases.push_back(shard_report_from_json(
      run_lease(ex, plan, 7, n).to_json()));
  CampaignResult merged = merge_shard_reports(plan, leases);
  expect_identical(single, merged);
  EXPECT_EQ(render_json(single), render_json(merged));
}

TEST(WireLease, ResumeCompletesAPartialLeaseReport) {
  Scenario s = toy_scenario();
  InjectionPlan plan = toy_plan(/*with_snapshot=*/true);
  Executor ex(s);
  ShardReport full = run_lease(ex, plan, 0, 4);
  ShardReport partial = full;
  partial.item_ids.resize(2);
  partial.outcomes.resize(2);
  partial.complete = false;
  std::string json = partial.to_json();
  EXPECT_TRUE(contains(json, "\"complete\": false"));
  ShardReport resumed =
      resume_shard(ex, plan, shard_report_from_json(json));
  EXPECT_TRUE(resumed.complete);
  EXPECT_EQ(resumed.to_json(), full.to_json());
}

TEST(WireLeaseErrors, RunLeaseRejectsARangeBeyondThePlan) {
  Scenario s = toy_scenario();
  InjectionPlan plan = toy_plan();
  Executor ex(s);
  std::string msg = wire_error_of(
      [&] { (void)run_lease(ex, plan, 0, plan.items.size() + 1); });
  EXPECT_TRUE(contains(msg, "does not fit the plan"));
  msg = wire_error_of([&] { (void)run_lease(ex, plan, 3, 2); });
  EXPECT_TRUE(contains(msg, "does not fit the plan"));
}

TEST(WireLeaseErrors, RejectsCompletedIdOutsideTheLease) {
  Scenario s = toy_scenario();
  InjectionPlan plan = toy_plan();
  ASSERT_GE(plan.items.size(), 5u);
  std::string json =
      replace_all(run_lease(Executor(s), plan, 1, 3).to_json(),
                  "\"completed_ids\": [1, 2]", "\"completed_ids\": [1, 4]");
  EXPECT_TRUE(
      contains(wire_error_of([&] { (void)shard_report_from_json(json); }),
               "not in this report's assigned_ids lease"));
}

TEST(WireLeaseErrors, RejectsAssignedIdsOutOfOrderOrDuplicate) {
  Scenario s = toy_scenario();
  InjectionPlan plan = toy_plan();
  std::string json = run_lease(Executor(s), plan, 1, 3).to_json();
  EXPECT_TRUE(contains(
      wire_error_of([&] {
        (void)shard_report_from_json(replace_all(
            json, "\"assigned_ids\": [1, 2]", "\"assigned_ids\": [2, 1]"));
      }),
      "assigned_ids out of order"));
  EXPECT_TRUE(contains(
      wire_error_of([&] {
        (void)shard_report_from_json(replace_all(
            json, "\"assigned_ids\": [1, 2]", "\"assigned_ids\": [1, 1]"));
      }),
      "duplicate assigned id 1"));
  EXPECT_TRUE(contains(
      wire_error_of([&] {
        (void)shard_report_from_json(replace_all(
            json, "\"assigned_ids\": [1, 2]",
            "\"assigned_ids\": [1, 99999]"));
      }),
      "out of range"));
}

TEST(WireLeaseErrors, RejectsALeaseMasqueradingAsAModuloShard) {
  // shard_index/shard_count are fixed at 0/1 for leased reports so the
  // two ownership styles can never contradict inside one file.
  Scenario s = toy_scenario();
  std::string json = run_lease(Executor(s), toy_plan(), 1, 3).to_json();
  EXPECT_TRUE(contains(
      wire_error_of([&] {
        (void)shard_report_from_json(replace_all(
            json, "\"shard_count\": 1", "\"shard_count\": 3"));
      }),
      "must carry shard_index 0 and shard_count 1"));
}

TEST(WireLeaseErrors, ResumeRejectsALeaseWithModuloShardFields) {
  // The parser enforces leased => shard 0/1 for wire files; resume must
  // hold in-memory callers to the same invariant, or the resumed report
  // would serialize into a file its own reader rejects.
  Scenario s = toy_scenario();
  InjectionPlan plan = toy_plan();
  Executor ex(s);
  ShardReport bad = run_lease(ex, plan, 0, 2);
  bad.shard_index = 2;
  bad.shard_count = 5;
  EXPECT_TRUE(contains(
      wire_error_of([&] { (void)resume_shard(ex, plan, bad); }),
      "must carry shard_index 0 and shard_count 1"));
}

TEST(WireLeaseErrors, MergeRejectsOverlappingLeases) {
  Scenario s = toy_scenario();
  InjectionPlan plan = toy_plan();
  Executor ex(s);
  std::vector<ShardReport> leases;
  leases.push_back(run_lease(ex, plan, 0, 5));
  leases.push_back(run_lease(ex, plan, 4, plan.items.size()));
  std::string msg = wire_error_of(
      [&] { (void)merge_shard_reports(plan, leases, {"a.json", "b.json"}); });
  EXPECT_TRUE(contains(msg, "work item 4 is leased to both"));
  EXPECT_TRUE(contains(msg, "(a.json)"));
  EXPECT_TRUE(contains(msg, "(b.json)"));
}

TEST(WireLeaseErrors, MergeRejectsANonCoveringLeaseSet) {
  Scenario s = toy_scenario();
  InjectionPlan plan = toy_plan();
  Executor ex(s);
  std::vector<ShardReport> leases;
  leases.push_back(run_lease(ex, plan, 0, 5));
  leases.push_back(run_lease(ex, plan, 6, plan.items.size()));  // gap: id 5
  EXPECT_TRUE(contains(
      wire_error_of([&] { (void)merge_shard_reports(plan, leases); }),
      "work item 5 is not covered by any lease"));
}

TEST(WireLeaseErrors, MergeRejectsMixedLeaseAndModuloReports) {
  Scenario s = toy_scenario();
  InjectionPlan plan = toy_plan();
  Executor ex(s);
  std::vector<ShardReport> mixed;
  mixed.push_back(run_shard(ex, plan, 0, 2));
  mixed.push_back(run_lease(ex, plan, 1, 2));
  EXPECT_TRUE(contains(
      wire_error_of([&] { (void)merge_shard_reports(plan, mixed); }),
      "cannot mix lease-based (assigned_ids) and modulo shard reports"));
}

TEST(WireLeaseErrors, MergeRejectsAPartialLeaseReport) {
  Scenario s = toy_scenario();
  InjectionPlan plan = toy_plan();
  Executor ex(s);
  std::vector<ShardReport> leases;
  leases.push_back(run_lease(ex, plan, 0, 5));
  leases.push_back(run_lease(ex, plan, 5, plan.items.size()));
  leases[1].item_ids.pop_back();
  leases[1].outcomes.pop_back();
  std::string msg = wire_error_of([&] {
    (void)merge_shard_reports(plan, leases, {"a.json", "b.json"});
  });
  EXPECT_TRUE(contains(msg, "partial lease report"));
  EXPECT_TRUE(contains(msg, "(b.json)"));
  EXPECT_TRUE(contains(msg, "--resume"));
}

TEST(Wire, MergeScalesToLargeShardCountsWithEmptyTrailingShards) {
  // Locks the owner-resolution rework: merge with a shard count well
  // beyond the item count (trailing shards own nothing and arrive as
  // empty-but-complete reports) must validate per-shard through the
  // precomputed index, not a per-item rescan of the shard list — and a
  // partial report in the pile is still attributed to its file.
  Scenario s = toy_scenario();
  InjectionPlan plan = toy_plan(/*with_snapshot=*/true);
  Executor ex(s);
  CampaignResult single = ex.execute(plan);
  const std::size_t count = plan.items.size() * 2;

  std::vector<ShardReport> shards;
  std::vector<std::string> labels;
  for (std::size_t k = 0; k < count; ++k) {
    shards.push_back(run_shard(ex, plan, k, count));
    labels.push_back("s" + std::to_string(k) + ".json");
  }
  expect_identical(single, merge_shard_reports(plan, shards, labels));

  // Hollow out the shard owning the last item; the diagnostic must name
  // that shard's file without scanning shards per missing item.
  const std::size_t victim_id = plan.items.size() - 1;
  const std::size_t owner = victim_id % count;
  shards[owner].item_ids.clear();
  shards[owner].outcomes.clear();
  std::string msg = wire_error_of(
      [&] { (void)merge_shard_reports(plan, shards, labels); });
  EXPECT_TRUE(contains(msg, "work item " + std::to_string(victim_id) +
                                " has no outcome"));
  EXPECT_TRUE(contains(msg, "(s" + std::to_string(owner) + ".json)"));
}

// --- plan_from_json error paths ---------------------------------------------

TEST(WireErrors, PlanRejectsMalformedJson) {
  EXPECT_TRUE(contains(
      wire_error_of([] { (void)plan_from_json("{\"schema_version\": 1,"); }),
      "not valid JSON"));
}

TEST(WireErrors, PlanRejectsNonObject) {
  EXPECT_TRUE(contains(wire_error_of([] { (void)plan_from_json("[]"); }),
                       "must be an object"));
}

TEST(WireErrors, PlanRejectsMissingSchemaVersion) {
  EXPECT_TRUE(contains(wire_error_of([] { (void)plan_from_json("{}"); }),
                       "schema_version"));
}

TEST(WireErrors, PlanRejectsFutureSchemaVersion) {
  std::string msg = wire_error_of([] {
    (void)plan_from_json("{\"schema_version\": 99, \"kind\": "
                         "\"injection-plan\"}");
  });
  EXPECT_TRUE(contains(msg, "unsupported schema_version 99"));
  EXPECT_TRUE(contains(msg, "versions 1 through 2"));
}

TEST(WireErrors, PlanRejectsForeignKind) {
  Scenario s = toy_scenario();
  ShardReport report = run_shard(Executor(s), toy_plan(), 0, 2);
  std::string msg =
      wire_error_of([&] { (void)plan_from_json(report.to_json()); });
  EXPECT_TRUE(contains(msg, "'shard-report'"));
  EXPECT_TRUE(contains(msg, "'injection-plan'"));
}

TEST(WireErrors, PlanRejectsMissingFieldWithContext) {
  std::string json =
      replace_all(toy_plan().to_json(), "\"call\": \"open\", ", "");
  std::string msg = wire_error_of([&] { (void)plan_from_json(json); });
  EXPECT_TRUE(contains(msg, "points["));
  EXPECT_TRUE(contains(msg, "missing key 'call'"));
}

TEST(WireErrors, PlanRejectsUnknownEnumString) {
  std::string json = replace_all(toy_plan().to_json(), "\"kind\": \"file\"",
                                 "\"kind\": \"flurb\"");
  EXPECT_TRUE(contains(wire_error_of([&] { (void)plan_from_json(json); }),
                       "unknown object kind 'flurb'"));
}

TEST(WireErrors, PlanRejectsOutOfOrderIds) {
  std::string json =
      replace_all(toy_plan().to_json(), "{\"id\": 1, ", "{\"id\": 41, ");
  EXPECT_TRUE(contains(wire_error_of([&] { (void)plan_from_json(json); }),
                       "stable id 41 out of order (expected 1)"));
}

TEST(WireErrors, PlanRejectsPointIndexOutOfRange) {
  std::string json = replace_all(toy_plan().to_json(), "\"point\": 0,",
                                 "\"point\": 99,");
  EXPECT_TRUE(contains(wire_error_of([&] { (void)plan_from_json(json); }),
                       "point index 99 out of range"));
}

TEST(WireErrors, PlanRejectsSitePointMismatch) {
  InjectionPlan plan = toy_plan();
  const std::string& tag0 = plan.points[0].site.tag;
  // Repoint every item naming site tag0 at point 1: tag and index now
  // disagree.
  std::string json = replace_all(
      plan.to_json(), "\"point\": 0, \"site\": " + json_quote(tag0),
      "\"point\": 1, \"site\": " + json_quote(tag0));
  EXPECT_TRUE(contains(wire_error_of([&] { (void)plan_from_json(json); }),
                       "does not match point 1's site"));
}

TEST(WireErrors, PlanRejectsUnknownFault) {
  std::string json = replace_all(toy_plan().to_json(),
                                 "\"fault\": \"file-existence\"",
                                 "\"fault\": \"quantum-flip\"");
  std::string msg = wire_error_of([&] { (void)plan_from_json(json); });
  EXPECT_TRUE(contains(msg, "unknown direct fault 'quantum-flip'"));
  // The error names the item that referenced the fault, not just the
  // fault — a plan has hundreds of items.
  EXPECT_TRUE(contains(msg, "items["));
}

TEST(WireErrors, PlanRejectsIntFieldBeyondInt32) {
  // Silent long-long -> int truncation would accept a corrupt file and
  // break the verbatim re-serialization contract.
  std::string json = replace_all(toy_plan().to_json(), "\"line\": 10",
                                 "\"line\": 21474836480000");
  std::string msg = wire_error_of([&] { (void)plan_from_json(json); });
  EXPECT_TRUE(contains(msg, "does not fit a 32-bit int"));
  EXPECT_TRUE(contains(msg, "points[0]"));
}

TEST(WireErrors, PlanRejectsEmptyScenarioName) {
  std::string json = replace_all(toy_plan().to_json(),
                                 "\"scenario\": \"toy\"",
                                 "\"scenario\": \"\"");
  EXPECT_TRUE(contains(wire_error_of([&] { (void)plan_from_json(json); }),
                       "scenario name is empty"));
}

// --- shard_report_from_json error paths -------------------------------------

TEST(WireErrors, ShardReportRejectsForeignKind) {
  std::string msg = wire_error_of(
      [] { (void)shard_report_from_json(toy_plan().to_json()); });
  EXPECT_TRUE(contains(msg, "'injection-plan'"));
  EXPECT_TRUE(contains(msg, "'shard-report'"));
}

TEST(WireErrors, ShardReportRejectsIndexOutOfRange) {
  Scenario s = toy_scenario();
  std::string json =
      replace_all(run_shard(Executor(s), toy_plan(), 2, 3).to_json(),
                  "\"shard_index\": 2", "\"shard_index\": 3");
  EXPECT_TRUE(
      contains(wire_error_of([&] { (void)shard_report_from_json(json); }),
               "shard_index 3 out of range"));
}

TEST(WireErrors, ShardReportRejectsForeignItemId) {
  Scenario s = toy_scenario();
  // Shard 0 of 3 owns ids 0, 3, 6, ...; retagging the first completed id
  // as 1 hands it an item of shard 2/3.
  std::string json =
      replace_all(run_shard(Executor(s), toy_plan(), 0, 3).to_json(),
                  "\"completed_ids\": [0, ", "\"completed_ids\": [1, ");
  EXPECT_TRUE(
      contains(wire_error_of([&] { (void)shard_report_from_json(json); }),
               "belongs to shard 2/3, not shard 1/3"));
}

TEST(WireErrors, ShardReportRejectsIdBeyondPlan) {
  Scenario s = toy_scenario();
  InjectionPlan plan = toy_plan();
  std::size_t last = shard_item_ids(plan.items.size(), 0, 1).back();
  // Anchor on the "outcomes" key that follows so a small column value
  // equal to `last` cannot match.
  std::string json = replace_all(
      run_shard(Executor(s), plan, 0, 1).to_json(),
      ", " + std::to_string(last) + "],\n  \"outcomes\"",
      ", " + std::to_string(plan.items.size()) + "],\n  \"outcomes\"");
  EXPECT_TRUE(
      contains(wire_error_of([&] { (void)shard_report_from_json(json); }),
               "out of range"));
}

TEST(WireErrors, ShardReportRejectsDuplicateIds) {
  Scenario s = toy_scenario();
  // Shard 2/2 owns ids 1, 3, 5, ...; its first two completed ids both
  // claiming 1 is a duplicate.
  std::string json =
      replace_all(run_shard(Executor(s), toy_plan(), 1, 2).to_json(),
                  "\"completed_ids\": [1, 3", "\"completed_ids\": [1, 1");
  EXPECT_TRUE(
      contains(wire_error_of([&] { (void)shard_report_from_json(json); }),
               "duplicate outcome for work item 1"));
}

TEST(WireErrors, ShardReportRejectsOutOfOrderIds) {
  Scenario s = toy_scenario();
  // Version 2 is canonical: completed_ids must ascend, or the resumed
  // report could not be byte-identical to an uninterrupted run.
  std::string json =
      replace_all(run_shard(Executor(s), toy_plan(), 1, 2).to_json(),
                  "\"completed_ids\": [1, 3", "\"completed_ids\": [3, 1");
  EXPECT_TRUE(
      contains(wire_error_of([&] { (void)shard_report_from_json(json); }),
               "completed_ids out of order (1 after 3)"));
}

TEST(WireErrors, ShardReportRejectsCompleteFlagContradictions) {
  Scenario s = toy_scenario();
  std::string json = run_shard(Executor(s), toy_plan(), 0, 2).to_json();
  // A full report claiming to be partial...
  EXPECT_TRUE(contains(
      wire_error_of([&] {
        (void)shard_report_from_json(replace_all(
            json, "\"complete\": true", "\"complete\": false"));
      }),
      "'complete' is false but completed_ids covers every id"));
  // ...and a truncated one claiming to be complete. Drop the first id and
  // the first entry of every column.
  ShardReport full = shard_report_from_json(json);
  ShardReport truncated = full;
  truncated.item_ids.erase(truncated.item_ids.begin());
  truncated.outcomes.erase(truncated.outcomes.begin());
  truncated.complete = false;  // to_json writes the stored flag
  std::string lying = replace_all(truncated.to_json(), "\"complete\": false",
                                  "\"complete\": true");
  EXPECT_TRUE(contains(
      wire_error_of([&] { (void)shard_report_from_json(lying); }),
      "'complete' is true but completed_ids covers"));
}

TEST(WireErrors, ShardReportRejectsColumnLengthMismatch) {
  Scenario s = toy_scenario();
  std::string json = run_shard(Executor(s), toy_plan(), 0, 3).to_json();
  // Empty out the fired column: its length no longer matches the ids.
  std::size_t at = json.find("\"fired\": [");
  ASSERT_NE(at, std::string::npos);
  std::size_t close = json.find(']', at);
  std::string doctored = json.substr(0, at + 10) + json.substr(close);
  std::string msg =
      wire_error_of([&] { (void)shard_report_from_json(doctored); });
  EXPECT_TRUE(contains(msg, "outcomes.fired has 0 entries"));
}

TEST(WireErrors, ShardReportRejectsExploitViolationsDisagreement) {
  // Canonical form: the exploit analysis exists exactly for violated
  // outcomes. The toy scenario has at least one of each, so flipping one
  // side of the pairing must fail.
  Scenario s = toy_scenario();
  std::string json = run_shard(Executor(s), toy_plan(), 0, 1).to_json();
  ASSERT_TRUE(contains(json, "null"));  // at least one non-violated outcome
  std::size_t at = json.find("\"exploit\": [");
  ASSERT_NE(at, std::string::npos);
  std::size_t null_at = json.find("null", at);
  ASSERT_NE(null_at, std::string::npos);
  std::string doctored =
      json.substr(0, null_at) +
      "{\"nonroot_feasible\": true, \"actor\": \"x\", \"note\": \"y\"}" +
      json.substr(null_at + 4);
  EXPECT_TRUE(contains(
      wire_error_of([&] { (void)shard_report_from_json(doctored); }),
      "exploit present for an outcome with no violations"));
}

// --- merge_shard_reports error paths ----------------------------------------

class WireMergeErrors : public ::testing::Test {
 protected:
  void SetUp() override {
    scenario_ = toy_scenario();
    plan_ = Planner(scenario_).plan();
    Executor ex(scenario_);
    for (std::size_t k = 0; k < 3; ++k)
      shards_.push_back(run_shard(ex, plan_, k, 3));
  }

  Scenario scenario_;
  InjectionPlan plan_;
  std::vector<ShardReport> shards_;
};

TEST_F(WireMergeErrors, RejectsEmptyShardList) {
  EXPECT_TRUE(contains(
      wire_error_of([&] { (void)merge_shard_reports(plan_, {}); }),
      "no shard reports"));
}

TEST_F(WireMergeErrors, RejectsMissingShard) {
  shards_.pop_back();
  EXPECT_TRUE(contains(
      wire_error_of([&] { (void)merge_shard_reports(plan_, shards_); }),
      "got 2 shard report(s) but shard_count is 3"));
}

TEST_F(WireMergeErrors, RejectsImplausibleShardCountWithoutAllocating) {
  // shard_count is untrusted: a crafted value must fail fast, never size
  // an allocation (a 7e11 count once zero-filled ~87GB here).
  for (auto& s : shards_) s.shard_count = 700000000000ull;
  EXPECT_TRUE(contains(
      wire_error_of([&] { (void)merge_shard_reports(plan_, shards_); }),
      "shard_count is 700000000000"));
}

TEST_F(WireMergeErrors, RejectsDuplicateShard) {
  shards_[2] = shards_[0];
  EXPECT_TRUE(contains(
      wire_error_of([&] { (void)merge_shard_reports(plan_, shards_); }),
      "duplicate report for shard 1/3"));
}

TEST_F(WireMergeErrors, RejectsForeignScenario) {
  shards_[1].scenario_name = "other";
  EXPECT_TRUE(contains(
      wire_error_of([&] { (void)merge_shard_reports(plan_, shards_); }),
      "scenario 'other' does not match the plan's 'toy'"));
}

TEST_F(WireMergeErrors, RejectsForeignPlanSize) {
  shards_[1].plan_items = plan_.items.size() + 5;
  EXPECT_TRUE(contains(
      wire_error_of([&] { (void)merge_shard_reports(plan_, shards_); }),
      "written against a plan with"));
}

TEST_F(WireMergeErrors, RejectsInconsistentShardCounts) {
  shards_[1].shard_count = 4;
  EXPECT_TRUE(contains(
      wire_error_of([&] { (void)merge_shard_reports(plan_, shards_); }),
      "disagrees"));
}

TEST_F(WireMergeErrors, RejectsPartialShardFile) {
  shards_[1].item_ids.pop_back();
  shards_[1].outcomes.pop_back();
  EXPECT_TRUE(contains(
      wire_error_of([&] { (void)merge_shard_reports(plan_, shards_); }),
      "has no outcome"));
}

TEST_F(WireMergeErrors, RejectsOutcomeFromAnotherPlan) {
  shards_[1].outcomes[0].fault_name = "quantum-flip";
  EXPECT_TRUE(contains(
      wire_error_of([&] { (void)merge_shard_reports(plan_, shards_); }),
      "different plan"));
}

TEST_F(WireMergeErrors, NamesTheOffendingFileWhenLabelsAreGiven) {
  // The CLI passes shard file paths as labels: a 7-shard failure must
  // name the file to fix, not just "shard 2/3".
  std::vector<std::string> labels = {"a.json", "b.json", "c.json"};
  shards_[1].scenario_name = "other";
  std::string msg = wire_error_of(
      [&] { (void)merge_shard_reports(plan_, shards_, labels); });
  EXPECT_TRUE(contains(msg, "shard 2/3 (b.json)"));

  shards_.clear();
  SetUp();  // fresh shards
  shards_[2] = shards_[0];
  msg = wire_error_of(
      [&] { (void)merge_shard_reports(plan_, shards_, labels); });
  // Both claimants named: the duplicate and the report it collides with.
  EXPECT_TRUE(contains(msg, "shard 1/3 (c.json)"));
  EXPECT_TRUE(contains(msg, "(a.json)"));
}

TEST_F(WireMergeErrors, AttributesPartialFileToItsShard) {
  shards_[1].item_ids.pop_back();
  shards_[1].outcomes.pop_back();
  std::string msg = wire_error_of([&] {
    (void)merge_shard_reports(plan_, shards_,
                              {"a.json", "b.json", "c.json"});
  });
  EXPECT_TRUE(contains(msg, "has no outcome"));
  EXPECT_TRUE(contains(msg, "(b.json)"));
  EXPECT_TRUE(contains(msg, "--resume"));
}

// --- checkpointed drains and resume -----------------------------------------

TEST(WireResume, MergeAcceptsAMixOfWireVersionsAndResumedShards) {
  // One shard straight from memory, one through the v2 wire, one
  // preempted + resumed through the wire: the merge must not care.
  Scenario s = toy_scenario();
  InjectionPlan plan = toy_plan(/*with_snapshot=*/true);
  Executor ex(s);
  CampaignResult single = ex.execute(plan);

  std::vector<ShardReport> shards;
  shards.push_back(run_shard(ex, plan, 0, 3));
  shards.push_back(
      shard_report_from_json(run_shard(ex, plan, 1, 3).to_json()));

  ShardDrainHooks hooks;
  hooks.checkpoint_every = 1;
  std::string last_flush;
  hooks.on_checkpoint = [&](const ShardReport& r) {
    EXPECT_FALSE(r.complete);
    last_flush = r.to_json();
  };
  int polls = 0;
  hooks.interrupted = [&] { return ++polls > 2; };  // stop after 2 items
  ShardReport preempted = run_shard(ex, plan, 2, 3, {}, hooks);
  EXPECT_FALSE(preempted.complete);
  EXPECT_FALSE(last_flush.empty());

  ShardReport resumed = resume_shard(
      ex, plan, shard_report_from_json(preempted.to_json()));
  EXPECT_TRUE(resumed.complete);
  // Byte-identical to a never-preempted drain of the same shard.
  EXPECT_EQ(resumed.to_json(), run_shard(ex, plan, 2, 3).to_json());

  shards.push_back(shard_report_from_json(resumed.to_json()));
  expect_identical(single, merge_shard_reports(plan, shards));
}

TEST(WireResume, ResumeOfACompleteReportDrainsNothing) {
  Scenario s = toy_scenario();
  InjectionPlan plan = toy_plan(/*with_snapshot=*/true);
  Executor ex(s);
  ShardReport full = run_shard(ex, plan, 0, 2);
  ShardReport resumed = resume_shard(ex, plan, full);
  EXPECT_EQ(resumed.to_json(), full.to_json());
}

TEST(WireResume, ResumeRejectsAForeignPartialReport) {
  Scenario s = toy_scenario();
  InjectionPlan plan = toy_plan();
  Executor ex(s);
  ShardReport partial = run_shard(ex, plan, 0, 2);
  partial.item_ids.resize(1);
  partial.outcomes.resize(1);
  partial.complete = false;

  ShardReport foreign = partial;
  foreign.scenario_name = "other";
  EXPECT_TRUE(contains(
      wire_error_of([&] { (void)resume_shard(ex, plan, foreign); }),
      "scenario 'other' does not match"));

  foreign = partial;
  foreign.plan_items = plan.items.size() + 1;
  EXPECT_TRUE(contains(
      wire_error_of([&] { (void)resume_shard(ex, plan, foreign); }),
      "written against a plan with"));

  foreign = partial;
  foreign.item_ids[0] = 1;  // shard 1/2 owns id 1, not shard 0/2
  EXPECT_TRUE(contains(
      wire_error_of([&] { (void)resume_shard(ex, plan, foreign); }),
      "belongs to shard 2/2"));
}

TEST(WireResume, CheckpointedSubsetDrainMatchesPlainDrain) {
  // The executor-level contract: any chunk size, any job count, same
  // prefix bytes; stop() keeps exactly the completed chunks.
  Scenario s = toy_scenario();
  InjectionPlan plan = toy_plan(/*with_snapshot=*/true);
  Executor ex(s);
  std::vector<std::size_t> ids = shard_item_ids(plan.items.size(), 0, 1);
  auto plain = ex.execute_subset(plan, ids);
  for (int jobs : {1, 2}) {
    ExecutorOptions opts;
    opts.jobs = jobs;
    for (std::size_t every : {1u, 2u, 5u}) {
      std::size_t checkpoints = 0;
      auto chunked = ex.execute_subset_checkpointed(
          plan, ids, every,
          [&](const std::vector<InjectionOutcome>& prefix) {
            ++checkpoints;
            EXPECT_LT(prefix.size(), ids.size());
            EXPECT_EQ(prefix.size() % every, 0u);
          },
          nullptr, opts);
      ASSERT_EQ(chunked.size(), plain.size()) << every;
      for (std::size_t i = 0; i < plain.size(); ++i)
        EXPECT_EQ(chunked[i].fault_name, plain[i].fault_name) << i;
      EXPECT_EQ(checkpoints, (ids.size() - 1) / every);
    }
  }
}

}  // namespace
}  // namespace ep::core
