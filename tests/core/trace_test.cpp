// Trace-recorder tests: interaction-point discovery semantics.
#include "core/trace.hpp"

#include <gtest/gtest.h>

#include "os/world.hpp"

namespace ep::core {
namespace {

const os::Site kA{"app.c", 1, "site-a"};
const os::Site kB{"app.c", 2, "site-b"};
const os::Site kChild{"child.c", 1, "child-site"};

class TraceTest : public ::testing::Test {
 protected:
  TraceTest() {
    os::world::standard_unix(k);
    os::world::put_file(k, "/data/f", "content", os::kRootUid, 0, 0644);
    pid = k.make_process(os::kRootUid, os::kRootGid, "/");
  }
  os::Kernel k;
  os::Pid pid = -1;
};

TEST_F(TraceTest, RecordsDistinctSitesInFirstSeenOrder) {
  auto rec = std::make_shared<TraceRecorder>();
  k.add_interposer(rec);
  (void)k.stat(kB, pid, "/data/f");
  (void)k.stat(kA, pid, "/data/f");
  (void)k.stat(kB, pid, "/data/f");
  ASSERT_EQ(rec->points().size(), 2u);
  EXPECT_EQ(rec->points()[0].site.tag, "site-b");
  EXPECT_EQ(rec->points()[1].site.tag, "site-a");
  EXPECT_EQ(rec->points()[0].hits, 2);
}

TEST_F(TraceTest, HasInputAccumulatesAcrossVisits) {
  auto rec = std::make_shared<TraceRecorder>();
  k.add_interposer(rec);
  // open (no input) then read (input) at the same source region.
  auto fd = k.open(kA, pid, "/data/f", os::OpenFlag::rd);
  ASSERT_TRUE(fd.ok());
  (void)k.read(kA, pid, fd.value());
  ASSERT_EQ(rec->points().size(), 1u);
  EXPECT_TRUE(rec->points()[0].has_input);
  EXPECT_EQ(rec->points()[0].call, "open");  // first-seen call kept
}

TEST_F(TraceTest, OutputAndFaultEventsAreNotInteractionPoints) {
  auto rec = std::make_shared<TraceRecorder>();
  k.add_interposer(rec);
  k.output(kA, pid, "hello");
  k.app_fault(kA, pid, os::AppFault::crash, "x");
  k.privileged_action(kA, pid, "act", true);
  EXPECT_TRUE(rec->points().empty());
}

TEST_F(TraceTest, UnitFilterExcludesChildPrograms) {
  auto rec = std::make_shared<TraceRecorder>("app.c");
  k.add_interposer(rec);
  (void)k.stat(kA, pid, "/data/f");
  (void)k.stat(kChild, pid, "/data/f");
  ASSERT_EQ(rec->points().size(), 1u);
  EXPECT_EQ(rec->points()[0].site.unit, "app.c");
}

TEST_F(TraceTest, RecordsKindAndSemantic) {
  auto rec = std::make_shared<TraceRecorder>();
  k.add_interposer(rec);
  k.proc(pid).env["PATH"] = "/bin";
  (void)k.getenv(kA, pid, "PATH");
  ASSERT_EQ(rec->points().size(), 1u);
  EXPECT_EQ(rec->points()[0].kind, ObjectKind::env_var);
  EXPECT_EQ(rec->points()[0].semantic, InputSemantic::path_list);
  EXPECT_EQ(rec->points()[0].object, "$PATH");
}

TEST_F(TraceTest, FailedCallsStillCountAsInteractionPoints) {
  auto rec = std::make_shared<TraceRecorder>();
  k.add_interposer(rec);
  (void)k.open(kA, pid, "/no/such/file", os::OpenFlag::rd);
  EXPECT_EQ(rec->points().size(), 1u);
}

}  // namespace
}  // namespace ep::core
