// The Figure 2 adequacy metric: region classification and boundaries.
#include "core/coverage.hpp"

#include <gtest/gtest.h>

namespace ep::core {
namespace {

TEST(Adequacy, FourRegions) {
  EXPECT_EQ(classify({0.2, 0.3}), AdequacyRegion::point1_inadequate);
  EXPECT_EQ(classify({0.2, 0.95}), AdequacyRegion::point2_unexplored);
  EXPECT_EQ(classify({0.9, 0.3}), AdequacyRegion::point3_insecure);
  EXPECT_EQ(classify({0.9, 0.95}), AdequacyRegion::point4_adequate_secure);
}

TEST(Adequacy, ThresholdBoundariesInclusive) {
  AdequacyThresholds t;  // 0.5 / 0.8
  EXPECT_EQ(classify({0.5, 0.8}, t), AdequacyRegion::point4_adequate_secure);
  EXPECT_EQ(classify({0.4999, 0.8}, t), AdequacyRegion::point2_unexplored);
  EXPECT_EQ(classify({0.5, 0.7999}, t), AdequacyRegion::point3_insecure);
}

TEST(Adequacy, CustomThresholds) {
  AdequacyThresholds t{0.9, 0.99};
  EXPECT_EQ(classify({0.85, 1.0}, t), AdequacyRegion::point2_unexplored);
  EXPECT_EQ(classify({0.95, 1.0}, t), AdequacyRegion::point4_adequate_secure);
}

TEST(Adequacy, CornersOfUnitSquare) {
  EXPECT_EQ(classify({0.0, 0.0}), AdequacyRegion::point1_inadequate);
  EXPECT_EQ(classify({1.0, 0.0}), AdequacyRegion::point3_insecure);
  EXPECT_EQ(classify({0.0, 1.0}), AdequacyRegion::point2_unexplored);
  EXPECT_EQ(classify({1.0, 1.0}), AdequacyRegion::point4_adequate_secure);
}

TEST(Adequacy, NamesAndMeaningsNonEmpty) {
  for (auto r : {AdequacyRegion::point1_inadequate,
                 AdequacyRegion::point2_unexplored,
                 AdequacyRegion::point3_insecure,
                 AdequacyRegion::point4_adequate_secure}) {
    EXPECT_FALSE(to_string(r).empty());
    EXPECT_FALSE(region_meaning(r).empty());
  }
}

// Property sweep: classification is monotone — increasing either coverage
// never moves the point to a "worse" region along that axis.
class AdequacyMonotone
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(AdequacyMonotone, RaisingFaultCoverageNeverIntroducesInsecurity) {
  auto [ic, fc] = GetParam();
  AdequacyPoint p{ic, fc};
  AdequacyPoint up{ic, std::min(1.0, fc + 0.3)};
  bool was_secure = classify(p) == AdequacyRegion::point4_adequate_secure ||
                    classify(p) == AdequacyRegion::point2_unexplored;
  bool now_secure = classify(up) == AdequacyRegion::point4_adequate_secure ||
                    classify(up) == AdequacyRegion::point2_unexplored;
  if (was_secure) {
    EXPECT_TRUE(now_secure);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AdequacyMonotone,
    ::testing::Values(std::make_pair(0.1, 0.1), std::make_pair(0.1, 0.85),
                      std::make_pair(0.6, 0.1), std::make_pair(0.6, 0.85),
                      std::make_pair(0.5, 0.8), std::make_pair(1.0, 0.5),
                      std::make_pair(0.49, 0.79)));

}  // namespace
}  // namespace ep::core
