// The deadman timer (core/orchestrator.hpp, OrchestratorOptions::
// deadman_ms): a busy worker that goes silent — no PING, no DONE, no
// YIELD — is killed through the transport and its lease re-leased. The
// clock is injected, so expiry is driven here in fake time; the wall-
// clock version (SIGSTOPped tcp worker) lives in the CLI pipeline tests.
#include "core/orchestrator.hpp"

#include <gtest/gtest.h>

#include <deque>
#include <string>
#include <vector>

#include "core/campaign_fixtures.hpp"
#include "core/report.hpp"

namespace ep::core {
namespace {

/// A fleet where time only moves when the transport says so. Each
/// worker's script: emit `pings` heartbeats (one per wait_any, the fake
/// clock stepping `tick` ms before each), then either complete the lease
/// through run_lease or — when `wedge` — fall silent forever. Silence is
/// modeled honestly: wait_any advances the clock past the requested
/// timeout and returns nullopt, exactly what a poll(2) timeout does.
class SilentFleet : public Transport {
 public:
  struct Behavior {
    long long pings = 0;
    bool wedge = false;
  };

  SilentFleet(const Scenario& scenario, const InjectionPlan& plan,
              long long* clock)
      : plan_(plan), executor_(scenario), clock_(clock) {}

  std::vector<Behavior> script;  // by spawn order; default beyond
  long long tick = 0;            // clock step per delivered event
  std::vector<std::size_t> killed;

  std::optional<std::size_t> spawn() override {
    std::size_t i = workers_.size();
    workers_.push_back(
        {i < script.size() ? script[i] : Behavior{}, {}, false, true});
    return i;
  }

  void submit(std::size_t worker, const Lease& lease) override {
    workers_[worker].lease = lease;
    workers_[worker].busy = true;
    grant_order_.push_back(worker);
  }

  void shutdown(std::size_t worker) override {
    exits_.push_back(worker);
  }

  void kill(std::size_t worker) override {
    workers_[worker].alive = false;
    workers_[worker].busy = false;
    killed.push_back(worker);
  }

  std::optional<WorkerEvent> wait_any(long timeout_ms) override {
    // Heartbeats drain before completions: a pinging worker is heard
    // from even while another worker is mid-lease.
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      Worker& wk = workers_[w];
      if (!wk.alive || !wk.busy || wk.behavior.pings <= 0) continue;
      --wk.behavior.pings;
      *clock_ += tick;
      WorkerEvent ev;
      ev.kind = WorkerEvent::Kind::heartbeat;
      ev.worker = w;
      return ev;
    }
    // Completions land oldest grant first, like a fleet of equal-speed
    // workers — no worker is starved behind a chattier neighbor.
    for (auto it = grant_order_.begin(); it != grant_order_.end();) {
      Worker& wk = workers_[*it];
      if (!wk.alive || !wk.busy) {
        it = grant_order_.erase(it);  // killed since its grant
        continue;
      }
      if (wk.behavior.wedge) {
        ++it;
        continue;
      }
      std::size_t w = *it;
      grant_order_.erase(it);
      wk.busy = false;
      *clock_ += tick;
      WorkerEvent ev;
      ev.kind = WorkerEvent::Kind::lease_done;
      ev.worker = w;
      ev.lease = wk.lease;
      ShardReport report = run_lease(executor_, plan_, wk.lease.begin,
                                     wk.lease.end, {});
      ev.report = shard_report_from_json(report.to_json());
      ev.label = "lease" + std::to_string(wk.lease.seq) + ".json";
      return ev;
    }
    for (auto it = exits_.begin(); it != exits_.end(); ++it) {
      if (!workers_[*it].alive) continue;
      std::size_t w = *it;
      exits_.erase(it);
      workers_[w].alive = false;
      WorkerEvent ev;
      ev.kind = WorkerEvent::Kind::exited;
      ev.worker = w;
      ev.status = 0;
      return ev;
    }
    // Only wedged workers are left holding work: silence. Step the clock
    // past the caller's poll window so the next reap pass sees expiry.
    if (timeout_ms < 0)
      throw std::logic_error("wait_any blocking forever on a silent fleet");
    *clock_ += timeout_ms + 1;
    return std::nullopt;
  }

 private:
  struct Worker {
    Behavior behavior;
    Lease lease;
    bool busy = false;
    bool alive = true;
  };

  const InjectionPlan& plan_;
  Executor executor_;
  long long* clock_;
  std::vector<Worker> workers_;
  std::deque<std::size_t> grant_order_;
  std::deque<std::size_t> exits_;
};

InjectionPlan planned_toy() {
  Scenario s = toy_scenario();
  CampaignOptions opts;
  opts.use_world_cache = true;
  return Planner(s).plan(opts);
}

TEST(Deadman, SilentBusyWorkerIsKilledReLeasedAndReplaced) {
  Scenario s = toy_scenario();
  InjectionPlan plan = planned_toy();
  Executor ex(s);
  CampaignResult single = ex.execute(plan);

  long long clock = 0;
  SilentFleet fleet(s, plan, &clock);
  fleet.tick = 10;
  // Worker 0 wedges on its first lease without a single heartbeat;
  // worker 1 pings twice first, so the clock crosses worker 0's window
  // while plenty of leases are still pending — the re-lease and the
  // replacement spawn both have to happen mid-campaign.
  fleet.script = {{0, true}, {2, false}};
  OrchestratorOptions opts;
  opts.workers = 2;
  opts.lease_items = 1;
  opts.deadman_ms = 25;
  opts.now_ms = [&clock] { return clock; };
  OrchestratorStats stats;
  CampaignResult merged = orchestrate(plan, fleet, opts, &stats);

  expect_identical(single, merged);
  EXPECT_EQ(render_json(single), render_json(merged));
  EXPECT_EQ(stats.deadman_expiries, 1u);
  EXPECT_EQ(stats.workers_preempted, 1u);
  EXPECT_EQ(stats.leases_released, 1u);
  ASSERT_EQ(fleet.killed.size(), 1u);
  EXPECT_EQ(fleet.killed[0], 0u);  // the wedged worker, nobody else
  EXPECT_EQ(stats.workers_spawned, 3u);  // 2 initial + 1 replacement
}

TEST(Deadman, HeartbeatsKeepASlowWorkerAliveAcrossTheWindow) {
  // Liveness bookkeeping: every PING resets last_heard. A worker whose
  // lease takes several windows of wall time survives as long as no
  // single silent gap reaches deadman_ms.
  Scenario s = toy_scenario();
  InjectionPlan plan = planned_toy();
  Executor ex(s);
  CampaignResult single = ex.execute(plan);

  long long clock = 0;
  SilentFleet fleet(s, plan, &clock);
  fleet.tick = 80;  // each gap is 80ms against a 100ms deadman...
  fleet.script.assign(1, {3, false});  // ...and each lease pings 3 times
  OrchestratorOptions opts;
  opts.workers = 1;
  opts.lease_items = plan.items.size();
  opts.deadman_ms = 100;
  opts.now_ms = [&clock] { return clock; };
  OrchestratorStats stats;
  CampaignResult merged = orchestrate(plan, fleet, opts, &stats);

  expect_identical(single, merged);
  EXPECT_EQ(stats.deadman_expiries, 0u);
  EXPECT_EQ(stats.workers_preempted, 0u);
  EXPECT_TRUE(fleet.killed.empty());
  // The lease outlived the window several times over; only the pings
  // kept the worker off the deadman's list.
  EXPECT_GT(clock, opts.deadman_ms * 3);
}

TEST(Deadman, IdleWorkersAreExemptFromExpiry) {
  // An idle worker holds no work worth recovering: a fleet larger than
  // the lease count leaves workers idle for the whole campaign, and the
  // deadman must not shoot them no matter how long it takes.
  Scenario s = toy_scenario();
  InjectionPlan plan = planned_toy();
  Executor ex(s);
  CampaignResult single = ex.execute(plan);

  long long clock = 0;
  SilentFleet fleet(s, plan, &clock);
  fleet.tick = 400;  // every event is most of a deadman window...
  fleet.script = {{2, false}};  // ...and the one busy worker pings twice,
                                // so the idle workers sit silent past
                                // t=1200 with last_heard stuck at 0
  OrchestratorOptions opts;
  opts.workers = 3;
  opts.lease_items = plan.items.size();  // one lease; two workers idle
  opts.deadman_ms = 500;
  opts.now_ms = [&clock] { return clock; };
  OrchestratorStats stats;
  CampaignResult merged = orchestrate(plan, fleet, opts, &stats);

  expect_identical(single, merged);
  EXPECT_EQ(stats.deadman_expiries, 0u);
  EXPECT_TRUE(fleet.killed.empty());
}

}  // namespace
}  // namespace ep::core
