// Executor layer tests: the parallel drain must be result-identical to
// the serial one — same injections, same order, same scores — for any
// worker count (the thread-confinement guarantee).
#include "core/executor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/campaign_fixtures.hpp"

namespace ep::core {
namespace {

TEST(Executor, ParallelDrainIsResultIdenticalToSerial) {
  Scenario s = toy_scenario();
  InjectionPlan plan = Planner(s).plan();
  Executor executor(s);

  CampaignResult serial = executor.execute(plan, {1});
  for (int jobs : {2, 4, 13}) {
    ExecutorOptions opts;
    opts.jobs = jobs;
    CampaignResult parallel = executor.execute(plan, opts);
    expect_identical(serial, parallel);
  }
}

TEST(Executor, OutcomeSlotsFollowPlanOrder) {
  Scenario s = toy_scenario();
  InjectionPlan plan = Planner(s).plan();
  ExecutorOptions opts;
  opts.jobs = 4;
  CampaignResult r = Executor(s).execute(plan, opts);
  ASSERT_EQ(r.injections.size(), plan.items.size());
  for (std::size_t i = 0; i < plan.items.size(); ++i) {
    EXPECT_EQ(r.injections[i].site.tag,
              plan.point_of(plan.items[i]).site.tag);
    EXPECT_EQ(r.injections[i].fault_name, plan.items[i].fault.name());
  }
}

TEST(Executor, NonPositiveJobsRunsSerially) {
  Scenario s = toy_scenario();
  InjectionPlan plan = Planner(s).plan();
  Executor executor(s);
  CampaignResult serial = executor.execute(plan, {1});
  expect_identical(serial, executor.execute(plan, {0}));
  expect_identical(serial, executor.execute(plan, {-3}));
}

TEST(Executor, CampaignFacadeHonorsJobsOption) {
  CampaignOptions serial_opts;
  CampaignOptions parallel_opts;
  parallel_opts.jobs = 4;
  CampaignResult a = Campaign(toy_scenario()).execute(serial_opts);
  CampaignResult b = Campaign(toy_scenario()).execute(parallel_opts);
  expect_identical(a, b);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h = 0;
  parallel_for(hits.size(), 8,
               [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, RethrowsTheLowestIndexError) {
  for (int jobs : {1, 4}) {
    try {
      parallel_for(64, jobs, [&](std::size_t i) {
        if (i == 7 || i == 50) throw std::runtime_error(std::to_string(i));
      });
      FAIL() << "expected an exception (jobs " << jobs << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "7") << "jobs " << jobs;
    }
  }
}

}  // namespace
}  // namespace ep::core
