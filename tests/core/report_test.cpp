#include "core/report.hpp"

#include <gtest/gtest.h>

#include "apps/lpr.hpp"
#include "os/world.hpp"
#include "util/strings.hpp"

namespace ep::core {
namespace {

CampaignResult lpr_result() {
  Campaign c(apps::lpr_scenario());
  CampaignOptions opts;
  opts.only_sites = {apps::kLprCreateTag};
  return c.execute(opts);
}

TEST(Report, SummaryLineShape) {
  auto r = lpr_result();
  EXPECT_EQ(render_summary_line(r),
            "lpr: 2 interaction points, 4 perturbations, 4 violations");
}

TEST(Report, FullReportMentionsSitesAndMetrics) {
  auto r = lpr_result();
  std::string text = render_report(r);
  EXPECT_TRUE(ep::contains(text, "create-tempfile"));
  EXPECT_TRUE(ep::contains(text, "fault coverage"));
  EXPECT_TRUE(ep::contains(text, "interaction coverage"));
  EXPECT_TRUE(ep::contains(text, "adequacy region"));
  EXPECT_TRUE(ep::contains(text, "vulnerability score"));
}

TEST(Report, ListsEachViolationWithPolicy) {
  auto r = lpr_result();
  std::string text = render_report(r);
  EXPECT_TRUE(ep::contains(text, "[integrity]"));
  EXPECT_TRUE(ep::contains(text, "symbolic-link"));
  EXPECT_TRUE(ep::contains(text, "file-existence"));
}

TEST(Report, AssumptionAnalysisRendered) {
  auto r = lpr_result();
  std::string text = render_report(r);
  // lpr's spool dir is root-owned in our world: perturbations there need
  // root, except nothing — the report must carry the analysis line.
  EXPECT_TRUE(ep::contains(text, "assumption"));
}

TEST(Report, JsonCarriesMetricsAndOutcomes) {
  auto r = lpr_result();
  std::string json = render_json(r);
  EXPECT_TRUE(ep::contains(json, "\"scenario\": \"lpr\""));
  EXPECT_TRUE(ep::contains(json, "\"injections\": 4"));
  EXPECT_TRUE(ep::contains(json, "\"violations\": 4"));
  EXPECT_TRUE(ep::contains(json, "\"fault\": \"symbolic-link\""));
  EXPECT_TRUE(ep::contains(json, "\"policy\": \"integrity\""));
  EXPECT_TRUE(ep::contains(json, "\"adequacy_region\""));
  EXPECT_TRUE(ep::contains(json, "\"nonroot_feasible\""));
}

TEST(Report, JsonBalancedAndEscaped) {
  auto r = lpr_result();
  std::string json = render_json(r);
  int braces = 0, brackets = 0, quotes = 0;
  bool in_string = false, escaped = false;
  for (char ch : json) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string && ch == '\\') {
      escaped = true;
      continue;
    }
    if (ch == '"') {
      in_string = !in_string;
      ++quotes;
      continue;
    }
    if (in_string) continue;
    if (ch == '{') ++braces;
    if (ch == '}') --braces;
    if (ch == '[') ++brackets;
    if (ch == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_EQ(quotes % 2, 0);
  EXPECT_FALSE(in_string);
}

TEST(Report, JsonEscapesControlCharacters) {
  // The badly_formatted payloads carry control bytes and quotes; the
  // JSON must stay parseable when they end up inside detail strings.
  core::Campaign c(apps::lpr_scenario());
  auto r = c.execute();  // full campaign, all faults
  std::string json = render_json(r);
  for (char ch : json)
    EXPECT_TRUE(static_cast<unsigned char>(ch) >= 0x20 || ch == '\n')
        << "raw control byte in JSON output";
}

TEST(Report, WarnsOnBenignViolations) {
  // A scenario whose benign run already violates must be flagged loudly.
  auto s = apps::lpr_scenario();
  auto orig_build = s.build;
  s.build = [orig_build] {
    auto w = orig_build();
    // Sabotage: pre-create the spool file as root so even the benign run
    // trips the integrity policy.
    os::world::put_file(w->kernel, apps::kLprSpoolFile, "x", os::kRootUid, 0,
                        0600);
    return w;
  };
  Campaign c(std::move(s));
  CampaignOptions opts;
  opts.only_sites = {apps::kLprCreateTag};
  auto r = c.execute(opts);
  EXPECT_FALSE(r.benign_violations.empty());
  EXPECT_TRUE(ep::contains(render_report(r), "WARNING"));
}

}  // namespace
}  // namespace ep::core
