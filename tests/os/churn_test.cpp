// Randomized churn property test: thousands of seeded random namespace
// operations must keep the VFS structurally consistent, keep canonical
// paths resolvable, and never break the parent maps — the invariants the
// perturbers rely on when they rewire worlds mid-campaign.
#include <gtest/gtest.h>

#include "os/vfs.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace ep::os {
namespace {

class ChurnMachine {
 public:
  explicit ChurnMachine(std::uint64_t seed) : rng_(seed) {
    dirs_.push_back(vfs_.root());
  }

  void step() {
    switch (rng_.below(6)) {
      case 0: create_file(); break;
      case 1: create_dir(); break;
      case 2: create_symlink(); break;
      case 3: remove_something(); break;
      case 4: rename_something(); break;
      case 5: detach_something(); break;
    }
  }

  void verify() {
    ASSERT_TRUE(vfs_.check_invariants().empty()) << vfs_.check_invariants();
    // Every reachable path must canonicalize back to itself.
    for (const auto& p : vfs_.list_all_paths()) {
      auto r = vfs_.resolve(p, "/", kRootUid, kRootGid,
                            /*follow_final=*/false);
      ASSERT_TRUE(r.ok()) << p;
      ASSERT_EQ(vfs_.canonical_path(r.value()), p);
    }
  }

 private:
  std::string fresh_name() { return "n" + std::to_string(counter_++); }

  Ino random_dir() {
    // Directories may have been detached; prune dead ones lazily.
    while (!dirs_.empty()) {
      std::size_t i = rng_.below(dirs_.size());
      Ino d = dirs_[i];
      if (vfs_.exists(d) && vfs_.inode(d).is_dir() &&
          (d == vfs_.root() ||
           !ep::starts_with(vfs_.canonical_path(d), "<detached"))) {
        return d;
      }
      dirs_.erase(dirs_.begin() + static_cast<long>(i));
    }
    return vfs_.root();
  }

  void create_file() {
    (void)vfs_.create_file(random_dir(), fresh_name(), kRootUid, kRootGid,
                           0644, "x");
  }
  void create_dir() {
    auto r = vfs_.create_dir(random_dir(), fresh_name(), kRootUid, kRootGid,
                             0755);
    if (r.ok()) dirs_.push_back(r.value());
  }
  void create_symlink() {
    auto all = vfs_.list_all_paths();
    std::string target = all.empty() ? "/nowhere" : rng_.pick(all);
    (void)vfs_.create_symlink(random_dir(), fresh_name(), kRootUid, kRootGid,
                              target);
  }
  void remove_something() {
    Ino d = random_dir();
    const Inode& dir = vfs_.inode(d);
    if (dir.entries.empty()) return;
    std::size_t i = rng_.below(dir.entries.size());
    auto it = dir.entries.begin();
    std::advance(it, static_cast<long>(i));
    std::string name = it->first;
    if (vfs_.inode(it->second).is_dir())
      (void)vfs_.remove_dir(d, name);
    else
      (void)vfs_.remove(d, name);
  }
  void rename_something() {
    Ino from = random_dir();
    const Inode& dir = vfs_.inode(from);
    if (dir.entries.empty()) return;
    std::size_t i = rng_.below(dir.entries.size());
    auto it = dir.entries.begin();
    std::advance(it, static_cast<long>(i));
    std::string name = it->first;
    Ino moving = it->second;
    Ino to = random_dir();
    // Moving a directory under itself would create a cycle; the churn
    // machine only moves non-directories across dirs.
    if (vfs_.inode(moving).is_dir() && to != from) return;
    (void)vfs_.rename_entry(from, name, to, fresh_name());
  }
  void detach_something() {
    Ino d = random_dir();
    const Inode& dir = vfs_.inode(d);
    if (dir.entries.empty()) return;
    std::size_t i = rng_.below(dir.entries.size());
    auto it = dir.entries.begin();
    std::advance(it, static_cast<long>(i));
    vfs_.detach(d, it->first);
  }

  Vfs vfs_;
  Rng rng_;
  std::vector<Ino> dirs_;
  int counter_ = 0;
};

class VfsChurn : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VfsChurn, InvariantsSurviveThousandRandomOps) {
  ChurnMachine machine(GetParam());
  for (int i = 0; i < 1000; ++i) {
    machine.step();
    if (i % 100 == 99) machine.verify();
  }
  machine.verify();
}

INSTANTIATE_TEST_SUITE_P(Seeds, VfsChurn,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u));

}  // namespace
}  // namespace ep::os
