#include "os/vfs.hpp"

#include <gtest/gtest.h>

namespace ep::os {
namespace {

class VfsTest : public ::testing::Test {
 protected:
  Vfs vfs;

  Ino mkdir_at(Ino dir, const std::string& name, unsigned mode = 0755,
               Uid uid = kRootUid) {
    auto r = vfs.create_dir(dir, name, uid, uid, mode);
    EXPECT_TRUE(r.ok());
    return r.value();
  }
  Ino mkfile_at(Ino dir, const std::string& name, std::string content = {},
                unsigned mode = 0644, Uid uid = kRootUid) {
    auto r = vfs.create_file(dir, name, uid, uid, mode, std::move(content));
    EXPECT_TRUE(r.ok());
    return r.value();
  }
};

TEST_F(VfsTest, RootExistsAndIsDirectory) {
  EXPECT_TRUE(vfs.exists(vfs.root()));
  EXPECT_TRUE(vfs.inode(vfs.root()).is_dir());
  EXPECT_EQ(vfs.canonical_path(vfs.root()), "/");
}

TEST_F(VfsTest, CreateAndResolveFile) {
  Ino etc = mkdir_at(vfs.root(), "etc");
  Ino pw = mkfile_at(etc, "passwd", "root:x:0:0\n");
  auto r = vfs.resolve("/etc/passwd", "/", kRootUid, kRootGid);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), pw);
  EXPECT_EQ(vfs.canonical_path(pw), "/etc/passwd");
}

TEST_F(VfsTest, ResolveRelativeToCwd) {
  Ino home = mkdir_at(vfs.root(), "home");
  Ino alice = mkdir_at(home, "alice");
  Ino f = mkfile_at(alice, "notes.txt");
  auto r = vfs.resolve("notes.txt", "/home/alice", kRootUid, kRootGid);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), f);
}

TEST_F(VfsTest, ResolveDotDot) {
  Ino home = mkdir_at(vfs.root(), "home");
  mkdir_at(home, "alice");
  Ino f = mkfile_at(home, "shared.txt");
  auto r = vfs.resolve("../shared.txt", "/home/alice", kRootUid, kRootGid);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), f);
}

TEST_F(VfsTest, DotDotAboveRootStaysAtRoot) {
  auto r = vfs.resolve("/../../..", "/", kRootUid, kRootGid);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), vfs.root());
}

TEST_F(VfsTest, MissingComponentIsNoent) {
  auto r = vfs.resolve("/nope/x", "/", kRootUid, kRootGid);
  EXPECT_EQ(r.error(), Err::noent);
}

TEST_F(VfsTest, FileAsDirectoryIsNotdir) {
  Ino etc = mkdir_at(vfs.root(), "etc");
  mkfile_at(etc, "passwd");
  auto r = vfs.resolve("/etc/passwd/sub", "/", kRootUid, kRootGid);
  EXPECT_EQ(r.error(), Err::notdir);
}

TEST_F(VfsTest, SymlinkFollowedByDefault) {
  Ino etc = mkdir_at(vfs.root(), "etc");
  Ino target = mkfile_at(etc, "shadow", "secret");
  auto link = vfs.create_symlink(vfs.root(), "link", kRootUid, kRootGid,
                                 "/etc/shadow");
  ASSERT_TRUE(link.ok());
  auto r = vfs.resolve("/link", "/", kRootUid, kRootGid);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), target);
}

TEST_F(VfsTest, FinalSymlinkNotFollowedWhenAsked) {
  Ino etc = mkdir_at(vfs.root(), "etc");
  mkfile_at(etc, "shadow");
  auto link = vfs.create_symlink(vfs.root(), "link", kRootUid, kRootGid,
                                 "/etc/shadow");
  auto r = vfs.resolve("/link", "/", kRootUid, kRootGid,
                       /*follow_final=*/false);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), link.value());
  EXPECT_TRUE(vfs.inode(r.value()).is_symlink());
}

TEST_F(VfsTest, RelativeSymlinkResolvesAgainstItsDirectory) {
  Ino a = mkdir_at(vfs.root(), "a");
  Ino f = mkfile_at(a, "real.txt");
  auto link = vfs.create_symlink(a, "alias", kRootUid, kRootGid, "real.txt");
  ASSERT_TRUE(link.ok());
  auto r = vfs.resolve("/a/alias", "/", kRootUid, kRootGid);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), f);
}

TEST_F(VfsTest, SymlinkLoopDetected) {
  ASSERT_TRUE(
      vfs.create_symlink(vfs.root(), "l1", kRootUid, kRootGid, "/l2").ok());
  ASSERT_TRUE(
      vfs.create_symlink(vfs.root(), "l2", kRootUid, kRootGid, "/l1").ok());
  auto r = vfs.resolve("/l1", "/", kRootUid, kRootGid);
  EXPECT_EQ(r.error(), Err::loop);
}

TEST_F(VfsTest, SymlinkChainWithinLimitResolves) {
  Ino f = mkfile_at(vfs.root(), "end");
  std::string prev = "/end";
  for (int i = 0; i < kMaxSymlinkDepth - 1; ++i) {
    std::string name = "c" + std::to_string(i);
    ASSERT_TRUE(
        vfs.create_symlink(vfs.root(), name, kRootUid, kRootGid, prev).ok());
    prev = "/" + name;
  }
  auto r = vfs.resolve(prev, "/", kRootUid, kRootGid);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), f);
}

TEST_F(VfsTest, NameTooLongRejected) {
  std::string long_name(kMaxNameLen + 1, 'x');
  auto r = vfs.create_file(vfs.root(), long_name, kRootUid, kRootGid, 0644);
  EXPECT_EQ(r.error(), Err::nametoolong);
  auto res = vfs.resolve("/" + long_name, "/", kRootUid, kRootGid);
  EXPECT_EQ(res.error(), Err::nametoolong);
}

TEST_F(VfsTest, PathTooLongRejected) {
  std::string p = "/" + std::string(kMaxPathLen, 'y');
  auto r = vfs.resolve(p, "/", kRootUid, kRootGid);
  EXPECT_EQ(r.error(), Err::nametoolong);
}

TEST_F(VfsTest, DuplicateNameIsExist) {
  mkfile_at(vfs.root(), "f");
  auto r = vfs.create_file(vfs.root(), "f", kRootUid, kRootGid, 0644);
  EXPECT_EQ(r.error(), Err::exist);
}

TEST_F(VfsTest, RemoveDetachesButKeepsInode) {
  Ino f = mkfile_at(vfs.root(), "f", "data");
  ASSERT_TRUE(vfs.remove(vfs.root(), "f").ok());
  EXPECT_EQ(vfs.resolve("/f", "/", kRootUid, kRootGid).error(), Err::noent);
  // The inode survives for open descriptors (fexecve immunity).
  EXPECT_TRUE(vfs.exists(f));
  EXPECT_EQ(vfs.inode(f).content, "data");
}

TEST_F(VfsTest, RemoveDirOnlyWhenEmpty) {
  Ino d = mkdir_at(vfs.root(), "d");
  mkfile_at(d, "f");
  EXPECT_EQ(vfs.remove_dir(vfs.root(), "d").error(), Err::notempty);
  ASSERT_TRUE(vfs.remove(d, "f").ok());
  EXPECT_TRUE(vfs.remove_dir(vfs.root(), "d").ok());
}

TEST_F(VfsTest, RemoveOnDirectoryIsIsdir) {
  mkdir_at(vfs.root(), "d");
  EXPECT_EQ(vfs.remove(vfs.root(), "d").error(), Err::isdir);
}

TEST_F(VfsTest, RenameMovesAcrossDirectories) {
  Ino a = mkdir_at(vfs.root(), "a");
  Ino b = mkdir_at(vfs.root(), "b");
  Ino f = mkfile_at(a, "f");
  ASSERT_TRUE(vfs.rename_entry(a, "f", b, "g").ok());
  EXPECT_EQ(vfs.canonical_path(f), "/b/g");
  EXPECT_EQ(vfs.resolve("/a/f", "/", kRootUid, kRootGid).error(), Err::noent);
}

TEST_F(VfsTest, RenameReplacesExistingFile) {
  Ino f1 = mkfile_at(vfs.root(), "f1", "one");
  mkfile_at(vfs.root(), "f2", "two");
  ASSERT_TRUE(vfs.rename_entry(vfs.root(), "f1", vfs.root(), "f2").ok());
  auto r = vfs.resolve("/f2", "/", kRootUid, kRootGid);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), f1);
  EXPECT_EQ(vfs.inode(r.value()).content, "one");
}

TEST_F(VfsTest, DetachRemovesWholeSubtree) {
  Ino d = mkdir_at(vfs.root(), "d");
  mkfile_at(d, "f");
  vfs.detach(vfs.root(), "d");
  EXPECT_EQ(vfs.resolve("/d", "/", kRootUid, kRootGid).error(), Err::noent);
  EXPECT_TRUE(vfs.check_invariants().empty()) << vfs.check_invariants();
}

TEST_F(VfsTest, ResolveParentReportsLeaf) {
  Ino etc = mkdir_at(vfs.root(), "etc");
  Ino pw = mkfile_at(etc, "passwd");
  auto rp = vfs.resolve_parent("/etc/passwd", "/", kRootUid, kRootGid);
  ASSERT_TRUE(rp.ok());
  EXPECT_EQ(rp.value().dir_ino, etc);
  EXPECT_EQ(rp.value().leaf, "passwd");
  EXPECT_EQ(rp.value().leaf_ino, pw);
  EXPECT_EQ(rp.value().canonical, "/etc/passwd");
}

TEST_F(VfsTest, ResolveParentOfMissingLeaf) {
  mkdir_at(vfs.root(), "etc");
  auto rp = vfs.resolve_parent("/etc/newfile", "/", kRootUid, kRootGid);
  ASSERT_TRUE(rp.ok());
  EXPECT_EQ(rp.value().leaf_ino, kNoIno);
  EXPECT_EQ(rp.value().canonical, "/etc/newfile");
}

TEST_F(VfsTest, ResolveParentDoesNotFollowFinalSymlink) {
  Ino etc = mkdir_at(vfs.root(), "etc");
  mkfile_at(etc, "shadow");
  auto link = vfs.create_symlink(vfs.root(), "link", kRootUid, kRootGid,
                                 "/etc/shadow");
  auto rp = vfs.resolve_parent("/link", "/", kRootUid, kRootGid);
  ASSERT_TRUE(rp.ok());
  EXPECT_EQ(rp.value().leaf_ino, link.value());
}

TEST_F(VfsTest, ResolveParentFollowsDirSymlinks) {
  Ino etc = mkdir_at(vfs.root(), "etc");
  Ino pw = mkfile_at(etc, "passwd");
  ASSERT_TRUE(
      vfs.create_symlink(vfs.root(), "e", kRootUid, kRootGid, "/etc").ok());
  auto rp = vfs.resolve_parent("/e/passwd", "/", kRootUid, kRootGid);
  ASSERT_TRUE(rp.ok());
  EXPECT_EQ(rp.value().dir_ino, etc);
  EXPECT_EQ(rp.value().leaf_ino, pw);
  EXPECT_EQ(rp.value().canonical, "/etc/passwd");  // canonicalized
}

TEST_F(VfsTest, ListAllPathsSorted) {
  Ino a = mkdir_at(vfs.root(), "a");
  mkfile_at(a, "z");
  mkfile_at(vfs.root(), "b");
  auto all = vfs.list_all_paths();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0], "/a");
  EXPECT_EQ(all[1], "/a/z");
  EXPECT_EQ(all[2], "/b");
}

TEST_F(VfsTest, InvariantsHoldThroughChurn) {
  Ino a = mkdir_at(vfs.root(), "a");
  Ino b = mkdir_at(vfs.root(), "b");
  for (int i = 0; i < 20; ++i)
    mkfile_at(a, "f" + std::to_string(i), "x");
  for (int i = 0; i < 10; ++i)
    ASSERT_TRUE(
        vfs.rename_entry(a, "f" + std::to_string(i), b, "g" + std::to_string(i))
            .ok());
  for (int i = 10; i < 15; ++i)
    ASSERT_TRUE(vfs.remove(a, "f" + std::to_string(i)).ok());
  EXPECT_TRUE(vfs.check_invariants().empty()) << vfs.check_invariants();
}

TEST_F(VfsTest, CanonicalizeFollowsLinks) {
  Ino etc = mkdir_at(vfs.root(), "etc");
  mkfile_at(etc, "shadow");
  ASSERT_TRUE(vfs.create_symlink(vfs.root(), "s", kRootUid, kRootGid,
                                 "/etc/shadow")
                  .ok());
  auto c = vfs.canonicalize("/s", "/", kRootUid, kRootGid);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c.value(), "/etc/shadow");
}

TEST_F(VfsTest, StatInode) {
  Ino f = mkfile_at(vfs.root(), "f", "12345", 0640);
  auto st = vfs.stat_inode(f);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st.value().size, 5u);
  EXPECT_EQ(st.value().mode, 0640u);
  EXPECT_EQ(st.value().type, FileType::regular);
  EXPECT_TRUE(st.value().trusted);
}

}  // namespace
}  // namespace ep::os
