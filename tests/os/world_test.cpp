#include "os/world.hpp"

#include <gtest/gtest.h>

namespace ep::os::world {
namespace {

TEST(World, MkdirsCreatesChain) {
  Kernel k;
  Ino d = mkdirs(k, "/a/b/c");
  EXPECT_EQ(k.vfs().canonical_path(d), "/a/b/c");
  EXPECT_TRUE(k.vfs().check_invariants().empty());
}

TEST(World, MkdirsIdempotent) {
  Kernel k;
  Ino d1 = mkdirs(k, "/a/b");
  Ino d2 = mkdirs(k, "/a/b");
  EXPECT_EQ(d1, d2);
}

TEST(World, MkdirsThroughFileThrows) {
  Kernel k;
  put_file(k, "/a", "file");
  EXPECT_THROW(mkdirs(k, "/a/b"), std::logic_error);
}

TEST(World, PutFileCreatesParentsAndOverwrites) {
  Kernel k;
  Ino f = put_file(k, "/x/y/file.txt", "one", 1000, 1000, 0640);
  EXPECT_EQ(k.vfs().inode(f).content, "one");
  EXPECT_EQ(k.vfs().inode(f).uid, 1000);
  Ino f2 = put_file(k, "/x/y/file.txt", "two");
  EXPECT_EQ(f, f2);
  EXPECT_EQ(k.vfs().inode(f2).content, "two");
}

TEST(World, PutProgramRegistersImageName) {
  Kernel k;
  Ino p = put_program(k, "/bin/tool", "tool-image", kRootUid, kRootGid,
                      0755 | kSetUidBit);
  EXPECT_EQ(k.vfs().inode(p).image, "tool-image");
  EXPECT_TRUE(k.vfs().inode(p).setuid());
}

TEST(World, PutSymlinkReplacesExisting) {
  Kernel k;
  put_file(k, "/etc/target", "x");
  put_symlink(k, "/etc/alias", "/etc/target");
  put_symlink(k, "/etc/alias", "/etc/other");
  auto r = k.vfs().resolve("/etc/alias", "/", kRootUid, kRootGid,
                           /*follow_final=*/false);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(k.vfs().inode(r.value()).content, "/etc/other");
}

TEST(World, ForceRemoveQuietOnMissing) {
  Kernel k;
  force_remove(k, "/no/such/file");  // must not throw
  put_file(k, "/a/f", "x");
  force_remove(k, "/a/f");
  EXPECT_EQ(k.vfs().resolve("/a/f", "/", kRootUid, kRootGid).error(),
            Err::noent);
}

TEST(World, StandardUnixLayout) {
  Kernel k;
  standard_unix(k);
  for (const char* p : {"/etc", "/bin", "/usr/bin", "/tmp", "/home", "/var"}) {
    auto r = k.vfs().resolve(p, "/", kRootUid, kRootGid);
    EXPECT_TRUE(r.ok()) << p;
  }
  EXPECT_EQ(k.peek("/etc/shadow").value(), kShadowContent);
  // /tmp is world-writable; /etc/shadow is root-only.
  EXPECT_TRUE(k.uid_can(999, 999, "/tmp", Perm::write));
  EXPECT_FALSE(k.uid_can(999, 999, "/etc/shadow", Perm::read));
}

}  // namespace
}  // namespace ep::os::world
