// Permission-predicate tests, including the parameterized sweep over the
// full owner/group/other x read/write/exec matrix.
#include <gtest/gtest.h>

#include "os/vfs.hpp"

namespace ep::os {
namespace {

Inode make_node(Uid uid, Gid gid, unsigned mode) {
  Inode n;
  n.uid = uid;
  n.gid = gid;
  n.mode = mode;
  return n;
}

TEST(Permits, OwnerClassSelectedFirst) {
  // Owner bits deny even if "other" bits would allow — UNIX classic.
  Inode n = make_node(100, 100, 0007);
  EXPECT_FALSE(Vfs::permits(n, 100, 999, Perm::read));
  EXPECT_TRUE(Vfs::permits(n, 200, 999, Perm::read));
}

TEST(Permits, GroupClassBeforeOther) {
  Inode n = make_node(100, 50, 0070);
  EXPECT_TRUE(Vfs::permits(n, 200, 50, Perm::read));
  EXPECT_FALSE(Vfs::permits(n, 200, 51, Perm::read));
}

TEST(PermitsWithRoot, RootBypassesReadWrite) {
  Inode n = make_node(100, 100, 0000);
  EXPECT_TRUE(Vfs::permits_with_root(n, kRootUid, kRootGid, Perm::read));
  EXPECT_TRUE(Vfs::permits_with_root(n, kRootUid, kRootGid, Perm::write));
}

TEST(PermitsWithRoot, RootExecNeedsSomeXBit) {
  Inode no_x = make_node(100, 100, 0644);
  Inode some_x = make_node(100, 100, 0100);
  EXPECT_FALSE(Vfs::permits_with_root(no_x, kRootUid, kRootGid, Perm::exec));
  EXPECT_TRUE(Vfs::permits_with_root(some_x, kRootUid, kRootGid, Perm::exec));
}

// ---- Parameterized sweep ----------------------------------------------------

struct PermCase {
  unsigned mode;
  int who;  // 0=owner, 1=group, 2=other
  Perm perm;
  bool expect;
};

class PermMatrix : public ::testing::TestWithParam<PermCase> {};

TEST_P(PermMatrix, MatchesUnixSemantics) {
  const PermCase& c = GetParam();
  Inode n = make_node(100, 50, c.mode);
  Uid uid = c.who == 0 ? 100 : 200;
  Gid gid = c.who == 1 ? 50 : 999;
  EXPECT_EQ(Vfs::permits(n, uid, gid, c.perm), c.expect)
      << "mode " << std::oct << c.mode << " who " << c.who;
}

std::vector<PermCase> perm_matrix() {
  std::vector<PermCase> cases;
  // For every single permission bit, exactly the right (who, perm) pair
  // passes and the other eight fail.
  struct Bit {
    unsigned mode;
    int who;
    Perm perm;
  };
  const Bit bits[] = {
      {0400, 0, Perm::read},  {0200, 0, Perm::write}, {0100, 0, Perm::exec},
      {0040, 1, Perm::read},  {0020, 1, Perm::write}, {0010, 1, Perm::exec},
      {0004, 2, Perm::read},  {0002, 2, Perm::write}, {0001, 2, Perm::exec},
  };
  for (const Bit& set : bits) {
    for (int who = 0; who < 3; ++who) {
      for (Perm p : {Perm::read, Perm::write, Perm::exec}) {
        bool expect = who == set.who && p == set.perm;
        cases.push_back({set.mode, who, p, expect});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllBits, PermMatrix,
                         ::testing::ValuesIn(perm_matrix()));

// Monotonicity property: adding permission bits never revokes access.
class PermMonotonic : public ::testing::TestWithParam<unsigned> {};

TEST_P(PermMonotonic, AddingBitsNeverRevokes) {
  unsigned base = GetParam();
  for (unsigned extra_bit = 1; extra_bit <= 0400; extra_bit <<= 1) {
    unsigned wider = base | extra_bit;
    for (int who = 0; who < 3; ++who) {
      Uid uid = who == 0 ? 100 : 200;
      Gid gid = who == 1 ? 50 : 999;
      for (Perm p : {Perm::read, Perm::write, Perm::exec}) {
        Inode a = make_node(100, 50, base);
        Inode b = make_node(100, 50, wider);
        if (Vfs::permits(a, uid, gid, p)) {
          EXPECT_TRUE(Vfs::permits(b, uid, gid, p))
              << std::oct << base << " -> " << wider;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, PermMonotonic,
                         ::testing::Values(0000u, 0400u, 0044u, 0640u, 0755u,
                                           0600u, 0222u, 0111u));

}  // namespace
}  // namespace ep::os
