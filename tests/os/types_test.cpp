#include "os/types.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "os/process.hpp"

namespace ep::os {
namespace {

TEST(Site, EqualityAndOrdering) {
  Site a{"f.c", 1, "x"};
  Site b{"f.c", 1, "x"};
  Site c{"f.c", 2, "x"};
  Site d{"g.c", 1, "x"};
  Site e{"f.c", 1, "y"};
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(a == d);
  EXPECT_FALSE(a == e);
  EXPECT_TRUE(a < c);
  EXPECT_TRUE(a < d);
  EXPECT_TRUE(a < e);
}

TEST(Site, StrFormatsLocation) {
  Site s{"turnin.c", 131, "fopen-projlist"};
  EXPECT_EQ(s.str(), "turnin.c:131 [fopen-projlist]");
}

TEST(Site, HashDistinguishes) {
  std::unordered_set<Site> set;
  set.insert(Site{"f.c", 1, "x"});
  set.insert(Site{"f.c", 1, "x"});  // duplicate
  set.insert(Site{"f.c", 2, "x"});
  set.insert(Site{"g.c", 1, "x"});
  EXPECT_EQ(set.size(), 3u);
}

TEST(OpenFlags, HasAndOr) {
  OpenFlags f = OpenFlag::rd | OpenFlag::nofollow;
  EXPECT_TRUE(f.has(OpenFlag::rd));
  EXPECT_TRUE(f.has(OpenFlag::nofollow));
  EXPECT_FALSE(f.has(OpenFlag::wr));
  OpenFlags g = f | OpenFlag::creat;
  EXPECT_TRUE(g.has(OpenFlag::creat));
  EXPECT_TRUE(g.has(OpenFlag::rd));  // original bits preserved
}

TEST(OpenFlags, SingleFlagImplicitConversion) {
  OpenFlags f = OpenFlag::wr;
  EXPECT_TRUE(f.has(OpenFlag::wr));
  EXPECT_FALSE(f.has(OpenFlag::rd));
}

TEST(Process, PrivilegedMeansEuidGap) {
  Process p;
  p.ruid = 1000;
  p.euid = 0;
  EXPECT_TRUE(p.privileged());
  p.euid = 1000;
  EXPECT_FALSE(p.privileged());
  p.ruid = 0;
  p.euid = 0;
  EXPECT_FALSE(p.privileged());  // root running root: no gap
}

TEST(PermissionBits, OctalValues) {
  EXPECT_EQ(kSetUidBit, 04000u);
  EXPECT_EQ(kStickyBit, 01000u);
  EXPECT_EQ(kOwnerRead | kOwnerWrite | kOwnerExec, 0700u);
  EXPECT_EQ(kPermMask, 0777u);
}

}  // namespace
}  // namespace ep::os
