#include "os/path.hpp"

#include <gtest/gtest.h>

namespace ep::os::path {
namespace {

TEST(PathNormalize, CollapsesSlashesAndDots) {
  EXPECT_EQ(normalize("/a//b/./c"), "/a/b/c");
  EXPECT_EQ(normalize("//"), "/");
  EXPECT_EQ(normalize("/."), "/");
}

TEST(PathNormalize, DotDotAgainstComponents) {
  EXPECT_EQ(normalize("/a/b/../c"), "/a/c");
  EXPECT_EQ(normalize("/a/../../b"), "/b");  // .. at root dropped
  EXPECT_EQ(normalize("/.."), "/");
}

TEST(PathNormalize, RelativeKeepsLeadingDotDot) {
  EXPECT_EQ(normalize("a/../b"), "b");
  EXPECT_EQ(normalize("../a"), "../a");
  EXPECT_EQ(normalize("../../a/.."), "../..");
  EXPECT_EQ(normalize("a/.."), ".");
}

TEST(PathNormalize, Idempotent) {
  const char* cases[] = {"/a/b/../c", "a/./b", "../x/../y", "/", ".", "a//b"};
  for (const char* c : cases) {
    std::string once = normalize(c);
    EXPECT_EQ(normalize(once), once) << c;
  }
}

TEST(PathJoin, RelativeAndAbsolute) {
  EXPECT_EQ(join("/a", "b"), "/a/b");
  EXPECT_EQ(join("/a/", "b"), "/a/b");
  EXPECT_EQ(join("/a", "/b"), "/b");  // absolute rhs wins
  EXPECT_EQ(join("", "b"), "b");
  EXPECT_EQ(join("/a", ""), "/a");
}

TEST(PathAbsolutize, AgainstCwd) {
  EXPECT_EQ(absolutize("x", "/home/alice"), "/home/alice/x");
  EXPECT_EQ(absolutize("../x", "/home/alice"), "/home/x");
  EXPECT_EQ(absolutize("/x", "/home/alice"), "/x");
}

TEST(PathBasenameDirname, Pairs) {
  EXPECT_EQ(basename("/a/b"), "b");
  EXPECT_EQ(dirname("/a/b"), "/a");
  EXPECT_EQ(basename("/a"), "a");
  EXPECT_EQ(dirname("/a"), "/");
  EXPECT_EQ(basename("/"), "/");
  EXPECT_EQ(dirname("/"), "/");
  EXPECT_EQ(basename("b"), "b");
  EXPECT_EQ(dirname("b"), ".");
}

TEST(PathIsUnder, PrefixSemantics) {
  EXPECT_TRUE(is_under("/a/b/c", "/a/b"));
  EXPECT_TRUE(is_under("/a/b", "/a/b"));
  EXPECT_FALSE(is_under("/a/bc", "/a/b"));  // not a component boundary
  EXPECT_FALSE(is_under("/a", "/a/b"));
  EXPECT_TRUE(is_under("/anything", "/"));
}

TEST(PathComponents, DropsEmpty) {
  auto c = components("//a///b/");
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c[0], "a");
  EXPECT_EQ(c[1], "b");
}

TEST(PathIsAbsolute, Basics) {
  EXPECT_TRUE(is_absolute("/x"));
  EXPECT_FALSE(is_absolute("x"));
  EXPECT_FALSE(is_absolute(""));
}

}  // namespace
}  // namespace ep::os::path
