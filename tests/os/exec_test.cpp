// exec/spawn semantics: set-uid, $PATH search, fd-pinned exec, crashes.
#include <gtest/gtest.h>

#include "os/kernel.hpp"
#include "os/world.hpp"

namespace ep::os {
namespace {

const Site kS{"exec_test.c", 1, "exec-site"};

class ExecTest : public ::testing::Test {
 protected:
  ExecTest() {
    world::standard_unix(k);
    k.add_user(1000, "alice", 1000);
    k.add_user(666, "mallory", 666);
    k.register_image("whoami", [](Kernel& kk, Pid p) {
      kk.output(Site{"whoami.c", 1, "say"}, p,
                "euid=" + std::to_string(kk.proc(p).euid) +
                    " ruid=" + std::to_string(kk.proc(p).ruid));
      return 0;
    });
    k.register_image("fail7", [](Kernel&, Pid) { return 7; });
    k.register_image("crasher", [](Kernel&, Pid) -> int {
      throw AppCrash{139, "simulated wild pointer"};
    });
  }
  Kernel k;
};

TEST_F(ExecTest, SpawnRunsImageAndReturnsExit) {
  world::put_program(k, "/bin/fail7", "fail7");
  auto r = k.spawn("/bin/fail7", {"fail7"}, 1000, 1000);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 7);
}

TEST_F(ExecTest, SetuidBitRaisesEffectiveUid) {
  world::put_program(k, "/bin/whoami", "whoami", kRootUid, kRootGid,
                     0755 | kSetUidBit);
  ASSERT_TRUE(k.spawn("/bin/whoami", {"whoami"}, 1000, 1000).ok());
  EXPECT_NE(k.console().find("euid=0 ruid=1000"), std::string::npos);
}

TEST_F(ExecTest, NoSetuidBitKeepsInvokerUid) {
  world::put_program(k, "/bin/whoami", "whoami", kRootUid, kRootGid, 0755);
  ASSERT_TRUE(k.spawn("/bin/whoami", {"whoami"}, 1000, 1000).ok());
  EXPECT_NE(k.console().find("euid=1000 ruid=1000"), std::string::npos);
}

TEST_F(ExecTest, SpawnNeedsExecPermission) {
  world::put_program(k, "/bin/whoami", "whoami", kRootUid, kRootGid, 0700);
  EXPECT_EQ(k.spawn("/bin/whoami", {"x"}, 1000, 1000).error(), Err::acces);
}

TEST_F(ExecTest, SpawnOfPlainFileIsNoexec) {
  world::put_file(k, "/bin/data", "not a program", kRootUid, kRootGid, 0755);
  EXPECT_EQ(k.spawn("/bin/data", {"x"}, 1000, 1000).error(), Err::noexec);
}

TEST_F(ExecTest, ExecSearchesPath) {
  world::put_program(k, "/usr/bin/whoami", "whoami");
  Pid p = k.make_process(1000, 1000, "/");
  k.proc(p).env["PATH"] = "/bin:/usr/bin";
  auto r = k.exec(kS, p, "whoami", {"whoami"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 0);
}

TEST_F(ExecTest, ExecPathOrderMatters) {
  // Same name in two dirs; the earlier PATH entry wins.
  k.register_image("first", [](Kernel& kk, Pid p) {
    kk.output(Site{"first.c", 1, "say"}, p, "FIRST");
    return 0;
  });
  k.register_image("second", [](Kernel& kk, Pid p) {
    kk.output(Site{"second.c", 1, "say"}, p, "SECOND");
    return 0;
  });
  world::mkdirs(k, "/opt/a");
  world::mkdirs(k, "/opt/b");
  world::put_program(k, "/opt/a/tool", "first");
  world::put_program(k, "/opt/b/tool", "second");
  Pid p = k.make_process(1000, 1000, "/");
  k.proc(p).env["PATH"] = "/opt/b:/opt/a";
  ASSERT_TRUE(k.exec(kS, p, "tool", {"tool"}).ok());
  EXPECT_NE(k.console().find("SECOND"), std::string::npos);
}

TEST_F(ExecTest, ExecAbsolutePathSkipsSearch) {
  world::put_program(k, "/bin/whoami", "whoami");
  Pid p = k.make_process(1000, 1000, "/");
  k.proc(p).env["PATH"] = "/nonexistent";
  EXPECT_TRUE(k.exec(kS, p, "/bin/whoami", {"whoami"}).ok());
}

TEST_F(ExecTest, ExecMissingCommandIsNoent) {
  Pid p = k.make_process(1000, 1000, "/");
  EXPECT_EQ(k.exec(kS, p, "ghost", {"ghost"}).error(), Err::noent);
}

TEST_F(ExecTest, ChildInheritsRealUidAndEnv) {
  world::put_program(k, "/bin/whoami", "whoami", kRootUid, kRootGid,
                     0755 | kSetUidBit);
  Pid p = k.make_process(1000, 1000, "/home");
  k.proc(p).env["PATH"] = "/bin";
  k.proc(p).env["MARK"] = "42";
  ASSERT_TRUE(k.exec(kS, p, "whoami", {"whoami"}).ok());
  // Child ran with ruid 1000 even though euid became 0.
  EXPECT_NE(k.console().find("euid=0 ruid=1000"), std::string::npos);
}

TEST_F(ExecTest, FexecRunsPinnedInodeAfterUnlink) {
  world::put_program(k, "/bin/whoami", "whoami");
  Pid p = k.make_process(kRootUid, kRootGid, "/");
  auto fd = k.open(kS, p, "/bin/whoami", OpenFlag::rd);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(k.unlink(kS, p, "/bin/whoami").ok());
  auto r = k.fexec(kS, p, fd.value(), {"whoami"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 0);
}

TEST_F(ExecTest, FexecImmuneToPathSwap) {
  world::put_program(k, "/bin/tool", "whoami");
  k.register_image("impostor", [](Kernel& kk, Pid p) {
    kk.output(Site{"impostor.c", 1, "say"}, p, "IMPOSTOR");
    return 0;
  });
  Pid p = k.make_process(kRootUid, kRootGid, "/");
  auto fd = k.open(kS, p, "/bin/tool", OpenFlag::rd);
  ASSERT_TRUE(fd.ok());
  // Swap the path out from under the program.
  ASSERT_TRUE(k.unlink(kS, p, "/bin/tool").ok());
  world::put_program(k, "/bin/tool", "impostor");
  ASSERT_TRUE(k.fexec(kS, p, fd.value(), {"tool"}).ok());
  EXPECT_EQ(k.console().find("IMPOSTOR"), std::string::npos);
  EXPECT_NE(k.console().find("euid=0"), std::string::npos);
}

TEST_F(ExecTest, CrashingImageReportsCrashAndExitCode) {
  world::put_program(k, "/bin/crasher", "crasher");
  auto r = k.spawn("/bin/crasher", {"crasher"}, 1000, 1000);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 139);
  // Find the crashed child process.
  bool found = false;
  for (Pid pid = 1; pid < 10; ++pid)
    if (k.has_proc(pid) && k.proc(pid).crashed) found = true;
  EXPECT_TRUE(found);
}

TEST_F(ExecTest, NestedExecDepthBounded) {
  // A program that execs itself recurses until the kernel stops it.
  k.register_image("forkbomb", [](Kernel& kk, Pid p) {
    auto r = kk.exec(Site{"forkbomb.c", 1, "again"}, p, "/bin/forkbomb",
                     {"forkbomb"});
    return r.ok() ? r.value() : 99;
  });
  world::put_program(k, "/bin/forkbomb", "forkbomb");
  auto r = k.spawn("/bin/forkbomb", {"forkbomb"}, 1000, 1000);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 99);  // the innermost exec refused
}

TEST_F(ExecTest, ExecEventVisibleToHooks) {
  world::put_program(k, "/bin/whoami", "whoami");
  struct SeeExec : Interposer {
    std::string canonical;
    void after(Kernel&, SyscallCtx& ctx, Err e) override {
      if (ctx.call == "exec" && e == Err::ok) canonical = ctx.canonical;
    }
  };
  auto hook = std::make_shared<SeeExec>();
  k.add_interposer(hook);
  Pid p = k.make_process(1000, 1000, "/");
  ASSERT_TRUE(k.exec(kS, p, "whoami", {"whoami"}).ok());
  EXPECT_EQ(hook->canonical, "/bin/whoami");
}

}  // namespace
}  // namespace ep::os
