#include "os/kernel.hpp"

#include <gtest/gtest.h>

#include "os/world.hpp"

namespace ep::os {
namespace {

const Site kS{"test.c", 1, "test-site"};

class KernelTest : public ::testing::Test {
 protected:
  KernelTest() {
    world::standard_unix(k);
    k.add_user(1000, "alice", 1000);
    k.add_user(666, "mallory", 666);
    alice = k.make_process(1000, 1000, "/home/alice");
    world::mkdirs(k, "/home/alice", 1000, 1000, 0755);
    root = k.make_process(kRootUid, kRootGid, "/");
  }
  Kernel k;
  Pid alice = -1;
  Pid root = -1;
};

TEST_F(KernelTest, OpenCreateWriteReadRoundTrip) {
  auto fd = k.open(kS, alice, "/home/alice/f.txt",
                   OpenFlag::wr | OpenFlag::creat, 0644);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(k.write(kS, alice, fd.value(), "hello").ok());
  ASSERT_TRUE(k.close(alice, fd.value()).ok());

  auto rfd = k.open(kS, alice, "/home/alice/f.txt", OpenFlag::rd);
  ASSERT_TRUE(rfd.ok());
  auto data = k.read(kS, alice, rfd.value());
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), "hello");
}

TEST_F(KernelTest, OpenHonorsUmask) {
  k.proc(alice).umask = 027;
  auto fd = k.open(kS, alice, "/home/alice/masked",
                   OpenFlag::wr | OpenFlag::creat, 0666);
  ASSERT_TRUE(fd.ok());
  auto st = k.fstat(alice, fd.value());
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st.value().mode, 0640u);
}

TEST_F(KernelTest, OpenMissingWithoutCreatIsNoent) {
  auto fd = k.open(kS, alice, "/home/alice/absent", OpenFlag::rd);
  EXPECT_EQ(fd.error(), Err::noent);
}

TEST_F(KernelTest, OpenExclRefusesExisting) {
  world::put_file(k, "/home/alice/f", "x", 1000, 1000, 0644);
  auto fd = k.open(kS, alice, "/home/alice/f",
                   OpenFlag::wr | OpenFlag::creat | OpenFlag::excl);
  EXPECT_EQ(fd.error(), Err::exist);
}

TEST_F(KernelTest, OpenExclRefusesSymlinkEvenDangling) {
  world::put_symlink(k, "/home/alice/link", "/home/alice/nowhere", 1000, 1000);
  auto fd = k.open(kS, alice, "/home/alice/link",
                   OpenFlag::wr | OpenFlag::creat | OpenFlag::excl);
  EXPECT_EQ(fd.error(), Err::exist);
}

TEST_F(KernelTest, OpenNofollowRefusesSymlink) {
  world::put_file(k, "/home/alice/real", "x", 1000, 1000, 0644);
  world::put_symlink(k, "/home/alice/link", "/home/alice/real", 1000, 1000);
  auto fd =
      k.open(kS, alice, "/home/alice/link", OpenFlag::rd | OpenFlag::nofollow);
  EXPECT_EQ(fd.error(), Err::loop);
}

TEST_F(KernelTest, OpenCreatThroughDanglingSymlinkCreatesTarget) {
  // The classic spool attack shape: creating "through" a planted link.
  world::put_symlink(k, "/tmp/t", "/tmp/target-file", 666, 666);
  auto fd = k.open(kS, root, "/tmp/t", OpenFlag::wr | OpenFlag::creat, 0600);
  ASSERT_TRUE(fd.ok());
  auto st = k.stat(kS, root, "/tmp/target-file");
  ASSERT_TRUE(st.ok());
}

TEST_F(KernelTest, OpenTruncClearsContent) {
  world::put_file(k, "/home/alice/f", "old-content", 1000, 1000, 0644);
  auto fd = k.open(kS, alice, "/home/alice/f",
                   OpenFlag::wr | OpenFlag::trunc);
  ASSERT_TRUE(fd.ok());
  auto st = k.fstat(alice, fd.value());
  EXPECT_EQ(st.value().size, 0u);
}

TEST_F(KernelTest, WriteDeniedWithoutWritePermission) {
  world::put_file(k, "/etc/conf", "x", kRootUid, kRootGid, 0644);
  auto fd = k.open(kS, alice, "/etc/conf", OpenFlag::wr);
  EXPECT_EQ(fd.error(), Err::acces);
}

TEST_F(KernelTest, RootBypassesFilePermissions) {
  world::put_file(k, "/etc/secret", "x", kRootUid, kRootGid, 0600);
  auto fd = k.open(kS, root, "/etc/secret", OpenFlag::rd | OpenFlag::wr);
  EXPECT_TRUE(fd.ok());
}

TEST_F(KernelTest, ReadLineSplitsOnNewlines) {
  world::put_file(k, "/home/alice/cfg", "one\ntwo\nthree", 1000, 1000, 0644);
  auto fd = k.open(kS, alice, "/home/alice/cfg", OpenFlag::rd);
  ASSERT_TRUE(fd.ok());
  EXPECT_EQ(k.read_line(kS, alice, fd.value()).value(), "one");
  EXPECT_EQ(k.read_line(kS, alice, fd.value()).value(), "two");
  EXPECT_EQ(k.read_line(kS, alice, fd.value()).value(), "three");
  EXPECT_EQ(k.read_line(kS, alice, fd.value()).error(), Err::io);  // EOF
}

TEST_F(KernelTest, AppendSeeksToEnd) {
  world::put_file(k, "/home/alice/log", "a", 1000, 1000, 0644);
  auto fd = k.open(kS, alice, "/home/alice/log",
                   OpenFlag::wr | OpenFlag::append);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(k.write(kS, alice, fd.value(), "b").ok());
  EXPECT_EQ(k.peek("/home/alice/log").value(), "ab");
}

TEST_F(KernelTest, BadFdErrors) {
  EXPECT_EQ(k.read(kS, alice, 99).error(), Err::badf);
  EXPECT_EQ(k.write(kS, alice, 99, "x").error(), Err::badf);
  EXPECT_EQ(k.close(alice, 99).error(), Err::badf);
  EXPECT_EQ(k.fstat(alice, 99).error(), Err::badf);
}

TEST_F(KernelTest, ReadOnWriteOnlyFdIsBadf) {
  auto fd = k.open(kS, alice, "/home/alice/w",
                   OpenFlag::wr | OpenFlag::creat);
  ASSERT_TRUE(fd.ok());
  EXPECT_EQ(k.read(kS, alice, fd.value()).error(), Err::badf);
}

TEST_F(KernelTest, StatFollowsLstatDoesNot) {
  world::put_file(k, "/etc/real", "data", kRootUid, kRootGid, 0644);
  world::put_symlink(k, "/etc/alias", "/etc/real");
  auto st = k.stat(kS, alice, "/etc/alias");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st.value().type, FileType::regular);
  auto lst = k.lstat(kS, alice, "/etc/alias");
  ASSERT_TRUE(lst.ok());
  EXPECT_EQ(lst.value().type, FileType::symlink);
}

TEST_F(KernelTest, AccessChecksRealUid) {
  world::put_file(k, "/etc/secret", "x", kRootUid, kRootGid, 0600);
  // Process with alice's real uid but root effective uid (set-uid model).
  Pid suid = k.make_process(1000, 1000, "/");
  k.proc(suid).euid = kRootUid;
  // euid root could read it, but access() answers for the real uid.
  EXPECT_EQ(k.access(kS, suid, "/etc/secret", Perm::read).error(),
            Err::acces);
  EXPECT_TRUE(k.open(kS, suid, "/etc/secret", OpenFlag::rd).ok());
}

TEST_F(KernelTest, UnlinkRequiresParentWrite) {
  world::put_file(k, "/etc/conf", "x", kRootUid, kRootGid, 0666);
  // alice can write the file but not the directory -> unlink denied.
  EXPECT_EQ(k.unlink(kS, alice, "/etc/conf").error(), Err::acces);
  EXPECT_TRUE(k.unlink(kS, root, "/etc/conf").ok());
}

TEST_F(KernelTest, MkdirRmdir) {
  ASSERT_TRUE(k.mkdir(kS, alice, "/home/alice/sub", 0755).ok());
  auto st = k.stat(kS, alice, "/home/alice/sub");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st.value().type, FileType::directory);
  EXPECT_TRUE(k.rmdir(kS, alice, "/home/alice/sub").ok());
  EXPECT_EQ(k.stat(kS, alice, "/home/alice/sub").error(), Err::noent);
}

TEST_F(KernelTest, RenameWithinDirectory) {
  world::put_file(k, "/home/alice/a", "1", 1000, 1000, 0644);
  ASSERT_TRUE(k.rename(kS, alice, "/home/alice/a", "/home/alice/b").ok());
  EXPECT_EQ(k.peek("/home/alice/b").value(), "1");
  EXPECT_EQ(k.stat(kS, alice, "/home/alice/a").error(), Err::noent);
}

TEST_F(KernelTest, SymlinkAndReadlink) {
  ASSERT_TRUE(k.symlink(kS, alice, "/etc/passwd", "/home/alice/pw").ok());
  auto t = k.readlink(kS, alice, "/home/alice/pw");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.value(), "/etc/passwd");
  EXPECT_EQ(k.readlink(kS, alice, "/etc/passwd").error(), Err::inval);
}

TEST_F(KernelTest, ChmodOnlyOwnerOrRoot) {
  world::put_file(k, "/home/alice/f", "x", 1000, 1000, 0644);
  ASSERT_TRUE(k.chmod(kS, alice, "/home/alice/f", 0600).ok());
  world::put_file(k, "/etc/rootfile", "x", kRootUid, kRootGid, 0644);
  EXPECT_EQ(k.chmod(kS, alice, "/etc/rootfile", 0666).error(), Err::perm);
  EXPECT_TRUE(k.chmod(kS, root, "/etc/rootfile", 0666).ok());
}

TEST_F(KernelTest, ChownRootOnly) {
  world::put_file(k, "/home/alice/f", "x", 1000, 1000, 0644);
  EXPECT_EQ(k.chown(kS, alice, "/home/alice/f", 666, 666).error(), Err::perm);
  ASSERT_TRUE(k.chown(kS, root, "/home/alice/f", 666, 666).ok());
  auto st = k.stat(kS, root, "/home/alice/f");
  EXPECT_EQ(st.value().uid, 666);
}

TEST_F(KernelTest, ChdirUpdatesCwdCanonically) {
  world::mkdirs(k, "/home/alice/deep/dir");
  ASSERT_TRUE(k.chdir(kS, alice, "deep/./dir/..").ok());
  EXPECT_EQ(k.getcwd(alice), "/home/alice/deep");
}

TEST_F(KernelTest, ChdirToFileIsNotdir) {
  world::put_file(k, "/home/alice/f", "x", 1000, 1000, 0644);
  EXPECT_EQ(k.chdir(kS, alice, "/home/alice/f").error(), Err::notdir);
}

TEST_F(KernelTest, ReaddirListsSorted) {
  world::put_file(k, "/home/alice/b", "", 1000, 1000, 0644);
  world::put_file(k, "/home/alice/a", "", 1000, 1000, 0644);
  auto names = k.readdir(kS, alice, "/home/alice");
  ASSERT_TRUE(names.ok());
  ASSERT_EQ(names.value().size(), 2u);
  EXPECT_EQ(names.value()[0], "a");
  EXPECT_EQ(names.value()[1], "b");
}

TEST_F(KernelTest, GetenvPresentAndAbsent) {
  k.proc(alice).env["PATH"] = "/bin";
  EXPECT_EQ(k.getenv(kS, alice, "PATH").value(), "/bin");
  EXPECT_EQ(k.getenv(kS, alice, "NOPE").error(), Err::noent);
}

TEST_F(KernelTest, ArgAccess) {
  k.proc(alice).args = {"prog", "one"};
  EXPECT_EQ(k.arg(kS, alice, 1), "one");
  EXPECT_EQ(k.arg(kS, alice, 5), "");
  EXPECT_EQ(k.argc(alice), 2u);
}

TEST_F(KernelTest, OutputAccumulates) {
  k.output(kS, alice, "line1");
  k.output(kS, alice, "line2");
  EXPECT_EQ(k.proc(alice).stdout_text, "line1\nline2\n");
}

TEST_F(KernelTest, UidCanReflectsPermissions) {
  world::put_file(k, "/etc/secret", "x", kRootUid, kRootGid, 0600);
  EXPECT_FALSE(k.uid_can(1000, 1000, "/etc/secret", Perm::read));
  EXPECT_TRUE(k.uid_can(kRootUid, kRootGid, "/etc/secret", Perm::read));
  EXPECT_FALSE(k.uid_can(1000, 1000, "/absent", Perm::read));
}

TEST_F(KernelTest, UnknownPidThrows) {
  EXPECT_THROW((void)k.proc(4242), std::logic_error);
}

TEST_F(KernelTest, StickyDirRestrictsDeletion) {
  // A sticky shared directory: alice's file cannot be unlinked or renamed
  // by another non-owner user, even though the directory is writable.
  ASSERT_TRUE(k.chmod(kS, root, "/tmp", 0777 | kStickyBit).ok());
  world::put_file(k, "/tmp/alice-file", "hers", 1000, 1000, 0644);
  Pid mallory = k.make_process(666, 666, "/tmp");
  EXPECT_EQ(k.unlink(kS, mallory, "/tmp/alice-file").error(), Err::perm);
  EXPECT_EQ(k.rename(kS, mallory, "/tmp/alice-file", "/tmp/stolen").error(),
            Err::perm);
  // The owner, the directory owner (root), and root itself still may.
  EXPECT_TRUE(k.unlink(kS, alice, "/tmp/alice-file").ok());
}

TEST_F(KernelTest, StickyDirStillAllowsNewEntries) {
  ASSERT_TRUE(k.chmod(kS, root, "/tmp", 0777 | kStickyBit).ok());
  Pid mallory = k.make_process(666, 666, "/tmp");
  auto fd = k.open(kS, mallory, "/tmp/mine",
                   OpenFlag::wr | OpenFlag::creat, 0644);
  EXPECT_TRUE(fd.ok());
  // And their own entries can be removed.
  EXPECT_TRUE(k.unlink(kS, mallory, "/tmp/mine").ok());
}

TEST_F(KernelTest, StickyRenameRefusesOverwritingForeignTarget) {
  ASSERT_TRUE(k.chmod(kS, root, "/tmp", 0777 | kStickyBit).ok());
  world::put_file(k, "/tmp/victim", "hers", 1000, 1000, 0666);
  Pid mallory = k.make_process(666, 666, "/tmp");
  world::put_file(k, "/tmp/mine", "x", 666, 666, 0644);
  EXPECT_EQ(k.rename(kS, mallory, "/tmp/mine", "/tmp/victim").error(),
            Err::perm);
}

TEST_F(KernelTest, NonStickyWritableDirAllowsForeignDeletion) {
  // The contrast case — and the reason the classic /tmp attacks worked.
  world::put_file(k, "/tmp/alice-file", "hers", 1000, 1000, 0644);
  Pid mallory = k.make_process(666, 666, "/tmp");
  EXPECT_TRUE(k.unlink(kS, mallory, "/tmp/alice-file").ok());
}

TEST_F(KernelTest, HookSeesForcedFailure) {
  struct Deny : Interposer {
    void before(Kernel&, SyscallCtx& ctx) override {
      if (ctx.call == "open") {
        ctx.force_fail = true;
        ctx.forced_error = Err::conn;
      }
    }
  };
  k.add_interposer(std::make_shared<Deny>());
  auto fd = k.open(kS, alice, "/etc/passwd", OpenFlag::rd);
  EXPECT_EQ(fd.error(), Err::conn);
}

TEST_F(KernelTest, AfterHookCanRewriteInput) {
  struct Rewrite : Interposer {
    void after(Kernel&, SyscallCtx& ctx, Err) override {
      if (ctx.has_input && ctx.input) *ctx.input = "REWRITTEN";
    }
  };
  world::put_file(k, "/home/alice/f", "original", 1000, 1000, 0644);
  k.add_interposer(std::make_shared<Rewrite>());
  auto fd = k.open(kS, alice, "/home/alice/f", OpenFlag::rd);
  ASSERT_TRUE(fd.ok());
  EXPECT_EQ(k.read(kS, alice, fd.value()).value(), "REWRITTEN");
  // The file itself is untouched: only the delivered input changed.
  EXPECT_EQ(k.peek("/home/alice/f").value(), "original");
}

TEST_F(KernelTest, HookShrinkingContentMidReadIsEofNotCrash) {
  // A content perturbation can replace the file with a shorter payload
  // between dispatch_before and the actual read; an advanced descriptor
  // offset must degrade to EOF, never out-of-range.
  struct Shrink : Interposer {
    void before(Kernel& kk, SyscallCtx& ctx) override {
      if (ctx.call != "read" || ctx.object == kNoIno) return;
      kk.vfs().mutate(ctx.object).content = "x";
    }
  };
  world::put_file(k, "/home/alice/log", "line one is quite long\nline two\n",
                  1000, 1000, 0644);
  auto fd = k.open(kS, alice, "/home/alice/log", OpenFlag::rd);
  ASSERT_TRUE(fd.ok());
  // Advance the offset past what the shrunk file will hold.
  EXPECT_EQ(k.read_line(kS, alice, fd.value()).value(),
            "line one is quite long");
  k.add_interposer(std::make_shared<Shrink>());
  // The EOF pre-check passes against the original content, the hook then
  // shrinks it below the offset; the read must answer EOF.
  EXPECT_EQ(k.read_line(kS, alice, fd.value()).error(), Err::io);
}

TEST_F(KernelTest, DescribeObjectRecordsRuidAccess) {
  world::put_file(k, "/etc/secret", "x", kRootUid, kRootGid, 0600);
  struct Capture : Interposer {
    bool readable = true, writable = true;
    void after(Kernel&, SyscallCtx& ctx, Err) override {
      if (ctx.call == "stat") {
        readable = ctx.object_ruid_readable;
        writable = ctx.object_ruid_writable;
      }
    }
  };
  auto cap = std::make_shared<Capture>();
  k.add_interposer(cap);
  Pid suid = k.make_process(1000, 1000, "/");
  k.proc(suid).euid = kRootUid;
  ASSERT_TRUE(k.stat(kS, suid, "/etc/secret").ok());
  EXPECT_FALSE(cap->readable);
  EXPECT_FALSE(cap->writable);
}

}  // namespace
}  // namespace ep::os
