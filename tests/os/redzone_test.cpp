// Redzone memory-oracle battery: token poison helpers, and off-by-N
// overruns past each guarded storage type (app fixed buffers, Vfs file
// content, registry values) must surface as redzone_corruption at the
// right site — while the defensive paths never trip the guard and the
// self-reporting overflow path still crashes the old way.
#include "os/redzone.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>

#include "apps/fixed_buffer.hpp"
#include "core/oracle.hpp"
#include "os/kernel.hpp"
#include "os/world.hpp"
#include "reg/registry.hpp"

namespace ep {
namespace {

const os::Site kBuf{"redzone_test.c", 10, "buffer-site"};
const os::Site kRead{"redzone_test.c", 20, "read-site"};
const os::Site kRegSite{"redzone_test.c", 30, "reg-site"};

// --- poison-token unit checks (no kernel involved) ----------------------

TEST(RedzoneUnit, FreshPoisonIsIntact) {
  std::string z = os::redzone::poison();
  EXPECT_EQ(z.size(), os::redzone::kSize);
  EXPECT_TRUE(os::redzone::intact(z));
  EXPECT_EQ(os::redzone::first_clobbered(z), os::redzone::kSize);
  EXPECT_EQ(os::redzone::clobbered_prefix(z), 0u);
  // The token repeats every 4 bytes: DE AD C0 DE.
  EXPECT_EQ(z[0], '\xDE');
  EXPECT_EQ(z[1], '\xAD');
  EXPECT_EQ(z[2], '\xC0');
  EXPECT_EQ(z[3], '\xDE');
  EXPECT_EQ(z[4], '\xDE');
}

TEST(RedzoneUnit, LeadingClobberIsCountedExactly) {
  for (std::size_t n : {1u, 2u, 8u, 16u}) {
    std::string z = os::redzone::poison();
    z.replace(0, n, std::string(n, '!'));
    EXPECT_FALSE(os::redzone::intact(z));
    EXPECT_EQ(os::redzone::first_clobbered(z), 0u);
    EXPECT_EQ(os::redzone::clobbered_prefix(z), n) << "overrun of " << n;
  }
}

TEST(RedzoneUnit, InteriorClobberIsStillCorruption) {
  std::string z = os::redzone::poison();
  z[7] = 'x';
  EXPECT_FALSE(os::redzone::intact(z));
  EXPECT_EQ(os::redzone::first_clobbered(z), 7u);
  // No *leading* clobber, but the zone is damaged all the same; the
  // report falls back to the generic detail in this case.
  EXPECT_EQ(os::redzone::clobbered_prefix(z), 0u);
}

TEST(RedzoneUnit, ResizedZoneIsCorruption) {
  std::string z = os::redzone::poison();
  z.pop_back();
  EXPECT_FALSE(os::redzone::intact(z));
  z = os::redzone::poison() + '\xDE';
  EXPECT_FALSE(os::redzone::intact(z));
}

TEST(RedzoneUnit, SameByteMemsetCannotMasqueradeAsPoison) {
  // A single-byte fill of the whole region must not look intact — that is
  // why the token is a repeating 4-byte pattern.
  EXPECT_FALSE(os::redzone::intact(std::string(os::redzone::kSize, '\xDE')));
  EXPECT_FALSE(os::redzone::intact(std::string(os::redzone::kSize, '\x00')));
}

// --- kernel-integrated battery ------------------------------------------

class RedzoneTest : public ::testing::Test {
 protected:
  RedzoneTest() {
    os::world::standard_unix(k);
    k.add_user(1000, "alice", 1000);
    // Set-uid-style process: root effective, alice real (the privileged
    // target the paper's oracle watches). Redzone reports do not require
    // privilege, but the overflow/memory-safety contrast test does.
    suid = k.make_process(1000, 1000, "/");
    k.proc(suid).euid = os::kRootUid;
    oracle = std::make_shared<core::SecurityOracle>(core::PolicySpec{});
    k.add_interposer(oracle);
  }

  /// The single redzone violation the oracle should now hold.
  const core::Violation& only_redzone() {
    EXPECT_EQ(oracle->redzone_count(), 1);
    EXPECT_FALSE(oracle->violations().empty());
    const core::Violation& v = oracle->violations().back();
    EXPECT_EQ(v.policy, core::Policy::redzone_corruption);
    return v;
  }

  os::Kernel k;
  os::Pid suid = -1;
  std::shared_ptr<core::SecurityOracle> oracle;
};

/// Off-by-N parameterization: one byte, a couple, half a guard, and a
/// whole capacity's worth (clamped to the guard width on detection).
class RedzoneOffByN : public RedzoneTest,
                      public ::testing::WithParamInterface<std::size_t> {
 protected:
  /// Bytes of poison the oracle can actually see clobbered.
  std::size_t visible() const {
    return std::min<std::size_t>(GetParam(), os::redzone::kSize);
  }
};

INSTANTIATE_TEST_SUITE_P(OverrunWidths, RedzoneOffByN,
                         ::testing::Values<std::size_t>(1, 2, 8, 16));

TEST_P(RedzoneOffByN, WildCopyPastFixedBufferReportsAtBufferSite) {
  const std::size_t n = GetParam();
  {
    apps::FixedBuffer buf(k, suid, kBuf, 16);
    buf.copy_wild(std::string(16 + n, 'A'));
    // The wild copy is silent — no self-report, no crash. Detection is
    // deferred to the buffer's destruction.
    EXPECT_FALSE(oracle->violated());
    EXPECT_EQ(buf.str().size(), 16u);
  }
  const core::Violation& v = only_redzone();
  EXPECT_EQ(v.site, kBuf);
  EXPECT_EQ(v.object, "buffer at " + kBuf.str());
  EXPECT_NE(v.detail.find(std::to_string(visible()) + " byte(s)"),
            std::string::npos)
      << v.detail;
}

TEST_P(RedzoneOffByN, OverrunPastVfsContentReportsAtNextRead) {
  os::Ino ino = os::world::put_file(k, "/etc/banner.conf", "hello",
                                    os::kRootUid, 0, 0644);
  k.vfs().wild_write(ino, GetParam());
  EXPECT_FALSE(oracle->violated());  // injection itself is silent

  auto fd = k.open(kRead, suid, "/etc/banner.conf", os::OpenFlag::rd);
  ASSERT_TRUE(fd.ok());
  auto data = k.read(kRead, suid, fd.value());
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), "hello");  // content is unharmed; the guard took it

  const core::Violation& v = only_redzone();
  EXPECT_EQ(v.site, kRead);  // detected at the syscall that touched it
  EXPECT_EQ(v.object, "/etc/banner.conf");
  EXPECT_NE(v.detail.find(std::to_string(visible()) + " byte(s)"),
            std::string::npos)
      << v.detail;
}

TEST_P(RedzoneOffByN, OverrunPastVfsContentIsCaughtByTeardownSweep) {
  os::Ino ino = os::world::put_file(k, "/etc/banner.conf", "hello",
                                    os::kRootUid, 0, 0644);
  k.vfs().wild_write(ino, GetParam());
  // Nothing reads the file again; the end-of-run sweep must still see it.
  k.validate_redzones();
  const core::Violation& v = only_redzone();
  EXPECT_EQ(v.site, (os::Site{"kernel", 0, "redzone-teardown"}));
  EXPECT_EQ(v.object, "/etc/banner.conf");
}

TEST_P(RedzoneOffByN, OverrunPastRegistryValueReportsAtReadValue) {
  reg::Registry r;
  k.attach_substrates(nullptr, &r);
  reg::Key key;
  key.path = "HKLM/Software/FontPath";
  key.value = "C:/Fonts";
  r.define_key(key);
  r.wild_write("HKLM/Software/FontPath", GetParam());
  EXPECT_FALSE(oracle->violated());

  auto got = r.read_value(k, kRegSite, suid, "HKLM/Software/FontPath");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), "C:/Fonts");

  const core::Violation& v = only_redzone();
  EXPECT_EQ(v.site, kRegSite);
  EXPECT_EQ(v.object, "HKLM/Software/FontPath");
  EXPECT_NE(v.detail.find(std::to_string(visible()) + " byte(s)"),
            std::string::npos)
      << v.detail;
}

TEST_P(RedzoneOffByN, OverrunPastRegistryValueIsCaughtByTeardownSweep) {
  reg::Registry r;
  k.attach_substrates(nullptr, &r);
  reg::Key key;
  key.path = "HKLM/Software/FontPath";
  key.value = "C:/Fonts";
  r.define_key(key);
  r.wild_write("HKLM/Software/FontPath", GetParam());
  r.validate_redzones(k);
  const core::Violation& v = only_redzone();
  EXPECT_EQ(v.site, (os::Site{"registry", 0, "redzone-teardown"}));
  EXPECT_EQ(v.object, "HKLM/Software/FontPath");
}

// --- contrast cases: the other copy paths keep their semantics ----------

TEST_F(RedzoneTest, UncheckedCopyStillSelfReportsAndCrashes) {
  auto smash = [&] {
    apps::FixedBuffer buf(k, suid, kBuf, 16);
    buf.copy_unchecked(std::string(32, 'A'));
  };
  EXPECT_THROW(smash(), os::AppCrash);
  // The classic path is unchanged: a buffer_overflow app fault (the
  // memory-safety policy for a privileged process), not a redzone report
  // — copy_unchecked truncates, it does not spill past the guard.
  EXPECT_EQ(oracle->overflow_count(), 1);
  EXPECT_EQ(oracle->redzone_count(), 0);
  ASSERT_TRUE(oracle->violated());
  EXPECT_EQ(oracle->violations()[0].policy, core::Policy::memory_safety);
}

TEST_F(RedzoneTest, WildCopyThenCrashStillReportsDuringUnwinding) {
  auto run = [&] {
    apps::FixedBuffer buf(k, suid, kBuf, 16);
    buf.copy_wild(std::string(17, 'A'));   // silent corruption first
    buf.copy_unchecked(std::string(32, 'B'));  // then the crash
  };
  EXPECT_THROW(run(), os::AppCrash);
  // The destructor runs while the AppCrash unwinds, so the crashing run
  // still yields its corruption report.
  EXPECT_EQ(oracle->redzone_count(), 1);
  EXPECT_EQ(oracle->overflow_count(), 1);
}

TEST_F(RedzoneTest, CheckedCopyNeverTouchesTheGuard) {
  {
    apps::FixedBuffer buf(k, suid, kBuf, 16);
    EXPECT_FALSE(buf.copy_checked(std::string(64, 'A')));  // refused
    EXPECT_TRUE(buf.copy_checked("fits"));
    EXPECT_EQ(buf.str(), "fits");
  }
  k.validate_redzones();
  EXPECT_FALSE(oracle->violated());
  EXPECT_EQ(oracle->redzone_count(), 0);
}

TEST_F(RedzoneTest, LiveBufferIsSweptAtTeardown) {
  // A buffer still alive when the run tears down (leak / longjmp-style
  // exit) is caught by validate_redzones instead of its destructor, at
  // its own registration site.
  apps::FixedBuffer buf(k, suid, kBuf, 16);
  buf.copy_wild(std::string(20, 'A'));
  k.validate_redzones();
  const core::Violation& v = only_redzone();
  EXPECT_EQ(v.site, kBuf);
}

// --- report plumbing ----------------------------------------------------

TEST_F(RedzoneTest, CorruptionIsReportedOncePerObjectPerRun) {
  os::Ino ino = os::world::put_file(k, "/etc/banner.conf", "hello",
                                    os::kRootUid, 0, 0644);
  k.vfs().wild_write(ino, 4);
  auto fd = k.open(kRead, suid, "/etc/banner.conf", os::OpenFlag::rd);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(k.read(kRead, suid, fd.value()).ok());
  ASSERT_TRUE(k.read(kRead, suid, fd.value()).ok());  // re-read: no new report
  k.validate_redzones();  // teardown sweep: still the same object
  EXPECT_EQ(oracle->redzone_count(), 1);
}

TEST_F(RedzoneTest, DistinctObjectsReportDistinctly) {
  os::Ino a = os::world::put_file(k, "/etc/a.conf", "a", os::kRootUid, 0,
                                  0644);
  os::Ino b = os::world::put_file(k, "/etc/b.conf", "b", os::kRootUid, 0,
                                  0644);
  k.vfs().wild_write(a, 1);
  k.vfs().wild_write(b, 2);
  k.validate_redzones();
  EXPECT_EQ(oracle->redzone_count(), 2);
  EXPECT_EQ(oracle->violations()[0].object, "/etc/a.conf");
  EXPECT_EQ(oracle->violations()[1].object, "/etc/b.conf");
}

TEST_F(RedzoneTest, AuditOffSilencesEveryDetectionPoint) {
  k.set_redzone_audit(false);
  reg::Registry r;
  k.attach_substrates(nullptr, &r);
  reg::Key key;
  key.path = "HKLM/Software/FontPath";
  key.value = "v";
  r.define_key(key);

  os::Ino ino = os::world::put_file(k, "/etc/banner.conf", "hello",
                                    os::kRootUid, 0, 0644);
  k.vfs().wild_write(ino, 4);
  r.wild_write("HKLM/Software/FontPath", 4);
  {
    apps::FixedBuffer buf(k, suid, kBuf, 16);
    buf.copy_wild(std::string(32, 'A'));
  }
  auto fd = k.open(kRead, suid, "/etc/banner.conf", os::OpenFlag::rd);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(k.read(kRead, suid, fd.value()).ok());
  ASSERT_TRUE(r.read_value(k, kRegSite, suid, "HKLM/Software/FontPath").ok());
  k.validate_redzones();
  r.validate_redzones(k);

  EXPECT_FALSE(oracle->violated());
  EXPECT_EQ(oracle->redzone_count(), 0);
}

TEST_F(RedzoneTest, CloneCorruptionStaysPrivateToTheClone) {
  os::Ino ino = os::world::put_file(k, "/etc/banner.conf", "hello",
                                    os::kRootUid, 0, 0644);
  // Snapshot shares inodes copy-on-write; wild_write goes through
  // mutate(), so corrupting the clone must unshare first.
  os::Kernel snap = k;  // interposer chain deliberately not copied
  snap.vfs().wild_write(ino, 4);

  // Prototype guards are untouched.
  k.validate_redzones();
  EXPECT_EQ(oracle->redzone_count(), 0);
  EXPECT_FALSE(oracle->violated());

  // The clone reports through its own (fresh) hook chain.
  auto clone_oracle =
      std::make_shared<core::SecurityOracle>(core::PolicySpec{});
  snap.add_interposer(clone_oracle);
  snap.validate_redzones();
  EXPECT_EQ(clone_oracle->redzone_count(), 1);
  EXPECT_EQ(clone_oracle->violations()[0].object, "/etc/banner.conf");
}

}  // namespace
}  // namespace ep
