#!/usr/bin/env bash
# Fan one scenario's campaign across N worker processes on this machine:
#
#   scripts/shard_local.sh [-n SHARDS] [-b EPA_CLI] [-o OUTDIR] [-j] [-O]
#                          [-D PLANE] [-B] [-c CHECKPOINT] [-P PREEMPT]
#                          SCENARIO
#
#   -n SHARDS       worker process count (default 4)
#   -b EPA_CLI      path to the epa_cli binary (default ./build/epa_cli)
#   -o OUTDIR       where plan/shard files go (default: a fresh temp dir)
#   -j              print the merged report as JSON
#   -O              drive the campaign through `epa_cli orchestrate`
#                   (dynamic leases, persistent workers, automatic
#                   re-lease of preempted work) instead of the static
#                   K/N run-shard fan-out
#   -D PLANE        orchestrate data plane: pipe, shm, or tcp (implies
#                   -O). tcp runs the coordinator with --listen 0 and
#                   dials the workers into the published port over
#                   localhost — the remote fan-out, end to end, on one
#                   machine
#   -B              alias of -D shm, kept from before the data planes
#                   were an enum: orchestrate over the mmap'd arena —
#                   no JSON between the processes at all
#   -c CHECKPOINT   flush a resumable partial report every K outcomes; a
#                   worker that exits 4 (preempted, e.g. SIGTERM) is
#                   automatically completed with run-shard --resume
#                   (with -O/-D: workers flush partials mid-lease and
#                   preemption re-leases the unfinished range)
#   -P PREEMPT      self-preempt each worker after N checkpoint flushes
#                   (with -O/-D and no -c: after N served leases;
#                   testing hook)
#
# plan -> N x run-shard (parallel processes) -> merge. The merged report
# is bit-identical to a single-process `epa_cli run SCENARIO` for any N
# (docs/WIRE_FORMAT.md); exit status is merge's: 0 clean, 3 candidate
# vulnerabilities found, 1 on any malformed input or worker failure.
set -euo pipefail

shards=4
epa_cli=./build/epa_cli
outdir=
json_flag=
orchestrate=
data_plane=
checkpoint=
preempt=

usage() {
  sed -n '2,25p' "$0" >&2
  exit 2
}

while getopts 'n:b:o:jOD:Bc:P:h' opt; do
  case "$opt" in
    n) shards=$OPTARG ;;
    b) epa_cli=$OPTARG ;;
    o) outdir=$OPTARG ;;
    j) json_flag=--json ;;
    O) orchestrate=1 ;;
    D) orchestrate=1; data_plane=$OPTARG ;;
    B) orchestrate=1; data_plane=shm ;;
    c) checkpoint=$OPTARG ;;
    P) preempt=$OPTARG ;;
    *) usage ;;
  esac
done
shift $((OPTIND - 1))
[ $# -eq 1 ] || usage
scenario=$1

case "${data_plane:-pipe}" in
  pipe|json|shm|tcp) ;;
  *) echo "shard_local: -D must be pipe, shm, or tcp" >&2; exit 2 ;;
esac

case "$shards" in
  ''|*[!0-9]*|0) echo "shard_local: -n must be a positive integer" >&2; exit 2 ;;
esac
case "${checkpoint:-1}" in
  ''|*[!0-9]*|0) echo "shard_local: -c must be a positive integer" >&2; exit 2 ;;
esac
case "${preempt:-1}" in
  ''|*[!0-9]*|0) echo "shard_local: -P must be a positive integer" >&2; exit 2 ;;
esac
if [ -n "$preempt" ] && [ -z "$checkpoint" ] && [ -z "$orchestrate" ]; then
  echo "shard_local: -P needs -c (preemption is delivered at a checkpoint flush)" >&2
  exit 2
fi
[ -x "$epa_cli" ] || { echo "shard_local: no epa_cli at '$epa_cli' (build first, or pass -b)" >&2; exit 2; }
if [ -z "$outdir" ]; then
  outdir=$(mktemp -d "${TMPDIR:-/tmp}/epa-shard.XXXXXX")
else
  mkdir -p "$outdir"
fi

# Any exit — success, a failed worker, set -e on a bad merge — must kill
# and reap whatever background workers are still running: without this, a
# first-worker failure left the rest writing into $outdir after the
# script had already reported failure. Reaped pids are cleared from the
# array so the trap never signals a recycled pid. A failed run must also
# not strand mmap'd arena files (-B): unlike shard JSON they are
# per-run scratch, not resumable artifacts, so unlink them on any exit
# that is not a campaign result (0 clean, 3 findings).
pids=()
cleanup() {
  local rc=$? pid
  for pid in "${pids[@]}"; do
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  done
  for pid in "${pids[@]}"; do
    [ -n "$pid" ] && wait "$pid" 2>/dev/null || true
  done
  if [ "$rc" -ne 0 ] && [ "$rc" -ne 3 ]; then
    rm -f "$outdir"/*.arena "$outdir"/*.port
  fi
}
trap cleanup EXIT

# -D tcp: the remote fan-out on one machine. The coordinator binds an
# ephemeral port and publishes it; the workers dial in over localhost and
# hold sockets, not pipes — but they are background children of this
# script all the same, so they go into the same pids array the EXIT trap
# kills and reaps on every failure path. With -P a spare worker is
# pre-started: it parks in the accept backlog until a self-preempted
# worker needs replacing, and the coordinator adopts it instantly.
if [ "$data_plane" = tcp ]; then
  portfile="$outdir/$scenario.port"
  rm -f "$portfile"
  "$epa_cli" orchestrate "$scenario" --workers "$shards" \
    --data-plane tcp --listen 0 --port-file "$portfile" \
    ${json_flag:+"$json_flag"} &
  coord=$!
  pids+=("$coord")
  for _ in $(seq 1 100); do
    [ -s "$portfile" ] && break
    kill -0 "$coord" 2>/dev/null || break
    sleep 0.1
  done
  if ! [ -s "$portfile" ]; then
    echo "shard_local: coordinator never published a port" >&2
    exit 1
  fi
  port=$(cat "$portfile")
  worker_flags=()
  [ -n "$checkpoint" ] && worker_flags+=(--checkpoint "$checkpoint")
  [ -n "$preempt" ] && worker_flags+=(--preempt-after "$preempt")
  spares=0
  [ -n "$preempt" ] && spares=1
  for _ in $(seq 1 $((shards + spares))); do
    "$epa_cli" worker --connect "127.0.0.1:$port" "${worker_flags[@]}" >&2 &
    pids+=($!)
  done
  rc=0
  wait "$coord" || rc=$?
  pids[0]=  # reaped: the trap must not kill a recycled pid
  # 3 = candidate vulnerabilities: a finding, not a pipeline failure.
  [ "$rc" -eq 0 ] || [ "$rc" -eq 3 ] || exit "$rc"
  echo "tcp coordinator port file in $outdir" >&2
  exit "$rc"
fi

# -O/-B: hand the whole pipeline to the orchestrator — dynamic id-range
# leases over persistent workers, preempted leases re-leased
# automatically. -n is the worker count; plan and lease files (or the
# shm arena, with -B) land in OUTDIR like the shard files below would.
if [ -n "$orchestrate" ]; then
  orch_flags=()
  [ -n "$data_plane" ] && orch_flags+=(--data-plane "$data_plane")
  [ -n "$checkpoint" ] && orch_flags+=(--checkpoint "$checkpoint")
  [ -n "$preempt" ] && orch_flags+=(--preempt-after "$preempt")
  [ -n "$json_flag" ] && orch_flags+=("$json_flag")
  rc=0
  "$epa_cli" orchestrate "$scenario" --workers "$shards" --dir "$outdir" \
    "${orch_flags[@]}" || rc=$?
  # 3 = candidate vulnerabilities: a finding, not a pipeline failure.
  [ "$rc" -eq 0 ] || [ "$rc" -eq 3 ] || exit "$rc"
  if [ -n "$data_plane" ]; then
    echo "plan+report arena in $outdir" >&2
  else
    echo "lease files in $outdir" >&2
  fi
  exit "$rc"
fi

worker_flags=()
[ -n "$checkpoint" ] && worker_flags+=(--checkpoint "$checkpoint")
[ -n "$preempt" ] && worker_flags+=(--preempt-after "$preempt")

# Progress goes to stderr: stdout carries only the merged report, so
# `shard_local.sh -j NAME > report.json` stays clean.
plan="$outdir/$scenario.plan.json"
"$epa_cli" plan "$scenario" --out "$plan" >&2

for k in $(seq 1 "$shards"); do
  "$epa_cli" run-shard "$plan" --shard "$k/$shards" \
    --out "$outdir/$scenario.shard$k.json" "${worker_flags[@]}" >&2 &
  pids+=($!)
done
for idx in "${!pids[@]}"; do
  k=$((idx + 1))
  rc=0
  wait "${pids[$idx]}" || rc=$?
  pids[$idx]=  # reaped: the trap must not kill a recycled pid
  # Preempted worker (exit 4): a valid partial report is on disk —
  # resume it (--resume re-drains only the missing ids and completes in
  # place). A resume can itself be preempted, so loop; each round makes
  # progress (at least one checkpoint interval), so this terminates.
  resume_flags=()
  [ -n "$checkpoint" ] && resume_flags+=(--checkpoint "$checkpoint")
  while [ "$rc" -eq 4 ]; do
    echo "shard_local: shard $k/$shards preempted; resuming" >&2
    rc=0
    "$epa_cli" run-shard "$plan" \
      --resume "$outdir/$scenario.shard$k.json" "${resume_flags[@]}" >&2 \
      || rc=$?
  done
  if [ "$rc" -ne 0 ]; then
    echo "shard_local: a shard worker failed" >&2
    exit 1
  fi
done

shard_files=()
for k in $(seq 1 "$shards"); do
  shard_files+=("$outdir/$scenario.shard$k.json")
done
rc=0
"$epa_cli" merge "$plan" "${shard_files[@]}" $json_flag || rc=$?
# 3 = candidate vulnerabilities: a finding, not a failure of the pipeline.
[ "$rc" -eq 0 ] || [ "$rc" -eq 3 ] || exit "$rc"
echo "shard files in $outdir" >&2
exit "$rc"
