#!/usr/bin/env bash
# Fan one scenario's campaign across N worker processes on this machine:
#
#   scripts/shard_local.sh [-n SHARDS] [-b EPA_CLI] [-o OUTDIR] [-j] SCENARIO
#
#   -n SHARDS   worker process count (default 4)
#   -b EPA_CLI  path to the epa_cli binary (default ./build/epa_cli)
#   -o OUTDIR   where plan/shard files go (default: a fresh temp dir)
#   -j          print the merged report as JSON
#
# plan -> N x run-shard (parallel processes) -> merge. The merged report
# is bit-identical to a single-process `epa_cli run SCENARIO` for any N
# (docs/WIRE_FORMAT.md); exit status is merge's: 0 clean, 3 candidate
# vulnerabilities found, 1 on any malformed input or worker failure.
set -euo pipefail

shards=4
epa_cli=./build/epa_cli
outdir=
json_flag=

usage() {
  sed -n '2,12p' "$0" >&2
  exit 2
}

while getopts 'n:b:o:jh' opt; do
  case "$opt" in
    n) shards=$OPTARG ;;
    b) epa_cli=$OPTARG ;;
    o) outdir=$OPTARG ;;
    j) json_flag=--json ;;
    *) usage ;;
  esac
done
shift $((OPTIND - 1))
[ $# -eq 1 ] || usage
scenario=$1

case "$shards" in
  ''|*[!0-9]*|0) echo "shard_local: -n must be a positive integer" >&2; exit 2 ;;
esac
[ -x "$epa_cli" ] || { echo "shard_local: no epa_cli at '$epa_cli' (build first, or pass -b)" >&2; exit 2; }
if [ -z "$outdir" ]; then
  outdir=$(mktemp -d "${TMPDIR:-/tmp}/epa-shard.XXXXXX")
else
  mkdir -p "$outdir"
fi

# Progress goes to stderr: stdout carries only the merged report, so
# `shard_local.sh -j NAME > report.json` stays clean.
plan="$outdir/$scenario.plan.json"
"$epa_cli" plan "$scenario" --out "$plan" >&2

pids=()
for k in $(seq 1 "$shards"); do
  "$epa_cli" run-shard "$plan" --shard "$k/$shards" \
    --out "$outdir/$scenario.shard$k.json" >&2 &
  pids+=($!)
done
for pid in "${pids[@]}"; do
  wait "$pid" || { echo "shard_local: a shard worker failed" >&2; exit 1; }
done

shard_files=()
for k in $(seq 1 "$shards"); do
  shard_files+=("$outdir/$scenario.shard$k.json")
done
rc=0
"$epa_cli" merge "$plan" "${shard_files[@]}" $json_flag || rc=$?
# 3 = candidate vulnerabilities: a finding, not a failure of the pipeline.
[ "$rc" -eq 0 ] || [ "$rc" -eq 3 ] || exit "$rc"
echo "shard files in $outdir" >&2
exit "$rc"
