#include "baseline/fuzz.hpp"

#include <memory>
#include <set>

#include "util/rng.hpp"

namespace ep::baseline {

namespace {

/// Rewrites input values with random bytes as they cross the
/// environment-application boundary.
class FuzzHook : public os::Interposer {
 public:
  FuzzHook(Rng& rng, bool all_inputs, std::size_t max_len)
      : rng_(rng), all_inputs_(all_inputs), max_len_(max_len) {}

  void after(os::Kernel&, os::SyscallCtx& ctx, Err) override {
    if (!ctx.has_input || ctx.input == nullptr) return;
    if (!all_inputs_ && ctx.call != "arg") return;
    std::size_t len = rng_.between(1, max_len_);
    // Miller's streams mixed printable and non-printable characters.
    *ctx.input = rng_.chance(0.5) ? rng_.printable(len) : rng_.bytes(len);
  }

 private:
  Rng& rng_;
  bool all_inputs_;
  std::size_t max_len_;
};

/// Collects crash sites for the distinct-crash metric.
class CrashCollector : public os::Interposer {
 public:
  void after(os::Kernel&, os::SyscallCtx& ctx, Err) override {
    if (ctx.call == "app_fault" && ctx.aux == "crash")
      sites_.insert(ctx.site.str());
  }
  [[nodiscard]] const std::set<std::string>& sites() const { return sites_; }

 private:
  std::set<std::string> sites_;
};

}  // namespace

FuzzResult run_fuzz(const core::Scenario& scenario, const FuzzOptions& opts) {
  FuzzResult result;
  result.trials = opts.trials;
  Rng rng(opts.seed);
  std::set<std::string> crash_sites;

  for (int t = 0; t < opts.trials; ++t) {
    auto world = scenario.build();
    auto hook =
        std::make_shared<FuzzHook>(rng, opts.all_inputs, opts.max_len);
    auto oracle = std::make_shared<core::SecurityOracle>(scenario.policy);
    auto crashes = std::make_shared<CrashCollector>();
    world->kernel.add_interposer(hook);
    world->kernel.add_interposer(oracle);
    world->kernel.add_interposer(crashes);
    (void)scenario.run(*world);
    if (oracle->crash_count() > 0) ++result.crashes;
    if (oracle->violated()) ++result.violations;
    for (const auto& s : crashes->sites()) crash_sites.insert(s);
  }
  result.distinct_crash_sites = static_cast<int>(crash_sites.size());
  return result;
}

}  // namespace ep::baseline
