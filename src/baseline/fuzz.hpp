// The Fuzz baseline (Miller et al., Related Work).
//
// Fuzz feeds programs random input streams and watches for crashes. It
// has no fault model and no environment control: it can only reach the
// program through its inputs, and its oracle is "did it crash", not "was
// a security policy violated". Running it over the same scenarios the
// EAI campaigns use lets the baseline bench reproduce the comparison the
// paper argues qualitatively: random input finds the crash-shaped subset
// of flaws, slowly; semantic environment perturbation finds violations
// random bytes rarely reach — and direct-fault flaws never surface from
// input randomization at all.
#pragma once

#include <cstdint>

#include "core/campaign.hpp"

namespace ep::baseline {

struct FuzzOptions {
  int trials = 100;
  std::uint64_t seed = 1;
  /// false: randomize user inputs (argv) only, as classic Fuzz did;
  /// true: also randomize environment variables, file reads, packets.
  bool all_inputs = false;
  /// Maximum random input length.
  std::size_t max_len = 6000;
};

struct FuzzResult {
  int trials = 0;
  int crashes = 0;            // runs that crashed (Fuzz's own oracle)
  int violations = 0;         // runs the security oracle would have flagged
  int distinct_crash_sites = 0;

  [[nodiscard]] double crash_rate() const {
    return trials == 0 ? 0.0 : static_cast<double>(crashes) / trials;
  }
};

FuzzResult run_fuzz(const core::Scenario& scenario, const FuzzOptions& opts);

}  // namespace ep::baseline
