// The AVA-style baseline (Ghosh et al., Related Work).
//
// Adaptive Vulnerability Analysis perturbs the *internal* state of the
// executing application — the values program variables hold — rather than
// the environment. We model it as random corruption of input-derived
// internal entities at the moment they are assigned: one random mutation
// (bit flip, truncation, duplication, random replacement) of the value
// one randomly chosen interaction point delivered.
//
// Two properties the paper predicts fall out measurably:
//   * the semantic gap — random corruption rarely matches the input
//     patterns real attacks use, so per-trial yield is low;
//   * blindness to direct faults — no internal-state corruption
//     corresponds to a symlinked spool file or a dead auth service, so
//     those flaws cannot surface at all.
#pragma once

#include <cstdint>

#include "core/campaign.hpp"

namespace ep::baseline {

struct AvaOptions {
  int trials = 100;
  std::uint64_t seed = 1;
};

struct AvaResult {
  int trials = 0;
  int violations = 0;  // security oracle flagged the run
  int crashes = 0;

  [[nodiscard]] double violation_rate() const {
    return trials == 0 ? 0.0 : static_cast<double>(violations) / trials;
  }
};

AvaResult run_ava(const core::Scenario& scenario, const AvaOptions& opts);

}  // namespace ep::baseline
