#include "baseline/ava.hpp"

#include <memory>

#include "core/trace.hpp"
#include "util/rng.hpp"

namespace ep::baseline {

namespace {

enum class Mutation { bit_flip, truncate, duplicate, random_replace };

std::string mutate(const std::string& s, Mutation m, Rng& rng) {
  switch (m) {
    case Mutation::bit_flip: {
      if (s.empty()) return "\x01";
      std::string out = s;
      std::size_t i = rng.below(out.size());
      out[i] = static_cast<char>(out[i] ^ (1 << rng.below(8)));
      return out;
    }
    case Mutation::truncate:
      return s.substr(0, s.size() / 2);
    case Mutation::duplicate: {
      // Length amplification: corrupted length fields make internal
      // copies balloon, not merely double.
      std::string out;
      const std::string unit = s.empty() ? "A" : s;
      while (out.size() < unit.size() * 64 && out.size() < 8192) out += unit;
      return out;
    }
    case Mutation::random_replace:
      return rng.printable(s.empty() ? 8 : s.size());
  }
  return s;
}

/// Corrupts the internal entity assigned at one chosen site, once.
class AvaHook : public os::Interposer {
 public:
  AvaHook(os::Site site, Mutation m, Rng& rng)
      : site_(std::move(site)), mutation_(m), rng_(rng) {}

  void after(os::Kernel&, os::SyscallCtx& ctx, Err) override {
    if (fired_ || !(ctx.site == site_)) return;
    if (!ctx.has_input || ctx.input == nullptr) return;
    *ctx.input = mutate(*ctx.input, mutation_, rng_);
    fired_ = true;
  }

 private:
  os::Site site_;
  Mutation mutation_;
  Rng& rng_;
  bool fired_ = false;
};

}  // namespace

AvaResult run_ava(const core::Scenario& scenario, const AvaOptions& opts) {
  AvaResult result;
  result.trials = opts.trials;
  Rng rng(opts.seed);

  // Find the input-bearing interaction points (where internal entities
  // are assigned from the environment).
  std::vector<os::Site> input_sites;
  {
    auto world = scenario.build();
    auto recorder =
        std::make_shared<core::TraceRecorder>(scenario.trace_unit_filter);
    world->kernel.add_interposer(recorder);
    (void)scenario.run(*world);
    for (const auto& p : recorder->points())
      if (p.has_input) input_sites.push_back(p.site);
  }
  if (input_sites.empty()) return result;

  for (int t = 0; t < opts.trials; ++t) {
    const os::Site& site = input_sites[rng.below(input_sites.size())];
    auto m = static_cast<Mutation>(rng.below(4));
    auto world = scenario.build();
    auto hook = std::make_shared<AvaHook>(site, m, rng);
    auto oracle = std::make_shared<core::SecurityOracle>(scenario.policy);
    world->kernel.add_interposer(hook);
    world->kernel.add_interposer(oracle);
    (void)scenario.run(*world);
    if (oracle->violated()) ++result.violations;
    if (oracle->crash_count() > 0) ++result.crashes;
  }
  return result;
}

}  // namespace ep::baseline
