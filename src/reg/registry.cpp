#include "reg/registry.hpp"

#include <algorithm>

namespace ep::reg {

using os::SyscallCtx;

void Registry::define_key(Key key) { keys_[key.path] = std::move(key); }

const Key* Registry::find(const std::string& path) const {
  auto it = keys_.find(path);
  return it == keys_.end() ? nullptr : &it->second;
}

SysResult<std::string> Registry::read_value(os::Kernel& k,
                                            const os::Site& site, os::Pid pid,
                                            const std::string& path) {
  SyscallCtx ctx;
  ctx.site = site;
  ctx.pid = pid;
  ctx.call = "regread";
  ctx.path = path;
  ctx.has_input = true;
  k.dispatch_before(ctx);
  if (ctx.force_fail) {
    k.dispatch_after(ctx, ctx.forced_error);
    return ctx.forced_error;
  }
  auto it = keys_.find(path);
  Err e = Err::ok;
  if (it == keys_.end()) {
    e = Err::noent;
  } else {
    if (!os::redzone::intact(it->second.redzone))
      k.report_redzone_corruption(site, pid, path, it->second.redzone);
    ctx.data = it->second.value;
    ctx.object_untrusted = !it->second.trusted;
  }
  ctx.input = &ctx.data;
  k.dispatch_after(ctx, e);
  if (e != Err::ok && ctx.data.empty()) return e;
  return ctx.data;
}

SysStatus Registry::write_value(os::Kernel& k, const os::Site& site,
                                os::Pid pid, const std::string& path,
                                const std::string& value) {
  SyscallCtx ctx;
  ctx.site = site;
  ctx.pid = pid;
  ctx.call = "regwrite";
  ctx.path = path;
  ctx.data = value;
  k.dispatch_before(ctx);
  if (ctx.force_fail) {
    k.dispatch_after(ctx, ctx.forced_error);
    return ctx.forced_error;
  }
  auto it = keys_.find(path);
  Err e = Err::ok;
  if (it == keys_.end()) {
    e = Err::noent;
  } else {
    if (!os::redzone::intact(it->second.redzone))
      k.report_redzone_corruption(site, pid, path, it->second.redzone);
    const os::Process& p = k.proc(pid);
    if (!it->second.acl.everyone_write && p.euid != os::kRootUid &&
        p.euid != it->second.acl.owner) {
      e = Err::acces;
    } else {
      it->second.value = value;
    }
  }
  k.dispatch_after(ctx, e);
  if (e != Err::ok) return e;
  return ok_status();
}

bool Registry::attacker_set_value(os::Uid attacker, const std::string& path,
                                  const std::string& value) {
  auto it = keys_.find(path);
  if (it == keys_.end()) return false;
  if (!it->second.acl.everyone_write && attacker != os::kRootUid &&
      attacker != it->second.acl.owner)
    return false;
  it->second.value = value;
  return true;
}

void Registry::set_value(const std::string& path, const std::string& value) {
  auto it = keys_.find(path);
  if (it != keys_.end()) it->second.value = value;
}

void Registry::set_everyone_write(const std::string& path,
                                  bool everyone_write) {
  auto it = keys_.find(path);
  if (it != keys_.end()) it->second.acl.everyone_write = everyone_write;
}

void Registry::set_trusted(const std::string& path, bool trusted) {
  auto it = keys_.find(path);
  if (it != keys_.end()) it->second.trusted = trusted;
}

void Registry::remove_key(const std::string& path) { keys_.erase(path); }

void Registry::wild_write(const std::string& path, std::size_t overflow,
                          char fill) {
  auto it = keys_.find(path);
  if (it == keys_.end()) return;
  std::string& zone = it->second.redzone;
  std::size_t n = std::min(overflow, zone.size());
  for (std::size_t i = 0; i < n; ++i) zone[i] = fill;
}

void Registry::validate_redzones(os::Kernel& k) const {
  if (!k.redzone_audit()) return;
  const os::Site sweep{"registry", 0, "redzone-teardown"};
  for (const auto& [path, key] : keys_)
    if (!os::redzone::intact(key.redzone))
      k.report_redzone_corruption(sweep, -1, path, key.redzone);
}

std::vector<Key> Registry::unprotected_keys() const {
  std::vector<Key> out;
  for (const auto& [p, key] : keys_)
    if (key.acl.everyone_write) out.push_back(key);
  return out;
}

std::vector<Key> Registry::unprotected_with_module() const {
  std::vector<Key> out;
  for (const auto& [p, key] : keys_)
    if (key.acl.everyone_write && !key.used_by_module.empty())
      out.push_back(key);
  return out;
}

std::vector<Key> Registry::unprotected_without_module() const {
  std::vector<Key> out;
  for (const auto& [p, key] : keys_)
    if (key.acl.everyone_write && key.used_by_module.empty())
      out.push_back(key);
  return out;
}

}  // namespace ep::reg
