// NT-style registry substrate for the Section 4.2 case study.
//
// The registry is "an organized store for operating system's and
// application's data which are globally shared" — i.e., an environment
// entity. The security-relevant attributes are the per-key ACL (the paper
// scans for keys *everyone* may modify), the value (which modules trust),
// and existence. Reads by modules under test are routed through the
// kernel hook chain, so key values are a perturbable input like any other
// environment input.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "os/kernel.hpp"
#include "os/redzone.hpp"
#include "util/result.hpp"

namespace ep::reg {

struct Acl {
  os::Uid owner = os::kRootUid;  // SYSTEM
  bool everyone_read = true;
  /// The misconfiguration Section 4.2 hunts: any user may set the value.
  bool everyone_write = false;
};

struct Key {
  std::string path;  // e.g. "HKLM/Software/FontPath"
  std::string value;
  Acl acl;
  /// Static cross-reference: which module reads this key. Empty when the
  /// paper's situation applies — "lack of knowledge of how those modules
  /// work" — and the key cannot be perturb-tested yet.
  std::string used_by_module;
  bool trusted = true;
  /// Poisoned guard region conceptually adjacent to `value`; legitimate
  /// value writes replace the value wholesale and never touch it (see
  /// os/redzone.hpp). Value-copied with the Registry on world clone.
  std::string redzone = os::redzone::poison();
};

class Registry {
 public:
  void define_key(Key key);
  [[nodiscard]] const Key* find(const std::string& path) const;
  [[nodiscard]] std::size_t size() const { return keys_.size(); }

  // --- module-side operations (hooked) -------------------------------------
  /// Read a value as the module under test; an interaction point with
  /// input (the value), so both fault kinds apply here.
  SysResult<std::string> read_value(os::Kernel& k, const os::Site& site,
                                    os::Pid pid, const std::string& path);
  /// Write a value with ACL enforcement (everyone_write or owner/root).
  SysStatus write_value(os::Kernel& k, const os::Site& site, os::Pid pid,
                        const std::string& path, const std::string& value);

  // --- perturbation / attacker surface (unhooked, direct state access) ----
  /// What any user can do to an everyone-write key; returns false (and
  /// leaves the value) if the ACL actually protects the key.
  bool attacker_set_value(os::Uid attacker, const std::string& path,
                          const std::string& value);
  void set_value(const std::string& path, const std::string& value);
  void set_everyone_write(const std::string& path, bool everyone_write);
  void set_trusted(const std::string& path, bool trusted);
  void remove_key(const std::string& path);
  /// Simulate a write running `overflow` bytes past the end of the key's
  /// value: silently clobbers the leading bytes of its guard region. The
  /// injection half of the redzone oracle (no report here; detection is
  /// in read_value/write_value and validate_redzones).
  void wild_write(const std::string& path, std::size_t overflow,
                  char fill = '!');

  /// Teardown sweep over every key's guard region, in key-path order
  /// (deterministic: keys_ is a sorted map). Reports through the kernel's
  /// hook chain; driven from core::TargetWorld::validate_redzones()
  /// alongside os::Kernel::validate_redzones().
  void validate_redzones(os::Kernel& k) const;

  // --- the static-analysis scan from Section 4.2 ---------------------------
  /// Keys whose ACL lets everyone write.
  [[nodiscard]] std::vector<Key> unprotected_keys() const;
  /// Unprotected keys with a known consuming module (testable) vs not.
  [[nodiscard]] std::vector<Key> unprotected_with_module() const;
  [[nodiscard]] std::vector<Key> unprotected_without_module() const;

 private:
  std::map<std::string, Key> keys_;
};

}  // namespace ep::reg
