#include "vulndb/classifier.hpp"

namespace ep::vulndb {

std::string_view to_string(CauseKind c) {
  switch (c) {
    case CauseKind::code: return "code";
    case CauseKind::design: return "design";
    case CauseKind::configuration: return "configuration";
    case CauseKind::insufficient_info: return "insufficient information";
  }
  return "?";
}

std::string_view to_string(FsAttribute a) {
  switch (a) {
    case FsAttribute::existence: return "file existence";
    case FsAttribute::symbolic_link: return "symbolic link";
    case FsAttribute::permission: return "permission";
    case FsAttribute::ownership: return "ownership";
    case FsAttribute::invariance: return "file invariance";
    case FsAttribute::working_directory: return "working directory";
  }
  return "?";
}

EaiClass classify_record(const Record& r) {
  // Section 2.4's exclusions first.
  if (r.cause == CauseKind::insufficient_info)
    return EaiClass::excluded_insufficient;
  if (r.cause == CauseKind::design) return EaiClass::excluded_design;
  if (r.cause == CauseKind::configuration)
    return EaiClass::excluded_configuration;
  // Section 2.3: a fault that reaches the program as input propagates via
  // an internal entity -> indirect; a fault the program meets as an
  // environment-entity attribute -> direct; anything else is a plain
  // software fault irrelevant to the environment.
  if (r.input_origin) return EaiClass::indirect;
  if (r.entity) return EaiClass::direct;
  return EaiClass::other;
}

Classification classify_all(const std::vector<Record>& records) {
  Classification c;
  c.total = static_cast<int>(records.size());
  for (const Record& r : records) {
    switch (classify_record(r)) {
      case EaiClass::excluded_insufficient: ++c.insufficient; break;
      case EaiClass::excluded_design: ++c.design; break;
      case EaiClass::excluded_configuration: ++c.configuration; break;
      case EaiClass::indirect:
        ++c.classified;
        ++c.indirect;
        ++c.indirect_by_category[*r.input_origin];
        break;
      case EaiClass::direct:
        ++c.classified;
        ++c.direct;
        ++c.direct_by_entity[*r.entity];
        if (*r.entity == core::DirectEntity::file_system && r.fs_attribute)
          ++c.fs_by_attribute[*r.fs_attribute];
        break;
      case EaiClass::other:
        ++c.classified;
        ++c.other;
        break;
    }
  }
  return c;
}

}  // namespace ep::vulndb
