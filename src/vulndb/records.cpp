// The synthesized 195-record vulnerability database.
//
// Entries are modeled on the public record of 1990s UNIX / Windows NT
// vulnerabilities (the same reports behind the taxonomies the paper
// cites: Aslam, Bishop, Landwehr, Krsul) so that the classifier's
// aggregation reproduces Section 2.4's Tables 1-4 from record-level
// facts. Names are slugs, not CVE identifiers.
#include "vulndb/record.hpp"

namespace ep::vulndb {

namespace {

using core::DirectEntity;
using core::IndirectCategory;

std::vector<Record> build() {
  std::vector<Record> db;
  int next_id = 1;

  auto indirect = [&](const char* name, const char* os,
                      IndirectCategory origin, const char* desc) {
    Record r;
    r.id = next_id++;
    r.name = name;
    r.os = os;
    r.description = desc;
    r.cause = CauseKind::code;
    r.input_origin = origin;
    db.push_back(std::move(r));
  };
  auto direct_fs = [&](const char* name, const char* os, FsAttribute attr,
                       const char* desc) {
    Record r;
    r.id = next_id++;
    r.name = name;
    r.os = os;
    r.description = desc;
    r.cause = CauseKind::code;
    r.entity = DirectEntity::file_system;
    r.fs_attribute = attr;
    db.push_back(std::move(r));
  };
  auto direct_other = [&](const char* name, const char* os, DirectEntity e,
                          const char* desc) {
    Record r;
    r.id = next_id++;
    r.name = name;
    r.os = os;
    r.description = desc;
    r.cause = CauseKind::code;
    r.entity = e;
    db.push_back(std::move(r));
  };
  auto plain = [&](const char* name, const char* os, CauseKind cause,
                   const char* desc) {
    Record r;
    r.id = next_id++;
    r.name = name;
    r.os = os;
    r.description = desc;
    r.cause = cause;
    db.push_back(std::move(r));
  };

  // ===== Indirect / user input (51) =========================================
  const IndirectCategory UI = IndirectCategory::user_input;
  indirect("fingerd-gets-overflow", "BSD", UI,
           "fingerd reads the request line with gets(); long input smashes "
           "the stack (Morris worm vector)");
  indirect("syslog-msg-overflow", "SunOS", UI,
           "syslog() copies caller-supplied message into fixed buffer");
  indirect("talkd-username-overflow", "SunOS", UI,
           "talkd announcement with oversized user name overruns buffer");
  indirect("eject-arg-overflow", "Solaris", UI,
           "set-uid eject copies device argument unchecked");
  indirect("fdformat-arg-overflow", "Solaris", UI,
           "set-uid fdformat overflows on long device argument");
  indirect("mount-arg-overflow", "Linux", UI,
           "set-uid mount trusts argv path length");
  indirect("lprm-arg-overflow", "BSD", UI,
           "lprm job id argument overflows request buffer");
  indirect("login-term-overflow", "AIX", UI,
           "login copies terminal name argument into fixed array");
  indirect("passwd-fullname-overflow", "HP-UX", UI,
           "chfn/passwd gecos field longer than buffer corrupts heap");
  indirect("rdist-label-overflow", "BSD", UI,
           "set-uid rdist overflows while expanding command labels");
  indirect("xterm-font-arg-overflow", "X11", UI,
           "xterm -fn argument smashes setuid-root font path buffer");
  indirect("at-time-arg-overflow", "Solaris", UI,
           "at(1) date argument parser overflows static buffer");
  indirect("ps-environ-arg-overflow", "Digital UNIX", UI,
           "ps command-line display code overruns on long argv of inspected "
           "process");
  indirect("sendmail-d-option-overflow", "SunOS", UI,
           "sendmail -d debug level parsing writes past array end");
  indirect("ffbconfig-arg-overflow", "Solaris", UI,
           "set-uid ffbconfig -dev argument overflows");
  indirect("chkey-arg-overflow", "Solaris", UI,
           "chkey password argument overflows fixed buffer");
  indirect("df-path-overflow", "Digital UNIX", UI,
           "set-gid df overflows on long mount point argument");
  indirect("ordist-arg-overflow", "SunOS", UI,
           "ordist distfile argument overflow yields root");
  indirect("pset-arg-overflow", "IRIX", UI,
           "pset privileged utility overflows parsing processor list");
  indirect("nt-rasman-phonebook-overflow", "Windows NT", UI,
           "RAS phonebook entry name from dialog overflows service buffer");
  indirect("iis-url-overflow", "Windows NT", UI,
           "IIS .htr request with long URL overruns ISAPI buffer");
  indirect("netscape-server-method-overflow", "Windows NT", UI,
           "web server HTTP method token copied unchecked");
  indirect("pop3-user-overflow", "Linux", UI,
           "POP3 USER command argument overflows daemon buffer");
  indirect("imapd-login-overflow", "Linux", UI,
           "IMAP LOGIN literal longer than parse buffer gives remote root");
  indirect("ftpd-mkdir-overflow", "BSD", UI,
           "ftpd MKD path argument overflows while building reply");
  // Shell metacharacter / unescaped-input family.
  indirect("phf-cgi-newline", "UNIX", UI,
           "phf CGI passes user string to popen(); newline smuggles a "
           "second command");
  indirect("campas-cgi-metachar", "UNIX", UI,
           "campas CGI interpolates query into shell without quoting");
  indirect("majordomo-reply-metachar", "UNIX", UI,
           "majordomo passes Reply-To into shell command line");
  indirect("sendmail-pipe-alias", "SunOS", UI,
           "address of the form |program executed with daemon privilege");
  indirect("uudecode-target-path", "UNIX", UI,
           "uudecode writes to arbitrary path named inside the input");
  indirect("web-cgi-semicolon", "UNIX", UI,
           "guestbook CGI appends user field to mail command; ';' injects");
  indirect("nt-batch-caret", "Windows NT", UI,
           "batch wrapper passes user string to cmd.exe; special chars "
           "break out of the argument");
  indirect("formmail-recipient", "UNIX", UI,
           "formmail recipient field reaches the shell unsanitized");
  indirect("mailx-tilde-escape", "UNIX", UI,
           "mailx executes ~! escapes found in piped-in message bodies");
  indirect("expn-vrfy-pipe", "UNIX", UI,
           "SMTP VRFY of |program address runs the program");
  // Path-traversal / name-interpretation family.
  indirect("wu-ftpd-dotdot-chdir", "Linux", UI,
           "ftpd follows ../ in user path beyond the anonymous root");
  indirect("tftpd-absolute-path", "SunOS", UI,
           "tftpd serves any absolute path the client names");
  indirect("web-dotdot-url", "Windows NT", UI,
           "web server canonicalizes %2e%2e after access check");
  indirect("tar-absolute-extract", "UNIX", UI,
           "tar extracts archive member with absolute path over system "
           "file");
  indirect("turnin-dotdot-filename", "SunOS", UI,
           "turnin accepts ../ in submitted file names; extraction "
           "overwrites instructor files (this paper, Section 4.1)");
  indirect("nt-share-dotdot", "Windows NT", UI,
           "SMB path with .. escapes the share root");
  indirect("gopher-selector-path", "UNIX", UI,
           "gopherd treats selector as path relative to no root");
  indirect("httpd-null-byte-name", "UNIX", UI,
           "CGI filename check fooled by embedded NUL byte");
  indirect("lynx-lynxcgi-path", "UNIX", UI,
           "lynx trusts lynxcgi: URL path from remote document");
  indirect("nt-unc-device-name", "Windows NT", UI,
           "service opens user-named path; AUX/LPT device names hang it");
  // Format string / numeric interpretation.
  indirect("setuid-perror-format", "UNIX", UI,
           "setuid tool passes user string as printf format");
  indirect("syslog-user-format", "Linux", UI,
           "daemon logs user name as format string");
  indirect("nt-event-format", "Windows NT", UI,
           "event logger formats attacker-controlled insertion string");
  indirect("rsh-ruserok-username", "BSD", UI,
           "ruserok() trusts client-supplied remote user string");
  indirect("xdm-display-arg", "X11", UI,
           "xdm accepts display argument with shell characters");
  indirect("cron-jobname-newline", "UNIX", UI,
           "crontab entry name with newline injects a second job line");

  // ===== Indirect / environment variable (17) ===============================
  const IndirectCategory EV = IndirectCategory::environment_variable;
  indirect("path-relative-command", "UNIX", EV,
           "set-uid script runs bare command; attacker prepends own dir "
           "to PATH");
  indirect("path-dot-first", "UNIX", EV,
           "root tool searched '.' before system dirs via inherited PATH");
  indirect("ifs-token-split", "SunOS", EV,
           "IFS=/ makes /bin/sh parse system('/tmp/x') as 'bin sh tmp x'");
  indirect("ifs-vi-shell", "UNIX", EV,
           "vi shell escape honors attacker IFS in privileged context");
  indirect("ld-preload-setuid", "SunOS", EV,
           "LD_PRELOAD honored by set-uid binary loads attacker library");
  indirect("ld-library-path-setuid", "Solaris", EV,
           "LD_LIBRARY_PATH searched for privileged program's libraries");
  indirect("nlspath-format", "Linux", EV,
           "NLSPATH names attacker message catalog with format directives");
  indirect("term-overflow", "BSD", EV,
           "TERM value copied into fixed termcap buffer");
  indirect("termcap-entry-overflow", "Linux", EV,
           "TERMCAP variable parsed into static buffer by privileged "
           "program");
  indirect("home-dotfile-trust", "UNIX", EV,
           "privileged tool reads config from $HOME supplied by invoker");
  indirect("tz-overflow", "Solaris", EV,
           "TZ value longer than localtime() buffer");
  indirect("env-bash-env", "Linux", EV,
           "BASH_ENV executed by shell spawned from privileged program");
  indirect("printer-env-overflow", "IRIX", EV,
           "PRINTER variable overflows lp client buffer");
  indirect("mail-env-trust", "UNIX", EV,
           "MAIL variable names the mailbox a privileged reader opens");
  indirect("umask-inherited-zero", "UNIX", EV,
           "daemon inherits umask 0 from caller and creates writable "
           "files (mask is caller-controlled input)");
  indirect("nt-path-current-dir", "Windows NT", EV,
           "CreateProcess search order includes current directory from "
           "inherited environment");
  indirect("x11-xauthority-env", "X11", EV,
           "XAUTHORITY names the cookie file a privileged client reads");

  // ===== Indirect / file system input (5) ===================================
  const IndirectCategory FSI = IndirectCategory::file_system_input;
  indirect("rhosts-long-line", "BSD", FSI,
           "rlogind parses ~/.rhosts line into fixed buffer");
  indirect("ftpusers-parse-overflow", "SunOS", FSI,
           "ftpd reads oversized line from its own config file");
  indirect("motd-format", "Linux", FSI,
           "login prints /etc/motd content through a format function");
  indirect("queue-control-file-fields", "BSD", FSI,
           "lpd trusts file names listed inside spool control files");
  indirect("nt-ini-extension-trust", "Windows NT", FSI,
           "shell runs file by extension read from a writable .ini entry");

  // ===== Indirect / network input (8) =======================================
  const IndirectCategory NI = IndirectCategory::network_input;
  indirect("ping-of-death", "Windows NT", NI,
           "oversized fragmented ICMP echo crashes the IP stack");
  indirect("statd-packet-overflow", "SunOS", NI,
           "rpc.statd request packet overflows hostname field");
  indirect("dns-reply-long-name", "BSD", NI,
           "resolver copies over-long name from DNS reply into fixed "
           "buffer");
  indirect("nt-oob-nuke", "Windows NT", NI,
           "out-of-band TCP data with bad URG offset crashes netbios");
  indirect("talkd-hostname-reply", "Linux", NI,
           "talkd trusts oversized hostname in reply packet");
  indirect("snmp-community-overflow", "UNIX", NI,
           "SNMP agent overflows on long community string");
  indirect("router-rip-malformed", "UNIX", NI,
           "routed parses malformed RIP entry past table bounds");
  indirect("nfs-mount-reply-path", "SunOS", NI,
           "mount client trusts oversized path in mountd reply");

  // ===== Direct / file system: existence (20) ================================
  direct_fs("lpr-spool-preexisting", "BSD", FsAttribute::existence,
            "lpr create()s a spool temp file that an attacker created "
            "first (this paper, Section 3.4)");
  direct_fs("gcc-tmp-race", "UNIX", FsAttribute::existence,
            "cc writes predictable /tmp intermediate an attacker "
            "pre-creates");
  direct_fs("vi-recovery-file", "BSD", FsAttribute::existence,
            "vi -r recovery file in /tmp pre-created by attacker");
  direct_fs("mail-deadletter-race", "UNIX", FsAttribute::existence,
            "mail writes dead.letter at a predictable path as root");
  direct_fs("screen-socket-dir", "Linux", FsAttribute::existence,
            "screen trusts pre-existing /tmp/screens directory");
  direct_fs("uucp-lockfile", "UNIX", FsAttribute::existence,
            "uucico honors attacker-created device lock files");
  direct_fs("crontab-tmp-edit", "Solaris", FsAttribute::existence,
            "crontab -e edits predictable temp copy an attacker plants");
  direct_fs("at-spool-predictable", "Linux", FsAttribute::existence,
            "at job file name predictable; attacker pre-creates it");
  direct_fs("xauth-tmp-cookie", "X11", FsAttribute::existence,
            "xauth merges into pre-created cookie temp file");
  direct_fs("core-follow-existing", "SunOS", FsAttribute::existence,
            "kernel dumps core into existing attacker-created file");
  direct_fs("passwd-lockfile-race", "HP-UX", FsAttribute::existence,
            "passwd honors stale ptmp lock an attacker creates");
  direct_fs("lastlog-create-race", "AIX", FsAttribute::existence,
            "login appends to pre-created lastlog alternative");
  direct_fs("rdist-tmp-race", "BSD", FsAttribute::existence,
            "rdist creates predictable temp file without O_EXCL");
  direct_fs("inn-innd-tmp", "UNIX", FsAttribute::existence,
            "innd article spool temp pre-created by local user");
  direct_fs("httpd-upload-tmp", "UNIX", FsAttribute::existence,
            "web server stages uploads at guessable /tmp names");
  direct_fs("pppd-pidfile", "Linux", FsAttribute::existence,
            "pppd writes pid file over pre-existing attacker file");
  direct_fs("dump-rotate-race", "BSD", FsAttribute::existence,
            "dump rotates to fixed scratch path without exclusivity");
  direct_fs("sperl-tmp-mail", "Linux", FsAttribute::existence,
            "suidperl /tmp mail notification file pre-created");
  direct_fs("nt-spooler-tmp", "Windows NT", FsAttribute::existence,
            "print spooler reuses existing temp file in shared dir");
  direct_fs("admintool-lock-race", "Solaris", FsAttribute::existence,
            "admintool honors pre-created lock in world-writable dir");

  // ===== Direct / file system: symbolic link (6) =============================
  direct_fs("xterm-logfile-symlink", "X11", FsAttribute::symbolic_link,
            "xterm -lf follows symlink; root-owned log lands on "
            "/etc/passwd");
  direct_fs("binmail-mbox-symlink", "SunOS", FsAttribute::symbolic_link,
            "binmail appends as root through symlinked mailbox");
  direct_fs("ps-data-symlink", "Solaris", FsAttribute::symbolic_link,
            "ps writes /tmp/ps_data through attacker symlink");
  direct_fs("ldso-tmp-symlink", "Linux", FsAttribute::symbolic_link,
            "ld.so debug output follows symlink in /tmp");
  direct_fs("sendmail-autoreply-symlink", "UNIX", FsAttribute::symbolic_link,
            "autoreply writes through symlink with root privilege");
  direct_fs("nt-profile-junction", "Windows NT", FsAttribute::symbolic_link,
            "service writes through reparse point in shared profile dir");

  // ===== Direct / file system: permission (6) ================================
  direct_fs("mkdir-chmod-race", "SunOS", FsAttribute::permission,
            "mkdir/chmod sequence leaves window with writable dir");
  direct_fs("crontab-world-readable", "UNIX", FsAttribute::permission,
            "crontab copies installed world-readable exposing commands");
  direct_fs("savecore-world-writable", "BSD", FsAttribute::permission,
            "savecore creates dump files mode 666");
  direct_fs("syslog-socket-perms", "Linux", FsAttribute::permission,
            "syslog socket created writable by all, accepts forged "
            "entries");
  direct_fs("x11-socket-dir-perms", "X11", FsAttribute::permission,
            "X socket directory permissions allow replacement");
  direct_fs("nt-everyone-acl-file", "Windows NT", FsAttribute::permission,
            "service data file installed with Everyone:Full ACL");

  // ===== Direct / file system: ownership (3) =================================
  direct_fs("chown-after-write-race", "UNIX", FsAttribute::ownership,
            "daemon writes then chowns; attacker swaps file in between");
  direct_fs("uucp-owned-config", "UNIX", FsAttribute::ownership,
            "uucp config owned by uucp user; any uucp-owned process "
            "rewrites it to get root");
  direct_fs("mail-spool-chown", "SunOS", FsAttribute::ownership,
            "mail spool handed to user by chown while still open");

  // ===== Direct / file system: invariance (6) ================================
  direct_fs("passwd-edit-swap", "UNIX", FsAttribute::invariance,
            "file swapped between passwd's consistency check and write "
            "(TOCTTOU)");
  direct_fs("atrun-job-rename", "BSD", FsAttribute::invariance,
            "at job renamed after validation, before execution");
  direct_fs("lpd-control-file-swap", "BSD", FsAttribute::invariance,
            "print control file replaced between access check and read");
  direct_fs("ftpd-chroot-content", "UNIX", FsAttribute::invariance,
            "ftpd re-reads config inside chroot after attacker edits it");
  direct_fs("quota-file-replace", "SunOS", FsAttribute::invariance,
            "edquota writes back quota file replaced during edit");
  direct_fs("inetd-conf-reread", "UNIX", FsAttribute::invariance,
            "inetd re-reads config mid-update and runs partial line");

  // ===== Direct / file system: working directory (1) =========================
  direct_fs("relative-exec-cwd", "UNIX", FsAttribute::working_directory,
            "privileged tool started in attacker directory executes "
            "./helper relative to it");

  // ===== Direct / network (5) ===============================================
  direct_other("rlogin-addr-trust", "BSD", DirectEntity::network,
               "rlogind authenticates by source address; spoofed "
               "connection accepted (message authenticity)");
  direct_other("nfs-uid-spoof", "SunOS", DirectEntity::network,
               "NFS accepts requests with forged AUTH_UNIX credentials");
  direct_other("x11-open-display", "X11", DirectEntity::network,
               "X server accepts connections from any host; input snooped "
               "(entity trustability)");
  direct_other("dns-cache-poison", "UNIX", DirectEntity::network,
               "resolver caches unsolicited answer records from any "
               "responder");
  direct_other("tcp-seq-hijack-daemon", "BSD", DirectEntity::network,
               "daemon continues session after counterfeit packets "
               "violate the protocol exchange");

  // ===== Direct / process (1) ===============================================
  direct_other("ptrace-setuid-attach", "Linux", DirectEntity::process,
               "debugger attaches to privileged child; helper process "
               "trusted without verification");

  // ===== Other code faults, environment-irrelevant (13) ======================
  plain("kernel-int-overflow-syscall", "Linux", CauseKind::code,
        "integer overflow in syscall argument size computation");
  plain("refcount-off-by-one", "BSD", CauseKind::code,
        "file table reference count off-by-one frees live entry");
  plain("kernel-uninit-stack-leak", "SunOS", CauseKind::code,
        "uninitialized kernel stack bytes copied out to user space");
  plain("uid-compare-typo", "UNIX", CauseKind::code,
        "if (uid = 0) assignment instead of comparison grants root");
  plain("rand-seed-pid", "UNIX", CauseKind::code,
        "session key seeded with pid and time only");
  plain("crypt-salt-reuse", "UNIX", CauseKind::code,
        "password change reuses constant salt, weakening hashes");
  plain("double-free-heap", "Linux", CauseKind::code,
        "error path frees request buffer twice corrupting heap");
  plain("signal-handler-reentry", "BSD", CauseKind::code,
        "SIGCHLD handler calls non-reentrant allocator");
  plain("missing-setuid-drop", "UNIX", CauseKind::code,
        "daemon forgets to drop euid before optional feature code");
  plain("strncpy-no-nul", "UNIX", CauseKind::code,
        "strncpy fills buffer exactly, later strlen runs off the end");
  plain("bounds-check-sign", "Windows NT", CauseKind::code,
        "signed length check bypassed by negative value");
  plain("fd-leak-to-child", "UNIX", CauseKind::code,
        "privileged file descriptor left open across exec of user "
        "program");
  plain("nt-impersonation-leak", "Windows NT", CauseKind::code,
        "server thread keeps client token after request completes");

  // ===== Design errors, excluded (22) =======================================
  plain("telnet-cleartext", "UNIX", CauseKind::design,
        "telnet transmits credentials in clear text by design");
  plain("rlogin-trust-model", "BSD", CauseKind::design,
        "rhosts trust model authenticates hosts, not users");
  plain("nfs-stateless-auth", "SunOS", CauseKind::design,
        "NFS v2 trusts client-asserted identity by design");
  plain("smtp-no-auth", "UNIX", CauseKind::design,
        "SMTP accepts any envelope sender");
  plain("finger-info-disclosure", "UNIX", CauseKind::design,
        "finger exposes account inventory remotely");
  plain("tftp-no-auth", "UNIX", CauseKind::design,
        "TFTP requires no authentication at all");
  plain("x11-host-acl", "X11", CauseKind::design,
        "xhost grants whole hosts access to the display");
  plain("ftp-bounce", "UNIX", CauseKind::design,
        "FTP PORT command relays connections to third parties");
  plain("ip-source-route", "UNIX", CauseKind::design,
        "IP source routing lets sender dictate the reply path");
  plain("tcp-seq-predict", "BSD", CauseKind::design,
        "predictable initial sequence numbers enable spoofing");
  plain("icmp-redirect-trust", "UNIX", CauseKind::design,
        "hosts honor ICMP redirects from anyone");
  plain("arp-no-auth", "UNIX", CauseKind::design,
        "ARP replies accepted without any binding to the requester");
  plain("snmp-public-community", "UNIX", CauseKind::design,
        "SNMP v1 authentication is a cleartext community string");
  plain("nis-no-auth", "SunOS", CauseKind::design,
        "NIS serves maps to any client that knows the domain name");
  plain("portmapper-forward", "SunOS", CauseKind::design,
        "portmapper forwards requests, laundering their origin");
  plain("uucp-trust", "UNIX", CauseKind::design,
        "UUCP login shares one credential across sites");
  plain("routed-trust", "BSD", CauseKind::design,
        "routed accepts routing updates from any neighbor");
  plain("syslog-remote-no-auth", "UNIX", CauseKind::design,
        "remote syslog accepts forged log records");
  plain("dns-no-auth", "UNIX", CauseKind::design,
        "DNS responses carry no authentication by design");
  plain("http-basic-cleartext", "UNIX", CauseKind::design,
        "HTTP basic auth transmits passwords base64 only");
  plain("ppp-auth-optional", "UNIX", CauseKind::design,
        "PPP peers may simply decline authentication");
  plain("nt-lm-hash-weak", "Windows NT", CauseKind::design,
        "LM hash splits passwords into two 7-char halves");

  // ===== Configuration errors, excluded (5) ==================================
  plain("anon-ftp-writable-root", "UNIX", CauseKind::configuration,
        "anonymous FTP root left writable; incoming becomes a drop zone");
  plain("nis-netgroup-wildcard", "SunOS", CauseKind::configuration,
        "netgroup wildcard admits every host to rlogin");
  plain("sendmail-decode-alias", "UNIX", CauseKind::configuration,
        "decode alias pipes mail into uudecode as daemon");
  plain("nfs-export-world", "SunOS", CauseKind::configuration,
        "filesystem exported read-write to the world");
  plain("guest-default-password", "UNIX", CauseKind::configuration,
        "vendor ships guest account with documented password");

  // ===== Insufficient information, excluded (26) =============================
  for (int i = 1; i <= 26; ++i) {
    std::string name = "advisory-fragment-" + std::to_string(i);
    Record r;
    r.id = next_id++;
    r.name = name;
    r.os = i % 3 == 0 ? "Windows NT" : "UNIX";
    r.description =
        "vendor advisory reports a privilege escalation without "
        "describing the mechanism; cannot be classified";
    r.cause = CauseKind::insufficient_info;
    db.push_back(std::move(r));
  }

  return db;
}

}  // namespace

const std::vector<Record>& database() {
  static const std::vector<Record> db = build();
  return db;
}

}  // namespace ep::vulndb
