#include "vulndb/coverage.hpp"

#include <algorithm>
#include <set>

#include "core/catalog.hpp"
#include "core/fault_model.hpp"

namespace ep::vulndb {
namespace {

constexpr core::IndirectCategory kCauses[] = {
    core::IndirectCategory::user_input,
    core::IndirectCategory::environment_variable,
    core::IndirectCategory::file_system_input,
    core::IndirectCategory::network_input,
    core::IndirectCategory::process_input,
};

constexpr core::EnvAttribute kAttributes[] = {
    core::EnvAttribute::file_existence,
    core::EnvAttribute::file_ownership,
    core::EnvAttribute::file_permission,
    core::EnvAttribute::symbolic_link,
    core::EnvAttribute::file_content_invariance,
    core::EnvAttribute::file_name_invariance,
    core::EnvAttribute::working_directory,
    core::EnvAttribute::net_message_authenticity,
    core::EnvAttribute::net_protocol,
    core::EnvAttribute::net_socket_share,
    core::EnvAttribute::net_service_availability,
    core::EnvAttribute::net_entity_trustability,
    core::EnvAttribute::proc_message_authenticity,
    core::EnvAttribute::proc_trustability,
    core::EnvAttribute::proc_service_availability,
};

std::string cause_label(core::IndirectCategory c) {
  return "cause: " + std::string(core::to_string(c));
}

std::string attribute_label(core::EnvAttribute a) {
  return "attribute: " + std::string(core::to_string(a));
}

}  // namespace

std::vector<std::string> coverage_universe() {
  std::vector<std::string> out;
  for (core::IndirectCategory c : kCauses) out.push_back(cause_label(c));
  for (core::EnvAttribute a : kAttributes) out.push_back(attribute_label(a));
  std::sort(out.begin(), out.end());
  return out;
}

std::string coverage_class(core::FaultKind kind,
                           const std::string& fault_name) {
  const core::FaultCatalog& catalog = core::FaultCatalog::standard();
  if (kind == core::FaultKind::indirect) {
    if (const core::IndirectFault* f = catalog.find_indirect(fault_name))
      return cause_label(f->category);
    return {};
  }
  if (const core::DirectFault* f = catalog.find_direct(fault_name))
    return attribute_label(f->attribute);
  return {};
}

VulnCoverage vulnerability_coverage(
    const std::vector<core::CampaignResult>& results) {
  std::set<std::string> fired;
  for (const core::CampaignResult& r : results)
    for (const core::InjectionOutcome& o : r.injections) {
      if (!o.violated) continue;
      std::string label = coverage_class(o.kind, o.fault_name);
      if (!label.empty()) fired.insert(label);
    }
  VulnCoverage cov;
  for (const std::string& label : coverage_universe()) {
    if (fired.count(label))
      cov.fired.push_back(label);
    else
      cov.silent.push_back(label);
  }
  return cov;
}

}  // namespace ep::vulndb
