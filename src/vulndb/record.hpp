// The vulnerability database (Section 2.4).
//
// The paper classifies 195 records of the CERIAS vulnerability database
// under the EAI fault model. That database is private, so we carry a
// synthesized one of the same size and shape: each record describes a
// real-world-style flaw with *factual* features (does the flaw enter as
// input? from where? which entity attribute does it abuse?), and the
// classifier derives the EAI categories from those features using the
// Section 2.3 decision rules.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/fault_model.hpp"

namespace ep::vulndb {

/// Root cause classes. Design and configuration errors are excluded from
/// the paper's scope; insufficient-info records cannot be classified.
enum class CauseKind { code, design, configuration, insufficient_info };

/// Table 4's rows (the file-system attribute a direct fault abuses).
/// "invariance" covers the paper's content/name invariance column.
enum class FsAttribute {
  existence,
  symbolic_link,
  permission,
  ownership,
  invariance,
  working_directory,
};

struct Record {
  int id = 0;
  std::string name;  // short slug, e.g. "lpr-spool-symlink"
  std::string os;    // platform the report concerns
  std::string description;
  CauseKind cause = CauseKind::code;
  /// Does the fault reach the program as input (propagating via an
  /// internal entity)? If set, the record is an indirect-fault candidate.
  std::optional<core::IndirectCategory> input_origin;
  /// Otherwise: which environment entity's attribute does it abuse?
  std::optional<core::DirectEntity> entity;
  /// For file-system entities: the Table 4 attribute.
  std::optional<FsAttribute> fs_attribute;
};

std::string_view to_string(CauseKind c);
std::string_view to_string(FsAttribute a);

/// The 195-record database.
const std::vector<Record>& database();

}  // namespace ep::vulndb
