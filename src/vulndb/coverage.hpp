// Vulnerability-coverage adequacy: which EAI classes did a campaign fire?
//
// The EAI study (vulndb/classifier.hpp) classifies real vulnerabilities
// along two axes: the indirect cause categories of Table 2 (user input,
// environment variable, ...) and the direct environment attributes of
// Table 6 (file existence, protocol, ...). A perturbation campaign is
// *adequate* against that universe to the extent its observed violations
// actually exercised those classes — a campaign that only ever fires
// file-system faults says nothing about a daemon's protocol handling, no
// matter how many injections it ran. This is the "vulnerability coverage
// as an adequacy criterion" idea applied to the engine's own output:
// every violated injection outcome is mapped back through the fault
// catalog to its cause category or environment attribute, and the report
// is the fired fraction of the 20-class universe.
#pragma once

#include <string>
#include <vector>

#include "core/campaign.hpp"

namespace ep::vulndb {

/// The adequacy report for one campaign (or a whole sweep's worth).
struct VulnCoverage {
  /// Class labels whose faults produced at least one violation, sorted.
  std::vector<std::string> fired;
  /// Universe classes no violation touched, sorted.
  std::vector<std::string> silent;

  [[nodiscard]] int total() const {
    return static_cast<int>(fired.size() + silent.size());
  }
  [[nodiscard]] double fraction() const {
    return total() == 0 ? 0.0
                        : static_cast<double>(fired.size()) / total();
  }
};

/// The fixed 20-class universe, sorted: every Table 2 cause category
/// ("cause: user input", ...) and every Table 6 environment attribute
/// ("attribute: file existence", ...).
std::vector<std::string> coverage_universe();

/// Map one (fault kind, fault name) pair to its class label via the
/// standard catalog; empty when the name is unknown.
std::string coverage_class(core::FaultKind kind,
                           const std::string& fault_name);

/// Coverage over every violated injection outcome in `results`.
VulnCoverage vulnerability_coverage(
    const std::vector<core::CampaignResult>& results);

}  // namespace ep::vulndb
