// The EAI classifier: applies the Section 2.3 decision rules to database
// records and produces the aggregations behind Tables 1-4.
#pragma once

#include <map>
#include <string>

#include "vulndb/record.hpp"

namespace ep::vulndb {

/// How one record classifies under EAI.
enum class EaiClass {
  excluded_insufficient,  // not enough information
  excluded_design,        // design error: out of scope
  excluded_configuration, // configuration error: out of scope
  indirect,               // environment fault via internal entity
  direct,                 // environment fault via environment entity
  other,                  // code fault unrelated to the environment
};

EaiClass classify_record(const Record& r);

struct Classification {
  int total = 0;
  int insufficient = 0;
  int design = 0;
  int configuration = 0;
  /// Records actually classified (total minus the three exclusions) —
  /// the "142" of Section 2.4.
  int classified = 0;
  // Table 1
  int indirect = 0;
  int direct = 0;
  int other = 0;
  // Table 2
  std::map<core::IndirectCategory, int> indirect_by_category;
  // Table 3
  std::map<core::DirectEntity, int> direct_by_entity;
  // Table 4
  std::map<FsAttribute, int> fs_by_attribute;
};

Classification classify_all(const std::vector<Record>& records);

}  // namespace ep::vulndb
