#include "core/trace.hpp"

#include "core/catalog.hpp"

namespace ep::core {

void TraceRecorder::before(os::Kernel& /*k*/, os::SyscallCtx& ctx) {
  // Output and fault-report pseudo-syscalls are observations, not
  // environment interactions; they are not perturbation targets.
  if (ctx.call == "output" || ctx.call == "app_fault" ||
      ctx.call == "privileged_action" || ctx.call == "crash")
    return;
  if (!unit_filter_.empty() && ctx.site.unit != unit_filter_) return;
  for (auto& p : points_) {
    if (p.site == ctx.site) {
      ++p.hits;
      // One source region may both open an object and read it (or accept
      // a connection and receive from it): the interaction point has
      // input if any of its syscalls deliver input, and the input's
      // semantic comes from the first input-bearing syscall.
      if (ctx.has_input && !p.has_input) {
        p.has_input = true;
        p.semantic = infer_semantic(ctx);
      }
      return;
    }
  }
  InteractionPoint p;
  p.site = ctx.site;
  p.call = ctx.call;
  if (ctx.call == "arg")
    p.object = "argv[" + ctx.aux + "]";
  else if (ctx.call == "getenv")
    p.object = "$" + ctx.aux;
  else
    p.object = !ctx.path.empty() ? ctx.path : ctx.aux;
  p.has_input = ctx.has_input;
  p.kind = infer_object_kind(ctx);
  p.semantic = infer_semantic(ctx);
  p.channel_kind = ctx.channel_kind;
  p.hits = 1;
  points_.push_back(std::move(p));
}

}  // namespace ep::core
