// Campaign comparison: the before/after view of a repair.
//
// The methodology's workflow ends with fixing the unreasonable
// assumptions and re-testing ("we assume that faults found during testing
// are removed", Section 3.2). compare() diffs two campaign results over
// the same program pair — typically vulnerable vs hardened — and reports
// which (site, fault) outcomes improved, regressed, or remain open, plus
// the movement of the Figure 2 adequacy point.
#pragma once

#include <string>
#include <vector>

#include "core/campaign.hpp"

namespace ep::core {

struct OutcomeDelta {
  std::string site_tag;
  std::string fault_name;
  bool before_violated = false;
  bool after_violated = false;

  [[nodiscard]] bool improved() const {
    return before_violated && !after_violated;
  }
  [[nodiscard]] bool regressed() const {
    return !before_violated && after_violated;
  }
  [[nodiscard]] bool still_open() const {
    return before_violated && after_violated;
  }
};

struct Comparison {
  std::vector<OutcomeDelta> deltas;  // every (site, fault) seen in either
  /// Injections present in only one of the two campaigns (differing
  /// interaction structure after the repair is worth knowing about).
  std::vector<std::string> only_before;
  std::vector<std::string> only_after;
  AdequacyPoint before;
  AdequacyPoint after;

  [[nodiscard]] int improved_count() const;
  [[nodiscard]] int regressed_count() const;
  [[nodiscard]] int still_open_count() const;
  /// A repair is acceptable when nothing regressed.
  [[nodiscard]] bool safe() const { return regressed_count() == 0; }
};

Comparison compare(const CampaignResult& before, const CampaignResult& after);

std::string render_comparison(const Comparison& c);

}  // namespace ep::core
