// The fault injector (procedure step 6).
//
// Armed with one (site, fault) plan per run. Direct faults fire in the
// before-hook — the environment is perturbed *before* the interaction
// point — and indirect faults fire in the after-hook, rewriting the value
// the internal entity receives from the input. Each plan fires exactly
// once: at the first execution of its site.
#pragma once

#include <string>

#include "core/catalog.hpp"
#include "os/hooks.hpp"

namespace ep::core {

class Injector : public os::Interposer {
 public:
  /// `world` must outlive the injector (the campaign owns both).
  Injector(TargetWorld& world, os::Site site, FaultRef fault,
           ScenarioHints hints);

  void before(os::Kernel& k, os::SyscallCtx& ctx) override;
  void after(os::Kernel& k, os::SyscallCtx& ctx, Err result) override;

  /// Did the planned site execute and the fault actually fire?
  [[nodiscard]] bool fired() const { return fired_; }
  /// Original -> perturbed value, for indirect faults (report detail).
  [[nodiscard]] const std::string& original_input() const {
    return original_;
  }
  [[nodiscard]] const std::string& injected_input() const { return injected_; }

 private:
  TargetWorld& world_;
  os::Site site_;
  FaultRef fault_;
  ScenarioHints hints_;
  bool fired_ = false;
  std::string original_;
  std::string injected_;
};

}  // namespace ep::core
