// The distribution wire format (docs/WIRE_FORMAT.md): serialized
// InjectionPlans and per-shard campaign reports.
//
// The plan is the engine's unit of distribution. `epa_cli plan` writes
// InjectionPlan::to_json() to a file; any number of processes — on one
// machine or many — each read the same plan, drain only their shard's
// work items (stable id % shard_count == shard_index), and write a
// ShardReport. merge_shard_reports() recombines the shard files into the
// exact CampaignResult a single process would have produced: outcomes go
// to their plan-order slot by stable id, so the merge is deterministic
// regardless of shard count, arrival order, or how long each shard took.
//
// Everything here validates before it trusts: a malformed, truncated,
// version-skewed, or foreign file raises WireError with a message naming
// the field (and, for syntax errors, the line/column) that broke —
// callers turn that into a clean non-zero exit, never a raw terminate.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/executor.hpp"

namespace ep::core {

/// A plan or shard-report file that cannot be trusted: syntactically
/// malformed, wrong schema version, wrong kind, missing or inconsistent
/// fields, or shard sets that do not add back up to the plan.
class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Canonical JSON fragment helpers shared by every serializer so site and
/// violation objects look the same in plans, shard reports, and docs.
std::string json_site(const os::Site& s);
std::string json_violation(const Violation& v);

/// Parse and validate a serialized plan (the inverse of
/// InjectionPlan::to_json). Faults are re-resolved by name against this
/// build's FaultCatalog; the returned plan carries no world snapshot —
/// call refreeze_snapshot() to re-create the local COW prototype.
/// Throws WireError on any malformed or unsupported input.
InjectionPlan plan_from_json(const std::string& text);

/// Re-freeze the local COW prototype for a plan rebuilt from JSON (the
/// snapshot is never serialized — it is a per-process amortization, not
/// plan semantics). No-op when the scenario is not snapshot-safe, the
/// plan is empty, or a snapshot is already attached.
void refreeze_snapshot(InjectionPlan& plan, const Scenario& scenario);

/// The stable work-item ids shard `shard_index` (0-based) owns out of
/// `shard_count`: { id | id % shard_count == shard_index }, ascending.
/// Uneven divisions simply give the low-index shards one extra item.
std::vector<std::size_t> shard_item_ids(std::size_t total_items,
                                        std::size_t shard_index,
                                        std::size_t shard_count);

/// One shard's campaign output: the injection outcomes of exactly the
/// work items the shard owns, keyed by their stable plan ids.
struct ShardReport {
  int schema_version = kPlanSchemaVersion;
  std::string scenario_name;
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  /// Total items in the *whole* plan (not this shard) — merge uses it to
  /// reject shard files produced against a different plan.
  std::size_t plan_items = 0;
  std::vector<std::size_t> item_ids;  // parallel to outcomes
  std::vector<InjectionOutcome> outcomes;

  /// Canonical JSON (docs/WIRE_FORMAT.md): parse -> re-serialize
  /// reproduces the bytes verbatim.
  [[nodiscard]] std::string to_json() const;
};

/// Parse and validate a serialized shard report. Throws WireError on
/// malformed input, a foreign kind/version, ids outside the plan, ids
/// that belong to a different shard, or duplicate ids.
ShardReport shard_report_from_json(const std::string& text);

/// Drain one shard of the plan through the executor (worker pool and COW
/// snapshot path included) and package the outcomes as a ShardReport.
ShardReport run_shard(const Executor& executor, const InjectionPlan& plan,
                      std::size_t shard_index, std::size_t shard_count,
                      const ExecutorOptions& opts = {});

/// Recombine shard reports into the CampaignResult a single process would
/// have produced from this plan: outcome with id i lands in slot i, so
/// the result is bit-identical to a local `--jobs N` drain for any shard
/// count and any shard file order. Throws WireError unless the shard set
/// is complete and consistent: all shard_count shards present exactly
/// once, every report matching this plan's scenario and item count, and
/// the union of outcome ids covering every work item exactly once.
CampaignResult merge_shard_reports(const InjectionPlan& plan,
                                   const std::vector<ShardReport>& shards);

}  // namespace ep::core
