// The distribution wire format (docs/WIRE_FORMAT.md): serialized
// InjectionPlans and per-shard campaign reports.
//
// The plan is the engine's unit of distribution. `epa_cli plan` writes
// InjectionPlan::to_json() to a file; any number of processes — on one
// machine or many — each read the same plan, drain only their shard's
// work items (stable id % shard_count == shard_index), and write a
// ShardReport. merge_shard_reports() recombines the shard files into the
// exact CampaignResult a single process would have produced: outcomes go
// to their plan-order slot by stable id, so the merge is deterministic
// regardless of shard count, arrival order, or how long each shard took.
//
// Everything here validates before it trusts: a malformed, truncated,
// version-skewed, or foreign file raises WireError with a message naming
// the field (and, for syntax errors, the line/column) that broke —
// callers turn that into a clean non-zero exit, never a raw terminate.
#pragma once

#include <cstddef>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/executor.hpp"

namespace ep::core {

/// Version of the shard-report wire format. Version 2 is the compact
/// columnar encoding (one array per run-dependent field instead of one
/// object per outcome) with the `complete`/`completed_ids` partial-report
/// notion; version 3 admits the `redzone-corruption` violation policy
/// with the same columnar layout. The serializer always writes the
/// current version, and the reader still accepts versions 1 (the
/// row-oriented PR 3 format) and 2. Plans are versioned separately by
/// kPlanSchemaVersion.
inline constexpr int kShardSchemaVersion = 3;

/// Version of the binary wire encoding (docs/WIRE_FORMAT.md, "Binary
/// encoding"): the compact non-JSON framing of the same plan and
/// shard-report models, used by the same-host shared-memory data plane
/// (core/arena.hpp) and sized for the remote fleet's network framing.
/// Versioned independently of the JSON schema versions — the two
/// encodings carry identical information and decode to identical
/// in-memory values. Version 2 appends the `redzone-corruption` policy
/// ordinal; the layout is unchanged and version-1 frames stay decodable.
inline constexpr int kBinaryWireVersion = 2;

/// A plan or shard-report file that cannot be trusted: syntactically
/// malformed, wrong schema version, wrong kind, missing or inconsistent
/// fields, or shard sets that do not add back up to the plan.
class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Canonical JSON fragment helpers shared by every serializer so site and
/// violation objects look the same in plans, shard reports, and docs.
std::string json_site(const os::Site& s);
std::string json_violation(const Violation& v);

/// Parse and validate a serialized plan (the inverse of
/// InjectionPlan::to_json). Faults are re-resolved by name against this
/// build's FaultCatalog; the returned plan carries no world snapshot —
/// call refreeze_snapshot() to re-create the local COW prototype.
/// Throws WireError on any malformed or unsupported input.
InjectionPlan plan_from_json(const std::string& text);

/// Re-freeze the local COW prototype for a plan rebuilt from JSON (the
/// snapshot is never serialized — it is a per-process amortization, not
/// plan semantics). No-op when the scenario is not snapshot-safe, the
/// plan is empty, or a snapshot is already attached.
void refreeze_snapshot(InjectionPlan& plan, const Scenario& scenario);

/// The FEEDBACK payload (core/protocol.hpp): plan.items[begin, end)
/// encoded as one space-free token of comma-separated
/// `point:kind:fault:param` entries (kind is `i` or `d`, param plain
/// decimal — 0 for stock hints). The coordinator ships this to workers
/// whose serialized plan copy predates search-appended items; the worker
/// appends the parsed items under the same stable ids. Throws WireError
/// when the range is empty or does not fit the plan.
std::string feedback_spec(const InjectionPlan& plan, std::size_t begin,
                          std::size_t end);

/// The inverse: decode a FEEDBACK spec token back into work items,
/// re-resolving faults against this build's catalog. `point_count` is
/// the receiving plan's point count — entries referencing points past it
/// are rejected (a worker can only execute items whose interaction point
/// it already has). Throws WireError on any malformed entry.
std::vector<WorkItem> parse_feedback_spec(const std::string& spec,
                                          std::size_t point_count);

/// The stable work-item ids shard `shard_index` (0-based) owns out of
/// `shard_count`: { id | id % shard_count == shard_index }, ascending.
/// Uneven divisions simply give the low-index shards one extra item.
std::vector<std::size_t> shard_item_ids(std::size_t total_items,
                                        std::size_t shard_index,
                                        std::size_t shard_count);

/// One shard's campaign output: the injection outcomes of the work items
/// the shard owns, keyed by their stable plan ids. Ownership comes in two
/// flavors: the static modulo partition (`id % shard_count ==
/// shard_index`, PR 3's `run-shard --shard K/N`) and an explicit
/// *lease* (`leased == true`): the orchestrator hands a worker an
/// arbitrary id set, recorded verbatim in `assigned_ids`. A report may be
/// *partial* (`complete == false`): a preempted `run-shard` flushes the
/// outcomes it finished, and resume_shard() later drains only the missing
/// ids — the completed report is byte-identical to an uninterrupted run.
struct ShardReport {
  int schema_version = kShardSchemaVersion;
  std::string scenario_name;
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  /// Total items in the *whole* plan (not this shard) — merge uses it to
  /// reject shard files produced against a different plan.
  std::size_t plan_items = 0;
  /// Lease-based ownership: when true, this report owns exactly
  /// `assigned_ids` (ascending, unique, each < plan_items) and the
  /// modulo partition does not apply — shard_index/shard_count are fixed
  /// at 0/1 so a lease report cannot masquerade as a modulo shard. The
  /// field is an *optional* addition to schema_version 2: files without
  /// it keep the modulo meaning byte for byte.
  bool leased = false;
  std::vector<std::size_t> assigned_ids;
  /// True iff item_ids covers every id the shard owns. Derived, never
  /// free-floating: the serializer computes it and the parser rejects a
  /// file whose flag contradicts its completed_ids.
  bool complete = true;
  std::vector<std::size_t> item_ids;  // ascending; parallel to outcomes
  std::vector<InjectionOutcome> outcomes;

  /// Canonical JSON (docs/WIRE_FORMAT.md), always schema_version 2:
  /// parse -> re-serialize reproduces the bytes verbatim. Only the
  /// run-dependent outcome fields go on the wire (fired, crashed,
  /// overflows, exit_code, violations, exploit) — site/call/object/fault
  /// are already in the plan, keyed by id, and merge re-derives them.
  [[nodiscard]] std::string to_json() const;
};

/// Parse and validate a serialized shard report (version 2, or the
/// row-oriented version 1). Throws WireError on malformed input, a
/// foreign kind/version, ids outside the plan, ids that belong to a
/// different shard, duplicate or out-of-order ids, or a `complete` flag
/// that contradicts the ids actually present.
ShardReport shard_report_from_json(const std::string& text);

/// True when `data` starts with the binary wire magic — how file loaders
/// (epa_cli's load_plan) dispatch between the JSON and binary decoders
/// without trying one and falling back.
bool looks_like_binary_wire(const void* data, std::size_t size);
bool looks_like_binary_wire(const std::string& text);

/// The binary encodings (docs/WIRE_FORMAT.md, "Binary encoding"): a
/// sectioned little-framing with explicit endianness, total size, and a
/// validated section table. Canonical like the JSON side: decode ->
/// re-encode reproduces the bytes verbatim, and the decoders enforce
/// every invariant the JSON parsers do (same error messages where the
/// check is shared). Throws WireError on any malformed, truncated,
/// foreign-endian, or version-skewed input.
std::string plan_to_binary(const InjectionPlan& plan);
InjectionPlan plan_from_binary(const void* data, std::size_t size);
InjectionPlan plan_from_binary(const std::string& text);
std::string shard_report_to_binary(const ShardReport& report);
ShardReport shard_report_from_binary(const void* data, std::size_t size);
ShardReport shard_report_from_binary(const std::string& text);

/// Progress hooks for a preemptible shard drain. With checkpoint_every ==
/// 0 the drain is one uninterruptible pass and no intermediate flush
/// happens; with K > 0 the drain proceeds in ascending chunks of K items,
/// flushing the partial report after each chunk and polling `interrupted`
/// between chunks — a preempted drain returns a valid partial report
/// (complete == false) instead of losing the shard.
struct ShardDrainHooks {
  std::size_t checkpoint_every = 0;
  /// Called with the partial report after each completed chunk (not after
  /// the final one — the caller writes the returned report itself).
  std::function<void(const ShardReport&)> on_checkpoint;
  /// Polled before each chunk; returning true stops the drain early.
  std::function<bool()> interrupted;
};

/// Drain one shard of the plan through the executor (worker pool and COW
/// snapshot path included) and package the outcomes as a ShardReport.
ShardReport run_shard(const Executor& executor, const InjectionPlan& plan,
                      std::size_t shard_index, std::size_t shard_count,
                      const ExecutorOptions& opts = {},
                      const ShardDrainHooks& hooks = {});

/// Drain one dynamic lease — the id range [begin, end) — and package the
/// outcomes as a *leased* ShardReport (`assigned_ids` = the range). This
/// is the persistent-worker drain (core/orchestrator.hpp): one process
/// parses the plan and re-freezes the prototype once, then serves any
/// number of leases through this. Throws WireError when the range does
/// not fit the plan. `hooks` makes the drain preemptible mid-lease the
/// same way run_shard's is: with checkpoint_every > 0 a partial leased
/// report (complete == false) is flushed after each chunk and the drain
/// stops between chunks when `interrupted` fires.
ShardReport run_lease(const Executor& executor, const InjectionPlan& plan,
                      std::size_t begin, std::size_t end,
                      const ExecutorOptions& opts = {},
                      const ShardDrainHooks& hooks = {});

/// Complete a partial report: re-drain only the ids the shard owns but
/// `partial` lacks, and return the combined report — byte-identical to an
/// uninterrupted run_shard (outcomes are deterministic per item). Throws
/// WireError when the partial report does not belong to this plan
/// (scenario or item-count mismatch, ids outside the shard). A resumed
/// drain can itself be preempted again via `hooks`.
ShardReport resume_shard(const Executor& executor, const InjectionPlan& plan,
                         const ShardReport& partial,
                         const ExecutorOptions& opts = {},
                         const ShardDrainHooks& hooks = {});

/// Recombine shard reports into the CampaignResult a single process would
/// have produced from this plan: outcome with id i lands in slot i, so
/// the result is bit-identical to a local `--jobs N` drain for any shard
/// count and any shard file order. Two partition styles merge: a modulo
/// shard set (all shard_count shards present exactly once) or a lease
/// set (every report leased, `assigned_ids` disjoint and together
/// covering the plan — any disjoint id-partition works; the two styles
/// never mix in one merge). Throws WireError unless the set is complete
/// and consistent: every report matching this plan's scenario and item
/// count, and the union of outcome ids covering every work item exactly
/// once — any mix of v1, v2, and resumed reports merges, but genuinely
/// missing outcomes (an unresumed partial file) are still rejected.
/// `labels`, when given, is parallel to `shards` and names each report's
/// source (its file path on the CLI) in every diagnostic, so a failing
/// 7-shard merge is attributable to the offending file.
CampaignResult merge_shard_reports(const InjectionPlan& plan,
                                   const std::vector<ShardReport>& shards,
                                   const std::vector<std::string>& labels = {});

}  // namespace ep::core
