// The testing procedure of Section 3.3, steps 1-10, as an engine.
//
// A Scenario packages everything the procedure needs: how to build the
// benign world, how to run the test case, which security policy defines
// "violation", and (optionally) per-site fault lists — the analogue of the
// paper deciding, per interaction point, which Table 5/6 rows apply and
// which are "not applicable in this case".
//
// The engine is split into three layers (see planner.hpp, executor.hpp,
// scheduler.hpp):
//
//   * the Planner runs the trace-discovery pass and plans a fault list
//     per interaction point (steps 1-3), emitting a serializable
//     InjectionPlan of (site, fault) work items;
//   * the Executor drains the plan — one fresh TargetWorld per item —
//     across a configurable worker pool (steps 4-8), plus the Section 4.1
//     assumption analysis for each violating outcome;
//   * the MultiCampaign scheduler fans whole scenario suites through one
//     shared pool.
//
// Campaign is the single-scenario facade over the first two: execute()
// plans, then drains with CampaignOptions::jobs workers, and the result —
// fault coverage, interaction coverage, rho = count/n, the Figure 2
// adequacy region (steps 9-10) — is bit-identical for any worker count.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/catalog.hpp"
#include "core/coverage.hpp"
#include "core/oracle.hpp"
#include "core/trace.hpp"

namespace ep::core {

/// Per-site overrides: the scenario's judgment about an interaction point.
struct SiteSpec {
  /// Override the inferred object kind (ObjectKind::none = infer).
  ObjectKind kind = ObjectKind::none;
  std::optional<InputSemantic> semantic;
  /// Explicit fault list (catalog names). Empty = catalog defaults for the
  /// object kind / semantic.
  std::vector<std::string> faults;
  /// Faults deliberately not injected, with the reason — the paper's
  /// "attributes 5 and 6 are not applicable in this case". Documentation
  /// only; they are simply absent from `faults`.
  std::map<std::string, std::string> not_applicable;
  /// Exclude the site from perturbation entirely (it still counts as a
  /// discovered interaction point in the coverage denominator).
  bool skip = false;
};

struct Scenario {
  std::string name;
  std::string description;
  /// Build the benign world: file system, users, programs, network,
  /// registry. Called fresh for every injection run — unless the scenario
  /// declares snapshot_safe, in which case the engine may call it once
  /// and clone the frozen result per run.
  std::function<std::unique_ptr<TargetWorld>()> build;
  /// Scenario author's declaration that build() meets the snapshot-safety
  /// contract (see core/snapshot.hpp): deterministic, self-contained, no
  /// interposers. Opt-in — the engine only reuses worlds across runs when
  /// this is set, so an unsafe build() merely forfeits the speedup.
  bool snapshot_safe = false;
  /// Run the test case (spawn the target program(s)); returns the
  /// (last) exit code.
  std::function<int(TargetWorld&)> run;
  PolicySpec policy;
  ScenarioHints hints;
  std::map<std::string, SiteSpec> sites;  // keyed by Site::tag
  /// Restrict interaction-point discovery to this Site::unit (the program
  /// under test); empty = record every unit.
  std::string trace_unit_filter;
};

/// Could the perturbation that exposed a violation be effected by a real,
/// unprivileged actor in the benign world? (Section 4.1's "is this
/// assumption reasonable?")
struct Exploitability {
  bool nonroot_feasible = false;
  std::string actor;  // who could do it: "invoking user", "owner (ta)", ...
  std::string note;
};

struct InjectionOutcome {
  os::Site site;
  std::string call;
  std::string object;
  FaultKind kind = FaultKind::direct;
  std::string fault_name;
  std::string fault_description;
  bool fired = false;     // the planned site executed and the fault applied
  bool violated = false;  // >= 1 policy violation observed
  std::vector<Violation> violations;
  bool crashed = false;
  int overflows = 0;
  int exit_code = 0;
  Exploitability exploit;  // filled only for violated outcomes
};

struct CampaignResult {
  std::string scenario_name;
  std::vector<InteractionPoint> points;       // step 3: discovered
  std::set<std::string> perturbed_site_tags;  // sites actually perturbed
  std::vector<InjectionOutcome> injections;
  std::vector<Violation> benign_violations;  // should be empty

  [[nodiscard]] int n() const { return static_cast<int>(injections.size()); }
  [[nodiscard]] int violation_count() const;
  [[nodiscard]] int tolerated_count() const;
  /// Step 10: rho = count / n, the vulnerability assessment score.
  [[nodiscard]] double vulnerability_score() const;
  [[nodiscard]] double fault_coverage() const;  // 1 - rho
  [[nodiscard]] double interaction_coverage() const;
  [[nodiscard]] AdequacyPoint adequacy() const;
  [[nodiscard]] AdequacyRegion region(const AdequacyThresholds& t = {}) const;
  /// Violating outcomes whose perturbation an unprivileged actor could
  /// actually effect: candidate real vulnerabilities.
  [[nodiscard]] std::vector<const InjectionOutcome*> exploitable() const;
};

struct CampaignOptions {
  /// Step 9's stopping rule: keep perturbing sites until this fraction of
  /// interaction points is covered. 1.0 = all.
  double target_interaction_coverage = 1.0;
  /// Restrict to specific site tags (Figure 2's partial-coverage points);
  /// empty = honor target_interaction_coverage.
  std::vector<std::string> only_sites;
  std::uint64_t seed = 1;
  /// The paper's future-work reduction (see core/equivalence.hpp): inject
  /// only at one representative per injection-equivalence class. The
  /// other members still count as covered — the equivalence argument is
  /// precisely that their outcomes are determined by the representative's.
  bool merge_equivalent_sites = false;
  /// Worker threads draining the injection plan (see executor.hpp).
  /// 1 = serial. Any value yields the identical CampaignResult.
  int jobs = 1;
  /// Amortize world builds: plan a frozen prototype world for
  /// snapshot-safe scenarios and clone it per run (see core/snapshot.hpp).
  /// Off = the paper's original rebuild-per-run procedure (the CLI's
  /// --no-world-cache escape hatch). Either setting yields the identical
  /// CampaignResult; this only trades build time for clone time.
  bool use_world_cache = true;
  /// Validate redzone poison on syscalls and at run teardown (see
  /// os/redzone.hpp; the CLI's --no-redzone escape hatch). With no
  /// corruption, either setting yields the identical CampaignResult.
  bool use_redzone = true;
};

class Campaign {
 public:
  explicit Campaign(Scenario scenario);

  [[nodiscard]] CampaignResult execute(const CampaignOptions& opts = {});

 private:
  Scenario scenario_;
};

}  // namespace ep::core
