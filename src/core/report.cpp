#include "core/report.hpp"

#include <cstdio>
#include <map>

#include "core/wire.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace ep::core {

namespace {

std::string jstr(const std::string& s) { return ep::json_quote(s); }

std::string jnum(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  return buf;
}

}  // namespace

std::string render_summary_line(const CampaignResult& r) {
  return r.scenario_name + ": " + std::to_string(r.points.size()) +
         " interaction points, " + std::to_string(r.n()) +
         " perturbations, " + std::to_string(r.violation_count()) +
         " violations";
}

std::string render_shard_summary(const ShardReport& s) {
  int violated = 0;
  for (const auto& o : s.outcomes) violated += o.violated ? 1 : 0;
  return s.scenario_name + " shard " + std::to_string(s.shard_index + 1) +
         "/" + std::to_string(s.shard_count) + ": " +
         std::to_string(s.outcomes.size()) + " of " +
         std::to_string(s.plan_items) + " work items, " +
         std::to_string(violated) + " violations" +
         (s.complete ? "" : " [partial]");
}

std::string render_report(const CampaignResult& r) {
  std::string out;
  out += "=== Environment perturbation campaign: " + r.scenario_name +
         " ===\n\n";

  // Per-site rollup.
  struct Row {
    std::string call;
    std::string object;
    int injected = 0;
    int violated = 0;
    std::vector<std::string> violating_faults;
  };
  std::map<std::string, Row> rows;  // keyed by site tag, insertion via map
  std::vector<std::string> order;
  for (const auto& p : r.points) {
    if (!rows.count(p.site.tag)) order.push_back(p.site.tag);
    Row& row = rows[p.site.tag];
    row.call = p.call;
    row.object = p.object;
  }
  for (const auto& i : r.injections) {
    Row& row = rows[i.site.tag];
    ++row.injected;
    if (i.violated) {
      ++row.violated;
      row.violating_faults.push_back(i.fault_name);
    }
  }

  TextTable table({"interaction point", "call", "object", "faults injected",
                   "violations", "violating faults"});
  for (const auto& tag : order) {
    const Row& row = rows[tag];
    table.add_row({tag, row.call, row.object, std::to_string(row.injected),
                   std::to_string(row.violated),
                   ep::join(row.violating_faults, ", ")});
  }
  out += table.render();

  if (!r.benign_violations.empty()) {
    out += "\nWARNING: benign run already violates policy (" +
           std::to_string(r.benign_violations.size()) +
           " violations) - scenario misconfigured?\n";
  }

  out += "\nViolations:\n";
  for (const auto& i : r.injections) {
    if (!i.violated) continue;
    out += "  * " + i.site.tag + " / " + i.fault_name + " (" +
           std::string(to_string(i.kind)) + ")\n";
    for (const auto& v : i.violations)
      out += "      [" + std::string(to_string(v.policy)) + "] " + v.detail +
             "\n";
    out += "      assumption analysis: perturbation feasible by " +
           (i.exploit.actor.empty() ? std::string("?") : i.exploit.actor) +
           (i.exploit.nonroot_feasible
                ? " -> UNREASONABLE assumption: candidate vulnerability"
                : " -> assumption reasonable (protected by default)") +
           "\n";
  }

  out += "\nMetrics (Section 3.2/3.3):\n";
  out += "  interaction points discovered : " +
         std::to_string(r.points.size()) + "\n";
  out += "  interaction points perturbed  : " +
         std::to_string(r.perturbed_site_tags.size()) + "\n";
  out += "  faults injected (n)           : " + std::to_string(r.n()) + "\n";
  out += "  faults tolerated              : " +
         std::to_string(r.tolerated_count()) + "\n";
  out += "  violations (count)            : " +
         std::to_string(r.violation_count()) + "\n";
  out += "  interaction coverage          : " +
         ep::percent(static_cast<double>(r.perturbed_site_tags.size()),
                     static_cast<double>(r.points.size())) +
         "\n";
  out += "  fault coverage                : " +
         ep::percent(r.fault_coverage(), 1.0) + "\n";
  out += "  vulnerability score (rho)     : " +
         ep::percent(r.vulnerability_score(), 1.0) + "\n";
  out += "  adequacy region (Figure 2)    : " +
         std::string(to_string(r.region())) + "\n";
  out += "    -> " + std::string(region_meaning(r.region())) + "\n";

  auto exploitable = r.exploitable();
  out += "\nCandidate vulnerabilities (unreasonable assumptions): " +
         std::to_string(exploitable.size()) + "\n";
  for (const auto* i : exploitable)
    out += "  - " + i->site.tag + " / " + i->fault_name + " (by " +
           i->exploit.actor + "): " + i->exploit.note + "\n";
  return out;
}

std::string render_json(const CampaignResult& r) {
  std::string out = "{\n";
  out += "  \"schema_version\": " + std::to_string(kPlanSchemaVersion) +
         ",\n";
  out += "  \"scenario\": " + jstr(r.scenario_name) + ",\n";

  out += "  \"interaction_points\": [\n";
  for (std::size_t i = 0; i < r.points.size(); ++i) {
    const auto& p = r.points[i];
    out += "    {\"site\": " + jstr(p.site.tag) +
           ", \"call\": " + jstr(p.call) +
           ", \"object\": " + jstr(p.object) +
           ", \"kind\": " + jstr(std::string(to_string(p.kind))) +
           ", \"has_input\": " + (p.has_input ? "true" : "false") +
           ", \"hits\": " + std::to_string(p.hits) + "}";
    out += i + 1 < r.points.size() ? ",\n" : "\n";
  }
  out += "  ],\n";

  out += "  \"injections\": [\n";
  for (std::size_t i = 0; i < r.injections.size(); ++i) {
    const auto& inj = r.injections[i];
    out += "    {\"site\": " + jstr(inj.site.tag) +
           ", \"fault\": " + jstr(inj.fault_name) +
           ", \"kind\": " + jstr(std::string(to_string(inj.kind))) +
           ", \"fired\": " + (inj.fired ? "true" : "false") +
           ", \"violated\": " + (inj.violated ? "true" : "false") +
           ", \"crashed\": " + (inj.crashed ? "true" : "false") +
           ", \"exit_code\": " + std::to_string(inj.exit_code);
    if (inj.violated) {
      out += ", \"violations\": [";
      // Canonical violation objects (core/wire.hpp): the same shape the
      // shard-report wire format uses, so dashboards parse one schema.
      for (std::size_t v = 0; v < inj.violations.size(); ++v)
        out += std::string(v ? ", " : "") + json_violation(inj.violations[v]);
      out += "], \"exploit\": {\"nonroot_feasible\": " +
             std::string(inj.exploit.nonroot_feasible ? "true" : "false") +
             ", \"actor\": " + jstr(inj.exploit.actor) +
             ", \"note\": " + jstr(inj.exploit.note) + "}";
    }
    out += "}";
    out += i + 1 < r.injections.size() ? ",\n" : "\n";
  }
  out += "  ],\n";

  out += "  \"metrics\": {";
  out += "\"points\": " + std::to_string(r.points.size());
  out += ", \"perturbed\": " + std::to_string(r.perturbed_site_tags.size());
  out += ", \"injections\": " + std::to_string(r.n());
  out += ", \"violations\": " + std::to_string(r.violation_count());
  out += ", \"tolerated\": " + std::to_string(r.tolerated_count());
  out += ", \"interaction_coverage\": " + jnum(r.interaction_coverage());
  out += ", \"fault_coverage\": " + jnum(r.fault_coverage());
  out += ", \"vulnerability_score\": " + jnum(r.vulnerability_score());
  out += ", \"adequacy_region\": " +
         jstr(std::string(to_string(r.region())));
  out += ", \"benign_violations\": " +
         std::to_string(r.benign_violations.size());
  out += "}\n}\n";
  return out;
}

}  // namespace ep::core
