#include "core/fault_model.hpp"

namespace ep::core {

std::string_view to_string(FaultKind k) {
  switch (k) {
    case FaultKind::indirect: return "indirect";
    case FaultKind::direct: return "direct";
  }
  return "?";
}

std::string_view to_string(IndirectCategory c) {
  switch (c) {
    case IndirectCategory::user_input: return "user input";
    case IndirectCategory::environment_variable: return "environment variable";
    case IndirectCategory::file_system_input: return "file system input";
    case IndirectCategory::network_input: return "network input";
    case IndirectCategory::process_input: return "process input";
  }
  return "?";
}

std::string_view to_string(DirectEntity e) {
  switch (e) {
    case DirectEntity::file_system: return "file system";
    case DirectEntity::network: return "network";
    case DirectEntity::process: return "process";
  }
  return "?";
}

std::string_view to_string(InputSemantic s) {
  switch (s) {
    case InputSemantic::file_name: return "file name + directory name";
    case InputSemantic::command: return "command";
    case InputSemantic::path_list: return "execution path + library path";
    case InputSemantic::permission_mask: return "permission mask";
    case InputSemantic::file_extension: return "file extension";
    case InputSemantic::ip_address: return "IP address";
    case InputSemantic::packet: return "packet";
    case InputSemantic::host_name: return "host name";
    case InputSemantic::dns_reply: return "DNS reply";
    case InputSemantic::ipc_message: return "message";
  }
  return "?";
}

std::string_view to_string(EnvAttribute a) {
  switch (a) {
    case EnvAttribute::file_existence: return "file existence";
    case EnvAttribute::file_ownership: return "file ownership";
    case EnvAttribute::file_permission: return "file permission";
    case EnvAttribute::symbolic_link: return "symbolic link";
    case EnvAttribute::file_content_invariance: return "file content invariance";
    case EnvAttribute::file_name_invariance: return "file name invariance";
    case EnvAttribute::working_directory: return "working directory";
    case EnvAttribute::net_message_authenticity: return "message authenticity";
    case EnvAttribute::net_protocol: return "protocol";
    case EnvAttribute::net_socket_share: return "socket";
    case EnvAttribute::net_service_availability: return "service availability";
    case EnvAttribute::net_entity_trustability: return "entity trustability";
    case EnvAttribute::proc_message_authenticity:
      return "message authenticity (process)";
    case EnvAttribute::proc_trustability: return "process trustability";
    case EnvAttribute::proc_service_availability:
      return "service availability (process)";
  }
  return "?";
}

std::string_view to_string(ObjectKind k) {
  switch (k) {
    case ObjectKind::file: return "file";
    case ObjectKind::directory: return "directory";
    case ObjectKind::exec_binary: return "exec binary";
    case ObjectKind::net_inbound: return "inbound connection";
    case ObjectKind::net_service: return "network service";
    case ObjectKind::ipc_service: return "ipc service";
    case ObjectKind::registry_key: return "registry key";
    case ObjectKind::user_input: return "user input";
    case ObjectKind::env_var: return "environment variable";
    case ObjectKind::none: return "none";
  }
  return "?";
}

}  // namespace ep::core
