#include "core/catalog.hpp"

#include <optional>

#include "os/world.hpp"
#include "util/strings.hpp"

namespace ep::core {

namespace {

using os::Ino;
using os::Kernel;
using os::ResolvedParent;
using os::SyscallCtx;

// --- helpers shared by the direct perturbers --------------------------------

/// Locate the object the interaction names, resolving as root relative to
/// the calling process's cwd. Returns nothing when the interaction has no
/// path operand (perturber becomes a no-op; the campaign should not have
/// planned it for such a site).
std::optional<ResolvedParent> locate(TargetWorld& w, const SyscallCtx& ctx) {
  if (ctx.path.empty() || ctx.pid < 0 || !w.kernel.has_proc(ctx.pid))
    return std::nullopt;
  const os::Process& p = w.kernel.proc(ctx.pid);
  std::string path = ctx.path;
  // An exec of a bare command resolves through $PATH; the perturbation
  // must land on the binary the search would find, not on a file named
  // like the command in the current directory.
  if (ctx.call == "exec" && !ep::contains(path, "/")) {
    std::string search = "/bin:/usr/bin";
    if (auto it = p.env.find("PATH"); it != p.env.end()) search = it->second;
    for (const auto& dir : ep::split_nonempty(search, ':')) {
      std::string candidate = os::path::join(dir, path);
      auto r = w.kernel.vfs().resolve(candidate, p.cwd, os::kRootUid,
                                      os::kRootGid);
      if (r.ok()) {
        path = candidate;
        break;
      }
    }
  }
  auto rp = w.kernel.vfs().resolve_parent(path, p.cwd, os::kRootUid,
                                          os::kRootGid);
  if (!rp.ok()) return std::nullopt;
  return rp.value();
}

constexpr const char* kPlantedContent =
    "planted-by-perturbation: pre-existing file\n";

/// The victim a symbolic-link perturbation points at, chosen by what the
/// program is about to do with the object (Table 6: "change the target it
/// links to" — an attacker picks the most damaging target).
std::string pick_link_victim(TargetWorld& w, const SyscallCtx& ctx,
                             const ScenarioHints& h,
                             const ResolvedParent& rp) {
  if (auto it = h.link_victims.find(ctx.site.tag); it != h.link_victims.end())
    return it->second;
  if (rp.leaf_ino != os::kNoIno &&
      w.kernel.vfs().inode(rp.leaf_ino).is_dir())
    return h.dir_victim;
  if (ctx.call == "exec") return h.evil_program;
  // Write-ish opens aim at the integrity victim; read-only opens aim at
  // the secret (disclosure) victim.
  if (ctx.call == "open" && ep::contains(ctx.aux, "w")) return h.symlink_victim;
  if (ctx.call == "open" || ctx.call == "read") return h.secret_victim;
  return h.symlink_victim;
}

void perturb_existence(TargetWorld& w, SyscallCtx& ctx,
                       const ScenarioHints& /*h*/) {
  auto rp = locate(w, ctx);
  if (!rp) return;
  if (rp->leaf_ino != os::kNoIno) {
    // "delete an existing file"
    w.kernel.vfs().detach(rp->dir_ino, rp->leaf);
  } else {
    // "make a non-existing file exist" — as someone else's file, which is
    // what an attacker racing the program would leave there.
    (void)w.kernel.vfs().create_file(rp->dir_ino, rp->leaf, os::kRootUid,
                                     os::kRootGid, 0600, kPlantedContent);
  }
}

void perturb_ownership(TargetWorld& w, SyscallCtx& ctx,
                       const ScenarioHints& h) {
  auto rp = locate(w, ctx);
  if (!rp) return;
  if (rp->leaf_ino == os::kNoIno) {
    (void)w.kernel.vfs().create_file(rp->dir_ino, rp->leaf, h.attacker_uid,
                                     h.attacker_gid, 0600, kPlantedContent);
    return;
  }
  os::Inode& node = w.kernel.vfs().mutate(rp->leaf_ino);
  // "change ownership to the owner of the process, other normal users, or
  // root" — pick whichever actually changes the situation.
  if (node.uid == h.attacker_uid) {
    node.uid = os::kRootUid;
    node.gid = os::kRootGid;
  } else {
    node.uid = h.attacker_uid;
    node.gid = h.attacker_gid;
  }
}

void perturb_permission(TargetWorld& w, SyscallCtx& ctx,
                        const ScenarioHints& /*h*/) {
  auto rp = locate(w, ctx);
  if (!rp) return;
  if (rp->leaf_ino == os::kNoIno) {
    (void)w.kernel.vfs().create_file(rp->dir_ino, rp->leaf, os::kRootUid,
                                     os::kRootGid, 0600, kPlantedContent);
    return;
  }
  os::Inode& node = w.kernel.vfs().mutate(rp->leaf_ino);
  // "flip the permission bit": restrict if the object is accessible to
  // others, loosen if it is locked down — either direction breaks an
  // assumption the program may hold.
  unsigned setuid = node.mode & os::kSetUidBit;
  if (node.mode & 0066)
    node.mode = 0600 | setuid;
  else
    node.mode = 0666 | setuid;
}

void perturb_symlink(TargetWorld& w, SyscallCtx& ctx, const ScenarioHints& h) {
  auto rp = locate(w, ctx);
  if (!rp) return;
  std::string victim = pick_link_victim(w, ctx, h, *rp);
  if (rp->leaf_ino != os::kNoIno &&
      w.kernel.vfs().inode(rp->leaf_ino).is_symlink()) {
    // "if the file is a symbolic link, change the target it links to"
    w.kernel.vfs().mutate(rp->leaf_ino).content = victim;
    return;
  }
  // "if the file is not a symbolic link, change it to a symbolic link"
  w.kernel.vfs().detach(rp->dir_ino, rp->leaf);
  (void)w.kernel.vfs().create_symlink(rp->dir_ino, rp->leaf, h.attacker_uid,
                                      h.attacker_gid, victim);
}

void perturb_content(TargetWorld& w, SyscallCtx& ctx, const ScenarioHints& h) {
  auto rp = locate(w, ctx);
  if (!rp || rp->leaf_ino == os::kNoIno) return;
  if (!w.kernel.vfs().inode(rp->leaf_ino).is_regular()) return;
  os::Inode& node = w.kernel.vfs().mutate(rp->leaf_ino);
  auto it = h.content_payloads.find(ctx.site.tag);
  node.content = it != h.content_payloads.end()
                     ? it->second
                     : "TAMPERED-BY-ATTACKER\n" + h.attacker_dir + "/loot\n";
}

void perturb_name(TargetWorld& w, SyscallCtx& ctx, const ScenarioHints& /*h*/) {
  auto rp = locate(w, ctx);
  if (!rp || rp->leaf_ino == os::kNoIno) return;
  (void)w.kernel.vfs().rename_entry(rp->dir_ino, rp->leaf, rp->dir_ino,
                                    rp->leaf + ".moved");
}

void perturb_workdir(TargetWorld& w, SyscallCtx& ctx, const ScenarioHints& h) {
  if (ctx.pid < 0 || !w.kernel.has_proc(ctx.pid)) return;
  // "start application in different directory" — relocate the process to
  // attacker-controlled ground so relative paths land there.
  auto r = w.kernel.vfs().resolve(h.attacker_dir, "/", os::kRootUid,
                                  os::kRootGid);
  w.kernel.proc(ctx.pid).cwd = r.ok() ? h.attacker_dir : "/tmp";
}

// --- indirect payload builders ----------------------------------------------

std::string lengthen(const std::string& s, std::size_t n) {
  std::string out = s.empty() ? "A" : s;
  while (out.size() < n) out += out.size() < 64 ? out : std::string(64, 'A');
  return out.substr(0, n);
}

std::string badly_formatted(const std::string& tag) {
  std::string s = tag + ":";
  s += '\x01';
  s += '\xff';
  s += "%n%s%x;`&|";
  s += '\x00';  // embedded NUL
  s += "\x7f\x1b[2J";
  return s;
}

}  // namespace

// --- catalog construction ----------------------------------------------------

const FaultCatalog& FaultCatalog::standard() {
  // Magic-static: initialization is thread-safe, and the instance is
  // const — no mutation path exists after this returns.
  static const FaultCatalog instance;
  return instance;
}

void FaultCatalog::build() {
  using IC = IndirectCategory;
  using IS = InputSemantic;

  auto add_ind = [&](IC cat, IS sem, std::string name, std::string desc,
                     std::function<std::string(const std::string&,
                                               const ScenarioHints&)>
                         fn) {
    indirect_.push_back(
        {cat, sem, std::move(name), std::move(desc), std::move(fn)});
  };

  // ---- Table 5, User Input / file name + directory name --------------------
  add_ind(IC::user_input, IS::file_name, "change-length",
          "change length of the file name",
          [](const std::string& s, const ScenarioHints& h) {
            return lengthen(s, h.long_length);
          });
  add_ind(IC::user_input, IS::file_name, "use-relative-path",
          "use relative path in the name",
          [](const std::string& s, const ScenarioHints&) {
            if (ep::starts_with(s, "/")) return "." + s;
            return "./" + s;
          });
  add_ind(IC::user_input, IS::file_name, "use-absolute-path",
          "use absolute path in the name",
          [](const std::string& s, const ScenarioHints& h) {
            (void)s;
            return h.secret_victim;  // the absolute name an attacker submits
          });
  add_ind(IC::user_input, IS::file_name, "insert-dotdot",
          "insert special characters such as \"..\" in the name",
          [](const std::string& s, const ScenarioHints&) {
            return "../" + s;
          });
  add_ind(IC::user_input, IS::file_name, "insert-slash",
          "insert special characters such as \"/\" in the name",
          [](const std::string& s, const ScenarioHints&) {
            return "sub/" + s;
          });

  // ---- Table 5, User Input / command ---------------------------------------
  add_ind(IC::user_input, IS::command, "cmd-change-length",
          "change length of the command",
          [](const std::string& s, const ScenarioHints& h) {
            return lengthen(s, h.long_length);
          });
  add_ind(IC::user_input, IS::command, "cmd-use-relative-path",
          "use relative path for the command",
          [](const std::string& s, const ScenarioHints&) {
            return "./" + s;
          });
  add_ind(IC::user_input, IS::command, "cmd-use-absolute-path",
          "use absolute path for the command",
          [](const std::string& s, const ScenarioHints& h) {
            (void)s;
            return h.evil_program;
          });
  add_ind(IC::user_input, IS::command, "cmd-insert-shell-meta",
          "insert special characters such as \";\", \"|\", \"&\"",
          [](const std::string& s, const ScenarioHints& h) {
            return s + ";" + h.evil_program;
          });
  add_ind(IC::user_input, IS::command, "cmd-insert-newline",
          "insert newline in the command",
          [](const std::string& s, const ScenarioHints& h) {
            return s + "\n" + h.evil_program;
          });

  // ---- Table 5, Environment Variable / execution + library path ------------
  add_ind(IC::environment_variable, IS::path_list, "path-change-length",
          "change length of the path list",
          [](const std::string& s, const ScenarioHints& h) {
            std::string out = s;
            while (out.size() < h.long_length)
              out += ":/" + std::string(63, 'p');
            return out;
          });
  add_ind(IC::environment_variable, IS::path_list, "path-rearrange-order",
          "rearrange order of paths",
          [](const std::string& s, const ScenarioHints&) {
            auto parts = ep::split_nonempty(s, ':');
            std::reverse(parts.begin(), parts.end());
            return ep::join(parts, ":");
          });
  add_ind(IC::environment_variable, IS::path_list, "path-insert-untrusted",
          "insert an untrusted path",
          [](const std::string& s, const ScenarioHints& h) {
            return h.attacker_dir + (s.empty() ? "" : ":" + s);
          });
  add_ind(IC::environment_variable, IS::path_list, "path-use-incorrect",
          "use incorrect path",
          [](const std::string& s, const ScenarioHints&) {
            (void)s;
            return "/nonexistent/bin:/no/such/dir";
          });
  add_ind(IC::environment_variable, IS::path_list, "path-use-recursive",
          "use recursive path",
          [](const std::string& s, const ScenarioHints&) {
            auto parts = ep::split_nonempty(s, ':');
            std::vector<std::string> out;
            for (const auto& p : parts) out.push_back(p + "/../" + p);
            return ep::join(out, ":");
          });

  // ---- Table 5, Environment Variable / permission mask ---------------------
  add_ind(IC::environment_variable, IS::permission_mask, "mask-zero",
          "change mask to 0 so it will not mask any permission bit",
          [](const std::string& s, const ScenarioHints&) {
            (void)s;
            return "0";
          });

  // ---- Table 5, File System Input / file name + directory name -------------
  add_ind(IC::file_system_input, IS::file_name, "fsin-change-length",
          "change length of the name read from the file system",
          [](const std::string& s, const ScenarioHints& h) {
            return lengthen(s, h.long_length);
          });
  add_ind(IC::file_system_input, IS::file_name, "fsin-use-relative-path",
          "use relative path in the name",
          [](const std::string& s, const ScenarioHints&) {
            return "../" + s;
          });
  add_ind(IC::file_system_input, IS::file_name, "fsin-use-absolute-path",
          "use absolute path in the name",
          [](const std::string& s, const ScenarioHints& h) {
            (void)s;
            return h.symlink_victim;
          });
  add_ind(IC::file_system_input, IS::file_name, "fsin-special-chars",
          "use special characters such as \";\", \"&\" or \"/\" in the name",
          [](const std::string& s, const ScenarioHints&) {
            return s + ";&/";
          });

  // ---- Table 5, File System Input / file extension --------------------------
  add_ind(IC::file_system_input, IS::file_extension, "ext-change",
          "change to other file extensions like \".exe\"",
          [](const std::string& s, const ScenarioHints&) {
            auto dot = s.rfind('.');
            return (dot == std::string::npos ? s : s.substr(0, dot)) + ".exe";
          });
  add_ind(IC::file_system_input, IS::file_extension, "ext-change-length",
          "change length of file extension",
          [](const std::string& s, const ScenarioHints&) {
            return s + "." + std::string(300, 'e');
          });

  // ---- Table 5, Network Input -----------------------------------------------
  add_ind(IC::network_input, IS::ip_address, "ip-change-length",
          "change length of the address",
          [](const std::string& s, const ScenarioHints&) {
            return s + "." + ep::repeat("999.", 64) + "1";
          });
  add_ind(IC::network_input, IS::ip_address, "ip-bad-format",
          "use bad-formatted address",
          [](const std::string& s, const ScenarioHints&) {
            (void)s;
            return badly_formatted("ip");
          });
  add_ind(IC::network_input, IS::packet, "packet-change-size",
          "change size of the packet",
          [](const std::string& s, const ScenarioHints& h) {
            return lengthen(s, h.long_length);
          });
  add_ind(IC::network_input, IS::packet, "packet-bad-format",
          "use bad-formatted packet",
          [](const std::string& s, const ScenarioHints&) {
            (void)s;
            return badly_formatted("packet");
          });
  add_ind(IC::network_input, IS::host_name, "host-change-length",
          "change length of host name",
          [](const std::string& s, const ScenarioHints& h) {
            return lengthen(s, h.long_length / 4) + ".evil.example";
          });
  add_ind(IC::network_input, IS::host_name, "host-bad-format",
          "use bad-formatted host name",
          [](const std::string& s, const ScenarioHints&) {
            (void)s;
            return badly_formatted("host") + "..bad..";
          });
  add_ind(IC::network_input, IS::dns_reply, "dns-change-length",
          "change length of the DNS reply",
          [](const std::string& s, const ScenarioHints& h) {
            return lengthen(s, h.long_length);
          });
  add_ind(IC::network_input, IS::dns_reply, "dns-bad-format",
          "use bad-formatted reply",
          [](const std::string& s, const ScenarioHints&) {
            (void)s;
            return badly_formatted("dns");
          });

  // ---- Table 5, Process Input ------------------------------------------------
  add_ind(IC::process_input, IS::ipc_message, "msg-change-length",
          "change length of the message",
          [](const std::string& s, const ScenarioHints& h) {
            return lengthen(s, h.long_length);
          });
  add_ind(IC::process_input, IS::ipc_message, "msg-bad-format",
          "use bad-formatted message",
          [](const std::string& s, const ScenarioHints&) {
            (void)s;
            return badly_formatted("msg");
          });

  // ==== Table 6, File System ===================================================
  using DE = DirectEntity;
  using EA = EnvAttribute;
  auto add_dir = [&](DE e, EA a, std::string name, std::string desc,
                     std::function<void(TargetWorld&, SyscallCtx&,
                                        const ScenarioHints&)>
                         fn,
                     bool extension = false) {
    direct_.push_back({e, a, std::move(name), std::move(desc), extension,
                       std::move(fn)});
  };

  add_dir(DE::file_system, EA::file_existence, "file-existence",
          "delete an existing file or make a non-existing file exist",
          perturb_existence);
  add_dir(DE::file_system, EA::file_ownership, "file-ownership",
          "change ownership to the owner of the process, other normal "
          "users, or root",
          perturb_ownership);
  add_dir(DE::file_system, EA::file_permission, "file-permission",
          "flip the permission bit", perturb_permission);
  add_dir(DE::file_system, EA::symbolic_link, "symbolic-link",
          "change the symlink target, or turn the file into a symlink",
          perturb_symlink);
  add_dir(DE::file_system, EA::file_content_invariance, "content-invariance",
          "modify file", perturb_content);
  add_dir(DE::file_system, EA::file_name_invariance, "name-invariance",
          "change file name", perturb_name);
  add_dir(DE::file_system, EA::working_directory, "working-directory",
          "start application in different directory", perturb_workdir);

  // ==== Table 6, Network =======================================================
  add_dir(DE::network, EA::net_message_authenticity, "message-authenticity",
          "make the message come from another network entity",
          [](TargetWorld& w, SyscallCtx&, const ScenarioHints&) {
            w.network.spoof_next_inbound("attacker-host");
          });
  add_dir(DE::network, EA::net_protocol, "protocol-omit-step",
          "purposely violate the protocol by omitting a step",
          [](TargetWorld& w, SyscallCtx&, const ScenarioHints&) {
            w.network.perturb_protocol(net::ProtocolFault::omit_step);
          });
  add_dir(DE::network, EA::net_protocol, "protocol-extra-step",
          "purposely violate the protocol by adding an extra step",
          [](TargetWorld& w, SyscallCtx&, const ScenarioHints&) {
            w.network.perturb_protocol(net::ProtocolFault::extra_step);
          });
  add_dir(DE::network, EA::net_protocol, "protocol-reorder",
          "purposely violate the protocol by reordering steps",
          [](TargetWorld& w, SyscallCtx&, const ScenarioHints&) {
            w.network.perturb_protocol(net::ProtocolFault::reorder_steps);
          });
  add_dir(DE::network, EA::net_socket_share, "socket-share",
          "share the socket with another process",
          [](TargetWorld& w, SyscallCtx&, const ScenarioHints&) {
            w.network.share_inbound_socket();
          });
  add_dir(DE::network, EA::net_service_availability, "service-availability",
          "deny the service that the application is asking for",
          [](TargetWorld& w, SyscallCtx& ctx, const ScenarioHints&) {
            w.network.set_service_available(ctx.path, false);
          });
  add_dir(DE::network, EA::net_entity_trustability, "entity-trustability",
          "change the entity the application interacts with to an "
          "untrusted one",
          [](TargetWorld& w, SyscallCtx& ctx, const ScenarioHints&) {
            if (ctx.call == "connect" || ctx.call == "query")
              w.network.set_service_trusted(ctx.path, false);
            else
              w.network.distrust_inbound();
          });

  // ==== Table 6, Process =======================================================
  add_dir(DE::process, EA::proc_message_authenticity,
          "proc-message-authenticity",
          "make the message come from another process than expected",
          [](TargetWorld& w, SyscallCtx&, const ScenarioHints&) {
            w.network.spoof_next_inbound("attacker-process");
          });
  add_dir(DE::process, EA::proc_trustability, "proc-trustability",
          "change the process the application interacts with to an "
          "untrusted one",
          [](TargetWorld& w, SyscallCtx& ctx, const ScenarioHints&) {
            if (ctx.call == "connect" || ctx.call == "query")
              w.network.set_service_trusted(ctx.path, false);
            else
              w.network.distrust_inbound();
          });
  add_dir(DE::process, EA::proc_service_availability, "proc-availability",
          "deny the service the helper process provides",
          [](TargetWorld& w, SyscallCtx& ctx, const ScenarioHints&) {
            w.network.set_service_available(ctx.path, false);
          });

  // ==== Registry extension (Section 4.2's method on NT keys) ==================
  add_dir(DE::file_system, EA::file_existence, "regkey-existence",
          "remove the registry key the module reads",
          [](TargetWorld& w, SyscallCtx& ctx, const ScenarioHints&) {
            w.registry.remove_key(ctx.path);
          },
          /*extension=*/true);
  add_dir(DE::file_system, EA::file_permission, "regkey-acl",
          "flip the key's everyone-write ACL bit",
          [](TargetWorld& w, SyscallCtx& ctx, const ScenarioHints&) {
            const reg::Key* key = w.registry.find(ctx.path);
            if (key)
              w.registry.set_everyone_write(ctx.path,
                                            !key->acl.everyone_write);
          },
          /*extension=*/true);
  add_dir(DE::file_system, EA::file_content_invariance, "regkey-value-tamper",
          "set the key's value to an attacker-chosen string (everyone may "
          "write the key)",
          [](TargetWorld& w, SyscallCtx& ctx, const ScenarioHints& h) {
            auto it = h.content_payloads.find(ctx.site.tag);
            w.registry.set_value(ctx.path, it != h.content_payloads.end()
                                               ? it->second
                                               : h.symlink_victim);
          },
          /*extension=*/true);
  add_dir(DE::file_system, EA::net_entity_trustability, "regkey-trustability",
          "mark the key's origin as untrusted",
          [](TargetWorld& w, SyscallCtx& ctx, const ScenarioHints&) {
            w.registry.set_trusted(ctx.path, false);
          },
          /*extension=*/true);
}

std::vector<const IndirectFault*> FaultCatalog::indirect_for(
    InputSemantic s) const {
  std::vector<const IndirectFault*> out;
  for (const auto& f : indirect_)
    if (f.semantic == s) out.push_back(&f);
  return out;
}

std::vector<const DirectFault*> FaultCatalog::direct_for(
    ObjectKind kind) const {
  std::vector<const DirectFault*> out;
  auto push_attrs = [&](std::initializer_list<EnvAttribute> attrs,
                        bool extensions) {
    for (const auto& f : direct_) {
      if (f.extension != extensions) continue;
      for (EnvAttribute a : attrs)
        if (f.attribute == a) {
          out.push_back(&f);
          break;
        }
    }
  };
  switch (kind) {
    case ObjectKind::file:
    case ObjectKind::directory:
    case ObjectKind::exec_binary:
      push_attrs({EnvAttribute::file_existence, EnvAttribute::file_ownership,
                  EnvAttribute::file_permission, EnvAttribute::symbolic_link,
                  EnvAttribute::file_content_invariance,
                  EnvAttribute::file_name_invariance,
                  EnvAttribute::working_directory},
                 false);
      break;
    case ObjectKind::net_inbound:
      push_attrs({EnvAttribute::net_message_authenticity,
                  EnvAttribute::net_protocol, EnvAttribute::net_socket_share,
                  EnvAttribute::net_entity_trustability},
                 false);
      break;
    case ObjectKind::net_service:
      push_attrs({EnvAttribute::net_service_availability,
                  EnvAttribute::net_entity_trustability},
                 false);
      break;
    case ObjectKind::ipc_service:
      push_attrs({EnvAttribute::proc_message_authenticity,
                  EnvAttribute::proc_trustability,
                  EnvAttribute::proc_service_availability},
                 false);
      break;
    case ObjectKind::registry_key:
      push_attrs({EnvAttribute::file_existence, EnvAttribute::file_permission,
                  EnvAttribute::file_content_invariance,
                  EnvAttribute::net_entity_trustability},
                 true);
      break;
    case ObjectKind::user_input:
    case ObjectKind::env_var:
    case ObjectKind::none:
      break;
  }
  return out;
}

const IndirectFault* FaultCatalog::find_indirect(
    const std::string& name) const {
  for (const auto& f : indirect_)
    if (f.name == name) return &f;
  return nullptr;
}

const DirectFault* FaultCatalog::find_direct(const std::string& name) const {
  for (const auto& f : direct_)
    if (f.name == name) return &f;
  return nullptr;
}

ObjectKind infer_object_kind(const os::SyscallCtx& ctx) {
  const std::string& c = ctx.call;
  if (c == "open" || c == "read" || c == "write" || c == "stat" ||
      c == "lstat" || c == "unlink" || c == "readlink" || c == "rename" ||
      c == "chmod" || c == "chown" || c == "symlink" || c == "access")
    return ObjectKind::file;
  if (c == "chdir" || c == "mkdir" || c == "rmdir" || c == "readdir")
    return ObjectKind::directory;
  if (c == "exec") return ObjectKind::exec_binary;
  if (c == "accept" || c == "recv")
    return ctx.channel_kind == "ipc" ? ObjectKind::ipc_service
                                     : ObjectKind::net_inbound;
  if (c == "connect" || c == "query")
    return ctx.channel_kind == "ipc" ? ObjectKind::ipc_service
                                     : ObjectKind::net_service;
  if (c == "regread" || c == "regwrite") return ObjectKind::registry_key;
  if (c == "arg") return ObjectKind::user_input;
  if (c == "getenv") return ObjectKind::env_var;
  if (c == "dns") return ObjectKind::net_service;
  return ObjectKind::none;
}

InputSemantic infer_semantic(const os::SyscallCtx& ctx) {
  const std::string& c = ctx.call;
  if (c == "getenv") {
    if (ctx.aux == "PATH" || ep::contains(ctx.aux, "LIBRARY") ||
        ep::contains(ctx.aux, "LD_"))
      return InputSemantic::path_list;
    if (ep::contains(ctx.aux, "MASK")) return InputSemantic::permission_mask;
    return InputSemantic::file_name;
  }
  if (c == "recv")
    return ctx.channel_kind == "ipc" ? InputSemantic::ipc_message
                                     : InputSemantic::packet;
  if (c == "query") return InputSemantic::ipc_message;
  if (c == "dns") return InputSemantic::dns_reply;
  if (c == "regread") return InputSemantic::file_name;
  // argv and file reads default to the file-name semantic; scenarios
  // override per site when the input means something else.
  return InputSemantic::file_name;
}

}  // namespace ep::core
