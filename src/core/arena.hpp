// The same-host shared-memory data plane (docs/WIRE_FORMAT.md, "Binary
// encoding"): one mmap'd file shared by the coordinator and its worker
// processes.
//
// Layout: a fixed 64-byte header, the binary-encoded InjectionPlan
// (frozen once by the coordinator, read-only in spirit thereafter), and
// `segment_count` fixed-capacity segments — one per lease, indexed by
// the lease's stable `seq`. A worker drains a lease, encodes the
// ShardReport with shard_report_to_binary, and memcpy's it into the
// lease's segment; the DONE message then carries only (offset, length)
// and the coordinator decodes straight out of its own mapping — no
// report file, no pipe payload, no JSON parse on the hot path.
//
// Re-lease safety: a preempted worker may leave its segment half
// written. That is fine by construction — the coordinator reads a
// segment only after a DONE for that lease, the replacement worker
// overwrites the segment from its start, and the binary codec validates
// everything it reads. One segment has at most one live writer because
// the orchestrator re-leases only after the previous holder's exit
// event.
//
// The mapping is MAP_SHARED over a regular file: on one host every
// mapping of the file observes the same pages, so no msync or fence is
// needed between a worker's write and the coordinator's read — the DONE
// line on the pipe is the ordering edge.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace ep::core {

/// An arena file that cannot be created, mapped, or trusted: I/O
/// failure, bad magic/version, foreign endianness, or a header whose
/// regions do not fit the file.
class ArenaError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class ShmArena {
 public:
  /// Coordinator side: create (truncating) `path`, size it for the plan
  /// plus `segment_count` segments of `segment_bytes` each, map it, and
  /// freeze `plan_binary` into it. Throws ArenaError on any failure.
  static ShmArena create(const std::string& path,
                         const std::string& plan_binary,
                         std::size_t segment_count,
                         std::size_t segment_bytes);
  /// Worker side: map an existing arena and validate its header against
  /// the file's actual size. Throws ArenaError when the file is missing,
  /// truncated, foreign, or inconsistent.
  static ShmArena open(const std::string& path);

  ShmArena(ShmArena&& other) noexcept;
  ShmArena& operator=(ShmArena&& other) noexcept;
  ShmArena(const ShmArena&) = delete;
  ShmArena& operator=(const ShmArena&) = delete;
  ~ShmArena();

  const std::string& path() const { return path_; }
  const std::uint8_t* data() const { return map_; }
  std::size_t size() const { return size_; }

  /// The frozen binary-encoded plan region.
  const std::uint8_t* plan_data() const { return map_ + plan_offset_; }
  std::size_t plan_size() const { return plan_length_; }

  std::size_t segment_count() const { return segment_count_; }
  std::size_t segment_bytes() const { return segment_bytes_; }
  /// Absolute file offset of segment `seq` — the offset a worker's DONE
  /// handoff names. Throws ArenaError when seq is out of range.
  std::size_t segment_offset(std::size_t seq) const;
  /// Writable pointer into segment `seq` (the worker's report target).
  std::uint8_t* segment(std::size_t seq);

  /// Validate a worker's (offset, length) DONE handoff for lease `seq`:
  /// the offset must be exactly segment seq's start and the length must
  /// fit the segment. Throws ArenaError naming what is off — a broken
  /// worker must not make the coordinator read the wrong lease's bytes.
  void check_handoff(std::size_t seq, std::size_t offset,
                     std::size_t length) const;

 private:
  ShmArena() = default;
  void close() noexcept;

  std::string path_;
  int fd_ = -1;
  std::uint8_t* map_ = nullptr;
  std::size_t size_ = 0;
  std::size_t plan_offset_ = 0;
  std::size_t plan_length_ = 0;
  std::size_t segments_offset_ = 0;
  std::size_t segment_count_ = 0;
  std::size_t segment_bytes_ = 0;
};

}  // namespace ep::core
