// Dynamic-lease orchestration: one coordinator, N persistent workers.
//
// PR 3/4 distributed a campaign as a *static* partition — shard K/N owns
// the ids with id % N == K-1, fixed before any worker starts. The
// orchestrator replaces that with dynamic **leases**: contiguous id
// ranges handed out from the front of the plan as workers become idle,
// so a slow worker holds up one lease, not 1/N of the campaign, and a
// preempted worker's unfinished lease is simply re-leased to whoever is
// alive. Workers are *persistent*: they parse the plan and re-freeze the
// COW prototype once per process, then drain any number of leases — the
// per-process costs that dominate the static-shard overhead
// (BENCH_perf_injection.json's shard_wire_overhead_pct) are paid once,
// not once per work slice.
//
// Liveness is event-driven, not exit-driven: with a remote transport a
// dead host never delivers an exit status, so workers heartbeat (PING at
// every checkpoint flush) and the orchestrator runs a deadman timer — a
// busy worker silent for longer than `deadman_ms` is killed through the
// transport, its lease re-leased, and a replacement spawned within the
// respawn budget. The clock is injectable, so the deadman path is unit-
// tested without waiting on wall time.
//
// When the only remaining work is a straggler's large in-flight lease,
// the orchestrator steals from it: the worker yields the undrained tail
// at its next checkpoint boundary (YIELD), the tail becomes a fresh
// lease granted to an idle worker, and `merge` — which accepts any
// disjoint covering partition — still reproduces the single-process
// bytes exactly.
//
// The orchestrator talks to workers through the Transport interface and
// is itself single-threaded and deterministic in its *output*: every
// lease is drained deterministically by whichever worker gets it and the
// final merge keys on stable ids — so the merged CampaignResult is
// byte-identical to a single-process run no matter how leases were
// scheduled, split, or re-leased.
//
// Transports: LocalProcessTransport (pipes + report files),
// ShmLocalTransport (mmap'd arena), TcpTransport (net/transport_tcp.hpp,
// remote workers over sockets). All three speak the same versioned line
// protocol (core/protocol.hpp).
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/wire.hpp"
#include "core/work_source.hpp"

namespace ep::core {

/// Orchestration failed in a way re-leasing cannot fix: a worker died
/// with a non-preemption status, broke the protocol, spoke the wrong
/// protocol version, or the respawn budget ran out while leases were
/// still outstanding.
class OrchestratorError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One unit of handed-out work: the plan's id range [begin, end).
/// `seq` is the lease's stable identity: partition leases take their
/// position (0-based, ascending id order) and stolen tails take fresh
/// seqs past the partition — re-leasing preserves seq, so reports and
/// diagnostics name the same lease no matter which worker finished it.
struct Lease {
  std::size_t seq = 0;
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// What a Transport reports back from the worker fleet. The kind says
/// exactly what the orchestrator should do next; transports own the
/// classification (exit statuses, signals, BYE frames, dropped sockets).
struct WorkerEvent {
  enum class Kind {
    lease_done,     ///< finished `lease`; `report` holds its outcomes
    lease_yielded,  ///< answered STEAL: keeps [lease.begin, yield_mid),
                    ///< surrendered [yield_mid, lease.end) for re-grant
    heartbeat,      ///< PING (or HELLO): liveness only, no work attached
    preempted,      ///< worker gone; re-lease + respawn is the answer
    died,           ///< worker gone; retrying will only fail again
    exited,         ///< worker gone cleanly (status 0) after EXIT
  };
  Kind kind = Kind::died;
  std::size_t worker = 0;
  Lease lease;              // lease_done / lease_yielded
  ShardReport report;       // lease_done: the (leased, complete) report
  std::string label;        // lease_done: report source for diagnostics
  std::size_t yield_mid = 0;  // lease_yielded: the split point
  int status = 0;           // preempted/died/exited: exit code, -signo
                            // when killed, -1 for a dropped connection
};

/// The orchestrator's view of a worker fleet. Implementations own the
/// worker lifecycle; the orchestrator only schedules. All calls come
/// from one thread.
class Transport {
 public:
  virtual ~Transport() = default;
  /// Start (or adopt) one worker; returns its id (never reused), or
  /// nullopt when no worker is available right now — a tcp coordinator
  /// with nothing in its accept queue. Throws on hard failure.
  virtual std::optional<std::size_t> spawn() = 0;
  /// Hand `lease` to `worker` without blocking. Submitting to a worker
  /// that already died is not an error here — the death surfaces as a
  /// preempted/died event from wait_any() and the lease is re-leased.
  virtual void submit(std::size_t worker, const Lease& lease) = 0;
  /// Ask `worker` to yield the undrained tail of its in-flight lease at
  /// its next checkpoint boundary. Best-effort: a worker that finishes
  /// first just sends its DONE and the steal is moot. Default: no-op.
  virtual void steal(std::size_t worker) { (void)worker; }
  /// Ship search-generated work items plan.items[begin, end) to `worker`
  /// before a lease over them is submitted (the FEEDBACK protocol line):
  /// a growing-plan source appends items the worker's serialized plan
  /// copy predates, and the worker appends them to its local plan by the
  /// same stable ids. Only search drains call this; transports that
  /// predate the search plane inherit the throwing default.
  virtual void feedback(std::size_t worker, const InjectionPlan& plan,
                        std::size_t begin, std::size_t end) {
    (void)worker;
    (void)plan;
    (void)begin;
    (void)end;
    throw OrchestratorError(
        "orchestrate: this transport does not support search feedback "
        "(FEEDBACK is worker protocol v3)");
  }
  /// Block until any worker produces an event, or `timeout_ms`
  /// milliseconds pass (nullopt — the deadman's polling edge).
  /// timeout_ms < 0 blocks indefinitely. Calling with no live workers is
  /// a caller bug; implementations throw rather than hang.
  virtual std::optional<WorkerEvent> wait_any(long timeout_ms) = 0;
  /// Ask `worker` to exit cleanly once idle; its exit still arrives as
  /// an exited/preempted event.
  virtual void shutdown(std::size_t worker) = 0;
  /// Forcibly terminate `worker` right now — kill + reap a local
  /// process, drop a socket. No further events arrive for it; the
  /// caller updates its own bookkeeping. The deadman's hammer.
  virtual void kill(std::size_t worker) = 0;
};

/// Ceiling on work-stealing splits per campaign. A constant (not an
/// option) because transports that pre-allocate per-lease resources
/// (ShmLocalTransport's arena segments) must reserve room for stolen
/// leases before orchestrate() decides to create any.
inline constexpr std::size_t kMaxLeaseSplits = 8;

struct OrchestratorOptions {
  /// Target worker count. The orchestrator spawns at most this many at
  /// once and replaces preempted ones while work remains.
  int workers = 2;
  /// Work items per lease. 0 = auto: the plan split into roughly four
  /// leases per worker, the classic dynamic-scheduling grain — small
  /// enough to rebalance around stragglers and preemptions, large enough
  /// that per-lease costs stay marginal.
  std::size_t lease_items = 0;
  /// How many replacement workers may be spawned after preemptions
  /// before the orchestrator gives up. 0 = auto (lease count + twice the
  /// worker count): a fleet where every worker is preempted once per
  /// lease still finishes, a fleet that dies faster than it drains does
  /// not spin forever.
  std::size_t max_respawns = 0;
  /// Deadman timeout: a *busy* worker heard from (grant, PING, YIELD)
  /// more than this many milliseconds ago is killed and its lease
  /// re-leased. 0 = off. Workers heartbeat at checkpoint flushes, so a
  /// useful deadman needs checkpointing enabled and a timeout
  /// comfortably above the slowest checkpoint interval. Idle workers
  /// are exempt — they hold no work worth recovering.
  long long deadman_ms = 0;
  /// The deadman's clock, milliseconds, monotonic. Unset = steady_clock.
  /// Injectable so unit tests drive expiry without waiting.
  std::function<long long()> now_ms;
};

/// The fixed lease partition orchestrate() deals out for a plan of
/// `plan_items` items under `opts`: contiguous ranges, ascending, with
/// seq = position. Exposed so transports that pre-allocate per-lease
/// resources (ShmLocalTransport's arena segments) size them against the
/// exact same split the orchestrator will schedule (plus kMaxLeaseSplits
/// stolen-lease slots). Throws OrchestratorError when opts.workers < 1.
std::vector<Lease> lease_partition(std::size_t plan_items,
                                   const OrchestratorOptions& opts);

struct OrchestratorStats {
  std::size_t leases_total = 0;      ///< fixed partition size
  std::size_t leases_granted = 0;    ///< submits, re-grants included
  std::size_t leases_released = 0;   ///< grants that redid preempted work
  std::size_t leases_split = 0;      ///< stolen tails granted as leases
  std::size_t workers_spawned = 0;   ///< initial fleet + replacements
  std::size_t workers_preempted = 0;
  std::size_t deadman_expiries = 0;  ///< silent workers the deadman shot
};

/// Drain `plan` through the transport's workers under dynamic leases and
/// merge the lease reports into the CampaignResult a single process
/// would have produced — byte-identical output for any worker count,
/// lease size, preemption pattern, or steal schedule. Throws
/// OrchestratorError on worker failure or budget exhaustion, WireError
/// if a worker's report does not add back up to the plan.
CampaignResult orchestrate(const InjectionPlan& plan, Transport& transport,
                           const OrchestratorOptions& opts = {},
                           OrchestratorStats* stats = nullptr);

/// The generalized drain behind orchestrate(): lease out a WorkSource's
/// item stream wave by wave. Each wave is partitioned into leases with
/// the same grain rule as lease_partition() (applied to the wave size),
/// drained by the persistent fleet, and absorbed back into the source
/// before the next wave is generated — the feedback loop that drives
/// coverage-guided search. Workers that predate appended items get them
/// via Transport::feedback before their lease is submitted;
/// `known_items` says how many plan items the workers' serialized plan
/// copies already carry (orchestrate() passes the full plan size, so
/// the exhaustive path never sends FEEDBACK and stays byte-identical).
/// The final result merges every wave's lease reports — plus any
/// checkpoint-replayed reports the source carries — exactly like
/// orchestrate() merges its single wave.
CampaignResult orchestrate_source(WorkSource& source, Transport& transport,
                                  const OrchestratorOptions& opts,
                                  OrchestratorStats* stats,
                                  std::size_t known_items);

}  // namespace ep::core
