// Dynamic-lease orchestration: one coordinator, N persistent workers.
//
// PR 3/4 distributed a campaign as a *static* partition — shard K/N owns
// the ids with id % N == K-1, fixed before any worker starts. The
// orchestrator replaces that with dynamic **leases**: contiguous id
// ranges handed out from the front of the plan as workers become idle,
// so a slow worker holds up one lease, not 1/N of the campaign, and a
// preempted worker's unfinished lease is simply re-leased to whoever is
// alive. Workers are *persistent*: they parse the plan and re-freeze the
// COW prototype once per process, then drain any number of leases — the
// per-process costs that dominate the static-shard overhead
// (BENCH_perf_injection.json's shard_wire_overhead_pct) are paid once,
// not once per work slice.
//
// The orchestrator talks to workers through the Transport interface and
// is itself single-threaded and deterministic in its *output*: leases
// are fixed by (plan size, lease_items), every lease is drained
// deterministically by whichever worker gets it, and the final merge
// keys on stable ids — so the merged CampaignResult is byte-identical
// to a single-process run no matter how leases were scheduled, how many
// workers served, or how often they were preempted.
//
// The first Transport is LocalProcessTransport (core/transport.hpp):
// epa_cli worker processes, pipes for the LEASE/DONE protocol, files for
// the reports. The interface is deliberately small so a multi-machine
// transport (ship the plan, collect the reports) slots in behind it.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/wire.hpp"

namespace ep::core {

/// Orchestration failed in a way re-leasing cannot fix: a worker died
/// with a non-preemption status, broke the protocol, or the respawn
/// budget ran out while leases were still outstanding.
class OrchestratorError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One unit of handed-out work: the plan's id range [begin, end).
/// `seq` is the lease's stable position in the partition (0-based, in
/// ascending id order) — re-leasing preserves it, so reports and
/// diagnostics name the same lease no matter which worker finished it.
struct Lease {
  std::size_t seq = 0;
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// What a Transport reports back from the worker fleet.
struct WorkerEvent {
  enum class Kind {
    lease_done,  ///< `worker` finished `lease`; `report` holds its outcomes
    exited,      ///< `worker` is gone; `preempted` says whether re-leasing
                 ///< its outstanding work is the right response
  };
  Kind kind = Kind::exited;
  std::size_t worker = 0;
  Lease lease;         // lease_done: the finished lease
  ShardReport report;  // lease_done: the lease's (leased, complete) report
  std::string label;   // lease_done: report source for merge diagnostics
  bool preempted = false;  // exited: exit 4 or a preemption signal
  int status = 0;          // exited: exit code, or -signo when killed
};

/// The orchestrator's view of a worker fleet. Implementations own the
/// worker lifecycle; the orchestrator only schedules. All calls come
/// from one thread.
class Transport {
 public:
  virtual ~Transport() = default;
  /// Start one worker; returns its id (never reused). Throws on failure.
  virtual std::size_t spawn() = 0;
  /// Hand `lease` to `worker` without blocking. Submitting to a worker
  /// that already died is not an error here — the death surfaces as an
  /// `exited` event from wait_any() and the lease is re-leased.
  virtual void submit(std::size_t worker, const Lease& lease) = 0;
  /// Block until any worker finishes a lease or exits. Calling with no
  /// outstanding work or live workers is a caller bug; implementations
  /// throw rather than hang.
  virtual WorkerEvent wait_any() = 0;
  /// Ask `worker` to exit cleanly once idle; its exit still arrives as
  /// an `exited` event.
  virtual void shutdown(std::size_t worker) = 0;
};

struct OrchestratorOptions {
  /// Target worker count. The orchestrator spawns at most this many at
  /// once and replaces preempted ones while work remains.
  int workers = 2;
  /// Work items per lease. 0 = auto: the plan split into roughly four
  /// leases per worker, the classic dynamic-scheduling grain — small
  /// enough to rebalance around stragglers and preemptions, large enough
  /// that per-lease costs stay marginal.
  std::size_t lease_items = 0;
  /// How many replacement workers may be spawned after preemptions
  /// before the orchestrator gives up. 0 = auto (lease count + twice the
  /// worker count): a fleet where every worker is preempted once per
  /// lease still finishes, a fleet that dies faster than it drains does
  /// not spin forever.
  std::size_t max_respawns = 0;
};

/// The fixed lease partition orchestrate() deals out for a plan of
/// `plan_items` items under `opts`: contiguous ranges, ascending, with
/// seq = position. Exposed so transports that pre-allocate per-lease
/// resources (ShmLocalTransport's arena segments) size them against the
/// exact same split the orchestrator will schedule. Throws
/// OrchestratorError when opts.workers < 1.
std::vector<Lease> lease_partition(std::size_t plan_items,
                                   const OrchestratorOptions& opts);

struct OrchestratorStats {
  std::size_t leases_total = 0;      ///< fixed partition size
  std::size_t leases_granted = 0;    ///< submits, re-grants included
  std::size_t leases_released = 0;   ///< grants that redid preempted work
  std::size_t workers_spawned = 0;   ///< initial fleet + replacements
  std::size_t workers_preempted = 0;
};

/// Drain `plan` through the transport's workers under dynamic leases and
/// merge the lease reports into the CampaignResult a single process
/// would have produced — byte-identical output for any worker count,
/// lease size, or preemption pattern. Throws OrchestratorError on worker
/// failure or budget exhaustion, WireError if a worker's report does not
/// add back up to the plan.
CampaignResult orchestrate(const InjectionPlan& plan, Transport& transport,
                           const OrchestratorOptions& opts = {},
                           OrchestratorStats* stats = nullptr);

}  // namespace ep::core
