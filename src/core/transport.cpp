#include "core/transport.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <csignal>
#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

namespace ep::core {

namespace {

[[noreturn]] void sys_fail(const std::string& what) {
  throw OrchestratorError(what + ": " + std::strerror(errno));
}

void set_cloexec(int fd) {
  int flags = ::fcntl(fd, F_GETFD);
  if (flags < 0 || ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC) < 0)
    sys_fail("fcntl(FD_CLOEXEC)");
}

/// Write all of `text`, ignoring EPIPE: a worker that died mid-write
/// surfaces as a preempted/died event from wait_any(), which is where
/// the orchestrator handles death — not here.
void write_line(int fd, const std::string& text) {
  std::size_t off = 0;
  while (off < text.size()) {
    ssize_t n = ::write(fd, text.data() + off, text.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // EPIPE et al.: the death event carries the real story
    }
    off += static_cast<std::size_t>(n);
  }
}

std::string read_file_or_throw(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f)
    throw OrchestratorError("cannot read lease report '" + path +
                            "': " + std::strerror(errno));
  std::string out;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad)
    throw OrchestratorError("error while reading lease report '" + path +
                            "'");
  return out;
}

/// SIGTERM-family deaths are preemptions (the cluster took the host
/// back); anything else — SIGSEGV, SIGABRT — is a worker bug that a
/// respawn would only repeat.
bool signal_is_preemption(int signo) {
  return signo == SIGTERM || signo == SIGKILL || signo == SIGINT ||
         signo == SIGHUP;
}

}  // namespace

LocalProcessTransport::LocalProcessTransport(LocalProcessConfig config)
    : config_(std::move(config)) {
  // A worker can die between our poll() and our write(); without this
  // the resulting EPIPE would kill the coordinator instead of surfacing
  // as an ordinary worker-death event.
  std::signal(SIGPIPE, SIG_IGN);
}

LocalProcessTransport::~LocalProcessTransport() {
  for (Proc& p : procs_) {
    if (!p.alive) continue;
    if (p.in_fd >= 0) ::close(p.in_fd);
    if (p.out_fd >= 0) ::close(p.out_fd);
    ::kill(p.pid, SIGTERM);
    int status = 0;
    while (::waitpid(p.pid, &status, 0) < 0 && errno == EINTR) {
    }
    p.alive = false;
  }
}

std::string LocalProcessTransport::self_exe(const char* argv0) {
  char buf[4096];
  ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n > 0) {
    buf[n] = '\0';
    return buf;
  }
  return argv0 ? argv0 : "epa_cli";
}

std::vector<std::string> LocalProcessTransport::worker_args() const {
  std::vector<std::string> args = {"worker", config_.plan_path};
  append_common_args(args);
  return args;
}

void LocalProcessTransport::append_common_args(
    std::vector<std::string>& args) const {
  args.push_back("--jobs");
  args.push_back(std::to_string(config_.jobs));
  if (!config_.use_world_cache) args.push_back("--no-world-cache");
  if (!config_.use_redzone) args.push_back("--no-redzone");
  if (config_.preempt_after > 0) {
    args.push_back("--preempt-after");
    args.push_back(std::to_string(config_.preempt_after));
  }
  if (config_.checkpoint > 0) {
    args.push_back("--checkpoint");
    args.push_back(std::to_string(config_.checkpoint));
  }
  if (config_.drain_delay_ms > 0) {
    args.push_back("--drain-delay-ms");
    args.push_back(std::to_string(config_.drain_delay_ms));
  }
  if (!config_.scenario_file.empty()) {
    args.push_back("--scenario-file");
    args.push_back(config_.scenario_file);
  }
}

std::string LocalProcessTransport::lease_token(const Lease& lease) const {
  return config_.out_dir + "/" + config_.file_prefix + ".lease" +
         std::to_string(lease.seq) + ".json";
}

void LocalProcessTransport::load_report(const Proc& p,
                                        const ProtocolMsg& done,
                                        WorkerEvent& ev) {
  if (done.has_handoff)
    throw OrchestratorError(
        "DONE carries an arena handoff on the file data plane");
  ev.label = p.lease_token;
  try {
    ev.report = shard_report_from_json(read_file_or_throw(p.lease_token));
  } catch (const WireError& e) {
    throw OrchestratorError(p.lease_token + ": " + e.what());
  }
}

std::optional<std::size_t> LocalProcessTransport::spawn() {
  int to_child[2];   // coordinator writes, worker reads (stdin)
  int from_child[2]; // worker writes (stdout), coordinator reads
  if (::pipe(to_child) < 0) sys_fail("pipe");
  if (::pipe(from_child) < 0) {
    ::close(to_child[0]);
    ::close(to_child[1]);
    sys_fail("pipe");
  }
  // The coordinator-side ends must not leak into *any* worker: a sibling
  // holding a copy of this worker's stdin write-end would defeat the
  // EOF-on-shutdown signal.
  set_cloexec(to_child[1]);
  set_cloexec(from_child[0]);

  // Built before fork: the data plane decides the argv tail.
  std::vector<std::string> args = {config_.epa_cli};
  for (std::string& a : worker_args()) args.push_back(std::move(a));

  pid_t pid = ::fork();
  if (pid < 0) {
    ::close(to_child[0]);
    ::close(to_child[1]);
    ::close(from_child[0]);
    ::close(from_child[1]);
    sys_fail("fork");
  }
  if (pid == 0) {
    // Worker: protocol on stdin/stdout, stderr inherited.
    ::dup2(to_child[0], STDIN_FILENO);
    ::dup2(from_child[1], STDOUT_FILENO);
    ::close(to_child[0]);
    ::close(from_child[1]);
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv(argv[0], argv.data());
    std::fprintf(stderr, "epa: cannot exec worker '%s': %s\n",
                 config_.epa_cli.c_str(), std::strerror(errno));
    ::_exit(127);
  }
  ::close(to_child[0]);
  ::close(from_child[1]);

  Proc p;
  p.pid = pid;
  p.in_fd = to_child[1];
  p.out_fd = from_child[0];
  p.alive = true;
  procs_.push_back(std::move(p));
  return procs_.size() - 1;
}

void LocalProcessTransport::submit(std::size_t worker, const Lease& lease) {
  if (worker >= procs_.size())
    throw OrchestratorError("submit: unknown worker " +
                            std::to_string(worker));
  Proc& p = procs_[worker];
  p.has_lease = true;
  p.lease = lease;
  p.lease_token = lease_token(lease);
  if (p.in_fd < 0) return;  // already shut down; death event will follow
  write_line(p.in_fd,
             format_lease(lease.begin, lease.end, p.lease_token) + "\n");
}

void LocalProcessTransport::feedback(std::size_t worker,
                                     const InjectionPlan& plan,
                                     std::size_t begin, std::size_t end) {
  if (worker >= procs_.size())
    throw OrchestratorError("feedback: unknown worker " +
                            std::to_string(worker));
  Proc& p = procs_[worker];
  if (!p.alive || p.in_fd < 0) return;  // death event will follow anyway
  write_line(p.in_fd,
             format_feedback(begin, end, feedback_spec(plan, begin, end)) +
                 "\n");
}

void LocalProcessTransport::steal(std::size_t worker) {
  if (worker >= procs_.size())
    throw OrchestratorError("steal: unknown worker " +
                            std::to_string(worker));
  Proc& p = procs_[worker];
  if (!p.alive || p.in_fd < 0) return;  // death event will follow anyway
  write_line(p.in_fd, format_steal() + "\n");
}

WorkerEvent LocalProcessTransport::handle_line(std::size_t worker,
                                               const std::string& line) {
  Proc& p = procs_[worker];
  ProtocolMsg msg;
  if (!parse_protocol_line(line, &msg))
    throw OrchestratorError("worker " + std::to_string(worker) +
                            ": unexpected protocol line '" + line + "'");

  WorkerEvent ev;
  ev.worker = worker;

  if (msg.type == ProtocolMsg::Type::hello) {
    if (p.said_hello)
      throw OrchestratorError("worker " + std::to_string(worker) +
                              " sent HELLO twice");
    if (msg.version != kWorkerProtocolVersion)
      throw OrchestratorError(
          "worker " + std::to_string(worker) +
          " speaks worker protocol version " +
          std::to_string(msg.version) +
          "; this coordinator speaks version " +
          std::to_string(kWorkerProtocolVersion) +
          " — upgrade so both ends match");
    p.said_hello = true;
    ev.kind = WorkerEvent::Kind::heartbeat;
    return ev;
  }
  if (!p.said_hello)
    throw OrchestratorError(
        "worker " + std::to_string(worker) +
        " did not open with HELLO " +
        std::to_string(kWorkerProtocolVersion) +
        " (a pre-handshake fleet?); first line was '" + line + "'");

  switch (msg.type) {
    case ProtocolMsg::Type::ping:
      ev.kind = WorkerEvent::Kind::heartbeat;
      return ev;
    case ProtocolMsg::Type::yield: {
      // YIELD <mid> <end>: the worker keeps [begin, mid) of its lease
      // and surrenders [mid, end). Shrink our record so the upcoming
      // DONE <begin> <mid> matches it.
      if (!p.has_lease || msg.begin <= p.lease.begin ||
          msg.begin >= p.lease.end || msg.end != p.lease.end)
        throw OrchestratorError("worker " + std::to_string(worker) +
                                ": unexpected yield '" + line + "'");
      ev.kind = WorkerEvent::Kind::lease_yielded;
      ev.lease = p.lease;
      ev.yield_mid = msg.begin;
      p.lease.end = msg.begin;
      return ev;
    }
    case ProtocolMsg::Type::done: {
      if (!p.has_lease || msg.begin != p.lease.begin ||
          msg.end != p.lease.end)
        throw OrchestratorError("worker " + std::to_string(worker) +
                                ": unexpected protocol line '" + line +
                                "'");
      ev.kind = WorkerEvent::Kind::lease_done;
      ev.lease = p.lease;
      try {
        load_report(p, msg, ev);
      } catch (const OrchestratorError&) {
        throw;
      } catch (const std::exception& e) {
        throw OrchestratorError("worker " + std::to_string(worker) + ": " +
                                e.what());
      }
      p.has_lease = false;
      return ev;
    }
    default:
      // BYE belongs to the tcp transport; LEASE/STEAL/EXIT are
      // coordinator-to-worker only.
      throw OrchestratorError("worker " + std::to_string(worker) +
                              ": unexpected protocol line '" + line + "'");
  }
}

WorkerEvent LocalProcessTransport::reap(std::size_t worker) {
  Proc& p = procs_[worker];
  if (p.in_fd >= 0) ::close(p.in_fd);
  ::close(p.out_fd);
  p.in_fd = p.out_fd = -1;
  int status = 0;
  while (::waitpid(p.pid, &status, 0) < 0 && errno == EINTR) {
  }
  p.alive = false;
  WorkerEvent ev;
  ev.worker = worker;
  if (WIFEXITED(status)) {
    ev.status = WEXITSTATUS(status);
    ev.kind = ev.status == 0   ? WorkerEvent::Kind::exited
              : ev.status == 4 ? WorkerEvent::Kind::preempted
                               : WorkerEvent::Kind::died;
  } else if (WIFSIGNALED(status)) {
    ev.status = -WTERMSIG(status);
    ev.kind = signal_is_preemption(WTERMSIG(status))
                  ? WorkerEvent::Kind::preempted
                  : WorkerEvent::Kind::died;
  } else {
    ev.kind = WorkerEvent::Kind::died;
  }
  return ev;
}

std::optional<WorkerEvent> LocalProcessTransport::wait_any(
    long timeout_ms) {
  for (;;) {
    // Deliver buffered protocol lines before reaping: a worker that
    // printed DONE and exited must yield lease_done first, or its
    // finished lease would be pointlessly re-drained.
    for (std::size_t w = 0; w < procs_.size(); ++w) {
      Proc& p = procs_[w];
      if (!p.alive) continue;
      std::size_t nl = p.buf.find('\n');
      if (nl != std::string::npos) {
        std::string line = p.buf.substr(0, nl);
        p.buf.erase(0, nl + 1);
        return handle_line(w, line);
      }
      if (p.saw_eof) return reap(w);
    }

    std::vector<pollfd> fds;
    std::vector<std::size_t> owners;
    for (std::size_t w = 0; w < procs_.size(); ++w) {
      Proc& p = procs_[w];
      if (!p.alive || p.saw_eof) continue;
      fds.push_back({p.out_fd, POLLIN, 0});
      owners.push_back(w);
    }
    if (fds.empty())
      throw OrchestratorError("wait_any: no live workers to wait on");
    int ready = ::poll(fds.data(), fds.size(),
                       timeout_ms < 0 ? -1 : static_cast<int>(timeout_ms));
    if (ready < 0) {
      if (errno == EINTR) continue;
      sys_fail("poll");
    }
    if (ready == 0) return std::nullopt;  // the deadman's polling edge
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if (!(fds[i].revents & (POLLIN | POLLHUP | POLLERR))) continue;
      Proc& p = procs_[owners[i]];
      char buf[4096];
      ssize_t n = ::read(p.out_fd, buf, sizeof buf);
      if (n > 0)
        p.buf.append(buf, static_cast<std::size_t>(n));
      else if (n == 0 || (n < 0 && errno != EINTR && errno != EAGAIN))
        p.saw_eof = true;
    }
  }
}

void LocalProcessTransport::shutdown(std::size_t worker) {
  if (worker >= procs_.size())
    throw OrchestratorError("shutdown: unknown worker " +
                            std::to_string(worker));
  Proc& p = procs_[worker];
  if (!p.alive || p.in_fd < 0) return;
  write_line(p.in_fd, format_exit() + "\n");
  // Close stdin too: EOF ends the worker loop even if the EXIT line was
  // lost to a full pipe or a half-dead worker.
  ::close(p.in_fd);
  p.in_fd = -1;
}

void LocalProcessTransport::kill(std::size_t worker) {
  if (worker >= procs_.size())
    throw OrchestratorError("kill: unknown worker " +
                            std::to_string(worker));
  Proc& p = procs_[worker];
  if (!p.alive) return;
  if (p.in_fd >= 0) ::close(p.in_fd);
  if (p.out_fd >= 0) ::close(p.out_fd);
  p.in_fd = p.out_fd = -1;
  // SIGKILL, not SIGTERM: the deadman fires for workers that are wedged
  // (stopped, swallowing signals, spinning) — the polite signal already
  // had its chance via the heartbeat window.
  ::kill(p.pid, SIGKILL);
  int status = 0;
  while (::waitpid(p.pid, &status, 0) < 0 && errno == EINTR) {
  }
  p.alive = false;
  p.buf.clear();
}

std::size_t arena_segment_bytes(std::size_t lease_items) {
  // Base covers the report frame and metadata; the per-item budget is a
  // hard upper bound on one outcome's columns (ids, exit codes, flags,
  // and a violated outcome's site/description strings).
  constexpr std::size_t kBase = 8192;
  constexpr std::size_t kPerItem = 4096;
  return kBase + lease_items * kPerItem;
}

namespace {

std::size_t max_lease_items(const std::vector<Lease>& leases) {
  std::size_t most = 0;
  for (const Lease& l : leases) most = std::max(most, l.end - l.begin);
  return most;
}

}  // namespace

ShmLocalTransport::ShmLocalTransport(LocalProcessConfig config,
                                     const InjectionPlan& plan,
                                     const std::vector<Lease>& leases)
    : LocalProcessTransport(std::move(config)),
      // kMaxLeaseSplits extra segments: stolen-tail leases take fresh
      // seqs past the partition, and each needs a segment home. A stolen
      // tail is a sub-range of some partition lease, so the per-segment
      // size bound already covers it.
      arena_(ShmArena::create(
          this->config().out_dir + "/" + this->config().file_prefix +
              ".arena",
          plan_to_binary(plan), leases.size() + kMaxLeaseSplits,
          arena_segment_bytes(max_lease_items(leases)))) {}

std::vector<std::string> ShmLocalTransport::worker_args() const {
  std::vector<std::string> args = {"worker", "--arena", arena_.path()};
  append_common_args(args);
  return args;
}

std::string ShmLocalTransport::lease_token(const Lease& lease) const {
  return "@" + std::to_string(lease.seq);
}

void ShmLocalTransport::load_report(const Proc& p, const ProtocolMsg& done,
                                    WorkerEvent& ev) {
  if (!done.has_handoff)
    throw OrchestratorError(
        "DONE is missing the arena (offset, length) handoff");
  ev.label = arena_.path() + "#seg" + std::to_string(p.lease.seq);
  try {
    arena_.check_handoff(p.lease.seq, done.offset, done.length);
    // Decoding straight from the coordinator's own mapping — the DONE
    // line on the pipe is the ordering edge, so the worker's writes to
    // this MAP_SHARED segment are visible here.
    ev.report = shard_report_from_binary(arena_.data() + done.offset,
                                         done.length);
  } catch (const WireError& e) {
    throw OrchestratorError(ev.label + ": " + e.what());
  } catch (const ArenaError& e) {
    throw OrchestratorError(e.what());
  }
}

}  // namespace ep::core
