#include "core/wire.hpp"

#include <climits>
#include <set>
#include <utility>

#include "core/catalog.hpp"
#include "core/snapshot.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"

namespace ep::core {

std::string json_site(const os::Site& s) {
  return "{\"unit\": " + json_quote(s.unit) +
         ", \"line\": " + std::to_string(s.line) +
         ", \"tag\": " + json_quote(s.tag) + "}";
}

std::string json_violation(const Violation& v) {
  return "{\"policy\": " + json_quote(std::string(to_string(v.policy))) +
         ", \"site\": " + json_site(v.site) +
         ", \"call\": " + json_quote(v.call) +
         ", \"object\": " + json_quote(v.object) +
         ", \"detail\": " + json_quote(v.detail) + "}";
}

namespace {

/// Run `f`, prefixing any failure — JSON access or wire validation —
/// with where in the document it happened, so "missing key 'call'"
/// becomes "plan: points[3]: missing key 'call'" and "unknown direct
/// fault 'x'" names the item that referenced it. Use one level deep —
/// nesting would stack prefixes.
template <typename F>
auto with_ctx(const std::string& where, F&& f) -> decltype(f()) {
  try {
    return f();
  } catch (const std::exception& e) {
    throw WireError(where + ": " + e.what());
  }
}

[[noreturn]] void fail(const std::string& where, const std::string& msg) {
  throw WireError(where + ": " + msg);
}

JsonValue parse_document(const std::string& text, const char* what) {
  try {
    return json_parse(text);
  } catch (const JsonError& e) {
    throw WireError(std::string(what) + " is not valid JSON: " + e.what());
  }
}

/// Shared header validation: wire files self-describe with
/// schema_version + kind so a plan handed to merge (or vice versa) fails
/// with "kind 'injection-plan' where 'shard-report' was expected", not a
/// missing-field puzzle.
void check_header(const JsonValue& doc, const char* expected_kind,
                  const char* what) {
  if (!doc.is_object())
    fail(what, "top-level value must be an object");
  const JsonValue* ver = doc.find("schema_version");
  if (!ver)
    fail(what, "missing 'schema_version' (not a wire-format file?)");
  long long v = with_ctx(std::string(what) + ": schema_version",
                         [&] { return ver->as_int(); });
  if (v != kPlanSchemaVersion)
    fail(what, "unsupported schema_version " + std::to_string(v) +
                   " (this build reads version " +
                   std::to_string(kPlanSchemaVersion) + ")");
  std::string kind = with_ctx(std::string(what) + ": kind",
                              [&] { return doc.at("kind").as_string(); });
  if (kind != expected_kind)
    fail(what, "kind '" + kind + "' where '" + expected_kind +
                   "' was expected");
}

FaultKind fault_kind_from(const std::string& s) {
  for (FaultKind k : {FaultKind::indirect, FaultKind::direct})
    if (to_string(k) == s) return k;
  throw WireError("unknown fault kind '" + s + "'");
}

ObjectKind object_kind_from(const std::string& s) {
  for (ObjectKind k :
       {ObjectKind::file, ObjectKind::directory, ObjectKind::exec_binary,
        ObjectKind::net_inbound, ObjectKind::net_service,
        ObjectKind::ipc_service, ObjectKind::registry_key,
        ObjectKind::user_input, ObjectKind::env_var, ObjectKind::none})
    if (to_string(k) == s) return k;
  throw WireError("unknown object kind '" + s + "'");
}

InputSemantic semantic_from(const std::string& s) {
  for (InputSemantic k :
       {InputSemantic::file_name, InputSemantic::command,
        InputSemantic::path_list, InputSemantic::permission_mask,
        InputSemantic::file_extension, InputSemantic::ip_address,
        InputSemantic::packet, InputSemantic::host_name,
        InputSemantic::dns_reply, InputSemantic::ipc_message})
    if (to_string(k) == s) return k;
  throw WireError("unknown input semantic '" + s + "'");
}

Policy policy_from(const std::string& s) {
  for (Policy p : {Policy::integrity, Policy::confidentiality,
                   Policy::untrusted_exec, Policy::memory_safety,
                   Policy::trust, Policy::authorization})
    if (to_string(p) == s) return p;
  throw WireError("unknown policy '" + s + "'");
}

/// An int-typed wire field: silently wrapping a long long would break
/// both validation ("reject what you cannot represent") and the
/// parse -> re-serialize byte-identity contract.
int parse_int32(const JsonValue& v, const char* key) {
  long long n = v.at(key).as_int();
  if (n < INT_MIN || n > INT_MAX)
    throw WireError(std::string(key) + " " + std::to_string(n) +
                    " does not fit a 32-bit int");
  return static_cast<int>(n);
}

os::Site parse_site(const JsonValue& v) {
  os::Site s;
  s.unit = v.at("unit").as_string();
  s.line = parse_int32(v, "line");
  s.tag = v.at("tag").as_string();
  return s;
}

Violation parse_violation(const JsonValue& v) {
  Violation out;
  out.policy = policy_from(v.at("policy").as_string());
  out.site = parse_site(v.at("site"));
  out.call = v.at("call").as_string();
  out.object = v.at("object").as_string();
  out.detail = v.at("detail").as_string();
  return out;
}

/// Resolve a (kind, name) fault reference against this build's catalog.
FaultRef parse_fault(FaultKind kind, const std::string& name) {
  const FaultCatalog& cat = FaultCatalog::standard();
  FaultRef r;
  r.kind = kind;
  if (kind == FaultKind::indirect) {
    r.indirect = cat.find_indirect(name);
    if (!r.indirect)
      throw WireError("unknown indirect fault '" + name +
                      "' (plan written by a build with a different fault "
                      "catalog?)");
  } else {
    r.direct = cat.find_direct(name);
    if (!r.direct)
      throw WireError("unknown direct fault '" + name +
                      "' (plan written by a build with a different fault "
                      "catalog?)");
  }
  return r;
}

std::string json_outcome(std::size_t id, const InjectionOutcome& o) {
  std::string out = "{\"id\": " + std::to_string(id) +
                    ", \"site\": " + json_site(o.site) +
                    ", \"call\": " + json_quote(o.call) +
                    ", \"object\": " + json_quote(o.object) +
                    ", \"kind\": " +
                    json_quote(std::string(to_string(o.kind))) +
                    ", \"fault\": " + json_quote(o.fault_name) +
                    ", \"fault_description\": " +
                    json_quote(o.fault_description) +
                    std::string(", \"fired\": ") +
                    (o.fired ? "true" : "false") +
                    ", \"violated\": " + (o.violated ? "true" : "false") +
                    ", \"crashed\": " + (o.crashed ? "true" : "false") +
                    ", \"overflows\": " + std::to_string(o.overflows) +
                    ", \"exit_code\": " + std::to_string(o.exit_code) +
                    ", \"violations\": [";
  for (std::size_t i = 0; i < o.violations.size(); ++i)
    out += std::string(i ? ", " : "") + json_violation(o.violations[i]);
  out += std::string("], \"exploit\": {\"nonroot_feasible\": ") +
         (o.exploit.nonroot_feasible ? "true" : "false") +
         ", \"actor\": " + json_quote(o.exploit.actor) +
         ", \"note\": " + json_quote(o.exploit.note) + "}}";
  return out;
}

InjectionOutcome parse_outcome(const JsonValue& v) {
  InjectionOutcome o;
  o.site = parse_site(v.at("site"));
  o.call = v.at("call").as_string();
  o.object = v.at("object").as_string();
  o.kind = fault_kind_from(v.at("kind").as_string());
  o.fault_name = v.at("fault").as_string();
  o.fault_description = v.at("fault_description").as_string();
  o.fired = v.at("fired").as_bool();
  o.violated = v.at("violated").as_bool();
  o.crashed = v.at("crashed").as_bool();
  o.overflows = parse_int32(v, "overflows");
  o.exit_code = parse_int32(v, "exit_code");
  for (const JsonValue& viol : v.at("violations").items())
    o.violations.push_back(parse_violation(viol));
  const JsonValue& e = v.at("exploit");
  o.exploit.nonroot_feasible = e.at("nonroot_feasible").as_bool();
  o.exploit.actor = e.at("actor").as_string();
  o.exploit.note = e.at("note").as_string();
  return o;
}

std::size_t parse_count(const JsonValue& doc, const char* key,
                        const char* what) {
  long long v = with_ctx(std::string(what) + ": " + key,
                         [&] { return doc.at(key).as_int(); });
  if (v < 0) fail(what, std::string(key) + " must be >= 0");
  return static_cast<std::size_t>(v);
}

}  // namespace

InjectionPlan plan_from_json(const std::string& text) {
  JsonValue doc = parse_document(text, "plan");
  check_header(doc, "injection-plan", "plan");

  InjectionPlan plan;
  plan.scenario_name =
      with_ctx("plan: scenario", [&] { return doc.at("scenario").as_string(); });
  if (plan.scenario_name.empty()) fail("plan", "scenario name is empty");

  const auto& points = with_ctx("plan: points", [&]() -> decltype(auto) {
    return doc.at("points").items();
  });
  for (std::size_t i = 0; i < points.size(); ++i) {
    with_ctx("plan: points[" + std::to_string(i) + "]", [&] {
      const JsonValue& p = points[i];
      InteractionPoint point;
      point.site = parse_site(p.at("site"));
      point.call = p.at("call").as_string();
      point.object = p.at("object").as_string();
      point.kind = object_kind_from(p.at("kind").as_string());
      point.semantic = semantic_from(p.at("semantic").as_string());
      point.channel_kind = p.at("channel").as_string();
      point.has_input = p.at("has_input").as_bool();
      point.hits = parse_int32(p, "hits");
      plan.points.push_back(std::move(point));
    });
  }

  const auto& benign =
      with_ctx("plan: benign_violations", [&]() -> decltype(auto) {
        return doc.at("benign_violations").items();
      });
  for (std::size_t i = 0; i < benign.size(); ++i) {
    with_ctx("plan: benign_violations[" + std::to_string(i) + "]",
             [&] { plan.benign_violations.push_back(parse_violation(benign[i])); });
  }

  const auto& perturbed =
      with_ctx("plan: perturbed_sites", [&]() -> decltype(auto) {
        return doc.at("perturbed_sites").items();
      });
  for (std::size_t i = 0; i < perturbed.size(); ++i) {
    with_ctx("plan: perturbed_sites[" + std::to_string(i) + "]", [&] {
      plan.perturbed_site_tags.insert(perturbed[i].as_string());
    });
  }

  const auto& items = with_ctx("plan: items", [&]() -> decltype(auto) {
    return doc.at("items").items();
  });
  for (std::size_t i = 0; i < items.size(); ++i) {
    std::string where = "plan: items[" + std::to_string(i) + "]";
    with_ctx(where, [&] {
      const JsonValue& w = items[i];
      long long id = w.at("id").as_int();
      if (id != static_cast<long long>(i))
        throw WireError("stable id " + std::to_string(id) +
                        " out of order (expected " + std::to_string(i) + ")");
      long long point = w.at("point").as_int();
      if (point < 0 || point >= static_cast<long long>(plan.points.size()))
        throw WireError("point index " + std::to_string(point) +
                        " out of range (plan has " +
                        std::to_string(plan.points.size()) + " points)");
      const std::string& tag =
          plan.points[static_cast<std::size_t>(point)].site.tag;
      std::string site = w.at("site").as_string();
      if (site != tag)
        throw WireError("site '" + site + "' does not match point " +
                        std::to_string(point) + "'s site '" + tag + "'");
      FaultKind kind = fault_kind_from(w.at("kind").as_string());
      plan.items.push_back({static_cast<std::size_t>(point),
                            parse_fault(kind, w.at("fault").as_string())});
    });
  }
  return plan;
}

void refreeze_snapshot(InjectionPlan& plan, const Scenario& scenario) {
  if (scenario.snapshot_safe && !plan.items.empty() && !plan.snapshot)
    plan.snapshot = WorldSnapshot::freeze(scenario.build());
}

std::vector<std::size_t> shard_item_ids(std::size_t total_items,
                                        std::size_t shard_index,
                                        std::size_t shard_count) {
  if (shard_count == 0) throw WireError("shard count must be >= 1");
  if (shard_index >= shard_count)
    throw WireError("shard index " + std::to_string(shard_index + 1) +
                    " out of range for " + std::to_string(shard_count) +
                    " shards");
  std::vector<std::size_t> ids;
  ids.reserve(total_items / shard_count + 1);
  for (std::size_t i = shard_index; i < total_items; i += shard_count)
    ids.push_back(i);
  return ids;
}

std::string ShardReport::to_json() const {
  std::string out = "{\n";
  out += "  \"schema_version\": " + std::to_string(schema_version) + ",\n";
  out += "  \"kind\": \"shard-report\",\n";
  out += "  \"scenario\": " + json_quote(scenario_name) + ",\n";
  out += "  \"shard_index\": " + std::to_string(shard_index) + ",\n";
  out += "  \"shard_count\": " + std::to_string(shard_count) + ",\n";
  out += "  \"plan_items\": " + std::to_string(plan_items) + ",\n";
  if (outcomes.empty()) {
    out += "  \"outcomes\": []\n}\n";
    return out;
  }
  out += "  \"outcomes\": [\n";
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    out += "    " + json_outcome(item_ids[i], outcomes[i]);
    out += i + 1 < outcomes.size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

ShardReport shard_report_from_json(const std::string& text) {
  JsonValue doc = parse_document(text, "shard report");
  check_header(doc, "shard-report", "shard report");

  ShardReport report;
  report.scenario_name = with_ctx(
      "shard report: scenario", [&] { return doc.at("scenario").as_string(); });
  if (report.scenario_name.empty())
    fail("shard report", "scenario name is empty");
  report.shard_index = parse_count(doc, "shard_index", "shard report");
  report.shard_count = parse_count(doc, "shard_count", "shard report");
  report.plan_items = parse_count(doc, "plan_items", "shard report");
  if (report.shard_count == 0)
    fail("shard report", "shard_count must be >= 1");
  if (report.shard_index >= report.shard_count)
    fail("shard report",
         "shard_index " + std::to_string(report.shard_index) +
             " out of range for shard_count " +
             std::to_string(report.shard_count));

  const auto& outcomes =
      with_ctx("shard report: outcomes", [&]() -> decltype(auto) {
        return doc.at("outcomes").items();
      });
  // A set, not a plan_items-sized bitmap: plan_items is untrusted input
  // and must not size an allocation.
  std::set<std::size_t> seen;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    with_ctx("shard report: outcomes[" + std::to_string(i) + "]", [&] {
      const JsonValue& o = outcomes[i];
      long long id = o.at("id").as_int();
      if (id < 0 || id >= static_cast<long long>(report.plan_items))
        throw WireError("work-item id " + std::to_string(id) +
                        " out of range (plan has " +
                        std::to_string(report.plan_items) + " items)");
      auto uid = static_cast<std::size_t>(id);
      if (uid % report.shard_count != report.shard_index)
        throw WireError("work-item id " + std::to_string(id) +
                        " belongs to shard " +
                        std::to_string(uid % report.shard_count + 1) + "/" +
                        std::to_string(report.shard_count) + ", not shard " +
                        std::to_string(report.shard_index + 1) + "/" +
                        std::to_string(report.shard_count));
      if (!seen.insert(uid).second)
        throw WireError("duplicate outcome for work item " +
                        std::to_string(id));
      report.item_ids.push_back(uid);
      report.outcomes.push_back(parse_outcome(o));
    });
  }
  return report;
}

ShardReport run_shard(const Executor& executor, const InjectionPlan& plan,
                      std::size_t shard_index, std::size_t shard_count,
                      const ExecutorOptions& opts) {
  ShardReport report;
  report.scenario_name = plan.scenario_name;
  report.shard_index = shard_index;
  report.shard_count = shard_count;
  report.plan_items = plan.items.size();
  report.item_ids = shard_item_ids(plan.items.size(), shard_index,
                                   shard_count);  // validates the pair
  report.outcomes = executor.execute_subset(plan, report.item_ids, opts);
  return report;
}

CampaignResult merge_shard_reports(const InjectionPlan& plan,
                                   const std::vector<ShardReport>& shards) {
  if (shards.empty()) throw WireError("merge: no shard reports given");
  const std::size_t n = plan.items.size();
  const std::size_t shard_count = shards.front().shard_count;
  // shard_count is untrusted input and must not size an allocation until
  // it is bounded by something we were actually handed. A complete merge
  // has exactly one report per shard, so any mismatch is an error anyway
  // — and with counts equal, a missing shard implies a duplicate one.
  if (shard_count != shards.size())
    throw WireError("merge: got " + std::to_string(shards.size()) +
                    " shard report(s) but shard_count is " +
                    std::to_string(shard_count) +
                    "; every shard must be present exactly once");

  CampaignResult result = result_skeleton(plan);
  std::vector<bool> shard_seen(shard_count, false);
  std::vector<bool> id_seen(n, false);

  for (const auto& s : shards) {
    std::string who = "shard " + std::to_string(s.shard_index + 1) + "/" +
                      std::to_string(s.shard_count);
    if (s.scenario_name != plan.scenario_name)
      throw WireError(who + ": scenario '" + s.scenario_name +
                      "' does not match the plan's '" + plan.scenario_name +
                      "'");
    if (s.plan_items != n)
      throw WireError(who + ": written against a plan with " +
                      std::to_string(s.plan_items) +
                      " work items; this plan has " + std::to_string(n));
    if (s.shard_count != shard_count)
      throw WireError(who + ": shard_count " + std::to_string(s.shard_count) +
                      " disagrees with the first report's " +
                      std::to_string(shard_count));
    if (s.shard_index >= shard_count)
      throw WireError(who + ": shard_index out of range");
    if (shard_seen[s.shard_index])
      throw WireError("duplicate report for " + who);
    shard_seen[s.shard_index] = true;
    if (s.item_ids.size() != s.outcomes.size())
      throw WireError(who + ": item id / outcome count mismatch");

    for (std::size_t i = 0; i < s.item_ids.size(); ++i) {
      std::size_t id = s.item_ids[i];
      if (id >= n)
        throw WireError(who + ": work-item id " + std::to_string(id) +
                        " out of range (plan has " + std::to_string(n) +
                        " items)");
      if (id_seen[id])
        throw WireError(who + ": duplicate outcome for work item " +
                        std::to_string(id));
      const WorkItem& item = plan.items[id];
      const InjectionOutcome& o = s.outcomes[i];
      if (o.fault_name != item.fault.name() ||
          !(o.site == plan.point_of(item).site))
        throw WireError(who + ": outcome for work item " + std::to_string(id) +
                        " is fault '" + o.fault_name + "' at " + o.site.str() +
                        " but the plan's item " + std::to_string(id) +
                        " is '" + item.fault.name() + "' at " +
                        plan.point_of(item).site.str() +
                        " (report from a different plan?)");
      id_seen[id] = true;
      result.injections[id] = o;
    }
  }

  // All shard_count indices are in range and duplicate-free, and exactly
  // shard_count reports arrived — so every shard is present; only
  // per-item completeness (partial files) can still fail.
  for (std::size_t id = 0; id < n; ++id)
    if (!id_seen[id])
      throw WireError("work item " + std::to_string(id) +
                      " has no outcome (partial shard file?)");
  return result;
}

}  // namespace ep::core
