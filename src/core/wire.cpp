#include "core/wire.hpp"

#include <algorithm>
#include <climits>
#include <set>
#include <utility>

#include "core/catalog.hpp"
#include "core/snapshot.hpp"
#include "core/wire_internal.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"

namespace ep::core {

std::string json_site(const os::Site& s) {
  return "{\"unit\": " + json_quote(s.unit) +
         ", \"line\": " + std::to_string(s.line) +
         ", \"tag\": " + json_quote(s.tag) + "}";
}

std::string json_violation(const Violation& v) {
  return "{\"policy\": " + json_quote(std::string(to_string(v.policy))) +
         ", \"site\": " + json_site(v.site) +
         ", \"call\": " + json_quote(v.call) +
         ", \"object\": " + json_quote(v.object) +
         ", \"detail\": " + json_quote(v.detail) + "}";
}

namespace wire_detail {

FaultRef parse_fault(FaultKind kind, const std::string& name) {
  const FaultCatalog& cat = FaultCatalog::standard();
  FaultRef r;
  r.kind = kind;
  if (kind == FaultKind::indirect) {
    r.indirect = cat.find_indirect(name);
    if (!r.indirect)
      throw WireError("unknown indirect fault '" + name +
                      "' (plan written by a build with a different fault "
                      "catalog?)");
  } else {
    r.direct = cat.find_direct(name);
    if (!r.direct)
      throw WireError("unknown direct fault '" + name +
                      "' (plan written by a build with a different fault "
                      "catalog?)");
  }
  return r;
}

std::size_t owned_id_count(std::size_t total_items, std::size_t shard_index,
                           std::size_t shard_count) {
  return total_items > shard_index
             ? (total_items - shard_index - 1) / shard_count + 1
             : 0;
}

void check_completed_id(const ShardReport& report, long long id,
                        bool require_ascending) {
  if (id < 0 || id >= static_cast<long long>(report.plan_items))
    throw WireError("work-item id " + std::to_string(id) +
                    " out of range (plan has " +
                    std::to_string(report.plan_items) + " items)");
  auto uid = static_cast<std::size_t>(id);
  if (report.leased) {
    if (!std::binary_search(report.assigned_ids.begin(),
                            report.assigned_ids.end(), uid))
      throw WireError("work-item id " + std::to_string(id) +
                      " is not in this report's assigned_ids lease");
  } else if (uid % report.shard_count != report.shard_index) {
    throw WireError("work-item id " + std::to_string(id) +
                    " belongs to shard " +
                    std::to_string(uid % report.shard_count + 1) + "/" +
                    std::to_string(report.shard_count) + ", not shard " +
                    std::to_string(report.shard_index + 1) + "/" +
                    std::to_string(report.shard_count));
  }
  if (!report.item_ids.empty()) {
    std::size_t prev = report.item_ids.back();
    if (uid == prev)
      throw WireError("duplicate outcome for work item " +
                      std::to_string(id));
    if (require_ascending && uid < prev)
      throw WireError("completed_ids out of order (" + std::to_string(id) +
                      " after " + std::to_string(prev) + ")");
  }
}

void validate_complete_flag(ShardReport& report, bool flag_on_wire) {
  std::size_t owned = report.leased
                          ? report.assigned_ids.size()
                          : owned_id_count(report.plan_items,
                                           report.shard_index,
                                           report.shard_count);
  bool covered = report.item_ids.size() == owned;
  if (flag_on_wire && report.complete != covered)
    throw WireError(
        std::string("shard report: ") +
        (report.complete
             ? "'complete' is true but completed_ids covers " +
                   std::to_string(report.item_ids.size()) + " of the " +
                   std::to_string(owned) + " ids this shard owns"
             : "'complete' is false but completed_ids covers every id "
               "this shard owns"));
  report.complete = covered;
}

}  // namespace wire_detail

namespace {

/// Run `f`, prefixing any failure — JSON access or wire validation —
/// with where in the document it happened, so "missing key 'call'"
/// becomes "plan: points[3]: missing key 'call'" and "unknown direct
/// fault 'x'" names the item that referenced it. Use one level deep —
/// nesting would stack prefixes.
template <typename F>
auto with_ctx(const std::string& where, F&& f) -> decltype(f()) {
  try {
    return f();
  } catch (const std::exception& e) {
    throw WireError(where + ": " + e.what());
  }
}

[[noreturn]] void fail(const std::string& where, const std::string& msg) {
  throw WireError(where + ": " + msg);
}

JsonValue parse_document(const std::string& text, const char* what) {
  try {
    return json_parse(text);
  } catch (const JsonError& e) {
    throw WireError(std::string(what) + " is not valid JSON: " + e.what());
  }
}

/// Shared header validation: wire files self-describe with
/// schema_version + kind so a plan handed to merge (or vice versa) fails
/// with "kind 'injection-plan' where 'shard-report' was expected", not a
/// missing-field puzzle. Each kind carries its own supported version
/// range (plans: 1 through kPlanSchemaVersion; shard reports: 1 through
/// kShardSchemaVersion); the accepted version is returned so the caller
/// can pick the matching body parser.
int check_header(const JsonValue& doc, const char* expected_kind,
                 const char* what, int min_version, int max_version) {
  if (!doc.is_object())
    fail(what, "top-level value must be an object");
  const JsonValue* ver = doc.find("schema_version");
  if (!ver)
    fail(what, "missing 'schema_version' (not a wire-format file?)");
  // Kind before version: each kind has its own version range now, and a
  // plan handed to merge should say "wrong kind", not "wrong version".
  std::string kind = with_ctx(std::string(what) + ": kind",
                              [&] { return doc.at("kind").as_string(); });
  if (kind != expected_kind)
    fail(what, "kind '" + kind + "' where '" + expected_kind +
                   "' was expected");
  long long v = with_ctx(std::string(what) + ": schema_version",
                         [&] { return ver->as_int(); });
  if (v < min_version || v > max_version) {
    std::string supported =
        min_version == max_version
            ? "version " + std::to_string(min_version)
            : "versions " + std::to_string(min_version) + " through " +
                  std::to_string(max_version);
    fail(what, "unsupported schema_version " + std::to_string(v) +
                   " (this build reads " + supported + ")");
  }
  return static_cast<int>(v);
}

FaultKind fault_kind_from(const std::string& s) {
  for (FaultKind k : {FaultKind::indirect, FaultKind::direct})
    if (to_string(k) == s) return k;
  throw WireError("unknown fault kind '" + s + "'");
}

ObjectKind object_kind_from(const std::string& s) {
  for (ObjectKind k :
       {ObjectKind::file, ObjectKind::directory, ObjectKind::exec_binary,
        ObjectKind::net_inbound, ObjectKind::net_service,
        ObjectKind::ipc_service, ObjectKind::registry_key,
        ObjectKind::user_input, ObjectKind::env_var, ObjectKind::none})
    if (to_string(k) == s) return k;
  throw WireError("unknown object kind '" + s + "'");
}

InputSemantic semantic_from(const std::string& s) {
  for (InputSemantic k :
       {InputSemantic::file_name, InputSemantic::command,
        InputSemantic::path_list, InputSemantic::permission_mask,
        InputSemantic::file_extension, InputSemantic::ip_address,
        InputSemantic::packet, InputSemantic::host_name,
        InputSemantic::dns_reply, InputSemantic::ipc_message})
    if (to_string(k) == s) return k;
  throw WireError("unknown input semantic '" + s + "'");
}

Policy policy_from(const std::string& s) {
  for (Policy p : {Policy::integrity, Policy::confidentiality,
                   Policy::untrusted_exec, Policy::memory_safety,
                   Policy::trust, Policy::authorization,
                   Policy::redzone_corruption})
    if (to_string(p) == s) return p;
  throw WireError("unknown policy '" + s + "'");
}

/// An int-typed wire value: silently wrapping a long long would break
/// both validation ("reject what you cannot represent") and the
/// parse -> re-serialize byte-identity contract.
int parse_int32_value(const JsonValue& v, const std::string& what) {
  long long n = v.as_int();
  if (n < INT_MIN || n > INT_MAX)
    throw WireError(what + " " + std::to_string(n) +
                    " does not fit a 32-bit int");
  return static_cast<int>(n);
}

int parse_int32(const JsonValue& v, const char* key) {
  return parse_int32_value(v.at(key), key);
}

os::Site parse_site(const JsonValue& v) {
  os::Site s;
  s.unit = v.at("unit").as_string();
  s.line = parse_int32(v, "line");
  s.tag = v.at("tag").as_string();
  return s;
}

Violation parse_violation(const JsonValue& v) {
  Violation out;
  out.policy = policy_from(v.at("policy").as_string());
  out.site = parse_site(v.at("site"));
  out.call = v.at("call").as_string();
  out.object = v.at("object").as_string();
  out.detail = v.at("detail").as_string();
  return out;
}

/// The exploit object, shared by the v1 and v2 encodings.
std::string json_exploit(const Exploitability& e) {
  return std::string("{\"nonroot_feasible\": ") +
         (e.nonroot_feasible ? "true" : "false") +
         ", \"actor\": " + json_quote(e.actor) +
         ", \"note\": " + json_quote(e.note) + "}";
}

/// A version-1 (row-oriented) outcome object — read path only; the
/// serializer writes the columnar version-2 encoding.
InjectionOutcome parse_outcome(const JsonValue& v) {
  InjectionOutcome o;
  o.site = parse_site(v.at("site"));
  o.call = v.at("call").as_string();
  o.object = v.at("object").as_string();
  o.kind = fault_kind_from(v.at("kind").as_string());
  o.fault_name = v.at("fault").as_string();
  o.fault_description = v.at("fault_description").as_string();
  o.fired = v.at("fired").as_bool();
  o.violated = v.at("violated").as_bool();
  o.crashed = v.at("crashed").as_bool();
  o.overflows = parse_int32(v, "overflows");
  o.exit_code = parse_int32(v, "exit_code");
  for (const JsonValue& viol : v.at("violations").items())
    o.violations.push_back(parse_violation(viol));
  // v1 carried `violated` as its own field, but the serializer always
  // kept it equal to "violations is non-empty" — and the v2 encoding
  // derives it, so a disagreeing file could not re-serialize
  // canonically. Reject it here the way the v2 parser rejects a
  // mismatched exploit null.
  if (o.violated != !o.violations.empty())
    throw WireError(std::string("'violated' is ") +
                    (o.violated ? "true" : "false") +
                    " but 'violations' is " +
                    (o.violations.empty() ? "empty" : "non-empty"));
  const JsonValue& e = v.at("exploit");
  o.exploit.nonroot_feasible = e.at("nonroot_feasible").as_bool();
  o.exploit.actor = e.at("actor").as_string();
  o.exploit.note = e.at("note").as_string();
  return o;
}

std::size_t parse_count(const JsonValue& doc, const char* key,
                        const char* what) {
  long long v = with_ctx(std::string(what) + ": " + key,
                         [&] { return doc.at(key).as_int(); });
  if (v < 0) fail(what, std::string(key) + " must be >= 0");
  return static_cast<std::size_t>(v);
}

/// The shared shard-report header fields (both schema versions).
ShardReport parse_shard_header(const JsonValue& doc, int version) {
  ShardReport report;
  report.schema_version = version;
  report.scenario_name = with_ctx(
      "shard report: scenario", [&] { return doc.at("scenario").as_string(); });
  if (report.scenario_name.empty())
    fail("shard report", "scenario name is empty");
  report.shard_index = parse_count(doc, "shard_index", "shard report");
  report.shard_count = parse_count(doc, "shard_count", "shard report");
  report.plan_items = parse_count(doc, "plan_items", "shard report");
  if (report.shard_count == 0)
    fail("shard report", "shard_count must be >= 1");
  if (report.shard_index >= report.shard_count)
    fail("shard report",
         "shard_index " + std::to_string(report.shard_index) +
             " out of range for shard_count " +
             std::to_string(report.shard_count));
  return report;
}

/// The optional `assigned_ids` lease (schema_version 2 only). Absent =
/// the modulo partition, byte for byte as before; present = ownership is
/// exactly this ascending, unique, in-range id list, and the modulo
/// fields must be the fixed 0/1 so the two styles cannot contradict.
void parse_assigned_ids(const JsonValue& doc, ShardReport& report) {
  const JsonValue* lease = doc.find("assigned_ids");
  if (!lease) return;
  report.leased = true;
  if (report.shard_index != 0 || report.shard_count != 1)
    fail("shard report",
         "a leased report (assigned_ids) must carry shard_index 0 and "
         "shard_count 1, not shard " +
             std::to_string(report.shard_index + 1) + "/" +
             std::to_string(report.shard_count));
  const auto& ids =
      with_ctx("shard report: assigned_ids",
               [&]() -> decltype(auto) { return lease->items(); });
  for (std::size_t i = 0; i < ids.size(); ++i) {
    with_ctx("shard report: assigned_ids[" + std::to_string(i) + "]", [&] {
      long long id = ids[i].as_int();
      if (id < 0 || id >= static_cast<long long>(report.plan_items))
        throw WireError("work-item id " + std::to_string(id) +
                        " out of range (plan has " +
                        std::to_string(report.plan_items) + " items)");
      auto uid = static_cast<std::size_t>(id);
      if (!report.assigned_ids.empty()) {
        std::size_t prev = report.assigned_ids.back();
        if (uid == prev)
          throw WireError("duplicate assigned id " + std::to_string(id));
        if (uid < prev)
          throw WireError("assigned_ids out of order (" + std::to_string(id) +
                          " after " + std::to_string(prev) + ")");
      }
      report.assigned_ids.push_back(uid);
    });
  }
}

/// Version 1: one object per outcome, every field on the wire. Duplicate
/// ids were rejected but ordering was not canonical, and the format
/// predates partial reports — completeness is inferred from coverage.
void parse_shard_outcomes_v1(const JsonValue& doc, ShardReport& report) {
  const auto& outcomes =
      with_ctx("shard report: outcomes", [&]() -> decltype(auto) {
        return doc.at("outcomes").items();
      });
  // A set, not a plan_items-sized bitmap: plan_items is untrusted input
  // and must not size an allocation.
  std::set<std::size_t> seen;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    with_ctx("shard report: outcomes[" + std::to_string(i) + "]", [&] {
      const JsonValue& o = outcomes[i];
      long long id = o.at("id").as_int();
      wire_detail::check_completed_id(report, id,
                                      /*require_ascending=*/false);
      auto uid = static_cast<std::size_t>(id);
      if (!seen.insert(uid).second)
        throw WireError("duplicate outcome for work item " +
                        std::to_string(id));
      report.item_ids.push_back(uid);
      report.outcomes.push_back(parse_outcome(o));
    });
  }
  // v1 never promised an ordering; the in-memory report (and its v2
  // re-serialization, whose completed_ids must ascend) does. Sort the
  // pairs by id — ids are already unique.
  std::vector<std::size_t> order(report.item_ids.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return report.item_ids[a] < report.item_ids[b];
  });
  std::vector<std::size_t> sorted_ids;
  std::vector<InjectionOutcome> sorted_outcomes;
  sorted_ids.reserve(order.size());
  sorted_outcomes.reserve(order.size());
  for (std::size_t i : order) {
    sorted_ids.push_back(report.item_ids[i]);
    sorted_outcomes.push_back(std::move(report.outcomes[i]));
  }
  report.item_ids = std::move(sorted_ids);
  report.outcomes = std::move(sorted_outcomes);
}

/// Version 2: `completed_ids` plus one column array per run-dependent
/// field. The plan-derivable fields (site, call, object, fault, ...) are
/// not on the wire — merge_shard_reports re-derives them by id.
void parse_shard_outcomes_v2(const JsonValue& doc, ShardReport& report) {
  const auto& ids =
      with_ctx("shard report: completed_ids", [&]() -> decltype(auto) {
        return doc.at("completed_ids").items();
      });
  for (std::size_t i = 0; i < ids.size(); ++i) {
    with_ctx("shard report: completed_ids[" + std::to_string(i) + "]", [&] {
      long long id = ids[i].as_int();
      wire_detail::check_completed_id(report, id,
                                      /*require_ascending=*/true);
      report.item_ids.push_back(static_cast<std::size_t>(id));
    });
  }

  const JsonValue& cols = with_ctx(
      "shard report: outcomes",
      [&]() -> decltype(auto) { return doc.at("outcomes"); });
  if (!cols.is_object())
    fail("shard report",
         "outcomes must be an object of column arrays (schema_version 2)");
  report.outcomes = wire_detail::outcomes_from_columns(
      cols, report.item_ids.size(), "shard report");
}

}  // namespace

namespace wire_detail {

std::string outcome_columns_json(const std::vector<InjectionOutcome>& outcomes,
                                 const std::string& indent) {
  std::string out;
  const std::size_t n = outcomes.size();
  auto col = [&](const char* name, auto cell, bool last = false) {
    out += indent + "\"" + std::string(name) + "\": [";
    for (std::size_t i = 0; i < n; ++i)
      out += (i ? ", " : "") + cell(outcomes[i]);
    out += last ? "]\n" : "],\n";
  };
  col("fired", [](const InjectionOutcome& o) {
    return std::string(o.fired ? "true" : "false");
  });
  col("crashed", [](const InjectionOutcome& o) {
    return std::string(o.crashed ? "true" : "false");
  });
  col("overflows",
      [](const InjectionOutcome& o) { return std::to_string(o.overflows); });
  col("exit_code",
      [](const InjectionOutcome& o) { return std::to_string(o.exit_code); });
  col("violations", [](const InjectionOutcome& o) {
    std::string cell = "[";
    for (std::size_t v = 0; v < o.violations.size(); ++v)
      cell += std::string(v ? ", " : "") + json_violation(o.violations[v]);
    return cell + "]";
  });
  col("exploit",
      [](const InjectionOutcome& o) {
        return o.violated ? json_exploit(o.exploit) : std::string("null");
      },
      /*last=*/true);
  return out;
}

std::vector<InjectionOutcome> outcomes_from_columns(const JsonValue& cols,
                                                    std::size_t n,
                                                    const std::string& ctx) {
  auto column = [&](const char* name) -> const std::vector<JsonValue>& {
    const auto& items =
        with_ctx(ctx + ": outcomes." + std::string(name),
                 [&]() -> decltype(auto) { return cols.at(name).items(); });
    if (items.size() != n)
      fail(ctx, "outcomes." + std::string(name) + " has " +
                    std::to_string(items.size()) + " entries for " +
                    std::to_string(n) + " completed ids");
    return items;
  };
  const auto& fired = column("fired");
  const auto& crashed = column("crashed");
  const auto& overflows = column("overflows");
  const auto& exit_code = column("exit_code");
  const auto& violations = column("violations");
  const auto& exploit = column("exploit");

  std::vector<InjectionOutcome> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::string where = ctx + ": outcomes[" + std::to_string(i) + "]";
    with_ctx(where, [&] {
      InjectionOutcome o;
      o.fired = fired[i].as_bool();
      o.crashed = crashed[i].as_bool();
      o.overflows = parse_int32_value(overflows[i], "overflows");
      o.exit_code = parse_int32_value(exit_code[i], "exit_code");
      for (const JsonValue& viol : violations[i].items())
        o.violations.push_back(parse_violation(viol));
      o.violated = !o.violations.empty();
      // Canonical form: the exploit analysis exists exactly for violated
      // outcomes, so null-vs-object must agree with the violations column
      // or parse -> re-serialize would not reproduce the bytes.
      if (exploit[i].is_null()) {
        if (o.violated)
          throw WireError("exploit is null for a violated outcome");
      } else {
        if (!o.violated)
          throw WireError("exploit present for an outcome with no "
                          "violations");
        const JsonValue& e = exploit[i];
        o.exploit.nonroot_feasible = e.at("nonroot_feasible").as_bool();
        o.exploit.actor = e.at("actor").as_string();
        o.exploit.note = e.at("note").as_string();
      }
      out.push_back(std::move(o));
    });
  }
  return out;
}

}  // namespace wire_detail

InjectionPlan plan_from_json(const std::string& text) {
  JsonValue doc = parse_document(text, "plan");
  // Version 1 files (pre-redzone) are identical in layout; the bump only
  // admits the policy name a v1 reader would reject.
  check_header(doc, "injection-plan", "plan", 1, kPlanSchemaVersion);

  InjectionPlan plan;
  plan.scenario_name =
      with_ctx("plan: scenario", [&] { return doc.at("scenario").as_string(); });
  if (plan.scenario_name.empty()) fail("plan", "scenario name is empty");

  const auto& points = with_ctx("plan: points", [&]() -> decltype(auto) {
    return doc.at("points").items();
  });
  for (std::size_t i = 0; i < points.size(); ++i) {
    with_ctx("plan: points[" + std::to_string(i) + "]", [&] {
      const JsonValue& p = points[i];
      InteractionPoint point;
      point.site = parse_site(p.at("site"));
      point.call = p.at("call").as_string();
      point.object = p.at("object").as_string();
      point.kind = object_kind_from(p.at("kind").as_string());
      point.semantic = semantic_from(p.at("semantic").as_string());
      point.channel_kind = p.at("channel").as_string();
      point.has_input = p.at("has_input").as_bool();
      point.hits = parse_int32(p, "hits");
      plan.points.push_back(std::move(point));
    });
  }

  const auto& benign =
      with_ctx("plan: benign_violations", [&]() -> decltype(auto) {
        return doc.at("benign_violations").items();
      });
  for (std::size_t i = 0; i < benign.size(); ++i) {
    with_ctx("plan: benign_violations[" + std::to_string(i) + "]",
             [&] { plan.benign_violations.push_back(parse_violation(benign[i])); });
  }

  const auto& perturbed =
      with_ctx("plan: perturbed_sites", [&]() -> decltype(auto) {
        return doc.at("perturbed_sites").items();
      });
  for (std::size_t i = 0; i < perturbed.size(); ++i) {
    with_ctx("plan: perturbed_sites[" + std::to_string(i) + "]", [&] {
      plan.perturbed_site_tags.insert(perturbed[i].as_string());
    });
  }

  const auto& items = with_ctx("plan: items", [&]() -> decltype(auto) {
    return doc.at("items").items();
  });
  for (std::size_t i = 0; i < items.size(); ++i) {
    std::string where = "plan: items[" + std::to_string(i) + "]";
    with_ctx(where, [&] {
      const JsonValue& w = items[i];
      long long id = w.at("id").as_int();
      if (id != static_cast<long long>(i))
        throw WireError("stable id " + std::to_string(id) +
                        " out of order (expected " + std::to_string(i) + ")");
      long long point = w.at("point").as_int();
      if (point < 0 || point >= static_cast<long long>(plan.points.size()))
        throw WireError("point index " + std::to_string(point) +
                        " out of range (plan has " +
                        std::to_string(plan.points.size()) + " points)");
      const std::string& tag =
          plan.points[static_cast<std::size_t>(point)].site.tag;
      std::string site = w.at("site").as_string();
      if (site != tag)
        throw WireError("site '" + site + "' does not match point " +
                        std::to_string(point) + "'s site '" + tag + "'");
      FaultKind kind = fault_kind_from(w.at("kind").as_string());
      WorkItem item{static_cast<std::size_t>(point),
                    wire_detail::parse_fault(kind, w.at("fault").as_string())};
      // Optional perturbation parameter (search-generated items only);
      // absent means 0, and the serializer omits 0, so exhaustive plans
      // round-trip byte-identically.
      if (const JsonValue* param = w.find("param")) {
        long long v = param->as_int();
        if (v <= 0)
          throw WireError("param " + std::to_string(v) +
                          " must be a positive integer when present");
        item.param = static_cast<std::uint64_t>(v);
      }
      plan.items.push_back(item);
    });
  }
  return plan;
}

void refreeze_snapshot(InjectionPlan& plan, const Scenario& scenario) {
  if (scenario.snapshot_safe && !plan.items.empty() && !plan.snapshot)
    plan.snapshot = WorldSnapshot::freeze(scenario.build());
}

std::vector<std::size_t> shard_item_ids(std::size_t total_items,
                                        std::size_t shard_index,
                                        std::size_t shard_count) {
  if (shard_count == 0) throw WireError("shard count must be >= 1");
  if (shard_index >= shard_count)
    throw WireError("shard index " + std::to_string(shard_index + 1) +
                    " out of range for " + std::to_string(shard_count) +
                    " shards");
  std::vector<std::size_t> ids;
  ids.reserve(total_items / shard_count + 1);
  for (std::size_t i = shard_index; i < total_items; i += shard_count)
    ids.push_back(i);
  return ids;
}

std::string feedback_spec(const InjectionPlan& plan, std::size_t begin,
                          std::size_t end) {
  if (begin >= end || end > plan.items.size())
    throw WireError("feedback range [" + std::to_string(begin) + ", " +
                    std::to_string(end) + ") does not fit the plan (" +
                    std::to_string(plan.items.size()) + " items)");
  std::string out;
  for (std::size_t i = begin; i < end; ++i) {
    const WorkItem& w = plan.items[i];
    if (i != begin) out += ',';
    out += std::to_string(w.point_index);
    out += w.fault.kind == FaultKind::indirect ? ":i:" : ":d:";
    out += w.fault.name();
    out += ':';
    out += std::to_string(w.param);
  }
  return out;
}

namespace {

/// Strict non-negative decimal for feedback-spec fields: digits only, no
/// sign, no prefix, capped at long long max so every value survives a
/// JSON round trip (plan params serialize through as_int()).
unsigned long long parse_spec_number(const std::string& field,
                                     const char* what) {
  if (field.empty())
    throw WireError(std::string("feedback spec: empty ") + what + " field");
  unsigned long long v = 0;
  for (char c : field) {
    if (c < '0' || c > '9')
      throw WireError(std::string("feedback spec: ") + what + " '" + field +
                      "' is not a plain decimal number");
    unsigned long long digit = static_cast<unsigned long long>(c - '0');
    if (v > (static_cast<unsigned long long>(LLONG_MAX) - digit) / 10)
      throw WireError(std::string("feedback spec: ") + what + " '" + field +
                      "' does not fit a 64-bit signed integer");
    v = v * 10 + digit;
  }
  return v;
}

}  // namespace

std::vector<WorkItem> parse_feedback_spec(const std::string& spec,
                                          std::size_t point_count) {
  if (spec.empty()) throw WireError("feedback spec is empty");
  std::vector<WorkItem> items;
  std::size_t pos = 0;
  for (;;) {
    std::size_t comma = spec.find(',', pos);
    std::string entry = comma == std::string::npos
                            ? spec.substr(pos)
                            : spec.substr(pos, comma - pos);
    // point:kind:fault:param — exactly four ':'-separated fields.
    std::vector<std::string> fields;
    std::size_t fpos = 0;
    for (;;) {
      std::size_t colon = entry.find(':', fpos);
      if (colon == std::string::npos) {
        fields.push_back(entry.substr(fpos));
        break;
      }
      fields.push_back(entry.substr(fpos, colon - fpos));
      fpos = colon + 1;
    }
    if (fields.size() != 4)
      throw WireError("feedback spec entry '" + entry +
                      "' is not point:kind:fault:param");
    WorkItem item;
    unsigned long long point = parse_spec_number(fields[0], "point");
    if (point >= point_count)
      throw WireError("feedback spec: point index " + fields[0] +
                      " out of range (plan has " +
                      std::to_string(point_count) + " points)");
    item.point_index = static_cast<std::size_t>(point);
    FaultKind kind;
    if (fields[1] == "i")
      kind = FaultKind::indirect;
    else if (fields[1] == "d")
      kind = FaultKind::direct;
    else
      throw WireError("feedback spec: fault kind '" + fields[1] +
                      "' is neither 'i' nor 'd'");
    item.fault = wire_detail::parse_fault(kind, fields[2]);
    item.param = parse_spec_number(fields[3], "param");
    items.push_back(item);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return items;
}

std::string ShardReport::to_json() const {
  // The columnar version-2 encoding: `completed_ids` names the ids this
  // file actually holds (the resume key), and only the run-dependent
  // outcome fields are serialized — one array per field, so the per-
  // outcome framing and the plan-redundant strings of version 1 are gone.
  std::string out = "{\n";
  out += "  \"schema_version\": " + std::to_string(kShardSchemaVersion) +
         ",\n";
  out += "  \"kind\": \"shard-report\",\n";
  out += "  \"scenario\": " + json_quote(scenario_name) + ",\n";
  out += "  \"shard_index\": " + std::to_string(shard_index) + ",\n";
  out += "  \"shard_count\": " + std::to_string(shard_count) + ",\n";
  out += "  \"plan_items\": " + std::to_string(plan_items) + ",\n";
  if (leased) {
    // The optional lease: only leased reports carry it, so modulo shard
    // files keep their pre-lease bytes and round-trip unchanged.
    out += "  \"assigned_ids\": [";
    for (std::size_t i = 0; i < assigned_ids.size(); ++i)
      out += (i ? ", " : "") + std::to_string(assigned_ids[i]);
    out += "],\n";
  }
  out += std::string("  \"complete\": ") + (complete ? "true" : "false") +
         ",\n";
  out += "  \"completed_ids\": [";
  for (std::size_t i = 0; i < item_ids.size(); ++i)
    out += (i ? ", " : "") + std::to_string(item_ids[i]);
  out += "],\n";

  out += "  \"outcomes\": {\n";
  out += wire_detail::outcome_columns_json(outcomes, "    ");
  out += "  }\n}\n";
  return out;
}

ShardReport shard_report_from_json(const std::string& text) {
  JsonValue doc = parse_document(text, "shard report");
  int version = check_header(doc, "shard-report", "shard report", 1,
                             kShardSchemaVersion);
  ShardReport report = parse_shard_header(doc, version);
  if (version >= 2) {
    parse_assigned_ids(doc, report);
    report.complete = with_ctx("shard report: complete",
                               [&] { return doc.at("complete").as_bool(); });
    parse_shard_outcomes_v2(doc, report);
  } else {
    parse_shard_outcomes_v1(doc, report);
  }

  // `complete` is derived state: the ids are each owned and unique, so
  // coverage is a count comparison. Version 1 files predate the flag and
  // infer it; a version-2 flag that disagrees is a corrupt file.
  wire_detail::validate_complete_flag(report,
                                      /*flag_on_wire=*/version >= 2);
  return report;
}

namespace {

/// The shared drain behind run_shard, run_lease, and resume_shard:
/// execute the `owned` ids (the modulo partition, or the lease already
/// recorded in `header`) not already in (done_ids, done_outcomes),
/// optionally flushing a valid partial report after every checkpoint
/// chunk, and assemble the combined report ascending by id. Preemption
/// (hooks.interrupted) stops between chunks and yields complete == false.
ShardReport drain_shard(const Executor& executor, const InjectionPlan& plan,
                        const ShardReport& header,
                        const std::vector<std::size_t>& owned,
                        const std::vector<std::size_t>& done_ids,
                        const std::vector<InjectionOutcome>& done_outcomes,
                        const ExecutorOptions& opts,
                        const ShardDrainHooks& hooks) {
  std::vector<std::size_t> todo;  // owned minus done, ascending
  {
    std::size_t d = 0;
    for (std::size_t id : owned) {
      while (d < done_ids.size() && done_ids[d] < id) ++d;
      if (d < done_ids.size() && done_ids[d] == id) continue;
      todo.push_back(id);
    }
  }

  // Merge the prior outcomes and the drained prefix ascending by id —
  // the serialized bytes must match an uninterrupted run no matter where
  // (or whether) the drain was cut.
  auto assemble = [&](const std::vector<InjectionOutcome>& drained) {
    ShardReport r = header;
    r.item_ids.reserve(done_ids.size() + drained.size());
    r.outcomes.reserve(done_ids.size() + drained.size());
    std::size_t a = 0, b = 0;
    while (a < done_ids.size() || b < drained.size()) {
      if (b >= drained.size() ||
          (a < done_ids.size() && done_ids[a] < todo[b])) {
        r.item_ids.push_back(done_ids[a]);
        r.outcomes.push_back(done_outcomes[a]);
        ++a;
      } else {
        r.item_ids.push_back(todo[b]);
        r.outcomes.push_back(drained[b]);
        ++b;
      }
    }
    r.complete = r.item_ids.size() == owned.size();
    return r;
  };

  std::function<void(const std::vector<InjectionOutcome>&)> flush;
  if (hooks.on_checkpoint)
    flush = [&](const std::vector<InjectionOutcome>& prefix) {
      hooks.on_checkpoint(assemble(prefix));
    };
  return assemble(executor.execute_subset_checkpointed(
      plan, todo, hooks.checkpoint_every, flush, hooks.interrupted, opts));
}

}  // namespace

ShardReport run_shard(const Executor& executor, const InjectionPlan& plan,
                      std::size_t shard_index, std::size_t shard_count,
                      const ExecutorOptions& opts,
                      const ShardDrainHooks& hooks) {
  ShardReport header;
  header.scenario_name = plan.scenario_name;
  header.shard_index = shard_index;
  header.shard_count = shard_count;
  header.plan_items = plan.items.size();
  return drain_shard(executor, plan, header,
                     shard_item_ids(plan.items.size(), shard_index,
                                    shard_count),
                     {}, {}, opts, hooks);
}

ShardReport run_lease(const Executor& executor, const InjectionPlan& plan,
                      std::size_t begin, std::size_t end,
                      const ExecutorOptions& opts,
                      const ShardDrainHooks& hooks) {
  if (begin > end || end > plan.items.size())
    throw WireError("lease [" + std::to_string(begin) + ", " +
                    std::to_string(end) + ") does not fit the plan (" +
                    std::to_string(plan.items.size()) + " items)");
  ShardReport header;
  header.scenario_name = plan.scenario_name;
  header.plan_items = plan.items.size();
  header.leased = true;
  header.assigned_ids.reserve(end - begin);
  for (std::size_t id = begin; id < end; ++id)
    header.assigned_ids.push_back(id);
  return drain_shard(executor, plan, header, header.assigned_ids, {}, {},
                     opts, hooks);
}

ShardReport resume_shard(const Executor& executor, const InjectionPlan& plan,
                         const ShardReport& partial,
                         const ExecutorOptions& opts,
                         const ShardDrainHooks& hooks) {
  // The parser already held wire files to the shard-level invariants;
  // re-check here so in-memory callers get the same guarantees, plus the
  // plan-level matches only resume can check.
  if (partial.scenario_name != plan.scenario_name)
    throw WireError("resume: report's scenario '" + partial.scenario_name +
                    "' does not match the plan's '" + plan.scenario_name +
                    "'");
  if (partial.plan_items != plan.items.size())
    throw WireError("resume: report written against a plan with " +
                    std::to_string(partial.plan_items) +
                    " work items; this plan has " +
                    std::to_string(plan.items.size()));
  if (partial.shard_count == 0)
    throw WireError("resume: shard_count must be >= 1");
  if (partial.shard_index >= partial.shard_count)
    throw WireError("resume: shard_index " +
                    std::to_string(partial.shard_index) +
                    " out of range for shard_count " +
                    std::to_string(partial.shard_count));
  if (partial.item_ids.size() != partial.outcomes.size())
    throw WireError("resume: item id / outcome count mismatch");
  if (partial.leased &&
      (partial.shard_index != 0 || partial.shard_count != 1))
    throw WireError(
        "resume: a leased report (assigned_ids) must carry shard_index 0 "
        "and shard_count 1, not shard " +
        std::to_string(partial.shard_index + 1) + "/" +
        std::to_string(partial.shard_count));
  // `checked` doubles as the drain header once validation passes — one
  // place to populate, so header and validation can never disagree.
  ShardReport checked;
  checked.scenario_name = plan.scenario_name;
  checked.shard_index = partial.shard_index;
  checked.shard_count = partial.shard_count;
  checked.plan_items = partial.plan_items;
  checked.leased = partial.leased;
  for (std::size_t id : partial.assigned_ids) {
    if (id >= plan.items.size())
      throw WireError("resume: assigned id " + std::to_string(id) +
                      " out of range (plan has " +
                      std::to_string(plan.items.size()) + " items)");
    if (!checked.assigned_ids.empty() && id <= checked.assigned_ids.back())
      throw WireError("resume: assigned_ids must ascend without duplicates");
    checked.assigned_ids.push_back(id);
  }
  if (checked.leased) {
    // Leased resume: item_ids and assigned_ids both ascend, so lease
    // membership is one two-pointer walk over the lease — the previous
    // per-id binary search re-walked the assigned set for every
    // completed id, which a merge --all resume sweep repeated per file.
    std::size_t cursor = 0;
    for (std::size_t i = 0; i < partial.item_ids.size(); ++i) {
      std::size_t id = partial.item_ids[i];
      if (id >= checked.plan_items)
        throw WireError("work-item id " + std::to_string(id) +
                        " out of range (plan has " +
                        std::to_string(checked.plan_items) + " items)");
      if (i > 0) {
        std::size_t prev = partial.item_ids[i - 1];
        if (id == prev)
          throw WireError("duplicate outcome for work item " +
                          std::to_string(id));
        if (id < prev)
          throw WireError("completed_ids out of order (" +
                          std::to_string(id) + " after " +
                          std::to_string(prev) + ")");
      }
      while (cursor < checked.assigned_ids.size() &&
             checked.assigned_ids[cursor] < id)
        ++cursor;
      if (cursor >= checked.assigned_ids.size() ||
          checked.assigned_ids[cursor] != id)
        throw WireError("work-item id " + std::to_string(id) +
                        " is not in this report's assigned_ids lease");
    }
  } else {
    for (std::size_t id : partial.item_ids) {
      wire_detail::check_completed_id(checked, static_cast<long long>(id),
                                      /*require_ascending=*/true);
      checked.item_ids.push_back(id);
    }
    checked.item_ids.clear();
  }
  return drain_shard(executor, plan, checked,
                     partial.leased
                         ? partial.assigned_ids
                         : shard_item_ids(plan.items.size(),
                                          partial.shard_index,
                                          partial.shard_count),
                     partial.item_ids, partial.outcomes, opts, hooks);
}

CampaignResult merge_shard_reports(const InjectionPlan& plan,
                                   const std::vector<ShardReport>& shards,
                                   const std::vector<std::string>& labels) {
  if (shards.empty()) throw WireError("merge: no shard reports given");
  if (!labels.empty() && labels.size() != shards.size())
    throw WireError("merge: got " + std::to_string(shards.size()) +
                    " shard report(s) but " + std::to_string(labels.size()) +
                    " label(s)");
  const std::size_t n = plan.items.size();

  // Attribute every diagnostic to its source file when the caller named
  // one — "shard 3/7" alone does not say which of seven paths to fix.
  auto who_of = [&](std::size_t si) {
    const ShardReport& s = shards[si];
    std::string who =
        s.leased ? "lease report " + std::to_string(si + 1)
                 : "shard " + std::to_string(s.shard_index + 1) + "/" +
                       std::to_string(s.shard_count);
    if (si < labels.size() && !labels[si].empty())
      who += " (" + labels[si] + ")";
    return who;
  };

  // A merge is either a modulo shard set or a lease partition; a mixed
  // set has no single ownership rule to validate against.
  const bool lease_mode = shards.front().leased;
  for (std::size_t si = 0; si < shards.size(); ++si)
    if (shards[si].leased != lease_mode)
      throw WireError(who_of(si) +
                      ": cannot mix lease-based (assigned_ids) and modulo "
                      "shard reports in one merge");

  const std::size_t shard_count = shards.front().shard_count;
  if (!lease_mode) {
    // shard_count is untrusted input and must not size an allocation
    // until it is bounded by something we were actually handed. A
    // complete merge has exactly one report per shard, so any mismatch is
    // an error anyway — and with counts equal, a missing shard implies a
    // duplicate one.
    if (shard_count != shards.size())
      throw WireError("merge: got " + std::to_string(shards.size()) +
                      " shard report(s) but shard_count is " +
                      std::to_string(shard_count) +
                      "; every shard must be present exactly once");
  }

  CampaignResult result = result_skeleton(plan);

  // The plan-redundant outcome fields (site/call/object/fault), resolved
  // once per merge into an id-indexed table. They used to be re-derived
  // inside the per-report loop, so an `--all` merge re-resolved point and
  // fault catalog entries for every report file it read; every report now
  // indexes the same table.
  struct Derived {
    const InteractionPoint* point;
    const WorkItem* item;
    const std::string* description;
  };
  std::vector<Derived> derived;
  derived.reserve(n);
  for (std::size_t id = 0; id < n; ++id) {
    const WorkItem& item = plan.items[id];
    derived.push_back({&plan.point_of(item), &item,
                       item.fault.kind == FaultKind::indirect
                           ? &item.fault.indirect->description
                           : &item.fault.direct->description});
  }

  std::vector<bool> shard_seen(lease_mode ? 0 : shard_count, false);
  std::vector<std::size_t> seen_by(lease_mode ? 0 : shard_count, 0);
  // The id -> owning-report map, built once up front: both the
  // disjointness check and the missing-outcome attribution below resolve
  // owners through it instead of rescanning the shard list per item.
  constexpr std::size_t kUnowned = static_cast<std::size_t>(-1);
  std::vector<std::size_t> owner_of(lease_mode ? n : 0, kUnowned);
  std::vector<bool> id_seen(n, false);

  for (std::size_t si = 0; si < shards.size(); ++si) {
    const ShardReport& s = shards[si];
    std::string who = who_of(si);
    if (s.scenario_name != plan.scenario_name)
      throw WireError(who + ": scenario '" + s.scenario_name +
                      "' does not match the plan's '" + plan.scenario_name +
                      "'");
    if (s.plan_items != n)
      throw WireError(who + ": written against a plan with " +
                      std::to_string(s.plan_items) +
                      " work items; this plan has " + std::to_string(n));
    if (lease_mode) {
      // Any disjoint id-partition covering the plan merges: record this
      // report's lease in the owner map, rejecting overlap as it appears.
      for (std::size_t id : s.assigned_ids) {
        if (id >= n)
          throw WireError(who + ": assigned id " + std::to_string(id) +
                          " out of range (plan has " + std::to_string(n) +
                          " items)");
        if (owner_of[id] != kUnowned)
          throw WireError("work item " + std::to_string(id) +
                          " is leased to both " + who_of(owner_of[id]) +
                          " and " + who);
        owner_of[id] = si;
      }
      if (s.item_ids.size() != s.assigned_ids.size())
        throw WireError(who + ": is a partial lease report (" +
                        std::to_string(s.item_ids.size()) + " of " +
                        std::to_string(s.assigned_ids.size()) +
                        " leased ids completed; finish it with run-shard "
                        "--resume)");
    } else {
      if (s.shard_count != shard_count)
        throw WireError(who + ": shard_count " +
                        std::to_string(s.shard_count) +
                        " disagrees with the first report's " +
                        std::to_string(shard_count));
      if (s.shard_index >= shard_count)
        throw WireError(who + ": shard_index out of range");
      if (shard_seen[s.shard_index])
        throw WireError("duplicate report for " + who + " (also " +
                        who_of(seen_by[s.shard_index]) + ")");
      shard_seen[s.shard_index] = true;
      seen_by[s.shard_index] = si;
    }
    if (s.item_ids.size() != s.outcomes.size())
      throw WireError(who + ": item id / outcome count mismatch");

    for (std::size_t i = 0; i < s.item_ids.size(); ++i) {
      std::size_t id = s.item_ids[i];
      if (id >= n)
        throw WireError(who + ": work-item id " + std::to_string(id) +
                        " out of range (plan has " + std::to_string(n) +
                        " items)");
      if (id_seen[id])
        throw WireError(who + ": duplicate outcome for work item " +
                        std::to_string(id));
      const WorkItem& item = *derived[id].item;
      const InteractionPoint& point = *derived[id].point;
      InjectionOutcome o = s.outcomes[i];
      // Version-1 reports (and in-process ones) carry the plan-keyed
      // fields; hold them to the plan. Version-2 reports do not put them
      // on the wire at all (fault_name is empty after parse).
      if (!o.fault_name.empty() &&
          (o.fault_name != item.fault.name() || !(o.site == point.site)))
        throw WireError(who + ": outcome for work item " + std::to_string(id) +
                        " is fault '" + o.fault_name + "' at " + o.site.str() +
                        " but the plan's item " + std::to_string(id) +
                        " is '" + item.fault.name() + "' at " +
                        point.site.str() + " (report from a different plan?)");
      // Re-derive them from the plan by stable id, the single source of
      // truth — the merged result is field-identical to a local drain.
      o.site = point.site;
      o.call = point.call;
      o.object = point.object;
      o.kind = item.fault.kind;
      o.fault_name = item.fault.name();
      o.fault_description = *derived[id].description;
      id_seen[id] = true;
      result.injections[id] = std::move(o);
    }
  }

  // Every report's ids are in range and duplicate-free; only coverage can
  // still fail — a modulo shard that is an unresumed partial file, or a
  // lease set that does not add back up to the plan. Owners resolve
  // through the precomputed maps (seen_by / owner_of), never a rescan of
  // the shard list.
  for (std::size_t id = 0; id < n; ++id)
    if (!id_seen[id]) {
      if (lease_mode) {
        // A leased id without an outcome was already rejected as a
        // partial report above, so the gap is in the lease set itself.
        throw WireError("work item " + std::to_string(id) +
                        " is not covered by any lease (the lease set does "
                        "not add back up to the plan)");
      }
      throw WireError("work item " + std::to_string(id) +
                      " has no outcome — " + who_of(seen_by[id % shard_count]) +
                      " is a partial report (complete it with run-shard "
                      "--resume)");
    }
  return result;
}

}  // namespace ep::core
