#include "core/planner.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "core/equivalence.hpp"
#include "core/oracle.hpp"
#include "core/trace.hpp"
#include "core/wire.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace ep::core {

std::string InjectionPlan::to_json() const {
  // Canonical form: every field the executor and the report need, so a
  // shard process reconstructs the exact plan from bytes alone, and
  // parse -> re-serialize reproduces the input verbatim (the docs/
  // WIRE_FORMAT.md examples are enforced against this output).
  std::string out = "{\n";
  out += "  \"schema_version\": " + std::to_string(kPlanSchemaVersion) +
         ",\n";
  out += "  \"kind\": \"injection-plan\",\n";
  out += "  \"scenario\": " + json_quote(scenario_name) + ",\n";

  if (points.empty()) {
    out += "  \"points\": [],\n";
  } else {
    out += "  \"points\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
      const auto& p = points[i];
      out += "    {\"site\": " + json_site(p.site) +
             ", \"call\": " + json_quote(p.call) +
             ", \"object\": " + json_quote(p.object) +
             ", \"kind\": " + json_quote(std::string(to_string(p.kind))) +
             ", \"semantic\": " +
             json_quote(std::string(to_string(p.semantic))) +
             ", \"channel\": " + json_quote(p.channel_kind) +
             ", \"has_input\": " + (p.has_input ? "true" : "false") +
             ", \"hits\": " + std::to_string(p.hits) + "}";
      out += i + 1 < points.size() ? ",\n" : "\n";
    }
    out += "  ],\n";
  }

  if (benign_violations.empty()) {
    out += "  \"benign_violations\": [],\n";
  } else {
    out += "  \"benign_violations\": [\n";
    for (std::size_t i = 0; i < benign_violations.size(); ++i) {
      out += "    " + json_violation(benign_violations[i]);
      out += i + 1 < benign_violations.size() ? ",\n" : "\n";
    }
    out += "  ],\n";
  }

  if (perturbed_site_tags.empty()) {
    out += "  \"perturbed_sites\": [],\n";
  } else {
    out += "  \"perturbed_sites\": [";
    std::size_t i = 0;
    for (const auto& tag : perturbed_site_tags)
      out += (i++ ? ", " : "") + json_quote(tag);
    out += "],\n";
  }

  if (items.empty()) {
    out += "  \"items\": []\n}\n";
    return out;
  }
  out += "  \"items\": [\n";
  for (std::size_t i = 0; i < items.size(); ++i) {
    const auto& w = items[i];
    const auto& p = points[w.point_index];
    out += "    {\"id\": " + std::to_string(i) +
           ", \"point\": " + std::to_string(w.point_index) +
           ", \"site\": " + json_quote(p.site.tag) +
           ", \"kind\": " +
           json_quote(std::string(to_string(w.fault.kind))) +
           ", \"fault\": " + json_quote(w.fault.name());
    // Only search-generated items carry a nonzero perturbation
    // parameter; exhaustive plans stay byte-identical to pre-param
    // builds by omitting the field when it is zero.
    if (w.param != 0) out += ", \"param\": " + std::to_string(w.param);
    out += "}";
    out += i + 1 < items.size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

Planner::Planner(const Scenario& scenario)
    : scenario_(scenario), catalog_(FaultCatalog::standard()) {
  if (!scenario_.build || !scenario_.run)
    throw std::logic_error("Planner: scenario must define build and run");
}

std::vector<FaultRef> Planner::plan_faults(
    const InteractionPoint& point) const {
  std::vector<FaultRef> plan;
  auto spec_it = scenario_.sites.find(point.site.tag);
  if (spec_it != scenario_.sites.end() && spec_it->second.skip) return plan;

  if (spec_it != scenario_.sites.end() && !spec_it->second.faults.empty()) {
    for (const auto& name : spec_it->second.faults) {
      if (const IndirectFault* f = catalog_.find_indirect(name)) {
        FaultRef r;
        r.kind = FaultKind::indirect;
        r.indirect = f;
        plan.push_back(r);
      } else if (const DirectFault* f2 = catalog_.find_direct(name)) {
        FaultRef r;
        r.kind = FaultKind::direct;
        r.direct = f2;
        plan.push_back(r);
      } else {
        throw std::logic_error("Planner: unknown fault name '" + name +
                               "' at site " + point.site.tag);
      }
    }
    return plan;
  }

  ObjectKind kind = point.kind;
  InputSemantic semantic = point.semantic;
  if (spec_it != scenario_.sites.end()) {
    if (spec_it->second.kind != ObjectKind::none)
      kind = spec_it->second.kind;
    if (spec_it->second.semantic) semantic = *spec_it->second.semantic;
  }

  // Step 3: no input -> only direct faults; input -> both kinds.
  for (const DirectFault* f : catalog_.direct_for(kind)) {
    FaultRef r;
    r.kind = FaultKind::direct;
    r.direct = f;
    plan.push_back(r);
  }
  if (point.has_input) {
    for (const IndirectFault* f : catalog_.indirect_for(semantic)) {
      FaultRef r;
      r.kind = FaultKind::indirect;
      r.indirect = f;
      plan.push_back(r);
    }
  }
  return plan;
}

InjectionPlan Planner::plan(const CampaignOptions& opts) const {
  InjectionPlan plan;
  plan.scenario_name = scenario_.name;

  // ---- Step 3: discover interaction points with a clean trace run --------
  {
    auto world = scenario_.build();
    world->kernel.set_redzone_audit(opts.use_redzone);
    auto recorder =
        std::make_shared<TraceRecorder>(scenario_.trace_unit_filter);
    auto oracle = std::make_shared<SecurityOracle>(scenario_.policy);
    world->kernel.add_interposer(recorder);
    world->kernel.add_interposer(oracle);
    (void)scenario_.run(*world);
    // A benign run must leave every redzone intact; a corruption here is
    // a scenario bug and lands loudly in benign_violations. The recorder
    // ignores app_fault reports, so the sweep never mints interaction
    // points and the plan bytes stay identical with the audit on or off.
    world->validate_redzones();
    plan.points = recorder->points();
    plan.benign_violations = oracle->violations();
  }

  // ---- Site selection (step 9's coverage target / Figure 2 subsets) ------
  std::vector<std::size_t> selected;
  if (!opts.only_sites.empty()) {
    for (std::size_t i = 0; i < plan.points.size(); ++i)
      if (std::find(opts.only_sites.begin(), opts.only_sites.end(),
                    plan.points[i].site.tag) != opts.only_sites.end())
        selected.push_back(i);
  } else if (opts.target_interaction_coverage >= 1.0) {
    for (std::size_t i = 0; i < plan.points.size(); ++i)
      selected.push_back(i);
  } else {
    std::size_t want = static_cast<std::size_t>(
        opts.target_interaction_coverage * plan.points.size() + 0.5);
    want = std::max<std::size_t>(want, 1);
    want = std::min(want, plan.points.size());
    // Deterministic sample without replacement.
    std::vector<std::size_t> idx(plan.points.size());
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    Rng rng(opts.seed);
    for (std::size_t i = 0; i < idx.size(); ++i)
      std::swap(idx[i], idx[i + rng.below(idx.size() - i)]);
    idx.resize(want);
    std::sort(idx.begin(), idx.end());  // keep trace order
    selected = std::move(idx);
  }

  // ---- Optional future-work reduction: equivalence merging ---------------
  // Injecting only at each class representative; co-members count as
  // covered because their injections would meet the same environment
  // state and program handling.
  std::map<std::string, std::vector<std::string>> covered_with;
  if (opts.merge_equivalent_sites) {
    auto classes = find_equivalence_classes(plan.points);
    std::vector<std::size_t> reduced;
    for (std::size_t i : selected) {
      const InteractionPoint& point = plan.points[i];
      for (const auto& c : classes) {
        if (!(c.representative().site == point.site)) continue;
        reduced.push_back(i);
        for (const auto* member : c.members)
          covered_with[point.site.tag].push_back(member->site.tag);
      }
    }
    selected = std::move(reduced);
  }

  // ---- Plan one work item per (site, fault) ------------------------------
  for (std::size_t i : selected) {
    const InteractionPoint& point = plan.points[i];
    std::vector<FaultRef> faults = plan_faults(point);
    if (faults.empty()) continue;
    plan.perturbed_site_tags.insert(point.site.tag);
    for (const auto& member : covered_with[point.site.tag])
      plan.perturbed_site_tags.insert(member);
    for (const FaultRef& fault : faults)
      plan.items.push_back({i, fault});
  }

  // ---- World-build caching -----------------------------------------------
  // One more build, frozen as the prototype every run clones. Planned
  // here, on the planning thread, so the executor's workers share only
  // immutable state (the same rule as the catalog and the plan itself).
  if (opts.use_world_cache && scenario_.snapshot_safe && !plan.items.empty())
    plan.snapshot = WorldSnapshot::freeze(scenario_.build());
  return plan;
}

}  // namespace ep::core
