#include "core/search.hpp"

#include <algorithm>
#include <utility>

#include "core/executor.hpp"
#include "core/wire_internal.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace ep::core {

namespace {

/// Run `f`, prefixing any failure with where in the document it happened
/// — the same diagnostic convention the plan/shard-report parsers use.
template <typename F>
auto with_ctx(const std::string& where, F&& f) -> decltype(f()) {
  try {
    return f();
  } catch (const std::exception& e) {
    throw WireError(where + ": " + e.what());
  }
}

[[noreturn]] void fail(const std::string& msg) {
  throw WireError("search state: " + msg);
}

std::size_t parse_count(const JsonValue& doc, const char* key) {
  long long v = with_ctx(std::string("search state: ") + key,
                         [&] { return doc.at(key).as_int(); });
  if (v < 0) fail(std::string(key) + " must be >= 0");
  return static_cast<std::size_t>(v);
}

/// The verdict signature: what shape did this run end in? Two items with
/// the same signature taught the search the same lesson, so only the
/// first earns mutation children.
std::string verdict_sig(const std::string& fault_key,
                        const InjectionOutcome& o) {
  return fault_key + "|" + (o.fired ? "f" : "-") + (o.violated ? "v" : "-") +
         (o.crashed ? "c" : "-") + "|" + std::to_string(o.exit_code);
}

/// Mutation params must survive a JSON round trip (plans serialize them
/// through as_int), so they live in [1, 2^63).
std::uint64_t mutation_param(Rng& prng) {
  return prng.next_u64() % 0x7fffffffffffffffULL + 1;
}

}  // namespace

int NoveltyScorer::score(const std::string& class_label,
                         const std::string& site_tag,
                         const std::string& fault_key,
                         std::uint64_t param) const {
  int s = 0;
  if (!class_label.empty() && fired_classes_.count(class_label) == 0) s += 8;
  if (violated_sites_.count(site_tag) == 0) s += 2;
  if (attempted_faults_.count(fault_key) == 0) s += 1;
  if (param == 0) s += 1;
  return s;
}

void NoveltyScorer::note_attempt(const std::string& fault_key) {
  attempted_faults_.insert(fault_key);
}

bool NoveltyScorer::note_outcome(const std::string& class_label,
                                 const std::string& site_tag,
                                 const std::string& fault_key,
                                 const InjectionOutcome& outcome) {
  if (outcome.violated) {
    if (!class_label.empty()) fired_classes_.insert(class_label);
    violated_sites_.insert(site_tag);
  }
  return verdict_sigs_.insert(verdict_sig(fault_key, outcome)).second;
}

SearchWorkSource::SearchWorkSource(InjectionPlan base, SearchOptions opts,
                                   NoveltyScorer* shared_scorer)
    : plan_(std::move(base)),
      opts_(std::move(opts)),
      scorer_(shared_scorer ? shared_scorer : &own_scorer_) {
  // The exhaustive plan's items are the initial frontier, in plan order
  // (trace-order points, catalog-order faults) — the same order the
  // exhaustive sweep would drain, so seq ties break identically across
  // builds. The plan itself restarts empty: items are now *generated*.
  frontier_.reserve(plan_.items.size());
  for (const WorkItem& w : plan_.items) {
    Candidate c;
    c.item = w;
    c.item.param = 0;
    c.seq = next_seq_++;
    frontier_.push_back(std::move(c));
  }
  plan_.items.clear();
}

std::string SearchWorkSource::fault_key(const WorkItem& item) const {
  return (item.fault.kind == FaultKind::indirect ? "i:" : "d:") +
         item.fault.name();
}

std::string SearchWorkSource::class_of(const WorkItem& item) const {
  return opts_.classify ? opts_.classify(item.fault.kind, item.fault.name())
                        : std::string();
}

void SearchWorkSource::absorb(const ShardReport& report) {
  // Buffer only: reports land in lease-completion order, which varies by
  // scheduling. The barrier (process_feedback) replays them in stable-id
  // order so the scorer — and therefore the next wave — is order-free.
  for (std::size_t i = 0; i < report.item_ids.size(); ++i)
    pending_[report.item_ids[i]] = report.outcomes[i];
}

void SearchWorkSource::process_feedback() {
  for (auto& [id, outcome] : pending_) {
    const WorkItem& w = plan_.items[id];
    const std::string& site = plan_.points[w.point_index].site.tag;
    std::string fk = fault_key(w);
    bool novel_verdict = scorer_->note_outcome(class_of(w), site, fk, outcome);
    // Mutation rule: an outcome that violated — or fired into a verdict
    // shape never seen before — earns parameter-mutation children; a
    // fault that did not even fire has nothing to vary.
    if (outcome.violated || (outcome.fired && novel_verdict)) {
      Rng prng(opts_.seed ^
               (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(id) + 1)));
      for (int k = 0; k < 2; ++k) {
        Candidate c;
        c.item = w;
        c.item.param = mutation_param(prng);
        c.seq = next_seq_++;
        frontier_.push_back(std::move(c));
      }
    }
    outcomes_[id] = std::move(outcome);
  }
  pending_.clear();
}

std::pair<std::size_t, std::size_t> SearchWorkSource::generate_wave() {
  const std::size_t begin = plan_.items.size();
  if (begin >= opts_.budget) return {begin, begin};
  const std::size_t room = std::min(opts_.batch, opts_.budget - begin);
  // Within-wave diversity: a tentative scorer copy treats each pick as
  // if it already paid off, so the wave spreads across classes and sites
  // instead of spending the whole batch on one novel class.
  NoveltyScorer tent = *scorer_;
  for (std::size_t picked = 0; picked < room; ++picked) {
    int best_score = -1;
    std::size_t best = 0;
    for (std::size_t i = 0; i < frontier_.size(); ++i) {
      const Candidate& c = frontier_[i];
      if (c.queued) continue;
      int s = tent.score(class_of(c.item),
                         plan_.points[c.item.point_index].site.tag,
                         fault_key(c.item), c.item.param);
      // Strict >: the frontier is in seq order, so the first maximum is
      // the lowest-seq one — the deterministic tiebreak.
      if (s > best_score) {
        best_score = s;
        best = i;
      }
    }
    if (best_score < 0) break;  // frontier exhausted
    Candidate& c = frontier_[best];
    c.queued = true;
    std::string cls = class_of(c.item);
    if (!cls.empty()) tent.fired_classes_.insert(cls);
    tent.violated_sites_.insert(plan_.points[c.item.point_index].site.tag);
    tent.attempted_faults_.insert(fault_key(c.item));
    scorer_->note_attempt(fault_key(c.item));
    plan_.items.push_back(c.item);
  }
  if (plan_.items.size() > begin) wave_ends_.push_back(plan_.items.size());
  return {begin, plan_.items.size()};
}

std::pair<std::size_t, std::size_t> SearchWorkSource::next_wave() {
  process_feedback();
  if (checkpoint_) checkpoint_(state());
  return generate_wave();
}

void SearchWorkSource::checkpoint_now() {
  process_feedback();
  if (checkpoint_) checkpoint_(state());
}

std::vector<ShardReport> SearchWorkSource::take_replayed_reports() {
  return std::exchange(replayed_, {});
}

SearchState SearchWorkSource::state() const {
  SearchState st;
  st.scenario_name = plan_.scenario_name;
  st.seed = opts_.seed;
  st.budget = opts_.budget;
  st.batch = opts_.batch;
  st.items.reserve(plan_.items.size());
  for (const WorkItem& w : plan_.items) {
    SearchStateItem it;
    it.point = w.point_index;
    it.site = plan_.points[w.point_index].site.tag;
    it.kind = w.fault.kind;
    it.fault = w.fault.name();
    it.param = w.param;
    st.items.push_back(std::move(it));
  }
  st.wave_ends = wave_ends_;
  st.completed_ids.reserve(outcomes_.size());
  st.outcomes.reserve(outcomes_.size());
  for (const auto& [id, outcome] : outcomes_) {
    st.completed_ids.push_back(id);
    st.outcomes.push_back(outcome);
  }
  return st;
}

void SearchWorkSource::resume(const SearchState& state) {
  if (!plan_.items.empty())
    fail("resume() must run before any wave is generated");
  if (state.scenario_name != plan_.scenario_name)
    fail("scenario '" + state.scenario_name +
         "' does not match this search's scenario '" + plan_.scenario_name +
         "'");
  if (state.seed != opts_.seed || state.budget != opts_.budget ||
      state.batch != opts_.batch)
    fail("seed/budget/batch (" + std::to_string(state.seed) + "/" +
         std::to_string(state.budget) + "/" + std::to_string(state.batch) +
         ") do not match this search's (" + std::to_string(opts_.seed) + "/" +
         std::to_string(opts_.budget) + "/" + std::to_string(opts_.batch) +
         ")");

  std::map<std::size_t, const InjectionOutcome*> recorded;
  for (std::size_t i = 0; i < state.completed_ids.size(); ++i)
    recorded[state.completed_ids[i]] = &state.outcomes[i];

  std::size_t prev_end = 0;
  for (std::size_t wave_end : state.wave_ends) {
    // Replay only fully-completed waves: a wave any of whose outcomes
    // are missing (a checkpoint raced its own write, or hand-edited
    // state) is simply re-drained live, along with everything after it.
    bool covered = wave_end <= state.items.size();
    for (std::size_t id = prev_end; covered && id < wave_end; ++id)
      covered = recorded.count(id) != 0;
    if (!covered) break;

    // Re-generate the wave through the ordinary generator (feeding the
    // recorded outcomes back through the scorer), then hold the result
    // to what the checkpoint recorded — a state file from a different
    // seed, build, or scenario diverges here instead of corrupting the
    // merge downstream.
    process_feedback();
    auto [b, e] = generate_wave();
    if (b != prev_end || e != wave_end)
      fail("recorded wave [" + std::to_string(prev_end) + ", " +
           std::to_string(wave_end) + ") regenerated as [" +
           std::to_string(b) + ", " + std::to_string(e) +
           ") — state from a different search?");
    for (std::size_t id = b; id < e; ++id) {
      const WorkItem& w = plan_.items[id];
      const SearchStateItem& it = state.items[id];
      if (it.point != w.point_index || it.kind != w.fault.kind ||
          it.fault != w.fault.name() || it.param != w.param ||
          it.site != plan_.points[w.point_index].site.tag)
        fail("items[" + std::to_string(id) +
             "] does not match the regenerated item — state from a "
             "different search?");
    }

    ShardReport r;
    r.scenario_name = plan_.scenario_name;
    r.plan_items = plan_.items.size();
    r.leased = true;
    for (std::size_t id = b; id < e; ++id) {
      r.assigned_ids.push_back(id);
      r.item_ids.push_back(id);
      r.outcomes.push_back(*recorded.at(id));
    }
    r.complete = true;
    absorb(r);
    replayed_.push_back(std::move(r));
    prev_end = wave_end;
  }
}

std::string search_state_to_json(const SearchState& state) {
  std::string out = "{\n";
  out += "  \"schema_version\": 1,\n";
  out += "  \"kind\": \"search-state\",\n";
  out += "  \"scenario\": " + json_quote(state.scenario_name) + ",\n";
  out += "  \"seed\": " + std::to_string(state.seed) + ",\n";
  out += "  \"budget\": " + std::to_string(state.budget) + ",\n";
  out += "  \"batch\": " + std::to_string(state.batch) + ",\n";
  out += "  \"items\": [";
  for (std::size_t i = 0; i < state.items.size(); ++i) {
    const SearchStateItem& it = state.items[i];
    out += i ? ",\n    " : "\n    ";
    out += "{\"id\": " + std::to_string(i) +
           ", \"point\": " + std::to_string(it.point) +
           ", \"site\": " + json_quote(it.site) +
           ", \"kind\": " + json_quote(std::string(to_string(it.kind))) +
           ", \"fault\": " + json_quote(it.fault) +
           ", \"param\": " + std::to_string(it.param) + "}";
  }
  out += state.items.empty() ? "],\n" : "\n  ],\n";
  out += "  \"wave_ends\": [";
  for (std::size_t i = 0; i < state.wave_ends.size(); ++i)
    out += (i ? ", " : "") + std::to_string(state.wave_ends[i]);
  out += "],\n";
  out += "  \"completed_ids\": [";
  for (std::size_t i = 0; i < state.completed_ids.size(); ++i)
    out += (i ? ", " : "") + std::to_string(state.completed_ids[i]);
  out += "],\n";
  out += "  \"outcomes\": {\n";
  out += wire_detail::outcome_columns_json(state.outcomes, "    ");
  out += "  }\n}\n";
  return out;
}

SearchState search_state_from_json(const std::string& text) {
  JsonValue doc;
  try {
    doc = json_parse(text);
  } catch (const JsonError& e) {
    throw WireError(std::string("search state is not valid JSON: ") +
                    e.what());
  }
  if (!doc.is_object()) fail("top-level value must be an object");
  if (!doc.find("schema_version"))
    fail("missing 'schema_version' (not a wire-format file?)");
  std::string kind = with_ctx("search state: kind",
                              [&] { return doc.at("kind").as_string(); });
  if (kind != "search-state")
    fail("kind '" + kind + "' where 'search-state' was expected");
  long long version =
      with_ctx("search state: schema_version",
               [&] { return doc.at("schema_version").as_int(); });
  if (version != 1)
    fail("unsupported schema_version " + std::to_string(version) +
         " (this build reads version 1)");

  SearchState st;
  st.schema_version = static_cast<int>(version);
  st.scenario_name = with_ctx(
      "search state: scenario", [&] { return doc.at("scenario").as_string(); });
  if (st.scenario_name.empty()) fail("scenario name is empty");
  st.seed = static_cast<std::uint64_t>(parse_count(doc, "seed"));
  st.budget = parse_count(doc, "budget");
  st.batch = parse_count(doc, "batch");

  const auto& items = with_ctx("search state: items", [&]() -> decltype(auto) {
    return doc.at("items").items();
  });
  for (std::size_t i = 0; i < items.size(); ++i) {
    with_ctx("search state: items[" + std::to_string(i) + "]", [&] {
      const JsonValue& v = items[i];
      long long id = v.at("id").as_int();
      if (id != static_cast<long long>(i))
        throw WireError("stable id " + std::to_string(id) +
                        " out of order (expected " + std::to_string(i) + ")");
      SearchStateItem it;
      long long point = v.at("point").as_int();
      if (point < 0)
        throw WireError("point index " + std::to_string(point) +
                        " must be >= 0");
      it.point = static_cast<std::size_t>(point);
      it.site = v.at("site").as_string();
      std::string ks = v.at("kind").as_string();
      if (ks == to_string(FaultKind::indirect))
        it.kind = FaultKind::indirect;
      else if (ks == to_string(FaultKind::direct))
        it.kind = FaultKind::direct;
      else
        throw WireError("unknown fault kind '" + ks + "'");
      it.fault = v.at("fault").as_string();
      long long param = v.at("param").as_int();
      if (param < 0)
        throw WireError("param " + std::to_string(param) + " must be >= 0");
      it.param = static_cast<std::uint64_t>(param);
      st.items.push_back(std::move(it));
    });
  }

  const auto& waves =
      with_ctx("search state: wave_ends", [&]() -> decltype(auto) {
        return doc.at("wave_ends").items();
      });
  for (std::size_t i = 0; i < waves.size(); ++i) {
    with_ctx("search state: wave_ends[" + std::to_string(i) + "]", [&] {
      long long e = waves[i].as_int();
      std::size_t prev = st.wave_ends.empty() ? 0 : st.wave_ends.back();
      if (e <= static_cast<long long>(prev) ||
          e > static_cast<long long>(st.items.size()))
        throw WireError("wave end " + std::to_string(e) +
                        " is not strictly between " + std::to_string(prev) +
                        " and the item count " +
                        std::to_string(st.items.size()));
      st.wave_ends.push_back(static_cast<std::size_t>(e));
    });
  }
  if (!st.items.empty() &&
      (st.wave_ends.empty() || st.wave_ends.back() != st.items.size()))
    fail("the last wave end must equal the item count " +
         std::to_string(st.items.size()));

  const auto& ids =
      with_ctx("search state: completed_ids", [&]() -> decltype(auto) {
        return doc.at("completed_ids").items();
      });
  for (std::size_t i = 0; i < ids.size(); ++i) {
    with_ctx("search state: completed_ids[" + std::to_string(i) + "]", [&] {
      long long id = ids[i].as_int();
      if (id < 0 || id >= static_cast<long long>(st.items.size()))
        throw WireError("work-item id " + std::to_string(id) +
                        " out of range (state has " +
                        std::to_string(st.items.size()) + " items)");
      if (!st.completed_ids.empty() &&
          static_cast<std::size_t>(id) <= st.completed_ids.back())
        throw WireError("completed_ids out of order (" + std::to_string(id) +
                        " after " + std::to_string(st.completed_ids.back()) +
                        ")");
      st.completed_ids.push_back(static_cast<std::size_t>(id));
    });
  }

  const JsonValue& cols =
      with_ctx("search state: outcomes",
               [&]() -> decltype(auto) { return doc.at("outcomes"); });
  if (!cols.is_object())
    fail("outcomes must be an object of column arrays");
  st.outcomes = wire_detail::outcomes_from_columns(
      cols, st.completed_ids.size(), "search state");
  return st;
}

SearchRunResult run_search(const Executor& executor, SearchWorkSource& source,
                           const ExecutorOptions& opts,
                           std::size_t stop_after_waves) {
  SearchRunResult out;
  std::vector<ShardReport> reports = source.take_replayed_reports();
  std::vector<std::string> labels(reports.size(), "resumed checkpoint");
  out.waves = source.waves_generated();
  for (;;) {
    if (stop_after_waves != 0 && out.waves >= stop_after_waves) {
      // Stop *between* barriers, state flushed — the deterministic
      // preemption hook (--stop-after). Nothing drained is lost.
      source.checkpoint_now();
      out.stopped = true;
      return out;
    }
    auto [begin, end] = source.next_wave();
    if (begin == end) break;
    ShardReport r = run_lease(executor, source.plan(), begin, end, opts);
    source.absorb(r);
    reports.push_back(std::move(r));
    ++out.waves;
    labels.push_back("wave " + std::to_string(out.waves));
  }
  if (reports.empty()) {
    out.result = result_skeleton(source.plan());
    return out;
  }
  // Wave-N reports carry the plan size as of wave N; the merge checks
  // plan_items against the final plan, so rebase them all to it.
  const std::size_t n = source.plan().items.size();
  for (ShardReport& r : reports) r.plan_items = n;
  out.result = merge_shard_reports(source.plan(), reports, labels);
  return out;
}

}  // namespace ep::core
