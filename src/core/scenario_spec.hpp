// Declarative scenario specs: the benign world as data.
//
// A ScenarioSpec describes everything a Scenario's imperative build()
// closure used to construct — users, filesystem layout (with ownership
// and modes), registered program images, network peers and daemons,
// registry keys, the run recipe, the oracle policy, perturbation hints,
// and per-site fault applicability — as plain data. A spec is compiled
// into a runnable core::Scenario against a SpecEnvironment that maps
// image and service-handler names to code.
//
// Why data instead of closures: specs serialize (versioned JSON behind
// the same wire seam as plans and shard reports), diff, and — the point —
// *generate*. core/scenario_family.hpp expands one family template times
// a parameter grid into hundreds of specs, each of which compiles to a
// deterministic, snapshot-safe world no human had to hand-write.
//
// Determinism contract: compiling the same spec twice yields build()
// closures that construct byte-identical worlds. World ops are replayed
// in spec order (VFS inode numbering depends on creation order); users,
// images, network state and registry keys are order-independent state.
// Compiled scenarios are always snapshot_safe — a spec cannot express a
// build that consults ambient state.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "net/network.hpp"
#include "os/types.hpp"

namespace ep::core {

/// Version stamped into every serialized spec ("schema_version"). Bump on
/// breaking encoding changes; the reader rejects versions it postdates.
inline constexpr int kSpecSchemaVersion = 1;

struct SpecUser {
  os::Uid uid = 0;
  std::string name;
  os::Gid gid = 0;
};

/// One filesystem-building step. Ops replay in list order at build time —
/// the order is load-bearing (inode numbering, hence wire-level
/// byte-identity of results, follows creation order).
struct WorldOp {
  enum class Kind { dir, file, program, symlink };
  Kind kind = Kind::dir;
  std::string path;
  std::string content;  // file: initial bytes
  std::string image;    // program: kernel image name to execute
  std::string target;   // symlink: link target
  os::Uid uid = os::kRootUid;
  os::Gid gid = os::kRootGid;
  unsigned mode = 0755;  // ignored for symlinks
};

struct SpecHost {
  std::string name;
  std::string ip;
};

/// An out-of-process service; `handler` names a pure reply function in
/// the SpecEnvironment's handler registry.
struct SpecService {
  std::string name;
  net::ChannelKind kind = net::ChannelKind::network;
  bool available = true;
  bool trusted = true;
  std::string handler;
};

/// The scripted benign client conversation. Inbound messages are always
/// authentic — a spec describes the *benign* world; spoofing is the
/// injector's job.
struct SpecClientScript {
  std::string peer = "client";
  net::ChannelKind kind = net::ChannelKind::network;
  std::vector<std::string> protocol;  // expected step sequence
  std::vector<net::Message> inbound;
};

struct SpecNetwork {
  std::vector<SpecHost> hosts;
  std::vector<SpecService> services;
  std::optional<SpecClientScript> client;

  [[nodiscard]] bool empty() const {
    return hosts.empty() && services.empty() && !client.has_value();
  }
};

struct SpecRegistryKey {
  std::string path;
  std::string value;
  os::Uid owner = os::kRootUid;
  bool everyone_read = true;
  bool everyone_write = false;
  std::string used_by_module;
  bool trusted = true;
};

/// One spawn in the run recipe. The recipe runs in order; the scenario's
/// exit code is the last step's (255 when the last spawn itself fails),
/// matching the hand-written scenarios this layer replaced.
struct RunStep {
  std::string program;
  std::vector<std::string> args;
  os::Uid uid = 0;
  os::Gid gid = 0;
  std::map<std::string, std::string> env;
  std::string cwd = "/";
};

struct ScenarioSpec {
  std::string name;
  std::string description;
  std::string trace_unit_filter;
  bool standard_unix = true;
  std::vector<SpecUser> users;
  /// SpecEnvironment image-registry names to register before world ops
  /// run (program ops reference the images' *kernel* names).
  std::vector<std::string> images;
  std::vector<WorldOp> world;
  SpecNetwork network;
  std::vector<SpecRegistryKey> registry;
  std::vector<RunStep> run;
  PolicySpec policy;
  ScenarioHints hints;
  /// Site overrides in authoring order (compiled into Scenario::sites).
  std::vector<std::pair<std::string, SiteSpec>> sites;
};

// --- codec ----------------------------------------------------------------
// Canonical JSON: spec_from_json(spec_to_json(s)) re-serializes to the
// same bytes (the docs-freshness tests depend on it). The reader is
// strict — unknown keys, wrong types, bad enum strings and future schema
// versions all fail with a WireError whose message names the offending
// field (or the line/column, for syntax errors).

std::string spec_to_json(const ScenarioSpec& spec);
ScenarioSpec spec_from_json(const std::string& text);

// --- compilation ----------------------------------------------------------

/// A named program image: `kernel_name` is the name program ops and
/// Kernel::register_image use; two registry entries may share code but
/// differ in kernel name (or vice versa — e.g. hardened variants).
struct SpecImage {
  std::string kernel_name;
  os::AppImage image;
};

/// The code side of compilation: what image and handler names mean.
/// apps::spec_environment() provides the standard one.
struct SpecEnvironment {
  std::map<std::string, SpecImage> images;
  std::map<std::string, std::function<net::Message(const net::Message&)>>
      handlers;
};

/// Compile a spec into a runnable Scenario. Validates every image,
/// handler and fault name up front (WireError on the first problem);
/// the returned Scenario owns a copy of the spec and is snapshot-safe.
Scenario compile_spec(const ScenarioSpec& spec, const SpecEnvironment& env);

// --- shared world builders -------------------------------------------------
// The helpers the hand-written scenarios used to duplicate: append
// canonical world fragments to a spec under construction. All of them
// append at the current end of the relevant list, so callers control the
// (load-bearing) VFS op order by call order.
namespace spec_builders {

WorldOp dir_op(const std::string& path, os::Uid uid = os::kRootUid,
               os::Gid gid = os::kRootGid, unsigned mode = 0755);
WorldOp file_op(const std::string& path, const std::string& content,
                os::Uid uid = os::kRootUid, os::Gid gid = os::kRootGid,
                unsigned mode = 0644);
WorldOp program_op(const std::string& path, const std::string& image,
                   os::Uid uid = os::kRootUid, os::Gid gid = os::kRootGid,
                   unsigned mode = 0755);
WorldOp symlink_op(const std::string& path, const std::string& target,
                   os::Uid uid = os::kRootUid, os::Gid gid = os::kRootGid);

/// The standard unprivileged victim account (alice, uid 1000).
void add_alice(ScenarioSpec& spec);

/// The standard attacker: mallory (uid 666) plus the /tmp/attacker
/// staging directory, optionally stocked with the `evil` payload program.
/// Also points the spec's hints at the staged attacker.
void add_attacker(ScenarioSpec& spec, bool with_evil);

/// The three payload images every interactive scenario registers.
void add_payload_images(ScenarioSpec& spec);

}  // namespace spec_builders

}  // namespace ep::core
