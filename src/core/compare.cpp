#include "core/compare.hpp"

#include <map>

#include "util/strings.hpp"

namespace ep::core {

int Comparison::improved_count() const {
  int n = 0;
  for (const auto& d : deltas) n += d.improved() ? 1 : 0;
  return n;
}

int Comparison::regressed_count() const {
  int n = 0;
  for (const auto& d : deltas) n += d.regressed() ? 1 : 0;
  return n;
}

int Comparison::still_open_count() const {
  int n = 0;
  for (const auto& d : deltas) n += d.still_open() ? 1 : 0;
  return n;
}

Comparison compare(const CampaignResult& before, const CampaignResult& after) {
  Comparison c;
  c.before = before.adequacy();
  c.after = after.adequacy();

  auto key = [](const InjectionOutcome& i) {
    return i.site.tag + "|" + i.fault_name;
  };
  std::map<std::string, const InjectionOutcome*> b, a;
  for (const auto& i : before.injections) b[key(i)] = &i;
  for (const auto& i : after.injections) a[key(i)] = &i;

  for (const auto& [k, bi] : b) {
    auto it = a.find(k);
    if (it == a.end()) {
      c.only_before.push_back(k);
      continue;
    }
    OutcomeDelta d;
    d.site_tag = bi->site.tag;
    d.fault_name = bi->fault_name;
    d.before_violated = bi->violated;
    d.after_violated = it->second->violated;
    c.deltas.push_back(std::move(d));
  }
  for (const auto& [k, ai] : a)
    if (!b.count(k)) c.only_after.push_back(k);
  return c;
}

std::string render_comparison(const Comparison& c) {
  std::string out = "=== Campaign comparison (before -> after) ===\n";
  out += "  adequacy: IC " + ep::percent(c.before.interaction_coverage, 1.0) +
         " -> " + ep::percent(c.after.interaction_coverage, 1.0) + ", FC " +
         ep::percent(c.before.fault_coverage, 1.0) + " -> " +
         ep::percent(c.after.fault_coverage, 1.0) + "\n";
  out += "  region:   " + std::string(to_string(classify(c.before))) +
         " -> " + std::string(to_string(classify(c.after))) + "\n";
  out += "  repaired: " + std::to_string(c.improved_count()) +
         ", regressed: " + std::to_string(c.regressed_count()) +
         ", still open: " + std::to_string(c.still_open_count()) + "\n";
  for (const auto& d : c.deltas) {
    if (d.improved())
      out += "    + repaired   " + d.site_tag + " / " + d.fault_name + "\n";
    else if (d.regressed())
      out += "    ! REGRESSED  " + d.site_tag + " / " + d.fault_name + "\n";
    else if (d.still_open())
      out += "    - still open " + d.site_tag + " / " + d.fault_name + "\n";
  }
  for (const auto& k : c.only_before)
    out += "    ? vanished after repair: " + k + "\n";
  for (const auto& k : c.only_after)
    out += "    ? new interaction after repair: " + k + "\n";
  out += c.safe() ? "  verdict: repair is safe (no regressions)\n"
                  : "  verdict: REPAIR REGRESSED\n";
  return out;
}

}  // namespace ep::core
