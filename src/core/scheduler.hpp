// The MultiCampaign scheduler: many scenarios, one shared worker pool.
//
// Fanning a whole scenario suite through one pool beats running campaigns
// back to back: the work items of every campaign land in a single global
// queue, so the stragglers of one scenario never leave workers idle while
// another scenario still has runs queued. Planning (one trace run per
// scenario) is itself fanned across the pool first.
//
// Determinism: each outcome is written to its (scenario, item) slot, and
// results are assembled in add() order — the aggregate is identical for
// any worker count and any interleaving, which is what makes sweep output
// diffable across machines and PRs.
#pragma once

#include <cstddef>
#include <vector>

#include "core/executor.hpp"

namespace ep::core {

struct SweepOptions {
  /// Worker threads shared by planning and injection across all
  /// scenarios. 1 = fully serial.
  int jobs = 1;
  /// Per-scenario campaign options (seed, coverage target, merging),
  /// applied uniformly to every scheduled scenario.
  CampaignOptions campaign;
};

struct SweepResult {
  std::vector<CampaignResult> results;  // in add() order

  [[nodiscard]] int total_points() const;
  [[nodiscard]] int total_injections() const;
  [[nodiscard]] int total_violations() const;
  [[nodiscard]] int total_exploitable() const;
  /// Injections-weighted mean rho across the suite.
  [[nodiscard]] double mean_vulnerability_score() const;
};

class MultiCampaign {
 public:
  MultiCampaign() = default;

  /// Register a scenario. Scenarios are stored by value; planners and
  /// executors reference them in place, so add() must not be called while
  /// run() is in flight.
  void add(Scenario scenario);

  [[nodiscard]] std::size_t size() const { return scenarios_.size(); }

  /// Phase 1 of run(), exposed for distribution: plan every registered
  /// scenario across the pool (one trace run each), returned in add()
  /// order. `epa_cli plan --all` serializes these, one plan file per
  /// scenario, for sharded execution (core/wire.hpp).
  [[nodiscard]] std::vector<InjectionPlan> plan_all(
      const SweepOptions& opts = {}) const;

  [[nodiscard]] SweepResult run(const SweepOptions& opts = {}) const;

 private:
  std::vector<Scenario> scenarios_;
};

}  // namespace ep::core
