// The fault catalog: executable Tables 5 and 6.
//
// Each catalog entry couples the paper's description of a perturbation
// with the code that performs it. Indirect faults are input mutators
// (applied in an after-hook to the value the program is about to
// consume); direct faults are environment perturbers (applied in a
// before-hook to the world the interaction is about to touch).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/fault_model.hpp"
#include "core/hints.hpp"
#include "core/target_world.hpp"
#include "os/hooks.hpp"

namespace ep::core {

/// One row-cell of Table 5: a semantics-aware input mutation.
struct IndirectFault {
  IndirectCategory category;
  InputSemantic semantic;
  std::string name;         // short stable id, e.g. "change-length"
  std::string description;  // the Table 5 wording
  /// Rewrite the input value the program would have received.
  std::function<std::string(const std::string& original,
                            const ScenarioHints&)>
      mutate;
};

/// One row-cell of Table 6: an environment-attribute perturbation.
struct DirectFault {
  DirectEntity entity;
  EnvAttribute attribute;
  std::string name;
  std::string description;  // the Table 6 wording
  /// Extension entries (registry faults) follow the paper's *method* but
  /// are not literal Table 6 rows; the Table 6 bench excludes them.
  bool extension = false;
  /// Perturb the environment before the interaction proceeds. `ctx` gives
  /// the interaction about to happen (site, call, object path); perturbers
  /// mutate world state and may force the call to fail (availability).
  std::function<void(TargetWorld&, os::SyscallCtx&, const ScenarioHints&)>
      perturb;
};

/// A reference to either fault kind, as planned by a campaign.
struct FaultRef {
  FaultKind kind = FaultKind::direct;
  const IndirectFault* indirect = nullptr;
  const DirectFault* direct = nullptr;

  [[nodiscard]] const std::string& name() const {
    static const std::string empty;
    if (kind == FaultKind::indirect)
      return indirect ? indirect->name : empty;
    return direct ? direct->name : empty;
  }
};

/// Thread-safety contract (the parallel executor depends on it): the
/// catalog is built once, inside standard()'s first call, and is
/// immutable afterwards — every public accessor is const and no lookup
/// caches or mutates state. Campaign/Planner/MultiCampaign resolve the
/// singleton before any worker thread is spawned, so workers only ever
/// read the completed catalog.
class FaultCatalog {
 public:
  /// The full catalog from Tables 5 and 6 plus the registry extension.
  static const FaultCatalog& standard();

  FaultCatalog(const FaultCatalog&) = delete;
  FaultCatalog& operator=(const FaultCatalog&) = delete;

  [[nodiscard]] const std::vector<IndirectFault>& indirect() const {
    return indirect_;
  }
  [[nodiscard]] const std::vector<DirectFault>& direct() const {
    return direct_;
  }

  /// Table 5 lookup: which input mutations apply to an input with this
  /// semantic?
  [[nodiscard]] std::vector<const IndirectFault*> indirect_for(
      InputSemantic s) const;
  /// Table 6 lookup: which attribute perturbations apply to this kind of
  /// object?
  [[nodiscard]] std::vector<const DirectFault*> direct_for(
      ObjectKind kind) const;

  /// Find by stable name (scenario applicability lists use names).
  [[nodiscard]] const IndirectFault* find_indirect(
      const std::string& name) const;
  [[nodiscard]] const DirectFault* find_direct(const std::string& name) const;

 private:
  /// Only standard() constructs a catalog; it is complete before the
  /// reference escapes.
  FaultCatalog() { build(); }

  std::vector<IndirectFault> indirect_;
  std::vector<DirectFault> direct_;

  void build();
};

/// Infer the object kind of an interaction from its syscall, used when the
/// scenario does not declare one (quickstart-style campaigns).
ObjectKind infer_object_kind(const os::SyscallCtx& ctx);

/// Infer the input semantic of an interaction with input.
InputSemantic infer_semantic(const os::SyscallCtx& ctx);

}  // namespace ep::core
