// Validation helpers shared by the JSON (wire.cpp) and binary
// (wire_binary.cpp) codecs. Both decoders must enforce the same
// invariants with the same diagnostics — a truncated lease is the same
// bug whichever framing carried it — so the checks live here once
// instead of drifting apart in two anonymous namespaces.
#pragma once

#include <cstddef>
#include <string>

#include "core/catalog.hpp"
#include "core/wire.hpp"
#include "util/json.hpp"

namespace ep::core::wire_detail {

/// Resolve a (kind, name) fault reference against this build's catalog.
/// Throws WireError naming the fault when the catalog does not know it.
FaultRef parse_fault(FaultKind kind, const std::string& name);

/// How many of `total_items` ids shard (index, count) owns — arithmetic
/// only, because `total_items` is untrusted wire input and must never
/// size an allocation (unlike shard_item_ids, which materializes the
/// ids).
std::size_t owned_id_count(std::size_t total_items, std::size_t shard_index,
                           std::size_t shard_count);

/// Validate one completed id against the report header and the ids seen
/// so far (report.item_ids), mirroring the v1 checks plus v2's
/// canonical-order requirement. Ownership is the modulo partition, or
/// the explicit assigned_ids lease when the report is leased.
void check_completed_id(const ShardReport& report, long long id,
                        bool require_ascending);

/// The shared tail of every shard-report decode: `complete` is derived
/// state (the ids are each owned and unique, so coverage is a count
/// comparison). When `flag_on_wire` the file carried the flag and a
/// disagreement is a corrupt file; otherwise (JSON v1) the flag is
/// inferred. Sets report.complete either way.
void validate_complete_flag(ShardReport& report, bool flag_on_wire);

/// The columnar run-dependent outcome encoding (schema_version 2's
/// `outcomes` object body), shared by ShardReport::to_json and the
/// search-state document: one `indent`-prefixed `"name": [...]` line per
/// column, comma-separated, trailing newline after the last.
std::string outcome_columns_json(const std::vector<InjectionOutcome>& outcomes,
                                 const std::string& indent);

/// The inverse: decode an `outcomes` column object into `n` outcomes.
/// `ctx` names the enclosing document ("shard report", "search state")
/// in every diagnostic. Throws WireError on missing columns, length
/// mismatches, or a null/object exploit cell disagreeing with the
/// violations column.
std::vector<InjectionOutcome> outcomes_from_columns(const JsonValue& cols,
                                                    std::size_t n,
                                                    const std::string& ctx);

}  // namespace ep::core::wire_detail
