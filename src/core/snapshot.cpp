#include "core/snapshot.hpp"

#include <stdexcept>

namespace ep::core {

std::shared_ptr<const WorldSnapshot> WorldSnapshot::freeze(
    std::unique_ptr<TargetWorld> prototype) {
  if (!prototype) throw std::logic_error("WorldSnapshot: null prototype");
  if (prototype->kernel.interposer_count() != 0)
    throw std::logic_error(
        "WorldSnapshot: prototype has interposers installed; hooks are "
        "per-run and are not cloned — freeze the world before arming it");
  return std::shared_ptr<const WorldSnapshot>(
      new WorldSnapshot(std::move(prototype)));
}

}  // namespace ep::core
