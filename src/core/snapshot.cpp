#include "core/snapshot.hpp"

#include <new>
#include <stdexcept>

namespace ep::core {

std::shared_ptr<const WorldSnapshot> WorldSnapshot::freeze(
    std::unique_ptr<TargetWorld> prototype) {
  if (!prototype) throw std::logic_error("WorldSnapshot: null prototype");
  if (prototype->kernel.interposer_count() != 0)
    throw std::logic_error(
        "WorldSnapshot: prototype has interposers installed; hooks are "
        "per-run and are not cloned — freeze the world before arming it");
  return std::shared_ptr<const WorldSnapshot>(
      new WorldSnapshot(std::move(prototype)));
}

WorldArena::~WorldArena() {
  reset();
  ::operator delete(storage_, std::align_val_t(alignof(TargetWorld)));
}

TargetWorld& WorldArena::instantiate(const WorldSnapshot& snapshot) {
  reset();
  if (!storage_)
    storage_ = ::operator new(sizeof(TargetWorld),
                              std::align_val_t(alignof(TargetWorld)));
  world_ = snapshot.prototype().clone_into(storage_);
  return *world_;
}

void WorldArena::reset() {
  if (world_) {
    world_->~TargetWorld();
    world_ = nullptr;
  }
}

}  // namespace ep::core
