// The binary wire encoding (docs/WIRE_FORMAT.md, "Binary encoding"):
// the non-JSON framing of InjectionPlan and ShardReport behind the
// plan_from_json / shard_report_from_json seam.
//
// Framing: a 24-byte header (magic, byte-order tag, version, kind,
// declared total size, section count) followed by a section table of
// (tag, offset, length) triples and the packed section payloads. The
// decoder trusts nothing: magic, byte order, version, and kind are
// checked before any payload is touched; the declared total must equal
// the bytes provided (truncation); every section must lie inside the
// buffer past the table and no two sections may overlap; fixed-width
// outcome columns must hold exactly one entry per completed id. Unknown
// section tags are skipped, mirroring the JSON side's ignored unknown
// keys. All semantic validation (id ownership, ordering, the complete
// flag, fault-catalog resolution) is shared with the JSON parsers via
// core/wire_internal.hpp, so both codecs reject the same corruption
// with the same messages.
//
// Like the JSON side, the encoding is canonical: sections are written
// in fixed tag order with no padding, so decode -> re-encode reproduces
// the bytes verbatim — what lets docs/WIRE_FORMAT.md pin a hex example
// literally and the arena transport compare segments byte for byte.
//
// Numbers are native-endian (the same-host data plane never crosses a
// byte-order boundary); the header's byte-order tag turns a
// foreign-endian file into a clean WireError instead of garbage. Enum
// values travel as ordinals into fixed tables that mirror the JSON
// codec's name lists — independent of the C++ enum values, so a
// reordered enum cannot silently change the wire format.
#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "core/catalog.hpp"
#include "core/wire.hpp"
#include "core/wire_internal.hpp"

namespace ep::core {

namespace {

constexpr char kMagic[4] = {'E', 'P', 'A', 'B'};
constexpr std::uint32_t kEndianTag = 0x0A0B0C0D;
constexpr std::uint16_t kKindPlan = 1;
constexpr std::uint16_t kKindShardReport = 2;
constexpr std::size_t kHeaderBytes = 24;
constexpr std::size_t kSectionEntryBytes = 24;  // tag, reserved, off, len

// Plan section tags.
constexpr std::uint32_t kPlanMeta = 1;
constexpr std::uint32_t kPlanPoints = 2;
constexpr std::uint32_t kPlanBenign = 3;
constexpr std::uint32_t kPlanPerturbed = 4;
constexpr std::uint32_t kPlanItems = 5;
// Optional: one u64 perturbation parameter per item. Written only when
// some item carries a nonzero param (search-generated plans), so
// exhaustive plans keep their pre-param bytes — and old readers, which
// skip unknown tags, stay compatible with param-free plans.
constexpr std::uint32_t kPlanParams = 6;

// Shard-report section tags.
constexpr std::uint32_t kRepMeta = 1;
constexpr std::uint32_t kRepAssigned = 2;
constexpr std::uint32_t kRepCompleted = 3;
constexpr std::uint32_t kRepFired = 4;
constexpr std::uint32_t kRepCrashed = 5;
constexpr std::uint32_t kRepOverflows = 6;
constexpr std::uint32_t kRepExitCode = 7;
constexpr std::uint32_t kRepViolations = 8;
constexpr std::uint32_t kRepExploit = 9;

[[noreturn]] void fail(const std::string& where, const std::string& msg) {
  throw WireError(where + ": " + msg);
}

// The wire ordinal tables. Order mirrors the JSON codec's name lists
// (wire.cpp's *_from functions) and must never be reordered — only
// appended to — or old files would decode to different enums.
constexpr FaultKind kFaultKinds[] = {FaultKind::indirect, FaultKind::direct};
constexpr ObjectKind kObjectKinds[] = {
    ObjectKind::file,        ObjectKind::directory,
    ObjectKind::exec_binary, ObjectKind::net_inbound,
    ObjectKind::net_service, ObjectKind::ipc_service,
    ObjectKind::registry_key, ObjectKind::user_input,
    ObjectKind::env_var,     ObjectKind::none};
constexpr InputSemantic kSemantics[] = {
    InputSemantic::file_name,      InputSemantic::command,
    InputSemantic::path_list,      InputSemantic::permission_mask,
    InputSemantic::file_extension, InputSemantic::ip_address,
    InputSemantic::packet,         InputSemantic::host_name,
    InputSemantic::dns_reply,      InputSemantic::ipc_message};
constexpr Policy kPolicies[] = {Policy::integrity, Policy::confidentiality,
                                Policy::untrusted_exec, Policy::memory_safety,
                                Policy::trust, Policy::authorization,
                                // Appended in wire version 2.
                                Policy::redzone_corruption};

template <typename E, std::size_t N>
std::uint8_t ordinal_of(const E (&table)[N], E v, const char* what) {
  for (std::size_t i = 0; i < N; ++i)
    if (table[i] == v) return static_cast<std::uint8_t>(i);
  throw WireError(std::string("cannot encode out-of-range ") + what);
}

template <typename E, std::size_t N>
E from_ordinal(const E (&table)[N], unsigned v, const char* what) {
  if (v >= N)
    throw WireError("unknown " + std::string(what) + " ordinal " +
                    std::to_string(v));
  return table[v];
}

// --- encoding ---------------------------------------------------------------

struct Writer {
  std::string out;
  void raw(const void* p, std::size_t n) {
    out.append(static_cast<const char*>(p), n);
  }
  void u8(std::uint8_t v) { raw(&v, sizeof v); }
  void u16(std::uint16_t v) { raw(&v, sizeof v); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void i32(std::int32_t v) { raw(&v, sizeof v); }
  void str(const std::string& s) {
    if (s.size() > UINT32_MAX)
      throw WireError("string too large for the binary wire format");
    u32(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
  }
  void site(const os::Site& s) {
    str(s.unit);
    i32(s.line);
    str(s.tag);
  }
  void violation(const Violation& v) {
    u8(ordinal_of(kPolicies, v.policy, "policy"));
    site(v.site);
    str(v.call);
    str(v.object);
    str(v.detail);
  }
};

std::string assemble(
    std::uint16_t kind_code,
    const std::vector<std::pair<std::uint32_t, std::string>>& sections) {
  Writer w;
  w.raw(kMagic, sizeof kMagic);
  w.u32(kEndianTag);
  w.u16(static_cast<std::uint16_t>(kBinaryWireVersion));
  w.u16(kind_code);
  std::uint64_t offset =
      kHeaderBytes + sections.size() * kSectionEntryBytes;
  std::uint64_t total = offset;
  for (const auto& s : sections) total += s.second.size();
  w.u64(total);
  w.u32(static_cast<std::uint32_t>(sections.size()));
  for (const auto& s : sections) {
    w.u32(s.first);
    w.u32(0);  // reserved
    w.u64(offset);
    w.u64(s.second.size());
    offset += s.second.size();
  }
  for (const auto& s : sections) w.raw(s.second.data(), s.second.size());
  return w.out;
}

// --- decoding ---------------------------------------------------------------

/// A bounds-checked reader over one section's byte range. All numeric
/// reads go through memcpy: section payloads are packed with no
/// alignment guarantees.
class Cursor {
 public:
  Cursor(const std::uint8_t* p, std::size_t n, std::string what)
      : p_(p), n_(n), what_(std::move(what)) {}

  template <typename T>
  T num() {
    need(sizeof(T));
    T v;
    std::memcpy(&v, p_ + off_, sizeof(T));
    off_ += sizeof(T);
    return v;
  }
  std::uint8_t boolean(const char* field) {
    std::uint8_t v = num<std::uint8_t>();
    if (v > 1)
      fail(what_, std::string(field) + " has boolean byte " +
                      std::to_string(v) + " (expected 0 or 1)");
    return v;
  }
  std::string str() {
    std::uint32_t len = num<std::uint32_t>();
    need(len);
    std::string s(reinterpret_cast<const char*>(p_ + off_), len);
    off_ += len;
    return s;
  }
  os::Site site() {
    os::Site s;
    s.unit = str();
    s.line = num<std::int32_t>();
    s.tag = str();
    return s;
  }
  Violation violation() {
    Violation v;
    v.policy = from_ordinal(kPolicies, num<std::uint8_t>(), "policy");
    v.site = site();
    v.call = str();
    v.object = str();
    v.detail = str();
    return v;
  }
  std::size_t remaining() const { return n_ - off_; }
  /// Every section must be consumed exactly: trailing bytes mean the
  /// writer and reader disagree about the format.
  void finish() const {
    if (off_ != n_)
      fail(what_, "has " + std::to_string(n_ - off_) + " trailing byte(s)");
  }

 private:
  void need(std::size_t n) {
    if (n_ - off_ < n) fail(what_, "is truncated");
  }
  const std::uint8_t* p_;
  std::size_t n_;
  std::size_t off_ = 0;
  std::string what_;
};

struct Section {
  std::uint32_t tag = 0;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
};

struct Header {
  std::vector<Section> sections;
};

std::uint32_t bswap32(std::uint32_t v) {
  return (v >> 24) | ((v >> 8) & 0xFF00u) | ((v << 8) & 0xFF0000u) |
         (v << 24);
}

const char* kind_name(std::uint16_t code) {
  return code == kKindPlan ? "injection-plan" : "shard-report";
}

/// Validate everything the frame itself can prove: magic, byte order,
/// version, kind, declared size, and a section table whose entries are
/// in range and pairwise disjoint.
Header decode_header(const std::uint8_t* p, std::size_t size,
                     std::uint16_t expected_kind, const char* what) {
  if (size < kHeaderBytes)
    fail(what, "truncated header (got " + std::to_string(size) +
                   " bytes, need at least " +
                   std::to_string(kHeaderBytes) + ")");
  if (std::memcmp(p, kMagic, sizeof kMagic) != 0)
    fail(what, "not a binary wire file (bad magic)");
  auto rd32 = [&](std::size_t off) {
    std::uint32_t v;
    std::memcpy(&v, p + off, sizeof v);
    return v;
  };
  auto rd16 = [&](std::size_t off) {
    std::uint16_t v;
    std::memcpy(&v, p + off, sizeof v);
    return v;
  };
  std::uint32_t tag = rd32(4);
  if (tag != kEndianTag) {
    if (bswap32(tag) == kEndianTag)
      fail(what,
           "written with foreign endianness (byte-order tag is "
           "byte-swapped)");
    fail(what, "corrupt byte-order tag");
  }
  std::uint16_t version = rd16(8);
  // Version 2 only appended a policy ordinal; version-1 frames decode
  // with the same layout, so accept the whole range.
  if (version < 1 || version > kBinaryWireVersion)
    fail(what, "unsupported binary wire version " + std::to_string(version) +
                   " (this build reads versions 1 through " +
                   std::to_string(kBinaryWireVersion) + ")");
  std::uint16_t kind = rd16(10);
  if (kind != kKindPlan && kind != kKindShardReport)
    fail(what, "unknown kind code " + std::to_string(kind));
  if (kind != expected_kind)
    fail(what, std::string("kind '") + kind_name(kind) + "' where '" +
                   kind_name(expected_kind) + "' was expected");
  std::uint64_t total;
  std::memcpy(&total, p + 12, sizeof total);
  if (total != size)
    fail(what, "declares " + std::to_string(total) + " bytes but " +
                   std::to_string(size) + " were provided (truncated?)");
  std::uint32_t count = rd32(20);
  // A hard cap well above any real file: the table must never size an
  // allocation from an untrusted count alone.
  if (count > 1024) fail(what, "implausible section count");
  std::size_t table_end =
      kHeaderBytes + static_cast<std::size_t>(count) * kSectionEntryBytes;
  if (table_end > size) fail(what, "truncated section table");

  Header h;
  h.sections.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::size_t at = kHeaderBytes + i * kSectionEntryBytes;
    Section s;
    s.tag = rd32(at);
    std::memcpy(&s.offset, p + at + 8, sizeof s.offset);
    std::memcpy(&s.length, p + at + 16, sizeof s.length);
    if (s.offset < table_end || s.offset > size ||
        s.length > size - s.offset)
      fail(what, "section tag " + std::to_string(s.tag) + " [" +
                     std::to_string(s.offset) + ", +" +
                     std::to_string(s.length) + ") out of range");
    h.sections.push_back(s);
  }
  std::vector<Section> by_offset = h.sections;
  std::sort(by_offset.begin(), by_offset.end(),
            [](const Section& a, const Section& b) {
              return a.offset < b.offset;
            });
  for (std::size_t i = 1; i < by_offset.size(); ++i) {
    const Section& a = by_offset[i - 1];
    const Section& b = by_offset[i];
    if (a.offset + a.length > b.offset)
      fail(what, "sections overlap (tag " + std::to_string(a.tag) +
                     " and tag " + std::to_string(b.tag) + ")");
  }
  return h;
}

const Section* find_section(const Header& h, std::uint32_t tag) {
  // Unknown tags are simply never looked up — the forward-compat rule,
  // matching the JSON side's ignored unknown keys.
  for (const Section& s : h.sections)
    if (s.tag == tag) return &s;
  return nullptr;
}

Cursor section_cursor(const std::uint8_t* p, const Header& h,
                      std::uint32_t tag, const char* what,
                      const char* name) {
  const Section* s = find_section(h, tag);
  if (!s) fail(what, std::string("missing section '") + name + "'");
  return Cursor(p + s->offset, static_cast<std::size_t>(s->length),
                std::string(what) + ": section '" + name + "'");
}

/// A fixed-width column section: exactly one `elem`-byte entry per
/// completed id, mirroring the JSON column helper's length check.
Cursor column_cursor(const std::uint8_t* p, const Header& h,
                     std::uint32_t tag, const char* name, std::size_t elem,
                     std::size_t n) {
  const Section* s = find_section(h, tag);
  if (!s)
    fail("shard report", std::string("missing section '") + name + "'");
  if (s->length % elem != 0)
    fail("shard report", "outcomes." + std::string(name) +
                             " section length " + std::to_string(s->length) +
                             " is not a multiple of " + std::to_string(elem));
  if (s->length / elem != n)
    fail("shard report", "outcomes." + std::string(name) + " has " +
                             std::to_string(s->length / elem) +
                             " entries for " + std::to_string(n) +
                             " completed ids");
  return Cursor(p + s->offset, static_cast<std::size_t>(s->length),
                "shard report: section '" + std::string(name) + "'");
}

}  // namespace

bool looks_like_binary_wire(const void* data, std::size_t size) {
  return size >= sizeof kMagic &&
         std::memcmp(data, kMagic, sizeof kMagic) == 0;
}

bool looks_like_binary_wire(const std::string& text) {
  return looks_like_binary_wire(text.data(), text.size());
}

std::string plan_to_binary(const InjectionPlan& plan) {
  std::vector<std::pair<std::uint32_t, std::string>> sections;

  Writer meta;
  meta.str(plan.scenario_name);
  sections.emplace_back(kPlanMeta, std::move(meta.out));

  Writer points;
  points.u32(static_cast<std::uint32_t>(plan.points.size()));
  for (const InteractionPoint& p : plan.points) {
    points.site(p.site);
    points.str(p.call);
    points.str(p.object);
    points.u8(ordinal_of(kObjectKinds, p.kind, "object kind"));
    points.u8(ordinal_of(kSemantics, p.semantic, "input semantic"));
    points.str(p.channel_kind);
    points.u8(p.has_input ? 1 : 0);
    points.i32(p.hits);
  }
  sections.emplace_back(kPlanPoints, std::move(points.out));

  Writer benign;
  benign.u32(static_cast<std::uint32_t>(plan.benign_violations.size()));
  for (const Violation& v : plan.benign_violations) benign.violation(v);
  sections.emplace_back(kPlanBenign, std::move(benign.out));

  Writer perturbed;
  perturbed.u32(static_cast<std::uint32_t>(plan.perturbed_site_tags.size()));
  for (const std::string& tag : plan.perturbed_site_tags)
    perturbed.str(tag);  // std::set: already in sorted, canonical order
  sections.emplace_back(kPlanPerturbed, std::move(perturbed.out));

  Writer items;
  items.u32(static_cast<std::uint32_t>(plan.items.size()));
  bool any_param = false;
  for (const WorkItem& w : plan.items) {
    items.u32(static_cast<std::uint32_t>(w.point_index));
    items.u8(ordinal_of(kFaultKinds, w.fault.kind, "fault kind"));
    items.str(w.fault.name());
    if (w.param != 0) any_param = true;
  }
  sections.emplace_back(kPlanItems, std::move(items.out));

  if (any_param) {
    Writer params;
    for (const WorkItem& w : plan.items) params.u64(w.param);
    sections.emplace_back(kPlanParams, std::move(params.out));
  }

  return assemble(kKindPlan, sections);
}

InjectionPlan plan_from_binary(const void* data, std::size_t size) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  Header h = decode_header(p, size, kKindPlan, "plan");
  InjectionPlan plan;

  Cursor meta = section_cursor(p, h, kPlanMeta, "plan", "meta");
  plan.scenario_name = meta.str();
  meta.finish();
  if (plan.scenario_name.empty()) fail("plan", "scenario name is empty");

  Cursor points = section_cursor(p, h, kPlanPoints, "plan", "points");
  std::uint32_t point_count = points.num<std::uint32_t>();
  for (std::uint32_t i = 0; i < point_count; ++i) {
    InteractionPoint point;
    point.site = points.site();
    point.call = points.str();
    point.object = points.str();
    point.kind =
        from_ordinal(kObjectKinds, points.num<std::uint8_t>(), "object kind");
    point.semantic =
        from_ordinal(kSemantics, points.num<std::uint8_t>(), "input semantic");
    point.channel_kind = points.str();
    point.has_input = points.boolean("has_input") != 0;
    point.hits = points.num<std::int32_t>();
    plan.points.push_back(std::move(point));
  }
  points.finish();

  Cursor benign =
      section_cursor(p, h, kPlanBenign, "plan", "benign_violations");
  std::uint32_t benign_count = benign.num<std::uint32_t>();
  for (std::uint32_t i = 0; i < benign_count; ++i)
    plan.benign_violations.push_back(benign.violation());
  benign.finish();

  Cursor perturbed =
      section_cursor(p, h, kPlanPerturbed, "plan", "perturbed_sites");
  std::uint32_t perturbed_count = perturbed.num<std::uint32_t>();
  for (std::uint32_t i = 0; i < perturbed_count; ++i)
    plan.perturbed_site_tags.insert(perturbed.str());
  perturbed.finish();

  Cursor items = section_cursor(p, h, kPlanItems, "plan", "items");
  std::uint32_t item_count = items.num<std::uint32_t>();
  for (std::uint32_t i = 0; i < item_count; ++i) {
    std::string where = "plan: items[" + std::to_string(i) + "]";
    std::uint32_t point = items.num<std::uint32_t>();
    if (point >= plan.points.size())
      fail(where, "point index " + std::to_string(point) +
                      " out of range (plan has " +
                      std::to_string(plan.points.size()) + " points)");
    FaultKind kind =
        from_ordinal(kFaultKinds, items.num<std::uint8_t>(), "fault kind");
    std::string name = items.str();
    try {
      plan.items.push_back({point, wire_detail::parse_fault(kind, name)});
    } catch (const std::exception& e) {
      fail(where, e.what());
    }
  }
  items.finish();

  // The optional params column: absent means every param is 0 (the
  // serializer omits an all-zero column), present means exactly one u64
  // per item — and at least one nonzero, or decode -> re-encode would
  // drop the section and break canonicality.
  if (const Section* params_section = find_section(h, kPlanParams)) {
    if (params_section->length != plan.items.size() * 8)
      fail("plan", "params section has " +
                       std::to_string(params_section->length / 8) +
                       " entries for " + std::to_string(plan.items.size()) +
                       " items");
    Cursor params(p + params_section->offset,
                  static_cast<std::size_t>(params_section->length),
                  "plan: section 'params'");
    bool any_param = false;
    for (WorkItem& w : plan.items) {
      w.param = params.num<std::uint64_t>();
      if (w.param != 0) any_param = true;
    }
    params.finish();
    if (!any_param)
      fail("plan", "params section present but every param is 0");
  }
  return plan;
}

InjectionPlan plan_from_binary(const std::string& text) {
  return plan_from_binary(text.data(), text.size());
}

std::string shard_report_to_binary(const ShardReport& report) {
  std::vector<std::pair<std::uint32_t, std::string>> sections;

  Writer meta;
  meta.str(report.scenario_name);
  meta.u64(report.shard_index);
  meta.u64(report.shard_count);
  meta.u64(report.plan_items);
  meta.u8(report.leased ? 1 : 0);
  meta.u8(report.complete ? 1 : 0);
  sections.emplace_back(kRepMeta, std::move(meta.out));

  if (report.leased) {
    // Like the JSON optional: only leased reports carry the section, so
    // leased-ness round-trips structurally, not just as a flag.
    Writer assigned;
    for (std::size_t id : report.assigned_ids) assigned.u64(id);
    sections.emplace_back(kRepAssigned, std::move(assigned.out));
  }

  Writer completed;
  for (std::size_t id : report.item_ids) completed.u64(id);
  sections.emplace_back(kRepCompleted, std::move(completed.out));

  const std::size_t n = report.outcomes.size();
  Writer fired, crashed, overflows, exit_code, violations, exploit;
  for (std::size_t i = 0; i < n; ++i) {
    const InjectionOutcome& o = report.outcomes[i];
    fired.u8(o.fired ? 1 : 0);
    crashed.u8(o.crashed ? 1 : 0);
    overflows.i32(o.overflows);
    exit_code.i32(o.exit_code);
    violations.u32(static_cast<std::uint32_t>(o.violations.size()));
    for (const Violation& v : o.violations) violations.violation(v);
    // Present exactly for violated outcomes, like the JSON null/object
    // split — the decoder re-derives `violated` and cross-checks.
    if (o.violated) {
      exploit.u8(1);
      exploit.u8(o.exploit.nonroot_feasible ? 1 : 0);
      exploit.str(o.exploit.actor);
      exploit.str(o.exploit.note);
    } else {
      exploit.u8(0);
    }
  }
  sections.emplace_back(kRepFired, std::move(fired.out));
  sections.emplace_back(kRepCrashed, std::move(crashed.out));
  sections.emplace_back(kRepOverflows, std::move(overflows.out));
  sections.emplace_back(kRepExitCode, std::move(exit_code.out));
  sections.emplace_back(kRepViolations, std::move(violations.out));
  sections.emplace_back(kRepExploit, std::move(exploit.out));

  return assemble(kKindShardReport, sections);
}

ShardReport shard_report_from_binary(const void* data, std::size_t size) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  Header h = decode_header(p, size, kKindShardReport, "shard report");
  ShardReport report;

  Cursor meta = section_cursor(p, h, kRepMeta, "shard report", "meta");
  report.scenario_name = meta.str();
  report.shard_index = static_cast<std::size_t>(meta.num<std::uint64_t>());
  report.shard_count = static_cast<std::size_t>(meta.num<std::uint64_t>());
  report.plan_items = static_cast<std::size_t>(meta.num<std::uint64_t>());
  report.leased = meta.boolean("leased") != 0;
  report.complete = meta.boolean("complete") != 0;
  meta.finish();
  if (report.scenario_name.empty())
    fail("shard report", "scenario name is empty");
  if (report.shard_count == 0)
    fail("shard report", "shard_count must be >= 1");
  if (report.shard_index >= report.shard_count)
    fail("shard report",
         "shard_index " + std::to_string(report.shard_index) +
             " out of range for shard_count " +
             std::to_string(report.shard_count));

  const Section* assigned = find_section(h, kRepAssigned);
  if (report.leased) {
    if (!assigned)
      fail("shard report",
           "leased report is missing its 'assigned_ids' section");
    if (report.shard_index != 0 || report.shard_count != 1)
      fail("shard report",
           "a leased report (assigned_ids) must carry shard_index 0 and "
           "shard_count 1, not shard " +
               std::to_string(report.shard_index + 1) + "/" +
               std::to_string(report.shard_count));
    Cursor c = section_cursor(p, h, kRepAssigned, "shard report",
                              "assigned_ids");
    if (assigned->length % 8 != 0)
      fail("shard report", "assigned_ids section length " +
                               std::to_string(assigned->length) +
                               " is not a multiple of 8");
    while (c.remaining() > 0) {
      auto id = static_cast<std::size_t>(c.num<std::uint64_t>());
      if (id >= report.plan_items)
        fail("shard report",
             "work-item id " + std::to_string(id) +
                 " out of range (plan has " +
                 std::to_string(report.plan_items) + " items)");
      if (!report.assigned_ids.empty()) {
        std::size_t prev = report.assigned_ids.back();
        if (id == prev)
          fail("shard report", "duplicate assigned id " + std::to_string(id));
        if (id < prev)
          fail("shard report",
               "assigned_ids out of order (" + std::to_string(id) +
                   " after " + std::to_string(prev) + ")");
      }
      report.assigned_ids.push_back(id);
    }
  } else if (assigned) {
    fail("shard report",
         "'assigned_ids' section present but the report is not leased");
  }

  const Section* completed = find_section(h, kRepCompleted);
  if (!completed)
    fail("shard report", "missing section 'completed_ids'");
  if (completed->length % 8 != 0)
    fail("shard report", "completed_ids section length " +
                             std::to_string(completed->length) +
                             " is not a multiple of 8");
  {
    Cursor c = section_cursor(p, h, kRepCompleted, "shard report",
                              "completed_ids");
    while (c.remaining() > 0) {
      auto id = c.num<std::uint64_t>();
      wire_detail::check_completed_id(report, static_cast<long long>(id),
                                      /*require_ascending=*/true);
      report.item_ids.push_back(static_cast<std::size_t>(id));
    }
  }

  const std::size_t n = report.item_ids.size();
  Cursor fired = column_cursor(p, h, kRepFired, "fired", 1, n);
  Cursor crashed = column_cursor(p, h, kRepCrashed, "crashed", 1, n);
  Cursor overflows = column_cursor(p, h, kRepOverflows, "overflows", 4, n);
  Cursor exit_code = column_cursor(p, h, kRepExitCode, "exit_code", 4, n);
  Cursor violations =
      section_cursor(p, h, kRepViolations, "shard report", "violations");
  Cursor exploit =
      section_cursor(p, h, kRepExploit, "shard report", "exploit");

  report.outcomes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    InjectionOutcome o;
    o.fired = fired.boolean("fired") != 0;
    o.crashed = crashed.boolean("crashed") != 0;
    o.overflows = overflows.num<std::int32_t>();
    o.exit_code = exit_code.num<std::int32_t>();
    std::uint32_t vcount = violations.num<std::uint32_t>();
    for (std::uint32_t v = 0; v < vcount; ++v)
      o.violations.push_back(violations.violation());
    o.violated = !o.violations.empty();
    if (exploit.boolean("exploit presence") != 0) {
      if (!o.violated)
        fail("shard report: outcomes[" + std::to_string(i) + "]",
             "exploit present for an outcome with no violations");
      o.exploit.nonroot_feasible = exploit.boolean("nonroot_feasible") != 0;
      o.exploit.actor = exploit.str();
      o.exploit.note = exploit.str();
    } else if (o.violated) {
      fail("shard report: outcomes[" + std::to_string(i) + "]",
           "exploit is absent for a violated outcome");
    }
    report.outcomes.push_back(std::move(o));
  }
  violations.finish();
  exploit.finish();

  wire_detail::validate_complete_flag(report, /*flag_on_wire=*/true);
  return report;
}

ShardReport shard_report_from_binary(const std::string& text) {
  return shard_report_from_binary(text.data(), text.size());
}

}  // namespace ep::core
