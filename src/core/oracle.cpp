#include "core/oracle.hpp"

#include "os/path.hpp"
#include "util/strings.hpp"

namespace ep::core {

std::string_view to_string(Policy p) {
  switch (p) {
    case Policy::integrity: return "integrity";
    case Policy::confidentiality: return "confidentiality";
    case Policy::untrusted_exec: return "untrusted-exec";
    case Policy::memory_safety: return "memory-safety";
    case Policy::trust: return "trust";
    case Policy::authorization: return "authorization";
    case Policy::redzone_corruption: return "redzone-corruption";
  }
  return "?";
}

SecurityOracle::SecurityOracle(PolicySpec spec) : spec_(std::move(spec)) {}

bool SecurityOracle::watched(const os::Process& p) const {
  if (spec_.watch_all) return true;
  // The privilege gap of the paper's threat model: the program acts with
  // an identity its invoker does not hold.
  return p.euid != p.ruid;
}

bool SecurityOracle::sanctioned(const std::string& canonical) const {
  for (const auto& root : spec_.write_sanction_roots)
    if (os::path::is_under(canonical, root)) return true;
  return false;
}

bool SecurityOracle::is_secret_file(const std::string& canonical) const {
  for (const auto& s : spec_.secret_files)
    if (s == canonical) return true;
  return false;
}

void SecurityOracle::report(Policy policy, const os::SyscallCtx& ctx,
                            std::string detail) {
  std::string key = std::string(to_string(policy)) + "|" + ctx.call + "|" +
                    (ctx.canonical.empty() ? ctx.path : ctx.canonical);
  if (!dedup_.insert(key).second) return;
  Violation v;
  v.policy = policy;
  v.site = ctx.site;
  v.call = ctx.call;
  v.object = ctx.canonical.empty() ? ctx.path : ctx.canonical;
  v.detail = std::move(detail);
  violations_.push_back(std::move(v));
}

void SecurityOracle::after(os::Kernel& k, os::SyscallCtx& ctx, Err result) {
  // Redzone corruption is handled before the process guard below: the
  // teardown sweep reports with no process (pid -1), and corruption is
  // environment-state damage, so it is recorded whether or not the
  // faulting process is privileged. ctx.path carries the corrupted
  // object's identity (report()'s dedup key).
  if (ctx.call == "app_fault" && ctx.aux == "redzone_corruption") {
    ++redzones_;
    report(Policy::redzone_corruption, ctx,
           "memory corrupted past the end of a guarded region: " + ctx.data);
    return;
  }
  if (ctx.pid < 0 || !k.has_proc(ctx.pid)) return;
  const os::Process& p = k.proc(ctx.pid);

  // Channel ground truth accumulates regardless of result.
  consumed_unauthentic_ |= ctx.net_unauthentic;
  protocol_violated_ |= ctx.net_protocol_violation;
  peer_untrusted_ |= ctx.net_peer_untrusted;
  socket_shared_ |= ctx.net_socket_shared;
  auth_confirmed_ |= ctx.net_auth_confirmation;

  if (ctx.call == "app_fault") {
    if (ctx.aux == "crash") ++crashes_;
    if (ctx.aux == "buffer_overflow") {
      ++overflows_;
      if (watched(p))
        report(Policy::memory_safety, ctx,
               "fixed buffer overflowed in privileged process: " + ctx.data);
    }
    return;
  }

  if (!watched(p)) return;
  if (result != Err::ok && ctx.call != "output") {
    // A refused interaction cannot violate these policies; the program
    // tolerated the fault (or the kernel did on its behalf).
    return;
  }

  const std::string& obj = ctx.canonical.empty() ? ctx.path : ctx.canonical;

  if (ctx.call == "open") {
    const bool writing = ep::contains(ctx.aux, "w");
    if (!ctx.object_preexisting) {
      created_.insert(ctx.object);
      // P1 clause (b): creating entries in a directory the invoker could
      // not write, outside the program's sanctioned output roots.
      std::string parent = os::path::dirname(ctx.canonical);
      if (!sanctioned(ctx.canonical) &&
          !k.uid_can(p.ruid, p.rgid, parent, os::Perm::write)) {
        report(Policy::integrity, ctx,
               "privileged process created " + ctx.canonical +
                   " in a directory the invoker (" + k.user_name(p.ruid) +
                   ") cannot write");
      }
      // P1 clause (c): a privileged process leaving its output writable
      // by everyone hands the object to any local user — the classic
      // inherited-umask-zero flaw (mask perturbation, Table 5).
      auto st = k.vfs().stat_inode(ctx.object);
      if (st.ok() && (st.value().mode & os::kOtherWrite) != 0) {
        report(Policy::integrity, ctx,
               "privileged process created world-writable " + ctx.canonical);
      }
    } else if (writing &&
               (ep::contains(ctx.aux, "t") || ep::contains(ctx.aux, "c")) &&
               !created_.count(ctx.object) && !ctx.object_ruid_writable) {
      // P1 clause (a): a truncating/claiming open of a pre-existing
      // object the invoker could not write is already destructive (lpr's
      // spool-file flaw). A plain open-for-write only becomes a
      // violation if a write follows — a program that re-validates
      // through the descriptor and backs off has tolerated the fault.
      report(Policy::integrity, ctx,
             "privileged process opened pre-existing " + ctx.canonical +
                 " for writing; invoker (" + k.user_name(p.ruid) +
                 ") lacks write permission");
    }
    if (!writing && ctx.object_preexisting &&
        (is_secret_file(ctx.canonical) || !ctx.object_ruid_readable)) {
      // Reading will be tracked at the read itself; nothing to do here.
    }
    return;
  }

  if (ctx.call == "mkdir" && result == Err::ok) {
    created_.insert(ctx.object);
    std::string parent = os::path::dirname(ctx.canonical);
    if (!sanctioned(ctx.canonical) &&
        !k.uid_can(p.ruid, p.rgid, parent, os::Perm::write))
      report(Policy::integrity, ctx,
             "privileged process created directory " + ctx.canonical +
                 " where the invoker cannot write");
    return;
  }

  if (ctx.call == "write") {
    if (!created_.count(ctx.object) && !ctx.object_ruid_writable)
      report(Policy::integrity, ctx,
             "privileged process wrote " + obj + "; invoker (" +
                 k.user_name(p.ruid) + ") lacks write permission");
    return;
  }

  if (ctx.call == "unlink" || ctx.call == "rmdir" || ctx.call == "chmod" ||
      ctx.call == "chown" || ctx.call == "rename") {
    if (ctx.object_preexisting && !created_.count(ctx.object) &&
        !ctx.object_ruid_writable)
      report(Policy::integrity, ctx,
             "privileged process performed " + ctx.call + " on " + obj +
                 " which the invoker (" + k.user_name(p.ruid) +
                 ") cannot write");
    return;
  }

  if (ctx.call == "read" || ctx.call == "regread" || ctx.call == "readdir") {
    if (ctx.object_untrusted)
      report(Policy::trust, ctx,
             "privileged process consumed data from untrusted entity " + obj);
    if (ctx.call == "read" && !ctx.data.empty() &&
        (is_secret_file(ctx.canonical) || !ctx.object_ruid_readable)) {
      // Remember the payload; if it surfaces on output, that is P2.
      secrets_read_.push_back(ctx.data);
    }
    return;
  }

  if (ctx.call == "output" || ctx.call == "send") {
    // Printing or transmitting are both disclosure channels.
    for (const auto& secret : secrets_read_) {
      if (secret.size() >= 4 && ep::contains(ctx.data, secret)) {
        report(Policy::confidentiality, ctx,
               (ctx.call == "output" ? "output discloses"
                                     : "network send discloses") +
                   std::string(" content the invoker (") +
                   k.user_name(p.ruid) + ") cannot read");
        break;
      }
    }
    return;
  }

  if (ctx.call == "exec") {
    if (ctx.object_untrusted) {
      report(Policy::trust, ctx,
             "privileged process executed binary from untrusted entity " +
                 obj);
      return;
    }
    auto st = k.vfs().stat_inode(ctx.object);
    if (!st.ok()) return;
    const os::StatInfo& s = st.value();
    if (s.uid != os::kRootUid && s.uid != p.ruid)
      report(Policy::untrusted_exec, ctx,
             "privileged process executed " + obj + " owned by third party " +
                 k.user_name(s.uid));
    else if ((s.mode & os::kOtherWrite) != 0)
      report(Policy::untrusted_exec, ctx,
             "privileged process executed world-writable binary " + obj);
    else if ((s.mode & os::kGroupWrite) != 0 && s.gid != os::kRootGid)
      report(Policy::untrusted_exec, ctx,
             "privileged process executed group-writable binary " + obj);
    return;
  }

  if (ctx.call == "privileged_action") {
    const bool believes_authorized = ctx.data == "authorized";
    std::string why;
    if (!believes_authorized)
      why = "program proceeded although it knew authorization failed";
    else if (consumed_unauthentic_)
      why = "authorization rested on an unauthentic message";
    else if (protocol_violated_)
      why = "authorization rested on an out-of-protocol exchange";
    else if (socket_shared_)
      why = "authorization rested on a socket shared with another process";
    else if (peer_untrusted_)
      why = "authorization rested on an untrusted peer";
    else if (spec_.require_auth_confirmation && !auth_confirmed_)
      why = "no genuine confirmation from the authority was obtained";
    if (!why.empty())
      report(Policy::authorization, ctx, ctx.aux + ": " + why);
    return;
  }
}

}  // namespace ep::core
