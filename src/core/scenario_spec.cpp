#include "core/scenario_spec.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <set>
#include <utility>

#include "core/catalog.hpp"
#include "core/target_world.hpp"
#include "core/wire.hpp"
#include "os/world.hpp"
#include "reg/registry.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"

namespace ep::core {
namespace {

// ---- enum codecs ----------------------------------------------------------

constexpr ObjectKind kAllObjectKinds[] = {
    ObjectKind::file,         ObjectKind::directory,
    ObjectKind::exec_binary,  ObjectKind::net_inbound,
    ObjectKind::net_service,  ObjectKind::ipc_service,
    ObjectKind::registry_key, ObjectKind::user_input,
    ObjectKind::env_var,      ObjectKind::none,
};

constexpr InputSemantic kAllSemantics[] = {
    InputSemantic::file_name,      InputSemantic::command,
    InputSemantic::path_list,      InputSemantic::permission_mask,
    InputSemantic::file_extension, InputSemantic::ip_address,
    InputSemantic::packet,         InputSemantic::host_name,
    InputSemantic::dns_reply,      InputSemantic::ipc_message,
};

const char* op_kind_name(WorldOp::Kind k) {
  switch (k) {
    case WorldOp::Kind::dir: return "dir";
    case WorldOp::Kind::file: return "file";
    case WorldOp::Kind::program: return "program";
    case WorldOp::Kind::symlink: return "symlink";
  }
  return "?";
}

const char* channel_name(net::ChannelKind k) {
  return k == net::ChannelKind::ipc ? "ipc" : "network";
}

// ---- error helpers --------------------------------------------------------

[[noreturn]] void fail(const std::string& ctx, const std::string& msg) {
  throw WireError("scenario spec: " + ctx + ": " + msg);
}

/// Strict object reader: every key must be consumed via get()/need(), and
/// done() rejects whatever the document carried beyond that. The strict-
/// ness is what makes spec files trustworthy as a wire format — a typo'd
/// field fails loudly instead of silently meaning "default".
class Obj {
 public:
  Obj(const JsonValue& v, std::string ctx) : v_(v), ctx_(std::move(ctx)) {
    if (!v_.is_object())
      fail(ctx_, "expected an object, got " + std::string(v_.type_name()));
  }

  const JsonValue* get(const char* key) {
    seen_.emplace_back(key);
    return v_.find(key);
  }

  const JsonValue& need(const char* key) {
    const JsonValue* p = get(key);
    if (!p) fail(ctx_, std::string("missing required key \"") + key + "\"");
    return *p;
  }

  void done() const {
    for (const auto& [key, value] : v_.members()) {
      (void)value;
      if (std::find(seen_.begin(), seen_.end(), key) == seen_.end())
        fail(ctx_, "unknown key \"" + key + "\"");
    }
  }

  [[nodiscard]] const std::string& ctx() const { return ctx_; }

 private:
  const JsonValue& v_;
  std::string ctx_;
  std::vector<std::string> seen_;
};

std::string want_string(const JsonValue& v, const std::string& ctx) {
  if (!v.is_string())
    fail(ctx, "expected a string, got " + std::string(v.type_name()));
  return v.as_string();
}

bool want_bool(const JsonValue& v, const std::string& ctx) {
  if (!v.is_bool())
    fail(ctx, "expected a boolean, got " + std::string(v.type_name()));
  return v.as_bool();
}

long long want_int(const JsonValue& v, const std::string& ctx) {
  if (!v.is_number())
    fail(ctx, "expected a number, got " + std::string(v.type_name()));
  return v.as_int();
}

int want_id(const JsonValue& v, const std::string& ctx) {
  long long n = want_int(v, ctx);
  if (n < 0 || n > 1'000'000'000) fail(ctx, "uid/gid out of range");
  return static_cast<int>(n);
}

const std::vector<JsonValue>& want_array(const JsonValue& v,
                                         const std::string& ctx) {
  if (!v.is_array())
    fail(ctx, "expected an array, got " + std::string(v.type_name()));
  return v.items();
}

std::vector<std::string> want_string_list(const JsonValue& v,
                                          const std::string& ctx) {
  std::vector<std::string> out;
  for (const JsonValue& item : want_array(v, ctx))
    out.push_back(want_string(item, ctx + " element"));
  return out;
}

std::map<std::string, std::string> want_string_map(const JsonValue& v,
                                                   const std::string& ctx) {
  if (!v.is_object())
    fail(ctx, "expected an object, got " + std::string(v.type_name()));
  std::map<std::string, std::string> out;
  for (const auto& [key, value] : v.members())
    out[key] = want_string(value, ctx + "." + key);
  return out;
}

unsigned want_mode(const JsonValue& v, const std::string& ctx) {
  std::string s = want_string(v, ctx);
  if (s.empty() || s.size() > 6)
    fail(ctx, "mode must be a non-empty octal string like \"0755\"");
  unsigned mode = 0;
  for (char c : s) {
    if (c < '0' || c > '7')
      fail(ctx, "mode must be a non-empty octal string like \"0755\"");
    mode = mode * 8 + static_cast<unsigned>(c - '0');
  }
  if (mode > 07777) fail(ctx, "mode out of range (max \"7777\")");
  return mode;
}

net::ChannelKind want_channel(const JsonValue& v, const std::string& ctx) {
  std::string s = want_string(v, ctx);
  if (s == "network") return net::ChannelKind::network;
  if (s == "ipc") return net::ChannelKind::ipc;
  fail(ctx, "unknown channel \"" + s + "\" (expected \"network\" or \"ipc\")");
}

ObjectKind want_object_kind(const JsonValue& v, const std::string& ctx) {
  std::string s = want_string(v, ctx);
  for (ObjectKind k : kAllObjectKinds)
    if (std::string(to_string(k)) == s) return k;
  fail(ctx, "unknown object kind \"" + s + "\"");
}

InputSemantic want_semantic(const JsonValue& v, const std::string& ctx) {
  std::string s = want_string(v, ctx);
  for (InputSemantic sem : kAllSemantics)
    if (std::string(to_string(sem)) == s) return sem;
  fail(ctx, "unknown input semantic \"" + s + "\"");
}

// ---- section parsers ------------------------------------------------------

SpecUser parse_user(const JsonValue& v, const std::string& ctx) {
  Obj o(v, ctx);
  SpecUser u;
  u.uid = want_id(o.need("uid"), ctx + ".uid");
  u.name = want_string(o.need("name"), ctx + ".name");
  u.gid = want_id(o.need("gid"), ctx + ".gid");
  o.done();
  return u;
}

WorldOp parse_world_op(const JsonValue& v, const std::string& ctx) {
  Obj o(v, ctx);
  WorldOp op;
  std::string kind = want_string(o.need("op"), ctx + ".op");
  if (kind == "dir") {
    op.kind = WorldOp::Kind::dir;
  } else if (kind == "file") {
    op.kind = WorldOp::Kind::file;
    op.content = want_string(o.need("content"), ctx + ".content");
  } else if (kind == "program") {
    op.kind = WorldOp::Kind::program;
    op.image = want_string(o.need("image"), ctx + ".image");
  } else if (kind == "symlink") {
    op.kind = WorldOp::Kind::symlink;
    op.target = want_string(o.need("target"), ctx + ".target");
  } else {
    fail(ctx + ".op", "unknown world op \"" + kind +
                          "\" (expected \"dir\", \"file\", \"program\" or "
                          "\"symlink\")");
  }
  op.path = want_string(o.need("path"), ctx + ".path");
  op.uid = want_id(o.need("uid"), ctx + ".uid");
  op.gid = want_id(o.need("gid"), ctx + ".gid");
  if (op.kind == WorldOp::Kind::symlink)
    op.mode = 0;
  else
    op.mode = want_mode(o.need("mode"), ctx + ".mode");
  o.done();
  return op;
}

SpecNetwork parse_network(const JsonValue& v, const std::string& ctx) {
  Obj o(v, ctx);
  SpecNetwork net;
  std::size_t i = 0;
  for (const JsonValue& h : want_array(o.need("hosts"), ctx + ".hosts")) {
    std::string hctx = ctx + ".hosts[" + std::to_string(i++) + "]";
    Obj ho(h, hctx);
    SpecHost host;
    host.name = want_string(ho.need("name"), hctx + ".name");
    host.ip = want_string(ho.need("ip"), hctx + ".ip");
    ho.done();
    net.hosts.push_back(std::move(host));
  }
  i = 0;
  for (const JsonValue& s :
       want_array(o.need("services"), ctx + ".services")) {
    std::string sctx = ctx + ".services[" + std::to_string(i++) + "]";
    Obj so(s, sctx);
    SpecService svc;
    svc.name = want_string(so.need("name"), sctx + ".name");
    svc.kind = want_channel(so.need("channel"), sctx + ".channel");
    svc.available = want_bool(so.need("available"), sctx + ".available");
    svc.trusted = want_bool(so.need("trusted"), sctx + ".trusted");
    svc.handler = want_string(so.need("handler"), sctx + ".handler");
    so.done();
    net.services.push_back(std::move(svc));
  }
  if (const JsonValue* c = o.get("client")) {
    std::string cctx = ctx + ".client";
    Obj co(*c, cctx);
    SpecClientScript script;
    script.peer = want_string(co.need("peer"), cctx + ".peer");
    script.kind = want_channel(co.need("channel"), cctx + ".channel");
    script.protocol =
        want_string_list(co.need("protocol"), cctx + ".protocol");
    i = 0;
    for (const JsonValue& m :
         want_array(co.need("inbound"), cctx + ".inbound")) {
      std::string mctx = cctx + ".inbound[" + std::to_string(i++) + "]";
      Obj mo(m, mctx);
      net::Message msg;
      msg.from = want_string(mo.need("from"), mctx + ".from");
      msg.type = want_string(mo.need("type"), mctx + ".type");
      msg.payload = want_string(mo.need("payload"), mctx + ".payload");
      msg.authentic = true;  // specs describe the benign world only
      mo.done();
      script.inbound.push_back(std::move(msg));
    }
    co.done();
    net.client = std::move(script);
  }
  o.done();
  return net;
}

SpecRegistryKey parse_registry_key(const JsonValue& v,
                                   const std::string& ctx) {
  Obj o(v, ctx);
  SpecRegistryKey key;
  key.path = want_string(o.need("path"), ctx + ".path");
  key.value = want_string(o.need("value"), ctx + ".value");
  key.owner = want_id(o.need("owner"), ctx + ".owner");
  key.everyone_read =
      want_bool(o.need("everyone_read"), ctx + ".everyone_read");
  key.everyone_write =
      want_bool(o.need("everyone_write"), ctx + ".everyone_write");
  key.used_by_module = want_string(o.need("module"), ctx + ".module");
  key.trusted = want_bool(o.need("trusted"), ctx + ".trusted");
  o.done();
  return key;
}

RunStep parse_run_step(const JsonValue& v, const std::string& ctx) {
  Obj o(v, ctx);
  RunStep step;
  step.program = want_string(o.need("program"), ctx + ".program");
  step.args = want_string_list(o.need("args"), ctx + ".args");
  step.uid = want_id(o.need("uid"), ctx + ".uid");
  step.gid = want_id(o.need("gid"), ctx + ".gid");
  step.env = want_string_map(o.need("env"), ctx + ".env");
  step.cwd = want_string(o.need("cwd"), ctx + ".cwd");
  o.done();
  return step;
}

PolicySpec parse_policy(const JsonValue& v, const std::string& ctx) {
  Obj o(v, ctx);
  PolicySpec policy;
  policy.write_sanction_roots = want_string_list(
      o.need("write_sanction_roots"), ctx + ".write_sanction_roots");
  policy.secret_files =
      want_string_list(o.need("secret_files"), ctx + ".secret_files");
  policy.watch_all = want_bool(o.need("watch_all"), ctx + ".watch_all");
  policy.require_auth_confirmation = want_bool(
      o.need("require_auth_confirmation"), ctx + ".require_auth_confirmation");
  o.done();
  return policy;
}

ScenarioHints parse_hints(const JsonValue& v, const std::string& ctx) {
  Obj o(v, ctx);
  ScenarioHints hints;
  hints.attacker_uid = want_id(o.need("attacker_uid"), ctx + ".attacker_uid");
  hints.attacker_gid = want_id(o.need("attacker_gid"), ctx + ".attacker_gid");
  hints.attacker_dir =
      want_string(o.need("attacker_dir"), ctx + ".attacker_dir");
  hints.symlink_victim =
      want_string(o.need("symlink_victim"), ctx + ".symlink_victim");
  hints.secret_victim =
      want_string(o.need("secret_victim"), ctx + ".secret_victim");
  hints.dir_victim = want_string(o.need("dir_victim"), ctx + ".dir_victim");
  hints.evil_program =
      want_string(o.need("evil_program"), ctx + ".evil_program");
  long long len = want_int(o.need("long_length"), ctx + ".long_length");
  if (len < 0) fail(ctx + ".long_length", "must be non-negative");
  hints.long_length = static_cast<std::size_t>(len);
  hints.content_payloads = want_string_map(o.need("content_payloads"),
                                           ctx + ".content_payloads");
  hints.link_victims =
      want_string_map(o.need("link_victims"), ctx + ".link_victims");
  o.done();
  return hints;
}

std::pair<std::string, SiteSpec> parse_site(const JsonValue& v,
                                            const std::string& ctx) {
  Obj o(v, ctx);
  std::string tag = want_string(o.need("tag"), ctx + ".tag");
  SiteSpec site;
  site.kind = want_object_kind(o.need("kind"), ctx + ".kind");
  if (const JsonValue* s = o.get("semantic"))
    site.semantic = want_semantic(*s, ctx + ".semantic");
  site.faults = want_string_list(o.need("faults"), ctx + ".faults");
  site.not_applicable =
      want_string_map(o.need("not_applicable"), ctx + ".not_applicable");
  site.skip = want_bool(o.need("skip"), ctx + ".skip");
  o.done();
  return {std::move(tag), std::move(site)};
}

// ---- serializer helpers ---------------------------------------------------

std::string octal(unsigned mode) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0%o", mode);
  return buf;
}

std::string str_list(const std::vector<std::string>& items) {
  std::string out = "[";
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) out += ", ";
    out += json_quote(items[i]);
  }
  return out + "]";
}

/// Multi-line string map at `indent` spaces; "{}" when empty.
std::string str_map(const std::map<std::string, std::string>& m,
                    int indent) {
  if (m.empty()) return "{}";
  std::string pad(static_cast<std::size_t>(indent), ' ');
  std::string out = "{\n";
  std::size_t i = 0;
  for (const auto& [key, value] : m) {
    out += pad + "  " + json_quote(key) + ": " + json_quote(value);
    out += (++i < m.size()) ? ",\n" : "\n";
  }
  return out + pad + "}";
}

/// Inline string map: {"A": "1", "B": "2"} (run-step env).
std::string inline_map(const std::map<std::string, std::string>& m) {
  std::string out = "{";
  std::size_t i = 0;
  for (const auto& [key, value] : m) {
    if (i++) out += ", ";
    out += json_quote(key) + ": " + json_quote(value);
  }
  return out + "}";
}

const char* comma(std::size_t i, std::size_t n) {
  return i + 1 < n ? "," : "";
}

std::string world_op_json(const WorldOp& op) {
  std::string out = "{\"op\": ";
  out += json_quote(op_kind_name(op.kind));
  out += ", \"path\": " + json_quote(op.path);
  switch (op.kind) {
    case WorldOp::Kind::dir: break;
    case WorldOp::Kind::file:
      out += ", \"content\": " + json_quote(op.content);
      break;
    case WorldOp::Kind::program:
      out += ", \"image\": " + json_quote(op.image);
      break;
    case WorldOp::Kind::symlink:
      out += ", \"target\": " + json_quote(op.target);
      break;
  }
  out += ", \"uid\": " + std::to_string(op.uid);
  out += ", \"gid\": " + std::to_string(op.gid);
  if (op.kind != WorldOp::Kind::symlink)
    out += ", \"mode\": " + json_quote(octal(op.mode));
  return out + "}";
}

}  // namespace

std::string spec_to_json(const ScenarioSpec& spec) {
  std::string out = "{\n";
  out += "  \"kind\": \"scenario-spec\",\n";
  out += "  \"schema_version\": " + std::to_string(kSpecSchemaVersion) +
         ",\n";
  out += "  \"name\": " + json_quote(spec.name) + ",\n";
  out += "  \"description\": " + json_quote(spec.description) + ",\n";
  out += "  \"trace_unit_filter\": " + json_quote(spec.trace_unit_filter) +
         ",\n";
  out += std::string("  \"standard_unix\": ") +
         (spec.standard_unix ? "true" : "false") + ",\n";

  out += "  \"users\": [";
  for (std::size_t i = 0; i < spec.users.size(); ++i) {
    const SpecUser& u = spec.users[i];
    out += "\n    {\"uid\": " + std::to_string(u.uid) +
           ", \"name\": " + json_quote(u.name) +
           ", \"gid\": " + std::to_string(u.gid) + "}";
    out += comma(i, spec.users.size());
  }
  out += spec.users.empty() ? "],\n" : "\n  ],\n";

  out += "  \"images\": " + str_list(spec.images) + ",\n";

  out += "  \"world\": [";
  for (std::size_t i = 0; i < spec.world.size(); ++i) {
    out += "\n    " + world_op_json(spec.world[i]);
    out += comma(i, spec.world.size());
  }
  out += spec.world.empty() ? "],\n" : "\n  ],\n";

  out += "  \"network\": {\n";
  out += "    \"hosts\": [";
  for (std::size_t i = 0; i < spec.network.hosts.size(); ++i) {
    const SpecHost& h = spec.network.hosts[i];
    out += "\n      {\"name\": " + json_quote(h.name) +
           ", \"ip\": " + json_quote(h.ip) + "}";
    out += comma(i, spec.network.hosts.size());
  }
  out += spec.network.hosts.empty() ? "],\n" : "\n    ],\n";
  out += "    \"services\": [";
  for (std::size_t i = 0; i < spec.network.services.size(); ++i) {
    const SpecService& s = spec.network.services[i];
    out += "\n      {\"name\": " + json_quote(s.name) + ", \"channel\": " +
           json_quote(channel_name(s.kind)) + ", \"available\": " +
           (s.available ? "true" : "false") + ", \"trusted\": " +
           (s.trusted ? "true" : "false") + ", \"handler\": " +
           json_quote(s.handler) + "}";
    out += comma(i, spec.network.services.size());
  }
  out += spec.network.services.empty() ? "]" : "\n    ]";
  if (spec.network.client) {
    const SpecClientScript& c = *spec.network.client;
    out += ",\n    \"client\": {\n";
    out += "      \"peer\": " + json_quote(c.peer) + ",\n";
    out += "      \"channel\": " + json_quote(channel_name(c.kind)) + ",\n";
    out += "      \"protocol\": " + str_list(c.protocol) + ",\n";
    out += "      \"inbound\": [";
    for (std::size_t i = 0; i < c.inbound.size(); ++i) {
      const net::Message& m = c.inbound[i];
      out += "\n        {\"from\": " + json_quote(m.from) +
             ", \"type\": " + json_quote(m.type) +
             ", \"payload\": " + json_quote(m.payload) + "}";
      out += comma(i, c.inbound.size());
    }
    out += c.inbound.empty() ? "]\n" : "\n      ]\n";
    out += "    }\n";
  } else {
    out += "\n";
  }
  out += "  },\n";

  out += "  \"registry\": [";
  for (std::size_t i = 0; i < spec.registry.size(); ++i) {
    const SpecRegistryKey& k = spec.registry[i];
    out += "\n    {\"path\": " + json_quote(k.path) +
           ", \"value\": " + json_quote(k.value) +
           ", \"owner\": " + std::to_string(k.owner) +
           ", \"everyone_read\": " + (k.everyone_read ? "true" : "false") +
           ", \"everyone_write\": " + (k.everyone_write ? "true" : "false") +
           ", \"module\": " + json_quote(k.used_by_module) +
           ", \"trusted\": " + (k.trusted ? "true" : "false") + "}";
    out += comma(i, spec.registry.size());
  }
  out += spec.registry.empty() ? "],\n" : "\n  ],\n";

  out += "  \"run\": [";
  for (std::size_t i = 0; i < spec.run.size(); ++i) {
    const RunStep& step = spec.run[i];
    out += "\n    {\"program\": " + json_quote(step.program) +
           ", \"args\": " + str_list(step.args) +
           ", \"uid\": " + std::to_string(step.uid) +
           ", \"gid\": " + std::to_string(step.gid) +
           ", \"env\": " + inline_map(step.env) +
           ", \"cwd\": " + json_quote(step.cwd) + "}";
    out += comma(i, spec.run.size());
  }
  out += spec.run.empty() ? "],\n" : "\n  ],\n";

  out += "  \"policy\": {\n";
  out += "    \"write_sanction_roots\": " +
         str_list(spec.policy.write_sanction_roots) + ",\n";
  out += "    \"secret_files\": " + str_list(spec.policy.secret_files) +
         ",\n";
  out += std::string("    \"watch_all\": ") +
         (spec.policy.watch_all ? "true" : "false") + ",\n";
  out += std::string("    \"require_auth_confirmation\": ") +
         (spec.policy.require_auth_confirmation ? "true" : "false") + "\n";
  out += "  },\n";

  const ScenarioHints& h = spec.hints;
  out += "  \"hints\": {\n";
  out += "    \"attacker_uid\": " + std::to_string(h.attacker_uid) + ",\n";
  out += "    \"attacker_gid\": " + std::to_string(h.attacker_gid) + ",\n";
  out += "    \"attacker_dir\": " + json_quote(h.attacker_dir) + ",\n";
  out += "    \"symlink_victim\": " + json_quote(h.symlink_victim) + ",\n";
  out += "    \"secret_victim\": " + json_quote(h.secret_victim) + ",\n";
  out += "    \"dir_victim\": " + json_quote(h.dir_victim) + ",\n";
  out += "    \"evil_program\": " + json_quote(h.evil_program) + ",\n";
  out += "    \"long_length\": " + std::to_string(h.long_length) + ",\n";
  out += "    \"content_payloads\": " + str_map(h.content_payloads, 4) +
         ",\n";
  out += "    \"link_victims\": " + str_map(h.link_victims, 4) + "\n";
  out += "  },\n";

  out += "  \"sites\": [";
  for (std::size_t i = 0; i < spec.sites.size(); ++i) {
    const auto& [tag, site] = spec.sites[i];
    out += "\n    {\n";
    out += "      \"tag\": " + json_quote(tag) + ",\n";
    out += "      \"kind\": " +
           json_quote(std::string(to_string(site.kind))) + ",\n";
    if (site.semantic)
      out += "      \"semantic\": " +
             json_quote(std::string(to_string(*site.semantic))) + ",\n";
    out += "      \"faults\": " + str_list(site.faults) + ",\n";
    out += "      \"not_applicable\": " + str_map(site.not_applicable, 6) +
           ",\n";
    out += std::string("      \"skip\": ") + (site.skip ? "true" : "false") +
           "\n";
    out += "    }";
    out += comma(i, spec.sites.size());
  }
  out += spec.sites.empty() ? "]\n" : "\n  ]\n";
  return out + "}\n";
}

ScenarioSpec spec_from_json(const std::string& text) {
  JsonValue doc;
  try {
    doc = json_parse(text);
  } catch (const JsonError& e) {
    throw WireError(std::string("scenario spec: ") + e.what());
  }
  Obj o(doc, "top level");
  std::string kind = want_string(o.need("kind"), "kind");
  if (kind != "scenario-spec")
    fail("kind", "expected \"scenario-spec\", got \"" + kind + "\"");
  long long version =
      want_int(o.need("schema_version"), "schema_version");
  if (version < 1 || version > kSpecSchemaVersion)
    fail("schema_version",
         "unsupported version " + std::to_string(version) +
             " (this build reads up to " +
             std::to_string(kSpecSchemaVersion) + ")");

  ScenarioSpec spec;
  spec.name = want_string(o.need("name"), "name");
  if (spec.name.empty()) fail("name", "must not be empty");
  if (const JsonValue* p = o.get("description"))
    spec.description = want_string(*p, "description");
  if (const JsonValue* p = o.get("trace_unit_filter"))
    spec.trace_unit_filter = want_string(*p, "trace_unit_filter");
  if (const JsonValue* p = o.get("standard_unix"))
    spec.standard_unix = want_bool(*p, "standard_unix");

  std::size_t i = 0;
  if (const JsonValue* p = o.get("users"))
    for (const JsonValue& u : want_array(*p, "users"))
      spec.users.push_back(
          parse_user(u, "users[" + std::to_string(i++) + "]"));
  if (const JsonValue* p = o.get("images"))
    spec.images = want_string_list(*p, "images");
  i = 0;
  if (const JsonValue* p = o.get("world"))
    for (const JsonValue& op : want_array(*p, "world"))
      spec.world.push_back(
          parse_world_op(op, "world[" + std::to_string(i++) + "]"));
  if (const JsonValue* p = o.get("network"))
    spec.network = parse_network(*p, "network");
  i = 0;
  if (const JsonValue* p = o.get("registry"))
    for (const JsonValue& k : want_array(*p, "registry"))
      spec.registry.push_back(
          parse_registry_key(k, "registry[" + std::to_string(i++) + "]"));
  i = 0;
  if (const JsonValue* p = o.get("run"))
    for (const JsonValue& step : want_array(*p, "run"))
      spec.run.push_back(
          parse_run_step(step, "run[" + std::to_string(i++) + "]"));
  if (const JsonValue* p = o.get("policy"))
    spec.policy = parse_policy(*p, "policy");
  if (const JsonValue* p = o.get("hints"))
    spec.hints = parse_hints(*p, "hints");
  i = 0;
  if (const JsonValue* p = o.get("sites")) {
    std::set<std::string> tags;
    for (const JsonValue& s : want_array(*p, "sites")) {
      std::string ctx = "sites[" + std::to_string(i++) + "]";
      auto site = parse_site(s, ctx);
      if (!tags.insert(site.first).second)
        fail(ctx, "duplicate site tag \"" + site.first + "\"");
      spec.sites.push_back(std::move(site));
    }
  }
  o.done();
  return spec;
}

Scenario compile_spec(const ScenarioSpec& spec, const SpecEnvironment& env) {
  auto bad = [&spec](const std::string& msg) -> WireError {
    return WireError("scenario spec '" + spec.name + "': " + msg);
  };
  if (spec.name.empty()) throw WireError("scenario spec: name is empty");
  if (spec.run.empty()) throw bad("run recipe is empty");

  // Resolve every image name up front; the build closure captures the
  // resolved (kernel name, image) pairs by value so clones never consult
  // the environment again.
  std::vector<std::pair<std::string, os::AppImage>> images;
  std::set<std::string> kernel_names;
  for (const std::string& name : spec.images) {
    auto it = env.images.find(name);
    if (it == env.images.end())
      throw bad("unknown image \"" + name +
                "\" (not in the spec environment)");
    if (!kernel_names.insert(it->second.kernel_name).second)
      throw bad("images register duplicate kernel image \"" +
                it->second.kernel_name + "\"");
    images.emplace_back(it->second.kernel_name, it->second.image);
  }
  for (const WorldOp& op : spec.world)
    if (op.kind == WorldOp::Kind::program &&
        kernel_names.find(op.image) == kernel_names.end())
      throw bad("program op \"" + op.path + "\" references image \"" +
                op.image + "\" that the images list does not register");

  std::vector<net::ServiceDef> services;
  for (const SpecService& svc : spec.network.services) {
    auto it = env.handlers.find(svc.handler);
    if (it == env.handlers.end())
      throw bad("service \"" + svc.name + "\" references unknown handler \"" +
                svc.handler + "\"");
    net::ServiceDef def;
    def.name = svc.name;
    def.kind = svc.kind;
    def.available = svc.available;
    def.trusted = svc.trusted;
    def.handler = it->second;
    services.push_back(std::move(def));
  }

  const FaultCatalog& catalog = FaultCatalog::standard();
  for (const auto& [tag, site] : spec.sites)
    for (const std::string& f : site.faults)
      if (!catalog.find_indirect(f) && !catalog.find_direct(f))
        throw bad("unknown fault \"" + f + "\" in site \"" + tag + "\"");

  auto sp = std::make_shared<const ScenarioSpec>(spec);
  Scenario s;
  s.name = sp->name;
  s.description = sp->description;
  s.trace_unit_filter = sp->trace_unit_filter;
  s.snapshot_safe = true;  // specs cannot express ambient-state builds
  s.policy = sp->policy;
  s.hints = sp->hints;
  for (const auto& [tag, site] : sp->sites) s.sites[tag] = site;

  s.build = [sp, images, services] {
    auto w = std::make_unique<TargetWorld>();
    os::Kernel& k = w->kernel;
    if (sp->standard_unix) os::world::standard_unix(k);
    for (const SpecUser& u : sp->users) k.add_user(u.uid, u.name, u.gid);
    for (const auto& [name, image] : images) k.register_image(name, image);
    // World ops replay in spec order: inode numbering (and with it the
    // byte-identity of every downstream report) follows creation order.
    for (const WorldOp& op : sp->world) {
      switch (op.kind) {
        case WorldOp::Kind::dir:
          os::world::mkdirs(k, op.path, op.uid, op.gid, op.mode);
          break;
        case WorldOp::Kind::file:
          os::world::put_file(k, op.path, op.content, op.uid, op.gid,
                              op.mode);
          break;
        case WorldOp::Kind::program:
          os::world::put_program(k, op.path, op.image, op.uid, op.gid,
                                 op.mode);
          break;
        case WorldOp::Kind::symlink:
          os::world::put_symlink(k, op.path, op.target, op.uid, op.gid);
          break;
      }
    }
    for (const SpecHost& h : sp->network.hosts)
      w->network.add_host(h.name, h.ip);
    for (const net::ServiceDef& def : services)
      w->network.define_service(def);
    if (sp->network.client) {
      net::PeerScript script;
      script.peer = sp->network.client->peer;
      script.kind = sp->network.client->kind;
      script.inbound = sp->network.client->inbound;
      script.expected_protocol = sp->network.client->protocol;
      w->network.set_client_script(std::move(script));
    }
    for (const SpecRegistryKey& sk : sp->registry) {
      reg::Key key;
      key.path = sk.path;
      key.value = sk.value;
      key.acl.owner = sk.owner;
      key.acl.everyone_read = sk.everyone_read;
      key.acl.everyone_write = sk.everyone_write;
      key.used_by_module = sk.used_by_module;
      key.trusted = sk.trusted;
      w->registry.define_key(std::move(key));
    }
    return w;
  };

  s.run = [sp](TargetWorld& w) {
    int code = 255;
    for (const RunStep& step : sp->run) {
      auto r = w.kernel.spawn(step.program, step.args, step.uid, step.gid,
                              step.env, step.cwd);
      code = r.ok() ? r.value() : 255;
    }
    return code;
  };
  return s;
}

namespace spec_builders {

WorldOp dir_op(const std::string& path, os::Uid uid, os::Gid gid,
               unsigned mode) {
  WorldOp op;
  op.kind = WorldOp::Kind::dir;
  op.path = path;
  op.uid = uid;
  op.gid = gid;
  op.mode = mode;
  return op;
}

WorldOp file_op(const std::string& path, const std::string& content,
                os::Uid uid, os::Gid gid, unsigned mode) {
  WorldOp op;
  op.kind = WorldOp::Kind::file;
  op.path = path;
  op.content = content;
  op.uid = uid;
  op.gid = gid;
  op.mode = mode;
  return op;
}

WorldOp program_op(const std::string& path, const std::string& image,
                   os::Uid uid, os::Gid gid, unsigned mode) {
  WorldOp op;
  op.kind = WorldOp::Kind::program;
  op.path = path;
  op.image = image;
  op.uid = uid;
  op.gid = gid;
  op.mode = mode;
  return op;
}

WorldOp symlink_op(const std::string& path, const std::string& target,
                   os::Uid uid, os::Gid gid) {
  WorldOp op;
  op.kind = WorldOp::Kind::symlink;
  op.path = path;
  op.target = target;
  op.uid = uid;
  op.gid = gid;
  op.mode = 0;
  return op;
}

void add_alice(ScenarioSpec& spec) {
  spec.users.push_back({1000, "alice", 1000});
}

void add_attacker(ScenarioSpec& spec, bool with_evil) {
  spec.users.push_back({666, "mallory", 666});
  spec.world.push_back(dir_op("/tmp/attacker", 666, 666, 0755));
  if (with_evil)
    spec.world.push_back(
        program_op("/tmp/attacker/evil", "evil", 666, 666, 0755));
  spec.hints.attacker_uid = 666;
  spec.hints.attacker_gid = 666;
}

void add_payload_images(ScenarioSpec& spec) {
  for (const char* name : {"tar", "sendmail", "evil"})
    if (std::find(spec.images.begin(), spec.images.end(), name) ==
        spec.images.end())
      spec.images.emplace_back(name);
}

}  // namespace spec_builders
}  // namespace ep::core
