// The complete simulated environment a scenario runs in: one kernel (file
// system + processes), one network, one registry. Campaign runs construct
// a fresh TargetWorld per injection, which is what makes runs independent
// (no perturbation outlives its run).
#pragma once

#include <memory>

#include "net/network.hpp"
#include "os/kernel.hpp"
#include "reg/registry.hpp"

namespace ep::core {

struct TargetWorld {
  os::Kernel kernel;
  net::Network network;
  reg::Registry registry;

  TargetWorld() = default;
  TargetWorld(const TargetWorld&) = delete;
  TargetWorld& operator=(const TargetWorld&) = delete;
};

}  // namespace ep::core
