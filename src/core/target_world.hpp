// The complete simulated environment a scenario runs in: one kernel (file
// system + processes), one network, one registry. Campaign runs construct
// a fresh TargetWorld per injection, which is what makes runs independent
// (no perturbation outlives its run).
//
// clone() produces that fresh world from an already-built one at a
// fraction of the build cost: the kernel copy shares VFS inodes
// copy-on-write (see os/vfs.hpp), and the network/registry substrates are
// small value-copied state. A run's perturbations unshare only the nodes
// they touch, so a clone is observably identical to a fresh build of the
// same world while never leaking writes back into its source. The
// interposer chain is never cloned (hooks are per-run); clone the world
// first, then arm injector and oracle.
#pragma once

#include <memory>
#include <new>

#include "net/network.hpp"
#include "os/kernel.hpp"
#include "reg/registry.hpp"

namespace ep::core {

struct TargetWorld {
  os::Kernel kernel;
  net::Network network;
  reg::Registry registry;

  TargetWorld() { wire(); }
  TargetWorld& operator=(const TargetWorld&) = delete;

  /// Cheap copy-on-write copy of this world. Worlds with interposers
  /// installed must not be cloned (the chain is deliberately dropped —
  /// cloning one would silently un-arm it); see WorldSnapshot::freeze,
  /// which enforces this.
  [[nodiscard]] std::unique_ptr<TargetWorld> clone() const {
    return std::unique_ptr<TargetWorld>(new TargetWorld(*this));
  }

  /// clone() into caller-provided storage (placement new): the
  /// WorldArena's per-worker reuse path, which keeps the executor hot
  /// loop from paying one heap allocation per run. `storage` must be
  /// sizeof(TargetWorld) bytes with alignof(TargetWorld) alignment, and
  /// the caller owns calling the destructor. The clone is observably
  /// identical to clone() — wire() re-points the kernel at the new
  /// storage's own substrates.
  TargetWorld* clone_into(void* storage) const {
    return new (storage) TargetWorld(*this);
  }

 private:
  TargetWorld(const TargetWorld& other)
      : kernel(other.kernel),
        network(other.network),
        registry(other.registry) {
    wire();
  }

  /// Point the kernel at *this* world's substrates, so app images reach
  /// the network/registry of the world they are running in — never the
  /// prototype a clone was made from.
  void wire() { kernel.attach_substrates(&network, &registry); }

 public:
  /// End-of-run redzone sweep across every substrate that carries guard
  /// regions: the kernel (live app-buffer guards, then VFS inodes) and
  /// the registry (key values). Lives here because reg depends on os,
  /// not the other way around — the kernel cannot drive the registry's
  /// sweep itself. Reports flow through the kernel's hook chain, so run
  /// it while the run's oracle is still installed (the executor does).
  /// No-op when the kernel's redzone audit is off.
  void validate_redzones() {
    kernel.validate_redzones();
    registry.validate_redzones(kernel);
  }
};

}  // namespace ep::core
