// World-build caching: freeze one prototype TargetWorld per scenario and
// clone it per injection run instead of rebuilding from scratch.
//
// scenario.build() dominates per-run cost (every run re-creates the same
// directories, files, users, images, services, and keys), yet the built
// world is identical every time for a snapshot-safe scenario. The
// Planner therefore builds the world once, freezes it here, and the
// Executor hands every worker a copy-on-write clone() — same observable
// start state, none of the build work.
//
// Snapshot-safety contract (what Scenario::snapshot_safe asserts):
//   * build() is deterministic — same world every call;
//   * build() is self-contained — the world references no mutable state
//     outside itself (service handlers and app images must be stateless
//     or capture only immutables);
//   * build() installs no interposers — hooks are per-run and freeze()
//     rejects a hooked prototype outright.
// Under that contract a cloned run is bit-identical to a fresh-build run
// (tests/integration/cached_world_test.cpp holds every packaged scenario
// to it).
//
// Thread-safety: the frozen prototype is immutable, so any number of
// workers may instantiate() concurrently — cloning only reads the
// prototype and bumps atomic refcounts; each clone then confines its
// writes to nodes it unshares (see os/vfs.hpp).
#pragma once

#include <memory>

#include "core/target_world.hpp"

namespace ep::core {

class WorldSnapshot {
 public:
  /// Take ownership of a freshly built world and freeze it as the
  /// prototype. Throws std::logic_error if the world already has
  /// interposers installed: clone() drops the hook chain, so freezing a
  /// hooked world would silently disarm every run.
  static std::shared_ptr<const WorldSnapshot> freeze(
      std::unique_ptr<TargetWorld> prototype);

  /// A fresh per-run world: copy-on-write clone of the prototype.
  [[nodiscard]] std::unique_ptr<TargetWorld> instantiate() const {
    return prototype_->clone();
  }

  /// Read access to the frozen world (exploitability analysis judges
  /// against the benign prototype without even cloning).
  [[nodiscard]] const TargetWorld& prototype() const { return *prototype_; }

 private:
  explicit WorldSnapshot(std::unique_ptr<TargetWorld> prototype)
      : prototype_(std::move(prototype)) {}

  std::unique_ptr<const TargetWorld> prototype_;
};

/// A per-worker clone arena: one TargetWorld-sized allocation, reused
/// for every run the worker drains. instantiate() destroys the previous
/// occupant and placement-clones the prototype into the same storage —
/// the executor hot loop pays the clone's member copies but not a heap
/// allocation per run. A clone is storage-location-independent (the
/// kernel is re-wired to the new storage's own substrates), so arena
/// clones are observably identical to heap clones; the executor's
/// bit-identical output contract holds with pooling on or off.
///
/// Not thread-safe: one arena per worker thread (the executor keeps one
/// in thread_local storage). The arena owns the occupant's lifetime —
/// destruction runs the world's destructor in place.
class WorldArena {
 public:
  WorldArena() = default;
  WorldArena(const WorldArena&) = delete;
  WorldArena& operator=(const WorldArena&) = delete;
  ~WorldArena();

  /// Clone `snapshot`'s prototype into the arena's storage, replacing
  /// (destroying) whatever run's world occupied it before. The returned
  /// reference stays valid until the next instantiate()/reset().
  TargetWorld& instantiate(const WorldSnapshot& snapshot);

  /// Destroy the occupant (if any), keeping the storage for reuse.
  void reset();

 private:
  void* storage_ = nullptr;
  TargetWorld* world_ = nullptr;
};

}  // namespace ep::core
