#include "core/campaign.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/equivalence.hpp"
#include "core/injector.hpp"

#include "os/path.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace ep::core {

int CampaignResult::violation_count() const {
  int c = 0;
  for (const auto& i : injections) c += i.violated ? 1 : 0;
  return c;
}

int CampaignResult::tolerated_count() const {
  return n() - violation_count();
}

double CampaignResult::vulnerability_score() const {
  return n() == 0 ? 0.0 : static_cast<double>(violation_count()) / n();
}

double CampaignResult::fault_coverage() const {
  return n() == 0 ? 1.0 : static_cast<double>(tolerated_count()) / n();
}

double CampaignResult::interaction_coverage() const {
  if (points.empty()) return 0.0;
  return static_cast<double>(perturbed_site_tags.size()) / points.size();
}

AdequacyPoint CampaignResult::adequacy() const {
  return {interaction_coverage(), fault_coverage()};
}

AdequacyRegion CampaignResult::region(const AdequacyThresholds& t) const {
  return classify(adequacy(), t);
}

std::vector<const InjectionOutcome*> CampaignResult::exploitable() const {
  std::vector<const InjectionOutcome*> out;
  for (const auto& i : injections)
    if (i.violated && i.exploit.nonroot_feasible) out.push_back(&i);
  return out;
}

Campaign::Campaign(Scenario scenario)
    : scenario_(std::move(scenario)), catalog_(FaultCatalog::standard()) {
  if (!scenario_.build || !scenario_.run)
    throw std::logic_error("Campaign: scenario must define build and run");
}

std::vector<FaultRef> Campaign::plan_faults(
    const InteractionPoint& point) const {
  std::vector<FaultRef> plan;
  auto spec_it = scenario_.sites.find(point.site.tag);
  if (spec_it != scenario_.sites.end() && spec_it->second.skip) return plan;

  if (spec_it != scenario_.sites.end() && !spec_it->second.faults.empty()) {
    for (const auto& name : spec_it->second.faults) {
      if (const IndirectFault* f = catalog_.find_indirect(name)) {
        FaultRef r;
        r.kind = FaultKind::indirect;
        r.indirect = f;
        plan.push_back(r);
      } else if (const DirectFault* f2 = catalog_.find_direct(name)) {
        FaultRef r;
        r.kind = FaultKind::direct;
        r.direct = f2;
        plan.push_back(r);
      } else {
        throw std::logic_error("Campaign: unknown fault name '" + name +
                               "' at site " + point.site.tag);
      }
    }
    return plan;
  }

  ObjectKind kind = point.kind;
  InputSemantic semantic = point.semantic;
  if (spec_it != scenario_.sites.end()) {
    if (spec_it->second.kind != ObjectKind::none)
      kind = spec_it->second.kind;
    if (spec_it->second.semantic) semantic = *spec_it->second.semantic;
  }

  // Step 3: no input -> only direct faults; input -> both kinds.
  for (const DirectFault* f : catalog_.direct_for(kind)) {
    FaultRef r;
    r.kind = FaultKind::direct;
    r.direct = f;
    plan.push_back(r);
  }
  if (point.has_input) {
    for (const IndirectFault* f : catalog_.indirect_for(semantic)) {
      FaultRef r;
      r.kind = FaultKind::indirect;
      r.indirect = f;
      plan.push_back(r);
    }
  }
  return plan;
}

Exploitability Campaign::analyze(const InteractionPoint& point,
                                 const FaultRef& fault) const {
  Exploitability e;
  auto world = scenario_.build();  // judge against the *benign* world
  os::Kernel& k = world->kernel;

  auto nonroot_user_who_can = [&](const std::string& p,
                                  os::Perm perm) -> std::string {
    for (const auto& [uid, info] : k.users()) {
      if (uid == os::kRootUid) continue;
      if (k.uid_can(uid, info.second, p, perm)) return info.first;
    }
    return {};
  };

  if (fault.kind == FaultKind::indirect) {
    switch (fault.indirect->category) {
      case IndirectCategory::user_input:
        e.nonroot_feasible = true;
        e.actor = "invoking user";
        e.note = "argument values are chosen by whoever runs the program";
        break;
      case IndirectCategory::environment_variable:
        e.nonroot_feasible = true;
        e.actor = "invoking user";
        e.note = "the invoker controls the process environment";
        break;
      case IndirectCategory::file_system_input: {
        std::string who = nonroot_user_who_can(point.object, os::Perm::write);
        e.nonroot_feasible = !who.empty();
        e.actor = who.empty() ? "root only" : who + " (writer of the input)";
        e.note = who.empty()
                     ? "the input file is protected; only root can seed it"
                     : "whoever writes the input file controls the value";
        break;
      }
      case IndirectCategory::network_input:
        e.nonroot_feasible = true;
        e.actor = "remote peer";
        e.note = "network input is attacker-supplied by definition";
        break;
      case IndirectCategory::process_input:
        e.nonroot_feasible = true;
        e.actor = "local peer process";
        e.note = "IPC input comes from another local process";
        break;
    }
    return e;
  }

  const DirectFault& f = *fault.direct;
  const std::string& obj = point.object;
  std::string parent = os::path::dirname(obj);

  switch (f.attribute) {
    case EnvAttribute::file_existence:
    case EnvAttribute::symbolic_link:
    case EnvAttribute::file_name_invariance: {
      if (point.call == "regread" || point.call == "regwrite") {
        const reg::Key* key = world->registry.find(obj);
        e.nonroot_feasible = key && key->acl.everyone_write;
        e.actor = e.nonroot_feasible ? "any local user" : "administrator only";
        e.note = "registry key ACL decides who can replace the value";
        break;
      }
      std::string who = nonroot_user_who_can(parent, os::Perm::write);
      e.nonroot_feasible = !who.empty();
      e.actor = who.empty() ? "root only" : who;
      e.note = who.empty()
                   ? "requires write access to " + parent +
                         ", which only root has"
                   : who + " can manipulate directory entries in " + parent;
      break;
    }
    case EnvAttribute::file_content_invariance: {
      if (point.call == "regread" || point.call == "regwrite") {
        const reg::Key* key = world->registry.find(obj);
        e.nonroot_feasible = key && key->acl.everyone_write;
        e.actor = e.nonroot_feasible ? "any local user" : "administrator only";
        e.note = "everyone-write ACL lets any user set the value";
        break;
      }
      std::string who = nonroot_user_who_can(obj, os::Perm::write);
      if (who.empty()) who = nonroot_user_who_can(parent, os::Perm::write);
      e.nonroot_feasible = !who.empty();
      e.actor = who.empty() ? "root only" : who;
      e.note = who.empty() ? "the file and its directory are protected"
                           : who + " can rewrite the content";
      break;
    }
    case EnvAttribute::file_permission: {
      auto r = k.vfs().resolve(obj, "/", os::kRootUid, os::kRootGid);
      if (r.ok()) {
        const os::Inode& node = k.vfs().inode(r.value());
        e.nonroot_feasible = node.uid != os::kRootUid;
        e.actor = e.nonroot_feasible ? "owner (" + k.user_name(node.uid) + ")"
                                     : "root only";
        e.note = "chmod requires ownership";
      } else {
        e.actor = "root only";
        e.note = "object absent in the benign world";
      }
      break;
    }
    case EnvAttribute::file_ownership:
      e.actor = "root only";
      e.note = "chown requires root privilege";
      break;
    case EnvAttribute::working_directory:
      e.nonroot_feasible = true;
      e.actor = "invoking user";
      e.note = "the invoker chooses the starting directory";
      break;
    case EnvAttribute::net_message_authenticity:
    case EnvAttribute::net_protocol:
    case EnvAttribute::net_socket_share:
    case EnvAttribute::net_service_availability:
    case EnvAttribute::net_entity_trustability:
      // The regkey-trustability extension reuses this attribute id.
      if (point.call == "regread" || point.call == "regwrite") {
        const reg::Key* key = world->registry.find(obj);
        e.nonroot_feasible = key && key->acl.everyone_write;
        e.actor = e.nonroot_feasible ? "any local user" : "administrator only";
        e.note = "whoever may write the key controls where it points";
      } else {
        e.nonroot_feasible = true;
        e.actor = "remote peer";
        e.note = "network conditions are attacker-influenced";
      }
      break;
    case EnvAttribute::proc_message_authenticity:
    case EnvAttribute::proc_trustability:
    case EnvAttribute::proc_service_availability:
      e.nonroot_feasible = true;
      e.actor = "local peer process";
      e.note = "helper-process conditions are controlled by its owner";
      break;
  }
  return e;
}

CampaignResult Campaign::execute(const CampaignOptions& opts) {
  CampaignResult result;
  result.scenario_name = scenario_.name;

  // ---- Step 3: discover interaction points with a clean trace run --------
  {
    auto world = scenario_.build();
    auto recorder = std::make_shared<TraceRecorder>(scenario_.trace_unit_filter);
    auto oracle = std::make_shared<SecurityOracle>(scenario_.policy);
    world->kernel.add_interposer(recorder);
    world->kernel.add_interposer(oracle);
    (void)scenario_.run(*world);
    result.points = recorder->points();
    result.benign_violations = oracle->violations();
  }

  // ---- Site selection (step 9's coverage target / Figure 2 subsets) ------
  std::vector<const InteractionPoint*> selected;
  if (!opts.only_sites.empty()) {
    for (const auto& p : result.points)
      if (std::find(opts.only_sites.begin(), opts.only_sites.end(),
                    p.site.tag) != opts.only_sites.end())
        selected.push_back(&p);
  } else if (opts.target_interaction_coverage >= 1.0) {
    for (const auto& p : result.points) selected.push_back(&p);
  } else {
    std::size_t want = static_cast<std::size_t>(
        opts.target_interaction_coverage * result.points.size() + 0.5);
    want = std::max<std::size_t>(want, 1);
    want = std::min(want, result.points.size());
    // Deterministic sample without replacement.
    std::vector<std::size_t> idx(result.points.size());
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    Rng rng(opts.seed);
    for (std::size_t i = 0; i < idx.size(); ++i)
      std::swap(idx[i], idx[i + rng.below(idx.size() - i)]);
    idx.resize(want);
    std::sort(idx.begin(), idx.end());  // keep trace order
    for (auto i : idx) selected.push_back(&result.points[i]);
  }

  // ---- Optional future-work reduction: equivalence merging ---------------
  // Injecting only at each class representative; co-members count as
  // covered because their injections would meet the same environment
  // state and program handling.
  std::map<std::string, std::vector<std::string>> covered_with;  // rep -> members
  if (opts.merge_equivalent_sites) {
    auto classes = find_equivalence_classes(result.points);
    std::vector<const InteractionPoint*> reduced;
    for (const InteractionPoint* point : selected) {
      for (const auto& c : classes) {
        if (!(c.representative().site == point->site)) continue;
        reduced.push_back(point);
        for (const auto* member : c.members)
          covered_with[point->site.tag].push_back(member->site.tag);
      }
    }
    selected = std::move(reduced);
  }

  // ---- Steps 4-8: one rebuilt world per (site, fault) --------------------
  for (const InteractionPoint* point : selected) {
    std::vector<FaultRef> plan = plan_faults(*point);
    if (plan.empty()) continue;
    result.perturbed_site_tags.insert(point->site.tag);
    for (const auto& member : covered_with[point->site.tag])
      result.perturbed_site_tags.insert(member);

    for (const FaultRef& fault : plan) {
      auto world = scenario_.build();
      auto injector = std::make_shared<Injector>(*world, point->site, fault,
                                                 scenario_.hints);
      auto oracle = std::make_shared<SecurityOracle>(scenario_.policy);
      world->kernel.add_interposer(injector);
      world->kernel.add_interposer(oracle);

      InjectionOutcome out;
      out.site = point->site;
      out.call = point->call;
      out.object = point->object;
      out.kind = fault.kind;
      out.fault_name = fault.name();
      out.fault_description = fault.kind == FaultKind::indirect
                                  ? fault.indirect->description
                                  : fault.direct->description;
      out.exit_code = scenario_.run(*world);
      out.fired = injector->fired();
      out.violations = oracle->violations();
      out.violated = !out.violations.empty();
      out.crashed = oracle->crash_count() > 0;
      out.overflows = oracle->overflow_count();

      std::string broken = world->kernel.vfs().check_invariants();
      if (!broken.empty())
        throw std::logic_error("VFS invariant broken after injection '" +
                               out.fault_name + "': " + broken);

      if (out.violated) out.exploit = analyze(*point, fault);
      result.injections.push_back(std::move(out));
    }
  }
  return result;
}

}  // namespace ep::core
