#include "core/campaign.hpp"

#include <stdexcept>

#include "core/executor.hpp"
#include "core/planner.hpp"

namespace ep::core {

int CampaignResult::violation_count() const {
  int c = 0;
  for (const auto& i : injections) c += i.violated ? 1 : 0;
  return c;
}

int CampaignResult::tolerated_count() const {
  return n() - violation_count();
}

double CampaignResult::vulnerability_score() const {
  return n() == 0 ? 0.0 : static_cast<double>(violation_count()) / n();
}

double CampaignResult::fault_coverage() const {
  return n() == 0 ? 1.0 : static_cast<double>(tolerated_count()) / n();
}

double CampaignResult::interaction_coverage() const {
  if (points.empty()) return 0.0;
  return static_cast<double>(perturbed_site_tags.size()) / points.size();
}

AdequacyPoint CampaignResult::adequacy() const {
  return {interaction_coverage(), fault_coverage()};
}

AdequacyRegion CampaignResult::region(const AdequacyThresholds& t) const {
  return classify(adequacy(), t);
}

std::vector<const InjectionOutcome*> CampaignResult::exploitable() const {
  std::vector<const InjectionOutcome*> out;
  for (const auto& i : injections)
    if (i.violated && i.exploit.nonroot_feasible) out.push_back(&i);
  return out;
}

Campaign::Campaign(Scenario scenario) : scenario_(std::move(scenario)) {
  if (!scenario_.build || !scenario_.run)
    throw std::logic_error("Campaign: scenario must define build and run");
}

CampaignResult Campaign::execute(const CampaignOptions& opts) {
  InjectionPlan plan = Planner(scenario_).plan(opts);
  ExecutorOptions eopts;
  eopts.jobs = opts.jobs;
  eopts.use_world_cache = opts.use_world_cache;
  eopts.use_redzone = opts.use_redzone;
  return Executor(scenario_).execute(plan, eopts);
}

}  // namespace ep::core
