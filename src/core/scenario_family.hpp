// Scenario families: one template times a parameter grid.
//
// A ScenarioFamily pairs a set of named axes (each a list of value
// strings) with a materialize() function that turns one grid point into a
// ScenarioSpec. expand_family() walks the full cartesian product in a
// fixed order and stamps each spec with a stable generated name —
// "<family>-<v1>-<v2>-..." — so a generated scenario can be named on any
// epa_cli command line, re-derived in any worker process, and produce
// byte-identical results on every plane (the same determinism contract
// the packaged scenarios honor).
//
// This is the workload multiplier the scaling layers were starved for:
// instead of 21 hand-written worlds, a few family templates expand into
// hundreds of generated, snapshot-safe scenarios that vary exactly the
// environment dimensions — path depths, buffer guards, privilege,
// peer scripts, registry chains — the paper's method perturbs.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/scenario_spec.hpp"

namespace ep::core {

/// One grid dimension: a name and the values it ranges over. Values must
/// be non-empty and name-safe (lowercase alphanumerics, '.', '_', '-')
/// because they become part of generated scenario names.
struct FamilyAxis {
  std::string name;
  std::vector<std::string> values;
};

/// One grid point: axis name -> chosen value.
using FamilyPoint = std::map<std::string, std::string>;

struct ScenarioFamily {
  std::string name;
  std::string description;
  std::vector<FamilyAxis> axes;
  /// Materialize the spec for one grid point. The returned spec's name is
  /// overwritten with the generated member name; everything else —
  /// including determinism — is the template's responsibility.
  std::function<ScenarioSpec(const FamilyPoint&)> materialize;
};

/// Number of grid points (product of axis sizes; 0 when any axis is
/// empty).
std::size_t family_size(const ScenarioFamily& family);

/// The stable name of one member: family name + "-" + the point's values
/// in axis order.
std::string family_member_name(const ScenarioFamily& family,
                               const FamilyPoint& point);

/// Every grid point, in deterministic order: the last axis varies
/// fastest, like an odometer. Throws WireError on a malformed family
/// (duplicate or empty axis names, empty or name-unsafe values).
std::vector<FamilyPoint> family_grid(const ScenarioFamily& family);

/// Materialize every member, names stamped. Order matches family_grid().
std::vector<ScenarioSpec> expand_family(const ScenarioFamily& family);

}  // namespace ep::core
