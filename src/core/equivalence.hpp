// Interaction-point equivalence analysis.
//
// The paper's stated next step (Sections 1 and 6): "we plan to exploit
// static analysis to further reduce the number of fault injection
// locations by finding the equivalence relationship among those
// locations. The motivation ... is that we can reduce the testing efforts
// by utilizing static information from the program."
//
// Two interaction points are injection-equivalent when a fault injected
// at one meets the same environment state and the same program handling
// as at the other. The sound criterion is deliberately narrow: a point
// may join an earlier point's class only when it (a) names the same
// object with the same kind, input character, and input semantic, AND
// (b) is a descriptor-bound continuation — a read()/write() on the handle
// the representative's call obtained. Descriptor-bound calls never
// re-resolve the path, so every path-level Table 6 perturbation at them
// is moot; their outcomes are determined by the representative's.
//
// The restriction to descriptor-bound continuations is not pedantry: a
// check and a use on the same object (vault's access()/open() pair) look
// equivalent by object identity, but merging them erases exactly the
// TOCTTOU window the methodology exists to probe — the use re-resolves
// the path, so faults injected there meet *different* program handling.
// bench/ablation_equivalence measures the reduction and verifies no
// violation is lost.
#pragma once

#include <string>
#include <vector>

#include "core/trace.hpp"

namespace ep::core {

struct EquivalenceClass {
  /// The grouping key, printable for reports.
  std::string object;
  ObjectKind kind = ObjectKind::none;
  bool has_input = false;
  InputSemantic semantic = InputSemantic::file_name;
  /// Members in trace order; front() is the representative (the first
  /// time the program touched the object — where its assumptions bind).
  std::vector<const InteractionPoint*> members;

  [[nodiscard]] const InteractionPoint& representative() const {
    return *members.front();
  }
};

/// Partition interaction points into injection-equivalence classes,
/// preserving trace order of representatives.
std::vector<EquivalenceClass> find_equivalence_classes(
    const std::vector<InteractionPoint>& points);

/// Human-readable summary of a partition (for reports and the bench).
std::string render_equivalence(const std::vector<EquivalenceClass>& classes);

}  // namespace ep::core
