#include "core/injector.hpp"

namespace ep::core {

Injector::Injector(TargetWorld& world, os::Site site, FaultRef fault,
                   ScenarioHints hints)
    : world_(world),
      site_(std::move(site)),
      fault_(fault),
      hints_(std::move(hints)) {}

void Injector::before(os::Kernel& /*k*/, os::SyscallCtx& ctx) {
  if (fired_ || !(ctx.site == site_)) return;
  if (fault_.kind != FaultKind::direct || fault_.direct == nullptr) return;
  // Direct environment faults are injected before the interaction point
  // (Section 3.3 step 6).
  fault_.direct->perturb(world_, ctx, hints_);
  fired_ = true;
}

void Injector::after(os::Kernel& /*k*/, os::SyscallCtx& ctx, Err result) {
  if (fired_ || !(ctx.site == site_)) return;
  if (fault_.kind != FaultKind::indirect || fault_.indirect == nullptr) return;
  if (!ctx.has_input || ctx.input == nullptr) return;
  if (result != Err::ok && ctx.input->empty() && ctx.call != "getenv") return;
  // Indirect faults are injected after the interaction point: "we want to
  // change the value the internal entity receives from the input".
  original_ = *ctx.input;
  *ctx.input = fault_.indirect->mutate(original_, hints_);
  injected_ = *ctx.input;
  fired_ = true;
}

}  // namespace ep::core
